package udm

import "testing"

// TestRefillCountCoalescing pins the batch-widening arithmetic: a refill
// mints the configured batch, widened by the switchless-ring occupancy
// hint and capped at one full ring plus the vector being served — never
// below the configured batch, and exactly the batch whenever the hint is
// absent, zero, or negative (the deterministic sequential-replay path).
func TestRefillCountCoalescing(t *testing.T) {
	cases := []struct {
		name         string
		depth, batch int
		hint         func() int
		want         int
	}{
		{"nil hint keeps batch", 8, 4, nil, 4},
		{"zero hint keeps batch", 8, 4, func() int { return 0 }, 4},
		{"negative hint keeps batch", 8, 4, func() int { return -3 }, 4},
		{"hint widens by queued demand", 8, 4, func() int { return 3 }, 7},
		{"widening caps at depth+1", 8, 4, func() int { return 100 }, 9},
		{"exact cap boundary", 8, 4, func() int { return 5 }, 9},
		{"cap never shrinks below batch", 2, 8, func() int { return 5 }, 8},
		{"batch at cap stays put", 8, 9, func() int { return 1 }, 9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := &UDM{pool: newAVPool(tc.depth, tc.batch), coalesceHint: tc.hint}
			if got := u.refillCount(); got != tc.want {
				t.Fatalf("refillCount(depth=%d, batch=%d) = %d, want %d",
					tc.depth, tc.batch, got, tc.want)
			}
		})
	}
}
