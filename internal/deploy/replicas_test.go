package deploy

import (
	"context"
	"fmt"
	"testing"

	"shield5g/internal/gnb"
	"shield5g/internal/nf/nrf"
	"shield5g/internal/paka"
	"shield5g/internal/ue"
)

func newShardedTestSlice(t *testing.T, cfg SliceConfig) *Slice {
	t.Helper()
	s, err := NewSlice(context.Background(), cfg)
	if err != nil {
		t.Fatalf("NewSlice(replicas=%d): %v", cfg.Replicas, err)
	}
	t.Cleanup(s.Stop)
	return s
}

func supiString(msin string) string { return "imsi-00101" + msin }

func TestShardedRegistrationSpreadsAcrossShards(t *testing.T) {
	s := newShardedTestSlice(t, SliceConfig{
		Isolation: paka.Container, Seed: 11, Replicas: 4,
	})
	if len(s.Shards) != 4 {
		t.Fatalf("Shards = %d, want 4", len(s.Shards))
	}

	n := 24
	res, err := s.GNB.RegisterManyWith(context.Background(), gnb.MassOptions{
		N: n,
		NewUE: func(i int) (*ue.UE, error) {
			return provisionUE(t, s, fmt.Sprintf("%010d", 7000+i)), nil
		},
	})
	if err != nil {
		t.Fatalf("RegisterManyWith: %v", err)
	}
	if res.Registered != n || res.Failed != 0 {
		t.Fatalf("Registered=%d Failed=%d %v", res.Registered, res.Failed, res.FirstErrors)
	}
	if len(res.ShardStats) != 4 {
		t.Fatalf("ShardStats = %d lanes, want 4", len(res.ShardStats))
	}
	busyLanes, total := 0, 0
	perAMF := 0
	for i, st := range res.ShardStats {
		total += st.Registered
		if st.Registered > 0 {
			busyLanes++
			if st.Busy <= 0 {
				t.Fatalf("lane %d served %d registrations with zero busy time", i, st.Registered)
			}
			if st.SetupTimes.N() != st.Registered {
				t.Fatalf("lane %d recorder has %d samples, want %d", i, st.SetupTimes.N(), st.Registered)
			}
		}
		perAMF += s.Shards[i].AMF.RegisteredUEs()
	}
	if total != n {
		t.Fatalf("lane registrations sum to %d, want %d (no double counting)", total, n)
	}
	if perAMF != n {
		t.Fatalf("AMF replicas hold %d UEs, want %d", perAMF, n)
	}
	if busyLanes < 2 {
		t.Fatalf("only %d lanes served traffic; SUPI-affinity hashing should spread 24 UEs", busyLanes)
	}
	if res.FleetVirtual <= 0 || res.FleetVirtual >= res.Virtual {
		t.Fatalf("FleetVirtual = %v, want in (0, %v): makespan must beat the summed clock", res.FleetVirtual, res.Virtual)
	}
	// Routing is pure SUPI affinity: what the router says is where the
	// UE's context actually lives.
	for i := 0; i < n; i++ {
		supi := supiString(fmt.Sprintf("%010d", 7000+i))
		idx := s.GNB.ShardOf(supi)
		if idx < 0 || idx >= 4 {
			t.Fatalf("ShardOf(%s) = %d", supi, idx)
		}
	}
}

func TestShuffleShardConfinesTenant(t *testing.T) {
	s := newShardedTestSlice(t, SliceConfig{
		Isolation: paka.Container, Seed: 11, Replicas: 4, ShardSize: 2,
	})
	n := 24
	res, err := s.GNB.RegisterManyWith(context.Background(), gnb.MassOptions{
		N: n,
		NewUE: func(i int) (*ue.UE, error) {
			return provisionUE(t, s, fmt.Sprintf("%010d", 7100+i)), nil
		},
	})
	if err != nil {
		t.Fatalf("RegisterManyWith: %v", err)
	}
	if res.Registered != n {
		t.Fatalf("Registered=%d Failed=%d %v", res.Registered, res.Failed, res.FirstErrors)
	}
	busy := 0
	for _, st := range res.ShardStats {
		if st.Registered > 0 {
			busy++
		}
	}
	if busy > 2 {
		t.Fatalf("tenant's traffic reached %d shards, shuffle shard caps it at 2", busy)
	}
}

func TestShardedRegistrationSurvivesNRFStop(t *testing.T) {
	s := newShardedTestSlice(t, SliceConfig{
		Isolation: paka.Container, Seed: 5, Replicas: 4,
	})
	ctx := context.Background()

	// Provision everything up front, then take the NRF off the bus.
	devices := make([]*ue.UE, 12)
	for i := range devices {
		devices[i] = provisionUE(t, s, fmt.Sprintf("%010d", 7200+i))
	}
	s.StopNRF()
	if _, ok := s.Registry.Lookup(nrf.ServiceName); ok {
		t.Fatal("NRF still on the service bus after StopNRF")
	}

	// Registrations must complete on last-known-good routing and static
	// shard bindings — the NRF is strictly off the request path.
	for _, device := range devices {
		if _, err := s.GNB.RegisterUE(ctx, device); err != nil {
			t.Fatalf("RegisterUE with NRF stopped: %v", err)
		}
	}
	// Topology changes still propagate: the builder pushes in-process.
	epoch := s.Router.Epoch()
	res, err := s.SetRoutableReplicas(2)
	if err != nil {
		t.Fatalf("SetRoutableReplicas with NRF stopped: %v", err)
	}
	if res.Acked != 1 || res.Nacked != 0 || s.Router.Epoch() != epoch+1 {
		t.Fatalf("push result %+v, router epoch %d (was %d)", res, s.Router.Epoch(), epoch)
	}
	if _, err := s.GNB.ReRegisterUE(ctx, devices[0]); err != nil {
		t.Fatalf("ReRegisterUE after rebalance with NRF stopped: %v", err)
	}
}

// TestMidRunRebalance drives a mass registration and, midway through,
// publishes a topology snapshot that shrinks the routable replica set.
// Because every shard holds every subscriber key, the rebalance must cost
// zero failed registrations; and because the ring hashes replica names,
// SUPIs whose owner survived the shrink must not flap to another shard.
func TestMidRunRebalance(t *testing.T) {
	s := newShardedTestSlice(t, SliceConfig{
		Isolation: paka.Container, Seed: 23, Replicas: 4,
	})
	n := 40
	msin := func(i int) string { return fmt.Sprintf("%010d", 7300+i) }

	before := make([]int, n)
	for i := 0; i < n; i++ {
		before[i] = s.GNB.ShardOf(supiString(msin(i)))
	}

	res, err := s.GNB.RegisterManyWith(context.Background(), gnb.MassOptions{
		N: n,
		NewUE: func(i int) (*ue.UE, error) {
			if i == n/2 {
				if _, err := s.SetRoutableReplicas(3); err != nil {
					return nil, err
				}
			}
			return provisionUE(t, s, msin(i)), nil
		},
	})
	if err != nil {
		t.Fatalf("RegisterManyWith: %v", err)
	}
	if res.Registered != n || res.Failed != 0 {
		t.Fatalf("rebalance cost registrations: Registered=%d Failed=%d %v",
			res.Registered, res.Failed, res.FirstErrors)
	}

	// Under the shrunk snapshot, only SUPIs owned by the removed shard 3
	// may have moved; everyone else keeps their shard (no flapping).
	moved := 0
	for i := 0; i < n; i++ {
		after := s.GNB.ShardOf(supiString(msin(i)))
		if before[i] == 3 {
			if after == 3 {
				t.Fatalf("SUPI %d still routes to the removed shard", i)
			}
			moved++
			continue
		}
		if after != before[i] {
			t.Fatalf("SUPI %d flapped %d -> %d though its owner survived", i, before[i], after)
		}
	}
	if moved == 0 {
		t.Fatal("no SUPI was owned by shard 3 — test exercised nothing")
	}

	// Restoring the replica set restores the exact original affinity:
	// consistent hashing is memoryless in the replica set.
	if _, err := s.SetRoutableReplicas(4); err != nil {
		t.Fatalf("SetRoutableReplicas(4): %v", err)
	}
	for i := 0; i < n; i++ {
		if got := s.GNB.ShardOf(supiString(msin(i))); got != before[i] {
			t.Fatalf("SUPI %d settled on %d, want original %d", i, got, before[i])
		}
	}
}

// TestShardedSameSeedDeterminism replays an identical replicas=4 run and
// requires bit-identical virtual-time results, lane by lane.
func TestShardedSameSeedDeterminism(t *testing.T) {
	run := func() *gnb.MassResult {
		s := newShardedTestSlice(t, SliceConfig{
			Isolation: paka.Container, Seed: 31, Replicas: 4,
		})
		res, err := s.GNB.RegisterManyWith(context.Background(), gnb.MassOptions{
			N: 20,
			NewUE: func(i int) (*ue.UE, error) {
				return provisionUE(t, s, fmt.Sprintf("%010d", 7400+i)), nil
			},
		})
		if err != nil {
			t.Fatalf("RegisterManyWith: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.Registered != b.Registered || a.Failed != b.Failed {
		t.Fatalf("outcome diverged: %d/%d vs %d/%d", a.Registered, a.Failed, b.Registered, b.Failed)
	}
	if a.Virtual != b.Virtual || a.FleetVirtual != b.FleetVirtual {
		t.Fatalf("virtual time diverged: %v/%v vs %v/%v", a.Virtual, a.FleetVirtual, b.Virtual, b.FleetVirtual)
	}
	for i := range a.ShardStats {
		sa, sb := a.ShardStats[i], b.ShardStats[i]
		if sa.Registered != sb.Registered || sa.Busy != sb.Busy {
			t.Fatalf("lane %d diverged: (%d, %v) vs (%d, %v)", i, sa.Registered, sa.Busy, sb.Registered, sb.Busy)
		}
	}
}

func TestShardedCounterAggregation(t *testing.T) {
	s := newShardedTestSlice(t, SliceConfig{
		Isolation: paka.Container, Seed: 17, Replicas: 2,
		AVPoolDepth: 4,
	})
	ctx := context.Background()
	n := 10
	supis := make([]string, n)
	for i := 0; i < n; i++ {
		provisionUE(t, s, fmt.Sprintf("%010d", 7500+i))
		supis[i] = supiString(fmt.Sprintf("%010d", 7500+i))
	}
	if err := s.PrewarmAVPool(ctx, supis); err != nil {
		t.Fatalf("PrewarmAVPool: %v", err)
	}
	perShard := s.ShardAVPoolStats()
	fleet := s.AVPoolStats()
	if fleet.Prewarmed == 0 {
		t.Fatal("prewarm banked nothing")
	}
	var sum uint64
	var pooled int
	for i, st := range perShard {
		sum += st.Prewarmed
		pooled += st.Pooled
		if st.Prewarmed == 0 {
			t.Fatalf("shard %d prewarmed nothing — prewarm must hit the owning replica only", i)
		}
	}
	if sum != fleet.Prewarmed || pooled != fleet.Pooled {
		t.Fatalf("fleet view (%d, %d) != shard sum (%d, %d)", fleet.Prewarmed, fleet.Pooled, sum, pooled)
	}
}
