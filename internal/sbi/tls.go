//shieldlint:wallclock audited 2026-08: certificate NotBefore/NotAfter are real PKI
// lifetimes consumed by crypto/tls in the runnable binaries; they never feed the
// simulated cost model, so the virtual clock does not apply to this file.

package sbi

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"time"
)

// PKI is an ephemeral operator certificate authority for the SBI: 3GPP
// TS 33.210 requires mutual TLS between network functions, and the paper's
// P-AKA modules speak HTTPS. The runnable binaries use this to stand up a
// real mTLS mesh; the in-process transport models the same costs instead.
type PKI struct {
	caCert *x509.Certificate
	caKey  *ecdsa.PrivateKey
	pool   *x509.CertPool
}

// NewPKI creates an operator CA valid for the given lifetime.
func NewPKI(operator string, lifetime time.Duration) (*PKI, error) {
	if lifetime <= 0 {
		lifetime = 24 * time.Hour
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("sbi: generate CA key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: operator + " SBI CA", Organization: []string{operator}},
		NotBefore:             time.Now().Add(-time.Minute),
		NotAfter:              time.Now().Add(lifetime),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("sbi: create CA certificate: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("sbi: parse CA certificate: %w", err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(cert)
	return &PKI{caCert: cert, caKey: key, pool: pool}, nil
}

// issue creates a leaf certificate for one NF instance.
func (p *PKI) issue(commonName string, hosts []string) (tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("sbi: generate leaf key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, big.NewInt(1<<62))
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("sbi: serial: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{CommonName: commonName},
		NotBefore:    time.Now().Add(-time.Minute),
		NotAfter:     p.caCert.NotAfter,
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, p.caCert, &key.PublicKey, p.caKey)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("sbi: create leaf certificate: %w", err)
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}, nil
}

// CAPEM exports the operator CA certificate for client tooling (curl
// --cacert).
func (p *PKI) CAPEM() []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: p.caCert.Raw})
}

// IssuePEM issues a leaf for external tooling and returns its certificate
// and key as PEM (curl --cert/--key).
func (p *PKI) IssuePEM(commonName string, hosts []string) (certPEM, keyPEM []byte, err error) {
	leaf, err := p.issue(commonName, hosts)
	if err != nil {
		return nil, nil, err
	}
	certPEM = pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: leaf.Certificate[0]})
	keyDER, err := x509.MarshalECPrivateKey(leaf.PrivateKey.(*ecdsa.PrivateKey))
	if err != nil {
		return nil, nil, fmt.Errorf("sbi: marshal leaf key: %w", err)
	}
	keyPEM = pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER})
	return certPEM, keyPEM, nil
}

// ServerTLS returns an mTLS server configuration for an NF: it presents
// its own leaf and requires a client certificate chained to the operator
// CA.
func (p *PKI) ServerTLS(nfName string, hosts []string) (*tls.Config, error) {
	leaf, err := p.issue(nfName, hosts)
	if err != nil {
		return nil, err
	}
	return &tls.Config{
		MinVersion:   tls.VersionTLS13,
		Certificates: []tls.Certificate{leaf},
		ClientAuth:   tls.RequireAndVerifyClientCert,
		ClientCAs:    p.pool,
	}, nil
}

// ClientTLS returns an mTLS client configuration for an NF.
func (p *PKI) ClientTLS(nfName string) (*tls.Config, error) {
	leaf, err := p.issue(nfName, nil)
	if err != nil {
		return nil, err
	}
	return &tls.Config{
		MinVersion:   tls.VersionTLS13,
		Certificates: []tls.Certificate{leaf},
		RootCAs:      p.pool,
	}, nil
}
