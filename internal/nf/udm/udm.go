// Package udm implements the Unified Data Management function: SUCI
// de-concealment with the home-network private key, authentication-vector
// orchestration against the UDR, and offload of the sensitive AKA
// cryptography to its P-AKA execution environment (the eUDM module when
// extracted, the in-process functions in the monolithic baseline), exactly
// as in the paper's modified message flow (Fig. 5 steps 2-3).
package udm

import (
	"context"
	"crypto/rand"
	"fmt"
	"io"
	"sync/atomic"

	"shield5g/internal/costmodel"
	"shield5g/internal/crypto/suci"
	"shield5g/internal/nf/nrf"
	"shield5g/internal/nf/udr"
	"shield5g/internal/paka"
	"shield5g/internal/sbi"
)

// Service identity.
const (
	ServiceName = "udm"
	NFType      = "UDM"
)

// SBI endpoint paths.
const (
	PathGenerateAuthData = "/nudm-ueau/v1/generate-auth-data"
	PathResync           = "/nudm-ueau/v1/resync"
)

// suciDeconcealCycles is the X25519 + AES-CTR + HMAC cost of Profile A
// de-concealment on the testbed CPU.
const suciDeconcealCycles = 240_000

// GenerateAuthDataRequest asks the UDM (home network) for a fresh HE AV.
type GenerateAuthDataRequest struct {
	SUCI               *suci.SUCI `json:"suci,omitempty"`
	SUPI               string     `json:"supi,omitempty"` // re-auth with known identity
	ServingNetworkName string     `json:"serving_network_name"`
}

// GenerateAuthDataResponse is the HE AV plus the de-concealed SUPI.
type GenerateAuthDataResponse struct {
	SUPI     string `json:"supi"`
	RAND     []byte `json:"rand"`
	AUTN     []byte `json:"autn"`
	XRESStar []byte `json:"xres_star"`
	KAUSF    []byte `json:"kausf"`
}

// ResyncRequest reports a UE synchronisation failure (AUTS) for SQN
// recovery.
type ResyncRequest struct {
	SUPI string `json:"supi"`
	RAND []byte `json:"rand"`
	AUTS []byte `json:"auts"`
}

// Empty is an empty response body.
type Empty struct{}

// Config wires a UDM instance.
type Config struct {
	Env *costmodel.Env
	// Registry hosts the UDM's SBI server.
	Registry *sbi.Registry
	// Invoker reaches the UDR, NRF and (when extracted) the eUDM module.
	Invoker sbi.Invoker
	// Functions is the AKA execution environment.
	Functions paka.UDMFunctions
	// HomeNetworkKey de-conceals SUCIs.
	HomeNetworkKey *suci.HomeNetworkKey
	// HMEE marks this instance as running in a higher trust domain for
	// NRF discovery.
	HMEE bool
	// Entropy overrides RAND generation (tests); nil selects crypto/rand.
	Entropy io.Reader
	// Reprovision, when set, restores a subscriber's long-term key into
	// the AKA execution environment (deploy points it at the eUDM
	// module). It is the degradation path for an execution environment
	// that lost its key store to a crash-restart.
	Reprovision func(ctx context.Context, supi string, k []byte) error
	// AVPoolDepth enables the AV precomputation pool: up to this many
	// vectors are banked per SUPI, refilled in batches so the enclave
	// boundary is crossed once per batch instead of once per
	// authentication. 0 disables the pool (the seed-identical path).
	AVPoolDepth int
	// AVBatchSize is the number of vectors minted per refill crossing;
	// ≤0 defaults to AVPoolDepth.
	AVBatchSize int
	// PrewarmSUPIs lists subscribers whose pool rings are filled at
	// construction (PrewarmAVPool), eliminating their first-contact
	// refill misses. The SUPIs must already be provisioned in the UDR and
	// the execution environment, so this only suits a UDM built against
	// an existing deployment; otherwise call PrewarmAVPool after
	// provisioning. Requires AVPoolDepth > 0.
	PrewarmSUPIs []string
	// PrewarmSNN is the serving network name the prewarmed vectors are
	// derived for; required when PrewarmSUPIs is set.
	PrewarmSNN string
	// CoalesceHint, when set, reports how many calls are queued behind
	// the current one at the AKA execution environment (deploy points it
	// at the eUDM module's switchless-ring occupancy). A refill widens
	// its batch by the hint — capped at one full ring plus the vector
	// being served — so queued demand is minted in the same crossing
	// instead of triggering its own refills. A zero hint (idle ring,
	// no ring, or nil func) keeps the configured batch size exactly,
	// which is what preserves bit-identical sequential replays.
	CoalesceHint func() int
	// ServiceName overrides the SBI service name (default "udm") so a
	// sharded deployment can run several UDM replicas side by side, each
	// with its own server, AV pool, and overload meter.
	ServiceName string
	// InstanceID overrides the NRF instance identity (default "udm-1").
	InstanceID string
}

// UDM is the data-management VNF.
type UDM struct {
	env          *costmodel.Env
	server       *sbi.Server
	udr          *udr.Client
	nrfc         *nrf.Client
	fns          paka.UDMFunctions
	hnKey        *suci.HomeNetworkKey
	entropy      io.Reader
	reprovision  func(ctx context.Context, supi string, k []byte) error
	pool         *avPool
	coalesceHint func() int

	reprovisions atomic.Uint64
}

// New creates a UDM, registers its SBI server and announces it to the NRF.
func New(ctx context.Context, cfg Config) (*UDM, error) {
	if cfg.Env == nil || cfg.Registry == nil || cfg.Invoker == nil {
		return nil, fmt.Errorf("udm: Env, Registry and Invoker are required")
	}
	if cfg.Functions == nil {
		return nil, fmt.Errorf("udm: Functions (AKA execution environment) is required")
	}
	if cfg.HomeNetworkKey == nil {
		return nil, fmt.Errorf("udm: HomeNetworkKey is required")
	}
	entropy := cfg.Entropy
	if entropy == nil {
		entropy = rand.Reader
	}
	service := cfg.ServiceName
	if service == "" {
		service = ServiceName
	}
	instance := cfg.InstanceID
	if instance == "" {
		instance = "udm-1"
	}
	u := &UDM{
		env:          cfg.Env,
		server:       sbi.NewServer(service, cfg.Env),
		udr:          udr.NewClient(cfg.Invoker),
		nrfc:         nrf.NewClient(cfg.Invoker),
		fns:          cfg.Functions,
		hnKey:        cfg.HomeNetworkKey,
		entropy:      entropy,
		reprovision:  cfg.Reprovision,
		coalesceHint: cfg.CoalesceHint,
	}
	if cfg.AVPoolDepth > 0 {
		u.pool = newAVPool(cfg.AVPoolDepth, cfg.AVBatchSize)
	}
	u.server.HandleDual(PathGenerateAuthData, sbi.BinHandler(u.handleGenerateAuthData))
	u.server.HandleDual(PathResync, sbi.BinHandler(u.handleResync))
	if err := cfg.Registry.Register(u.server); err != nil {
		return nil, err
	}
	if err := u.nrfc.Register(ctx, nrf.NFProfile{
		InstanceID: instance, NFType: NFType, Service: service, HMEE: cfg.HMEE,
	}); err != nil {
		return nil, fmt.Errorf("udm: NRF registration: %w", err)
	}
	if len(cfg.PrewarmSUPIs) > 0 {
		if u.pool == nil {
			return nil, fmt.Errorf("udm: PrewarmSUPIs requires AVPoolDepth > 0")
		}
		if cfg.PrewarmSNN == "" {
			return nil, fmt.Errorf("udm: PrewarmSUPIs requires PrewarmSNN")
		}
		if err := u.PrewarmAVPool(ctx, cfg.PrewarmSUPIs, cfg.PrewarmSNN); err != nil {
			return nil, err
		}
	}
	return u, nil
}

func (u *UDM) handleGenerateAuthData(ctx context.Context, req *GenerateAuthDataRequest) (*GenerateAuthDataResponse, error) {
	supi := req.SUPI
	if supi == "" {
		switch {
		case req.SUCI == nil:
			return nil, sbi.Problem(400, "Bad Request", "MANDATORY_IE_MISSING", "SUCI or SUPI required")
		case req.SUCI.Scheme == suci.SchemeNull:
			// Null protection scheme (test networks): no deconcealment.
			id, err := req.SUCI.NullSUPI()
			if err != nil {
				return nil, sbi.Problem(403, "Forbidden", "DECONCEALMENT_FAILURE", "%v", err)
			}
			supi = id.String()
		default:
			u.env.Charge(ctx, suciDeconcealCycles)
			id, err := u.hnKey.Deconceal(req.SUCI)
			if err != nil {
				return nil, sbi.Problem(403, "Forbidden", "DECONCEALMENT_FAILURE", "%v", err)
			}
			supi = id.String()
		}
	}
	if req.ServingNetworkName == "" {
		return nil, sbi.Problem(400, "Bad Request", "MANDATORY_IE_MISSING", "serving network name required")
	}

	var av *paka.UDMGenerateAVResponse
	var err error
	if u.pool != nil {
		av, err = u.pooledAV(ctx, supi, req.ServingNetworkName)
	} else {
		av, err = u.freshAV(ctx, supi, req.ServingNetworkName)
	}
	if err != nil {
		return nil, err
	}
	return &GenerateAuthDataResponse{
		SUPI:     supi,
		RAND:     av.RAND,
		AUTN:     av.AUTN,
		XRESStar: av.XRESStar,
		KAUSF:    av.KAUSF,
	}, nil
}

// avRequest mints one enclave input: it advances the subscriber's SQN in
// the UDR and draws a fresh RAND. Every minted item — pooled or served
// immediately — goes through here, so sequence numbers stay consistent
// regardless of batching.
func (u *UDM) avRequest(ctx context.Context, supi, snn string) (paka.UDMGenerateAVRequest, error) {
	auth, err := u.udr.NextAuth(ctx, supi)
	if err != nil {
		return paka.UDMGenerateAVRequest{}, err
	}
	randBytes := make([]byte, 16)
	if _, err := io.ReadFull(u.entropy, randBytes); err != nil {
		return paka.UDMGenerateAVRequest{}, sbi.Problem(500, "Internal Server Error", "SYSTEM_FAILURE", "RAND generation: %v", err)
	}
	return paka.UDMGenerateAVRequest{
		SUPI:  supi,
		OPc:   auth.OPc,
		RAND:  randBytes,
		SQN:   auth.SQN,
		AMFID: auth.AMFField,
		SNN:   snn,
	}, nil
}

// generateAV invokes the execution environment for a single vector, with
// the reprovision-on-lost-key retry.
func (u *UDM) generateAV(ctx context.Context, avReq *paka.UDMGenerateAVRequest) (*paka.UDMGenerateAVResponse, error) {
	av, err := u.fns.GenerateAV(ctx, avReq)
	if err != nil && u.reprovision != nil && sbi.HasCause(err, "USER_NOT_FOUND") {
		// Graceful degradation: the execution environment lost its key
		// store (container crash-restart has no sealed backup). Re-fetch
		// the long-term key from the UDR, push it back in, and retry once.
		if sub, gerr := u.udr.Get(ctx, avReq.SUPI); gerr == nil {
			if perr := u.reprovision(ctx, avReq.SUPI, sub.K); perr == nil {
				u.reprovisions.Add(1)
				av, err = u.fns.GenerateAV(ctx, avReq)
			}
		}
	}
	return av, err
}

// freshAV is the unpooled path: one SQN advance, one RAND, one crossing.
func (u *UDM) freshAV(ctx context.Context, supi, snn string) (*paka.UDMGenerateAVResponse, error) {
	avReq, err := u.avRequest(ctx, supi, snn)
	if err != nil {
		return nil, err
	}
	return u.generateAV(ctx, &avReq)
}

// avRequestBatch mints count enclave inputs through one UDR round trip
// (NextAuthBatch) and one entropy draw. The state evolution is
// bit-identical to count sequential avRequest calls: the UDR advances the
// SQN with the same per-vector step under one lock, and the single
// entropy read is sliced into the same 16 bytes per item, in order.
//
//shieldlint:hotpath
func (u *UDM) avRequestBatch(ctx context.Context, supi, snn string, count int) ([]paka.UDMGenerateAVRequest, error) {
	auth, err := u.udr.NextAuthBatch(ctx, supi, count)
	if err != nil {
		return nil, err
	}
	//shieldlint:ignore hotalloc one RAND backing per refill, amortized over the batch
	randBytes := make([]byte, 16*count)
	if _, err := io.ReadFull(u.entropy, randBytes); err != nil {
		return nil, sbi.Problem(500, "Internal Server Error", "SYSTEM_FAILURE", "RAND generation: %v", err)
	}
	//shieldlint:ignore hotalloc one item slice per refill, amortized over the batch
	items := make([]paka.UDMGenerateAVRequest, count)
	for i := range items {
		items[i] = paka.UDMGenerateAVRequest{
			SUPI:  supi,
			OPc:   auth.OPc,
			RAND:  randBytes[i*16 : (i+1)*16 : (i+1)*16],
			SQN:   auth.SQN(i),
			AMFID: auth.AMFField,
			SNN:   snn,
		}
	}
	return items, nil
}

// pooledAV serves from the precomputation pool, refilling synchronously on
// a miss: one batch crossing mints AVBatchSize vectors, the oldest serves
// this request and the rest are banked for the SUPI's next
// authentications.
func (u *UDM) pooledAV(ctx context.Context, supi, snn string) (*paka.UDMGenerateAVResponse, error) {
	if av, ok := u.pool.take(supi); ok {
		return av, nil
	}
	count := u.refillCount()
	items, err := u.avRequestBatch(ctx, supi, snn, count)
	if err != nil {
		return nil, err
	}
	vectors, err := u.generateBatch(ctx, items)
	if err != nil {
		return nil, err
	}
	u.pool.fill(supi, vectors[1:])
	return &vectors[0], nil
}

// refillCount resolves how many vectors the next refill crossing mints:
// the configured batch size, widened opportunistically by the coalescing
// hint (queued switchless-ring demand) up to one full ring plus the
// vector being served. With no hint — or a zero one — this is exactly
// pool.batch, the committed deterministic path.
func (u *UDM) refillCount() int {
	count := u.pool.batch
	if u.coalesceHint == nil {
		return count
	}
	hint := u.coalesceHint()
	if hint <= 0 {
		return count
	}
	max := u.pool.depth + 1
	if max < count {
		max = count
	}
	count += hint
	if count > max {
		count = max
	}
	return count
}

// generateBatch mints the given items through one boundary crossing when
// the execution environment supports it, falling back to the sequential
// per-item path (which carries the reprovision retry) when it does not or
// when the batch call reports a lost key store.
func (u *UDM) generateBatch(ctx context.Context, items []paka.UDMGenerateAVRequest) ([]paka.UDMGenerateAVResponse, error) {
	if bfns, ok := u.fns.(paka.UDMBatchFunctions); ok {
		resp, err := bfns.GenerateAVBatch(ctx, &paka.UDMGenerateAVBatchRequest{Items: items})
		switch {
		case err == nil:
			if len(resp.Vectors) != len(items) {
				return nil, sbi.Problem(500, "Internal Server Error", "SYSTEM_FAILURE",
					"batch returned %d vectors for %d items", len(resp.Vectors), len(items))
			}
			return resp.Vectors, nil
		case !sbi.HasCause(err, "USER_NOT_FOUND"):
			return nil, err
		}
		// Lost key store: drop to the per-item path below, whose retry
		// reprovisions the key before giving up.
	}
	vectors := make([]paka.UDMGenerateAVResponse, 0, len(items))
	for i := range items {
		av, err := u.generateAV(ctx, &items[i])
		if err != nil {
			return nil, err
		}
		vectors = append(vectors, *av)
	}
	return vectors, nil
}

func (u *UDM) handleResync(ctx context.Context, req *ResyncRequest) (*Empty, error) {
	sub, err := u.udr.Get(ctx, req.SUPI)
	if err != nil {
		return nil, err
	}
	resp, err := u.fns.Resync(ctx, &paka.UDMResyncRequest{
		SUPI: req.SUPI,
		OPc:  sub.OPc,
		RAND: req.RAND,
		AUTS: req.AUTS,
	})
	if err != nil {
		return nil, sbi.Problem(403, "Forbidden", "SYNC_FAILURE", "%v", err)
	}
	if err := u.udr.Resync(ctx, req.SUPI, resp.SQNMS); err != nil {
		return nil, err
	}
	if u.pool != nil {
		// The rebase stranded any banked vectors: their SQNs predate the
		// UE's recovered counter and would fail its freshness check.
		u.pool.invalidate(req.SUPI)
	}
	return &Empty{}, nil
}

// Reprovisions reports how many subscriber keys were restored into the
// execution environment after it lost them.
func (u *UDM) Reprovisions() uint64 { return u.reprovisions.Load() }

// Server exposes the UDM's SBI server so deploy can attach overload
// control (load meter, AV-pool backpressure bias).
func (u *UDM) Server() *sbi.Server { return u.server }

// PoolPressure reports the AV pool's miss fraction (0..1) — the fraction
// of authentications that crossed the enclave boundary synchronously
// because no banked vector was available. The overload meter adds it to
// the UDM's advertised load so pool thrash shows up in the OCI before the
// virtual queue saturates. Zero when the pool is disabled or idle.
func (u *UDM) PoolPressure() float64 {
	if u.pool == nil {
		return 0
	}
	hits, misses := u.pool.hits.Load(), u.pool.misses.Load()
	if total := hits + misses; total > 0 {
		return float64(misses) / float64(total)
	}
	return 0
}

// PoolCounters exposes the raw AV-pool hit/miss counters so callers can
// window the miss fraction (cumulative pressure is dominated by cold-start
// misses: every subscriber's first authentication is one).
func (u *UDM) PoolCounters() (hits, misses uint64) {
	if u.pool == nil {
		return 0, 0
	}
	return u.pool.hits.Load(), u.pool.misses.Load()
}

// Client is the AUSF-side helper for UDM calls.
type Client struct {
	invoker sbi.Invoker
	service string
}

// NewClient wraps an SBI transport for UDM calls against the default
// service name.
func NewClient(invoker sbi.Invoker) *Client {
	return &Client{invoker: invoker, service: ServiceName}
}

// NewClientFor wraps an SBI transport for UDM calls against a specific
// replica's service name — the static intra-shard binding of a sharded
// deployment, which needs no NRF round trip.
func NewClientFor(invoker sbi.Invoker, service string) *Client {
	return &Client{invoker: invoker, service: service}
}

// DiscoverClient resolves a UDM instance through the NRF (restricted to
// HMEE-enabled hosts when requireHMEE is set) and returns a client bound
// to the discovered service.
func DiscoverClient(ctx context.Context, invoker sbi.Invoker, requireHMEE bool) (*Client, error) {
	p, err := nrf.NewClient(invoker).Discover(ctx, NFType, requireHMEE)
	if err != nil {
		return nil, fmt.Errorf("udm: discovery: %w", err)
	}
	return &Client{invoker: invoker, service: p.Service}, nil
}

// GenerateAuthData requests a fresh HE AV.
func (c *Client) GenerateAuthData(ctx context.Context, req *GenerateAuthDataRequest) (*GenerateAuthDataResponse, error) {
	var resp GenerateAuthDataResponse
	if err := c.invoker.Post(ctx, c.service, PathGenerateAuthData, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Resync reports an AUTS for sequence-number recovery.
func (c *Client) Resync(ctx context.Context, req *ResyncRequest) error {
	return c.invoker.Post(ctx, c.service, PathResync, req, nil)
}
