package paka

import (
	"context"
	"sync"
)

// Connection identifies one keep-alive client connection to the P-AKA
// modules, carried on the request context by the mass-registration
// drivers. Each module keeps one open RuntimeSession per connection ID,
// so a worker's pipelined requests reuse the connection instead of
// re-paying the accept machinery and TLS handshake per UE.
type Connection struct {
	// ID distinguishes concurrent connections (one per driver worker).
	ID uint64
	// Batch is how many requests are served on one session before it is
	// recycled (closed and reopened); ≤0 disables keep-alive entirely,
	// leaving the per-request path bit-identical to the seed behaviour.
	Batch int
}

type connKey struct{}

// WithConnection attaches a keep-alive connection identity to ctx.
func WithConnection(ctx context.Context, id uint64, batch int) context.Context {
	return context.WithValue(ctx, connKey{}, Connection{ID: id, Batch: batch})
}

// ConnectionFrom extracts the connection identity; ok is false when no
// connection is attached or keep-alive is disabled.
func ConnectionFrom(ctx context.Context) (Connection, bool) {
	c, ok := ctx.Value(connKey{}).(Connection)
	return c, ok && c.Batch > 0
}

// moduleSession is one module-side keep-alive connection. Its mutex
// serialises requests on the same connection (a pipelined connection is
// ordered by construction); different connections proceed in parallel.
type moduleSession struct {
	mu     sync.Mutex
	rt     Runtime
	sess   RuntimeSession
	served int
}

// session returns (creating on demand) the per-connection state for id.
func (m *Module) session(id uint64) *moduleSession {
	m.sessMu.Lock()
	defer m.sessMu.Unlock()
	if m.sessions == nil {
		m.sessions = make(map[uint64]*moduleSession)
	}
	ms, ok := m.sessions[id]
	if !ok {
		ms = &moduleSession{}
		m.sessions[id] = ms
	}
	return ms
}

// dropSessions forgets all per-connection state without paying teardown
// costs — the connections died with the runtime (Stop, crash restart).
func (m *Module) dropSessions() {
	m.sessMu.Lock()
	m.sessions = nil
	m.sessMu.Unlock()
}

// serve routes one request through the runtime: the plain per-request
// path when no keep-alive connection rides ctx, otherwise the
// connection's open session, recycled every Connection.Batch requests so
// batch size is a real amortization factor.
func (m *Module) serve(ctx context.Context, in, out int, handler func(Exec) error) (Breakdown, error) {
	conn, ok := ConnectionFrom(ctx)
	if !ok {
		return m.rt().ServeRequest(ctx, in, out, handler)
	}

	rt := m.rt()
	ms := m.session(conn.ID)
	ms.mu.Lock()
	defer ms.mu.Unlock()

	// A session opened on a previous runtime died with its enclave when
	// the module crash-restarted: drop it without teardown costs.
	if ms.rt != rt {
		ms.sess = nil
	}
	if ms.sess == nil {
		sess, err := rt.OpenSession(ctx)
		if err != nil {
			return Breakdown{}, err
		}
		ms.rt, ms.sess, ms.served = rt, sess, 0
	}

	bd, err := ms.sess.Serve(ctx, in, out, handler)
	if err != nil {
		// Never reuse a session that just failed — the retry path must
		// reopen on whatever runtime is then current.
		ms.sess = nil
		return bd, err
	}
	ms.served++
	if ms.served >= conn.Batch {
		if cerr := ms.sess.Close(ctx); cerr != nil {
			ms.sess = nil
			return bd, cerr
		}
		ms.sess = nil
	}
	return bd, nil
}
