// Package gnb simulates the 5G radio access network side: a gNB relaying
// NAS between UEs and the AMF over N1/N2, with an N3 path into the UPF,
// plus the gNBSIM-style mass-registration driver the paper uses for its
// large-scale experiments and an SDR profile for the OTA test.
package gnb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"shield5g/internal/chaos"
	"shield5g/internal/costmodel"
	"shield5g/internal/metrics"
	"shield5g/internal/nf/amf"
	"shield5g/internal/nf/upf"
	"shield5g/internal/paka"
	"shield5g/internal/sbi"
	"shield5g/internal/simclock"
	"shield5g/internal/topology"
	"shield5g/internal/ue"
)

// RadioProfile models the access-side latency per NAS round trip.
type RadioProfile struct {
	Name string
	// RTTCycles is the UE<->gNB round-trip cost (RRC/MAC processing and
	// the air interface) charged per NAS exchange.
	RTTCycles simclock.Cycles
}

// GNBSIM is the paper's simulated RAN entity. The per-round-trip cost
// aggregates everything between the UE stimulus and the core's NAS
// handler that is not SBI or module time: RRC/NGAP processing, SCTP, OAI
// registration timers. It is calibrated (~14 ms per NAS round trip) so
// that end-to-end session setup lands in the paper's ~62 ms regime while
// the SGX-attributable share stays a small fraction (§V-B4).
func GNBSIM() RadioProfile {
	return RadioProfile{Name: "gnbsim", RTTCycles: 26_400_000}
}

// USRPX310 models the paper's OTA gNB: a USRP x310 software-defined radio
// with OAI L1/L2, adding real air-interface latency on top of the RAN
// processing.
func USRPX310() RadioProfile {
	return RadioProfile{Name: "usrp-x310", RTTCycles: 52_800_000} // ~22 ms per round trip
}

// Config wires a gNB.
type Config struct {
	Env *costmodel.Env
	// AMF is the N2 peer of a single-replica core. Leave it nil and set
	// AMFs for a sharded core.
	AMF *amf.AMF
	// AMFs is the replica pool of a sharded core, in shard-index order
	// (matching the routing snapshots the Router receives). When set, the
	// gNB routes each UE to AMFs[Router.Route(tenant, SUPI)]; when only
	// AMF is set the gNB behaves exactly as the single-replica seed.
	AMFs []*amf.AMF
	// Router resolves (tenant, SUPI) to a replica index from the
	// last-known-good topology snapshot. Required when len(AMFs) > 1.
	Router *topology.Router
	// Tenant identifies this gNB for shuffle-shard assignment; defaults
	// to "gnb/"+MCC+MNC.
	Tenant string
	// UPF is the N3 peer for the data path (optional; nil disables
	// user-plane forwarding).
	UPF *upf.UPF
	// MCC/MNC are broadcast in SIB1; COTS UEs check them before
	// attaching.
	MCC, MNC string
	// Radio selects the access profile (GNBSIM default).
	Radio RadioProfile
}

// GNB is one simulated base station.
type GNB struct {
	env    *costmodel.Env
	amfs   []*amf.AMF
	router *topology.Router
	tenant string
	upf    *upf.UPF
	mcc    string
	mnc    string
	radio  RadioProfile

	nextRANUE atomic.Uint64
}

// New creates a gNB.
func New(cfg Config) (*GNB, error) {
	amfs := cfg.AMFs
	if len(amfs) == 0 && cfg.AMF != nil {
		amfs = []*amf.AMF{cfg.AMF}
	}
	if cfg.Env == nil || len(amfs) == 0 {
		return nil, errors.New("gnb: Env and AMF (or AMFs) are required")
	}
	for _, a := range amfs {
		if a == nil {
			return nil, errors.New("gnb: nil AMF replica")
		}
	}
	if len(amfs) > 1 && cfg.Router == nil {
		return nil, errors.New("gnb: Router is required for a replicated AMF pool")
	}
	if cfg.MCC == "" || cfg.MNC == "" {
		return nil, errors.New("gnb: broadcast PLMN (MCC/MNC) is required")
	}
	radio := cfg.Radio
	if radio.Name == "" {
		radio = GNBSIM()
	}
	tenant := cfg.Tenant
	if tenant == "" {
		tenant = "gnb/" + cfg.MCC + cfg.MNC
	}
	return &GNB{
		env:    cfg.Env,
		amfs:   amfs,
		router: cfg.Router,
		tenant: tenant,
		upf:    cfg.UPF,
		mcc:    cfg.MCC,
		mnc:    cfg.MNC,
		radio:  radio,
	}, nil
}

// Replicas reports the size of the gNB's AMF pool.
func (g *GNB) Replicas() int { return len(g.amfs) }

// Tenant reports the shuffle-shard identity this gNB routes under.
func (g *GNB) Tenant() string { return g.tenant }

// ShardOf resolves a SUPI to its owning replica index under the current
// last-known-good snapshot. Single-replica gNBs always answer 0; so does
// a sharded gNB that has not yet received a snapshot (the static-wiring
// fallback — routing never blocks on the control plane).
func (g *GNB) ShardOf(supi string) int {
	if g.router == nil || len(g.amfs) == 1 {
		return 0
	}
	idx, ok := g.router.Route(g.tenant, supi)
	if !ok || idx < 0 || idx >= len(g.amfs) {
		return 0
	}
	return idx
}

// amfFor picks the AMF replica owning the device's SUPI.
func (g *GNB) amfFor(device *ue.UE) (*amf.AMF, int) {
	idx := g.ShardOf(device.SUPIString())
	return g.amfs[idx], idx
}

// BroadcastPLMN is the PLMN the gNB announces.
func (g *GNB) BroadcastPLMN() string { return g.mcc + g.mnc }

// Radio reports the access profile in use.
func (g *GNB) Radio() RadioProfile { return g.radio }

// Session is one attached UE's RAN context.
type Session struct {
	gnb     *GNB
	amf     *amf.AMF
	shard   int
	ue      *ue.UE
	ranUEID uint64
	teid    uint32

	// SetupTime is the end-to-end registration duration in virtual time
	// (the paper's session setup measurement).
	SetupTime time.Duration
}

// Shard reports the replica index that served this session.
func (s *Session) Shard() int { return s.shard }

// maxNASRounds bounds the registration exchange (resync adds one extra
// challenge round).
const maxNASRounds = 12

// RegisterUE runs a complete UE registration through the core: SUCI
// registration request, AKA challenge/response (with one resynchronisation
// retry if needed), security mode, and registration accept. It returns the
// RAN session and charges all costs to ctx's account.
func (g *GNB) RegisterUE(ctx context.Context, device *ue.UE) (*Session, error) {
	if err := device.DetectNetwork(g.BroadcastPLMN()); err != nil {
		return nil, err
	}

	// Pin the request account so a caller without one still gets a
	// coherent setup-time measurement.
	acct := simclock.AccountFrom(ctx)
	ctx = simclock.WithAccount(ctx, acct)
	start := acct.Total()

	ranUEID := g.nextRANUE.Add(1)

	// One routing decision per registration: the SUPI's owning replica
	// serves the whole vertical slice (AMF -> AUSF -> UDM -> modules).
	a, shardIdx := g.amfFor(device)
	uplink, err := device.BuildRegistrationRequest(ctx, a.ServingNetworkName())
	if err != nil {
		return nil, err
	}
	if err := g.driveRegistration(ctx, a, device, ranUEID, uplink); err != nil {
		return nil, err
	}
	return &Session{
		gnb:       g,
		amf:       a,
		shard:     shardIdx,
		ue:        device,
		ranUEID:   ranUEID,
		SetupTime: g.env.Model.Duration(acct.Total() - start),
	}, nil
}

// ReRegisterUE runs a mobility registration using the UE's stored 5G-GUTI
// (for example after the UE moved to this gNB): the core resolves the
// temporary identity and re-authenticates without a SUCI ever crossing
// the air interface.
func (g *GNB) ReRegisterUE(ctx context.Context, device *ue.UE) (*Session, error) {
	if err := device.DetectNetwork(g.BroadcastPLMN()); err != nil {
		return nil, err
	}
	acct := simclock.AccountFrom(ctx)
	ctx = simclock.WithAccount(ctx, acct)
	start := acct.Total()

	ranUEID := g.nextRANUE.Add(1)

	// Mobility registrations route on the SUPI too: the GUTI was minted
	// by the owning replica, which holds the TMSI binding.
	a, shardIdx := g.amfFor(device)
	uplink, err := device.BuildReRegistrationRequest(ctx, a.ServingNetworkName())
	if err != nil {
		return nil, err
	}
	if err := g.driveRegistration(ctx, a, device, ranUEID, uplink); err != nil {
		return nil, err
	}
	return &Session{
		gnb:       g,
		amf:       a,
		shard:     shardIdx,
		ue:        device,
		ranUEID:   ranUEID,
		SetupTime: g.env.Model.Duration(acct.Total() - start),
	}, nil
}

// driveRegistration relays the NAS exchange between UE and the owning
// AMF replica until the registration completes.
func (g *GNB) driveRegistration(ctx context.Context, a *amf.AMF, device *ue.UE, ranUEID uint64, initialUplink []byte) error {
	g.chargeRadio(ctx)
	downlink, err := a.HandleInitialUE(ctx, ranUEID, initialUplink)
	if err != nil {
		return fmt.Errorf("gnb: initial UE message: %w", err)
	}

	for round := 0; round < maxNASRounds; round++ {
		up, done, err := device.HandleDownlinkNAS(ctx, downlink)
		if err != nil {
			return fmt.Errorf("gnb: UE NAS handling: %w", err)
		}
		if done && up == nil {
			break
		}
		if up == nil {
			return errors.New("gnb: UE stalled without uplink")
		}
		g.chargeRadio(ctx)
		downlink, err = a.HandleUplinkNAS(ctx, ranUEID, up)
		if err != nil {
			return fmt.Errorf("gnb: uplink NAS: %w", err)
		}
		if downlink == nil {
			// Registration complete acknowledged.
			break
		}
		if done {
			break
		}
	}

	if _, ok := a.SUPIOf(ranUEID); !ok {
		return errors.New("gnb: registration did not complete")
	}
	return nil
}

// chargeRadio charges one access-side NAS round trip.
func (g *GNB) chargeRadio(ctx context.Context) {
	g.env.Charge(ctx, g.env.JitterFor(ctx).Scale(g.radio.RTTCycles, 0.1))
}

// RANUEID exposes the session's RAN identifier.
func (s *Session) RANUEID() uint64 { return s.ranUEID }

// EstablishPDUSession sets up a data session through SMF/UPF and records
// the assigned UE address and uplink tunnel (delivered over N2 in a real
// deployment).
func (s *Session) EstablishPDUSession(ctx context.Context, sessionID byte, dnn string) error {
	up, err := s.ue.BuildPDUSessionRequest(ctx, sessionID, dnn)
	if err != nil {
		return err
	}
	s.gnb.chargeRadio(ctx)
	down, err := s.amf.HandleUplinkNAS(ctx, s.ranUEID, up)
	if err != nil {
		return fmt.Errorf("gnb: PDU session: %w", err)
	}
	if _, _, err := s.ue.HandleDownlinkNAS(ctx, down); err != nil {
		return fmt.Errorf("gnb: PDU accept: %w", err)
	}
	teid, ok := s.amf.PDUSessionTEID(s.ranUEID)
	if !ok {
		return errors.New("gnb: AMF reported no tunnel for session")
	}
	s.teid = teid
	return nil
}

// TEID reports the uplink tunnel ID of the established PDU session.
func (s *Session) TEID() uint32 { return s.teid }

// Deregister detaches the UE from the core, releasing its AMF context and
// GUTI binding.
func (s *Session) Deregister(ctx context.Context) error {
	up, err := s.ue.BuildDeregistrationRequest(ctx)
	if err != nil {
		return err
	}
	s.gnb.chargeRadio(ctx)
	if _, err := s.amf.HandleUplinkNAS(ctx, s.ranUEID, up); err != nil {
		return fmt.Errorf("gnb: deregistration: %w", err)
	}
	return nil
}

// SendData pushes a payload up the N3 tunnel and returns the data-network
// response, proving the session carries traffic (the paper's OTA
// "Test/-1 — OpenAirInterface" connection).
func (s *Session) SendData(ctx context.Context, payload []byte) ([]byte, error) {
	if s.gnb.upf == nil {
		return nil, errors.New("gnb: no UPF attached")
	}
	if s.teid == 0 {
		return nil, errors.New("gnb: no PDU session established")
	}
	s.gnb.chargeRadio(ctx)
	return s.gnb.upf.ForwardUplink(ctx, s.teid, payload)
}

// MassResult aggregates a gnbsim mass-registration run.
type MassResult struct {
	Registered int
	Failed     int
	SetupTimes *metrics.Recorder

	// Parallelism is the worker count the run actually used.
	Parallelism int
	// Wall is the real elapsed time of the driver loop.
	Wall time.Duration
	// Virtual is the shared virtual-clock advance over the run — the
	// simulated core's aggregate busy time across all registrations.
	Virtual time.Duration
	// WallRegsPerSec is successful registrations per second of wall
	// clock; VirtualRegsPerSec is the same rate against virtual time.
	WallRegsPerSec    float64
	VirtualRegsPerSec float64
	// FailureCounts tallies failed registrations by failure class (the
	// SBI ProblemDetails cause, or "internal" for everything else);
	// FirstErrors keeps the first error observed per class so failures
	// are diagnosable instead of being swallowed into a bare count.
	FailureCounts map[string]int
	FirstErrors   map[string]error

	// Attempts is the total number of registration attempts across all
	// UEs (equal to N when nothing needed a retry). Recovered tallies,
	// by failure class, the failed attempts of UEs that subsequently
	// registered on a retry — the per-failure-class recovery count of a
	// run under injected faults.
	Attempts  int
	Recovered map[string]int

	// ShardStats is the per-replica lane accounting of a sharded run
	// (nil when the gNB fronts a single replica): every registration
	// attempt's virtual cost is attributed to the replica that served
	// it. The shared simclock.Clock sums busy cycles across all lanes,
	// so the fleet figures below derive from these lanes instead.
	ShardStats []ShardStat
	// FleetVirtual is the fleet makespan: the busiest replica lane's
	// virtual busy time. Replicas are independent service lanes — lane
	// work overlaps in the modelled deployment even though the simulation
	// executes it on one summed clock — so N registrations spread over R
	// lanes complete when the most-loaded lane drains. For single-replica
	// runs it equals Virtual.
	FleetVirtual time.Duration
	// FleetVirtualRegsPerSec is Registered over FleetVirtual — the
	// sharded core's headline throughput figure.
	FleetVirtualRegsPerSec float64
}

// ShardStat is one replica lane's share of a mass run.
type ShardStat struct {
	Registered int
	Failed     int
	// Busy is the lane's summed virtual cost across every attempt it
	// served (including failed ones — a shard pays for its rejects).
	Busy time.Duration
	// SetupTimes is the lane's own setup-time distribution. The shard
	// recorders partition the fleet-wide MassResult.SetupTimes — every
	// sample lands in exactly one shard recorder, so per-shard and fleet
	// views never double count.
	SetupTimes *metrics.Recorder
}

// MassOptions configures a mass-registration run.
type MassOptions struct {
	// N is the number of UEs to register.
	N int
	// NewUE provisions the i'th device. Under parallel runs it may be
	// called from multiple goroutines and must be safe for that.
	NewUE func(i int) (*ue.UE, error)
	// Parallelism is the worker count; values <= 1 select the
	// sequential driver, whose virtual-time draws are bit-for-bit
	// identical run to run for a fixed env seed. Parallel runs are
	// seed-reproducible per worker: worker w draws from the independent
	// stream Jitter.Stream(w+1) and handles exactly the indices
	// i % Parallelism == w, in order.
	Parallelism int
	// MaxAttempts bounds the full-registration attempts per UE; values
	// <= 1 register each UE exactly once (the seed behaviour). A UE whose
	// registration fails with any error is re-driven from scratch — its
	// device state resets with the next registration request — up to this
	// many times before it counts as Failed.
	MaxAttempts int
	// Chaos, when set, attaches the injector's per-worker fault-decision
	// stream to each parallel worker's context so fault draws are
	// deterministic per worker. The sequential driver needs no attachment
	// (it falls back to the injector's root stream).
	Chaos *chaos.Injector
	// BatchSize, when > 0, runs every registration over a keep-alive SBI
	// connection to the P-AKA modules: up to BatchSize module requests
	// share one session (one accept + TLS handshake + teardown), so the
	// enclave's boundary machinery is amortized across the batch. The
	// sequential driver holds one connection; each parallel worker holds
	// its own. 0 keeps the seed's connection-per-request behaviour.
	BatchSize int
	// Switchless marks every module request of the run as willing to use
	// the switchless ECALL submission ring (paka.WithSwitchless). Only
	// effective against a slice deployed with SliceConfig.Switchless;
	// elsewhere requests take the classic ECALL path unchanged.
	Switchless bool
}

// failureClass buckets a registration error for MassResult accounting:
// SBI ProblemDetails keep their 3GPP cause string, everything else is
// "internal".
func failureClass(err error) string {
	var pd *sbi.ProblemDetails
	if errors.As(err, &pd) {
		if pd.Cause != "" {
			return pd.Cause
		}
		return fmt.Sprintf("http-%d", pd.Status)
	}
	return "internal"
}

func (r *MassResult) recordFailure(err error) {
	class := failureClass(err)
	r.Failed++
	r.FailureCounts[class]++
	if _, seen := r.FirstErrors[class]; !seen {
		r.FirstErrors[class] = err
	}
}

// finish stamps the throughput figures once counts are final.
func (r *MassResult) finish(wall time.Duration, virtual time.Duration) {
	r.Wall = wall
	r.Virtual = virtual
	if s := wall.Seconds(); s > 0 {
		r.WallRegsPerSec = float64(r.Registered) / s
	}
	if s := virtual.Seconds(); s > 0 {
		r.VirtualRegsPerSec = float64(r.Registered) / s
	}
	// Fleet throughput: single-lane runs collapse to the shared-clock
	// figures; sharded runs take the makespan over replica lanes.
	r.FleetVirtual = virtual
	r.FleetVirtualRegsPerSec = r.VirtualRegsPerSec
	if len(r.ShardStats) > 1 {
		var max time.Duration
		for _, s := range r.ShardStats {
			if s.Busy > max {
				max = s.Busy
			}
		}
		r.FleetVirtual = max
		if s := max.Seconds(); s > 0 {
			r.FleetVirtualRegsPerSec = float64(r.Registered) / s
		}
	}
}

// laneTally accumulates per-shard lane accounting during a run.
type laneTally struct {
	cycles     []simclock.Cycles
	registered []int
	failed     []int
	setups     []*metrics.Recorder
}

// newLaneTally sizes each lane's recorder for capacity samples up front,
// so the per-registration addSetup never grows a slice mid-run.
func newLaneTally(shards, capacity int) *laneTally {
	if shards <= 1 {
		return nil
	}
	t := &laneTally{
		cycles:     make([]simclock.Cycles, shards),
		registered: make([]int, shards),
		failed:     make([]int, shards),
		setups:     make([]*metrics.Recorder, shards),
	}
	for i := range t.setups {
		t.setups[i] = metrics.NewRecorder(capacity)
	}
	return t
}

func (t *laneTally) add(shard int, cycles simclock.Cycles, ok bool) {
	if t == nil {
		return
	}
	t.cycles[shard] += cycles
	if ok {
		t.registered[shard]++
	} else {
		t.failed[shard]++
	}
}

func (t *laneTally) addSetup(shard int, d time.Duration) {
	if t == nil {
		return
	}
	t.setups[shard].Add(d)
}

func (t *laneTally) merge(o *laneTally) {
	if t == nil || o == nil {
		return
	}
	for i := range t.cycles {
		t.cycles[i] += o.cycles[i]
		t.registered[i] += o.registered[i]
		t.failed[i] += o.failed[i]
		t.setups[i].Merge(o.setups[i])
	}
}

func (t *laneTally) stats(env *costmodel.Env) []ShardStat {
	if t == nil {
		return nil
	}
	out := make([]ShardStat, len(t.cycles))
	for i := range out {
		out[i] = ShardStat{
			Registered: t.registered[i],
			Failed:     t.failed[i],
			Busy:       env.Model.Duration(t.cycles[i]),
			SetupTimes: t.setups[i],
		}
	}
	return out
}

// RegisterMany registers n freshly-provisioned UEs back to back, the way
// the paper drives gNBSIM for its large-scale measurements. newUE is
// called per index to provision the device. It is the sequential driver;
// use RegisterManyWith for a parallel run.
func (g *GNB) RegisterMany(ctx context.Context, n int, newUE func(i int) (*ue.UE, error)) (*MassResult, error) {
	return g.RegisterManyWith(ctx, MassOptions{N: n, NewUE: newUE})
}

// RegisterManyWith runs a mass registration according to opts. With
// Parallelism <= 1 it drives registrations back to back on the caller's
// goroutine; otherwise it fans the index space out over a bounded pool of
// workers, each with its own metrics recorder, failure tally, and
// deterministic jitter stream, and merges the per-worker results when the
// pool drains. A provisioning error stops the run (cancelling in-flight
// workers) and is returned alongside the partial result.
func (g *GNB) RegisterManyWith(ctx context.Context, opts MassOptions) (*MassResult, error) {
	result := &MassResult{
		SetupTimes:    metrics.NewRecorder(opts.N),
		Parallelism:   opts.Parallelism,
		FailureCounts: make(map[string]int),
		FirstErrors:   make(map[string]error),
		Recovered:     make(map[string]int),
	}
	if result.Parallelism < 1 {
		result.Parallelism = 1
	}
	tally := newLaneTally(len(g.amfs), opts.N)
	//shieldlint:wallclock the result deliberately reports wall time next to virtual time
	wallStart := time.Now()
	virtualStart := g.env.Clock.Elapsed()
	var err error
	if result.Parallelism == 1 {
		err = g.registerSequential(ctx, opts, result, tally)
	} else {
		err = g.registerParallel(ctx, opts, result, tally)
	}
	result.ShardStats = tally.stats(g.env)
	//shieldlint:wallclock closes the wall-vs-virtual split opened above
	result.finish(time.Since(wallStart), g.env.Model.Duration(g.env.Clock.Elapsed()-virtualStart))
	return result, err
}

// registerAttempts drives one UE through up to maxAttempts complete
// registrations, each on a fresh request account so setup time and the
// resilience layer's virtual deadline restart per attempt. On success it
// returns the session plus the failure classes survived along the way; on
// exhaustion it returns the last error. The cycles return is the summed
// virtual cost of every attempt, for per-shard lane attribution.
func (g *GNB) registerAttempts(ctx context.Context, device *ue.UE, maxAttempts int) (*Session, int, simclock.Cycles, map[string]int, error) {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var recovered map[string]int
	var spent simclock.Cycles
	for attempt := 1; ; attempt++ {
		var acct simclock.Account
		sctx := simclock.WithAccount(ctx, &acct)
		sess, err := g.RegisterUE(sctx, device)
		spent += acct.Total()
		if err == nil {
			return sess, attempt, spent, recovered, nil
		}
		if attempt >= maxAttempts {
			return nil, attempt, spent, nil, err
		}
		if recovered == nil {
			recovered = make(map[string]int)
		}
		recovered[failureClass(err)]++
	}
}

// registerSequential is the seed driver loop: same call order, same
// jitter draws, same early return on provisioning failure.
func (g *GNB) registerSequential(ctx context.Context, opts MassOptions, result *MassResult, tally *laneTally) error {
	if opts.BatchSize > 0 {
		ctx = paka.WithConnection(ctx, 1, opts.BatchSize)
	}
	if opts.Switchless {
		ctx = paka.WithSwitchless(ctx)
	}
	for i := 0; i < opts.N; i++ {
		device, err := opts.NewUE(i)
		if err != nil {
			return fmt.Errorf("gnb: provision UE %d: %w", i, err)
		}
		sess, attempts, cycles, recovered, err := g.registerAttempts(ctx, device, opts.MaxAttempts)
		result.Attempts += attempts
		if err != nil {
			tally.add(g.ShardOf(device.SUPIString()), cycles, false)
			result.recordFailure(err)
			continue
		}
		tally.add(sess.Shard(), cycles, true)
		tally.addSetup(sess.Shard(), sess.SetupTime)
		for class, n := range recovered {
			result.Recovered[class] += n
		}
		result.Registered++
		result.SetupTimes.Add(sess.SetupTime)
	}
	return nil
}

// registerParallel fans registrations out over opts.Parallelism workers.
// Worker w owns the index stripe i % P == w and processes it in order,
// drawing virtual-time jitter from the independent stream
// env.Jitter.Stream(w+1) so a parallel run's cost draws are reproducible
// for a fixed seed regardless of goroutine interleaving.
func (g *GNB) registerParallel(ctx context.Context, opts MassOptions, result *MassResult, tally *laneTally) error {
	workers := opts.Parallelism
	if workers > opts.N {
		workers = opts.N
	}
	result.Parallelism = workers
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type workerResult struct {
		registered int
		attempts   int
		setups     *metrics.Recorder
		failures   map[string]int
		firstErrs  map[string]error
		recovered  map[string]int
		lanes      *laneTally
		provision  error
	}
	perWorker := make([]workerResult, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wr := &perWorker[w]
			wr.setups = metrics.NewRecorder(opts.N/workers + 1)
			wr.failures = make(map[string]int)
			wr.firstErrs = make(map[string]error)
			wr.recovered = make(map[string]int)
			if tally != nil {
				wr.lanes = newLaneTally(len(g.amfs), opts.N/workers+1)
			}
			stream := g.env.Jitter.Stream(uint64(w) + 1)
			base := simclock.WithJitter(wctx, stream)
			if opts.Chaos != nil {
				// Fault decisions come from the worker's own stream so
				// they, like costs, are reproducible per worker.
				base = opts.Chaos.WorkerContext(base, uint64(w)+1)
			}
			if opts.BatchSize > 0 {
				// Each worker pipelines its stripe over its own
				// keep-alive connection to the P-AKA modules.
				base = paka.WithConnection(base, uint64(w)+1, opts.BatchSize)
			}
			if opts.Switchless {
				base = paka.WithSwitchless(base)
			}
			for i := w; i < opts.N; i += workers {
				if wctx.Err() != nil {
					return
				}
				device, err := opts.NewUE(i)
				if err != nil {
					wr.provision = fmt.Errorf("gnb: provision UE %d: %w", i, err)
					cancel()
					return
				}
				sess, attempts, cycles, recovered, err := g.registerAttempts(base, device, opts.MaxAttempts)
				wr.attempts += attempts
				if err != nil {
					wr.lanes.add(g.ShardOf(device.SUPIString()), cycles, false)
					class := failureClass(err)
					wr.failures[class]++
					if _, seen := wr.firstErrs[class]; !seen {
						wr.firstErrs[class] = err
					}
					continue
				}
				wr.lanes.add(sess.Shard(), cycles, true)
				wr.lanes.addSetup(sess.Shard(), sess.SetupTime)
				for class, n := range recovered {
					wr.recovered[class] += n
				}
				wr.registered++
				wr.setups.Add(sess.SetupTime)
			}
		}(w)
	}
	wg.Wait()

	var firstProvision error
	for w := range perWorker {
		wr := &perWorker[w]
		result.Registered += wr.registered
		result.Attempts += wr.attempts
		if wr.setups != nil {
			result.SetupTimes.Merge(wr.setups)
		}
		for class, n := range wr.failures {
			result.Failed += n
			result.FailureCounts[class] += n
			if _, seen := result.FirstErrors[class]; !seen {
				result.FirstErrors[class] = wr.firstErrs[class]
			}
		}
		for class, n := range wr.recovered {
			result.Recovered[class] += n
		}
		tally.merge(wr.lanes)
		if wr.provision != nil && firstProvision == nil {
			firstProvision = wr.provision
		}
	}
	return firstProvision
}
