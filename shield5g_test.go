package shield5g_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"shield5g"
)

// TestPublicAPIEndToEnd exercises the documented quick-start path through
// the root package only.
func TestPublicAPIEndToEnd(t *testing.T) {
	ctx := context.Background()
	tb, err := shield5g.NewTestbed(ctx, shield5g.SliceConfig{
		Isolation: shield5g.SGX,
		MCC:       "001", MNC: "01",
		Seed: 77,
	})
	if err != nil {
		t.Fatalf("NewTestbed: %v", err)
	}
	defer tb.Close()

	sub, err := tb.AddSubscriber(ctx, bytes.Repeat([]byte{0x12}, 16), nil)
	if err != nil {
		t.Fatalf("AddSubscriber: %v", err)
	}
	sess, err := tb.Register(ctx, sub)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := sess.EstablishPDUSession(ctx, 1, "internet"); err != nil {
		t.Fatalf("EstablishPDUSession: %v", err)
	}
	echo, err := sess.SendData(ctx, []byte("api-test"))
	if err != nil {
		t.Fatalf("SendData: %v", err)
	}
	if !bytes.Contains(echo, []byte("api-test")) {
		t.Fatalf("echo = %q", echo)
	}
}

func TestPublicExperimentList(t *testing.T) {
	names := shield5g.Experiments()
	if len(names) != 20 {
		t.Fatalf("experiments = %v", names)
	}
	var buf bytes.Buffer
	if err := shield5g.RunExperiment(context.Background(), "table1", shield5g.ExperimentConfig{}, &buf); err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}
	if !strings.Contains(buf.String(), "Table I") {
		t.Fatal("table1 output missing")
	}
}

func TestPublicKeyIssues(t *testing.T) {
	kis := shield5g.KeyIssues()
	if len(kis) != 13 {
		t.Fatalf("key issues = %d", len(kis))
	}
}

func TestPublicProfilesAndRadios(t *testing.T) {
	if shield5g.GNBSIM().Name != "gnbsim" || shield5g.USRPX310().Name != "usrp-x310" {
		t.Fatal("radio profiles wrong")
	}
	p := shield5g.OnePlus8()
	if p.Model != "OnePlus 8" {
		t.Fatalf("profile = %+v", p)
	}
	if shield5g.Monolithic.String() != "monolithic" || shield5g.SGX.String() != "sgx" {
		t.Fatal("isolation names wrong")
	}
}

// TestPublicAttestationSurface checks the sealing/attestation re-exports.
func TestPublicAttestationSurface(t *testing.T) {
	ctx := context.Background()
	tb, err := shield5g.NewTestbed(ctx, shield5g.SliceConfig{Isolation: shield5g.SGX, Seed: 78})
	if err != nil {
		t.Fatalf("NewTestbed: %v", err)
	}
	defer tb.Close()

	enclave := tb.Slice.Modules[shield5g.EUDM].Enclave()
	q, err := enclave.GenerateQuote([64]byte{1})
	if err != nil {
		t.Fatalf("GenerateQuote: %v", err)
	}
	m := enclave.Measurement()
	if err := shield5g.VerifyQuote(tb.Slice.Platform.QuotingPublicKey(), q, &m); err != nil {
		t.Fatalf("VerifyQuote: %v", err)
	}
}
