package chaos

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"shield5g/internal/costmodel"
	"shield5g/internal/sbi"
	"shield5g/internal/simclock"
)

type call struct {
	service, path string
	respNil       bool
}

// recorder is a stub inner transport.
type recorder struct {
	calls []call
	err   error
}

func (r *recorder) Post(_ context.Context, service, path string, _, resp any) error {
	r.calls = append(r.calls, call{service: service, path: path, respNil: resp == nil})
	return r.err
}

func newTestInjector(seed uint64, cfg Config) (*Injector, *recorder, sbi.Invoker) {
	cfg.Seed = seed
	env := costmodel.NewEnv(nil, seed+1, nil)
	inj := NewInjector(env, cfg)
	rec := &recorder{}
	return inj, rec, inj.Wrap(rec)
}

// outcomes drives n requests and buckets each as its ProblemDetails cause
// or "ok".
func outcomes(inv sbi.Invoker, n int) []string {
	out := make([]string, n)
	for i := range out {
		err := inv.Post(context.Background(), "udm", "/x", nil, nil)
		switch pd, ok := sbi.AsProblem(err); {
		case err == nil:
			out[i] = "ok"
		case ok:
			out[i] = pd.Cause
		default:
			out[i] = "internal"
		}
	}
	return out
}

func TestDecisionsAreSeedDeterministic(t *testing.T) {
	cfg := DefaultMix(0, 0.5)
	_, _, inv1 := newTestInjector(7, cfg)
	_, _, inv2 := newTestInjector(7, cfg)
	a, b := outcomes(inv1, 300), outcomes(inv2, 300)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-seed injectors drew different fault sequences")
	}
	_, _, inv3 := newTestInjector(8, cfg)
	if reflect.DeepEqual(a, outcomes(inv3, 300)) {
		t.Fatal("different seeds drew identical fault sequences (streams not seeded)")
	}
}

func TestDisarmedConsumesNoStreamState(t *testing.T) {
	cfg := DefaultMix(0, 0.5)
	inj, rec, inv := newTestInjector(7, cfg)

	// A disarmed stretch must pass everything through untouched...
	inj.SetArmed(false)
	for i := 0; i < 50; i++ {
		if err := inv.Post(context.Background(), "udm", "/x", nil, nil); err != nil {
			t.Fatalf("disarmed Post: %v", err)
		}
	}
	if len(inj.Counts()) != 0 {
		t.Fatalf("disarmed injector counted faults: %v", inj.Counts())
	}
	if len(rec.calls) != 50 {
		t.Fatalf("inner calls = %d, want 50", len(rec.calls))
	}

	// ...and consume no decisions: arming afterwards replays the exact
	// sequence a fresh injector produces.
	inj.SetArmed(true)
	_, _, fresh := newTestInjector(7, cfg)
	if !reflect.DeepEqual(outcomes(inv, 200), outcomes(fresh, 200)) {
		t.Fatal("disarmed stretch shifted later fault decisions")
	}
}

func TestServiceTargeting(t *testing.T) {
	cfg := Config{ErrorRate: 1, Services: []string{"udm"}}
	_, rec, inv := newTestInjector(7, cfg)
	if err := inv.Post(context.Background(), "ausf", "/y", nil, nil); err != nil {
		t.Fatalf("untargeted service faulted: %v", err)
	}
	if err := inv.Post(context.Background(), "udm", "/x", nil, nil); err == nil {
		t.Fatal("targeted service did not fault at rate 1")
	}
	if len(rec.calls) != 1 || rec.calls[0].service != "ausf" {
		t.Fatalf("inner calls = %+v, want only the untargeted one", rec.calls)
	}
}

func TestWorkerStreamsIndependentAndDeterministic(t *testing.T) {
	cfg := DefaultMix(0, 0.5)
	worker := func(i uint64) []string {
		inj, _, _ := newTestInjector(7, cfg)
		inv := inj.Wrap(&recorder{})
		ctx := inj.WorkerContext(context.Background(), i)
		out := make([]string, 200)
		for j := range out {
			if err := inv.Post(ctx, "udm", "/x", nil, nil); err == nil {
				out[j] = "ok"
			} else if pd, ok := sbi.AsProblem(err); ok {
				out[j] = pd.Cause
			}
		}
		return out
	}
	if !reflect.DeepEqual(worker(1), worker(1)) {
		t.Fatal("same worker stream not reproducible")
	}
	if reflect.DeepEqual(worker(1), worker(2)) {
		t.Fatal("distinct workers drew identical sequences")
	}
}

func TestDropExecutesServerSideAndTimesOut(t *testing.T) {
	cfg := Config{DropRate: 1, DropTimeout: 80 * time.Millisecond}
	inj, rec, inv := newTestInjector(7, cfg)
	var acct simclock.Account
	ctx := simclock.WithAccount(context.Background(), &acct)
	err := inv.Post(ctx, "udm", "/x", &struct{}{}, &struct{}{})
	if !sbi.HasCause(err, sbi.CauseTimeout) {
		t.Fatalf("err = %v, want 504 %s", err, sbi.CauseTimeout)
	}
	// The server side ran (state may have committed) but the reply was
	// discarded, and the client paid the timeout in virtual time.
	if len(rec.calls) != 1 || !rec.calls[0].respNil {
		t.Fatalf("inner calls = %+v, want one with a discarded response", rec.calls)
	}
	if got := inj.env.Model.Duration(acct.Total()); got < 80*time.Millisecond {
		t.Fatalf("charged %v, want >= the 80ms drop timeout", got)
	}
}

func TestCrashHookRestartAndFallthrough(t *testing.T) {
	cfg := Config{CrashRate: 1, RetryAfter: 30 * time.Millisecond}

	// Without a hook the draw degrades to a clean call.
	_, rec, inv := newTestInjector(7, cfg)
	if err := inv.Post(context.Background(), "udm", "/x", nil, nil); err != nil {
		t.Fatalf("hookless crash draw: %v", err)
	}
	if len(rec.calls) != 1 {
		t.Fatalf("inner calls = %d, want 1", len(rec.calls))
	}

	// With a hook the module restarts and the request fails retryably,
	// carrying the Retry-After hint.
	inj, rec2, inv2 := newTestInjector(7, cfg)
	restarts := 0
	inj.RegisterCrash("udm", func(context.Context) error { restarts++; return nil })
	err := inv2.Post(context.Background(), "udm", "/x", nil, nil)
	pd, ok := sbi.AsProblem(err)
	if !ok || pd.Status != 503 || pd.Cause != sbi.CauseUnreachable || pd.RetryAfter != 30*time.Millisecond {
		t.Fatalf("err = %v, want retryable 503 %s with Retry-After", err, sbi.CauseUnreachable)
	}
	if restarts != 1 || len(rec2.calls) != 0 {
		t.Fatalf("restarts = %d, inner calls = %d; want 1 and 0", restarts, len(rec2.calls))
	}
	if !sbi.Retryable(err) {
		t.Fatal("crash outcome must be retryable")
	}

	// A failing restart is a hard 500.
	inj3, _, inv3 := newTestInjector(7, cfg)
	inj3.RegisterCrash("udm", func(context.Context) error { return errors.New("no capacity") })
	if err := inv3.Post(context.Background(), "udm", "/x", nil, nil); !sbi.HasCause(err, sbi.CauseSystem) {
		t.Fatalf("err = %v, want 500 %s", err, sbi.CauseSystem)
	}
}

func TestLatencyFaultChargesAndForwards(t *testing.T) {
	cfg := Config{LatencyRate: 1, LatencySpikeMedian: 10 * time.Millisecond}
	inj, rec, inv := newTestInjector(7, cfg)
	var acct simclock.Account
	ctx := simclock.WithAccount(context.Background(), &acct)
	if err := inv.Post(ctx, "udm", "/x", nil, nil); err != nil {
		t.Fatalf("Post: %v", err)
	}
	if len(rec.calls) != 1 {
		t.Fatalf("inner calls = %d, want 1 (latency faults still execute)", len(rec.calls))
	}
	if acct.Total() == 0 {
		t.Fatal("latency spike not charged")
	}
	if inj.Counts()["latency"] != 1 {
		t.Fatalf("counts = %v, want one latency fault", inj.Counts())
	}
}

func TestDefaultMixSumsToTotal(t *testing.T) {
	cfg := DefaultMix(1, 0.10)
	if got := cfg.TotalRate(); got < 0.0999 || got > 0.1001 {
		t.Fatalf("TotalRate = %v, want 0.10", got)
	}
}
