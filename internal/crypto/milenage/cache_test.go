package milenage

import (
	"bytes"
	"sync"
	"testing"
)

// TestCacheMatchesUncached pins every MILENAGE function of a cached
// Cipher byte-for-byte to a freshly constructed one (golden vectors via
// TS 35.207 Test Set 1, which the uncached tests above already pin).
func TestCacheMatchesUncached(t *testing.T) {
	k := mustHex(t, testSet1.k)
	opc := mustHex(t, testSet1.opc)
	rand := mustHex(t, testSet1.rand)
	sqn := mustHex(t, testSet1.sqn)
	amf := mustHex(t, testSet1.amf)

	cc := NewCache()
	fresh := newTestCipher(t)

	for round := 0; round < 3; round++ {
		cached, err := cc.Get("imsi-1", k, opc)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		gotA, _ := cached.F1(rand, sqn, amf)
		wantA, _ := fresh.F1(rand, sqn, amf)
		if !bytes.Equal(gotA, wantA) {
			t.Fatalf("round %d: F1 cached %x != fresh %x", round, gotA, wantA)
		}
		gotS, _ := cached.F1Star(rand, sqn, amf)
		wantS, _ := fresh.F1Star(rand, sqn, amf)
		if !bytes.Equal(gotS, wantS) {
			t.Fatalf("round %d: F1* mismatch", round)
		}
		res, ck, ik, ak, err := cached.F2345(rand)
		if err != nil {
			t.Fatalf("F2345: %v", err)
		}
		wres, wck, wik, wak, _ := fresh.F2345(rand)
		if !bytes.Equal(res, wres) || !bytes.Equal(ck, wck) || !bytes.Equal(ik, wik) || !bytes.Equal(ak, wak) {
			t.Fatalf("round %d: F2345 mismatch", round)
		}
		akS, _ := cached.F5Star(rand)
		wantAKS, _ := fresh.F5Star(rand)
		if !bytes.Equal(akS, wantAKS) {
			t.Fatalf("round %d: F5* mismatch", round)
		}
	}
	if cc.Len() != 1 {
		t.Fatalf("Len = %d, want 1", cc.Len())
	}
}

// TestCacheRekeyRebuilds proves a re-provisioned subscriber (same SUPI,
// new K) never sees the stale key schedule: the credential check rebuilds
// the entry even without an explicit Invalidate.
func TestCacheRekeyRebuilds(t *testing.T) {
	k1 := mustHex(t, testSet1.k)
	opc := mustHex(t, testSet1.opc)
	rand := mustHex(t, testSet1.rand)

	k2 := append([]byte(nil), k1...)
	k2[0] ^= 0xff

	cc := NewCache()
	c1, err := cc.Get("imsi-1", k1, opc)
	if err != nil {
		t.Fatal(err)
	}
	res1, _, _, _, _ := c1.F2345(rand)

	c2, err := cc.Get("imsi-1", k2, opc)
	if err != nil {
		t.Fatal(err)
	}
	res2, _, _, _, _ := c2.F2345(rand)

	wantC2, _ := New(k2, opc)
	want2, _, _, _, _ := wantC2.F2345(rand)
	if !bytes.Equal(res2, want2) {
		t.Fatalf("after rekey: RES %x, want fresh %x", res2, want2)
	}
	if bytes.Equal(res1, res2) {
		t.Fatal("rekeyed subscriber produced the stale RES")
	}
}

func TestCacheInvalidateAndReset(t *testing.T) {
	k := mustHex(t, testSet1.k)
	opc := mustHex(t, testSet1.opc)
	rand := mustHex(t, testSet1.rand)

	cc := NewCache()
	if _, err := cc.Get("a", k, opc); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Get("b", k, opc); err != nil {
		t.Fatal(err)
	}
	cc.Invalidate("a")
	if cc.Len() != 1 {
		t.Fatalf("after Invalidate: Len = %d, want 1", cc.Len())
	}
	cc.Reset()
	if cc.Len() != 0 {
		t.Fatalf("after Reset: Len = %d, want 0", cc.Len())
	}

	// Post-reset lookups still produce golden outputs.
	c, err := cc.Get("a", k, opc)
	if err != nil {
		t.Fatal(err)
	}
	res, _, _, _, _ := c.F2345(rand)
	if want := mustHex(t, testSet1.res); !bytes.Equal(res, want) {
		t.Fatalf("post-reset RES = %x, want %x", res, want)
	}
}

// TestCacheNilReceiver: a nil cache degrades to uncached construction.
func TestCacheNilReceiver(t *testing.T) {
	var cc *Cache
	c, err := cc.Get("a", mustHex(t, testSet1.k), mustHex(t, testSet1.opc))
	if err != nil {
		t.Fatal(err)
	}
	if c == nil {
		t.Fatal("nil cache returned nil cipher")
	}
	cc.Invalidate("a")
	cc.Reset()
	if cc.Len() != 0 {
		t.Fatal("nil cache Len != 0")
	}
}

func TestCacheBadCredentialLengths(t *testing.T) {
	cc := NewCache()
	if _, err := cc.Get("a", make([]byte, 3), make([]byte, 16)); err == nil {
		t.Fatal("short key: want error")
	}
	// A cached entry must not be returned for differently-sized keys.
	k := mustHex(t, testSet1.k)
	opc := mustHex(t, testSet1.opc)
	if _, err := cc.Get("a", k, opc); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Get("a", k[:15], opc); err == nil {
		t.Fatal("truncated key after caching: want error")
	}
}

func TestCacheConcurrent(t *testing.T) {
	k := mustHex(t, testSet1.k)
	opc := mustHex(t, testSet1.opc)
	rand := mustHex(t, testSet1.rand)
	want := mustHex(t, testSet1.res)

	cc := NewCache()
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c, err := cc.Get("imsi-1", k, opc)
				if err != nil {
					errs <- err.Error()
					return
				}
				res, _, _, _, err := c.F2345(rand)
				if err != nil || !bytes.Equal(res, want) {
					errs <- "RES mismatch under concurrency"
					return
				}
				if i%10 == 0 {
					cc.Invalidate("imsi-1")
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
