package sbi

import (
	"context"
	"errors"
	"testing"

	"shield5g/internal/sbi/codec"
)

// binMsg is a test message speaking both formats.
type binMsg struct {
	Value string `json:"value"`
	Blob  []byte `json:"blob"`
}

func (m *binMsg) AppendBinary(dst []byte) []byte {
	dst = codec.AppendString(dst, m.Value)
	return codec.AppendBytes(dst, m.Blob)
}

func (m *binMsg) DecodeBinary(r *codec.Reader) error {
	m.Value = r.String()
	m.Blob = r.Bytes()
	if err := r.Err(); err != nil {
		return err
	}
	codec.Compact(&m.Blob)
	return nil
}

// formatRecorder wraps a HandlerFunc and records, per call, whether the
// request body arrived as a binary frame.
type formatRecorder struct {
	frames []bool
	inner  HandlerFunc
}

func (f *formatRecorder) handle(ctx context.Context, body []byte) ([]byte, error) {
	f.frames = append(f.frames, codec.IsFrame(body))
	return f.inner(ctx, body)
}

func echoBin(_ context.Context, req *binMsg) (*binMsg, error) {
	return &binMsg{Value: req.Value, Blob: append([]byte(nil), req.Blob...)}, nil
}

// newBinaryFixture wires a dual-format server and a binary-enabled client.
func newBinaryFixture(t *testing.T) (*Registry, *Client, *formatRecorder) {
	t.Helper()
	env := newEnv()
	reg := NewRegistry()
	srv := NewServer("udm", env)
	rec := &formatRecorder{inner: BinHandler(echoBin)}
	srv.HandleDual("/auth", rec.handle)
	if err := reg.Register(srv); err != nil {
		t.Fatalf("Register: %v", err)
	}
	c := NewClient("ausf", env, reg)
	c.EnableBinary()
	return reg, c, rec
}

func postBin(t *testing.T, c *Client, value string) *binMsg {
	t.Helper()
	var resp binMsg
	req := &binMsg{Value: value, Blob: []byte{1, 2, 3}}
	if err := c.Post(context.Background(), "udm", "/auth", req, &resp); err != nil {
		t.Fatalf("Post(%q): %v", value, err)
	}
	if resp.Value != value || len(resp.Blob) != 3 {
		t.Fatalf("Post(%q) resp = %+v", value, resp)
	}
	return &resp
}

func TestBinaryNegotiationSwitchesAfterFirstContact(t *testing.T) {
	_, c, rec := newBinaryFixture(t)

	postBin(t, c, "first")  // session open: negotiation rides it, body is JSON
	postBin(t, c, "second") // negotiated: binary frame
	postBin(t, c, "third")

	want := []bool{false, true, true}
	if len(rec.frames) != len(want) {
		t.Fatalf("handler saw %d calls, want %d", len(rec.frames), len(want))
	}
	for i, frame := range want {
		if rec.frames[i] != frame {
			t.Errorf("request %d binary=%v, want %v", i+1, rec.frames[i], frame)
		}
	}
}

func TestBinaryDisabledClientStaysJSON(t *testing.T) {
	_, c, rec := newBinaryFixture(t)
	c.mu.Lock()
	c.binary = false
	c.mu.Unlock()

	postBin(t, c, "first")
	postBin(t, c, "second")
	for i, frame := range rec.frames {
		if frame {
			t.Errorf("request %d arrived binary from a JSON-only client", i+1)
		}
	}
}

// TestBinaryFallbackMidFleet models the stale-negotiation failure: the
// peer restarts binary-incapable after the client negotiated frames. The
// server answers 415, the client downgrades that path to JSON, retries
// once, and stays on JSON afterwards.
func TestBinaryFallbackMidFleet(t *testing.T) {
	reg, c, _ := newBinaryFixture(t)

	postBin(t, c, "first")
	postBin(t, c, "second") // now negotiated to binary

	// The UDM "restarts" without its binary endpoints: same service name,
	// JSON-only registration. The client's negotiation snapshot is stale.
	reg.Deregister("udm")
	jsonOnly := NewServer("udm", newEnv())
	rec := &formatRecorder{inner: JSONHandler(echoBin)}
	jsonOnly.Handle("/auth", rec.handle)
	if err := reg.Register(jsonOnly); err != nil {
		t.Fatalf("Register: %v", err)
	}

	// The next Post sends a frame, gets 415 before the handler runs,
	// downgrades, and succeeds on the JSON retry — the caller never sees
	// the stale negotiation.
	postBin(t, c, "third")
	// Subsequent requests go straight to JSON: the path was evicted from
	// the negotiation snapshot.
	postBin(t, c, "fourth")

	if len(rec.frames) != 2 {
		t.Fatalf("restarted handler saw %d calls, want 2 (415 is pre-dispatch)", len(rec.frames))
	}
	for i, frame := range rec.frames {
		if frame {
			t.Errorf("restarted JSON-only handler saw a binary frame on call %d", i+1)
		}
	}
	c.mu.Lock()
	stillNegotiated := c.negotiated["udm"]["/auth"]
	c.mu.Unlock()
	if stillNegotiated {
		t.Errorf("/auth still marked binary-capable after 415 downgrade")
	}
}

func TestServe415OnUnnegotiatedFrame(t *testing.T) {
	env := newEnv()
	srv := NewServer("udm", env)
	srv.Handle("/auth", JSONHandler(echoBin)) // JSON-only path

	frame, err := MarshalBinary(&binMsg{Value: "x"})
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	_, err = srv.serve(context.Background(), "/auth", frame)
	if !HasCause(err, CauseUnsupportedMedia) {
		t.Fatalf("serve frame on JSON path: err = %v, want cause %s", err, CauseUnsupportedMedia)
	}
	pd, _ := AsProblem(err)
	if pd.Status != 415 {
		t.Fatalf("status = %d, want 415", pd.Status)
	}
}

func TestBinHandlerRejectsMalformedFrame(t *testing.T) {
	h := BinHandler(echoBin)
	// Valid header, garbage payload: a string length pointing past the end.
	frame := codec.AppendHeader(nil)
	frame = append(frame, 0xFF, 0xFF, 0xFF, 0xFF, 0x01)
	frame, err := codec.FinishFrame(frame)
	if err != nil {
		t.Fatalf("FinishFrame: %v", err)
	}
	_, err = h(context.Background(), frame)
	pd, ok := AsProblem(err)
	if !ok || pd.Status != 400 {
		t.Fatalf("malformed frame: err = %v, want 400 ProblemDetails", err)
	}
}

func TestBinHandlerTrailingBytesRejected(t *testing.T) {
	h := BinHandler(echoBin)
	// A frame whose payload holds more than the message's fields: the
	// handler must verify exact consumption, not silently ignore the tail.
	frame := codec.AppendHeader(nil)
	frame = (&binMsg{Value: "x", Blob: []byte{9}}).AppendBinary(frame)
	frame = codec.AppendByte(frame, 0xEE) // trailing junk
	frame, err := codec.FinishFrame(frame)
	if err != nil {
		t.Fatalf("FinishFrame: %v", err)
	}
	_, err = h(context.Background(), frame)
	pd, ok := AsProblem(err)
	if !ok || pd.Status != 400 {
		t.Fatalf("trailing bytes: err = %v, want 400 ProblemDetails", err)
	}
}

func TestDecodeResponseFormats(t *testing.T) {
	in := &binMsg{Value: "v", Blob: []byte{5, 6}}

	frame, err := MarshalBinary(in)
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	var fromFrame binMsg
	if err := decodeResponse(frame, &fromFrame); err != nil {
		t.Fatalf("decodeResponse(frame): %v", err)
	}
	jsonBody, err := MarshalBody(in)
	if err != nil {
		t.Fatalf("MarshalBody: %v", err)
	}
	var fromJSON binMsg
	if err := decodeResponse(jsonBody, &fromJSON); err != nil {
		t.Fatalf("decodeResponse(json): %v", err)
	}
	if fromFrame.Value != fromJSON.Value || string(fromFrame.Blob) != string(fromJSON.Blob) {
		t.Fatalf("frame decode %+v != json decode %+v", fromFrame, fromJSON)
	}

	// A frame aimed at a type without a binary codec is an error, not a
	// silent misparse.
	var plain echoResp
	if err := decodeResponse(frame, &plain); err == nil {
		t.Fatalf("decodeResponse(frame, no codec) succeeded")
	}
}

func TestMarshalBinaryOversized(t *testing.T) {
	huge := &binMsg{Blob: make([]byte, codec.MaxPayload+1)}
	if _, err := MarshalBinary(huge); !errors.Is(err, codec.ErrOversized) {
		t.Fatalf("err = %v, want ErrOversized", err)
	}
}
