// Command ota runs the paper's over-the-air feasibility test (§V-B6): a
// OnePlus 8 COTS profile registering with the SGX-shielded core through a
// USRP x310 SDR gNB profile on the test PLMN 00101.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"shield5g"
)

func main() {
	seed := flag.Uint64("seed", 1, "jitter seed")
	flag.Parse()

	cfg := shield5g.ExperimentConfig{Seed: *seed, Iterations: 1}
	if err := shield5g.RunExperiment(context.Background(), "ota", cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "ota: %v\n", err)
		os.Exit(1)
	}
}
