package smf

import (
	"context"
	"errors"
	"testing"

	"shield5g/internal/costmodel"
	"shield5g/internal/nf/nrf"
	"shield5g/internal/nf/upf"
	"shield5g/internal/sbi"
)

func harness(t *testing.T) (*SMF, *upf.UPF, *Client) {
	t.Helper()
	env := costmodel.NewEnv(nil, 1, nil)
	reg := sbi.NewRegistry()
	if _, err := nrf.New(env, reg); err != nil {
		t.Fatalf("nrf.New: %v", err)
	}
	u, err := upf.New(env, reg)
	if err != nil {
		t.Fatalf("upf.New: %v", err)
	}
	s, err := New(context.Background(), Config{Env: env, Registry: reg, Invoker: sbi.NewClient("smf", env, reg)})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s, u, NewClient(sbi.NewClient("amf", env, reg))
}

func TestCreateSession(t *testing.T) {
	s, u, c := harness(t)
	resp, err := c.CreateSession(context.Background(), &CreateSessionRequest{
		SUPI: "imsi-1", SessionID: 1, DNN: "internet",
	})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if resp.UEAddress == "" || resp.TEID == 0 {
		t.Fatalf("resp = %+v", resp)
	}
	if s.SessionCount() != 1 || u.SessionCount() != 1 {
		t.Fatalf("session counts = %d/%d", s.SessionCount(), u.SessionCount())
	}
}

func TestCreateSessionUniqueAddresses(t *testing.T) {
	_, _, c := harness(t)
	a, err := c.CreateSession(context.Background(), &CreateSessionRequest{SUPI: "imsi-1", SessionID: 1, DNN: "internet"})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	b, err := c.CreateSession(context.Background(), &CreateSessionRequest{SUPI: "imsi-2", SessionID: 1, DNN: "internet"})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if a.UEAddress == b.UEAddress || a.TEID == b.TEID {
		t.Fatalf("addresses/TEIDs collide: %+v %+v", a, b)
	}
}

func TestCreateSessionValidation(t *testing.T) {
	_, _, c := harness(t)
	var pd *sbi.ProblemDetails
	_, err := c.CreateSession(context.Background(), &CreateSessionRequest{SessionID: 1, DNN: "internet"})
	if !errors.As(err, &pd) || pd.Status != 400 {
		t.Fatalf("missing SUPI err = %v", err)
	}
	_, err = c.CreateSession(context.Background(), &CreateSessionRequest{SUPI: "imsi-1", SessionID: 1})
	if !errors.As(err, &pd) || pd.Status != 400 {
		t.Fatalf("missing DNN err = %v", err)
	}
}

func TestDuplicateSessionRejected(t *testing.T) {
	_, _, c := harness(t)
	req := &CreateSessionRequest{SUPI: "imsi-1", SessionID: 1, DNN: "internet"}
	if _, err := c.CreateSession(context.Background(), req); err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	_, err := c.CreateSession(context.Background(), req)
	var pd *sbi.ProblemDetails
	if !errors.As(err, &pd) || pd.Status != 409 {
		t.Fatalf("dup err = %v, want 409", err)
	}
}

func TestReleaseSession(t *testing.T) {
	s, u, c := harness(t)
	req := &CreateSessionRequest{SUPI: "imsi-1", SessionID: 1, DNN: "internet"}
	if _, err := c.CreateSession(context.Background(), req); err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if err := c.ReleaseSession(context.Background(), &ReleaseSessionRequest{SUPI: "imsi-1", SessionID: 1}); err != nil {
		t.Fatalf("ReleaseSession: %v", err)
	}
	if s.SessionCount() != 0 || u.SessionCount() != 0 {
		t.Fatalf("session counts after release = %d/%d", s.SessionCount(), u.SessionCount())
	}
	// Releasing again is a 404.
	err := c.ReleaseSession(context.Background(), &ReleaseSessionRequest{SUPI: "imsi-1", SessionID: 1})
	var pd *sbi.ProblemDetails
	if !errors.As(err, &pd) || pd.Status != 404 {
		t.Fatalf("double release err = %v, want 404", err)
	}
	// The session can be recreated after release.
	if _, err := c.CreateSession(context.Background(), req); err != nil {
		t.Fatalf("recreate: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	reg := sbi.NewRegistry()
	if _, err := New(context.Background(), Config{Registry: reg}); err == nil {
		t.Fatal("missing env accepted")
	}
}
