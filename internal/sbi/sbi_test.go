package sbi

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"shield5g/internal/costmodel"
	"shield5g/internal/simclock"
)

type echoReq struct {
	Value string `json:"value"`
}

type echoResp struct {
	Value string `json:"value"`
	From  string `json:"from"`
}

func newEnv() *costmodel.Env { return costmodel.NewEnv(nil, 1, nil) }

func echoServer(t *testing.T, env *costmodel.Env) *Server {
	t.Helper()
	s := NewServer("udm", env)
	s.Handle("/echo", JSONHandler(func(_ context.Context, req *echoReq) (*echoResp, error) {
		return &echoResp{Value: req.Value, From: "udm"}, nil
	}))
	s.Handle("/fail", JSONHandler(func(_ context.Context, _ *echoReq) (*echoResp, error) {
		return nil, Problem(403, "Forbidden", "AUTHENTICATION_REJECTED", "no")
	}))
	s.Handle("/boom", func(_ context.Context, _ []byte) ([]byte, error) {
		return nil, errors.New("plain failure")
	})
	return s
}

func TestInProcessPostRoundTrip(t *testing.T) {
	env := newEnv()
	reg := NewRegistry()
	if err := reg.Register(echoServer(t, env)); err != nil {
		t.Fatalf("Register: %v", err)
	}
	c := NewClient("ausf", env, reg)
	var resp echoResp
	if err := c.Post(context.Background(), "udm", "/echo", &echoReq{Value: "hi"}, &resp); err != nil {
		t.Fatalf("Post: %v", err)
	}
	if resp.Value != "hi" || resp.From != "udm" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestInProcessChargesVirtualTime(t *testing.T) {
	env := newEnv()
	reg := NewRegistry()
	if err := reg.Register(echoServer(t, env)); err != nil {
		t.Fatalf("Register: %v", err)
	}
	c := NewClient("ausf", env, reg)

	post := func() simclock.Cycles {
		var acct simclock.Account
		ctx := simclock.WithAccount(context.Background(), &acct)
		if err := c.Post(ctx, "udm", "/echo", &echoReq{Value: "hi"}, nil); err != nil {
			t.Fatalf("Post: %v", err)
		}
		return acct.Total()
	}
	first := post()
	second := post()
	if first == 0 || second == 0 {
		t.Fatal("no cycles charged")
	}
	// First contact includes the mutual TLS handshake.
	if first <= second {
		t.Fatalf("first call (%d) not above warm call (%d)", first, second)
	}
	hs := env.Model.TLSHandshakeClient + env.Model.TLSHandshakeServer
	if first-second < hs/2 {
		t.Fatalf("handshake cost not visible: delta=%d", first-second)
	}
}

func TestProblemDetailsPreserved(t *testing.T) {
	env := newEnv()
	reg := NewRegistry()
	if err := reg.Register(echoServer(t, env)); err != nil {
		t.Fatalf("Register: %v", err)
	}
	c := NewClient("ausf", env, reg)
	err := c.Post(context.Background(), "udm", "/fail", &echoReq{}, nil)
	var pd *ProblemDetails
	if !errors.As(err, &pd) {
		t.Fatalf("err = %v, want ProblemDetails", err)
	}
	if pd.Status != 403 || pd.Cause != "AUTHENTICATION_REJECTED" {
		t.Fatalf("pd = %+v", pd)
	}
	if !strings.Contains(pd.Error(), "403") {
		t.Fatalf("Error() = %q", pd.Error())
	}
}

func TestPlainErrorBecomes500(t *testing.T) {
	env := newEnv()
	reg := NewRegistry()
	if err := reg.Register(echoServer(t, env)); err != nil {
		t.Fatalf("Register: %v", err)
	}
	c := NewClient("ausf", env, reg)
	err := c.Post(context.Background(), "udm", "/boom", &echoReq{}, nil)
	var pd *ProblemDetails
	if !errors.As(err, &pd) || pd.Status != 500 {
		t.Fatalf("err = %v, want 500 ProblemDetails", err)
	}
}

func TestUnknownServiceAndPath(t *testing.T) {
	env := newEnv()
	reg := NewRegistry()
	if err := reg.Register(echoServer(t, env)); err != nil {
		t.Fatalf("Register: %v", err)
	}
	c := NewClient("ausf", env, reg)

	err := c.Post(context.Background(), "missing", "/echo", &echoReq{}, nil)
	var pd *ProblemDetails
	if !errors.As(err, &pd) || pd.Status != 503 {
		t.Fatalf("unknown service err = %v", err)
	}
	err = c.Post(context.Background(), "udm", "/nope", &echoReq{}, nil)
	if !errors.As(err, &pd) || pd.Status != 404 {
		t.Fatalf("unknown path err = %v", err)
	}
}

func TestRegistryDuplicateAndDeregister(t *testing.T) {
	env := newEnv()
	reg := NewRegistry()
	s := NewServer("udm", env)
	if err := reg.Register(s); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := reg.Register(NewServer("udm", env)); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := reg.Register(nil); err == nil {
		t.Fatal("nil server accepted")
	}
	if got := reg.Names(); len(got) != 1 || got[0] != "udm" {
		t.Fatalf("Names = %v", got)
	}
	reg.Deregister("udm")
	if _, ok := reg.Lookup("udm"); ok {
		t.Fatal("deregistered service still resolvable")
	}
}

func TestServerPaths(t *testing.T) {
	env := newEnv()
	s := echoServer(t, env)
	if got := len(s.Paths()); got != 3 {
		t.Fatalf("Paths = %d, want 3", got)
	}
}

func TestJSONHandlerBadBody(t *testing.T) {
	h := JSONHandler(func(_ context.Context, req *echoReq) (*echoResp, error) {
		return &echoResp{Value: req.Value}, nil
	})
	_, err := h(context.Background(), []byte("{broken"))
	var pd *ProblemDetails
	if !errors.As(err, &pd) || pd.Status != 400 {
		t.Fatalf("bad body err = %v", err)
	}
	// Empty body decodes as zero request.
	out, err := h(context.Background(), nil)
	if err != nil || len(out) == 0 {
		t.Fatalf("empty body: %v %q", err, out)
	}
}

func TestHTTPTransportRoundTrip(t *testing.T) {
	env := newEnv()
	srv := echoServer(t, env)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := NewHTTPClient(nil)
	c.SetBase("udm", ts.URL)

	var resp echoResp
	if err := c.Post(context.Background(), "udm", "/echo", &echoReq{Value: "ota"}, &resp); err != nil {
		t.Fatalf("Post: %v", err)
	}
	if resp.Value != "ota" {
		t.Fatalf("resp = %+v", resp)
	}

	// ProblemDetails survive HTTP.
	err := c.Post(context.Background(), "udm", "/fail", &echoReq{}, nil)
	var pd *ProblemDetails
	if !errors.As(err, &pd) || pd.Status != 403 {
		t.Fatalf("HTTP problem err = %v", err)
	}

	// Unknown service.
	if err := c.Post(context.Background(), "ghost", "/echo", &echoReq{}, nil); err == nil {
		t.Fatal("unknown base accepted")
	}
}

func TestHTTPTransportMethodNotAllowed(t *testing.T) {
	env := newEnv()
	ts := httptest.NewServer(echoServer(t, env))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/echo")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != 405 {
		t.Fatalf("GET status = %d, want 405", resp.StatusCode)
	}
}
