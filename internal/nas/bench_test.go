package nas

import (
	"bytes"
	"testing"
)

func benchRegistrationRequest() *RegistrationRequest {
	return &RegistrationRequest{
		RegistrationType: RegistrationInitial,
		NgKSI:            0,
		Identity:         MobileIdentity{SUCI: sampleSUCI()},
		Capabilities:     []byte{AlgNEA2, AlgNIA2},
	}
}

func BenchmarkEncodeRegistrationRequest(b *testing.B) {
	msg := benchRegistrationRequest()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRegistrationRequest(b *testing.B) {
	data, err := Encode(benchRegistrationRequest())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProtect(b *testing.B) {
	sc, err := NewSecurityContext(bytes.Repeat([]byte{0x42}, 32))
	if err != nil {
		b.Fatal(err)
	}
	msg := &AuthenticationResponse{ResStar: [16]byte{1}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Protect(msg, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProtectUnprotectRoundTrip(b *testing.B) {
	kamf := bytes.Repeat([]byte{0x42}, 32)
	ueCtx, err := NewSecurityContext(kamf)
	if err != nil {
		b.Fatal(err)
	}
	netCtx, err := NewSecurityContext(kamf)
	if err != nil {
		b.Fatal(err)
	}
	msg := &AuthenticationResponse{ResStar: [16]byte{1}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wire, err := ueCtx.Protect(msg, true)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := netCtx.Unprotect(wire, true); err != nil {
			b.Fatal(err)
		}
	}
}
