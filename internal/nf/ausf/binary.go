package ausf

// Binary SBI codecs for the AUSF messages (see internal/sbi/codec).

import (
	"shield5g/internal/crypto/suci"
	"shield5g/internal/sbi/codec"
)

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *AuthenticateRequest) AppendBinary(dst []byte) []byte {
	if m.SUCI == nil {
		dst = codec.AppendByte(dst, 0)
	} else {
		dst = codec.AppendByte(dst, 1)
		dst = m.SUCI.AppendBinary(dst)
	}
	dst = codec.AppendString(dst, m.SUPI)
	return codec.AppendString(dst, m.ServingNetworkName)
}

// DecodeBinary implements codec.Unmarshaler.
//
//shieldlint:hotpath
func (m *AuthenticateRequest) DecodeBinary(r *codec.Reader) error {
	if r.Byte() != 0 {
		m.SUCI = new(suci.SUCI)
		if err := m.SUCI.DecodeBinary(r); err != nil {
			return err
		}
	} else {
		m.SUCI = nil
	}
	m.SUPI = r.String()
	m.ServingNetworkName = r.InternString()
	return r.Err()
}

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *AuthenticateResponse) AppendBinary(dst []byte) []byte {
	dst = codec.AppendString(dst, m.AuthCtxID)
	dst = codec.AppendBytes(dst, m.RAND)
	dst = codec.AppendBytes(dst, m.AUTN)
	return codec.AppendBytes(dst, m.HXRESStar)
}

// DecodeBinary implements codec.Unmarshaler: the AMF keeps the challenge
// in its UE context, so the fields compact into one owned backing.
//
//shieldlint:hotpath
func (m *AuthenticateResponse) DecodeBinary(r *codec.Reader) error {
	m.AuthCtxID = r.String()
	m.RAND = r.Bytes()
	m.AUTN = r.Bytes()
	m.HXRESStar = r.Bytes()
	if err := r.Err(); err != nil {
		return err
	}
	codec.Compact(&m.RAND, &m.AUTN, &m.HXRESStar)
	return nil
}

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *ConfirmRequest) AppendBinary(dst []byte) []byte {
	dst = codec.AppendString(dst, m.AuthCtxID)
	return codec.AppendBytes(dst, m.ResStar)
}

// DecodeBinary implements codec.Unmarshaler (zero-copy RES* view; the
// handler only compares it within the call).
//
//shieldlint:hotpath
func (m *ConfirmRequest) DecodeBinary(r *codec.Reader) error {
	m.AuthCtxID = r.String()
	m.ResStar = r.Bytes()
	return r.Err()
}

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *ConfirmResponse) AppendBinary(dst []byte) []byte {
	dst = codec.AppendString(dst, m.SUPI)
	return codec.AppendBytes(dst, m.KSEAF)
}

// DecodeBinary implements codec.Unmarshaler: K_SEAF is retained by the
// serving network, so it compacts into an owned backing.
//
//shieldlint:hotpath
func (m *ConfirmResponse) DecodeBinary(r *codec.Reader) error {
	m.SUPI = r.String()
	m.KSEAF = r.Bytes()
	if err := r.Err(); err != nil {
		return err
	}
	codec.Compact(&m.KSEAF)
	return nil
}

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *ResyncRequest) AppendBinary(dst []byte) []byte {
	dst = codec.AppendString(dst, m.AuthCtxID)
	return codec.AppendBytes(dst, m.AUTS)
}

// DecodeBinary implements codec.Unmarshaler (zero-copy AUTS view,
// forwarded within the call).
//
//shieldlint:hotpath
func (m *ResyncRequest) DecodeBinary(r *codec.Reader) error {
	m.AuthCtxID = r.String()
	m.AUTS = r.Bytes()
	return r.Err()
}
