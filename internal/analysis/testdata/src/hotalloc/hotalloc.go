// Package hotalloc is a shieldlint fixture for the hot-path allocation
// check: fmt.Sprintf and one-shot encoding/json codecs are banned in
// functions whose doc comment carries //shieldlint:hotpath.
package hotalloc

import (
	"encoding/json"
	"fmt"
)

// encodeAV is the per-registration body encoder.
//
//shieldlint:hotpath
func encodeAV(v any) ([]byte, error) {
	return json.Marshal(v) // want "json.Marshal allocates on every call"
}

//shieldlint:hotpath
func decodeAV(data []byte, v any) error {
	return json.Unmarshal(data, v) // want "json.Unmarshal allocates on every call"
}

//shieldlint:hotpath
func ueLabel(id int) string {
	return fmt.Sprintf("ue-%d", id) // want "fmt.Sprintf allocates on every call"
}

// prettyAV exercises the MarshalIndent variant and the marker with
// trailing prose after the directive word.
//
//shieldlint:hotpath (the AV response path)
func prettyAV(v any) ([]byte, error) {
	return json.MarshalIndent(v, "", " ") // want "json.MarshalIndent allocates on every call"
}

// coldFallback shows the sanctioned escape hatch for a genuinely cold
// branch inside a marked function.
//
//shieldlint:hotpath
func coldFallback(data []byte, v any) error {
	if len(data) == 0 {
		//shieldlint:ignore hotalloc canonical empty-input error, cold path
		return json.Unmarshal(data, v) // want:suppressed "json.Unmarshal allocates"
	}
	return nil
}

// mustSetup shows the panic exemption: a panicking branch is never the
// steady-state path, so its Sprintf argument is not flagged.
//
//shieldlint:hotpath
func mustSetup(err error) {
	if err != nil {
		panic(fmt.Sprintf("setup: %v", err))
	}
}

// unmarked has no hotpath marker, so one-shot codecs are fine here.
func unmarked(v any) string {
	b, _ := json.Marshal(v)
	return fmt.Sprintf("%d bytes", len(b))
}

// pooledStyle shows that fmt.Errorf on an error return and the
// Encoder/Decoder methods (the pooled-codec shape) stay legal in marked
// functions — only the one-shot entry points are banned.
//
//shieldlint:hotpath
func pooledStyle(enc *json.Encoder, v any) error {
	if enc == nil {
		return fmt.Errorf("hotalloc: nil encoder")
	}
	return enc.Encode(v)
}

// frameScratch exercises the un-pooled byte-buffer rule: a bare
// make([]byte, ...) in a marked function is a per-call heap buffer.
//
//shieldlint:hotpath
func frameScratch(n int) []byte {
	return make([]byte, n) // want "allocates a fresh buffer on every call"
}

// framedOutput shows the sanctioned single-output escape hatch.
//
//shieldlint:hotpath
func framedOutput(n int) []byte {
	//shieldlint:ignore hotalloc single caller-owned output buffer
	return make([]byte, 0, n) // want:suppressed "allocates a fresh buffer"
}

// intScratch shows the rule is byte-slice specific: other element types
// are outside the body-buffer discipline this analyzer enforces.
//
//shieldlint:hotpath
func intScratch(n int) []int {
	return make([]int, n)
}

// coldMake shows make is fine in unmarked functions.
func coldMake(n int) []byte {
	return make([]byte, n)
}
