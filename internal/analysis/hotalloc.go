package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotAlloc enforces the allocation discipline on the registration hot
// path. Functions marked //shieldlint:hotpath in their doc comment are
// the per-registration inner loop (KDF derivations, MILENAGE blocks,
// SUCI CTR/tag passes, NAS protect/unprotect, SBI body codecs); the
// allocation-budget assertion in BenchmarkRegisterManyBatched holds
// only while they stay free of per-call heap traffic. fmt.Sprintf and
// friends allocate the formatted string (plus boxing every operand),
// and encoding/json's package-level Marshal/Unmarshal allocate a fresh
// output copy and decode state per call — the pooled sbi codecs exist
// precisely to avoid that. A call that is genuinely cold (an
// error-canonicalization fallback, say) carries
// //shieldlint:ignore hotalloc <why>; arguments to the panic builtin
// are exempt outright, since a panicking path is never the hot path.
// A bare make([]byte, ...) inside a marked function is the same
// discipline violation in disguise: a fresh heap buffer per call. The
// sanctioned shapes are pooled scratch (sync.Pool), appending into a
// caller-owned buffer, or a deliberate single caller-owned output
// allocation carrying //shieldlint:ignore hotalloc <why>.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//shieldlint:hotpath functions must not call allocating formatters, one-shot JSON codecs, or un-pooled make([]byte, ...)",
	Run:  runHotAlloc,
}

// hotAllocBanned maps package path -> function name -> the remedy named
// in the diagnostic. Only package-level one-shot entry points are
// banned; the pooled codec methods (json.Encoder.Encode,
// json.Decoder.Decode) are the sanctioned replacements and stay legal.
var hotAllocBanned = map[string]map[string]string{
	"fmt": {
		"Sprintf":  "preformat outside the hot path or build with strconv/append",
		"Sprint":   "preformat outside the hot path or build with strconv/append",
		"Sprintln": "preformat outside the hot path or build with strconv/append",
	},
	"encoding/json": {
		"Marshal":       "use the pooled sbi.MarshalBody codec",
		"MarshalIndent": "use the pooled sbi.MarshalBody codec",
		"Unmarshal":     "use the pooled sbi.UnmarshalBody codec",
	},
}

func runHotAlloc(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpathMarked(fd.Doc) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isPanicCall(info, call) {
					// A panic's argument runs once, right before the
					// process (or recover boundary) unwinds — never on
					// the steady-state path the budget measures.
					return false
				}
				if isByteSliceMake(info, call) {
					pass.Reportf(call.Pos(),
						"make([]byte, ...) allocates a fresh buffer on every call but %s is marked //shieldlint:hotpath; reuse pooled scratch (sync.Pool), append into a caller-owned buffer, or annotate a deliberate output allocation: //shieldlint:ignore hotalloc <why>",
						fd.Name.Name)
					return true
				}
				fn := calleeOf(info, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				if hint, banned := hotAllocBanned[fn.Pkg().Path()][fn.Name()]; banned {
					pass.Reportf(call.Pos(),
						"%s.%s allocates on every call but %s is marked //shieldlint:hotpath; %s",
						fn.Pkg().Name(), fn.Name(), fd.Name.Name, hint)
				}
				return true
			})
		}
	}
	return nil
}

// isHotpathMarked reports whether a function's doc comment carries the
// //shieldlint:hotpath marker.
func isHotpathMarked(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "shieldlint:hotpath" || strings.HasPrefix(text, "shieldlint:hotpath ") {
			return true
		}
	}
	return false
}

// isByteSliceMake reports whether call is the make builtin constructing
// a []byte (or other byte-element slice). Named slice types with a byte
// element count too: the allocation is the same.
func isByteSliceMake(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, builtin := info.Uses[id].(*types.Builtin); !builtin {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	sl, ok := info.TypeOf(call.Args[0]).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Byte)
}

// isPanicCall reports whether call invokes the panic builtin (a
// declared function shadowing the name resolves to *types.Func and is
// not exempt).
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, builtin := info.Uses[id].(*types.Builtin)
	return builtin
}
