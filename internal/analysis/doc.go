// Package analysis implements shieldlint, a static-analysis suite that
// keeps the reproduction's determinism and shielding contracts true as
// the tree grows. The headline claims — bit-identical sequential replay,
// deterministic chaos replay, golden transition censuses, secrets
// confined to the enclave-side packages — all rest on invariants that
// are easy to erode one innocent-looking diff at a time; the analyzers
// here check them mechanically on every `make lint` and CI run.
//
// The suite is built on the standard library alone (go/ast, go/types,
// and a `go list -deps -json` driven loader), mirroring the shape of
// golang.org/x/tools/go/analysis without depending on it, so it runs in
// the module's dependency-free build environment.
//
// # Analyzers
//
//	determinism   — no wall clock (time.Now/Sleep/Since/...) or global
//	                math/rand state on simulated paths; use the
//	                simclock virtual clock and seeded Jitter streams.
//	                Unbounded for-loops in //shieldlint:hotpath
//	                functions must contain a scheduling point
//	                (runtime.Gosched, select, or a channel receive) so
//	                single-proc replays cannot livelock on a spin.
//	secretflow    — secret-bearing values (K, OPc, KAUSF, KSEAF, KAMF,
//	                SQN, sealed keys) must not reach fmt/log formatting,
//	                encoding/json marshalling, or printf-style wrappers
//	                outside the enclave-side packages (internal/hmee,
//	                internal/paka); the long-term key K must not ride in
//	                SBI Post payloads.
//	atomiccounter — a field accessed through sync/atomic anywhere in a
//	                package must never be read or written with plain
//	                loads/stores elsewhere; structs holding typed
//	                atomic.* values must not be copied by value
//	                receivers; //shieldlint:atomic-marked fields must
//	                actually have a sync/atomic type.
//	ctxcarry      — context.Context is always the first parameter; no
//	                context.Background()/TODO() below the top level
//	                (only func main/init of package main may mint a
//	                root context); no nil contexts at call sites.
//	stripemap     — map fields guarded by a sibling mutex (the
//	                internal/shard stripe pattern and every mu+map NF
//	                store) must only be indexed, ranged, measured or
//	                deleted from in functions that take that lock.
//	hotalloc      — functions marked //shieldlint:hotpath (the
//	                per-registration crypto and codec inner loop) must
//	                not call fmt.Sprintf-style formatters or the
//	                one-shot encoding/json Marshal/Unmarshal entry
//	                points; arguments to the panic builtin are exempt.
//	planeboundary — data-plane packages must not import the NRF
//	                snapshot builder (internal/nf/nrf/topo); only the
//	                NRF subtree and the deploy wiring may, keeping
//	                "registration survives NRF unavailability"
//	                structural.
//	poolowner     — pooled objects have one owner at a time: bodies
//	                from sbi.MarshalBody (and releasing wrappers) are
//	                released exactly once on every path and never used
//	                after sbi.ReleaseBody; hashpool states return via
//	                their Put; loaned views (handler body slices,
//	                BinHandler request structs) never escape the
//	                borrower by return, store, channel send, goroutine,
//	                or release. Ownership transfers through callee
//	                summaries.
//	lockorder     — mutex acquisitions follow one global partial
//	                order, looking one call-graph level deep; opposite
//	                nesting, longer cycles, and recursive acquisition
//	                of a held mutex are reported. Lock identity is the
//	                declaration site, so distinct shards of a striped
//	                lock nest freely.
//
// # Interprocedural engine
//
// Run wraps its packages in a Program, the unit of whole-program
// analysis. A Program lazily builds one CallGraph over the loaded
// go/types info: each declared function or function literal becomes a
// CallNode whose Sites list the outgoing edges — static calls resolve
// to exactly one callee, while interface dispatch, method values and
// other indirect references are over-approximated to every in-program
// implementer and flagged Dynamic. CallGraph.Functions is
// source-position sorted and CallGraph.PostOrder is callee-first, the
// two iteration orders every deterministic pass uses.
//
// Analyzers attach per-function facts through the summary store:
// Program.Facts(name) returns the analyzer's FactStore, and
// FactStore.Set/Get key arbitrary summary values by *CallNode. The
// intended shape is a single whole-program computation memoised under
// Program.Memo(key, build) — the first package's pass computes
// summaries for every function in PostOrder (so callee facts exist
// before callers read them; recursion sees whatever is published and
// must default conservatively), records its findings, and later
// packages' passes filter the memoised result. poolowner's
// release-obligation summaries and lockorder's direct-acquisition sets
// are both built this way.
//
// # Annotations
//
// Intentional exceptions are declared in the source with comment
// directives; shieldlint diagnostics carry the directive to use. A
// directive suppresses findings on its own line and the line directly
// below it; placed before the package clause it covers the whole file.
//
//	//shieldlint:wallclock <why>          — allow wall-clock use here
//	                                        (alias for "ignore determinism")
//	//shieldlint:ignore <a>[,<b>...] <why> — suppress the named analyzers
//	                                        ("all" suppresses every one)
//	//shieldlint:atomic                   — declare a struct field as an
//	                                        atomic counter; enforced to
//	                                        have a sync/atomic type
//	//shieldlint:hotpath                  — declare a function as part of
//	                                        the registration hot path;
//	                                        the hotalloc analyzer bans
//	                                        allocating formatters there
//
// Every annotation must be load-bearing: the repository test
// TestAnnotationsAreLoadBearing asserts that each annotated site in the
// tree really does trigger its analyzer, so deleting an annotation (or
// the need for one) fails `make lint` or the test suite respectively.
package analysis
