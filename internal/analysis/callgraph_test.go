package analysis

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// checkFixturePkg type-checks one testdata/src package through the
// shared loader and returns it.
func checkFixturePkg(t *testing.T, name string) *Package {
	t.Helper()
	l := sharedLoader(t)
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.CheckDir("shield5g/internal/analysis/testdata/src/"+name, dir)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", name, err)
	}
	return pkg
}

func nodeBySuffix(t *testing.T, g *CallGraph, suffix string) *CallNode {
	t.Helper()
	var hit *CallNode
	for _, n := range g.Functions() {
		if strings.HasSuffix(n.Name(), suffix) {
			if hit != nil {
				t.Fatalf("ambiguous node suffix %q: %s and %s", suffix, hit.Name(), n.Name())
			}
			hit = n
		}
	}
	if hit == nil {
		t.Fatalf("no call-graph node with suffix %q", suffix)
	}
	return hit
}

// calleesOf flattens a node's outgoing edges into a set of callee names.
func calleesOf(n *CallNode) map[string]bool {
	out := make(map[string]bool)
	for _, s := range n.Sites {
		for _, c := range s.Callees {
			out[c.Name()] = true
		}
	}
	return out
}

func TestCallGraphEdges(t *testing.T) {
	pkg := checkFixturePkg(t, "callgraph")
	g := NewProgram([]*Package{pkg}).CallGraph()

	// Direct recursion: fact calls itself.
	fact := nodeBySuffix(t, g, "callgraph.fact")
	if !calleesOf(fact)[fact.Name()] {
		t.Errorf("fact: missing self edge, callees %v", calleesOf(fact))
	}

	// Mutual recursion: even -> odd -> even.
	even := nodeBySuffix(t, g, "callgraph.even")
	odd := nodeBySuffix(t, g, "callgraph.odd")
	if !calleesOf(even)[odd.Name()] {
		t.Errorf("even: missing edge to odd, callees %v", calleesOf(even))
	}
	if !calleesOf(odd)[even.Name()] {
		t.Errorf("odd: missing edge to even, callees %v", calleesOf(odd))
	}

	// Interface dispatch over-approximates to every implementer, and
	// the site is marked dynamic.
	dispatch := nodeBySuffix(t, g, "callgraph.dispatch")
	english := nodeBySuffix(t, g, "english).greet")
	french := nodeBySuffix(t, g, "french).greet")
	got := calleesOf(dispatch)
	if !got[english.Name()] || !got[french.Name()] {
		t.Errorf("dispatch: want both greet implementations, got %v", got)
	}
	for _, s := range dispatch.Sites {
		if len(s.Callees) > 0 && !s.Dynamic {
			t.Errorf("dispatch: interface call site not marked dynamic")
		}
	}

	// A method value is a dynamic function-value reference edge.
	mv := nodeBySuffix(t, g, "callgraph.methodValue")
	inc := nodeBySuffix(t, g, "counter).inc")
	var viaValue bool
	for _, s := range mv.Sites {
		for _, c := range s.Callees {
			if c == inc && s.Call == nil && s.Dynamic {
				viaValue = true
			}
		}
	}
	if !viaValue {
		t.Errorf("methodValue: c.inc reference not recorded as a dynamic value edge")
	}
}

func TestCallGraphPostOrder(t *testing.T) {
	pkg := checkFixturePkg(t, "callgraph")
	g := NewProgram([]*Package{pkg}).CallGraph()

	index := make(map[*CallNode]int)
	for i, n := range g.PostOrder() {
		index[n] = i
	}
	if len(index) != len(g.Functions()) {
		t.Fatalf("post-order visited %d of %d nodes", len(index), len(g.Functions()))
	}
	leaf := nodeBySuffix(t, g, "callgraph.chainLeaf")
	mid := nodeBySuffix(t, g, "callgraph.chainMid")
	top := nodeBySuffix(t, g, "callgraph.chainTop")
	if !(index[leaf] < index[mid] && index[mid] < index[top]) {
		t.Errorf("static chain not callee-first: leaf=%d mid=%d top=%d",
			index[leaf], index[mid], index[top])
	}
}

// TestCallGraphDeterministic runs the full suite twice over the whole
// module on fresh Programs and requires byte-identical findings: the
// engine's map-heavy internals must never leak iteration order into
// what the user sees.
func TestCallGraphDeterministic(t *testing.T) {
	sharedLoader(t)
	render := func() string {
		diags, err := Run(repoPkgs, Analyzers())
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, d := range diags {
			fmt.Fprintf(&b, "%s suppressed=%v\n", d, d.Suppressed)
		}
		return b.String()
	}
	first := render()
	second := render()
	if first != second {
		t.Errorf("findings differ between identical runs:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}

// TestLoaderBuildTagsAndGenerics is the loader regression pair: the
// //go:build ignore sibling (which does not type-check) must be
// excluded, and the generic helpers must load with their
// instantiations recorded.
func TestLoaderBuildTagsAndGenerics(t *testing.T) {
	pkg := checkFixturePkg(t, "buildtag")
	if len(pkg.Files) != 1 {
		t.Errorf("build-tagged file not excluded: %d files loaded", len(pkg.Files))
	}
	if len(pkg.Info.Instances) == 0 {
		t.Errorf("no generic instantiations recorded in Info.Instances")
	}
	diags, err := Run([]*Package{pkg}, Analyzers())
	if err != nil {
		t.Fatalf("running suite over generic fixture: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding on clean generic fixture: %s", d)
	}
}
