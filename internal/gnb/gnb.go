// Package gnb simulates the 5G radio access network side: a gNB relaying
// NAS between UEs and the AMF over N1/N2, with an N3 path into the UPF,
// plus the gNBSIM-style mass-registration driver the paper uses for its
// large-scale experiments and an SDR profile for the OTA test.
package gnb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"shield5g/internal/costmodel"
	"shield5g/internal/metrics"
	"shield5g/internal/nf/amf"
	"shield5g/internal/nf/upf"
	"shield5g/internal/simclock"
	"shield5g/internal/ue"
)

// RadioProfile models the access-side latency per NAS round trip.
type RadioProfile struct {
	Name string
	// RTTCycles is the UE<->gNB round-trip cost (RRC/MAC processing and
	// the air interface) charged per NAS exchange.
	RTTCycles simclock.Cycles
}

// GNBSIM is the paper's simulated RAN entity. The per-round-trip cost
// aggregates everything between the UE stimulus and the core's NAS
// handler that is not SBI or module time: RRC/NGAP processing, SCTP, OAI
// registration timers. It is calibrated (~14 ms per NAS round trip) so
// that end-to-end session setup lands in the paper's ~62 ms regime while
// the SGX-attributable share stays a small fraction (§V-B4).
func GNBSIM() RadioProfile {
	return RadioProfile{Name: "gnbsim", RTTCycles: 26_400_000}
}

// USRPX310 models the paper's OTA gNB: a USRP x310 software-defined radio
// with OAI L1/L2, adding real air-interface latency on top of the RAN
// processing.
func USRPX310() RadioProfile {
	return RadioProfile{Name: "usrp-x310", RTTCycles: 52_800_000} // ~22 ms per round trip
}

// Config wires a gNB.
type Config struct {
	Env *costmodel.Env
	// AMF is the N2 peer.
	AMF *amf.AMF
	// UPF is the N3 peer for the data path (optional; nil disables
	// user-plane forwarding).
	UPF *upf.UPF
	// MCC/MNC are broadcast in SIB1; COTS UEs check them before
	// attaching.
	MCC, MNC string
	// Radio selects the access profile (GNBSIM default).
	Radio RadioProfile
}

// GNB is one simulated base station.
type GNB struct {
	env   *costmodel.Env
	amf   *amf.AMF
	upf   *upf.UPF
	mcc   string
	mnc   string
	radio RadioProfile

	mu        sync.Mutex
	nextRANUE uint64
}

// New creates a gNB.
func New(cfg Config) (*GNB, error) {
	if cfg.Env == nil || cfg.AMF == nil {
		return nil, errors.New("gnb: Env and AMF are required")
	}
	if cfg.MCC == "" || cfg.MNC == "" {
		return nil, errors.New("gnb: broadcast PLMN (MCC/MNC) is required")
	}
	radio := cfg.Radio
	if radio.Name == "" {
		radio = GNBSIM()
	}
	return &GNB{
		env:   cfg.Env,
		amf:   cfg.AMF,
		upf:   cfg.UPF,
		mcc:   cfg.MCC,
		mnc:   cfg.MNC,
		radio: radio,
	}, nil
}

// BroadcastPLMN is the PLMN the gNB announces.
func (g *GNB) BroadcastPLMN() string { return g.mcc + g.mnc }

// Radio reports the access profile in use.
func (g *GNB) Radio() RadioProfile { return g.radio }

// Session is one attached UE's RAN context.
type Session struct {
	gnb     *GNB
	ue      *ue.UE
	ranUEID uint64
	teid    uint32

	// SetupTime is the end-to-end registration duration in virtual time
	// (the paper's session setup measurement).
	SetupTime time.Duration
}

// maxNASRounds bounds the registration exchange (resync adds one extra
// challenge round).
const maxNASRounds = 12

// RegisterUE runs a complete UE registration through the core: SUCI
// registration request, AKA challenge/response (with one resynchronisation
// retry if needed), security mode, and registration accept. It returns the
// RAN session and charges all costs to ctx's account.
func (g *GNB) RegisterUE(ctx context.Context, device *ue.UE) (*Session, error) {
	if err := device.DetectNetwork(g.BroadcastPLMN()); err != nil {
		return nil, err
	}

	// Pin the request account so a caller without one still gets a
	// coherent setup-time measurement.
	acct := simclock.AccountFrom(ctx)
	ctx = simclock.WithAccount(ctx, acct)
	start := acct.Total()

	g.mu.Lock()
	g.nextRANUE++
	ranUEID := g.nextRANUE
	g.mu.Unlock()

	uplink, err := device.BuildRegistrationRequest(ctx, g.amf.ServingNetworkName())
	if err != nil {
		return nil, err
	}
	if err := g.driveRegistration(ctx, device, ranUEID, uplink); err != nil {
		return nil, err
	}
	return &Session{
		gnb:       g,
		ue:        device,
		ranUEID:   ranUEID,
		SetupTime: g.env.Model.Duration(acct.Total() - start),
	}, nil
}

// ReRegisterUE runs a mobility registration using the UE's stored 5G-GUTI
// (for example after the UE moved to this gNB): the core resolves the
// temporary identity and re-authenticates without a SUCI ever crossing
// the air interface.
func (g *GNB) ReRegisterUE(ctx context.Context, device *ue.UE) (*Session, error) {
	if err := device.DetectNetwork(g.BroadcastPLMN()); err != nil {
		return nil, err
	}
	acct := simclock.AccountFrom(ctx)
	ctx = simclock.WithAccount(ctx, acct)
	start := acct.Total()

	g.mu.Lock()
	g.nextRANUE++
	ranUEID := g.nextRANUE
	g.mu.Unlock()

	uplink, err := device.BuildReRegistrationRequest(ctx, g.amf.ServingNetworkName())
	if err != nil {
		return nil, err
	}
	if err := g.driveRegistration(ctx, device, ranUEID, uplink); err != nil {
		return nil, err
	}
	return &Session{
		gnb:       g,
		ue:        device,
		ranUEID:   ranUEID,
		SetupTime: g.env.Model.Duration(acct.Total() - start),
	}, nil
}

// driveRegistration relays the NAS exchange between UE and AMF until the
// registration completes.
func (g *GNB) driveRegistration(ctx context.Context, device *ue.UE, ranUEID uint64, initialUplink []byte) error {
	g.chargeRadio(ctx)
	downlink, err := g.amf.HandleInitialUE(ctx, ranUEID, initialUplink)
	if err != nil {
		return fmt.Errorf("gnb: initial UE message: %w", err)
	}

	for round := 0; round < maxNASRounds; round++ {
		up, done, err := device.HandleDownlinkNAS(ctx, downlink)
		if err != nil {
			return fmt.Errorf("gnb: UE NAS handling: %w", err)
		}
		if done && up == nil {
			break
		}
		if up == nil {
			return errors.New("gnb: UE stalled without uplink")
		}
		g.chargeRadio(ctx)
		downlink, err = g.amf.HandleUplinkNAS(ctx, ranUEID, up)
		if err != nil {
			return fmt.Errorf("gnb: uplink NAS: %w", err)
		}
		if downlink == nil {
			// Registration complete acknowledged.
			break
		}
		if done {
			break
		}
	}

	if _, ok := g.amf.SUPIOf(ranUEID); !ok {
		return errors.New("gnb: registration did not complete")
	}
	return nil
}

// chargeRadio charges one access-side NAS round trip.
func (g *GNB) chargeRadio(ctx context.Context) {
	g.env.Charge(ctx, g.env.Jitter.Scale(g.radio.RTTCycles, 0.1))
}

// RANUEID exposes the session's RAN identifier.
func (s *Session) RANUEID() uint64 { return s.ranUEID }

// EstablishPDUSession sets up a data session through SMF/UPF and records
// the assigned UE address and uplink tunnel (delivered over N2 in a real
// deployment).
func (s *Session) EstablishPDUSession(ctx context.Context, sessionID byte, dnn string) error {
	up, err := s.ue.BuildPDUSessionRequest(ctx, sessionID, dnn)
	if err != nil {
		return err
	}
	s.gnb.chargeRadio(ctx)
	down, err := s.gnb.amf.HandleUplinkNAS(ctx, s.ranUEID, up)
	if err != nil {
		return fmt.Errorf("gnb: PDU session: %w", err)
	}
	if _, _, err := s.ue.HandleDownlinkNAS(ctx, down); err != nil {
		return fmt.Errorf("gnb: PDU accept: %w", err)
	}
	teid, ok := s.gnb.amf.PDUSessionTEID(s.ranUEID)
	if !ok {
		return errors.New("gnb: AMF reported no tunnel for session")
	}
	s.teid = teid
	return nil
}

// TEID reports the uplink tunnel ID of the established PDU session.
func (s *Session) TEID() uint32 { return s.teid }

// Deregister detaches the UE from the core, releasing its AMF context and
// GUTI binding.
func (s *Session) Deregister(ctx context.Context) error {
	up, err := s.ue.BuildDeregistrationRequest(ctx)
	if err != nil {
		return err
	}
	s.gnb.chargeRadio(ctx)
	if _, err := s.gnb.amf.HandleUplinkNAS(ctx, s.ranUEID, up); err != nil {
		return fmt.Errorf("gnb: deregistration: %w", err)
	}
	return nil
}

// SendData pushes a payload up the N3 tunnel and returns the data-network
// response, proving the session carries traffic (the paper's OTA
// "Test/-1 — OpenAirInterface" connection).
func (s *Session) SendData(ctx context.Context, payload []byte) ([]byte, error) {
	if s.gnb.upf == nil {
		return nil, errors.New("gnb: no UPF attached")
	}
	if s.teid == 0 {
		return nil, errors.New("gnb: no PDU session established")
	}
	s.gnb.chargeRadio(ctx)
	return s.gnb.upf.ForwardUplink(ctx, s.teid, payload)
}

// MassResult aggregates a gnbsim mass-registration run.
type MassResult struct {
	Registered int
	Failed     int
	SetupTimes *metrics.Recorder
}

// RegisterMany registers n freshly-provisioned UEs back to back, the way
// the paper drives gNBSIM for its large-scale measurements. newUE is
// called per index to provision the device.
func (g *GNB) RegisterMany(ctx context.Context, n int, newUE func(i int) (*ue.UE, error)) (*MassResult, error) {
	result := &MassResult{SetupTimes: &metrics.Recorder{}}
	for i := 0; i < n; i++ {
		device, err := newUE(i)
		if err != nil {
			return result, fmt.Errorf("gnb: provision UE %d: %w", i, err)
		}
		var acct simclock.Account
		sctx := simclock.WithAccount(ctx, &acct)
		sess, err := g.RegisterUE(sctx, device)
		if err != nil {
			result.Failed++
			continue
		}
		result.Registered++
		result.SetupTimes.Add(sess.SetupTime)
	}
	return result, nil
}
