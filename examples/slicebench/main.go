// Slicebench: the paper's comparison in miniature. It deploys the same
// slice under all three isolation modes, registers a batch of UEs through
// each, and prints the module-level and end-to-end costs side by side —
// the quickest way to see where the 1.2-2.9x SGX overheads land and how
// small their share of session setup is.
package main

import (
	"context"
	"crypto/rand"
	"fmt"
	"os"
	"time"

	"shield5g"
)

const batch = 25

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "slicebench: %v\n", err)
		os.Exit(1)
	}
}

type row struct {
	isolation shield5g.Isolation
	setupMean time.Duration
	loadTime  time.Duration
	udmResp   time.Duration
}

func run() error {
	ctx := context.Background()
	var rows []row
	for _, iso := range []shield5g.Isolation{shield5g.Monolithic, shield5g.Container, shield5g.SGX} {
		r, err := bench(ctx, iso)
		if err != nil {
			return fmt.Errorf("%s: %w", iso, err)
		}
		rows = append(rows, r)
	}

	fmt.Printf("%-12s %16s %16s %18s\n", "isolation", "setup mean", "eUDM load", "eUDM stable resp")
	for _, r := range rows {
		load, resp := "-", "-"
		if r.loadTime > 0 {
			load = r.loadTime.Round(time.Millisecond).String()
		}
		if r.udmResp > 0 {
			resp = r.udmResp.Round(time.Microsecond).String()
		}
		fmt.Printf("%-12s %16v %16s %18s\n", r.isolation, r.setupMean.Round(time.Microsecond), load, resp)
	}
	fmt.Println("\n(all times are virtual: deterministic cycles at the paper's 2.4 GHz)")
	return nil
}

func bench(ctx context.Context, iso shield5g.Isolation) (row, error) {
	tb, err := shield5g.NewTestbed(ctx, shield5g.SliceConfig{Isolation: iso, Seed: 99})
	if err != nil {
		return row{}, err
	}
	defer tb.Close()

	var total time.Duration
	for i := 0; i < batch; i++ {
		k := make([]byte, 16)
		if _, err := rand.Read(k); err != nil {
			return row{}, err
		}
		sub, err := tb.AddSubscriber(ctx, k, nil)
		if err != nil {
			return row{}, err
		}
		sess, err := tb.Register(ctx, sub)
		if err != nil {
			return row{}, err
		}
		total += sess.SetupTime
	}

	r := row{isolation: iso, setupMean: total / batch}
	if m, ok := tb.Slice.Modules[shield5g.EUDM]; ok {
		r.loadTime = m.LoadDuration()
	}
	if tb.Slice.RemoteUDM != nil {
		if s := tb.Slice.RemoteUDM.Response().Stable.Summarize(); s.N > 0 {
			r.udmResp = s.Median
		}
	}
	return r, nil
}
