// Package sgx is a software simulation of an Intel SGX platform — the
// Hardware Mediated Execution Enclave (HMEE) instance used throughout this
// reproduction.
//
// The paper runs its P-AKA modules on real SGXv2 CPUs; this package stands
// in for that hardware. It reproduces the architectural behaviours the
// paper measures rather than the silicon itself:
//
//   - enclave build (ECREATE, EADD+EEXTEND measurement, EINIT) with the
//     near-minute load times of Fig. 7,
//   - synchronous transitions (EENTER/EEXIT for ECALLs and OCALLs) with
//     the 10k-18k cycle round-trip costs the paper cites,
//   - asynchronous exits (AEX/ERESUME) from timer interrupts and faults,
//   - EPC page accounting with paging penalties for oversized enclaves,
//   - data sealing bound to the enclave measurement, and
//   - report-based attestation rooted in a per-platform quoting key.
//
// All costs are charged to virtual time through the shared cost model, so
// experiments built on this package are deterministic.
package sgx

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"io"
	"sync"

	"shield5g/internal/costmodel"
	"shield5g/internal/simclock"
)

// Platform is one simulated SGX-capable host. It owns the physical EPC,
// the sealing root key, and the quoting key used for attestation reports.
type Platform struct {
	model    *costmodel.Model
	clock    *simclock.Clock
	jitter   *simclock.Jitter
	realizer *costmodel.Realizer

	epcCapacity uint64
	sealRoot    [32]byte
	qePriv      ed25519.PrivateKey
	qePub       ed25519.PublicKey

	mu       sync.Mutex
	nextID   uint64
	enclaves map[uint64]*Enclave
	epcUsed  uint64
}

// PlatformConfig configures a simulated host.
type PlatformConfig struct {
	// Model supplies cycle costs; nil selects costmodel.Default().
	Model *costmodel.Model
	// EPCCapacityBytes is the physical Enclave Page Cache size. The
	// paper's server has 16 GiB combined EPC. Zero selects 16 GiB.
	EPCCapacityBytes uint64
	// Seed makes all platform jitter reproducible.
	Seed uint64
	// Realizer, when non-nil, converts modelled costs into wall-clock
	// delay (used by realtime benchmarks).
	Realizer *costmodel.Realizer
	// Entropy overrides the randomness source for key generation; nil
	// selects crypto/rand. Deterministic sources are for tests only.
	Entropy io.Reader
}

// DefaultEPCCapacity mirrors the paper's 16 GiB combined EPC.
const DefaultEPCCapacity = 16 << 30

// NewPlatform creates a simulated SGX host.
func NewPlatform(cfg PlatformConfig) (*Platform, error) {
	if cfg.Model == nil {
		cfg.Model = costmodel.Default()
	}
	if cfg.EPCCapacityBytes == 0 {
		cfg.EPCCapacityBytes = DefaultEPCCapacity
	}
	entropy := cfg.Entropy
	if entropy == nil {
		entropy = rand.Reader
	}
	pub, priv, err := ed25519.GenerateKey(entropy)
	if err != nil {
		return nil, fmt.Errorf("sgx: generate quoting key: %w", err)
	}
	p := &Platform{
		model:       cfg.Model,
		clock:       simclock.New(cfg.Model.FrequencyHz),
		jitter:      simclock.NewJitter(cfg.Seed),
		realizer:    cfg.Realizer,
		epcCapacity: cfg.EPCCapacityBytes,
		qePriv:      priv,
		qePub:       pub,
		enclaves:    make(map[uint64]*Enclave),
	}
	if _, err := io.ReadFull(entropy, p.sealRoot[:]); err != nil {
		return nil, fmt.Errorf("sgx: generate sealing root: %w", err)
	}
	return p, nil
}

// Model returns the platform cost model.
func (p *Platform) Model() *costmodel.Model { return p.model }

// Clock returns the platform's virtual clock.
func (p *Platform) Clock() *simclock.Clock { return p.clock }

// Jitter returns the platform's seeded jitter source.
func (p *Platform) Jitter() *simclock.Jitter { return p.jitter }

// QuotingPublicKey returns the public half of the platform quoting key, the
// root of trust a remote verifier pins (standing in for Intel's attestation
// service).
func (p *Platform) QuotingPublicKey() ed25519.PublicKey { return p.qePub }

// EPCInUse reports committed EPC bytes across all live enclaves.
func (p *Platform) EPCInUse() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epcUsed
}

// EPCCapacity reports the physical EPC size.
func (p *Platform) EPCCapacity() uint64 { return p.epcCapacity }

// charge applies a cycle cost to the request account in ctx (if any) and,
// in realtime mode, to the wall clock. The platform uptime clock advances
// too so uptime-driven effects (AEX) see time move.
func (p *Platform) charge(acct *simclock.Account, n simclock.Cycles) {
	if acct != nil {
		acct.Charge(n)
	}
	p.clock.Advance(n)
	p.realizer.Realize(n)
}

// MeasuredFile is one trusted file measured into the enclave identity at
// build time (Gramine manifest trusted_files entries).
type MeasuredFile struct {
	Path string
	Size uint64
	// Digest may be provided; when zero it is derived from Path and Size
	// so that identical manifests produce identical measurements.
	Digest [32]byte
}

func (f MeasuredFile) digest() [32]byte {
	var zero [32]byte
	if f.Digest != zero {
		return f.Digest
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s:%d", f.Path, f.Size)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}
