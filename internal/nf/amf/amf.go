// Package amf implements the Access and Mobility Management Function: the
// N1/NAS termination point of the core. It runs the UE registration state
// machine of the paper's Fig. 5 — forwarding the AKA challenge, verifying
// HXRES* in its SEAF role, confirming RES* with the AUSF, deriving K_AMF
// through its P-AKA execution environment, activating NAS security,
// assigning the 5G-GUTI, and anchoring PDU sessions through the SMF.
package amf

import (
	"context"
	"crypto/hmac"
	"fmt"
	"sync"
	"sync/atomic"

	"shield5g/internal/admission"
	"shield5g/internal/costmodel"
	"shield5g/internal/crypto/kdf"
	"shield5g/internal/nas"
	"shield5g/internal/nf/ausf"
	"shield5g/internal/nf/nrf"
	"shield5g/internal/nf/smf"
	"shield5g/internal/paka"
	"shield5g/internal/sbi"
	"shield5g/internal/shard"
)

// Service identity.
const (
	ServiceName = "amf"
	NFType      = "AMF"
)

// ueState tracks a UE's registration progress.
type ueState int

const (
	stateIdentifying ueState = iota + 1
	stateAuthenticating
	stateSecuring
	stateAcceptPending
	stateRegistered
)

// abba returns the Anti-Bidding down Between Architectures value for this
// release (TS 33.501 Annex A.7.1). A fresh slice per call keeps the value
// immutable to handlers.
func abba() []byte { return []byte{0x00, 0x00} }

// ueContext is the AMF's per-UE state. Only state is read by other
// goroutines (RegisteredUEs, SUPIOf, PDUSessionTEID status queries while a
// mass run is in flight); the remaining fields are owned by the goroutine
// driving the UE's NAS exchange.
type ueContext struct {
	state     atomic.Int32 // holds a ueState
	supi      string
	authCtxID string
	rand      []byte
	hxresStar []byte
	kseaf     []byte
	sec       *nas.SecurityContext
	guti      nas.GUTI
	resyncOK  bool // one resynchronisation attempt allowed
	// pendingAuth retains the identity the current AKA run started from,
	// so a lost AUSF session (crash, dropped confirm reply) can be
	// re-authenticated without bouncing the UE; reauthOK allows it once.
	pendingAuth *ausf.AuthenticateRequest
	reauthOK    bool
	teid        uint32
	// prio is the admission class assigned at InitialUEMessage; follow-up
	// NAS rounds re-stamp it so downstream throttles keep exempting
	// emergency traffic mid-procedure.
	prio sbi.Priority
}

func (u *ueContext) setState(s ueState) { u.state.Store(int32(s)) }
func (u *ueContext) getState() ueState  { return ueState(u.state.Load()) }
func newUEContext(s ueState) *ueContext {
	u := &ueContext{}
	u.setState(s)
	return u
}

// Config wires an AMF instance.
type Config struct {
	Env      *costmodel.Env
	Registry *sbi.Registry
	Invoker  sbi.Invoker
	// Functions derives K_AMF (eAMF module or monolithic).
	Functions paka.AMFFunctions
	// MCC/MNC form the serving PLMN; the serving network name is derived
	// from them.
	MCC, MNC string
	// HMEE marks the instance's trust domain for NRF discovery.
	HMEE bool
	// Admission, when set, gates InitialUEMessage ahead of any enclave
	// work: the registration is classified (emergency > re-registration >
	// fresh attach) and run through per-(gNB, PLMN) token buckets BEFORE
	// the AUSF/P-AKA call. The decision is local — admission never enters
	// the enclave.
	Admission *admission.Controller
	// InstanceID overrides the NRF instance identity (default "amf-1") so
	// every replica of a sharded deployment announces itself distinctly.
	InstanceID string
	// AUSFService, when set, binds this AMF to a specific AUSF replica's
	// service name instead of discovering one through the NRF — the
	// static intra-shard binding of a sharded deployment.
	AUSFService string
}

// AMF is the access and mobility VNF.
type AMF struct {
	env   *costmodel.Env
	ausf  *ausf.Client
	smf   *smf.Client
	nrfc  *nrf.Client
	fns   paka.AMFFunctions
	admit *admission.Controller

	mcc, mnc string
	snn      string

	// ues and guti are lock-striped so concurrent registrations touching
	// different UEs never serialise on one AMF-wide mutex.
	ues      *shard.Map[uint64, *ueContext]
	guti     *shard.Map[uint32, string] // TMSI -> SUPI for mobility registration
	nextTMSI atomic.Uint32

	// Degradation counters: recoveries performed instead of rejecting UEs.
	reauths atomic.Uint64
	resyncs atomic.Uint64
}

// New creates an AMF and announces it to the NRF. The AMF's NAS interface
// faces the gNB over N1/N2 (Go method calls in this simulation), not the
// SBI, so no SBI server is registered for it.
func New(ctx context.Context, cfg Config) (*AMF, error) {
	if cfg.Env == nil || cfg.Registry == nil || cfg.Invoker == nil {
		return nil, fmt.Errorf("amf: Env, Registry and Invoker are required")
	}
	if cfg.Functions == nil {
		return nil, fmt.Errorf("amf: Functions (AKA execution environment) is required")
	}
	if cfg.MCC == "" || cfg.MNC == "" {
		return nil, fmt.Errorf("amf: serving PLMN (MCC/MNC) is required")
	}
	var ausfClient *ausf.Client
	if cfg.AUSFService != "" {
		ausfClient = ausf.NewClientFor(cfg.Invoker, cfg.AUSFService)
	} else {
		var err error
		ausfClient, err = ausf.DiscoverClient(ctx, cfg.Invoker, cfg.HMEE)
		if err != nil {
			return nil, err
		}
	}
	smfClient, err := smf.DiscoverClient(ctx, cfg.Invoker)
	if err != nil {
		return nil, err
	}
	a := &AMF{
		env:   cfg.Env,
		ausf:  ausfClient,
		smf:   smfClient,
		nrfc:  nrf.NewClient(cfg.Invoker),
		fns:   cfg.Functions,
		admit: cfg.Admission,
		mcc:   cfg.MCC,
		mnc:   cfg.MNC,
		snn:   kdf.ServingNetworkName(cfg.MCC, cfg.MNC),
		ues:   shard.NewUint64[*ueContext](),
		guti:  shard.NewUint32[string](),
	}
	instance := cfg.InstanceID
	if instance == "" {
		instance = "amf-1"
	}
	if err := a.nrfc.Register(ctx, nrf.NFProfile{
		InstanceID: instance, NFType: NFType, Service: ServiceName, HMEE: cfg.HMEE,
	}); err != nil {
		return nil, fmt.Errorf("amf: NRF registration: %w", err)
	}
	return a, nil
}

// ServingNetworkName reports the SNN this AMF authenticates under.
func (a *AMF) ServingNetworkName() string { return a.snn }

// RegisteredUEs reports the number of UEs in registered state.
func (a *AMF) RegisteredUEs() int {
	n := 0
	a.ues.Range(func(_ uint64, ue *ueContext) bool {
		if ue.getState() == stateRegistered {
			n++
		}
		return true
	})
	return n
}

// HandleInitialUE processes the first NAS message from a UE (via the gNB's
// Initial UE Message) and returns the downlink NAS response.
func (a *AMF) HandleInitialUE(ctx context.Context, ranUEID uint64, nasPDU []byte) ([]byte, error) {
	msg, err := nas.Decode(nasPDU)
	if err != nil {
		return nil, fmt.Errorf("amf: initial NAS: %w", err)
	}
	rr, ok := msg.(*nas.RegistrationRequest)
	if !ok {
		return nil, fmt.Errorf("amf: initial message is %s, want RegistrationRequest", msg.Type())
	}

	// Classify and gate BEFORE any enclave-bound work: emergency
	// registrations outrank GUTI re-attach, which outranks fresh SUCI
	// attach. The admission decision is a local bucket lookup — it never
	// reaches the AUSF, UDM or P-AKA module.
	class := classify(rr)
	if a.admit != nil {
		source := admission.SourceFrom(ctx) + "/" + a.mcc + a.mnc
		if err := a.admit.Admit(ctx, source, class); err != nil {
			return nil, err
		}
	}
	ctx = sbi.WithPriority(ctx, class)

	authReq := &ausf.AuthenticateRequest{ServingNetworkName: a.snn}
	switch {
	case rr.Identity.SUCI != nil:
		// PLMN check: the UE must be asking for this serving network.
		if rr.Identity.SUCI.MCC != a.mcc || rr.Identity.SUCI.MNC != a.mnc {
			return nil, fmt.Errorf("amf: UE PLMN %s%s does not match serving PLMN %s%s",
				rr.Identity.SUCI.MCC, rr.Identity.SUCI.MNC, a.mcc, a.mnc)
		}
		authReq.SUCI = rr.Identity.SUCI
	case rr.Identity.GUTI != nil:
		// Mobility registration: resolve the temporary identity to the
		// stored SUPI and re-authenticate (network-initiated re-auth;
		// the UE never re-exposes its SUCI).
		g := rr.Identity.GUTI
		if g.MCC != a.mcc || g.MNC != a.mnc {
			return nil, fmt.Errorf("amf: GUTI PLMN %s%s does not match serving PLMN %s%s",
				g.MCC, g.MNC, a.mcc, a.mnc)
		}
		supi, known := a.guti.Load(g.TMSI)
		if !known {
			// No stored context (for example the UE moved from another
			// AMF set): fall back to the identity procedure
			// (TS 24.501 §5.4.3) and ask for the SUCI.
			ue := newUEContext(stateIdentifying)
			ue.resyncOK = true
			a.ues.Store(ranUEID, ue)
			return nas.Encode(&nas.IdentityRequest{IdentityType: nas.IdentityTypeSUCI})
		}
		authReq.SUPI = supi
	default:
		return nil, fmt.Errorf("amf: registration carries no identity")
	}

	auth, err := a.ausf.Authenticate(ctx, authReq)
	if err != nil {
		return nil, err
	}

	ue := newUEContext(stateAuthenticating)
	ue.authCtxID = auth.AuthCtxID
	ue.rand = auth.RAND
	ue.hxresStar = auth.HXRESStar
	ue.resyncOK = true
	ue.pendingAuth = authReq
	ue.reauthOK = true
	ue.prio = class
	a.ues.Store(ranUEID, ue)

	return a.challenge(auth)
}

// classify maps a RegistrationRequest onto its admission priority class.
func classify(rr *nas.RegistrationRequest) sbi.Priority {
	switch {
	case rr.RegistrationType == nas.RegistrationEmergency:
		return sbi.PriorityEmergency
	case rr.Identity.GUTI != nil:
		return sbi.PriorityReattach
	default:
		return sbi.PriorityFresh
	}
}

func (a *AMF) challenge(auth *ausf.AuthenticateResponse) ([]byte, error) {
	req := &nas.AuthenticationRequest{NgKSI: 0, ABBA: abba()}
	copy(req.RAND[:], auth.RAND)
	copy(req.AUTN[:], auth.AUTN)
	return nas.Encode(req)
}

// HandleUplinkNAS processes a subsequent uplink NAS message. A nil
// downlink PDU with nil error means no response is due (for example after
// RegistrationComplete).
func (a *AMF) HandleUplinkNAS(ctx context.Context, ranUEID uint64, nasPDU []byte) ([]byte, error) {
	ue, ok := a.ues.Load(ranUEID)
	if !ok {
		return nil, fmt.Errorf("amf: no UE context for RAN UE %d", ranUEID)
	}
	ctx = sbi.WithPriority(ctx, ue.prio)

	switch ue.getState() {
	case stateIdentifying:
		return a.handleIdentifying(ctx, ue, nasPDU)
	case stateAuthenticating:
		return a.handleAuthenticating(ctx, ranUEID, ue, nasPDU)
	default:
		return a.handleProtected(ctx, ranUEID, ue, nasPDU)
	}
}

// handleIdentifying completes the identity procedure: the UE answered an
// IdentityRequest with a fresh SUCI, which restarts authentication.
func (a *AMF) handleIdentifying(ctx context.Context, ue *ueContext, nasPDU []byte) ([]byte, error) {
	msg, err := nas.Decode(nasPDU)
	if err != nil {
		return nil, fmt.Errorf("amf: identity response: %w", err)
	}
	ir, ok := msg.(*nas.IdentityResponse)
	if !ok {
		return nil, fmt.Errorf("amf: unexpected %s while identifying", msg.Type())
	}
	if ir.Identity.SUCI == nil {
		return nil, fmt.Errorf("amf: identity response carries no SUCI")
	}
	if ir.Identity.SUCI.MCC != a.mcc || ir.Identity.SUCI.MNC != a.mnc {
		return nil, fmt.Errorf("amf: identified UE PLMN %s%s does not match serving PLMN %s%s",
			ir.Identity.SUCI.MCC, ir.Identity.SUCI.MNC, a.mcc, a.mnc)
	}
	authReq := &ausf.AuthenticateRequest{
		SUCI:               ir.Identity.SUCI,
		ServingNetworkName: a.snn,
	}
	auth, err := a.ausf.Authenticate(ctx, authReq)
	if err != nil {
		return nil, err
	}
	ue.setState(stateAuthenticating)
	ue.authCtxID = auth.AuthCtxID
	ue.rand = auth.RAND
	ue.hxresStar = auth.HXRESStar
	ue.pendingAuth = authReq
	ue.reauthOK = true
	return a.challenge(auth)
}

func (a *AMF) handleAuthenticating(ctx context.Context, ranUEID uint64, ue *ueContext, nasPDU []byte) ([]byte, error) {
	msg, err := nas.Decode(nasPDU)
	if err != nil {
		return nil, fmt.Errorf("amf: uplink NAS: %w", err)
	}
	switch m := msg.(type) {
	case *nas.AuthenticationResponse:
		return a.completeAuth(ctx, ue, m)
	case *nas.AuthenticationFailure:
		return a.handleAuthFailure(ctx, ranUEID, ue, m)
	default:
		return nil, fmt.Errorf("amf: unexpected %s while authenticating", msg.Type())
	}
}

var (
	confirmReqPool    = sync.Pool{New: func() any { return new(ausf.ConfirmRequest) }}
	deriveKAMFReqPool = sync.Pool{New: func() any { return new(paka.AMFDeriveKAMFRequest) }}
)

// completeAuth runs the SEAF HXRES* check, home confirmation, K_AMF
// derivation through the P-AKA environment, and NAS security activation.
//
//shieldlint:hotpath
func (a *AMF) completeAuth(ctx context.Context, ue *ueContext, m *nas.AuthenticationResponse) ([]byte, error) {
	// SEAF check: HXRES* == SHA-256(RAND || RES*) truncated.
	// HRES* is compare-and-discard: compute it on the stack.
	var hres [kdf.KeyLen128]byte
	if err := kdf.HXResStarInto(hres[:], ue.rand, m.ResStar[:]); err != nil {
		return nil, fmt.Errorf("amf: HRES* computation: %w", err)
	}
	if !hmac.Equal(hres[:], ue.hxresStar) {
		return a.reject(ue)
	}
	// Outbound request structs are pooled: the client stubs marshal them
	// synchronously and nothing downstream retains them.
	creq := confirmReqPool.Get().(*ausf.ConfirmRequest)
	creq.AuthCtxID, creq.ResStar = ue.authCtxID, m.ResStar[:]
	conf, err := a.ausf.Confirm(ctx, creq)
	*creq = ausf.ConfirmRequest{}
	confirmReqPool.Put(creq)
	if err != nil {
		// Graceful degradation: CONTEXT_NOT_FOUND means the AUSF no longer
		// holds the auth session — it consumed it while the reply was
		// dropped, crashed, or TTL-expired it. The UE's credentials are
		// fine, so re-run authentication once and re-challenge instead of
		// rejecting the device.
		if sbi.HasCause(err, "CONTEXT_NOT_FOUND") && ue.reauthOK && ue.pendingAuth != nil {
			ue.reauthOK = false
			if auth, aerr := a.ausf.Authenticate(ctx, ue.pendingAuth); aerr == nil {
				a.reauths.Add(1)
				ue.setState(stateAuthenticating)
				ue.authCtxID = auth.AuthCtxID
				ue.rand = auth.RAND
				ue.hxresStar = auth.HXRESStar
				return a.challenge(auth)
			}
		}
		return a.reject(ue)
	}
	ue.supi = conf.SUPI
	ue.kseaf = conf.KSEAF

	kreq := deriveKAMFReqPool.Get().(*paka.AMFDeriveKAMFRequest)
	kreq.KSEAF, kreq.SUPI, kreq.ABBA = conf.KSEAF, conf.SUPI, abba()
	kamf, err := a.fns.DeriveKAMF(ctx, kreq)
	*kreq = paka.AMFDeriveKAMFRequest{}
	deriveKAMFReqPool.Put(kreq)
	if err != nil {
		return nil, err
	}
	sec, err := nas.NewSecurityContext(kamf.KAMF)
	if err != nil {
		return nil, fmt.Errorf("amf: NAS security context: %w", err)
	}
	ue.sec = sec
	ue.setState(stateSecuring)

	return sec.Protect(&nas.SecurityModeCommand{
		NgKSI:        0,
		IntegrityAlg: nas.AlgNIA2,
		CipheringAlg: nas.AlgNEA2,
	}, false)
}

func (a *AMF) reject(ue *ueContext) ([]byte, error) {
	ue.setState(stateAuthenticating)
	ue.sec = nil
	return nas.Encode(&nas.AuthenticationReject{})
}

func (a *AMF) handleAuthFailure(ctx context.Context, _ uint64, ue *ueContext, m *nas.AuthenticationFailure) ([]byte, error) {
	if m.Cause != nas.CauseSyncFailure || !ue.resyncOK {
		return a.reject(ue)
	}
	ue.resyncOK = false
	auth, err := a.ausf.Resync(ctx, &ausf.ResyncRequest{AuthCtxID: ue.authCtxID, AUTS: m.AUTS})
	if err != nil {
		return a.reject(ue)
	}
	ue.authCtxID = auth.AuthCtxID
	ue.rand = auth.RAND
	ue.hxresStar = auth.HXRESStar
	a.resyncs.Add(1)
	return a.challenge(auth)
}

// Reauths reports how many lost AUSF sessions were recovered by
// re-authentication instead of rejecting the UE.
func (a *AMF) Reauths() uint64 { return a.reauths.Load() }

// Resyncs reports how many SQN resynchronisations completed successfully.
func (a *AMF) Resyncs() uint64 { return a.resyncs.Load() }

func (a *AMF) handleProtected(ctx context.Context, ranUEID uint64, ue *ueContext, nasPDU []byte) ([]byte, error) {
	if ue.sec == nil {
		return nil, fmt.Errorf("amf: no NAS security context for RAN UE %d", ranUEID)
	}
	msg, err := ue.sec.Unprotect(nasPDU, true)
	if err != nil {
		return nil, fmt.Errorf("amf: unprotect uplink NAS: %w", err)
	}

	switch m := msg.(type) {
	case *nas.SecurityModeComplete:
		if ue.getState() != stateSecuring {
			return nil, fmt.Errorf("amf: SecurityModeComplete in state %d", ue.getState())
		}
		guti := a.allocateGUTI(ue.supi)
		ue.guti = guti
		ue.setState(stateAcceptPending)
		return ue.sec.Protect(&nas.RegistrationAccept{GUTI: guti}, false)

	case *nas.RegistrationComplete:
		if ue.getState() != stateAcceptPending {
			return nil, fmt.Errorf("amf: RegistrationComplete in state %d", ue.getState())
		}
		ue.setState(stateRegistered)
		return nil, nil

	case *nas.PDUSessionEstablishmentRequest:
		if ue.getState() != stateRegistered {
			return nil, fmt.Errorf("amf: PDU session request before registration completes")
		}
		sess, err := a.smf.CreateSession(ctx, &smf.CreateSessionRequest{
			SUPI:      ue.supi,
			SessionID: m.SessionID,
			DNN:       m.DNN,
		})
		if err != nil {
			return nil, err
		}
		ue.teid = sess.TEID
		return ue.sec.Protect(&nas.PDUSessionEstablishmentAccept{
			SessionID: m.SessionID,
			UEAddress: sess.UEAddress,
		}, false)

	case *nas.DeregistrationRequest:
		a.guti.Delete(ue.guti.TMSI)
		a.ues.Delete(ranUEID)
		return nil, nil

	default:
		return nil, fmt.Errorf("amf: unexpected protected %s", msg.Type())
	}
}

func (a *AMF) allocateGUTI(supi string) nas.GUTI {
	tmsi := a.nextTMSI.Add(1)
	a.guti.Store(tmsi, supi)
	return nas.GUTI{
		MCC:         a.mcc,
		MNC:         a.mnc,
		AMFRegionID: 0x01,
		AMFSetID:    0x001,
		AMFPointer:  0x01,
		TMSI:        tmsi,
	}
}

// PDUSessionTEID reports the uplink tunnel ID of a UE's PDU session — the
// information the AMF delivers to the gNB over N2 in a real core.
func (a *AMF) PDUSessionTEID(ranUEID uint64) (uint32, bool) {
	ue, ok := a.ues.Load(ranUEID)
	if !ok || ue.teid == 0 {
		return 0, false
	}
	return ue.teid, true
}

// SUPIOf reports the authenticated SUPI of a registered RAN UE (tests and
// status displays).
func (a *AMF) SUPIOf(ranUEID uint64) (string, bool) {
	ue, ok := a.ues.Load(ranUEID)
	if !ok || ue.getState() != stateRegistered {
		return "", false
	}
	return ue.supi, true
}
