package chaos

import (
	"fmt"

	"shield5g/internal/sbi"
	"shield5g/internal/simclock"
)

// This file models the signaling-storm fault: a mass disconnect (an abrupt
// RAN outage silently drops every attached UE — no deregistration
// signaling, so AMF contexts and GUTIs persist) followed by a synchronized
// re-attach wave mixed with fresh attaches and a trickle of emergency
// registrations. The plan is generated from a seed on the virtual arrival
// axis, so the same seed always produces the same storm: same classes,
// same arrival times, same overload shape.

// StormEvent is one registration attempt in the storm: which device slot,
// its priority class, and its virtual arrival time.
type StormEvent struct {
	// Index identifies the device slot; the driver maps it to a UE (slots
	// of the re-attach class map onto the pre-registered population).
	Index int
	// Class is the admission priority of this arrival.
	Class sbi.Priority
	// At is the virtual arrival timestamp, cycles from the storm start.
	At simclock.Cycles
}

// StormSpec shapes a storm plan.
type StormSpec struct {
	// N is the number of arrivals in the wave.
	N int
	// EmergencyFrac and ReattachFrac split the wave into classes; the
	// remainder is fresh attach load riding the storm.
	EmergencyFrac float64
	ReattachFrac  float64
	// Spacing is the mean virtual inter-arrival gap. Overload is expressed
	// here: spacing = bottleneck service cost / overload factor.
	Spacing simclock.Cycles
	// JitterFrac spreads each gap uniformly in [1-f, 1+f].
	JitterFrac float64
}

// StormPlan is a fully materialised storm: the event sequence in arrival
// order plus the window it spans.
type StormPlan struct {
	Events []StormEvent
	// Window is the last arrival's timestamp.
	Window simclock.Cycles
}

// ClassCount reports how many events carry the given class.
func (p *StormPlan) ClassCount(class sbi.Priority) int {
	n := 0
	for _, ev := range p.Events {
		if ev.Class == class {
			n++
		}
	}
	return n
}

// NewStormPlan materialises a storm from a seed. Class draws and arrival
// jitter come from one derived jitter stream, so every (seed, spec) pair
// yields the same plan on every run.
func NewStormPlan(seed uint64, spec StormSpec) (*StormPlan, error) {
	if spec.N <= 0 {
		return nil, fmt.Errorf("chaos: storm needs N > 0, got %d", spec.N)
	}
	if spec.Spacing == 0 {
		return nil, fmt.Errorf("chaos: storm needs a non-zero arrival spacing")
	}
	if spec.EmergencyFrac < 0 || spec.ReattachFrac < 0 ||
		spec.EmergencyFrac+spec.ReattachFrac > 1 {
		return nil, fmt.Errorf("chaos: storm class fractions must be non-negative and sum to at most 1")
	}
	// A dedicated stream keeps the plan independent of any other draw the
	// experiment makes from the same root seed.
	rng := simclock.NewJitter(seed).Stream(0x5708)

	plan := &StormPlan{Events: make([]StormEvent, spec.N)}
	var at simclock.Cycles
	for i := range plan.Events {
		class := sbi.PriorityFresh
		switch f := rng.Float64(); {
		case f < spec.EmergencyFrac:
			class = sbi.PriorityEmergency
		case f < spec.EmergencyFrac+spec.ReattachFrac:
			class = sbi.PriorityReattach
		}
		at += rng.Scale(spec.Spacing, spec.JitterFrac)
		plan.Events[i] = StormEvent{Index: i, Class: class, At: at}
	}
	plan.Window = at
	return plan, nil
}
