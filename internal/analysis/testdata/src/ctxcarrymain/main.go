// Package main is a shieldlint fixture for the ctxcarry top-level
// carve-out: in a main package, functions without a ctx parameter are
// the binary's entry plumbing and may mint root contexts; a function
// already handed a ctx may not.
package main

import "context"

func main() {
	ctx := context.Background() // entry point: allowed
	helper(ctx)
}

func run() int {
	ctx := context.Background() // helper without a ctx param: still entry plumbing, allowed
	helper(ctx)
	return 0
}

func helper(ctx context.Context) {
	_ = ctx
	_ = context.Background() // want "context.Background below the top level"
}
