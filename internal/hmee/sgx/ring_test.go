package sgx

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shield5g/internal/simclock"
)

// testRing builds an enclave, enters a resident dispatcher thread, and
// starts a ring on it, tearing everything down in reverse order.
func testRing(t *testing.T, size int) (*Ring, *Enclave) {
	t.Helper()
	p := testPlatform(t)
	e := build(t, p, testConfig())
	th, err := e.EnterResident(context.Background())
	if err != nil {
		t.Fatalf("EnterResident: %v", err)
	}
	r := NewRing(e, th, size)
	t.Cleanup(func() {
		r.Close()
		e.LeaveResident(th)
	})
	return r, e
}

// countJob counts its executions; an optional gate makes it block inside
// the dispatcher (started is signalled once the dispatcher is inside).
type countJob struct {
	runs    atomic.Int32
	err     error
	started chan struct{}
	release chan struct{}
}

func (j *countJob) Execute(*Thread) error {
	if j.started != nil {
		close(j.started)
	}
	if j.release != nil {
		<-j.release
	}
	j.runs.Add(1)
	return j.err
}

func TestRingWraparound(t *testing.T) {
	r, _ := testRing(t, 4)
	ctx := context.Background()
	// 20 sequential submissions through a 4-slot ring exercise five full
	// wraps of the Vyukov sequence words.
	jobs := make([]*countJob, 20)
	for i := range jobs {
		jobs[i] = &countJob{}
		if err := r.Submit(ctx, jobs[i]); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	for i, j := range jobs {
		if n := j.runs.Load(); n != 1 {
			t.Fatalf("job %d ran %d times, want exactly 1", i, n)
		}
	}
	st := r.Stats()
	if st.Submitted != 20 || st.Completed != 20 || st.Drained != 0 {
		t.Fatalf("stats = %+v, want Submitted=20 Completed=20 Drained=0", st)
	}
}

func TestRingSubmitPropagatesJobError(t *testing.T) {
	r, _ := testRing(t, 0)
	sentinel := errors.New("job failed")
	j := &countJob{err: sentinel}
	if err := r.Submit(context.Background(), j); !errors.Is(err, sentinel) {
		t.Fatalf("Submit = %v, want the job's own error", err)
	}
}

func TestRingBackpressure(t *testing.T) {
	r, _ := testRing(t, 2)
	ctx := context.Background()

	// Park the dispatcher inside a job so published entries pile up.
	blocker := &countJob{started: make(chan struct{}), release: make(chan struct{})}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := r.Submit(ctx, blocker); err != nil {
			t.Errorf("Submit blocker: %v", err)
		}
	}()
	<-blocker.started

	// Two producers fill both slots, a third finds the ring full and spins.
	jobs := make([]*countJob, 3)
	for i := range jobs {
		jobs[i] = &countJob{}
		wg.Add(1)
		go func(j *countJob) {
			defer wg.Done()
			if err := r.Submit(ctx, j); err != nil {
				t.Errorf("Submit: %v", err)
			}
		}(jobs[i])
	}
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats().Backpressure == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no backpressure observed with a full ring and a blocked dispatcher")
		}
		time.Sleep(time.Millisecond)
	}

	close(blocker.release)
	wg.Wait()
	for i, j := range jobs {
		if n := j.runs.Load(); n != 1 {
			t.Fatalf("job %d ran %d times, want exactly 1", i, n)
		}
	}
	st := r.Stats()
	if st.Submitted != 4 || st.Completed != 4 {
		t.Fatalf("stats = %+v, want Submitted=4 Completed=4", st)
	}
}

func TestRingParkAndWake(t *testing.T) {
	r, _ := testRing(t, 0)
	ctx := context.Background()
	if err := r.Submit(ctx, &countJob{}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// The dispatcher parks after its real spin budget runs dry.
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats().Parks == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dispatcher never parked on an idle ring")
		}
		time.Sleep(time.Millisecond)
	}
	// A submission against a parked dispatcher must still complete: the
	// kick doorbell may not be lost.
	j := &countJob{}
	if err := r.Submit(ctx, j); err != nil {
		t.Fatalf("Submit after park: %v", err)
	}
	if j.runs.Load() != 1 {
		t.Fatalf("post-park job ran %d times, want 1", j.runs.Load())
	}
}

func TestRingCloseDrainsExactlyOnce(t *testing.T) {
	r, _ := testRing(t, 4)
	ctx := context.Background()

	blocker := &countJob{started: make(chan struct{}), release: make(chan struct{})}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The blocker is dispatched before Close, so it completes with its
		// own (nil) result even though the ring closes around it.
		if err := r.Submit(ctx, blocker); err != nil {
			t.Errorf("Submit blocker: %v", err)
		}
	}()
	<-blocker.started

	const producers = 8
	jobs := make([]*countJob, producers)
	errs := make([]error, producers)
	for i := 0; i < producers; i++ {
		jobs[i] = &countJob{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = r.Submit(ctx, jobs[i])
		}(i)
	}
	// Let the queue fill behind the blocked dispatcher, then tear the ring
	// down mid-stream while releasing the blocker.
	for r.Occupancy() < 4 {
		time.Sleep(time.Millisecond)
	}
	done := make(chan struct{})
	go func() {
		r.Close()
		close(done)
	}()
	close(blocker.release)
	wg.Wait()
	<-done

	if n := blocker.runs.Load(); n != 1 {
		t.Fatalf("blocker ran %d times, want 1", n)
	}
	for i, j := range jobs {
		runs := j.runs.Load()
		switch {
		case errs[i] == nil && runs != 1:
			t.Fatalf("job %d returned nil but ran %d times, want exactly 1", i, runs)
		case errors.Is(errs[i], ErrRingClosed) && runs != 0:
			t.Fatalf("job %d was drained with ErrRingClosed but ran %d times", i, runs)
		case errs[i] != nil && !errors.Is(errs[i], ErrRingClosed):
			t.Fatalf("job %d: unexpected error %v", i, errs[i])
		}
	}
	st := r.Stats()
	if st.Submitted != st.Completed+st.Drained {
		t.Fatalf("stats = %+v: Submitted != Completed+Drained after Close", st)
	}
	// Late submissions against the closed ring fail cleanly, and Close
	// stays idempotent.
	if err := r.Submit(ctx, &countJob{}); !errors.Is(err, ErrRingClosed) {
		t.Fatalf("Submit after Close = %v, want ErrRingClosed", err)
	}
	r.Close()
}

// TestRingChaosCrashRestart tears rings down mid-stream under seeded
// producer schedules, then rebuilds on the same dispatcher thread — the
// module crash-restart discipline. Every job must complete exactly once
// (its own result or ErrRingClosed), never twice, across the crash.
func TestRingChaosCrashRestart(t *testing.T) {
	p := testPlatform(t)
	e := build(t, p, testConfig())
	th, err := e.EnterResident(context.Background())
	if err != nil {
		t.Fatalf("EnterResident: %v", err)
	}
	defer e.LeaveResident(th)

	ctx := context.Background()
	for seed := uint64(0); seed < 5; seed++ {
		r := NewRing(e, th, 4)
		const producers = 4
		// The seed staggers how much work each producer enqueues before
		// the crash, exercising different drain interleavings.
		perProducer := 3 + int(seed%4)
		jobs := make([][]*countJob, producers)
		errs := make([][]error, producers)
		var wg sync.WaitGroup
		for w := 0; w < producers; w++ {
			jobs[w] = make([]*countJob, perProducer)
			errs[w] = make([]error, perProducer)
			for k := range jobs[w] {
				jobs[w][k] = &countJob{}
			}
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for k := range jobs[w] {
					errs[w][k] = r.Submit(ctx, jobs[w][k])
					if errs[w][k] != nil {
						// The crash landed; the module is gone.
						for rest := k + 1; rest < len(errs[w]); rest++ {
							errs[w][rest] = ErrRingClosed
						}
						return
					}
				}
			}(w)
		}
		// Crash after a seed-dependent number of completions.
		crashAt := uint64(1 + seed*2)
		for r.Stats().Completed < crashAt && r.Stats().Submitted < uint64(producers*perProducer) {
			time.Sleep(50 * time.Microsecond)
		}
		r.Close()
		wg.Wait()

		for w := range jobs {
			for k, j := range jobs[w] {
				runs := j.runs.Load()
				switch {
				case errs[w][k] == nil && runs != 1:
					t.Fatalf("seed %d: job %d/%d returned nil but ran %d times", seed, w, k, runs)
				case errors.Is(errs[w][k], ErrRingClosed) && runs != 0:
					t.Fatalf("seed %d: job %d/%d drained but ran %d times", seed, w, k, runs)
				case errs[w][k] != nil && !errors.Is(errs[w][k], ErrRingClosed):
					t.Fatalf("seed %d: job %d/%d unexpected error %v", seed, w, k, errs[w][k])
				}
			}
		}
		if st := r.Stats(); st.Submitted != st.Completed+st.Drained {
			t.Fatalf("seed %d: stats = %+v: Submitted != Completed+Drained", seed, st)
		}

		// Restart: a fresh ring on the same resident thread serves again.
		r2 := NewRing(e, th, 4)
		j := &countJob{}
		if err := r2.Submit(ctx, j); err != nil {
			t.Fatalf("seed %d: Submit after restart: %v", seed, err)
		}
		if j.runs.Load() != 1 {
			t.Fatalf("seed %d: restarted ring ran job %d times, want 1", seed, j.runs.Load())
		}
		r2.Close()
	}
}

// TestRingDoorbellDeterministic replays the same sequential submission
// pattern on two same-seed platforms: the virtual doorbell/poll accounting
// and the enclave transition counters must match bit for bit.
func TestRingDoorbellDeterministic(t *testing.T) {
	run := func() (RingStats, StatsSnapshot, simclock.Cycles) {
		p, err := NewPlatform(PlatformConfig{Seed: 7})
		if err != nil {
			t.Fatalf("NewPlatform: %v", err)
		}
		e, err := p.Build(context.Background(), testConfig())
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		defer e.Destroy()
		th, err := e.EnterResident(context.Background())
		if err != nil {
			t.Fatalf("EnterResident: %v", err)
		}
		defer e.LeaveResident(th)
		r := NewRing(e, th, 0)
		var acct simclock.Account
		ctx := simclock.WithAccount(context.Background(), &acct)
		for i := 0; i < 32; i++ {
			if err := r.Submit(ctx, &countJob{}); err != nil {
				t.Fatalf("Submit: %v", err)
			}
		}
		r.Close()
		st := r.Stats()
		st.Parks = 0 // real-axis, timing-dependent by design
		return st, e.Stats(), acct.Total()
	}
	stA, encA, cycA := run()
	stB, encB, cycB := run()
	if stA != stB {
		t.Fatalf("ring stats diverged across same-seed replays: %+v vs %+v", stA, stB)
	}
	if encA != encB {
		t.Fatalf("enclave stats diverged across same-seed replays: %+v vs %+v", encA, encB)
	}
	if cycA != cycB {
		t.Fatalf("charged cycles diverged across same-seed replays: %d vs %d", cycA, cycB)
	}
	// The first submission of an idle ring pays the doorbell ECALL; the
	// back-to-back rest ride the spinning dispatcher.
	if stA.Doorbells == 0 {
		t.Fatal("no doorbell charged on the first submission of an idle ring")
	}
	if stA.Doorbells == stA.Submitted {
		t.Fatal("every submission paid a doorbell; the virtual spin budget never absorbed one")
	}
}
