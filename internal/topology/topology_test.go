package topology

import (
	"fmt"
	"testing"
)

func snapshot(epoch uint64, shardSize int, names ...string) *Snapshot {
	s := &Snapshot{Epoch: epoch, ShardSize: shardSize}
	for i, n := range names {
		s.Replicas = append(s.Replicas, Replica{Index: i, Name: n})
	}
	s.Seal()
	return s
}

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("shard-%d", i)
	}
	return out
}

func TestOwnerDeterministicAndBalanced(t *testing.T) {
	s := snapshot(1, 0, names(8)...)
	counts := make([]int, 8)
	for i := 0; i < 4096; i++ {
		key := fmt.Sprintf("imsi-0010100%07d", i)
		a, b := s.Owner(key), s.Owner(key)
		if a != b {
			t.Fatalf("Owner(%q) unstable: %d vs %d", key, a, b)
		}
		counts[a]++
	}
	for i, c := range counts {
		// 4096 keys over 8 replicas = 512 expected; vnode placement keeps
		// the skew well inside a factor of two.
		if c < 256 || c > 1024 {
			t.Fatalf("replica %d owns %d of 4096 keys, outside [256,1024]: %v", i, c, counts)
		}
	}
}

// TestConsistentHashStability is the rebalance contract: removing one
// replica from the routable set moves only the keys that replica owned;
// every other key keeps its owner.
func TestConsistentHashStability(t *testing.T) {
	full := snapshot(1, 0, names(8)...)
	// Replica 5 removed; survivors keep their names (and ring positions).
	reduced := &Snapshot{Epoch: 2}
	for i, r := range full.Replicas {
		if i == 5 {
			continue
		}
		reduced.Replicas = append(reduced.Replicas, Replica{Index: len(reduced.Replicas), Name: r.Name})
	}
	reduced.Seal()
	nameOf := func(s *Snapshot, idx int) string { return s.Replicas[idx].Name }
	moved := 0
	for i := 0; i < 2048; i++ {
		key := fmt.Sprintf("imsi-0010100%07d", i)
		before := nameOf(full, full.Owner(key))
		after := nameOf(reduced, reduced.Owner(key))
		if before == "shard-5" {
			if after == "shard-5" {
				t.Fatalf("key %q still routed to the removed replica", key)
			}
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %q flapped %s -> %s though its owner survived", key, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("no key was owned by the removed replica; test is vacuous")
	}
}

func TestShardForSubsetAndDeterminism(t *testing.T) {
	s := snapshot(1, 3, names(8)...)
	seen := make(map[string]bool)
	for _, tenant := range []string{"gnb-a/00101", "gnb-b/00101", "gnb-c/00102", "gnb-d/00102"} {
		shard := s.ShardFor(tenant)
		if len(shard) != 3 {
			t.Fatalf("tenant %q shard size = %d, want 3", tenant, len(shard))
		}
		dup := make(map[int]bool)
		for _, idx := range shard {
			if idx < 0 || idx >= 8 {
				t.Fatalf("tenant %q shard index %d out of range", tenant, idx)
			}
			if dup[idx] {
				t.Fatalf("tenant %q shard has duplicate index %d: %v", tenant, idx, shard)
			}
			dup[idx] = true
		}
		again := s.ShardFor(tenant)
		if fmt.Sprint(shard) != fmt.Sprint(again) {
			t.Fatalf("tenant %q shard unstable: %v vs %v", tenant, shard, again)
		}
		seen[fmt.Sprint(shard)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("all tenants drew the same shuffle shard: %v", seen)
	}
	// Full-width shard when the cap is 0 or >= n.
	if got := len(snapshot(1, 0, names(4)...).ShardFor("t")); got != 4 {
		t.Fatalf("uncapped shard size = %d, want 4", got)
	}
}

func TestRouteInStaysInsideShard(t *testing.T) {
	s := snapshot(1, 2, names(8)...)
	const tenant = "gnb-1/00101"
	member := make(map[int]bool)
	for _, idx := range s.ShardFor(tenant) {
		member[idx] = true
	}
	for i := 0; i < 512; i++ {
		supi := fmt.Sprintf("imsi-0010100%07d", i)
		if idx := s.RouteIn(tenant, supi); !member[idx] {
			t.Fatalf("RouteIn(%q, %q) = %d, outside shard %v", tenant, supi, idx, member)
		}
	}
}

func TestRouterEpochProtocol(t *testing.T) {
	r := NewRouter()
	if _, ok := r.Route("t", "supi"); ok {
		t.Fatal("empty router claimed a route")
	}
	s1 := snapshot(1, 0, names(2)...)
	if err := r.Apply(s1); err != nil {
		t.Fatalf("apply epoch 1: %v", err)
	}
	// Same epoch and a stale epoch both nack, leaving s1 as LKG.
	if err := r.Apply(snapshot(1, 0, names(4)...)); err == nil {
		t.Fatal("replayed epoch 1 was acked")
	}
	stale := snapshot(0, 0, names(4)...)
	stale.Epoch = 0
	if err := r.Apply(stale); err == nil {
		t.Fatal("epoch 0 was acked over epoch 1")
	}
	if r.Snapshot() != s1 {
		t.Fatal("nack disturbed the last-known-good snapshot")
	}
	// Unsealed snapshots nack regardless of epoch.
	unsealed := &Snapshot{Epoch: 9, Replicas: []Replica{{Index: 0, Name: "x"}}}
	if err := r.Apply(unsealed); err == nil {
		t.Fatal("unsealed snapshot was acked")
	}
	s3 := snapshot(3, 0, names(4)...)
	if err := r.Apply(s3); err != nil {
		t.Fatalf("apply epoch 3: %v", err)
	}
	if got := r.Epoch(); got != 3 {
		t.Fatalf("router epoch = %d, want 3", got)
	}
	applied, nacked := r.Stats()
	if applied != 2 || nacked != 3 {
		t.Fatalf("stats = (%d acked, %d nacked), want (2, 3)", applied, nacked)
	}
}
