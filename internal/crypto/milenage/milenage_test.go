package milenage

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func mustHex(t testing.TB, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// TS 35.207 §4.3 Test Set 1.
var testSet1 = struct {
	k, rand, sqn, amf, op, opc       string
	macA, macS, res, ck, ik, ak, akS string
}{
	k:    "465b5ce8b199b49faa5f0a2ee238a6bc",
	rand: "23553cbe9637a89d218ae64dae47bf35",
	sqn:  "ff9bb4d0b607",
	amf:  "b9b9",
	op:   "cdc202d5123e20f62b6d676ac72cb318",
	opc:  "cd63cb71954a9f4e48a5994e37a02baf",
	macA: "4a9ffac354dfafb3",
	macS: "01cfaf9ec4e871e9",
	res:  "a54211d5e3ba50bf",
	ck:   "b40ba9a3c58b2a05bbf0d987b21bf8cb",
	ik:   "f769bcd751044604127672711c6d3441",
	ak:   "aa689c648370",
	akS:  "451e8beca43b",
}

func newTestCipher(t *testing.T) *Cipher {
	t.Helper()
	c, err := New(mustHex(t, testSet1.k), mustHex(t, testSet1.opc))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestComputeOPcTestSet1(t *testing.T) {
	opc, err := ComputeOPc(mustHex(t, testSet1.k), mustHex(t, testSet1.op))
	if err != nil {
		t.Fatalf("ComputeOPc: %v", err)
	}
	if want := mustHex(t, testSet1.opc); !bytes.Equal(opc, want) {
		t.Fatalf("OPc = %x, want %x", opc, want)
	}
}

func TestF1TestSet1(t *testing.T) {
	c := newTestCipher(t)
	macA, err := c.F1(mustHex(t, testSet1.rand), mustHex(t, testSet1.sqn), mustHex(t, testSet1.amf))
	if err != nil {
		t.Fatalf("F1: %v", err)
	}
	if want := mustHex(t, testSet1.macA); !bytes.Equal(macA, want) {
		t.Fatalf("MAC-A = %x, want %x", macA, want)
	}
}

func TestF1StarTestSet1(t *testing.T) {
	c := newTestCipher(t)
	macS, err := c.F1Star(mustHex(t, testSet1.rand), mustHex(t, testSet1.sqn), mustHex(t, testSet1.amf))
	if err != nil {
		t.Fatalf("F1Star: %v", err)
	}
	if want := mustHex(t, testSet1.macS); !bytes.Equal(macS, want) {
		t.Fatalf("MAC-S = %x, want %x", macS, want)
	}
}

func TestF2345TestSet1(t *testing.T) {
	c := newTestCipher(t)
	res, ck, ik, ak, err := c.F2345(mustHex(t, testSet1.rand))
	if err != nil {
		t.Fatalf("F2345: %v", err)
	}
	if want := mustHex(t, testSet1.res); !bytes.Equal(res, want) {
		t.Errorf("RES = %x, want %x", res, want)
	}
	if want := mustHex(t, testSet1.ck); !bytes.Equal(ck, want) {
		t.Errorf("CK = %x, want %x", ck, want)
	}
	if want := mustHex(t, testSet1.ik); !bytes.Equal(ik, want) {
		t.Errorf("IK = %x, want %x", ik, want)
	}
	if want := mustHex(t, testSet1.ak); !bytes.Equal(ak, want) {
		t.Errorf("AK = %x, want %x", ak, want)
	}
}

func TestF5StarTestSet1(t *testing.T) {
	c := newTestCipher(t)
	ak, err := c.F5Star(mustHex(t, testSet1.rand))
	if err != nil {
		t.Fatalf("F5Star: %v", err)
	}
	if want := mustHex(t, testSet1.akS); !bytes.Equal(ak, want) {
		t.Fatalf("AK* = %x, want %x", ak, want)
	}
}

func TestNewWithOPMatchesComputedOPc(t *testing.T) {
	c, err := NewWithOP(mustHex(t, testSet1.k), mustHex(t, testSet1.op))
	if err != nil {
		t.Fatalf("NewWithOP: %v", err)
	}
	if want := mustHex(t, testSet1.opc); !bytes.Equal(c.OPc(), want) {
		t.Fatalf("OPc = %x, want %x", c.OPc(), want)
	}
}

func TestOPcReturnsCopy(t *testing.T) {
	c := newTestCipher(t)
	a := c.OPc()
	a[0] ^= 0xff
	if bytes.Equal(a, c.OPc()) {
		t.Fatal("OPc returned aliased storage")
	}
}

func TestBadLengths(t *testing.T) {
	good16 := make([]byte, 16)
	tests := []struct {
		name string
		fn   func() error
	}{
		{"short key", func() error { _, err := New(make([]byte, 15), good16); return err }},
		{"short opc", func() error { _, err := New(good16, make([]byte, 1)); return err }},
		{"opc short key", func() error { _, err := ComputeOPc(make([]byte, 3), good16); return err }},
		{"opc short op", func() error { _, err := ComputeOPc(good16, nil); return err }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.fn() == nil {
				t.Fatal("want error, got nil")
			}
		})
	}

	c := newTestCipher(t)
	if _, err := c.F1(make([]byte, 8), make([]byte, 6), make([]byte, 2)); err == nil {
		t.Fatal("F1 short RAND: want error")
	}
	if _, err := c.F1(good16, make([]byte, 5), make([]byte, 2)); err == nil {
		t.Fatal("F1 short SQN: want error")
	}
	if _, err := c.F1(good16, make([]byte, 6), make([]byte, 3)); err == nil {
		t.Fatal("F1 long AMF: want error")
	}
	if _, _, _, _, err := c.F2345(nil); err == nil {
		t.Fatal("F2345 nil RAND: want error")
	}
	if _, err := c.F5Star(make([]byte, 17)); err == nil {
		t.Fatal("F5Star long RAND: want error")
	}
	if _, err := c.F1Star(nil, nil, nil); err == nil {
		t.Fatal("F1Star nil args: want error")
	}
}

func TestRotateIdentity(t *testing.T) {
	in := [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	var out [16]byte
	rotateInto(&out, &in, 0)
	if out != in {
		t.Fatalf("rotate by 0 = %v", out)
	}
	rotateInto(&out, &in, 16)
	if out != in {
		t.Fatalf("rotate by len = %v", out)
	}
	rotateInto(&out, &in, 1)
	want := [16]byte{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 1}
	if out != want {
		t.Fatalf("rotate by 1 = %v", out)
	}
}

// Property: MAC-A is deterministic and sensitive to every input.
func TestF1Properties(t *testing.T) {
	c := newTestCipher(t)
	f := func(rand [16]byte, sqn [6]byte, amf [2]byte) bool {
		a, err := c.F1(rand[:], sqn[:], amf[:])
		if err != nil {
			return false
		}
		b, err := c.F1(rand[:], sqn[:], amf[:])
		if err != nil {
			return false
		}
		if !bytes.Equal(a, b) {
			return false
		}
		// Flipping one SQN bit must change the MAC (with overwhelming
		// probability; a collision would indicate a broken PRF wiring).
		sqn[0] ^= 0x01
		d, err := c.F1(rand[:], sqn[:], amf[:])
		if err != nil {
			return false
		}
		return !bytes.Equal(a, d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: distinct subscriber keys produce distinct vectors for the same
// challenge, and output lengths always match the spec.
func TestF2345Properties(t *testing.T) {
	f := func(k1, k2 [16]byte, rand [16]byte) bool {
		if k1 == k2 {
			k2[0] ^= 0xff
		}
		op := make([]byte, 16)
		c1, err := NewWithOP(k1[:], op)
		if err != nil {
			return false
		}
		c2, err := NewWithOP(k2[:], op)
		if err != nil {
			return false
		}
		r1, ck1, ik1, ak1, err := c1.F2345(rand[:])
		if err != nil {
			return false
		}
		r2, _, _, _, err := c2.F2345(rand[:])
		if err != nil {
			return false
		}
		if len(r1) != ResLen || len(ck1) != CKLen || len(ik1) != IKLen || len(ak1) != AKLen {
			return false
		}
		return !bytes.Equal(r1, r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: f1 and f1* never agree (they are disjoint halves of OUT1, and
// equality would require a 64-bit collision within one block).
func TestF1F1StarDisjoint(t *testing.T) {
	c := newTestCipher(t)
	f := func(rand [16]byte, sqn [6]byte, amf [2]byte) bool {
		a, err := c.F1(rand[:], sqn[:], amf[:])
		if err != nil {
			return false
		}
		s, err := c.F1Star(rand[:], sqn[:], amf[:])
		if err != nil {
			return false
		}
		return len(a) == MACLen && len(s) == MACLen && !bytes.Equal(a, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkF2345(b *testing.B) {
	c, err := New(mustHex(b, testSet1.k), mustHex(b, testSet1.opc))
	if err != nil {
		b.Fatal(err)
	}
	rand := mustHex(b, testSet1.rand)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, _, err := c.F2345(rand); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF1(b *testing.B) {
	c, err := New(mustHex(b, testSet1.k), mustHex(b, testSet1.opc))
	if err != nil {
		b.Fatal(err)
	}
	rand := mustHex(b, testSet1.rand)
	sqn := mustHex(b, testSet1.sqn)
	amf := mustHex(b, testSet1.amf)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.F1(rand, sqn, amf); err != nil {
			b.Fatal(err)
		}
	}
}
