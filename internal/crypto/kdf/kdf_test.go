package kdf

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"testing"
	"testing/quick"
)

func TestGenericMatchesManualConstruction(t *testing.T) {
	key := []byte{1, 2, 3, 4}
	p0 := []byte("abc")
	p1 := []byte{0xff}

	// Manual S = FC || P0 || L0 || P1 || L1 per TS 33.220 Annex B.
	s := []byte{0x6A}
	s = append(s, p0...)
	s = append(s, 0x00, 0x03)
	s = append(s, p1...)
	s = append(s, 0x00, 0x01)
	mac := hmac.New(sha256.New, key)
	mac.Write(s)
	want := mac.Sum(nil)

	if got := Generic(key, 0x6A, p0, p1); !bytes.Equal(got, want) {
		t.Fatalf("Generic = %x, want %x", got, want)
	}
}

func TestGenericNoParams(t *testing.T) {
	key := []byte("k")
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte{0x42})
	if got := Generic(key, 0x42); !bytes.Equal(got, mac.Sum(nil)) {
		t.Fatal("Generic with no params mismatched")
	}
}

func TestGenericEmptyParamEncoded(t *testing.T) {
	// An empty parameter still contributes its zero length field.
	key := []byte("k")
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte{0x10, 0x00, 0x00})
	if got := Generic(key, 0x10, []byte{}); !bytes.Equal(got, mac.Sum(nil)) {
		t.Fatal("Generic with empty param mismatched")
	}
}

func validCKIK() ([]byte, []byte) {
	ck := bytes.Repeat([]byte{0xc1}, 16)
	ik := bytes.Repeat([]byte{0x1c}, 16)
	return ck, ik
}

func TestKAUSFLengthAndDeterminism(t *testing.T) {
	ck, ik := validCKIK()
	sqnAK := make([]byte, 6)
	a, err := KAUSF(ck, ik, "5G:mnc001.mcc001.3gppnetwork.org", sqnAK)
	if err != nil {
		t.Fatalf("KAUSF: %v", err)
	}
	if len(a) != KeyLen256 {
		t.Fatalf("K_AUSF length = %d, want %d", len(a), KeyLen256)
	}
	b, err := KAUSF(ck, ik, "5G:mnc001.mcc001.3gppnetwork.org", sqnAK)
	if err != nil {
		t.Fatalf("KAUSF: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("K_AUSF not deterministic")
	}
	c, err := KAUSF(ck, ik, "5G:mnc002.mcc001.3gppnetwork.org", sqnAK)
	if err != nil {
		t.Fatalf("KAUSF: %v", err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("K_AUSF ignores serving network name")
	}
}

func TestKAUSFBadLengths(t *testing.T) {
	ck, ik := validCKIK()
	if _, err := KAUSF(ck[:15], ik, "snn", make([]byte, 6)); err == nil {
		t.Fatal("short CK accepted")
	}
	if _, err := KAUSF(ck, ik[:1], "snn", make([]byte, 6)); err == nil {
		t.Fatal("short IK accepted")
	}
	if _, err := KAUSF(ck, ik, "snn", make([]byte, 5)); err == nil {
		t.Fatal("short SQN^AK accepted")
	}
}

func TestResStarLengthAndSensitivity(t *testing.T) {
	ck, ik := validCKIK()
	rand := bytes.Repeat([]byte{0xaa}, 16)
	res := bytes.Repeat([]byte{0xbb}, 8)
	a, err := ResStar(ck, ik, "snn", rand, res)
	if err != nil {
		t.Fatalf("ResStar: %v", err)
	}
	if len(a) != KeyLen128 {
		t.Fatalf("RES* length = %d, want %d", len(a), KeyLen128)
	}
	res[7] ^= 1
	b, err := ResStar(ck, ik, "snn", rand, res)
	if err != nil {
		t.Fatalf("ResStar: %v", err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("RES* insensitive to RES")
	}
}

func TestResStarIsLow128BitsOfKDF(t *testing.T) {
	ck, ik := validCKIK()
	rand := make([]byte, 16)
	res := make([]byte, 8)
	key := append(append([]byte{}, ck...), ik...)
	full := Generic(key, 0x6B, []byte("snn"), rand, res)
	got, err := ResStar(ck, ik, "snn", rand, res)
	if err != nil {
		t.Fatalf("ResStar: %v", err)
	}
	if !bytes.Equal(got, full[16:]) {
		t.Fatal("RES* is not the low 128 bits of the KDF output")
	}
}

func TestResStarBadLengths(t *testing.T) {
	ck, ik := validCKIK()
	if _, err := ResStar(ck, ik, "snn", make([]byte, 15), make([]byte, 8)); err == nil {
		t.Fatal("short RAND accepted")
	}
	if _, err := ResStar(ck, ik, "snn", make([]byte, 16), make([]byte, 16)); err == nil {
		t.Fatal("long RES accepted")
	}
	if _, err := ResStar(ck[:2], ik, "snn", make([]byte, 16), make([]byte, 8)); err == nil {
		t.Fatal("short CK accepted")
	}
}

func TestHXResStar(t *testing.T) {
	rand := bytes.Repeat([]byte{0x01}, 16)
	xres := bytes.Repeat([]byte{0x02}, 16)
	got, err := HXResStar(rand, xres)
	if err != nil {
		t.Fatalf("HXResStar: %v", err)
	}
	h := sha256.Sum256(append(append([]byte{}, rand...), xres...))
	if !bytes.Equal(got, h[:16]) {
		t.Fatal("HXRES* is not the high 128 bits of SHA-256(RAND||XRES*)")
	}
	if _, err := HXResStar(rand[:1], xres); err == nil {
		t.Fatal("short RAND accepted")
	}
	if _, err := HXResStar(rand, xres[:8]); err == nil {
		t.Fatal("short XRES* accepted")
	}
}

func TestKSEAFAndKAMFChain(t *testing.T) {
	kausf := bytes.Repeat([]byte{0x7a}, 32)
	kseaf, err := KSEAF(kausf, "5G:mnc001.mcc001.3gppnetwork.org")
	if err != nil {
		t.Fatalf("KSEAF: %v", err)
	}
	if len(kseaf) != KeyLen256 {
		t.Fatalf("K_SEAF length = %d", len(kseaf))
	}
	kamf, err := KAMF(kseaf, "imsi-001010000000001", []byte{0x00, 0x00})
	if err != nil {
		t.Fatalf("KAMF: %v", err)
	}
	if len(kamf) != KeyLen256 {
		t.Fatalf("K_AMF length = %d", len(kamf))
	}
	// Different SUPI must give a different K_AMF.
	kamf2, err := KAMF(kseaf, "imsi-001010000000002", []byte{0x00, 0x00})
	if err != nil {
		t.Fatalf("KAMF: %v", err)
	}
	if bytes.Equal(kamf, kamf2) {
		t.Fatal("K_AMF ignores SUPI")
	}
}

func TestKAMFDefaultABBA(t *testing.T) {
	kseaf := make([]byte, 32)
	a, err := KAMF(kseaf, "supi", nil)
	if err != nil {
		t.Fatalf("KAMF: %v", err)
	}
	b, err := KAMF(kseaf, "supi", []byte{0x00, 0x00})
	if err != nil {
		t.Fatalf("KAMF: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("nil ABBA does not default to 0x0000")
	}
}

func TestKeyChainBadLengths(t *testing.T) {
	if _, err := KSEAF(make([]byte, 31), "snn"); err == nil {
		t.Fatal("short K_AUSF accepted")
	}
	if _, err := KAMF(make([]byte, 33), "supi", nil); err == nil {
		t.Fatal("long K_SEAF accepted")
	}
	if _, err := AlgorithmKey(make([]byte, 16), AlgoNASEncryption, 1); err == nil {
		t.Fatal("short K_AMF accepted")
	}
	if _, err := KGNB(make([]byte, 8), 0); err == nil {
		t.Fatal("short K_AMF accepted for KGNB")
	}
}

func TestAlgorithmKeySeparation(t *testing.T) {
	kamf := bytes.Repeat([]byte{0x3c}, 32)
	enc, err := AlgorithmKey(kamf, AlgoNASEncryption, 1)
	if err != nil {
		t.Fatalf("AlgorithmKey: %v", err)
	}
	integ, err := AlgorithmKey(kamf, AlgoNASIntegrity, 1)
	if err != nil {
		t.Fatalf("AlgorithmKey: %v", err)
	}
	if len(enc) != KeyLen128 || len(integ) != KeyLen128 {
		t.Fatal("NAS key lengths wrong")
	}
	if bytes.Equal(enc, integ) {
		t.Fatal("encryption and integrity keys identical")
	}
}

func TestKGNBCountSensitivity(t *testing.T) {
	kamf := bytes.Repeat([]byte{0x11}, 32)
	a, err := KGNB(kamf, 0)
	if err != nil {
		t.Fatalf("KGNB: %v", err)
	}
	b, err := KGNB(kamf, 1)
	if err != nil {
		t.Fatalf("KGNB: %v", err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("K_gNB ignores NAS COUNT")
	}
}

func TestServingNetworkName(t *testing.T) {
	tests := []struct {
		mcc, mnc, want string
	}{
		{"001", "01", "5G:mnc001.mcc001.3gppnetwork.org"},
		{"234", "015", "5G:mnc015.mcc234.3gppnetwork.org"},
		{"310", "410", "5G:mnc410.mcc310.3gppnetwork.org"},
	}
	for _, tt := range tests {
		if got := ServingNetworkName(tt.mcc, tt.mnc); got != tt.want {
			t.Errorf("ServingNetworkName(%q, %q) = %q, want %q", tt.mcc, tt.mnc, got, tt.want)
		}
	}
}

func TestXorSQNAKInvolution(t *testing.T) {
	f := func(sqn, ak [6]byte) bool {
		x, err := XorSQNAK(sqn[:], ak[:])
		if err != nil {
			return false
		}
		back, err := XorSQNAK(x, ak[:])
		if err != nil {
			return false
		}
		return bytes.Equal(back, sqn[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := XorSQNAK(make([]byte, 5), make([]byte, 6)); err == nil {
		t.Fatal("short SQN accepted")
	}
}

func TestAUTNRoundTrip(t *testing.T) {
	f := func(sqnAK [6]byte, amf [2]byte, mac [8]byte) bool {
		autn, err := BuildAUTN(sqnAK[:], amf[:], mac[:])
		if err != nil || len(autn) != 16 {
			return false
		}
		s, a, m, err := SplitAUTN(autn)
		if err != nil {
			return false
		}
		return bytes.Equal(s, sqnAK[:]) && bytes.Equal(a, amf[:]) && bytes.Equal(m, mac[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAUTNBadLengths(t *testing.T) {
	if _, err := BuildAUTN(make([]byte, 6), make([]byte, 2), make([]byte, 7)); err == nil {
		t.Fatal("short MAC accepted")
	}
	if _, err := BuildAUTN(make([]byte, 7), make([]byte, 2), make([]byte, 8)); err == nil {
		t.Fatal("long SQN^AK accepted")
	}
	if _, err := BuildAUTN(make([]byte, 6), make([]byte, 1), make([]byte, 8)); err == nil {
		t.Fatal("short AMF accepted")
	}
	if _, _, _, err := SplitAUTN(make([]byte, 15)); err == nil {
		t.Fatal("short AUTN accepted")
	}
}

// Property: the full derivation chain is a function of its inputs only —
// identical inputs give identical K_AMF across independent runs.
func TestChainDeterminism(t *testing.T) {
	f := func(ck, ik [16]byte, sqnAK [6]byte, rnd [16]byte) bool {
		derive := func() []byte {
			kausf, err := KAUSF(ck[:], ik[:], "snn", sqnAK[:])
			if err != nil {
				return nil
			}
			kseaf, err := KSEAF(kausf, "snn")
			if err != nil {
				return nil
			}
			kamf, err := KAMF(kseaf, "imsi-1", nil)
			if err != nil {
				return nil
			}
			return kamf
		}
		a, b := derive(), derive()
		return a != nil && bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkKeyHierarchy(b *testing.B) {
	ck, ik := validCKIK()
	sqnAK := make([]byte, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		kausf, err := KAUSF(ck, ik, "5G:mnc001.mcc001.3gppnetwork.org", sqnAK)
		if err != nil {
			b.Fatal(err)
		}
		kseaf, err := KSEAF(kausf, "5G:mnc001.mcc001.3gppnetwork.org")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := KAMF(kseaf, "imsi-001010000000001", nil); err != nil {
			b.Fatal(err)
		}
	}
}
