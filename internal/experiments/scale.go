package experiments

import (
	"container/heap"
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"shield5g/internal/paka"
	"shield5g/internal/simclock"
)

// ScalePoint is one (replicas, offered load) measurement of the
// horizontal-scaling experiment.
type ScalePoint struct {
	Replicas    int
	OfferedLoad float64 // arrival rate as a fraction of aggregate capacity
	Utilization float64
	MeanSojourn time.Duration
	P95Sojourn  time.Duration
	Throughput  float64 // served requests per second
}

// ScaleResult is the scaling sweep.
type ScaleResult struct {
	// ServiceMedian is the measured single-replica service time the
	// simulation draws from.
	ServiceMedian time.Duration
	Points        []ScalePoint
}

// Scale demonstrates the paper's §V-B7 claim that the microservice design
// supports horizontal scaling: it measures the SGX eUDM module's
// service-time distribution, then drives an event-driven queueing
// simulation (Poisson arrivals, c FIFO replicas, empirically sampled
// service times) across replica counts and offered loads.
func Scale(ctx context.Context, cfg Config) (*ScaleResult, error) {
	n := cfg.iterations()
	if n < 100 {
		n = 100
	}
	r, err := newRig(ctx, paka.EUDM, cfg.Seed+4242, rigOptions{isolation: paka.SGX})
	if err != nil {
		return nil, err
	}
	if _, err := r.run(ctx, n); err != nil {
		r.stop()
		return nil, err
	}
	samples := r.module.ServerSideLatency().Samples()
	summary := r.module.ServerSideLatency().Summarize()
	r.stop()
	if len(samples) == 0 {
		return nil, fmt.Errorf("experiments: no service-time samples collected")
	}

	jitter := simclock.NewJitter(cfg.Seed + 777)
	result := &ScaleResult{ServiceMedian: summary.Median}
	const requestsPerPoint = 6000
	for _, replicas := range []int{1, 2, 4, 8} {
		for _, load := range []float64{0.5, 0.7, 0.9} {
			p := simulateQueue(samples, replicas, load, requestsPerPoint, jitter)
			result.Points = append(result.Points, p)
		}
	}
	return result, nil
}

// event is a pending arrival or departure in the queue simulation.
type eventHeap []float64

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// simulateQueue runs an M/G/c simulation: Poisson arrivals at
// load × c / E[S], FIFO dispatch to the earliest-free replica, service
// times drawn from the measured samples.
func simulateQueue(samples []time.Duration, replicas int, load float64, requests int, jitter *simclock.Jitter) ScalePoint {
	var sum float64
	for _, s := range samples {
		sum += s.Seconds()
	}
	meanService := sum / float64(len(samples))
	arrivalRate := load * float64(replicas) / meanService

	// Earliest-free-time per replica, kept as a min-heap.
	free := make(eventHeap, replicas)
	heap.Init(&free)

	var (
		now      float64
		busy     float64
		sojourns []float64
		lastDone float64
	)
	for i := 0; i < requests; i++ {
		// Exponential inter-arrival.
		now += -math.Log(1-jitter.Float64()) / arrivalRate
		service := samples[jitter.Uint64n(uint64(len(samples)))].Seconds()

		start := heap.Pop(&free).(float64)
		if start < now {
			start = now
		}
		done := start + service
		heap.Push(&free, done)

		busy += service
		sojourns = append(sojourns, done-now)
		if done > lastDone {
			lastDone = done
		}
	}

	sort.Float64s(sojourns)
	mean := 0.0
	for _, s := range sojourns {
		mean += s
	}
	mean /= float64(len(sojourns))
	p95 := sojourns[int(0.95*float64(len(sojourns)-1))]

	return ScalePoint{
		Replicas:    replicas,
		OfferedLoad: load,
		Utilization: busy / (lastDone * float64(replicas)),
		MeanSojourn: time.Duration(mean * float64(time.Second)),
		P95Sojourn:  time.Duration(p95 * float64(time.Second)),
		Throughput:  float64(requests) / lastDone,
	}
}

// Render prints the scaling table.
func (r *ScaleResult) Render(w io.Writer) {
	fprintf(w, "Horizontal scaling of the SGX eUDM module (paper §V-B7)\n")
	fprintf(w, "measured service time median: %v\n", r.ServiceMedian.Round(time.Microsecond))
	fprintf(w, "%-9s %8s %12s %14s %14s %14s\n", "replicas", "load", "utilization", "mean sojourn", "p95 sojourn", "req/s")
	for _, p := range r.Points {
		fprintf(w, "%-9d %7.0f%% %11.1f%% %14s %14s %14.0f\n",
			p.Replicas, p.OfferedLoad*100, p.Utilization*100,
			p.MeanSojourn.Round(10*time.Microsecond), p.P95Sojourn.Round(10*time.Microsecond), p.Throughput)
	}
	fprintf(w, "(throughput scales linearly with replicas while p95 sojourn stays bounded\n")
	fprintf(w, " at fixed offered load — enclave worker pools can grow on demand)\n")
}
