package experiments

import (
	"context"
	"os"
	"testing"
)

// TestBatchingSmokeManual is the development smoke driver; skipped unless
// BATCHING_SMOKE=1.
func TestBatchingSmokeManual(t *testing.T) {
	if os.Getenv("BATCHING_SMOKE") != "1" {
		t.Skip("set BATCHING_SMOKE=1 to run")
	}
	r, err := Batching(context.Background(), Config{Seed: 1, Iterations: 24})
	if err != nil {
		t.Fatal(err)
	}
	r.Render(os.Stdout)
}
