package gnb

import (
	"context"
	"errors"
	"fmt"
	"time"

	"shield5g/internal/admission"
	"shield5g/internal/chaos"
	"shield5g/internal/metrics"
	"shield5g/internal/sbi"
	"shield5g/internal/simclock"
	"shield5g/internal/ue"
)

// This file is the open-loop signaling-storm driver. Unlike the closed-loop
// mass-registration drivers (which start each registration when the previous
// one finishes), the storm replays a chaos.StormPlan: every registration is
// stamped with its planned virtual arrival time, so the offered load is set
// by the plan — 10x the core's service rate if the plan says so — and the
// core's overload machinery (server load meters, admission buckets, client
// throttling) is what decides how the excess degrades.

// StormOptions configures a storm replay.
type StormOptions struct {
	// Plan is the seeded arrival sequence (chaos.NewStormPlan).
	Plan *chaos.StormPlan
	// Device maps an event to its UE. Re-attach slots must return devices
	// holding a GUTI from a previous registration (the mass-disconnect
	// population); emergency slots return devices in emergency mode.
	Device func(ev chaos.StormEvent) (*ue.UE, error)
	// MaxAttempts bounds full-registration attempts per event; <= 1 means
	// one shot (a shed registration counts as shed, not retried).
	MaxAttempts int
	// Source is the gNB identity keyed into the AMF's per-(gNB, PLMN)
	// admission buckets.
	Source string
}

// StormClassResult is one priority class's outcome.
type StormClassResult struct {
	// Offered counts arrivals; Registered completed registrations; Shed
	// rejections by overload control (503 OVERLOAD anywhere in the chain);
	// Failed everything else.
	Offered    int
	Registered int
	Shed       int
	Failed     int
	// SetupTimes records per-registration setup latency (queue wait
	// included — the virtual FIFO delay is charged to the request account).
	SetupTimes *metrics.Recorder
	// Makespan is the class's own completion span on the arrival axis
	// (first arrival to last completion).
	Makespan time.Duration
	// GoodputPerSec is completed registrations per virtual second of the
	// class's makespan — the class's own span, not the global one, so a
	// single long-retrying straggler in another class doesn't dilute it.
	GoodputPerSec float64
}

// StormResult is the replayed storm's outcome, broken down by class
// (indexed by sbi.Priority).
type StormResult struct {
	Class [3]StormClassResult
	// Window is the plan's arrival span; Makespan stretches to the last
	// completion on the arrival axis — queue backlog pushes it out.
	Window   time.Duration
	Makespan time.Duration
	// Attempts counts registration attempts across all events.
	Attempts int
	// FailureCounts/FirstErrors tally non-completed registrations by
	// failure class, shed included.
	FailureCounts map[string]int
	FirstErrors   map[string]error
}

// TotalRegistered sums completions across classes.
func (r *StormResult) TotalRegistered() int {
	return r.Class[0].Registered + r.Class[1].Registered + r.Class[2].Registered
}

// TotalShed sums overload rejections across classes.
func (r *StormResult) TotalShed() int {
	return r.Class[0].Shed + r.Class[1].Shed + r.Class[2].Shed
}

// RunStorm replays the plan sequentially in arrival order; determinism
// comes from the plan (arrival stamps, class mix) plus the env seed, the
// same way the sequential mass driver is bit-for-bit reproducible.
func (g *GNB) RunStorm(ctx context.Context, opts StormOptions) (*StormResult, error) {
	if opts.Plan == nil || len(opts.Plan.Events) == 0 {
		return nil, errors.New("gnb: storm needs a non-empty plan")
	}
	if opts.Device == nil {
		return nil, errors.New("gnb: storm needs a Device mapper")
	}
	result := &StormResult{
		FailureCounts: make(map[string]int),
		FirstErrors:   make(map[string]error),
	}
	for c := range result.Class {
		result.Class[c].SetupTimes = metrics.NewRecorder(len(opts.Plan.Events))
	}
	if opts.Source != "" {
		ctx = admission.WithSource(ctx, opts.Source)
	}
	attempts := opts.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}

	// Arrival stamps are absolute on the shared clock's axis.
	base := g.env.Clock.Elapsed()
	freq := g.env.Clock.FrequencyHz()
	var makespan simclock.Cycles
	var classMakespan [3]simclock.Cycles

	for _, ev := range opts.Plan.Events {
		device, err := opts.Device(ev)
		if err != nil {
			return result, fmt.Errorf("gnb: storm device %d: %w", ev.Index, err)
		}
		cr := &result.Class[ev.Class]
		cr.Offered++

		ectx := simclock.WithArrival(ctx, base+ev.At)
		var acct simclock.Account
		sctx := simclock.WithAccount(ectx, &acct)

		var sess *Session
		var rerr error
		for a := 1; ; a++ {
			acct.Reset()
			if _, hasGUTI := device.GUTI(); hasGUTI {
				sess, rerr = g.ReRegisterUE(sctx, device)
			} else {
				sess, rerr = g.RegisterUE(sctx, device)
			}
			result.Attempts++
			if rerr == nil || a >= attempts {
				break
			}
		}
		if rerr != nil {
			class := failureClass(rerr)
			// A breaker opened by overload failures is part of the overload
			// response, so CIRCUIT_OPEN rejections count as shed too.
			if class == sbi.CauseOverload || class == sbi.CauseCircuitOpen {
				cr.Shed++
			} else {
				cr.Failed++
			}
			result.FailureCounts[class]++
			if _, seen := result.FirstErrors[class]; !seen {
				result.FirstErrors[class] = rerr
			}
			continue
		}
		cr.Registered++
		cr.SetupTimes.Add(sess.SetupTime)
		done := ev.At + acct.Total()
		if done > makespan {
			makespan = done
		}
		if done > classMakespan[ev.Class] {
			classMakespan[ev.Class] = done
		}
	}

	result.Window = simclock.Duration(opts.Plan.Window, freq)
	result.Makespan = simclock.Duration(makespan, freq)
	for c := range result.Class {
		result.Class[c].Makespan = simclock.Duration(classMakespan[c], freq)
		if s := result.Class[c].Makespan.Seconds(); s > 0 {
			result.Class[c].GoodputPerSec = float64(result.Class[c].Registered) / s
		}
	}
	return result, nil
}
