// Package paka implements the paper's primary contribution: the Protected
// AKA (P-AKA) modules — eUDM, eAUSF and eAMF — the security-critical 5G-AKA
// functions extracted from their parent VNFs into standalone REST
// microservices that can run unprotected (plain container) or inside SGX
// enclaves via Gramine shielded containers.
//
// Each module exposes exactly the enclave interface of the paper's Table I:
// the eUDM module generates the HE authentication vector (RAND, AUTN,
// XRES*, K_AUSF), the eAUSF module derives HXRES* and K_SEAF, and the eAMF
// module derives K_AMF.
package paka

import (
	"shield5g/internal/simclock"
)

// ModuleKind identifies one of the three P-AKA modules.
type ModuleKind int

// The P-AKA modules, in the order the paper lists them.
const (
	EUDM ModuleKind = iota + 1
	EAUSF
	EAMF
)

// String names the module the way the paper does.
func (k ModuleKind) String() string {
	switch k {
	case EUDM:
		return "eUDM"
	case EAUSF:
		return "eAUSF"
	case EAMF:
		return "eAMF"
	default:
		return "unknown"
	}
}

// ServiceName is the SBI service name of the module.
func (k ModuleKind) ServiceName() string {
	switch k {
	case EUDM:
		return "eudm-paka"
	case EAUSF:
		return "eausf-paka"
	case EAMF:
		return "eamf-paka"
	default:
		return "unknown-paka"
	}
}

// Kinds lists all modules in paper order.
func Kinds() []ModuleKind { return []ModuleKind{EUDM, EAUSF, EAMF} }

// Profile captures a module's boundary interface (Table I) and its
// calibrated execution-cost parameters.
//
// FnCycles is the container-mode functional latency (the paper's L_F); the
// SGX penalty on top of it is mechanistic — memory-encryption overhead and
// in-window transitions — except for SGXExtraCycles, a small per-module
// constant covering in-enclave allocator and page-walk behaviour that is
// calibrated so the per-module L_F overheads land on the paper's Table II
// (1.2x, 1.3x, 1.5x).
type Profile struct {
	Kind ModuleKind

	// InBytes and OutBytes are the canonical enclave boundary sizes.
	// The paper's Table I values are 40/80 (eUDM), 66/40 (eAUSF) and
	// 32/32 (eAMF); our eAUSF output is 48 because we implement the
	// TS 33.501 16-byte HXRES* (the paper lists 8).
	InBytes  int
	OutBytes int

	// FnCycles is the median container-mode functional compute.
	FnCycles simclock.Cycles
	// FnSigma is the log-normal spread of the functional latency.
	FnSigma float64
	// SGXExtraCycles is the calibrated extra in-enclave cost.
	SGXExtraCycles simclock.Cycles
	// HeapBytes is the heap the handler touches per request.
	HeapBytes uint64
	// ImageBytes is the GSC container image size measured as trusted
	// files (drives the Fig. 7 load time).
	ImageBytes uint64
}

// Profiles returns the calibrated per-module profiles. At the platform's
// 2.4 GHz: eUDM L_F ≈ 45 µs, eAUSF ≈ 38 µs, eAMF ≈ 31 µs in container
// mode, matching the ordering and magnitudes of Fig. 9a (the eUDM module
// moves the most boundary bytes and is the slowest).
func Profiles() map[ModuleKind]Profile {
	return map[ModuleKind]Profile{
		EUDM: {
			Kind:           EUDM,
			InBytes:        40, // OPc 16 + RAND 16 + SQN 6 + AMFid 2
			OutBytes:       80, // RAND 16 + XRES* 16 + K_AUSF 32 + AUTN 16
			FnCycles:       108_000,
			FnSigma:        0.055,
			SGXExtraCycles: 0,
			HeapBytes:      12 << 10,
			ImageBytes:     2_620_000_000,
		},
		EAUSF: {
			Kind:           EAUSF,
			InBytes:        66, // RAND 16 + XRES* 16 + SNN 2 + K_AUSF 32
			OutBytes:       48, // K_SEAF 32 + HXRES* 16 (spec; paper lists 8)
			FnCycles:       91_200,
			FnSigma:        0.055,
			SGXExtraCycles: 4_800,
			HeapBytes:      10 << 10,
			ImageBytes:     2_720_000_000,
		},
		EAMF: {
			Kind:           EAMF,
			InBytes:        32, // K_SEAF 32
			OutBytes:       32, // K_AMF 32
			FnCycles:       74_400,
			FnSigma:        0.055,
			SGXExtraCycles: 15_600,
			HeapBytes:      8 << 10,
			ImageBytes:     2_420_000_000,
		},
	}
}

// PaperTable1 records the paper's published Table I byte counts for the
// EXPERIMENTS.md comparison.
type PaperTable1Row struct {
	Module   string
	InBytes  int
	OutBytes int
	Derives  string
}

// PaperTable1 returns the published Table I rows.
func PaperTable1() []PaperTable1Row {
	return []PaperTable1Row{
		{Module: "eUDM", InBytes: 40, OutBytes: 80, Derives: "f1, f2345, KAUSF, AUTN"},
		{Module: "eAUSF", InBytes: 66, OutBytes: 40, Derives: "KSEAF, HXRES*"},
		{Module: "eAMF", InBytes: 32, OutBytes: 32, Derives: "KAMF"},
	}
}
