// Package suci implements SUPI concealment and de-concealment using ECIES
// Protection Scheme Profile A from TS 33.501 Annex C: Curve25519 key
// agreement, ANSI X9.63 key derivation with SHA-256, AES-128-CTR
// encryption, and a 64-bit HMAC-SHA-256 tag.
//
// In the paper's flow the UE conceals its SUPI into a SUCI before the
// initial registration request; the UDM holds the home-network private key
// and de-conceals the SUCI before authentication-vector generation. The
// home-network private key is exactly the kind of long-term secret the
// paper argues must live inside an HMEE.
package suci

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Protection scheme identifiers from TS 23.003 §2.2B.
const (
	SchemeNull     byte = 0x0
	SchemeProfileA byte = 0x1
	SchemeProfileB byte = 0x2
)

// Profile A parameter sizes in bytes.
const (
	ephemeralKeyLen = 32 // Curve25519 public key
	encKeyLen       = 16 // AES-128 key
	icbLen          = 16 // initial counter block
	macKeyLen       = 32 // HMAC-SHA-256 key
	tagLen          = 8  // truncated MAC tag
)

// ErrIntegrity reports a SUCI whose MAC tag failed verification.
var ErrIntegrity = errors.New("suci: integrity check failed")

// SUPI is a subscription permanent identifier in IMSI form.
type SUPI struct {
	MCC  string // 3-digit mobile country code
	MNC  string // 2- or 3-digit mobile network code
	MSIN string // 9- or 10-digit subscriber number
}

// String renders the SUPI in the canonical "imsi-<digits>" form used as the
// KDF input for K_AMF derivation.
func (s SUPI) String() string { return "imsi-" + s.MCC + s.MNC + s.MSIN }

// Validate checks digit-string well-formedness.
func (s SUPI) Validate() error {
	if len(s.MCC) != 3 || !digits(s.MCC) {
		return fmt.Errorf("suci: bad MCC %q", s.MCC)
	}
	if (len(s.MNC) != 2 && len(s.MNC) != 3) || !digits(s.MNC) {
		return fmt.Errorf("suci: bad MNC %q", s.MNC)
	}
	if len(s.MSIN) < 5 || len(s.MSIN) > 10 || !digits(s.MSIN) {
		return fmt.Errorf("suci: bad MSIN %q", s.MSIN)
	}
	return nil
}

func digits(s string) bool {
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return len(s) > 0
}

// SUCI is a subscription concealed identifier. The home-network identity
// (MCC/MNC) and routing information stay in clear text so the serving
// network can route the request; only the MSIN is concealed.
type SUCI struct {
	MCC              string
	MNC              string
	RoutingIndicator string
	Scheme           byte
	HomeKeyID        byte
	// SchemeOutput is, for Profile A: ephemeral public key || ciphertext
	// || 8-byte MAC tag. For the null scheme it is the plaintext MSIN.
	SchemeOutput []byte
}

// HomeNetworkKey is the home network's ECIES key pair, identified by the
// key ID provisioned to subscribers.
type HomeNetworkKey struct {
	ID   byte
	priv *ecdh.PrivateKey
}

// GenerateHomeNetworkKey creates a Curve25519 home-network key pair using
// entropy from rand.
func GenerateHomeNetworkKey(rand io.Reader, id byte) (*HomeNetworkKey, error) {
	priv, err := ecdh.X25519().GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("suci: generate home network key: %w", err)
	}
	return &HomeNetworkKey{ID: id, priv: priv}, nil
}

// HomeNetworkKeyFromBytes reconstructs a key pair from a 32-byte private
// scalar (for example, one unsealed inside an enclave).
func HomeNetworkKeyFromBytes(raw []byte, id byte) (*HomeNetworkKey, error) {
	priv, err := ecdh.X25519().NewPrivateKey(raw)
	if err != nil {
		return nil, fmt.Errorf("suci: load home network key: %w", err)
	}
	return &HomeNetworkKey{ID: id, priv: priv}, nil
}

// PublicKey returns the 32-byte public key provisioned to subscribers.
func (k *HomeNetworkKey) PublicKey() []byte { return k.priv.PublicKey().Bytes() }

// Bytes returns the 32-byte private scalar (for sealing).
func (k *HomeNetworkKey) Bytes() []byte { return k.priv.Bytes() }

// ConcealNull builds a null-scheme SUCI (TS 33.501 Annex C.2): the MSIN
// travels in plain text. 3GPP permits it for unauthenticated emergency
// sessions and test networks; it offers no identity privacy and exists
// here so the privacy difference is demonstrable.
func ConcealNull(supi SUPI, routingIndicator string) (*SUCI, error) {
	if err := supi.Validate(); err != nil {
		return nil, err
	}
	return &SUCI{
		MCC:              supi.MCC,
		MNC:              supi.MNC,
		RoutingIndicator: routingIndicator,
		Scheme:           SchemeNull,
		SchemeOutput:     []byte(supi.MSIN),
	}, nil
}

// NullSUPI recovers the SUPI from a null-scheme SUCI.
func (s *SUCI) NullSUPI() (SUPI, error) {
	if s.Scheme != SchemeNull {
		return SUPI{}, fmt.Errorf("suci: scheme %d is not the null scheme", s.Scheme)
	}
	supi := SUPI{MCC: s.MCC, MNC: s.MNC, MSIN: string(s.SchemeOutput)}
	if err := supi.Validate(); err != nil {
		return SUPI{}, fmt.Errorf("suci: null-scheme SUPI invalid: %w", err)
	}
	return supi, nil
}

// Conceal encrypts the MSIN of supi to the home-network public key hnPub
// using ECIES Profile A, producing a SUCI. rand supplies the ephemeral key
// entropy.
func Conceal(rand io.Reader, supi SUPI, routingIndicator string, hnPub []byte, keyID byte) (*SUCI, error) {
	if err := supi.Validate(); err != nil {
		return nil, err
	}
	if len(hnPub) != ephemeralKeyLen {
		return nil, fmt.Errorf("suci: home network public key length %d, want %d", len(hnPub), ephemeralKeyLen)
	}
	ephPriv, err := ecdh.X25519().GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("suci: generate ephemeral key: %w", err)
	}
	peer, err := ecdh.X25519().NewPublicKey(hnPub)
	if err != nil {
		return nil, fmt.Errorf("suci: parse home network public key: %w", err)
	}
	shared, err := ephPriv.ECDH(peer)
	if err != nil {
		return nil, fmt.Errorf("suci: ECDH: %w", err)
	}
	ephPub := ephPriv.PublicKey().Bytes()
	encKey, icb, macKey := deriveKeys(shared, ephPub)

	plaintext := []byte(supi.MSIN)
	ciphertext := make([]byte, len(plaintext))
	ctr(encKey, icb, ciphertext, plaintext)
	tag := computeTag(macKey, ciphertext)

	out := make([]byte, 0, len(ephPub)+len(ciphertext)+tagLen)
	out = append(out, ephPub...)
	out = append(out, ciphertext...)
	out = append(out, tag...)
	return &SUCI{
		MCC:              supi.MCC,
		MNC:              supi.MNC,
		RoutingIndicator: routingIndicator,
		Scheme:           SchemeProfileA,
		HomeKeyID:        keyID,
		SchemeOutput:     out,
	}, nil
}

// Deconceal recovers the SUPI from a Profile A SUCI using the home-network
// private key. It returns ErrIntegrity if the MAC tag does not verify.
func (k *HomeNetworkKey) Deconceal(s *SUCI) (SUPI, error) {
	if s == nil {
		return SUPI{}, errors.New("suci: nil SUCI")
	}
	if s.Scheme != SchemeProfileA {
		return SUPI{}, fmt.Errorf("suci: unsupported protection scheme %d", s.Scheme)
	}
	if s.HomeKeyID != k.ID {
		return SUPI{}, fmt.Errorf("suci: key ID %d does not match home network key %d", s.HomeKeyID, k.ID)
	}
	if len(s.SchemeOutput) < ephemeralKeyLen+1+tagLen {
		return SUPI{}, fmt.Errorf("suci: scheme output too short (%d bytes)", len(s.SchemeOutput))
	}
	ephPub := s.SchemeOutput[:ephemeralKeyLen]
	ciphertext := s.SchemeOutput[ephemeralKeyLen : len(s.SchemeOutput)-tagLen]
	tag := s.SchemeOutput[len(s.SchemeOutput)-tagLen:]

	peer, err := ecdh.X25519().NewPublicKey(ephPub)
	if err != nil {
		return SUPI{}, fmt.Errorf("suci: parse ephemeral public key: %w", err)
	}
	shared, err := k.priv.ECDH(peer)
	if err != nil {
		return SUPI{}, fmt.Errorf("suci: ECDH: %w", err)
	}
	encKey, icb, macKey := deriveKeys(shared, ephPub)
	if !hmac.Equal(tag, computeTag(macKey, ciphertext)) {
		return SUPI{}, ErrIntegrity
	}
	plaintext := make([]byte, len(ciphertext))
	ctr(encKey, icb, plaintext, ciphertext)

	supi := SUPI{MCC: s.MCC, MNC: s.MNC, MSIN: string(plaintext)}
	if err := supi.Validate(); err != nil {
		return SUPI{}, fmt.Errorf("suci: deconcealed SUPI invalid: %w", err)
	}
	return supi, nil
}

// deriveKeys runs the ANSI X9.63 KDF with SHA-256 over the shared secret,
// with the ephemeral public key as SharedInfo, and splits the output into
// the AES key, initial counter block and MAC key (TS 33.501 C.3.2).
func deriveKeys(shared, ephPub []byte) (encKey, icb, macKey []byte) {
	const total = encKeyLen + icbLen + macKeyLen
	out := make([]byte, 0, total)
	var counter uint32 = 1
	for len(out) < total {
		h := sha256.New()
		h.Write(shared)
		var c [4]byte
		binary.BigEndian.PutUint32(c[:], counter)
		h.Write(c[:])
		h.Write(ephPub)
		out = h.Sum(out)
		counter++
	}
	return out[:encKeyLen], out[encKeyLen : encKeyLen+icbLen], out[encKeyLen+icbLen : total]
}

func ctr(key, icb, dst, src []byte) {
	block, err := aes.NewCipher(key)
	if err != nil {
		// Key length is fixed by deriveKeys; this cannot happen.
		panic(fmt.Sprintf("suci: AES key setup: %v", err))
	}
	cipher.NewCTR(block, icb).XORKeyStream(dst, src)
}

func computeTag(macKey, ciphertext []byte) []byte {
	mac := hmac.New(sha256.New, macKey)
	mac.Write(ciphertext)
	return mac.Sum(nil)[:tagLen]
}

// String renders the SUCI in the 3GPP presentation format
// suci-0-<mcc>-<mnc>-<ri>-<scheme>-<keyid>-<hex output>.
func (s *SUCI) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "suci-0-%s-%s-%s-%d-%d-%x", s.MCC, s.MNC, s.RoutingIndicator, s.Scheme, s.HomeKeyID, s.SchemeOutput)
	return b.String()
}
