package paka

import (
	"context"
	"errors"
	"sync"
	"time"

	"shield5g/internal/costmodel"
	"shield5g/internal/hmee/gramine"
	"shield5g/internal/hmee/sev"
	"shield5g/internal/hmee/sgx"
	"shield5g/internal/simclock"
)

// Isolation selects how a P-AKA module is deployed, mirroring the paper's
// three comparison points.
type Isolation int

// Isolation modes.
const (
	// Monolithic keeps the AKA functions inside the parent VNF (the
	// unmodified OAI baseline).
	Monolithic Isolation = iota + 1
	// Container extracts the functions into a plain Docker container.
	Container
	// SGX runs the extracted container inside an SGX enclave via
	// Gramine shielded containers.
	SGX
	// SEV runs the extracted container inside an AMD SEV-SNP–style
	// confidential VM — the alternative HMEE the paper discusses in
	// §IV-C: no refactoring, no per-syscall transitions, but a far
	// larger trusted computing base.
	SEV
)

// String names the isolation mode.
func (i Isolation) String() string {
	switch i {
	case Monolithic:
		return "monolithic"
	case Container:
		return "container"
	case SGX:
		return "sgx"
	case SEV:
		return "sev"
	default:
		return "unknown"
	}
}

// Exec is the execution surface a module handler charges its work
// through. Inside an enclave it is the *sgx.Thread (memory-encryption
// overhead, AEX draws, EPC faults); in a plain container it charges native
// costs.
type Exec interface {
	// Compute charges n cycles of handler execution.
	Compute(n simclock.Cycles)
	// Touch charges access to n bytes of heap.
	Touch(nBytes uint64)
	// StoreSecret places sensitive material in the runtime's memory.
	StoreSecret(name string, data []byte)
	// LoadSecret reads sensitive material back.
	LoadSecret(name string) ([]byte, bool)
}

// The enclave thread is an Exec.
var _ Exec = (*sgx.Thread)(nil)

// Breakdown re-exports the per-request latency windows.
type Breakdown = gramine.Breakdown

// RuntimeSession is one persistent keep-alive connection into a module
// runtime: the per-connection setup (accept machinery, TLS handshake) is
// paid at open, the teardown at close, and Serve pays only the
// per-request census. See gramine.Session for the SGX amortization
// contract.
type RuntimeSession interface {
	// Serve runs one pipelined request on the session. The Breakdown
	// windows match ServeRequest minus the amortized phases.
	Serve(ctx context.Context, inBytes, outBytes int, handler func(Exec) error) (Breakdown, error)
	// Close pays the connection teardown. Closing twice, or after the
	// runtime shut down, is a free no-op.
	Close(ctx context.Context) error
}

// Runtime hosts a module's request loop under one isolation mode.
type Runtime interface {
	// ServeRequest runs one request through the modelled server path.
	ServeRequest(ctx context.Context, inBytes, outBytes int, handler func(Exec) error) (Breakdown, error)
	// OpenSession opens a persistent connection for pipelined requests.
	OpenSession(ctx context.Context) (RuntimeSession, error)
	// Do runs fn on the runtime's execution surface outside any request
	// (provisioning, maintenance).
	Do(ctx context.Context, fn func(Exec) error) error
	// DoBatch runs fn across the isolation boundary in a single crossing
	// sized argBytes in / retBytes out — under SGX one EENTER/EEXIT pair
	// for the whole batch; isolation modes without per-crossing
	// transitions treat it like Do plus the data movement.
	DoBatch(ctx context.Context, argBytes, retBytes int, fn func(Exec) error) error
	// LoadDuration is the modelled deployment time (Fig. 7 for SGX).
	LoadDuration() time.Duration
	// Stats snapshots SGX counters (zero for non-SGX runtimes).
	Stats() sgx.StatsSnapshot
	// AccrueUptime models d of deployed residency.
	AccrueUptime(d time.Duration)
	// Warm reports whether the first request has been served.
	Warm() bool
	// Shutdown stops the runtime and releases its resources.
	Shutdown()
}

// --- SGX runtime (Gramine shielded container) ---

type sgxRuntime struct {
	inst *gramine.Instance
}

// newSGXRuntime launches the shielded image on the platform.
func newSGXRuntime(ctx context.Context, p *sgx.Platform, si *gramine.ShieldedImage, opts ...gramine.LaunchOption) (Runtime, error) {
	inst, err := gramine.Launch(ctx, p, si, opts...)
	if err != nil {
		return nil, err
	}
	return &sgxRuntime{inst: inst}, nil
}

// The switchless/classic split below is deliberate: the two branches pass
// two distinct closure literals. The switchless entries store their
// handler in a pooled ring job, so that literal escapes; keeping the
// classic literal separate (and the classic gramine entries free of any
// ring branch) lets escape analysis keep it on the stack — one fewer heap
// allocation per request on the non-switchless hot path.
func (r *sgxRuntime) ServeRequest(ctx context.Context, in, out int, handler func(Exec) error) (Breakdown, error) {
	if sgx.SwitchlessFrom(ctx) {
		return r.inst.ServeRequestSwitchless(ctx, in, out, func(th *sgx.Thread) error { return handler(th) })
	}
	return r.inst.ServeRequest(ctx, in, out, func(th *sgx.Thread) error { return handler(th) })
}

func (r *sgxRuntime) OpenSession(ctx context.Context) (RuntimeSession, error) {
	sess, err := r.inst.OpenSession(ctx)
	if err != nil {
		return nil, err
	}
	return sgxSession{sess: sess}, nil
}

type sgxSession struct {
	sess *gramine.Session
}

func (s sgxSession) Serve(ctx context.Context, in, out int, handler func(Exec) error) (Breakdown, error) {
	if s.sess.Switchless() {
		return s.sess.ServeSwitchless(ctx, in, out, func(th *sgx.Thread) error { return handler(th) })
	}
	return s.sess.Serve(ctx, in, out, func(th *sgx.Thread) error { return handler(th) })
}

func (s sgxSession) Close(ctx context.Context) error { return s.sess.Close(ctx) }

func (r *sgxRuntime) Do(ctx context.Context, fn func(Exec) error) error {
	return r.inst.Do(ctx, func(th *sgx.Thread) error { return fn(th) })
}

func (r *sgxRuntime) DoBatch(ctx context.Context, argBytes, retBytes int, fn func(Exec) error) error {
	if sgx.SwitchlessFrom(ctx) {
		return r.inst.DoBatchSwitchless(ctx, argBytes, retBytes, func(th *sgx.Thread) error { return fn(th) })
	}
	return r.inst.DoBatch(ctx, argBytes, retBytes, func(th *sgx.Thread) error { return fn(th) })
}

func (r *sgxRuntime) LoadDuration() time.Duration  { return r.inst.LoadDuration() }
func (r *sgxRuntime) Stats() sgx.StatsSnapshot     { return r.inst.Stats() }
func (r *sgxRuntime) AccrueUptime(d time.Duration) { r.inst.AccrueUptime(d) }
func (r *sgxRuntime) Warm() bool                   { return r.inst.Warm() }
func (r *sgxRuntime) Shutdown()                    { r.inst.Shutdown() }

// enclave exposes the underlying enclave for sealing/attestation/
// introspection demos; nil for non-SGX runtimes.
func (r *sgxRuntime) enclave() *sgx.Enclave { return r.inst.Enclave() }

// --- SEV runtime (confidential VM) ---

type sevRuntime struct {
	machine *sev.Machine
}

// newSEVRuntime launches the module inside a confidential VM.
func newSEVRuntime(ctx context.Context, env *costmodel.Env, name string, appImageBytes uint64) (Runtime, error) {
	machine, err := sev.Launch(ctx, env, sev.Config{Name: name, AppImageBytes: appImageBytes})
	if err != nil {
		return nil, err
	}
	return &sevRuntime{machine: machine}, nil
}

func (r *sevRuntime) ServeRequest(ctx context.Context, in, out int, handler func(Exec) error) (Breakdown, error) {
	return r.machine.ServeRequest(ctx, in, out, func(ex sev.Exec) error { return handler(ex) })
}

// OpenSession for SEV is a pass-through: a confidential VM pays no
// per-syscall transition tax, so there is nothing to amortize and Serve
// simply delegates to ServeRequest.
func (r *sevRuntime) OpenSession(ctx context.Context) (RuntimeSession, error) {
	return sevSession{rt: r}, nil
}

type sevSession struct {
	rt *sevRuntime
}

func (s sevSession) Serve(ctx context.Context, in, out int, handler func(Exec) error) (Breakdown, error) {
	return s.rt.ServeRequest(ctx, in, out, handler)
}

func (s sevSession) Close(context.Context) error { return nil }

func (r *sevRuntime) Do(ctx context.Context, fn func(Exec) error) error {
	return r.machine.Do(ctx, func(ex sev.Exec) error { return fn(ex) })
}

func (r *sevRuntime) DoBatch(ctx context.Context, argBytes, retBytes int, fn func(Exec) error) error {
	return r.Do(ctx, fn)
}

func (r *sevRuntime) LoadDuration() time.Duration  { return r.machine.LoadDuration() }
func (r *sevRuntime) Stats() sgx.StatsSnapshot     { return sgx.StatsSnapshot{} }
func (r *sevRuntime) AccrueUptime(d time.Duration) {}
func (r *sevRuntime) Warm() bool                   { return r.machine.Warm() }
func (r *sevRuntime) Shutdown()                    { r.machine.Stop() }

// The guest execution surface satisfies the runtime contract.
var _ Exec = sev.Exec{}

// --- native runtime (plain container) ---

// containerStartup is the modelled plain-container deployment time; the
// paper's Fig. 7 contrast is that the same image loads in well under a
// second without an enclave.
const containerStartup = 400 * time.Millisecond

// nativeWarmupCycles models the first request's lazy library loading in a
// plain container (no trusted-file verification, so far cheaper than the
// enclave's warm-up).
const nativeWarmupCycles = 2_000_000

type nativeRuntime struct {
	env      *costmodel.Env
	syscalls gramine.SyscallProfile

	mu      sync.Mutex
	running bool
	warm    bool
	secrets map[string][]byte
}

func newNativeRuntime(env *costmodel.Env) *nativeRuntime {
	return &nativeRuntime{
		env:      env,
		syscalls: gramine.DefaultSyscallProfile(),
		running:  true,
		secrets:  make(map[string][]byte),
	}
}

type nativeExec struct {
	ctx context.Context
	rt  *nativeRuntime
}

func (e nativeExec) Compute(n simclock.Cycles) { e.rt.env.Charge(e.ctx, n) }

func (e nativeExec) Touch(nBytes uint64) {
	e.rt.env.Charge(e.ctx, simclock.Cycles(nBytes)*e.rt.env.Model.CopyPerByte)
}

func (e nativeExec) StoreSecret(name string, data []byte) {
	e.rt.mu.Lock()
	e.rt.secrets[name] = append([]byte(nil), data...)
	e.rt.mu.Unlock()
}

func (e nativeExec) LoadSecret(name string) ([]byte, bool) {
	e.rt.mu.Lock()
	defer e.rt.mu.Unlock()
	d, ok := e.rt.secrets[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), d...), true
}

var _ Exec = nativeExec{}

// errStopped reports use of a stopped native runtime.
var errStopped = errors.New("paka: runtime stopped")

func (r *nativeRuntime) ServeRequest(ctx context.Context, in, out int, handler func(Exec) error) (Breakdown, error) {
	r.mu.Lock()
	if !r.running {
		r.mu.Unlock()
		return Breakdown{}, errStopped
	}
	first := !r.warm
	r.warm = true
	r.mu.Unlock()

	m := r.env.Model
	// Pin the request account so callers without one still get coherent
	// latency windows.
	acct := simclock.AccountFrom(ctx)
	ctx = simclock.WithAccount(ctx, acct)
	charge := func(n simclock.Cycles) { r.env.Charge(ctx, n) }
	syscall := func(bytes int) {
		charge(m.SyscallNative + simclock.Cycles(bytes)*m.CopyPerByte)
	}
	start := acct.Total()

	if first {
		charge(nativeWarmupCycles)
		charge(m.TLSHandshakeServer)
	}

	jig := int(r.env.JitterFor(ctx).Uint64n(3))
	for k := 0; k < r.syscalls.Pre+jig; k++ {
		syscall(32)
	}

	functional, total, err := r.requestCensus(ctx, acct, in, out, handler)

	for k := 0; k < r.syscalls.Post; k++ {
		syscall(32)
	}

	return Breakdown{
		Functional: functional,
		Total:      total,
		ServerSide: acct.Total() - start,
	}, err
}

// requestCensus charges the per-request half of the native census —
// mirroring gramine's split so the container-vs-SGX comparison stays
// apples-to-apples in keep-alive mode too.
func (r *nativeRuntime) requestCensus(ctx context.Context, acct *simclock.Account, in, out int, handler func(Exec) error) (functional, total simclock.Cycles, err error) {
	m := r.env.Model
	charge := func(n simclock.Cycles) { r.env.Charge(ctx, n) }
	syscall := func(bytes int) {
		charge(m.SyscallNative + simclock.Cycles(bytes)*m.CopyPerByte)
	}

	totalStart := acct.Total()
	for k := 0; k < r.syscalls.Read; k++ {
		syscall(in/r.syscalls.Read + 1)
	}
	charge(m.TLSRecordCost(in) + m.HTTPCost(in))

	fnStart := acct.Total()
	for k := 0; k < r.syscalls.InHandler; k++ {
		syscall(16)
	}
	err = handler(nativeExec{ctx: ctx, rt: r})
	fnEnd := acct.Total()

	charge(m.HTTPCost(out) + m.TLSRecordCost(out))
	for k := 0; k < r.syscalls.Write; k++ {
		syscall(out/r.syscalls.Write + 1)
	}
	totalEnd := acct.Total()
	return fnEnd - fnStart, totalEnd - totalStart, err
}

// OpenSession mirrors the gramine keep-alive contract natively: the
// accept machinery and TLS handshake at open, the post machinery at
// close, only the per-request census per pipelined request.
func (r *nativeRuntime) OpenSession(ctx context.Context) (RuntimeSession, error) {
	r.mu.Lock()
	if !r.running {
		r.mu.Unlock()
		return nil, errStopped
	}
	first := !r.warm
	r.warm = true
	r.mu.Unlock()

	m := r.env.Model
	ctx = simclock.WithAccount(ctx, simclock.AccountFrom(ctx))
	charge := func(n simclock.Cycles) { r.env.Charge(ctx, n) }
	if first {
		charge(nativeWarmupCycles)
	}
	for k := 0; k < r.syscalls.Pre; k++ {
		charge(m.SyscallNative + 32*m.CopyPerByte)
	}
	charge(m.TLSHandshakeServer)
	return &nativeSession{rt: r, open: true}, nil
}

type nativeSession struct {
	rt   *nativeRuntime
	mu   sync.Mutex
	open bool
}

func (s *nativeSession) Serve(ctx context.Context, in, out int, handler func(Exec) error) (Breakdown, error) {
	s.mu.Lock()
	open := s.open
	s.mu.Unlock()
	if !open {
		return Breakdown{}, errStopped
	}
	r := s.rt
	r.mu.Lock()
	if !r.running {
		r.mu.Unlock()
		return Breakdown{}, errStopped
	}
	r.mu.Unlock()

	m := r.env.Model
	acct := simclock.AccountFrom(ctx)
	ctx = simclock.WithAccount(ctx, acct)
	start := acct.Total()

	// Keep-alive readiness wake-ups, drawn from the same jitter position
	// ServeRequest uses for its Pre variation.
	jig := int(r.env.JitterFor(ctx).Uint64n(3))
	for k := 0; k < jig; k++ {
		r.env.Charge(ctx, m.SyscallNative+32*m.CopyPerByte)
	}

	functional, total, err := r.requestCensus(ctx, acct, in, out, handler)
	return Breakdown{
		Functional: functional,
		Total:      total,
		ServerSide: acct.Total() - start,
	}, err
}

func (s *nativeSession) Close(ctx context.Context) error {
	s.mu.Lock()
	if !s.open {
		s.mu.Unlock()
		return nil
	}
	s.open = false
	s.mu.Unlock()

	r := s.rt
	r.mu.Lock()
	if !r.running {
		r.mu.Unlock()
		return nil
	}
	r.mu.Unlock()
	m := r.env.Model
	for k := 0; k < r.syscalls.Post; k++ {
		r.env.Charge(ctx, m.SyscallNative+32*m.CopyPerByte)
	}
	return nil
}

func (r *nativeRuntime) Do(ctx context.Context, fn func(Exec) error) error {
	r.mu.Lock()
	if !r.running {
		r.mu.Unlock()
		return errStopped
	}
	r.mu.Unlock()
	// Pin the account so multi-step maintenance aggregates on one ledger.
	ctx = simclock.WithAccount(ctx, simclock.AccountFrom(ctx))
	return fn(nativeExec{ctx: ctx, rt: r})
}

// DoBatch natively is Do plus the IPC moving the batch in and out of the
// module process — no transition pair to save, which is exactly the
// contrast the batching experiment measures.
func (r *nativeRuntime) DoBatch(ctx context.Context, argBytes, retBytes int, fn func(Exec) error) error {
	r.mu.Lock()
	if !r.running {
		r.mu.Unlock()
		return errStopped
	}
	r.mu.Unlock()
	ctx = simclock.WithAccount(ctx, simclock.AccountFrom(ctx))
	m := r.env.Model
	r.env.Charge(ctx, m.SyscallNative+simclock.Cycles(argBytes)*m.CopyPerByte)
	err := fn(nativeExec{ctx: ctx, rt: r})
	r.env.Charge(ctx, m.SyscallNative+simclock.Cycles(retBytes)*m.CopyPerByte)
	return err
}

func (r *nativeRuntime) LoadDuration() time.Duration { return containerStartup }

func (r *nativeRuntime) Stats() sgx.StatsSnapshot { return sgx.StatsSnapshot{} }

func (r *nativeRuntime) AccrueUptime(d time.Duration) { r.env.Clock.AdvanceDuration(d) }

func (r *nativeRuntime) Warm() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.warm
}

func (r *nativeRuntime) Shutdown() {
	r.mu.Lock()
	r.running = false
	for k := range r.secrets {
		delete(r.secrets, k)
	}
	r.mu.Unlock()
}

// dump is the attacker's view of the plain container's memory: plaintext.
func (r *nativeRuntime) dump(name string) ([]byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.secrets[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), d...), true
}
