// Package chaos is a seed-deterministic fault injector for the simulated
// 5G core. It wraps SBI invokers and enclave-backed modules to inject the
// disturbances the paper identifies as the cost of shielding control-plane
// functions: latency spikes, 3GPP ProblemDetails errors, dropped replies,
// AEX storms, EPC page-pressure evictions, and whole-NF crash/restart
// (enclave destroyed, re-loaded and re-attested, reproducing the Fig. 7
// 0.96–0.99 min load penalty in virtual time).
//
// Determinism contract: every fault decision is drawn from dedicated PCG
// streams derived only from Config.Seed (root stream for sequential
// drivers, per-worker streams attached to the request context by the
// parallel driver). The decision streams are separate from the cost-jitter
// streams, so enabling chaos at rate zero leaves every cost draw — and
// therefore every figure — bit-identical to a run without the injector.
package chaos

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"shield5g/internal/costmodel"
	"shield5g/internal/hmee/sgx"
	"shield5g/internal/sbi"
	"shield5g/internal/simclock"
)

// Kind labels one injectable fault class.
type Kind int

// The fault taxonomy (see DESIGN.md "Fault model & resilience contract").
const (
	// KindLatency delays the request by a log-normal virtual spike.
	KindLatency Kind = iota
	// KindError answers with a transient ProblemDetails (429/500/503)
	// without reaching the server.
	KindError
	// KindDrop lets the server process the request but loses the reply:
	// the client burns a timeout and sees 504, while server state (e.g.
	// a consumed AUSF auth session) has already advanced.
	KindDrop
	// KindAEXStorm hammers the target enclave with asynchronous exits
	// before the request proceeds.
	KindAEXStorm
	// KindEvict pressures the target enclave's EPC, evicting resident
	// pages that must fault back in.
	KindEvict
	// KindCrash destroys and redeploys the target module (re-load +
	// re-attest), failing the request with a retryable 503.
	KindCrash
	kindCount
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case KindLatency:
		return "latency"
	case KindError:
		return "error"
	case KindDrop:
		return "drop"
	case KindAEXStorm:
		return "aex-storm"
	case KindEvict:
		return "evict"
	case KindCrash:
		return "crash"
	default:
		return "unknown"
	}
}

// Config sets the per-request injection probabilities and fault shapes.
// Each rate is the probability that one SBI request draws that fault;
// rates are cumulative and their sum must stay <= 1.
type Config struct {
	// Seed roots the decision streams. Independent from the cost seed.
	Seed uint64

	LatencyRate  float64
	ErrorRate    float64
	DropRate     float64
	AEXStormRate float64
	EvictRate    float64
	CrashRate    float64

	// LatencySpikeMedian is the median injected delay (virtual); the
	// spike is drawn log-normally with LatencySigma.
	LatencySpikeMedian time.Duration
	LatencySigma       float64
	// DropTimeout is the virtual time a client waits on a lost reply.
	DropTimeout time.Duration
	// RetryAfter is attached to injected 429/503 ProblemDetails.
	RetryAfter time.Duration
	// AEXBurst is the number of asynchronous exits per storm.
	AEXBurst uint64
	// EvictPages is the number of EPC pages reclaimed per eviction.
	EvictPages uint64

	// Services restricts injection to the named services; empty targets
	// every route.
	Services []string
}

// DefaultMix spreads a total per-request fault rate across the taxonomy in
// proportions that exercise every class, crash being the rarest (it is by
// far the most expensive to recover from).
func DefaultMix(seed uint64, totalRate float64) Config {
	return Config{
		Seed:         seed,
		LatencyRate:  totalRate * 0.30,
		ErrorRate:    totalRate * 0.30,
		DropRate:     totalRate * 0.20,
		AEXStormRate: totalRate * 0.08,
		EvictRate:    totalRate * 0.06,
		CrashRate:    totalRate * 0.06,
	}
}

// withDefaults fills zero-valued shape knobs.
func (c Config) withDefaults() Config {
	if c.LatencySpikeMedian <= 0 {
		c.LatencySpikeMedian = 5 * time.Millisecond
	}
	if c.LatencySigma <= 0 {
		c.LatencySigma = 1.0
	}
	if c.DropTimeout <= 0 {
		c.DropTimeout = 100 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 20 * time.Millisecond
	}
	if c.AEXBurst == 0 {
		c.AEXBurst = 2_000
	}
	if c.EvictPages == 0 {
		c.EvictPages = 4_096
	}
	return c
}

// TotalRate is the per-request probability of any injection.
func (c Config) TotalRate() float64 {
	return c.LatencyRate + c.ErrorRate + c.DropRate + c.AEXStormRate + c.EvictRate + c.CrashRate
}

// Injector draws fault decisions and applies them around an inner SBI
// transport. It is safe for concurrent use; parallel drivers attach one
// decision stream per worker via WorkerContext so decisions, like costs,
// are reproducible per worker regardless of scheduling.
type Injector struct {
	env  *costmodel.Env
	cfg  Config
	root *simclock.Jitter

	// armed gates injection; deploy keeps the injector disarmed while
	// the slice itself comes up.
	armed atomic.Bool

	mu       sync.RWMutex
	targets  map[string]bool
	crash    map[string]func(context.Context) error
	enclaves map[string]*sgx.Enclave

	counts [kindCount]atomic.Uint64
}

// NewInjector builds an armed injector over env.
func NewInjector(env *costmodel.Env, cfg Config) *Injector {
	cfg = cfg.withDefaults()
	inj := &Injector{
		env:      env,
		cfg:      cfg,
		root:     simclock.NewJitter(cfg.Seed),
		targets:  make(map[string]bool),
		crash:    make(map[string]func(context.Context) error),
		enclaves: make(map[string]*sgx.Enclave),
	}
	for _, s := range cfg.Services {
		inj.targets[s] = true
	}
	inj.armed.Store(true)
	return inj
}

// Config returns the injector's (default-filled) configuration.
func (inj *Injector) Config() Config { return inj.cfg }

// SetArmed enables or disables injection. Decisions are only drawn while
// armed, so disarmed sections (deployment, warm-up) consume no stream
// state and cannot shift later decisions.
func (inj *Injector) SetArmed(v bool) { inj.armed.Store(v) }

// Armed reports whether injection is active.
func (inj *Injector) Armed() bool { return inj.armed.Load() }

// Stream derives the deterministic decision stream for worker i, for the
// parallel driver (stream 0 is distinct from the root sequence).
func (inj *Injector) Stream(i uint64) *simclock.Jitter { return inj.root.Stream(i) }

// Counts reports how many faults of each kind have been injected.
func (inj *Injector) Counts() map[string]uint64 {
	out := make(map[string]uint64, kindCount)
	for k := Kind(0); k < kindCount; k++ {
		if n := inj.counts[k].Load(); n > 0 {
			out[k.String()] = n
		}
	}
	return out
}

// RegisterCrash installs the crash/restart hook for a service; the hook
// must fully recover the service (redeploy + re-attest) before returning.
func (inj *Injector) RegisterCrash(service string, restart func(context.Context) error) {
	inj.mu.Lock()
	inj.crash[service] = restart
	inj.mu.Unlock()
}

// RegisterEnclave points AEX-storm and eviction faults for a service at
// its enclave. Call again after a crash-restart: the redeployed module has
// a fresh enclave object.
func (inj *Injector) RegisterEnclave(service string, e *sgx.Enclave) {
	inj.mu.Lock()
	if e == nil {
		delete(inj.enclaves, service)
	} else {
		inj.enclaves[service] = e
	}
	inj.mu.Unlock()
}

type streamKey struct{}

// WorkerContext attaches worker i's decision stream to ctx; requests
// without one draw from the injector's root stream (the sequential path).
func (inj *Injector) WorkerContext(ctx context.Context, i uint64) context.Context {
	return context.WithValue(ctx, streamKey{}, inj.Stream(i))
}

func (inj *Injector) streamFrom(ctx context.Context) *simclock.Jitter {
	if j, ok := ctx.Value(streamKey{}).(*simclock.Jitter); ok && j != nil {
		return j
	}
	return inj.root
}

// Wrap interposes the injector on an SBI transport.
func (inj *Injector) Wrap(inner sbi.Invoker) sbi.Invoker {
	return &faultyInvoker{inj: inj, inner: inner}
}

type faultyInvoker struct {
	inj   *Injector
	inner sbi.Invoker
}

// Post implements sbi.Invoker: one uniform draw per targeted request picks
// a fault (or none) by cumulative rate, then the fault is applied.
func (f *faultyInvoker) Post(ctx context.Context, service, path string, req, resp any) error {
	inj := f.inj
	if !inj.armed.Load() || !inj.targeted(service) {
		return f.inner.Post(ctx, service, path, req, resp)
	}

	stream := inj.streamFrom(ctx)
	u := stream.Float64()
	cfg := inj.cfg
	switch {
	case u < cfg.LatencyRate:
		inj.counts[KindLatency].Add(1)
		median := simclock.FromDuration(cfg.LatencySpikeMedian, inj.env.Clock.FrequencyHz())
		inj.env.Charge(ctx, stream.LogNormal(median, cfg.LatencySigma))
		return f.inner.Post(ctx, service, path, req, resp)

	case u < cfg.LatencyRate+cfg.ErrorRate:
		inj.counts[KindError].Add(1)
		return inj.transientProblem(stream, service, path)

	case u < cfg.LatencyRate+cfg.ErrorRate+cfg.DropRate:
		inj.counts[KindDrop].Add(1)
		// The server processes the request and may commit state; only the
		// reply is lost. The client pays the wait for a reply that never
		// comes and reports a gateway timeout.
		_ = f.inner.Post(ctx, service, path, req, nil)
		inj.env.Charge(ctx, simclock.FromDuration(cfg.DropTimeout, inj.env.Clock.FrequencyHz()))
		return sbi.Problem(504, "Gateway Timeout", sbi.CauseTimeout,
			"chaos: reply from %s%s dropped", service, path)

	case u < cfg.LatencyRate+cfg.ErrorRate+cfg.DropRate+cfg.AEXStormRate:
		inj.counts[KindAEXStorm].Add(1)
		if e := inj.enclaveFor(service); e != nil {
			e.InjectAEX(ctx, cfg.AEXBurst)
		}
		return f.inner.Post(ctx, service, path, req, resp)

	case u < cfg.LatencyRate+cfg.ErrorRate+cfg.DropRate+cfg.AEXStormRate+cfg.EvictRate:
		inj.counts[KindEvict].Add(1)
		if e := inj.enclaveFor(service); e != nil {
			e.EvictPages(cfg.EvictPages)
		}
		return f.inner.Post(ctx, service, path, req, resp)

	case u < cfg.TotalRate():
		if restart := inj.crashFor(service); restart != nil {
			inj.counts[KindCrash].Add(1)
			if err := restart(ctx); err != nil {
				return sbi.Problem(500, "Internal Server Error", sbi.CauseSystem,
					"chaos: %s crashed and failed to recover: %v", service, err)
			}
			pd := sbi.Problem(503, "Service Unavailable", sbi.CauseUnreachable,
				"chaos: %s crashed; redeployed and re-attested", service)
			pd.RetryAfter = cfg.RetryAfter
			return pd
		}
		// No crash hook for this service: fall through to a clean call so
		// the decision stream still advanced exactly once.
		return f.inner.Post(ctx, service, path, req, resp)

	default:
		return f.inner.Post(ctx, service, path, req, resp)
	}
}

// transientProblem picks one of the TS 29.500 transient answers.
func (inj *Injector) transientProblem(stream *simclock.Jitter, service, path string) error {
	var pd *sbi.ProblemDetails
	switch stream.Uint64n(3) {
	case 0:
		pd = sbi.Problem(429, "Too Many Requests", sbi.CauseCongestion,
			"chaos: %s%s throttled", service, path)
		pd.RetryAfter = inj.cfg.RetryAfter
	case 1:
		pd = sbi.Problem(500, "Internal Server Error", sbi.CauseSystem,
			"chaos: %s%s internal fault", service, path)
	default:
		pd = sbi.Problem(503, "Service Unavailable", sbi.CauseUnreachable,
			"chaos: %s%s unavailable", service, path)
		pd.RetryAfter = inj.cfg.RetryAfter
	}
	return pd
}

func (inj *Injector) targeted(service string) bool {
	inj.mu.RLock()
	defer inj.mu.RUnlock()
	if len(inj.targets) == 0 {
		return true
	}
	return inj.targets[service]
}

func (inj *Injector) enclaveFor(service string) *sgx.Enclave {
	inj.mu.RLock()
	defer inj.mu.RUnlock()
	return inj.enclaves[service]
}

func (inj *Injector) crashFor(service string) func(context.Context) error {
	inj.mu.RLock()
	defer inj.mu.RUnlock()
	return inj.crash[service]
}

// Compile-time conformance.
var _ sbi.Invoker = (*faultyInvoker)(nil)
