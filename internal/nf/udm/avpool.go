package udm

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"shield5g/internal/paka"
)

// avPool is the UDM's authentication-vector precomputation pool: a
// per-SUPI FIFO ring of pre-generated HE AVs. A miss mints a whole batch
// through one boundary crossing (paka.UDMBatchFunctions), serves the
// first vector and banks the rest, so subsequent authentications for the
// SUPI skip the enclave entirely. Every pooled vector was minted with its
// own UDR-advanced SQN, and rings are FIFO, so consumption preserves
// sequence-number order (TS 33.102 §6.3).
//
// The refill is synchronous on the triggering request — deterministic
// under a fixed seed, which is what lets same-seed replays produce
// identical hit/miss counts.
type avPool struct {
	depth int // ring capacity per SUPI
	batch int // vectors minted per refill crossing

	mu    sync.Mutex
	rings map[string][]paka.UDMGenerateAVResponse

	hits        atomic.Uint64
	misses      atomic.Uint64
	refills     atomic.Uint64
	invalidated atomic.Uint64
	prewarmed   atomic.Uint64
}

// newAVPool builds a pool with the given ring depth; batch ≤0 defaults to
// depth (mint a full ring plus the vector being served per crossing).
func newAVPool(depth, batch int) *avPool {
	if batch <= 0 {
		batch = depth
	}
	if batch < 1 {
		batch = 1
	}
	return &avPool{
		depth: depth,
		batch: batch,
		rings: make(map[string][]paka.UDMGenerateAVResponse),
	}
}

// take pops the oldest pooled vector for supi, counting the hit or miss.
func (p *avPool) take(supi string) (*paka.UDMGenerateAVResponse, bool) {
	p.mu.Lock()
	ring := p.rings[supi]
	if len(ring) == 0 {
		p.mu.Unlock()
		p.misses.Add(1)
		return nil, false
	}
	av := ring[0]
	if len(ring) == 1 {
		delete(p.rings, supi)
	} else {
		p.rings[supi] = ring[1:]
	}
	p.mu.Unlock()
	p.hits.Add(1)
	return &av, true
}

// fill banks freshly minted vectors for supi, oldest SQN first, dropping
// overflow beyond the ring depth. Counts one refill.
func (p *avPool) fill(supi string, vectors []paka.UDMGenerateAVResponse) {
	p.refills.Add(1)
	if len(vectors) == 0 || p.depth == 0 {
		return
	}
	p.mu.Lock()
	ring := append(p.rings[supi], vectors...)
	if len(ring) > p.depth {
		// Keep the oldest SQNs: dropping from the tail wastes crypto but
		// never reorders the sequence numbers a UE will see.
		ring = ring[:p.depth]
	}
	p.rings[supi] = ring
	p.mu.Unlock()
}

// invalidate discards supi's pooled vectors (SQN resynchronisation
// rebased the counter; pre-rebase vectors would fail the UE's range
// check).
func (p *avPool) invalidate(supi string) {
	p.mu.Lock()
	n := len(p.rings[supi])
	delete(p.rings, supi)
	p.mu.Unlock()
	p.invalidated.Add(uint64(n))
}

// invalidateAll discards every pooled vector — the enclave crashed or
// restarted, and vectors minted before the crash must never be served
// afterwards.
func (p *avPool) invalidateAll() {
	p.mu.Lock()
	var n int
	for supi, ring := range p.rings {
		n += len(ring)
		delete(p.rings, supi)
	}
	p.mu.Unlock()
	p.invalidated.Add(uint64(n))
}

// pooled reports the current number of banked vectors.
func (p *avPool) pooled() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int
	for _, ring := range p.rings {
		n += len(ring)
	}
	return n
}

// AVPoolStats is a snapshot of the pool counters.
type AVPoolStats struct {
	// Hits counts authentications served from the pool.
	Hits uint64
	// Misses counts authentications that triggered a synchronous refill.
	Misses uint64
	// Refills counts batch mint operations (boundary crossings).
	Refills uint64
	// Invalidated counts vectors discarded by resync or crash-restart.
	Invalidated uint64
	// Prewarmed counts vectors banked ahead of traffic by PrewarmAVPool:
	// cold-start fills that would otherwise surface as one first-contact
	// miss per SUPI.
	Prewarmed uint64
	// Pooled is the number of vectors currently banked.
	Pooled int
}

// AVPoolStats snapshots the pool counters; zero when the pool is
// disabled.
func (u *UDM) AVPoolStats() AVPoolStats {
	if u.pool == nil {
		return AVPoolStats{}
	}
	return AVPoolStats{
		Hits:        u.pool.hits.Load(),
		Misses:      u.pool.misses.Load(),
		Refills:     u.pool.refills.Load(),
		Invalidated: u.pool.invalidated.Load(),
		Prewarmed:   u.pool.prewarmed.Load(),
		Pooled:      u.pool.pooled(),
	}
}

// PrewarmAVPool fills each given SUPI's ring to the pool depth before
// traffic arrives, eliminating the one-synchronous-refill-per-SUPI cold
// start (201 misses for 200 UEs in the PR-5 bench). Each SUPI costs one
// UDR batch round trip and one boundary crossing; counters record the
// banked vectors under Prewarmed, not as misses. The subscribers must
// already be provisioned in the UDR and the execution environment. No-op
// error when the pool is disabled.
func (u *UDM) PrewarmAVPool(ctx context.Context, supis []string, snn string) error {
	if u.pool == nil {
		return fmt.Errorf("udm: AV pool disabled, nothing to prewarm")
	}
	for _, supi := range supis {
		items, err := u.avRequestBatch(ctx, supi, snn, u.pool.depth)
		if err != nil {
			return fmt.Errorf("udm: prewarm %s: %w", supi, err)
		}
		vectors, err := u.generateBatch(ctx, items)
		if err != nil {
			return fmt.Errorf("udm: prewarm %s: %w", supi, err)
		}
		u.pool.fill(supi, vectors)
		u.pool.prewarmed.Add(uint64(len(vectors)))
	}
	return nil
}

// InvalidateAVPool discards every pooled vector. Deploy calls it when the
// eUDM module crash-restarts: the pool must refill from the fresh enclave
// rather than serve vectors minted before the crash.
func (u *UDM) InvalidateAVPool() {
	if u.pool != nil {
		u.pool.invalidateAll()
	}
}
