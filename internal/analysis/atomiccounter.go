package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicCounter enforces the concurrency discipline on counters: the
// gNB/AMF/AUSF statistics, the enclave transition censuses and the
// chaos per-kind counts are read by reporting code while workers mutate
// them, so a single plain load or store is a data race that -race only
// catches when the schedule cooperates. Three rules:
//
//  1. A variable or field accessed through a sync/atomic free function
//     anywhere in a package must be accessed that way everywhere.
//  2. Methods on structs holding typed atomic.* values must use
//     pointer receivers, and range statements must not copy such
//     structs by value (a copy tears concurrent updates).
//  3. A field marked //shieldlint:atomic must actually have a
//     sync/atomic type — documentation that drifts from the type is
//     how the invariant erodes.
var AtomicCounter = &Analyzer{
	Name: "atomiccounter",
	Doc:  "atomic counters must never be touched with plain loads/stores",
	Run:  runAtomicCounter,
}

func runAtomicCounter(pass *Pass) error {
	info := pass.Pkg.Info

	// Pass 1: find every variable whose address is taken by a
	// sync/atomic call, remembering the operand nodes so pass 2 can
	// tell sanctioned accesses from plain ones. Composite-literal keys
	// resolve to field objects too, but name a field rather than read
	// it, so they are collected as exempt.
	atomicVars := make(map[*types.Var]bool)
	sanctioned := make(map[ast.Node]bool)
	literalKeys := make(map[ast.Node]bool)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CompositeLit:
				for _, elt := range x.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						literalKeys[kv.Key] = true
					}
				}
			case *ast.CallExpr:
				fn := calleeOf(info, x)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true // typed atomic.* methods are always safe
				}
				if len(x.Args) == 0 {
					return true
				}
				un, ok := ast.Unparen(x.Args[0]).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					return true
				}
				if v := baseVar(info, un.X); v != nil {
					atomicVars[v] = true
					markSanctioned(un.X, sanctioned)
				}
			}
			return true
		})
	}

	// Pass 2: flag plain accesses to those variables, misused markers,
	// and by-value copies of typed-atomic-bearing structs.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if sanctioned[x] || literalKeys[x] {
					return true
				}
				if v, ok := info.Uses[x.Sel].(*types.Var); ok && atomicVars[v] {
					pass.Reportf(x.Pos(),
						"%s is accessed with sync/atomic elsewhere in this package; this plain access is a data race — use atomic loads/stores (or migrate the field to a typed atomic.*)",
						v.Name())
				}
			case *ast.Ident:
				if sanctioned[x] || literalKeys[x] {
					return true
				}
				if v, ok := info.Uses[x].(*types.Var); ok && atomicVars[v] && !v.IsField() {
					pass.Reportf(x.Pos(),
						"%s is accessed with sync/atomic elsewhere in this package; this plain access is a data race — use atomic loads/stores (or migrate the variable to a typed atomic.*)",
						v.Name())
				}
			case *ast.StructType:
				checkAtomicMarkers(pass, info, x)
			case *ast.FuncDecl:
				checkValueReceiver(pass, info, x)
			case *ast.RangeStmt:
				checkRangeCopy(pass, info, x)
			}
			return true
		})
	}
	return nil
}

// markSanctioned records the selector/ident chain of an &x.f operand of
// an atomic call so pass 2 skips it.
func markSanctioned(e ast.Expr, sanctioned map[ast.Node]bool) {
	for {
		sanctioned[e] = true
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			sanctioned[x.Sel] = true
			return
		default:
			return
		}
	}
}

func checkAtomicMarkers(pass *Pass, info *types.Info, st *ast.StructType) {
	for _, field := range st.Fields.List {
		markedAtomic := false
		for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
			if cg == nil {
				continue
			}
			for _, c := range cg.List {
				if strings.Contains(c.Text, "shieldlint:atomic") {
					markedAtomic = true
				}
			}
		}
		if !markedAtomic || len(field.Names) == 0 {
			continue
		}
		v, ok := info.Defs[field.Names[0]].(*types.Var)
		if !ok {
			continue
		}
		if !isAtomicType(v.Type()) {
			pass.Reportf(field.Pos(),
				"field %s is marked //shieldlint:atomic but has type %s; declare it as a sync/atomic typed value (atomic.Uint64, atomic.Int32, ...)",
				v.Name(), v.Type().String())
		}
	}
}

func checkValueReceiver(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return
	}
	recv := fd.Recv.List[0]
	t := info.TypeOf(recv.Type)
	if t == nil {
		return
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return
	}
	if containsAtomic(t, nil, 0) {
		pass.Reportf(recv.Pos(),
			"method %s has a value receiver of type %s, which contains sync/atomic values; the copy tears concurrent updates — use a pointer receiver",
			fd.Name.Name, t.String())
	}
}

func checkRangeCopy(pass *Pass, info *types.Info, rs *ast.RangeStmt) {
	if rs.Value == nil {
		return
	}
	if t := info.TypeOf(rs.Value); t != nil && containsAtomic(t, nil, 0) {
		pass.Reportf(rs.Value.Pos(),
			"range copies values of type %s, which contains sync/atomic values; iterate by index instead",
			t.String())
	}
}

func isAtomicType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// containsAtomic reports whether a value of type t embeds sync/atomic
// state directly (not behind a pointer, slice or map — those share the
// state rather than copy it).
func containsAtomic(t types.Type, seen map[types.Type]bool, depth int) bool {
	if depth > 6 || t == nil {
		return false
	}
	if isAtomicType(t) {
		return true
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Array:
		return containsAtomic(u.Elem(), seen, depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsAtomic(u.Field(i).Type(), seen, depth+1) {
				return true
			}
		}
	}
	return false
}
