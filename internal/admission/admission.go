// Package admission implements the priority admission controller that sits
// ahead of the shielded P-AKA enclave. A signaling storm must be cut down
// to bounded, prioritized goodput before any request reaches the expensive
// enclave boundary (TCS slots, AV pool): the AMF consults this controller
// on InitialUEMessage, strictly before the AUSF/P-AKA authentication call.
//
// The design follows the ROADMAP's TS 29.500 overload-control item with two
// hard invariants:
//
//   - Admission never enters the enclave. The decision is a local token
//     bucket lookup keyed by (source gNB, PLMN) — no SBI call, no
//     synchronous coordination step, no shared lock beyond the map mutex.
//   - Buckets refill on virtual time only. The refill axis is the request's
//     virtual arrival timestamp (simclock.WithArrival) when stamped, the
//     shared virtual clock otherwise — never the wall clock, which the
//     shieldlint determinism analyzer enforces.
//
// Three priority classes are recognised, most- to least-privileged:
// emergency registrations are always admitted (their configured rate is
// zero, meaning "no bucket"), re-registrations (GUTI-based re-attach after
// a mass disconnect) drain a generous bucket, and fresh SUCI attaches drain
// a tight one. Under 10x overload the storm therefore degrades to bounded
// queueing for the re-attach wave while emergency traffic stays untouched.
package admission

import (
	"context"
	"sync"
	"time"

	"shield5g/internal/sbi"
	"shield5g/internal/simclock"
)

type sourceKey struct{}

// WithSource stamps ctx with the originating gNB's identity; the AMF
// combines it with the serving PLMN to key the per-source token buckets.
func WithSource(ctx context.Context, source string) context.Context {
	if existing, ok := ctx.Value(sourceKey{}).(string); ok && existing == source {
		return ctx
	}
	return context.WithValue(ctx, sourceKey{}, source)
}

// SourceFrom extracts the gNB source identity ("" when unstamped).
func SourceFrom(ctx context.Context) string {
	s, _ := ctx.Value(sourceKey{}).(string)
	return s
}

// Config tunes the controller. Rates are per-class token refill rates in
// requests per second of virtual time; Bursts are the bucket depths. A rate
// of zero means that class is never limited (used for emergency).
type Config struct {
	// Clock supplies the virtual-time fallback axis for unstamped
	// requests and the frequency for rate conversion. Required.
	Clock *simclock.Clock
	// Rates[class] is the sustained admission rate, requests/second.
	Rates [3]float64
	// Bursts[class] is the bucket depth, in requests (min 1 when the
	// class is limited).
	Bursts [3]float64
}

// DefaultConfig returns the storm-survival profile: emergency unlimited,
// re-attach generous, fresh attach tight. The rates are sized against the
// modelled UDM bottleneck (~650 registrations/second of virtual time at
// the default service cost): a 1x storm mix (35% fresh, 60% re-attach)
// passes untouched, while 10x overload is cut down in the buckets before
// any of it reaches the enclave.
func DefaultConfig(clock *simclock.Clock) Config {
	cfg := Config{Clock: clock}
	cfg.Rates[sbi.PriorityFresh] = 300
	cfg.Bursts[sbi.PriorityFresh] = 12
	cfg.Rates[sbi.PriorityReattach] = 550
	cfg.Bursts[sbi.PriorityReattach] = 24
	cfg.Rates[sbi.PriorityEmergency] = 0 // never limited
	return cfg
}

// Stats is a snapshot of the controller's per-class counters.
type Stats struct {
	Admitted [3]uint64
	Dropped  [3]uint64
	// Sources is the number of distinct (gNB, PLMN) keys seen.
	Sources int
}

// TotalDropped sums drops across classes.
func (s Stats) TotalDropped() uint64 {
	return s.Dropped[0] + s.Dropped[1] + s.Dropped[2]
}

// bucket is one token bucket on the virtual arrival axis.
type bucket struct {
	tokens float64
	last   simclock.Cycles
}

// sourceBuckets holds one bucket per limited class for one (gNB, PLMN) key.
type sourceBuckets struct {
	class [3]bucket
}

// Controller is the per-AMF admission controller. It is safe for
// concurrent use; the hot path takes one mutex, touches one map entry and
// does arithmetic — nothing else.
type Controller struct {
	cfg Config

	mu      sync.Mutex
	armed   bool
	sources map[string]*sourceBuckets

	admitted [3]uint64
	dropped  [3]uint64
}

// NewController builds a disarmed controller; Arm opens the storm window.
func NewController(cfg Config) *Controller {
	for c := range cfg.Bursts {
		if cfg.Rates[c] > 0 && cfg.Bursts[c] < 1 {
			cfg.Bursts[c] = 1
		}
	}
	return &Controller{cfg: cfg, sources: make(map[string]*sourceBuckets)}
}

// SetArmed opens or closes the admission window. Disarmed (the default and
// the steady state outside storm experiments), Admit is a constant-time
// pass-through and adds no overhead to the registration hot path.
func (c *Controller) SetArmed(v bool) {
	c.mu.Lock()
	c.armed = v
	if !v {
		// Reset buckets so consecutive storm windows start identically.
		c.sources = make(map[string]*sourceBuckets)
	}
	c.mu.Unlock()
}

// Armed reports whether the admission window is open.
func (c *Controller) Armed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.armed
}

// Admit decides one request from the given source key (gNB id + PLMN) at
// its priority class. It returns nil to admit, or a 503 OVERLOAD
// ProblemDetails carrying the bucket's refill estimate as Retry-After. The
// refill axis is the request's virtual arrival stamp when present, the
// shared clock otherwise; time never comes from the wall.
func (c *Controller) Admit(ctx context.Context, source string, class sbi.Priority) error {
	if class < 0 || class >= 3 {
		class = sbi.PriorityFresh
	}
	rate := c.cfg.Rates[class]

	c.mu.Lock()
	if !c.armed || rate <= 0 {
		if c.armed {
			c.admitted[class]++
		}
		c.mu.Unlock()
		return nil
	}

	// Refill strictly on the arrival axis when the request is stamped: the
	// shared clock accrues every request's queue and backoff charges, so
	// under overload it races far ahead of the arrival process and would
	// refill buckets that the offered load should be draining. Unstamped
	// (closed-loop) requests fall back to the clock.
	now, stamped := simclock.ArrivalFrom(ctx)
	if !stamped {
		now = c.cfg.Clock.Elapsed()
	}

	sb, ok := c.sources[source]
	if !ok {
		sb = &sourceBuckets{}
		for cl := range sb.class {
			sb.class[cl] = bucket{tokens: c.cfg.Bursts[cl], last: now}
		}
		c.sources[source] = sb
	}

	freq := float64(c.cfg.Clock.FrequencyHz())
	b := &sb.class[class]
	if now > b.last {
		b.tokens += float64(now-b.last) / freq * rate
		if b.tokens > c.cfg.Bursts[class] {
			b.tokens = c.cfg.Bursts[class]
		}
	}
	b.last = now

	if b.tokens >= 1 {
		b.tokens--
		c.admitted[class]++
		c.mu.Unlock()
		return nil
	}

	// Refill estimate: virtual time until one whole token accrues.
	retryAfter := time.Duration((1 - b.tokens) / rate * float64(time.Second))
	c.dropped[class]++
	c.mu.Unlock()

	pd := sbi.Problem(503, "Service Unavailable", sbi.CauseOverload,
		"admission: %s-class registration from %s dropped, bucket empty", class, source)
	pd.RetryAfter = retryAfter
	return pd
}

// Stats snapshots the per-class counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Admitted: c.admitted, Dropped: c.dropped, Sources: len(c.sources)}
}
