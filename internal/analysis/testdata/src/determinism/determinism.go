// Package determinism is a shieldlint fixture: every flagged line
// carries a // want comment the harness matches against the analyzer's
// output.
package determinism

import (
	"math/rand"
	randv2 "math/rand/v2"
	"runtime"
	"sync/atomic"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func sleepy() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the wall clock"
}

func ticker() *time.Ticker {
	return time.NewTicker(time.Second) // want "time.NewTicker reads the wall clock"
}

func globalRand() int {
	return rand.Int() // want "math/rand.Int draws from the global math/rand source"
}

func globalRandV2() int {
	return randv2.IntN(10) // want "math/rand/v2.IntN draws from the global math/rand source"
}

// Seeded constructors and generator methods never touch shared state.
func seededOK() int {
	r := rand.New(rand.NewSource(42))
	return r.Int()
}

// Pure conversions and Duration arithmetic stay allowed.
func arithmeticOK(d time.Duration) time.Duration {
	return d.Round(time.Millisecond) + 5*time.Second
}

func annotated() time.Time {
	//shieldlint:wallclock fixture exercises the escape hatch
	return time.Now() // want:suppressed "time.Now reads the wall clock"
}

// A token bucket refilled off the wall clock replays differently on
// every run: refill instants must come from the virtual clock (the
// simclock arrival axis in the admission controller), never time.Now.
type wallBucket struct {
	tokens float64
	last   time.Time
}

func (b *wallBucket) refill(rate float64) {
	now := time.Now() // want "time.Now reads the wall clock"
	b.tokens += now.Sub(b.last).Seconds() * rate
	b.last = now
}

func (b *wallBucket) admit(rate float64) bool {
	b.refill(rate)
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

type clockHolder struct {
	now func() time.Time
}

// Value uses (not just calls) are flagged too: storing time.Now as a
// default clock smuggles the wall clock into simulated paths.
func holder() clockHolder {
	return clockHolder{now: time.Now} // want "time.Now reads the wall clock"
}

// Spin discipline: unbounded loops in //shieldlint:hotpath functions
// must carry a scheduling point. A yield-free spin livelocks
// single-proc replays and burns wall time the virtual clock never
// accounts.

//shieldlint:hotpath
func spinNoYield(flag *atomic.Bool) {
	for { // want "unbounded for-loop spins without a scheduling point"
		if flag.Load() {
			return
		}
	}
}

//shieldlint:hotpath
func spinGosched(flag *atomic.Bool) {
	for {
		if flag.Load() {
			return
		}
		runtime.Gosched()
	}
}

//shieldlint:hotpath
func spinSelect(c, stop chan struct{}) {
	for {
		select {
		case <-c:
			return
		case <-stop:
			return
		}
	}
}

//shieldlint:hotpath
func spinReceive(c chan struct{}) {
	for {
		<-c
		return
	}
}

// A bounded (conditioned) loop is not a spin loop, however hot.
//
//shieldlint:hotpath
func boundedOK(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// A Gosched inside a nested function literal does not discharge the
// enclosing loop: nothing in the loop necessarily runs it.
//
//shieldlint:hotpath
func spinLiteralYield(flag *atomic.Bool) {
	yield := func() { runtime.Gosched() }
	_ = yield
	for { // want "unbounded for-loop spins without a scheduling point"
		if flag.Load() {
			return
		}
		_ = func() { runtime.Gosched() }
	}
}

// An inner loop's yield covers the outer retry: control re-enters the
// scheduler on every pass through the nest.
//
//shieldlint:hotpath
func spinNestedYield(flag *atomic.Bool) {
	for {
		if flag.Load() {
			return
		}
		for i := 0; i < 4; i++ {
			runtime.Gosched()
		}
	}
}

// Unmarked functions may structure their loops however they like; the
// spin rule is scoped to the declared hot path.
func spinUnmarked(flag *atomic.Bool) {
	for {
		if flag.Load() {
			return
		}
	}
}

// The escape hatch names the analyzer, same as every other rule.
//
//shieldlint:hotpath
func spinAnnotated(flag *atomic.Bool) {
	//shieldlint:ignore determinism fixture exercises the escape hatch
	for { // want:suppressed "unbounded for-loop spins without a scheduling point"
		if flag.Load() {
			return
		}
	}
}
