package shield5g_test

import (
	"context"
	"testing"

	"shield5g"
	"shield5g/internal/hmee/sgx"
)

// moduleWindow is one module's transition census over a measured mass
// registration, normalized per registration.
type moduleWindow struct {
	EEnterPerReg float64
	EExitPerReg  float64
	AEXPerReg    float64
	OCallsPerReg float64
}

// switchlessWindow runs a steady-state batch-8 binary-SBI mass
// registration (100 UEs, warm chain, provisioning outside the window)
// and returns each module's per-registration transition breakdown. The
// AV pool stays off so all three modules serve inside the window —
// with a prewarmed pool eUDM is idle in-window (its DoBatch refills
// all land during prewarm) and its census would measure nothing.
func switchlessWindow(t *testing.T, switchless bool) map[shield5g.ModuleKind]moduleWindow {
	t.Helper()
	ctx := context.Background()
	tb, err := shield5g.NewTestbed(ctx, shield5g.SliceConfig{
		Isolation:  shield5g.SGX,
		Seed:       1,
		BinarySBI:  true,
		Switchless: switchless,
	})
	if err != nil {
		t.Fatalf("NewTestbed: %v", err)
	}
	defer tb.Close()

	warm, err := tb.AddSubscriber(ctx, benchKey, nil)
	if err != nil {
		t.Fatalf("AddSubscriber(warm): %v", err)
	}
	if _, err := tb.Register(ctx, warm); err != nil {
		t.Fatalf("warm Register: %v", err)
	}

	const n = 100
	devices := make([]*shield5g.UE, n)
	for i := range devices {
		sub, err := tb.AddSubscriber(ctx, benchKey, nil)
		if err != nil {
			t.Fatalf("AddSubscriber(%d): %v", i, err)
		}
		devices[i] = sub.UE
	}

	before := make(map[shield5g.ModuleKind]sgx.StatsSnapshot, len(tb.Slice.Modules))
	for kind, m := range tb.Slice.Modules {
		before[kind] = m.Stats()
	}
	res, err := tb.Slice.GNB.RegisterManyWith(ctx, shield5g.MassOptions{
		N:          n,
		NewUE:      func(i int) (*shield5g.UE, error) { return devices[i], nil },
		BatchSize:  8,
		Switchless: switchless,
	})
	if err != nil {
		t.Fatalf("RegisterManyWith: %v", err)
	}
	if res.Failed > 0 {
		t.Fatalf("%d of %d registrations failed", res.Failed, n)
	}

	windows := make(map[shield5g.ModuleKind]moduleWindow, len(tb.Slice.Modules))
	for kind, m := range tb.Slice.Modules {
		d := m.Stats().Sub(before[kind])
		windows[kind] = moduleWindow{
			EEnterPerReg: float64(d.EENTER) / n,
			EExitPerReg:  float64(d.EEXIT) / n,
			AEXPerReg:    float64(d.AEX) / n,
			OCallsPerReg: float64(d.OCALLs) / n,
		}
	}
	return windows
}

// TestSwitchlessChaosCrashRestartDrainsRing crosses the switchless ring
// with the fault injector's crash class: mid-run enclave crash-restarts
// (which close, drain, and rebuild the module's ring) must not lose or
// double-complete any submission. Every registration converges within
// the retry budget, the redeployed modules keep serving through fresh
// rings, and each live ring's census balances exactly
// (Submitted == Completed + Drained).
func TestSwitchlessChaosCrashRestartDrainsRing(t *testing.T) {
	ctx := context.Background()
	mix := shield5g.ChaosConfig{Seed: 3, CrashRate: 0.05}
	tb, err := shield5g.NewTestbed(ctx, shield5g.SliceConfig{
		Isolation:  shield5g.SGX,
		Seed:       3,
		BinarySBI:  true,
		Switchless: true,
		Chaos:      &mix,
	})
	if err != nil {
		t.Fatalf("NewTestbed: %v", err)
	}
	defer tb.Close()

	const n = 60
	devices := make([]*shield5g.UE, n)
	for i := range devices {
		sub, err := tb.AddSubscriber(ctx, benchKey, nil)
		if err != nil {
			t.Fatalf("AddSubscriber(%d): %v", i, err)
		}
		devices[i] = sub.UE
	}
	res, err := tb.Slice.GNB.RegisterManyWith(ctx, shield5g.MassOptions{
		N:           n,
		NewUE:       func(i int) (*shield5g.UE, error) { return devices[i], nil },
		BatchSize:   8,
		Switchless:  true,
		MaxAttempts: 5,
	})
	if err != nil {
		t.Fatalf("RegisterManyWith: %v", err)
	}
	if res.Failed > 0 {
		t.Fatalf("%d of %d registrations failed under crash chaos", res.Failed, n)
	}
	if crashes := tb.Slice.Chaos.Counts()["crash"]; crashes == 0 {
		t.Fatal("the seed drew no crashes; the test exercised nothing")
	}
	for kind, m := range tb.Slice.Modules {
		st := m.RingStats()
		if st.Submitted == 0 {
			t.Errorf("%s: ring served nothing after crash-restart", kind)
		}
		if st.Submitted != st.Completed+st.Drained {
			t.Errorf("%s: ring census imbalanced: submitted=%d completed=%d drained=%d",
				kind, st.Submitted, st.Completed, st.Drained)
		}
	}

	// The slice keeps working after the last redeploy.
	sub, err := tb.AddSubscriber(ctx, benchKey, nil)
	if err != nil {
		t.Fatalf("AddSubscriber(post): %v", err)
	}
	if _, err := tb.Register(shield5g.WithSwitchless(ctx), sub); err != nil {
		t.Fatalf("post-chaos Register: %v", err)
	}
}

// TestSwitchlessPerModuleTransitions pins the per-module transition
// profile of the switchless ring against the classic ECALL path on the
// same seed and workload.
//
// Assertions, per module:
//   - EENTER and EEXIT per registration drop by >= 85% when the ring is
//     on (empirically ~99%: eAUSF 19.20 -> 0.26, eUDM 19.13 -> 0.14,
//     eAMF 18.96 -> 0.13).
//   - AEX per registration is bit-identical across modes: asynchronous
//     exits come from the platform's deterministic interrupt schedule,
//     not from how requests cross the boundary, so the ring must not
//     perturb them.
//   - OCALLs per registration are bit-identical across modes: the ring
//     eliminates the EENTER/EEXIT cycle of the call itself, but every
//     service the enclave asks of the host is still an OCALL even when
//     its handoff is exitless.
//
// In-window ordering: eAUSF pays the most transitions in both modes
// (it fields DeriveSE per registration plus the resync round trips),
// with eUDM and eAMF close behind. This differs from the module-
// lifetime view where eUDM dominates via AV-batch minting — batch-8
// keep-alive sessions amortize entry jigs enough that the per-window
// spread between modules is small, and prewarm moves eUDM's minting
// out of any steady-state window entirely.
func TestSwitchlessPerModuleTransitions(t *testing.T) {
	classic := switchlessWindow(t, false)
	ring := switchlessWindow(t, true)

	kinds := []shield5g.ModuleKind{shield5g.EUDM, shield5g.EAUSF, shield5g.EAMF}
	for _, kind := range kinds {
		c, ok := classic[kind]
		if !ok {
			t.Fatalf("classic run has no %s module", kind)
		}
		r, ok := ring[kind]
		if !ok {
			t.Fatalf("switchless run has no %s module", kind)
		}
		t.Logf("%s: classic EENTER/reg=%.3f AEX/reg=%.3f OCALLs/reg=%.3f | switchless EENTER/reg=%.3f AEX/reg=%.3f OCALLs/reg=%.3f",
			kind, c.EEnterPerReg, c.AEXPerReg, c.OCallsPerReg,
			r.EEnterPerReg, r.AEXPerReg, r.OCallsPerReg)

		if c.EEnterPerReg < 10 {
			t.Errorf("%s: classic path shows only %.3f EENTER/reg; the window is not exercising the module", kind, c.EEnterPerReg)
		}
		if want := c.EEnterPerReg * 0.15; r.EEnterPerReg > want {
			t.Errorf("%s: switchless EENTER/reg = %.3f, want <= %.3f (>= 85%% drop from classic %.3f)",
				kind, r.EEnterPerReg, want, c.EEnterPerReg)
		}
		if want := c.EExitPerReg * 0.15; r.EExitPerReg > want {
			t.Errorf("%s: switchless EEXIT/reg = %.3f, want <= %.3f (>= 85%% drop from classic %.3f)",
				kind, r.EExitPerReg, want, c.EExitPerReg)
		}
		if r.AEXPerReg != c.AEXPerReg {
			t.Errorf("%s: AEX/reg changed with the ring (classic %.3f, switchless %.3f); AEX must be mode-independent",
				kind, c.AEXPerReg, r.AEXPerReg)
		}
		if r.OCallsPerReg != c.OCallsPerReg {
			t.Errorf("%s: OCALLs/reg changed with the ring (classic %.3f, switchless %.3f); exitless handoff must still count every OCALL",
				kind, c.OCallsPerReg, r.OCallsPerReg)
		}
	}

	// eAUSF carries the heaviest in-window transition load in both modes.
	for name, w := range map[string]map[shield5g.ModuleKind]moduleWindow{"classic": classic, "switchless": ring} {
		ausf := w[shield5g.EAUSF].EEnterPerReg
		for _, kind := range kinds {
			if kind == shield5g.EAUSF {
				continue
			}
			if got := w[kind].EEnterPerReg; got > ausf {
				t.Errorf("%s: %s EENTER/reg (%.3f) exceeds eAUSF's (%.3f); expected eAUSF to lead the in-window census",
					name, kind, got, ausf)
			}
		}
	}
}
