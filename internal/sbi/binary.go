package sbi

// Negotiated binary SBI fast path. Endpoints registered through HandleDual
// accept both the JSON bodies the seed transport speaks and the
// length-prefixed binary frames of internal/sbi/codec; a client with the
// binary codec enabled snapshots a peer's binary-capable paths when it
// first connects (the keep-alive "session open") and switches those paths
// to frames from the second request on. First contact, binary-incapable
// peers, and the real HTTP transport all stay on JSON, and a stale
// negotiation — the peer restarted without its binary endpoints — is
// healed by a one-shot downgrade retry when the server answers 415.
//
// Frames ride the exact MarshalBody/ReleaseBody single-owner contract the
// JSON bodies use: the encoder appends straight into a pooled body buffer,
// the handler decodes zero-copy views out of the loaned request, and the
// client compacts whatever it keeps before the response buffer returns to
// the pool. See internal/sbi/codec for the ownership rules.

import (
	"context"
	"fmt"
	"sync"

	"shield5g/internal/sbi/codec"
)

// HandleDual registers h for path and advertises the path as
// binary-capable. h must accept both body formats — use BinHandler.
func (s *Server) HandleDual(path string, h HandlerFunc) {
	s.mu.Lock()
	s.handlers[path] = h
	s.binPaths[path] = true
	s.mu.Unlock()
}

// binaryPath reports whether path accepts binary frames.
func (s *Server) binaryPath(path string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.binPaths[path]
}

// binaryPaths snapshots the binary-capable paths for client negotiation.
func (s *Server) binaryPaths() map[string]bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.binPaths) == 0 {
		return nil
	}
	out := make(map[string]bool, len(s.binPaths))
	for p := range s.binPaths {
		out[p] = true
	}
	return out
}

// EnableBinary opts the client into binary frame negotiation. Off by
// default: the wire format only changes when the deployment asks for it.
func (c *Client) EnableBinary() {
	c.mu.Lock()
	c.binary = true
	c.mu.Unlock()
}

// MarshalBinary encodes m as one binary frame in a pooled body buffer.
// The returned slice follows the MarshalBody ownership contract.
//
//shieldlint:hotpath
func MarshalBinary(m codec.Marshaler) ([]byte, error) {
	buf := codec.AppendHeader(getBuf())
	buf = m.AppendBinary(buf)
	out, err := codec.FinishFrame(buf)
	if err != nil {
		ReleaseBody(buf)
		return nil, err
	}
	return out, nil
}

// readerPool recycles frame readers across requests.
var readerPool = sync.Pool{New: func() any { return new(codec.Reader) }}

// decodeFrame decodes one frame payload into v, verifying the payload was
// consumed exactly.
//
//shieldlint:hotpath
func decodeFrame(body []byte, v codec.Unmarshaler) error {
	payload, err := codec.Payload(body)
	if err != nil {
		return err
	}
	r := readerPool.Get().(*codec.Reader)
	r.Reset(payload)
	if err = v.DecodeBinary(r); err == nil {
		err = r.Done()
	}
	r.Reset(nil)
	readerPool.Put(r)
	return err
}

// binaryDecodable reports whether resp can receive a binary response (nil
// discards the body, so any format is fine).
func binaryDecodable(resp any) bool {
	if resp == nil {
		return true
	}
	_, ok := resp.(codec.Unmarshaler)
	return ok
}

// decodeResponse decodes a response body in whichever format the server
// chose: a frame for negotiated binary exchanges, JSON otherwise.
//
//shieldlint:hotpath
func decodeResponse(out []byte, resp any) error {
	if !codec.IsFrame(out) {
		return UnmarshalBody(out, resp)
	}
	um, ok := resp.(codec.Unmarshaler)
	if !ok {
		return fmt.Errorf("binary frame response into %T, which has no binary codec", resp)
	}
	return decodeFrame(out, um)
}

// DecodeBody decodes a request body in whichever format it arrived:
// binary frames through v's codec.Unmarshaler, anything else through the
// pooled JSON path. For raw HandlerFuncs that bypass BinHandler.
//
//shieldlint:hotpath
func DecodeBody(body []byte, v any) error {
	if !codec.IsFrame(body) {
		return UnmarshalBody(body, v)
	}
	um, ok := v.(codec.Unmarshaler)
	if !ok {
		return fmt.Errorf("binary frame into %T, which has no binary codec", v)
	}
	return decodeFrame(body, um)
}

// MarshalBodyLike encodes v in the format of the request body it answers:
// a frame when the request was a frame (and v supports it), JSON
// otherwise. For raw HandlerFuncs that bypass BinHandler.
//
//shieldlint:hotpath
func MarshalBodyLike(reqBody []byte, v any) ([]byte, error) {
	if codec.IsFrame(reqBody) {
		if bm, ok := v.(codec.Marshaler); ok {
			return MarshalBinary(bm)
		}
	}
	return MarshalBody(v)
}

// BinHandler adapts a typed request/response function into a dual-format
// HandlerFunc: binary frames decode through the type's codec.Unmarshaler
// and answer with a frame, anything else takes the exact JSONHandler path.
// Register the result with HandleDual so the path is advertised.
//
// On the binary path the request struct itself is pooled and its byte
// fields are zero-copy views into the loaned body (the HandlerFunc
// contract): fn gets the struct for the duration of the call only, must
// copy anything it retains, and must not return the request as its
// response — the struct is zeroed and recycled as soon as fn returns.
func BinHandler[Req, Resp any](fn func(ctx context.Context, req *Req) (*Resp, error)) HandlerFunc {
	// reqPool recycles the decoded request struct across binary-path
	// calls. Entries are zeroed before going back so a partial decode
	// from one request can never leak into the next.
	reqPool := sync.Pool{New: func() any { return new(Req) }}
	putReq := func(req *Req) {
		var zero Req
		*req = zero
		reqPool.Put(req)
	}
	//shieldlint:hotpath
	return func(ctx context.Context, body []byte) ([]byte, error) {
		if !codec.IsFrame(body) {
			// JSON interop path, byte-identical to JSONHandler.
			var req Req
			if len(body) > 0 {
				if err := UnmarshalBody(body, &req); err != nil {
					return nil, Problem(400, "Bad Request", "MANDATORY_IE_INCORRECT", "decode: %v", err)
				}
			}
			resp, err := fn(ctx, &req)
			if err != nil {
				return nil, err
			}
			out, err := MarshalBody(resp)
			if err != nil {
				return nil, Problem(500, "Internal Server Error", CauseSystem, "encode: %v", err)
			}
			return out, nil
		}

		req := reqPool.Get().(*Req)
		um, ok := any(req).(codec.Unmarshaler)
		if !ok {
			reqPool.Put(req)
			return nil, Problem(415, "Unsupported Media Type", CauseUnsupportedMedia,
				"%T has no binary codec", req)
		}
		if err := decodeFrame(body, um); err != nil {
			putReq(req)
			return nil, Problem(400, "Bad Request", "MANDATORY_IE_INCORRECT", "decode frame: %v", err)
		}
		resp, err := fn(ctx, req)
		putReq(req)
		if err != nil {
			return nil, err
		}
		bm, ok := any(resp).(codec.Marshaler)
		if !ok {
			// Response type without a binary codec: answer in JSON, which
			// decodeResponse on the client handles transparently.
			out, merr := MarshalBody(resp)
			if merr != nil {
				return nil, Problem(500, "Internal Server Error", CauseSystem, "encode: %v", merr)
			}
			return out, nil
		}
		out, err := MarshalBinary(bm)
		if err != nil {
			return nil, Problem(500, "Internal Server Error", CauseSystem, "encode frame: %v", err)
		}
		return out, nil
	}
}
