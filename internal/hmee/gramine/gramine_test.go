package gramine

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"strings"
	"testing"
	"time"

	"shield5g/internal/hmee/sgx"
	"shield5g/internal/simclock"
)

func testSignKey(t testing.TB) ed25519.PrivateKey {
	t.Helper()
	_, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	return priv
}

func testImage() ContainerImage {
	return ContainerImage{
		Name: "eudm-p-aka:v1.5.0",
		Files: []ImageFile{
			{Path: "/usr/lib/libssl.so", Size: 1_200_000_000},
			{Path: "/usr/lib/libpistache.so", Size: 800_000_000},
			{Path: "/app/eudm-aka", Size: 500_000_000},
			{Path: "/boot/vmlinuz", Size: 10_000_000},
			{Path: "/dev/null", Size: 0},
			{Path: "/proc/cpuinfo", Size: 1},
			{Path: "/sys/devices", Size: 1},
			{Path: "/etc/mtab", Size: 1},
		},
	}
}

func testShielded(t testing.TB) *ShieldedImage {
	t.Helper()
	si, err := BuildShielded(testImage(), DefaultManifest("/app/eudm-aka"), testSignKey(t))
	if err != nil {
		t.Fatalf("BuildShielded: %v", err)
	}
	return si
}

func testPlatform(t testing.TB) *sgx.Platform {
	t.Helper()
	p, err := sgx.NewPlatform(sgx.PlatformConfig{Seed: 7})
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	return p
}

func TestManifestValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Manifest)
		wantErr error
	}{
		{"valid default", func(*Manifest) {}, nil},
		{"no entrypoint", func(m *Manifest) { m.Entrypoint = " " }, ErrNoEntrypoint},
		{"zero size", func(m *Manifest) { m.EnclaveSizeBytes = 0 }, ErrEnclaveSize},
		{"non power of two", func(m *Manifest) { m.EnclaveSizeBytes = 3 << 20 }, ErrEnclaveSize},
		{"too few threads", func(m *Manifest) { m.MaxThreads = 3 }, ErrTooFewThreads},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := DefaultManifest("/app/bin")
			tt.mutate(m)
			err := m.Validate()
			if tt.wantErr == nil && err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if tt.wantErr != nil && !errors.Is(err, tt.wantErr) {
				t.Fatalf("Validate = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestManifestStatsRequiresDebug(t *testing.T) {
	m := DefaultManifest("/app/bin")
	m.Debug = false
	m.Stats = true
	if err := m.Validate(); err == nil {
		t.Fatal("stats without debug accepted")
	}
}

func TestManifestTrustedFileEmptyURI(t *testing.T) {
	m := DefaultManifest("/app/bin")
	m.TrustedFiles = []TrustedFile{{URI: "", Size: 1}}
	if err := m.Validate(); err == nil {
		t.Fatal("empty trusted file URI accepted")
	}
}

func TestManifestEncodeParseRoundTrip(t *testing.T) {
	m := DefaultManifest("/app/eudm-aka")
	m.TrustedFiles = []TrustedFile{{URI: "file:/lib/x.so", Size: 42}}
	m.Env = map[string]string{"MODE": "sgx"}
	data, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := ParseManifest(data)
	if err != nil {
		t.Fatalf("ParseManifest: %v", err)
	}
	if got.Entrypoint != m.Entrypoint || got.EnclaveSizeBytes != m.EnclaveSizeBytes ||
		got.MaxThreads != m.MaxThreads || !got.PreheatEnclave ||
		len(got.TrustedFiles) != 1 || got.Env["MODE"] != "sgx" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestParseManifestRejectsInvalid(t *testing.T) {
	if _, err := ParseManifest([]byte("{not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := ParseManifest([]byte(`{"entrypoint":"","enclave_size_bytes":1024,"max_threads":4}`)); err == nil {
		t.Fatal("invalid manifest accepted")
	}
}

func TestBuildShieldedAppendsTrustedFilesExcludingPlatformDirs(t *testing.T) {
	si := testShielded(t)
	var uris []string
	for _, f := range si.Manifest.TrustedFiles {
		uris = append(uris, f.URI)
	}
	joined := strings.Join(uris, "\n")
	for _, want := range []string{"file:/usr/lib/libssl.so", "file:/app/eudm-aka"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trusted files missing %s", want)
		}
	}
	for _, banned := range []string{"/boot/", "/dev/", "/proc/", "/sys/", "/etc/mtab"} {
		if strings.Contains(joined, banned) {
			t.Errorf("trusted files include excluded path %s", banned)
		}
	}
}

func TestBuildShieldedValidation(t *testing.T) {
	key := testSignKey(t)
	if _, err := BuildShielded(testImage(), nil, key); err == nil {
		t.Fatal("nil manifest accepted")
	}
	bad := DefaultManifest("/app/bin")
	bad.MaxThreads = 1
	if _, err := BuildShielded(testImage(), bad, key); err == nil {
		t.Fatal("invalid manifest accepted")
	}
	if _, err := BuildShielded(testImage(), DefaultManifest("/app/bin"), key[:10]); err == nil {
		t.Fatal("short key accepted")
	}
	img := testImage()
	img.Name = ""
	if _, err := BuildShielded(img, DefaultManifest("/app/bin"), key); err == nil {
		t.Fatal("unnamed image accepted")
	}
}

func TestShieldedImageVerifyDetectsTamper(t *testing.T) {
	si := testShielded(t)
	if err := si.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	si.Manifest.TrustedFiles[0].Size++
	if err := si.Verify(); err == nil {
		t.Fatal("tampered image verified")
	}
}

func TestShieldedImageEnclaveConfig(t *testing.T) {
	si := testShielded(t)
	cfg := si.EnclaveConfig()
	if cfg.SizeBytes != 512<<20 || cfg.MaxThreads != 4 || !cfg.Preheat {
		t.Fatalf("EnclaveConfig = %+v", cfg)
	}
	if cfg.Name != "eudm-p-aka:v1.5.0" {
		t.Fatalf("Name = %q", cfg.Name)
	}
	if len(cfg.TrustedFiles) != len(si.Manifest.TrustedFiles) {
		t.Fatal("trusted files not mapped")
	}
}

func TestImageTotalBytes(t *testing.T) {
	img := ContainerImage{Files: []ImageFile{{Size: 10}, {Size: 32}}}
	if got := img.TotalBytes(); got != 42 {
		t.Fatalf("TotalBytes = %d", got)
	}
}

func TestLaunchAndLoadDuration(t *testing.T) {
	p := testPlatform(t)
	inst, err := Launch(context.Background(), p, testShielded(t))
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer inst.Shutdown()
	if d := inst.LoadDuration(); d < 45*time.Second || d > 75*time.Second {
		t.Fatalf("load duration = %v, want ~1 minute", d)
	}
	if inst.Warm() {
		t.Fatal("instance warm before first request")
	}
}

func TestLaunchRejectsTamperedImage(t *testing.T) {
	p := testPlatform(t)
	si := testShielded(t)
	si.Signature[0] ^= 1
	if _, err := Launch(context.Background(), p, si); err == nil {
		t.Fatal("tampered image launched")
	}
	if _, err := Launch(context.Background(), nil, si); err == nil {
		t.Fatal("nil platform accepted")
	}
}

func TestServeRequestTransitionBudget(t *testing.T) {
	p := testPlatform(t)
	inst, err := Launch(context.Background(), p, testShielded(t))
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer inst.Shutdown()

	serve := func() sgx.StatsSnapshot {
		before := inst.Stats()
		var acct simclock.Account
		ctx := simclock.WithAccount(context.Background(), &acct)
		if _, err := inst.ServeRequest(ctx, 40, 80, func(th *sgx.Thread) error {
			th.Compute(100_000)
			return nil
		}); err != nil {
			t.Fatalf("ServeRequest: %v", err)
		}
		return inst.Stats().Sub(before)
	}

	serve() // warm up
	d := serve()
	// The paper measures ~90 EENTER/EEXIT per registration per module.
	if d.EENTER < 85 || d.EENTER > 97 {
		t.Fatalf("EENTER per request = %d, want ~90", d.EENTER)
	}
	if d.EEXIT < 85 || d.EEXIT > 97 {
		t.Fatalf("EEXIT per request = %d, want ~90", d.EEXIT)
	}
	if d.EENTER != d.EEXIT {
		t.Fatalf("steady-state EENTER (%d) != EEXIT (%d)", d.EENTER, d.EEXIT)
	}
}

func TestServeRequestBreakdownOrdering(t *testing.T) {
	p := testPlatform(t)
	inst, err := Launch(context.Background(), p, testShielded(t))
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer inst.Shutdown()

	var warm simclock.Account
	if _, err := inst.ServeRequest(simclock.WithAccount(context.Background(), &warm), 40, 80,
		func(*sgx.Thread) error { return nil }); err != nil {
		t.Fatalf("warmup: %v", err)
	}

	var acct simclock.Account
	bd, err := inst.ServeRequest(simclock.WithAccount(context.Background(), &acct), 40, 80, func(th *sgx.Thread) error {
		th.Compute(100_000)
		return nil
	})
	if err != nil {
		t.Fatalf("ServeRequest: %v", err)
	}
	if bd.Functional == 0 || bd.Total == 0 || bd.ServerSide == 0 {
		t.Fatalf("zero windows: %+v", bd)
	}
	if bd.Functional >= bd.Total || bd.Total >= bd.ServerSide {
		t.Fatalf("window nesting violated: %+v", bd)
	}
	if bd.ServerSide != acct.Total() {
		t.Fatalf("ServerSide (%d) != account total (%d)", bd.ServerSide, acct.Total())
	}
}

func TestServeRequestInitialMuchSlower(t *testing.T) {
	p := testPlatform(t)
	inst, err := Launch(context.Background(), p, testShielded(t))
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer inst.Shutdown()

	serve := func() simclock.Cycles {
		var acct simclock.Account
		bd, err := inst.ServeRequest(simclock.WithAccount(context.Background(), &acct), 40, 80,
			func(th *sgx.Thread) error { th.Compute(100_000); return nil })
		if err != nil {
			t.Fatalf("ServeRequest: %v", err)
		}
		return bd.ServerSide
	}
	initial := serve()
	stable := serve()
	// Fig. 10: initial response ≈ 20× stable. Server-side alone must be
	// at least an order of magnitude apart.
	if initial < 10*stable {
		t.Fatalf("initial (%d cycles) not >= 10x stable (%d cycles)", initial, stable)
	}
	if !inst.Warm() {
		t.Fatal("instance not warm after first request")
	}
}

func TestServeRequestHandlerError(t *testing.T) {
	p := testPlatform(t)
	inst, err := Launch(context.Background(), p, testShielded(t))
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer inst.Shutdown()
	sentinel := errors.New("handler failed")
	if _, err := inst.ServeRequest(context.Background(), 1, 1, func(*sgx.Thread) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestShutdownIdempotentAndRejectsServe(t *testing.T) {
	p := testPlatform(t)
	inst, err := Launch(context.Background(), p, testShielded(t))
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	inst.Shutdown()
	inst.Shutdown()
	if _, err := inst.ServeRequest(context.Background(), 1, 1, func(*sgx.Thread) error { return nil }); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("ServeRequest after shutdown = %v, want ErrNotRunning", err)
	}
	if p.EPCInUse() != 0 {
		t.Fatalf("EPC not released: %d", p.EPCInUse())
	}
}

func TestTableIIIShapeEmptyVsServer(t *testing.T) {
	// The GSC empty-workload baseline must sit near the paper's
	// 762 EENTER / 680 EEXIT, and a served module near 1500/1410 after
	// one registration.
	p := testPlatform(t)
	inst, err := Launch(context.Background(), p, testShielded(t))
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer inst.Shutdown()

	s := inst.Stats()
	// Build(762) + 4 resident entries + server init.
	wantEnter := uint64(762 + 4 + serverInitOCALLs)
	if s.EENTER != wantEnter {
		t.Fatalf("post-launch EENTER = %d, want %d", s.EENTER, wantEnter)
	}
	if s.EEXIT != uint64(680+serverInitOCALLs) {
		t.Fatalf("post-launch EEXIT = %d", s.EEXIT)
	}

	for i := 0; i < 1; i++ {
		if _, err := inst.ServeRequest(context.Background(), 40, 80, func(*sgx.Thread) error { return nil }); err != nil {
			t.Fatalf("ServeRequest: %v", err)
		}
	}
	s = inst.Stats()
	// One UE: launch + warmup + ~90 request OCALLs ≈ paper's 1508.
	if s.EENTER < 1450 || s.EENTER > 1560 {
		t.Fatalf("1-UE EENTER = %d, want ~1508 (Table III)", s.EENTER)
	}
	if s.EEXIT < 1360 || s.EEXIT > 1470 {
		t.Fatalf("1-UE EEXIT = %d, want ~1414 (Table III)", s.EEXIT)
	}
	if s.EENTER <= s.EEXIT {
		t.Fatal("EENTER must exceed EEXIT (resident one-way entries)")
	}
}

func TestAccrueUptime(t *testing.T) {
	p := testPlatform(t)
	inst, err := Launch(context.Background(), p, testShielded(t))
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer inst.Shutdown()
	before := inst.Stats().AEX
	inst.AccrueUptime(140 * time.Second)
	got := inst.Stats().AEX - before
	// 250 Hz × 4 threads × 140 s = 140000, the Table III AEX population.
	if got < 130_000 || got > 150_000 {
		t.Fatalf("AEX after 140s = %d, want ~140000", got)
	}
}
