// Package hashpool provides reusable SHA-256 and HMAC-SHA-256 states for
// the registration hot path.
//
// Every 5G-AKA registration evaluates the TS 33.220 KDF and the ECIES MAC
// many times; the stdlib constructors (`sha256.New`, `hmac.New`) allocate a
// fresh state per call and `crypto/hmac` cannot be rekeyed, so the seed
// implementation paid five-plus heap allocations per MAC. This package
// keeps the states in sync.Pools and implements HMAC-SHA-256 manually
// (H(K XOR opad || H(K XOR ipad || msg)), FIPS 198-1) over two retained
// SHA-256 states so one state can serve many keys.
//
// Ownership rule: a Get*/Put* pair must bracket a single logical operation;
// pooled states must never be retained across calls or shared between
// goroutines. PutHMAC scrubs key material before recycling.
package hashpool

import (
	"crypto/sha256"
	"hash"
	"sync"
)

var shaPool = sync.Pool{New: func() any { return sha256.New() }}

// GetSHA256 returns a reset SHA-256 state from the pool.
func GetSHA256() hash.Hash {
	h := shaPool.Get().(hash.Hash)
	h.Reset()
	return h
}

// PutSHA256 recycles a state obtained from GetSHA256. The caller must not
// use h afterwards.
func PutSHA256(h hash.Hash) { shaPool.Put(h) }

// HMAC is a reusable HMAC-SHA-256 state. Unlike crypto/hmac it can be
// rekeyed in place via SetKey, which lets a pooled instance serve
// different keys without reallocating. Not safe for concurrent use.
type HMAC struct {
	inner, outer hash.Hash
	ipad, opad   [sha256.BlockSize]byte
	// sum and out buffer the inner and outer digests; fields rather than
	// locals so the interface calls inner.Sum/outer.Sum do not force a
	// heap allocation per invocation.
	sum [sha256.Size]byte
	out [sha256.Size]byte
}

// NewHMAC returns an owned (non-pooled) HMAC keyed with key, for contexts
// that hold one key for their lifetime (e.g. a NAS security context).
func NewHMAC(key []byte) *HMAC {
	m := &HMAC{inner: sha256.New(), outer: sha256.New()}
	m.SetKey(key)
	return m
}

// SetKey rekeys the state and resets it. Keys longer than the SHA-256
// block size are hashed first, matching crypto/hmac.
func (m *HMAC) SetKey(key []byte) {
	var k [sha256.BlockSize]byte
	if len(key) > len(k) {
		d := sha256.Sum256(key)
		copy(k[:], d[:])
	} else {
		copy(k[:], key)
	}
	for i := range k {
		m.ipad[i] = k[i] ^ 0x36
		m.opad[i] = k[i] ^ 0x5c
	}
	m.Reset()
}

// Reset restarts the MAC computation, keeping the current key.
func (m *HMAC) Reset() {
	m.inner.Reset()
	m.inner.Write(m.ipad[:])
}

// Write appends message bytes to the running MAC.
func (m *HMAC) Write(p []byte) (int, error) { return m.inner.Write(p) }

// Sum appends the 32-byte tag to dst and returns the result. The state
// must be Reset before computing another tag.
func (m *HMAC) Sum(dst []byte) []byte {
	inner := m.inner.Sum(m.sum[:0])
	m.outer.Reset()
	m.outer.Write(m.opad[:])
	m.outer.Write(inner)
	return m.outer.Sum(dst)
}

// SumInto writes the 32-byte tag into dst (which must hold at least
// sha256.Size bytes) without dst ever crossing a hash.Hash interface
// boundary, so a stack-allocated dst stays on the stack. The state must
// be Reset before computing another tag.
func (m *HMAC) SumInto(dst []byte) {
	inner := m.inner.Sum(m.sum[:0])
	m.outer.Reset()
	m.outer.Write(m.opad[:])
	m.outer.Write(inner)
	copy(dst, m.outer.Sum(m.out[:0]))
}

var hmacPool = sync.Pool{New: func() any {
	return &HMAC{inner: sha256.New(), outer: sha256.New()}
}}

// GetHMAC returns a pooled HMAC keyed with key, ready for Write/Sum.
func GetHMAC(key []byte) *HMAC {
	m := hmacPool.Get().(*HMAC)
	m.SetKey(key)
	return m
}

// PutHMAC scrubs the key schedule and recycles the state. The caller must
// not use m afterwards.
func PutHMAC(m *HMAC) {
	m.inner.Reset()
	m.outer.Reset()
	m.ipad = [sha256.BlockSize]byte{}
	m.opad = [sha256.BlockSize]byte{}
	m.sum = [sha256.Size]byte{}
	m.out = [sha256.Size]byte{}
	hmacPool.Put(m)
}
