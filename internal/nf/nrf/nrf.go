// Package nrf implements the Network Repository Function: NF instance
// registration, heartbeat and discovery over the Nnrf service-based
// interface. Every VNF in the slice registers here and discovers its peers
// through it, as in the paper's OAI deployment.
package nrf

import (
	"context"
	"sort"
	"sync"
	"time"

	"shield5g/internal/costmodel"
	"shield5g/internal/sbi"
	"shield5g/internal/simclock"
)

// ServiceName is the NRF's own SBI service name.
const ServiceName = "nrf"

// SBI endpoint paths.
const (
	PathRegister   = "/nnrf-nfm/v1/nf-instances/register"
	PathDeregister = "/nnrf-nfm/v1/nf-instances/deregister"
	PathHeartbeat  = "/nnrf-nfm/v1/nf-instances/heartbeat"
	PathDiscover   = "/nnrf-disc/v1/nf-instances"
)

// NFProfile describes one registered network function instance.
type NFProfile struct {
	InstanceID string `json:"instance_id"`
	NFType     string `json:"nf_type"` // "UDM", "AUSF", "AMF", ...
	Service    string `json:"service"` // SBI service name for routing
	// HMEE reports whether the instance runs on an HMEE-enabled host —
	// the 3GPP trust-domain attribute the paper's discussion builds on.
	HMEE bool `json:"hmee"`
}

// RegisterRequest registers or replaces an NF profile.
type RegisterRequest struct {
	Profile NFProfile `json:"profile"`
}

// RegisterResponse acknowledges registration.
type RegisterResponse struct {
	HeartbeatSeconds int `json:"heartbeat_seconds"`
}

// DeregisterRequest removes an NF instance.
type DeregisterRequest struct {
	InstanceID string `json:"instance_id"`
}

// HeartbeatRequest refreshes an instance's liveness.
type HeartbeatRequest struct {
	InstanceID string `json:"instance_id"`
}

// Empty is an empty response body.
type Empty struct{}

// DiscoverRequest searches instances by NF type. RequireHMEE restricts
// results to higher-trust-domain hosts.
type DiscoverRequest struct {
	NFType      string `json:"nf_type"`
	RequireHMEE bool   `json:"require_hmee,omitempty"`
}

// DiscoverResponse lists matching profiles.
type DiscoverResponse struct {
	Profiles []NFProfile `json:"profiles"`
}

// NRF is the repository function.
type NRF struct {
	server *sbi.Server

	mu        sync.Mutex
	instances map[string]NFProfile
	lastSeen  map[string]time.Time
	now       func() time.Time
}

// New creates an NRF and registers its SBI server in the registry.
func New(env *costmodel.Env, registry *sbi.Registry) (*NRF, error) {
	n := &NRF{
		server:    sbi.NewServer(ServiceName, env),
		instances: make(map[string]NFProfile),
		lastSeen:  make(map[string]time.Time),
		now:       virtualNow(env.Clock),
	}
	n.server.Handle(PathRegister, sbi.JSONHandler(n.handleRegister))
	n.server.Handle(PathDeregister, sbi.JSONHandler(n.handleDeregister))
	n.server.Handle(PathHeartbeat, sbi.JSONHandler(n.handleHeartbeat))
	n.server.Handle(PathDiscover, sbi.JSONHandler(n.handleDiscover))
	if err := registry.Register(n.server); err != nil {
		return nil, err
	}
	return n, nil
}

// virtualNow derives liveness timestamps from the slice's virtual
// clock so heartbeat bookkeeping is deterministic across runs: the
// zero time.Time advanced by the simulated elapsed duration.
func virtualNow(clock *simclock.Clock) func() time.Time {
	return func() time.Time { return time.Time{}.Add(clock.Now()) }
}

func (n *NRF) handleRegister(_ context.Context, req *RegisterRequest) (*RegisterResponse, error) {
	if req.Profile.InstanceID == "" || req.Profile.NFType == "" || req.Profile.Service == "" {
		return nil, sbi.Problem(400, "Bad Request", "MANDATORY_IE_MISSING", "instance_id, nf_type and service are required")
	}
	n.mu.Lock()
	n.instances[req.Profile.InstanceID] = req.Profile
	n.lastSeen[req.Profile.InstanceID] = n.now()
	n.mu.Unlock()
	return &RegisterResponse{HeartbeatSeconds: 10}, nil
}

func (n *NRF) handleDeregister(_ context.Context, req *DeregisterRequest) (*Empty, error) {
	n.mu.Lock()
	delete(n.instances, req.InstanceID)
	delete(n.lastSeen, req.InstanceID)
	n.mu.Unlock()
	return &Empty{}, nil
}

func (n *NRF) handleHeartbeat(_ context.Context, req *HeartbeatRequest) (*Empty, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.instances[req.InstanceID]; !ok {
		return nil, sbi.Problem(404, "Not Found", "RESOURCE_NOT_FOUND", "instance %s not registered", req.InstanceID)
	}
	n.lastSeen[req.InstanceID] = n.now()
	return &Empty{}, nil
}

func (n *NRF) handleDiscover(_ context.Context, req *DiscoverRequest) (*DiscoverResponse, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []NFProfile
	for _, p := range n.instances {
		if p.NFType != req.NFType {
			continue
		}
		if req.RequireHMEE && !p.HMEE {
			continue
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].InstanceID < out[j].InstanceID })
	return &DiscoverResponse{Profiles: out}, nil
}

// InstanceCount reports the number of registered instances (for tests and
// status displays).
func (n *NRF) InstanceCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.instances)
}

// Client is the NF-side helper for NRF interactions.
type Client struct {
	invoker sbi.Invoker
}

// NewClient wraps an SBI transport for NRF calls.
func NewClient(invoker sbi.Invoker) *Client { return &Client{invoker: invoker} }

// Register announces an NF instance.
func (c *Client) Register(ctx context.Context, p NFProfile) error {
	return c.invoker.Post(ctx, ServiceName, PathRegister, &RegisterRequest{Profile: p}, nil)
}

// Deregister removes an NF instance.
func (c *Client) Deregister(ctx context.Context, instanceID string) error {
	return c.invoker.Post(ctx, ServiceName, PathDeregister, &DeregisterRequest{InstanceID: instanceID}, nil)
}

// Heartbeat refreshes liveness.
func (c *Client) Heartbeat(ctx context.Context, instanceID string) error {
	return c.invoker.Post(ctx, ServiceName, PathHeartbeat, &HeartbeatRequest{InstanceID: instanceID}, nil)
}

// Discover finds instances of an NF type. It returns the SBI service name
// of the first match.
func (c *Client) Discover(ctx context.Context, nfType string, requireHMEE bool) (NFProfile, error) {
	var resp DiscoverResponse
	if err := c.invoker.Post(ctx, ServiceName, PathDiscover, &DiscoverRequest{NFType: nfType, RequireHMEE: requireHMEE}, &resp); err != nil {
		return NFProfile{}, err
	}
	if len(resp.Profiles) == 0 {
		return NFProfile{}, sbi.Problem(404, "Not Found", "TARGET_NF_NOT_FOUND", "no %s instance registered", nfType)
	}
	return resp.Profiles[0], nil
}
