// Command gnbsim drives mass UE registrations against a freshly deployed
// slice, the way the paper uses the gNBSIM RAN entity for its large-scale
// measurements.
//
// Usage:
//
//	gnbsim [-n 100] [-parallel 1] [-isolation sgx|container|monolithic] [-seed N]
package main

import (
	"context"
	"crypto/rand"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"shield5g"
)

func main() {
	os.Exit(run())
}

func run() int {
	n := flag.Int("n", 100, "number of UEs to register")
	parallel := flag.Int("parallel", 1, "concurrent registration workers (1 = sequential, deterministic)")
	isolation := flag.String("isolation", "sgx", "AKA isolation: monolithic, container or sgx")
	seed := flag.Uint64("seed", 1, "jitter seed")
	flag.Parse()

	iso, err := parseIsolation(*isolation)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gnbsim: %v\n", err)
		return 2
	}

	ctx := context.Background()
	start := time.Now()
	tb, err := shield5g.NewTestbed(ctx, shield5g.SliceConfig{Isolation: iso, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gnbsim: deploy: %v\n", err)
		return 1
	}
	defer tb.Close()
	fmt.Printf("slice deployed (%s isolation) in %v wall time\n", iso, time.Since(start).Round(time.Millisecond))
	if iso == shield5g.SGX {
		for kind, m := range tb.Slice.Modules {
			fmt.Printf("  %s enclave load: %v (virtual)\n", kind, m.LoadDuration().Round(time.Millisecond))
		}
	}

	result, err := tb.Slice.GNB.RegisterManyWith(ctx, shield5g.MassOptions{
		N: *n,
		NewUE: func(i int) (*shield5g.UE, error) {
			k := make([]byte, 16)
			if _, err := rand.Read(k); err != nil {
				return nil, fmt.Errorf("entropy: %w", err)
			}
			sub, err := tb.AddSubscriber(ctx, k, nil)
			if err != nil {
				return nil, err
			}
			return sub.UE, nil
		},
		Parallelism: *parallel,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gnbsim: %v\n", err)
		return 1
	}

	fmt.Printf("registered %d/%d UEs (%d failed) with %d worker(s)\n",
		result.Registered, *n, result.Failed, result.Parallelism)
	if result.Registered > 0 {
		sum := result.SetupTimes.Summarize()
		fmt.Printf("session setup: median %v mean %v (virtual)\n",
			sum.Median.Round(time.Microsecond), sum.Mean.Round(time.Microsecond))
		fmt.Printf("throughput: %.0f regs/s wall, %.1f regs/s virtual (wall %v, virtual %v)\n",
			result.WallRegsPerSec, result.VirtualRegsPerSec,
			result.Wall.Round(time.Millisecond), result.Virtual.Round(time.Millisecond))
	}
	if result.Failed > 0 {
		classes := make([]string, 0, len(result.FailureCounts))
		for class := range result.FailureCounts {
			classes = append(classes, class)
		}
		sort.Strings(classes)
		for _, class := range classes {
			fmt.Fprintf(os.Stderr, "gnbsim: %d failure(s) [%s], first: %v\n",
				result.FailureCounts[class], class, result.FirstErrors[class])
		}
		return 1
	}
	return 0
}

func parseIsolation(s string) (shield5g.Isolation, error) {
	switch s {
	case "monolithic":
		return shield5g.Monolithic, nil
	case "container":
		return shield5g.Container, nil
	case "sgx":
		return shield5g.SGX, nil
	default:
		return 0, fmt.Errorf("unknown isolation %q", s)
	}
}
