package paka

// Binary SBI codecs for the P-AKA module messages (see internal/sbi/codec
// for the frame format and ownership rules). Request decodes are
// zero-copy views into the loaned body; response decodes Compact their
// retained fields into one backing array per message, mirroring the
// single-backing layout GenerateAVCached already uses.

import "shield5g/internal/sbi/codec"

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *UDMGenerateAVRequest) AppendBinary(dst []byte) []byte {
	dst = codec.AppendString(dst, m.SUPI)
	dst = codec.AppendBytes(dst, m.OPc)
	dst = codec.AppendBytes(dst, m.RAND)
	dst = codec.AppendBytes(dst, m.SQN)
	dst = codec.AppendBytes(dst, m.AMFID)
	return codec.AppendString(dst, m.SNN)
}

// DecodeBinary implements codec.Unmarshaler. Byte fields are views into
// the frame (the request loan); the handler must not retain them.
//
//shieldlint:hotpath
func (m *UDMGenerateAVRequest) DecodeBinary(r *codec.Reader) error {
	m.SUPI = r.String()
	m.OPc = r.Bytes()
	m.RAND = r.Bytes()
	m.SQN = r.Bytes()
	m.AMFID = r.Bytes()
	m.SNN = r.InternString()
	return r.Err()
}

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *UDMGenerateAVResponse) AppendBinary(dst []byte) []byte {
	dst = codec.AppendBytes(dst, m.RAND)
	dst = codec.AppendBytes(dst, m.AUTN)
	dst = codec.AppendBytes(dst, m.XRESStar)
	return codec.AppendBytes(dst, m.KAUSF)
}

// DecodeBinary implements codec.Unmarshaler. The four AV fields are
// compacted into one caller-owned 80-byte backing.
//
//shieldlint:hotpath
func (m *UDMGenerateAVResponse) DecodeBinary(r *codec.Reader) error {
	m.RAND = r.Bytes()
	m.AUTN = r.Bytes()
	m.XRESStar = r.Bytes()
	m.KAUSF = r.Bytes()
	if err := r.Err(); err != nil {
		return err
	}
	codec.Compact(&m.RAND, &m.AUTN, &m.XRESStar, &m.KAUSF)
	return nil
}

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *UDMGenerateAVBatchRequest) AppendBinary(dst []byte) []byte {
	dst = codec.AppendCount(dst, len(m.Items))
	for i := range m.Items {
		dst = m.Items[i].AppendBinary(dst)
	}
	return dst
}

// DecodeBinary implements codec.Unmarshaler. Items are views into the
// frame, decoded into one slice allocation for the whole batch.
//
//shieldlint:hotpath
func (m *UDMGenerateAVBatchRequest) DecodeBinary(r *codec.Reader) error {
	n := r.Count()
	if err := r.Err(); err != nil {
		return err
	}
	if n == 0 {
		m.Items = nil
		return nil
	}
	m.Items = make([]UDMGenerateAVRequest, n)
	for i := range m.Items {
		if err := m.Items[i].DecodeBinary(r); err != nil {
			return err
		}
	}
	return r.Err()
}

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *UDMGenerateAVBatchResponse) AppendBinary(dst []byte) []byte {
	dst = codec.AppendCount(dst, len(m.Vectors))
	for i := range m.Vectors {
		dst = m.Vectors[i].AppendBinary(dst)
	}
	return dst
}

// DecodeBinary implements codec.Unmarshaler: one slice allocation for the
// vectors plus each vector's compacted backing.
//
//shieldlint:hotpath
func (m *UDMGenerateAVBatchResponse) DecodeBinary(r *codec.Reader) error {
	n := r.Count()
	if err := r.Err(); err != nil {
		return err
	}
	if n == 0 {
		m.Vectors = nil
		return nil
	}
	m.Vectors = make([]UDMGenerateAVResponse, n)
	for i := range m.Vectors {
		if err := m.Vectors[i].DecodeBinary(r); err != nil {
			return err
		}
	}
	return r.Err()
}

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *UDMResyncRequest) AppendBinary(dst []byte) []byte {
	dst = codec.AppendString(dst, m.SUPI)
	dst = codec.AppendBytes(dst, m.OPc)
	dst = codec.AppendBytes(dst, m.RAND)
	return codec.AppendBytes(dst, m.AUTS)
}

// DecodeBinary implements codec.Unmarshaler (zero-copy request views).
//
//shieldlint:hotpath
func (m *UDMResyncRequest) DecodeBinary(r *codec.Reader) error {
	m.SUPI = r.String()
	m.OPc = r.Bytes()
	m.RAND = r.Bytes()
	m.AUTS = r.Bytes()
	return r.Err()
}

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *UDMResyncResponse) AppendBinary(dst []byte) []byte {
	return codec.AppendBytes(dst, m.SQNMS)
}

// DecodeBinary implements codec.Unmarshaler.
//
//shieldlint:hotpath
func (m *UDMResyncResponse) DecodeBinary(r *codec.Reader) error {
	m.SQNMS = r.Bytes()
	if err := r.Err(); err != nil {
		return err
	}
	codec.Compact(&m.SQNMS)
	return nil
}

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *AUSFDeriveSERequest) AppendBinary(dst []byte) []byte {
	dst = codec.AppendBytes(dst, m.RAND)
	dst = codec.AppendBytes(dst, m.XRESStar)
	dst = codec.AppendBytes(dst, m.KAUSF)
	return codec.AppendString(dst, m.SNN)
}

// DecodeBinary implements codec.Unmarshaler (zero-copy request views).
//
//shieldlint:hotpath
func (m *AUSFDeriveSERequest) DecodeBinary(r *codec.Reader) error {
	m.RAND = r.Bytes()
	m.XRESStar = r.Bytes()
	m.KAUSF = r.Bytes()
	m.SNN = r.InternString()
	return r.Err()
}

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *AUSFDeriveSEResponse) AppendBinary(dst []byte) []byte {
	dst = codec.AppendBytes(dst, m.HXRESStar)
	return codec.AppendBytes(dst, m.KSEAF)
}

// DecodeBinary implements codec.Unmarshaler (one compacted backing).
//
//shieldlint:hotpath
func (m *AUSFDeriveSEResponse) DecodeBinary(r *codec.Reader) error {
	m.HXRESStar = r.Bytes()
	m.KSEAF = r.Bytes()
	if err := r.Err(); err != nil {
		return err
	}
	codec.Compact(&m.HXRESStar, &m.KSEAF)
	return nil
}

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *AMFDeriveKAMFRequest) AppendBinary(dst []byte) []byte {
	dst = codec.AppendBytes(dst, m.KSEAF)
	dst = codec.AppendString(dst, m.SUPI)
	return codec.AppendBytes(dst, m.ABBA)
}

// DecodeBinary implements codec.Unmarshaler (zero-copy request views).
//
//shieldlint:hotpath
func (m *AMFDeriveKAMFRequest) DecodeBinary(r *codec.Reader) error {
	m.KSEAF = r.Bytes()
	m.SUPI = r.String()
	m.ABBA = r.Bytes()
	return r.Err()
}

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *AMFDeriveKAMFResponse) AppendBinary(dst []byte) []byte {
	return codec.AppendBytes(dst, m.KAMF)
}

// DecodeBinary implements codec.Unmarshaler.
//
//shieldlint:hotpath
func (m *AMFDeriveKAMFResponse) DecodeBinary(r *codec.Reader) error {
	m.KAMF = r.Bytes()
	if err := r.Err(); err != nil {
		return err
	}
	codec.Compact(&m.KAMF)
	return nil
}
