// Command shieldlint runs the repository's static-analysis suite (see
// internal/analysis): determinism, secretflow, atomiccounter, ctxcarry,
// stripemap, hotalloc, planeboundary, poolowner and lockorder. It exits
// non-zero when any unsuppressed finding remains, which makes it a CI
// gate:
//
//	go run ./tools/shieldlint ./...          # the `make lint` entry point
//	go run ./tools/shieldlint -v ./internal/gnb
//	go run ./tools/shieldlint -show-suppressed ./...
//	go run ./tools/shieldlint -json ./...            # one JSON object per finding
//	go run ./tools/shieldlint -format=github ./...   # GitHub Actions annotations
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"shield5g/internal/analysis"
)

// jsonFinding is the -json line format: one object per finding, stable
// field names for downstream tooling.
type jsonFinding struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func main() {
	verbose := flag.Bool("v", false, "print per-analyzer summary")
	showSuppressed := flag.Bool("show-suppressed", false, "also print annotation-suppressed findings")
	only := flag.String("only", "", "run a single analyzer by name")
	asJSON := flag.Bool("json", false, "emit one JSON object per finding instead of text")
	format := flag.String("format", "text", "output format: text or github (::error workflow annotations)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: shieldlint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *format != "text" && *format != "github" {
		fmt.Fprintf(os.Stderr, "shieldlint: unknown format %q (want text or github)\n", *format)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := analysis.Analyzers()
	if *only != "" {
		a := analysis.ByName(*only)
		if a == nil {
			fmt.Fprintf(os.Stderr, "shieldlint: unknown analyzer %q\n", *only)
			os.Exit(2)
		}
		analyzers = []*analysis.Analyzer{a}
	}

	root, err := analysis.ModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "shieldlint:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.NewLoader(root).Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shieldlint:", err)
		os.Exit(2)
	}

	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shieldlint:", err)
		os.Exit(2)
	}

	perAnalyzer := make(map[string]int)
	active := 0
	for _, d := range diags {
		if d.Suppressed && !*showSuppressed {
			continue
		}
		if !d.Suppressed {
			active++
			perAnalyzer[d.Analyzer]++
		}
		switch {
		case *asJSON:
			line, merr := json.Marshal(jsonFinding{
				Analyzer:   d.Analyzer,
				File:       relToRoot(root, d.Pos.Filename),
				Line:       d.Pos.Line,
				Column:     d.Pos.Column,
				Message:    d.Message,
				Suppressed: d.Suppressed,
			})
			if merr != nil {
				fmt.Fprintln(os.Stderr, "shieldlint:", merr)
				os.Exit(2)
			}
			fmt.Println(string(line))
		case *format == "github":
			// Suppressed findings surface as notices so a reviewer sees
			// the escape hatches without the job failing on them.
			level := "error"
			if d.Suppressed {
				level = "notice"
			}
			fmt.Printf("::%s file=%s,line=%d,col=%d,title=shieldlint/%s::%s\n",
				level, relToRoot(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column,
				d.Analyzer, githubEscape(d.Message))
		case d.Suppressed:
			fmt.Printf("%s [suppressed by annotation]\n", d)
		default:
			fmt.Println(d)
		}
	}

	if *verbose {
		fmt.Fprintf(os.Stderr, "shieldlint: %d package(s) analyzed\n", len(pkgs))
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %d finding(s)\n", a.Name, perAnalyzer[a.Name])
		}
	}
	if active > 0 {
		fmt.Fprintf(os.Stderr, "shieldlint: %d finding(s)\n", active)
		os.Exit(1)
	}
}

// relToRoot rewrites an absolute position filename relative to the
// module root, which is what both CI annotations and editors expect.
func relToRoot(root, name string) string {
	if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return name
}

// githubEscape encodes the characters the workflow-command parser
// treats as delimiters inside an annotation message.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	return strings.ReplaceAll(s, "\n", "%0A")
}
