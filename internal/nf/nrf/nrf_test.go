package nrf

import (
	"context"
	"errors"
	"testing"

	"shield5g/internal/costmodel"
	"shield5g/internal/sbi"
)

func harness(t *testing.T) (*NRF, *Client) {
	t.Helper()
	env := costmodel.NewEnv(nil, 1, nil)
	reg := sbi.NewRegistry()
	n, err := New(env, reg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n, NewClient(sbi.NewClient("test", env, reg))
}

func TestRegisterAndDiscover(t *testing.T) {
	n, c := harness(t)
	ctx := context.Background()
	if err := c.Register(ctx, NFProfile{InstanceID: "udm-1", NFType: "UDM", Service: "udm"}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := c.Register(ctx, NFProfile{InstanceID: "udm-2", NFType: "UDM", Service: "udm-b", HMEE: true}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if n.InstanceCount() != 2 {
		t.Fatalf("InstanceCount = %d", n.InstanceCount())
	}

	p, err := c.Discover(ctx, "UDM", false)
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if p.InstanceID != "udm-1" { // stable order: lowest instance ID first
		t.Fatalf("Discover = %+v", p)
	}

	// HMEE-restricted discovery returns only the higher trust domain.
	p, err = c.Discover(ctx, "UDM", true)
	if err != nil {
		t.Fatalf("Discover HMEE: %v", err)
	}
	if p.InstanceID != "udm-2" || !p.HMEE {
		t.Fatalf("HMEE Discover = %+v", p)
	}
}

func TestDiscoverNoMatch(t *testing.T) {
	_, c := harness(t)
	_, err := c.Discover(context.Background(), "AMF", false)
	var pd *sbi.ProblemDetails
	if !errors.As(err, &pd) || pd.Status != 404 {
		t.Fatalf("Discover err = %v, want 404", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	_, c := harness(t)
	err := c.Register(context.Background(), NFProfile{NFType: "UDM", Service: "udm"})
	var pd *sbi.ProblemDetails
	if !errors.As(err, &pd) || pd.Status != 400 {
		t.Fatalf("missing instance ID err = %v, want 400", err)
	}
	if err := c.Register(context.Background(), NFProfile{InstanceID: "x", Service: "y"}); err == nil {
		t.Fatal("missing NF type accepted")
	}
	if err := c.Register(context.Background(), NFProfile{InstanceID: "x", NFType: "Y"}); err == nil {
		t.Fatal("missing service accepted")
	}
}

func TestRegisterReplacesProfile(t *testing.T) {
	n, c := harness(t)
	ctx := context.Background()
	if err := c.Register(ctx, NFProfile{InstanceID: "udm-1", NFType: "UDM", Service: "udm"}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := c.Register(ctx, NFProfile{InstanceID: "udm-1", NFType: "UDM", Service: "udm", HMEE: true}); err != nil {
		t.Fatalf("re-Register: %v", err)
	}
	if n.InstanceCount() != 1 {
		t.Fatalf("InstanceCount = %d, want 1 (replace)", n.InstanceCount())
	}
	p, err := c.Discover(ctx, "UDM", true)
	if err != nil || !p.HMEE {
		t.Fatalf("profile not replaced: %+v %v", p, err)
	}
}

func TestDeregister(t *testing.T) {
	n, c := harness(t)
	ctx := context.Background()
	if err := c.Register(ctx, NFProfile{InstanceID: "smf-1", NFType: "SMF", Service: "smf"}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := c.Deregister(ctx, "smf-1"); err != nil {
		t.Fatalf("Deregister: %v", err)
	}
	if n.InstanceCount() != 0 {
		t.Fatalf("InstanceCount = %d", n.InstanceCount())
	}
	if _, err := c.Discover(ctx, "SMF", false); err == nil {
		t.Fatal("deregistered instance discovered")
	}
}

func TestHeartbeat(t *testing.T) {
	_, c := harness(t)
	ctx := context.Background()
	if err := c.Register(ctx, NFProfile{InstanceID: "amf-1", NFType: "AMF", Service: "amf"}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := c.Heartbeat(ctx, "amf-1"); err != nil {
		t.Fatalf("Heartbeat: %v", err)
	}
	err := c.Heartbeat(ctx, "ghost")
	var pd *sbi.ProblemDetails
	if !errors.As(err, &pd) || pd.Status != 404 {
		t.Fatalf("ghost heartbeat err = %v, want 404", err)
	}
}
