package paka

import (
	"context"
	"testing"
	"time"

	"shield5g/internal/costmodel"
	"shield5g/internal/hmee/sgx"
	"shield5g/internal/metrics"
	"shield5g/internal/sbi"
	"shield5g/internal/simclock"
)

// measured captures one module's medians under one isolation mode.
type measured struct {
	fn, total, stable, initial time.Duration
}

// measureModule runs warm registrations through one module and reports the
// paper's four latency metrics.
func measureModule(t *testing.T, kind ModuleKind, iso Isolation, n int, seed uint64) measured {
	t.Helper()
	env := costmodel.NewEnv(nil, seed, nil)
	p, err := sgx.NewPlatform(sgx.PlatformConfig{Seed: seed})
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	reg := sbi.NewRegistry()
	m, err := New(context.Background(), Config{Kind: kind, Isolation: iso, Env: env, Platform: p, Registry: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer m.Stop()

	client := sbi.NewClient("vnf", env, reg)
	responses := &metrics.Recorder{}
	var initial time.Duration

	call := func(rec bool) {
		var acct simclock.Account
		ctx := simclock.WithAccount(context.Background(), &acct)
		start := acct.Total()
		var err error
		switch kind {
		case EUDM:
			if perr := m.ProvisionSubscriber(context.Background(), testSUPI, testK); perr != nil {
				t.Fatalf("provision: %v", perr)
			}
			udm := &RemoteUDM{remote{invoker: client, env: env, service: kind.ServiceName(), response: NewResponseRecorder()}}
			_, err = udm.GenerateAV(ctx, avRequest())
		case EAUSF:
			av, _ := GenerateAV(testK, avRequest())
			ausf := &RemoteAUSF{remote{invoker: client, env: env, service: kind.ServiceName(), response: NewResponseRecorder()}}
			_, err = ausf.DeriveSE(ctx, &AUSFDeriveSERequest{RAND: av.RAND, XRESStar: av.XRESStar, KAUSF: av.KAUSF, SNN: testSNN})
		case EAMF:
			amf := &RemoteAMF{remote{invoker: client, env: env, service: kind.ServiceName(), response: NewResponseRecorder()}}
			_, err = amf.DeriveKAMF(ctx, &AMFDeriveKAMFRequest{KSEAF: make([]byte, 32), SUPI: testSUPI, ABBA: []byte{0, 0}})
		}
		if err != nil {
			t.Fatalf("call %s/%s: %v", kind, iso, err)
		}
		if rec {
			responses.Add(env.Model.Duration(acct.Total() - start))
		} else {
			initial = env.Model.Duration(acct.Total() - start)
		}
	}

	call(false) // cold first request (R_I, includes TLS handshake + warmup)
	m.ResetRecorders()
	for i := 0; i < n; i++ {
		call(true)
	}

	return measured{
		fn:      m.FunctionalLatency().Summarize().Median,
		total:   m.TotalLatency().Summarize().Median,
		stable:  responses.Summarize().Median,
		initial: initial,
	}
}

// TestTableIICalibration verifies that the simulated testbed lands in the
// paper's Table II bands: L_F overhead 1.2-1.5x, L_T overhead 1.86-2.43x,
// response overhead 2.2-2.9x, and initial/stable response ratio ~19-21x.
func TestTableIICalibration(t *testing.T) {
	const n = 120
	type band struct{ lo, hi float64 }
	// The response-ratio spread across modules is compressed relative to
	// the paper's 2.2-2.9 (see EXPERIMENTS.md): the ordering is
	// preserved but all three land near the paper's eUDM value.
	bands := map[ModuleKind]struct{ fn, total, resp band }{
		EUDM:  {fn: band{1.05, 1.40}, total: band{1.6, 2.2}, resp: band{2.0, 2.6}},
		EAUSF: {fn: band{1.10, 1.50}, total: band{1.8, 2.4}, resp: band{2.0, 2.8}},
		EAMF:  {fn: band{1.25, 1.70}, total: band{2.0, 2.7}, resp: band{2.1, 3.1}},
	}

	results := make(map[ModuleKind]map[Isolation]measured)
	for _, kind := range Kinds() {
		results[kind] = map[Isolation]measured{
			Container: measureModule(t, kind, Container, n, 100+uint64(kind)),
			SGX:       measureModule(t, kind, SGX, n, 200+uint64(kind)),
		}
	}

	for _, kind := range Kinds() {
		c, s := results[kind][Container], results[kind][SGX]
		fnRatio := float64(s.fn) / float64(c.fn)
		totalRatio := float64(s.total) / float64(c.total)
		respRatio := float64(s.stable) / float64(c.stable)
		initRatio := float64(s.initial) / float64(s.stable)
		t.Logf("%s: LF %v->%v (%.2fx) LT %v->%v (%.2fx) R %v->%v (%.2fx) RI %v (%.1fx)",
			kind, c.fn, s.fn, fnRatio, c.total, s.total, totalRatio, c.stable, s.stable, respRatio, s.initial, initRatio)

		b := bands[kind]
		if fnRatio < b.fn.lo || fnRatio > b.fn.hi {
			t.Errorf("%s L_F ratio %.2f outside [%.2f, %.2f]", kind, fnRatio, b.fn.lo, b.fn.hi)
		}
		if totalRatio < b.total.lo || totalRatio > b.total.hi {
			t.Errorf("%s L_T ratio %.2f outside [%.2f, %.2f]", kind, totalRatio, b.total.lo, b.total.hi)
		}
		if respRatio < b.resp.lo || respRatio > b.resp.hi {
			t.Errorf("%s response ratio %.2f outside [%.2f, %.2f]", kind, respRatio, b.resp.lo, b.resp.hi)
		}
		if initRatio < 10 || initRatio > 35 {
			t.Errorf("%s initial/stable ratio %.1f outside [10, 35]", kind, initRatio)
		}
	}

	// Ordering: the eUDM module moves the most bytes and must be the
	// slowest in both modes (paper §V-B3).
	for _, iso := range []Isolation{Container, SGX} {
		udm, ausf, amf := results[EUDM][iso], results[EAUSF][iso], results[EAMF][iso]
		if !(udm.fn > ausf.fn && ausf.fn > amf.fn) {
			t.Errorf("%s L_F ordering violated: %v %v %v", iso, udm.fn, ausf.fn, amf.fn)
		}
		if !(udm.total > ausf.total && ausf.total > amf.total) {
			t.Errorf("%s L_T ordering violated: %v %v %v", iso, udm.total, ausf.total, amf.total)
		}
	}
}
