package shard

import (
	"fmt"
	"sync"
	"testing"
)

func TestBasicOperations(t *testing.T) {
	m := NewString[int]()
	if _, ok := m.Load("a"); ok {
		t.Fatal("empty map reports a key")
	}
	m.Store("a", 1)
	m.Store("b", 2)
	if v, ok := m.Load("a"); !ok || v != 1 {
		t.Fatalf("Load(a) = %d,%v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	m.Delete("a")
	if _, ok := m.Load("a"); ok {
		t.Fatal("deleted key still present")
	}
	if v, ok := m.LoadAndDelete("b"); !ok || v != 2 {
		t.Fatalf("LoadAndDelete(b) = %d,%v", v, ok)
	}
	if _, ok := m.LoadAndDelete("b"); ok {
		t.Fatal("second LoadAndDelete reported the key")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d, want 0", m.Len())
	}
}

func TestUpdateMutatesInPlace(t *testing.T) {
	m := NewString[*[]int]()
	v := &[]int{}
	m.Store("k", v)
	for i := 0; i < 10; i++ {
		m.Update("k", func(v *[]int, ok bool) {
			if !ok {
				t.Fatal("key missing in Update")
			}
			*v = append(*v, i)
		})
	}
	got, _ := m.Load("k")
	if len(*got) != 10 {
		t.Fatalf("len = %d, want 10", len(*got))
	}
	called := false
	m.Update("missing", func(_ *[]int, ok bool) {
		called = true
		if ok {
			t.Fatal("missing key reported present")
		}
	})
	if !called {
		t.Fatal("Update skipped fn for a missing key")
	}
}

func TestRangeVisitsAll(t *testing.T) {
	m := NewUint64[int]()
	for i := uint64(0); i < 100; i++ {
		m.Store(i, int(i))
	}
	seen := make(map[uint64]bool)
	m.Range(func(k uint64, v int) bool {
		seen[k] = true
		return true
	})
	if len(seen) != 100 {
		t.Fatalf("Range visited %d keys, want 100", len(seen))
	}
	n := 0
	m.Range(func(uint64, int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early-exit Range visited %d entries, want 1", n)
	}
}

func TestConcurrentMixedAccess(t *testing.T) {
	m := NewUint32[string]()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := uint32(w*500 + i)
				m.Store(k, fmt.Sprintf("v%d", k))
				if v, ok := m.Load(k); !ok || v == "" {
					t.Errorf("Load(%d) missing", k)
					return
				}
				if i%3 == 0 {
					m.Delete(k)
				}
			}
		}(w)
	}
	wg.Wait()
	want := 0
	for w := 0; w < 8; w++ {
		for i := 0; i < 500; i++ {
			if i%3 != 0 {
				want++
			}
		}
	}
	if m.Len() != want {
		t.Fatalf("Len = %d, want %d", m.Len(), want)
	}
}

func TestHashSpreadsSequentialKeys(t *testing.T) {
	counts := make(map[uint64]int)
	for i := uint64(0); i < 1024; i++ {
		counts[HashUint64(i)%stripeCount]++
	}
	for s, n := range counts {
		if n > 1024/stripeCount*3 {
			t.Fatalf("stripe %d holds %d of 1024 sequential keys", s, n)
		}
	}
}
