package codec_test

// Golden round-trip tests: for every SBI message type carrying a binary
// codec, a struct decoded from its binary frame must be bit-identical
// (reflect.DeepEqual, including the nil/empty distinction) to the same
// value pushed through the JSON path. This is the contract that lets the
// transport negotiate formats per path without the two fleets observing
// different message contents.

import (
	"encoding/json"
	"reflect"
	"testing"

	"shield5g/internal/crypto/suci"
	"shield5g/internal/nf/ausf"
	"shield5g/internal/nf/udm"
	"shield5g/internal/nf/udr"
	"shield5g/internal/paka"
	"shield5g/internal/sbi/codec"
)

// message is any SBI type with both halves of the binary codec.
type message interface {
	codec.Marshaler
	codec.Unmarshaler
}

// golden frames in, decodes the frame into a fresh struct, runs the same
// value through JSON marshal/unmarshal, and demands identical results.
func golden(t *testing.T, name string, in message) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		typ := reflect.TypeOf(in).Elem()

		frame := codec.AppendHeader(nil)
		frame = in.AppendBinary(frame)
		frame, err := codec.FinishFrame(frame)
		if err != nil {
			t.Fatalf("FinishFrame: %v", err)
		}
		payload, err := codec.Payload(frame)
		if err != nil {
			t.Fatalf("Payload: %v", err)
		}
		binOut := reflect.New(typ).Interface().(message)
		r := codec.NewReader(payload)
		if err := binOut.DecodeBinary(r); err != nil {
			t.Fatalf("DecodeBinary: %v", err)
		}
		if err := r.Done(); err != nil {
			t.Fatalf("Done: %v (codec did not consume its own encoding exactly)", err)
		}

		data, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("json.Marshal: %v", err)
		}
		jsonOut := reflect.New(typ).Interface()
		if err := json.Unmarshal(data, jsonOut); err != nil {
			t.Fatalf("json.Unmarshal: %v", err)
		}

		if !reflect.DeepEqual(binOut, jsonOut) {
			t.Errorf("binary and JSON decodes diverge:\n binary: %#v\n json:   %#v", binOut, jsonOut)
		}
	})
}

func sampleSUCI() *suci.SUCI {
	return &suci.SUCI{
		MCC:              "001",
		MNC:              "01",
		RoutingIndicator: "0000",
		Scheme:           suci.SchemeProfileA,
		HomeKeyID:        1,
		SchemeOutput:     []byte{0x10, 0x11, 0x12, 0x13, 0x14},
	}
}

func sampleAVRequest(supi string) paka.UDMGenerateAVRequest {
	return paka.UDMGenerateAVRequest{
		SUPI:  supi,
		OPc:   bytesOf(16, 0xA0),
		RAND:  bytesOf(16, 0xB0),
		SQN:   bytesOf(6, 0xC0),
		AMFID: []byte{0x80, 0x00},
		SNN:   "5G:mnc001.mcc001.3gppnetwork.org",
	}
}

func sampleAVResponse(seed byte) paka.UDMGenerateAVResponse {
	return paka.UDMGenerateAVResponse{
		RAND:     bytesOf(16, seed),
		AUTN:     bytesOf(16, seed+1),
		XRESStar: bytesOf(16, seed+2),
		KAUSF:    bytesOf(32, seed+3),
	}
}

func bytesOf(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

func TestGoldenPAKAMessages(t *testing.T) {
	avReq := sampleAVRequest("imsi-001010000000001")
	golden(t, "UDMGenerateAVRequest", &avReq)
	golden(t, "UDMGenerateAVRequest/nil-fields", &paka.UDMGenerateAVRequest{SUPI: "imsi-001010000000002"})

	avResp := sampleAVResponse(0x20)
	golden(t, "UDMGenerateAVResponse", &avResp)
	golden(t, "UDMGenerateAVResponse/zero", &paka.UDMGenerateAVResponse{})

	// The acceptance-criteria case: a batch of one must behave exactly
	// like the JSON path, so pool refills with batch size 1 are
	// indistinguishable across codecs.
	golden(t, "UDMGenerateAVBatchRequest/batch-of-1", &paka.UDMGenerateAVBatchRequest{
		Items: []paka.UDMGenerateAVRequest{sampleAVRequest("imsi-001010000000003")},
	})
	golden(t, "UDMGenerateAVBatchRequest/batch-of-3", &paka.UDMGenerateAVBatchRequest{
		Items: []paka.UDMGenerateAVRequest{
			sampleAVRequest("imsi-001010000000004"),
			sampleAVRequest("imsi-001010000000005"),
			sampleAVRequest("imsi-001010000000006"),
		},
	})
	golden(t, "UDMGenerateAVBatchRequest/nil-items", &paka.UDMGenerateAVBatchRequest{})

	golden(t, "UDMGenerateAVBatchResponse/batch-of-1", &paka.UDMGenerateAVBatchResponse{
		Vectors: []paka.UDMGenerateAVResponse{sampleAVResponse(0x30)},
	})
	golden(t, "UDMGenerateAVBatchResponse/batch-of-3", &paka.UDMGenerateAVBatchResponse{
		Vectors: []paka.UDMGenerateAVResponse{sampleAVResponse(0x40), sampleAVResponse(0x50), sampleAVResponse(0x60)},
	})
	golden(t, "UDMGenerateAVBatchResponse/nil-vectors", &paka.UDMGenerateAVBatchResponse{})

	golden(t, "UDMResyncRequest", &paka.UDMResyncRequest{
		SUPI: "imsi-001010000000007",
		OPc:  bytesOf(16, 0x70),
		RAND: bytesOf(16, 0x71),
		AUTS: bytesOf(14, 0x72),
	})
	golden(t, "UDMResyncResponse", &paka.UDMResyncResponse{SQNMS: bytesOf(6, 0x73)})

	golden(t, "AUSFDeriveSERequest", &paka.AUSFDeriveSERequest{
		RAND:     bytesOf(16, 0x74),
		XRESStar: bytesOf(16, 0x75),
		KAUSF:    bytesOf(32, 0x76),
		SNN:      "5G:mnc001.mcc001.3gppnetwork.org",
	})
	golden(t, "AUSFDeriveSEResponse", &paka.AUSFDeriveSEResponse{
		HXRESStar: bytesOf(16, 0x77),
		KSEAF:     bytesOf(32, 0x78),
	})

	golden(t, "AMFDeriveKAMFRequest", &paka.AMFDeriveKAMFRequest{
		KSEAF: bytesOf(32, 0x79),
		SUPI:  "imsi-001010000000008",
		ABBA:  []byte{0x00, 0x00},
	})
	golden(t, "AMFDeriveKAMFResponse", &paka.AMFDeriveKAMFResponse{KAMF: bytesOf(32, 0x7A)})
}

func TestGoldenUDMMessages(t *testing.T) {
	golden(t, "GenerateAuthDataRequest/suci", &udm.GenerateAuthDataRequest{
		SUCI:               sampleSUCI(),
		ServingNetworkName: "5G:mnc001.mcc001.3gppnetwork.org",
	})
	golden(t, "GenerateAuthDataRequest/supi-reauth", &udm.GenerateAuthDataRequest{
		SUPI:               "imsi-001010000000009",
		ServingNetworkName: "5G:mnc001.mcc001.3gppnetwork.org",
	})
	golden(t, "GenerateAuthDataResponse", &udm.GenerateAuthDataResponse{
		SUPI:     "imsi-001010000000010",
		RAND:     bytesOf(16, 0x01),
		AUTN:     bytesOf(16, 0x02),
		XRESStar: bytesOf(16, 0x03),
		KAUSF:    bytesOf(32, 0x04),
	})
	golden(t, "ResyncRequest", &udm.ResyncRequest{
		SUPI: "imsi-001010000000011",
		RAND: bytesOf(16, 0x05),
		AUTS: bytesOf(14, 0x06),
	})
	golden(t, "Empty", &udm.Empty{})
}

func TestGoldenAUSFMessages(t *testing.T) {
	golden(t, "AuthenticateRequest/suci", &ausf.AuthenticateRequest{
		SUCI:               sampleSUCI(),
		ServingNetworkName: "5G:mnc001.mcc001.3gppnetwork.org",
	})
	golden(t, "AuthenticateRequest/supi-reauth", &ausf.AuthenticateRequest{
		SUPI:               "imsi-001010000000012",
		ServingNetworkName: "5G:mnc001.mcc001.3gppnetwork.org",
	})
	golden(t, "AuthenticateResponse", &ausf.AuthenticateResponse{
		AuthCtxID: "authctx-42",
		RAND:      bytesOf(16, 0x07),
		AUTN:      bytesOf(16, 0x08),
		HXRESStar: bytesOf(16, 0x09),
	})
	golden(t, "ConfirmRequest", &ausf.ConfirmRequest{
		AuthCtxID: "authctx-42",
		ResStar:   bytesOf(16, 0x0A),
	})
	golden(t, "ConfirmResponse", &ausf.ConfirmResponse{
		SUPI:  "imsi-001010000000013",
		KSEAF: bytesOf(32, 0x0B),
	})
	golden(t, "ResyncRequest", &ausf.ResyncRequest{
		AuthCtxID: "authctx-43",
		AUTS:      bytesOf(14, 0x0C),
	})
}

func TestGoldenUDRMessages(t *testing.T) {
	sub := udr.Subscriber{
		SUPI:     "imsi-001010000000014",
		K:        bytesOf(16, 0x0D),
		OPc:      bytesOf(16, 0x0E),
		SQN:      bytesOf(6, 0x0F),
		AMFField: []byte{0x80, 0x00},
	}
	golden(t, "Subscriber", &sub)
	golden(t, "ProvisionRequest", &udr.ProvisionRequest{Subscriber: sub})
	golden(t, "Empty", &udr.Empty{})
	golden(t, "NextAuthRequest", &udr.NextAuthRequest{SUPI: sub.SUPI})
	golden(t, "NextAuthResponse", &udr.NextAuthResponse{
		OPc:      bytesOf(16, 0x10),
		SQN:      bytesOf(6, 0x11),
		AMFField: []byte{0x80, 0x00},
	})
	golden(t, "NextAuthBatchRequest", &udr.NextAuthBatchRequest{SUPI: sub.SUPI, Count: 8})
	golden(t, "NextAuthBatchResponse", &udr.NextAuthBatchResponse{
		OPc:      bytesOf(16, 0x12),
		AMFField: []byte{0x80, 0x00},
		SQNs:     bytesOf(48, 0x13),
	})
	golden(t, "ResyncRequest", &udr.ResyncRequest{SUPI: sub.SUPI, SQNMS: bytesOf(6, 0x14)})
	golden(t, "GetRequest", &udr.GetRequest{SUPI: sub.SUPI})
	golden(t, "GetResponse", &udr.GetResponse{Subscriber: sub})
}

func TestGoldenSUCI(t *testing.T) {
	golden(t, "SUCI/profile-a", sampleSUCI())
	golden(t, "SUCI/null-scheme", &suci.SUCI{
		MCC:              "001",
		MNC:              "01",
		RoutingIndicator: "0000",
		Scheme:           suci.SchemeNull,
		HomeKeyID:        0,
		SchemeOutput:     []byte("0000000001"),
	})
}
