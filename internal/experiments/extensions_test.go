package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"shield5g/internal/simclock"
)

func TestAblationShape(t *testing.T) {
	cfg := quick
	r, err := Ablation(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Ablation: %v", err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := make(map[string]AblationRow)
	for _, row := range r.Rows {
		byName[row.Name] = row
	}
	container := byName["container"]
	baseline := byName["sgx (paper baseline)"]
	noPreheat := byName["sgx no-preheat"]
	exitless := byName["sgx exitless"]
	userTCP := byName["sgx user-level TCP"]
	both := byName["sgx exitless+userTCP"]

	// Exitless eliminates transitions and cuts latency substantially.
	if exitless.EnterPerRequest != 0 {
		t.Errorf("exitless EENTER/req = %d, want 0", exitless.EnterPerRequest)
	}
	if exitless.Stable.Median >= baseline.Stable.Median {
		t.Error("exitless not faster than baseline")
	}
	// User-level TCP cuts the syscall census and grows the TCB.
	if userTCP.EnterPerRequest >= baseline.EnterPerRequest {
		t.Error("user TCP did not reduce transitions")
	}
	if userTCP.TCBBytes <= baseline.TCBBytes {
		t.Error("user TCP did not grow the TCB")
	}
	// Combined, the module approaches container latency.
	if both.Stable.Median >= exitless.Stable.Median {
		t.Error("combined optimizations not fastest SGX config")
	}
	// No-preheat: cheaper load, slower operation.
	if noPreheat.Load >= baseline.Load {
		t.Error("no-preheat load not cheaper")
	}
	if noPreheat.Stable.Median <= baseline.Stable.Median {
		t.Error("no-preheat operation not slower")
	}
	// The container's effective TCB (host stack included) dwarfs the
	// enclave's.
	if container.TCBBytes <= baseline.TCBBytes {
		t.Error("container TCB not larger than enclave TCB")
	}

	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "exitless") {
		t.Fatal("render missing rows")
	}
}

func TestScaleShape(t *testing.T) {
	cfg := quick
	r, err := Scale(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Scale: %v", err)
	}
	if r.ServiceMedian <= 0 {
		t.Fatal("no service time")
	}
	if len(r.Points) != 12 {
		t.Fatalf("points = %d", len(r.Points))
	}

	get := func(replicas int, load float64) ScalePoint {
		for _, p := range r.Points {
			if p.Replicas == replicas && p.OfferedLoad == load {
				return p
			}
		}
		t.Fatalf("missing point %d/%v", replicas, load)
		return ScalePoint{}
	}

	// Throughput scales roughly linearly with replicas at fixed load.
	t1, t8 := get(1, 0.9), get(8, 0.9)
	if t8.Throughput < 6*t1.Throughput {
		t.Errorf("8-replica throughput %.0f not ~8x single %.0f", t8.Throughput, t1.Throughput)
	}
	// Queueing delay shrinks with pooling (more servers, same load).
	if t8.P95Sojourn >= t1.P95Sojourn {
		t.Errorf("8-replica p95 %v not below single-replica %v", t8.P95Sojourn, t1.P95Sojourn)
	}
	// Higher offered load means longer sojourns on the same pool.
	if get(2, 0.9).MeanSojourn <= get(2, 0.5).MeanSojourn {
		t.Error("higher load not slower")
	}
	// Utilization tracks offered load.
	for _, p := range r.Points {
		if p.Utilization < p.OfferedLoad-0.15 || p.Utilization > p.OfferedLoad+0.15 {
			t.Errorf("replicas=%d load=%.0f%%: utilization %.2f off target",
				p.Replicas, p.OfferedLoad*100, p.Utilization)
		}
		if p.MeanSojourn < r.ServiceMedian/2 {
			t.Errorf("sojourn below service time: %v", p.MeanSojourn)
		}
	}

	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "replicas") {
		t.Fatal("render missing table")
	}
}

func TestScaleSojournAboveService(t *testing.T) {
	// Sanity on the queueing invariant: sojourn >= service for every
	// simulated request implies mean sojourn >= mean service.
	samples := []time.Duration{time.Millisecond}
	p := simulateQueue(samples, 2, 0.5, 500, simclock.NewJitter(123))
	if p.MeanSojourn < time.Millisecond {
		t.Fatalf("mean sojourn %v below deterministic service time", p.MeanSojourn)
	}
	if p.Throughput <= 0 {
		t.Fatal("no throughput")
	}
}

func TestTEECompareShape(t *testing.T) {
	cfg := quick
	r, err := TEECompare(context.Background(), cfg)
	if err != nil {
		t.Fatalf("TEECompare: %v", err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	container, sgxRow, sevRow := r.Rows[0], r.Rows[1], r.Rows[2]

	// SEV avoids the transition tax: near-container latency.
	if float64(sevRow.Stable.Median) > 1.2*float64(container.Stable.Median) {
		t.Errorf("SEV stable %v not near container %v", sevRow.Stable.Median, container.Stable.Median)
	}
	if sevRow.EnterPerRequest != 0 {
		t.Errorf("SEV EENTER/req = %d", sevRow.EnterPerRequest)
	}
	// SGX pays latency but holds the smallest TCB.
	if sgxRow.Stable.Median <= sevRow.Stable.Median {
		t.Error("SGX not slower than SEV")
	}
	if sgxRow.TCBBytes >= sevRow.TCBBytes {
		t.Error("SGX TCB not below SEV TCB")
	}
	if sevRow.TCBBytes >= container.TCBBytes {
		t.Error("SEV TCB not below container effective TCB")
	}
	// Deployment time ordering: container < SEV << SGX.
	if !(container.Load < sevRow.Load && sevRow.Load < sgxRow.Load/3) {
		t.Errorf("load ordering violated: %v %v %v", container.Load, sevRow.Load, sgxRow.Load)
	}

	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "sev") {
		t.Fatal("render missing SEV row")
	}
}

func TestTable3ExtendedSweep(t *testing.T) {
	cfg := quick
	cfg.MaxUEs = 5
	r, err := Table3(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	if len(r.Rows) != 15 { // 3 modules x 5 UE counts
		t.Fatalf("rows = %d, want 15", len(r.Rows))
	}
	// EENTER grows by ~90 per extra UE at every depth of the sweep.
	for _, module := range []string{"eUDM", "eAUSF", "eAMF"} {
		byUE := make(map[int]uint64)
		for _, row := range r.Rows {
			if row.Module == module {
				byUE[row.UEs] = row.EENTERs
			}
		}
		for ues := 2; ues <= 5; ues++ {
			delta := byUE[ues] - byUE[ues-1]
			if delta < 80 || delta > 100 {
				t.Errorf("%s EENTER delta at %d UEs = %d, want ~90", module, ues, delta)
			}
		}
	}
}

// TestExperimentsDeterministic pins the reproducibility guarantee: the
// same seed and scale must render byte-identical output.
func TestExperimentsDeterministic(t *testing.T) {
	render := func() string {
		f9, err := Fig9(context.Background(), quick)
		if err != nil {
			t.Fatalf("Fig9: %v", err)
		}
		var buf bytes.Buffer
		f9.Render(&buf)
		Table2From(f9).Render(&buf)
		return buf.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatal("same seed produced different output")
	}
}
