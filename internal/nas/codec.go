package nas

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"shield5g/internal/crypto/suci"
	"shield5g/internal/intern"
)

// Codec errors.
var (
	// ErrTruncated reports a message shorter than its declared fields.
	ErrTruncated = errors.New("nas: truncated message")
	// ErrUnknownMessage reports an unrecognised message type.
	ErrUnknownMessage = errors.New("nas: unknown message type")
	// ErrBadDiscriminator reports a non-5GMM protocol discriminator.
	ErrBadDiscriminator = errors.New("nas: unexpected protocol discriminator")
)

// Security header types (TS 24.501 §9.3).
const (
	shtPlain     byte = 0x0
	shtProtected byte = 0x2 // integrity protected and ciphered
)

// Codec scratch pools. The writer and reader structs escape through the
// interface calls into the per-message codecs, so without pooling every
// Encode/Decode heap-allocates its state; per-UE NAS signalling is the
// registration hot path, so that state is recycled instead.
var (
	writerPool = sync.Pool{New: func() any { return new(writer) }}
	readerPool = sync.Pool{New: func() any { return new(reader) }}
)

// encodeCap pre-sizes Encode's single output allocation; the largest plain
// message (a RegistrationRequest carrying an ECIES SUCI) is ~70 bytes, so
// the append chain never regrows the buffer.
const encodeCap = 96

// Encode serialises a plain (unprotected) NAS message.
//
//shieldlint:hotpath
func Encode(m Message) ([]byte, error) {
	//shieldlint:ignore hotalloc the encoded buffer escapes into the NAS transport (AMF downlink, UE uplink) with no release point, so the allocation is the ownership-transfer contract; appendEncode is the reuse variant for callers that hold their own buffer
	return appendEncode(make([]byte, 0, encodeCap), m)
}

// appendEncode serialises m onto dst (for callers that own a reusable
// buffer, e.g. the protected-mode encryptor) and returns the extended
// slice. The encoding itself is allocation-free.
//
//shieldlint:hotpath
func appendEncode(dst []byte, m Message) ([]byte, error) {
	if m == nil {
		return nil, errors.New("nas: nil message")
	}
	if v, ok := m.(interface{ Validate() error }); ok {
		if err := v.Validate(); err != nil {
			return nil, err
		}
	}
	w := writerPool.Get().(*writer)
	w.buf = dst
	w.u8(EPD5GMM)
	w.u8(shtPlain)
	w.u8(byte(m.Type()))
	m.encodeBody(w)
	out := w.buf
	w.buf = nil
	writerPool.Put(w)
	return out, nil
}

// Decode parses a plain NAS message. Every field of the returned message
// is copied out of data, so the caller may reuse the buffer immediately.
//
//shieldlint:hotpath
func Decode(data []byte) (Message, error) {
	r := readerPool.Get().(*reader)
	*r = reader{buf: data}
	m, err := decodeMessage(r)
	*r = reader{}
	readerPool.Put(r)
	return m, err
}

// IsProtected reports whether data carries a security-protected NAS
// message (SHT=2). Receivers should branch on it and route protected
// PDUs straight to SecurityContext.Unprotect instead of calling Decode
// and recovering from its error, which costs two allocations per
// protected message on the hot path.
//
//shieldlint:hotpath
func IsProtected(data []byte) bool {
	return len(data) >= 2 && data[0] == EPD5GMM && data[1] == shtProtected
}

func decodeMessage(r *reader) (Message, error) {
	epd := r.u8()
	sht := r.u8()
	typ := MessageType(r.u8())
	if r.err != nil {
		return nil, fmt.Errorf("%w: header", ErrTruncated)
	}
	if epd != EPD5GMM {
		return nil, fmt.Errorf("%w: 0x%02X", ErrBadDiscriminator, epd)
	}
	if sht != shtPlain {
		return nil, fmt.Errorf("nas: message is security protected (SHT=%d); use a security context", sht)
	}
	m, err := newMessage(typ)
	if err != nil {
		return nil, err
	}
	if err := m.decodeBody(r); err != nil {
		return nil, err
	}
	if r.off != len(r.buf) {
		return nil, fmt.Errorf("nas: %d trailing bytes after %s", len(r.buf)-r.off, typ)
	}
	return m, nil
}

func newMessage(t MessageType) (Message, error) {
	switch t {
	case MsgRegistrationRequest:
		return &RegistrationRequest{}, nil
	case MsgRegistrationAccept:
		return &RegistrationAccept{}, nil
	case MsgRegistrationComplete:
		return &RegistrationComplete{}, nil
	case MsgDeregistrationRequest:
		return &DeregistrationRequest{}, nil
	case MsgAuthenticationRequest:
		return &AuthenticationRequest{}, nil
	case MsgAuthenticationResponse:
		return &AuthenticationResponse{}, nil
	case MsgAuthenticationReject:
		return &AuthenticationReject{}, nil
	case MsgAuthenticationFailure:
		return &AuthenticationFailure{}, nil
	case MsgIdentityRequest:
		return &IdentityRequest{}, nil
	case MsgIdentityResponse:
		return &IdentityResponse{}, nil
	case MsgSecurityModeCommand:
		return &SecurityModeCommand{}, nil
	case MsgSecurityModeComplete:
		return &SecurityModeComplete{}, nil
	case MsgPDUSessionEstRequest:
		return &PDUSessionEstablishmentRequest{}, nil
	case MsgPDUSessionEstAccept:
		return &PDUSessionEstablishmentAccept{}, nil
	default:
		return nil, fmt.Errorf("%w: 0x%02X", ErrUnknownMessage, byte(t))
	}
}

// --- body codecs ---

func (m *RegistrationRequest) encodeBody(w *writer) {
	w.u8(m.RegistrationType)
	w.u8(m.NgKSI)
	encodeIdentity(w, &m.Identity)
	w.lv(m.Capabilities)
}

func (m *RegistrationRequest) decodeBody(r *reader) error {
	m.RegistrationType = r.u8()
	m.NgKSI = r.u8()
	if err := decodeIdentity(r, &m.Identity); err != nil {
		return err
	}
	m.Capabilities = r.lv()
	return r.err
}

// Validate checks the embedded identity.
func (m *RegistrationRequest) Validate() error { return m.Identity.Validate() }

func (m *AuthenticationRequest) encodeBody(w *writer) {
	w.u8(m.NgKSI)
	w.lv(m.ABBA)
	w.raw(m.RAND[:])
	w.raw(m.AUTN[:])
}

func (m *AuthenticationRequest) decodeBody(r *reader) error {
	m.NgKSI = r.u8()
	m.ABBA = r.lv()
	copy(m.RAND[:], r.take(16))
	copy(m.AUTN[:], r.take(16))
	return r.err
}

func (m *AuthenticationResponse) encodeBody(w *writer) { w.raw(m.ResStar[:]) }

func (m *AuthenticationResponse) decodeBody(r *reader) error {
	copy(m.ResStar[:], r.take(16))
	return r.err
}

func (m *AuthenticationFailure) encodeBody(w *writer) {
	w.u8(m.Cause)
	w.lv(m.AUTS)
}

func (m *AuthenticationFailure) decodeBody(r *reader) error {
	m.Cause = r.u8()
	m.AUTS = r.lv()
	return r.err
}

func (*AuthenticationReject) encodeBody(*writer)       {}
func (*AuthenticationReject) decodeBody(*reader) error { return nil }
func (*SecurityModeComplete) encodeBody(*writer)       {}
func (*SecurityModeComplete) decodeBody(*reader) error { return nil }
func (*RegistrationComplete) encodeBody(*writer)       {}
func (*RegistrationComplete) decodeBody(*reader) error { return nil }

func (m *IdentityRequest) encodeBody(w *writer) { w.u8(m.IdentityType) }

func (m *IdentityRequest) decodeBody(r *reader) error {
	m.IdentityType = r.u8()
	return r.err
}

func (m *IdentityResponse) encodeBody(w *writer) { encodeIdentity(w, &m.Identity) }

func (m *IdentityResponse) decodeBody(r *reader) error {
	return decodeIdentity(r, &m.Identity)
}

func (m *SecurityModeCommand) encodeBody(w *writer) {
	w.u8(m.NgKSI)
	w.u8(m.IntegrityAlg)
	w.u8(m.CipheringAlg)
}

func (m *SecurityModeCommand) decodeBody(r *reader) error {
	m.NgKSI = r.u8()
	m.IntegrityAlg = r.u8()
	m.CipheringAlg = r.u8()
	return r.err
}

func (m *RegistrationAccept) encodeBody(w *writer) { encodeGUTI(w, &m.GUTI) }

func (m *RegistrationAccept) decodeBody(r *reader) error { return decodeGUTI(r, &m.GUTI) }

func (m *DeregistrationRequest) encodeBody(w *writer) { w.u8(m.NgKSI) }

func (m *DeregistrationRequest) decodeBody(r *reader) error {
	m.NgKSI = r.u8()
	return r.err
}

func (m *PDUSessionEstablishmentRequest) encodeBody(w *writer) {
	w.u8(m.SessionID)
	w.str(m.DNN)
}

func (m *PDUSessionEstablishmentRequest) decodeBody(r *reader) error {
	m.SessionID = r.u8()
	m.DNN = r.str()
	return r.err
}

func (m *PDUSessionEstablishmentAccept) encodeBody(w *writer) {
	w.u8(m.SessionID)
	w.str(m.UEAddress)
}

func (m *PDUSessionEstablishmentAccept) decodeBody(r *reader) error {
	m.SessionID = r.u8()
	m.UEAddress = r.str()
	return r.err
}

func encodeIdentity(w *writer, id *MobileIdentity) {
	switch {
	case id.SUCI != nil:
		w.u8(IdentityTypeSUCI)
		s := id.SUCI
		w.str(s.MCC)
		w.str(s.MNC)
		w.str(s.RoutingIndicator)
		w.u8(s.Scheme)
		w.u8(s.HomeKeyID)
		w.lv16(s.SchemeOutput)
	case id.GUTI != nil:
		w.u8(IdentityTypeGUTI)
		encodeGUTI(w, id.GUTI)
	}
}

func decodeIdentity(r *reader, id *MobileIdentity) error {
	switch t := r.u8(); t {
	case IdentityTypeSUCI:
		s := &suci.SUCI{}
		s.MCC = r.internStr()
		s.MNC = r.internStr()
		s.RoutingIndicator = r.internStr()
		s.Scheme = r.u8()
		s.HomeKeyID = r.u8()
		s.SchemeOutput = r.lv16()
		id.SUCI = s
		return r.err
	case IdentityTypeGUTI:
		g := &GUTI{}
		if err := decodeGUTI(r, g); err != nil {
			return err
		}
		id.GUTI = g
		return r.err
	default:
		if r.err != nil {
			return r.err
		}
		return fmt.Errorf("nas: unknown mobile identity type %d", t)
	}
}

func encodeGUTI(w *writer, g *GUTI) {
	w.str(g.MCC)
	w.str(g.MNC)
	w.u8(g.AMFRegionID)
	w.u16(g.AMFSetID)
	w.u8(g.AMFPointer)
	w.u32(g.TMSI)
}

func decodeGUTI(r *reader, g *GUTI) error {
	g.MCC = r.internStr()
	g.MNC = r.internStr()
	g.AMFRegionID = r.u8()
	g.AMFSetID = r.u16()
	g.AMFPointer = r.u8()
	g.TMSI = r.u32()
	return r.err
}

// --- byte-level helpers ---

type writer struct{ buf []byte }

func (w *writer) u8(b byte)     { w.buf = append(w.buf, b) }
func (w *writer) u16(v uint16)  { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32)  { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) raw(b []byte)  { w.buf = append(w.buf, b...) }
func (w *writer) lv(b []byte)   { w.u8(byte(len(b))); w.raw(b) }
func (w *writer) lv16(b []byte) { w.u16(uint16(len(b))); w.raw(b) }
func (w *writer) str(s string)  { w.lv([]byte(s)) }

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, r.off, len(r.buf))
		return nil
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) lv() []byte {
	n := int(r.u8())
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

func (r *reader) lv16() []byte {
	n := int(r.u16())
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// str decodes a length-prefixed string in one copy (take aliases the
// input; the string conversion is the copy that detaches it).
func (r *reader) str() string {
	n := int(r.u8())
	return string(r.take(n))
}

// internStr decodes a length-prefixed string through the bounded intern
// table — for protocol constants only (PLMN digits, routing
// indicators), never per-subscriber values like SUPIs.
//
//shieldlint:hotpath
func (r *reader) internStr() string {
	n := int(r.u8())
	return intern.Bytes(r.take(n))
}
