package paka

import (
	"crypto/hmac"
	"errors"
	"fmt"
	"sync"

	"shield5g/internal/crypto/kdf"
	"shield5g/internal/crypto/milenage"
)

// avScratch holds the MILENAGE outputs of one AV mint: the OUT1 block
// (MAC-A || MAC-S) and the OUT2..4 backing that RES/CK/IK/AK alias.
// Pooling it keeps GenerateAVCachedInto — the batch refill inner loop —
// free of per-mint output allocation.
type avScratch struct {
	out1 [16]byte
	out2 [48]byte
}

var avScratchPool = sync.Pool{New: func() any { return new(avScratch) }}

// putAVScratch scrubs before recycling: CK, IK and AK are key material
// and pooled memory must not carry them between mints — the same
// discipline milenage's own scratch pool and hashpool.PutHMAC apply.
func putAVScratch(s *avScratch) {
	*s = avScratch{}
	avScratchPool.Put(s)
}

// AKA errors.
var (
	// ErrUnknownSubscriber reports a SUPI with no provisioned key.
	ErrUnknownSubscriber = errors.New("paka: unknown subscriber")
	// ErrResyncMAC reports an AUTS whose MAC-S does not verify.
	ErrResyncMAC = errors.New("paka: AUTS MAC-S verification failed")
)

// GenerateAV executes the eUDM P-AKA function set: MILENAGE f1 and f2345
// over the subscriber key, AUTN assembly, and the XRES*/K_AUSF derivations
// (the "Derive/Execute" column of Table I for the eUDM module).
func GenerateAV(k []byte, req *UDMGenerateAVRequest) (*UDMGenerateAVResponse, error) {
	return GenerateAVCached(nil, k, req)
}

// AVBackingBytes is the combined size of one AV's four response fields
// (RAND 16 || AUTN 16 || XRES* 16 || K_AUSF 32).
const AVBackingBytes = 80

// AVInto carves the canonical single-backing field layout out of buf,
// which must be AVBackingBytes long. The full-slice caps keep a later
// append on one field from spilling into the next.
//
//shieldlint:hotpath
func AVInto(buf []byte, resp *UDMGenerateAVResponse) {
	resp.RAND = buf[0:16:16]
	resp.AUTN = buf[16:32:32]
	resp.XRESStar = buf[32:48:48]
	resp.KAUSF = buf[48:80:80]
}

// GenerateAVCached is GenerateAV with a per-subscriber key-schedule cache:
// the two AES key expansions milenage.New performs are reused across every
// AV for the same (SUPI, K, OPc). A nil cache builds fresh schedules,
// which is exactly the uncached seed behaviour.
//
//shieldlint:hotpath
func GenerateAVCached(cache *milenage.Cache, k []byte, req *UDMGenerateAVRequest) (*UDMGenerateAVResponse, error) {
	// One backing carries all four response fields.
	//shieldlint:ignore hotalloc single caller-owned backing per minted AV; batch mints share one via AVInto
	out := make([]byte, AVBackingBytes)
	resp := &UDMGenerateAVResponse{}
	AVInto(out, resp)
	if err := GenerateAVCachedInto(cache, k, req, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// GenerateAVCachedInto derives an AV into resp, whose four fields must
// already point at caller-owned backings of the canonical sizes (use
// AVInto). The batch mint derives a whole refill into one backing array
// this way instead of allocating per vector.
//
//shieldlint:hotpath
func GenerateAVCachedInto(cache *milenage.Cache, k []byte, req *UDMGenerateAVRequest, resp *UDMGenerateAVResponse) error {
	c, err := cache.Get(req.SUPI, k, req.OPc)
	if err != nil {
		return fmt.Errorf("paka: eUDM: %w", err)
	}
	s := avScratchPool.Get().(*avScratch)
	defer putAVScratch(s)
	if err := c.F1Into(s.out1[:], req.RAND, req.SQN, req.AMFID); err != nil {
		return fmt.Errorf("paka: eUDM f1: %w", err)
	}
	res, ck, ik, ak, err := c.F2345Into(s.out2[:], req.RAND)
	if err != nil {
		return fmt.Errorf("paka: eUDM f2345: %w", err)
	}
	copy(resp.RAND, req.RAND)

	// AUTN = (SQN XOR AK) || AMF || MAC-A, assembled in place. F1Into has
	// already validated the SQN and AMF lengths; AK is always 6 bytes.
	sqnAK := resp.AUTN[0:6]
	for i := range sqnAK {
		sqnAK[i] = req.SQN[i] ^ ak[i]
	}
	copy(resp.AUTN[6:8], req.AMFID)
	copy(resp.AUTN[8:16], s.out1[:milenage.MACLen])

	if err := kdf.ResStarInto(resp.XRESStar, ck, ik, req.SNN, req.RAND, res); err != nil {
		return fmt.Errorf("paka: eUDM XRES*: %w", err)
	}
	if err := kdf.KAUSFInto(resp.KAUSF, ck, ik, req.SNN, sqnAK); err != nil {
		return fmt.Errorf("paka: eUDM K_AUSF: %w", err)
	}
	return nil
}

// Resync executes the eUDM-side AUTS verification (TS 33.102 §6.3.5): it
// recovers SQN_MS with AK* = f5*(RAND) and checks MAC-S = f1*(SQN_MS,
// AMF*=0x0000). This also uses the long-term key and therefore belongs
// inside the enclave.
func Resync(k []byte, req *UDMResyncRequest) (*UDMResyncResponse, error) {
	return ResyncCached(nil, k, req)
}

// ResyncCached is Resync sharing the same key-schedule cache as
// GenerateAVCached; a nil cache builds fresh schedules.
func ResyncCached(cache *milenage.Cache, k []byte, req *UDMResyncRequest) (*UDMResyncResponse, error) {
	if len(req.AUTS) != 14 {
		return nil, fmt.Errorf("paka: AUTS length %d, want 14", len(req.AUTS))
	}
	c, err := cache.Get(req.SUPI, k, req.OPc)
	if err != nil {
		return nil, fmt.Errorf("paka: eUDM resync: %w", err)
	}
	akStar, err := c.F5Star(req.RAND)
	if err != nil {
		return nil, fmt.Errorf("paka: eUDM f5*: %w", err)
	}
	concealed := req.AUTS[:6]
	macS := req.AUTS[6:]
	sqnMS, err := kdf.XorSQNAK(concealed, akStar)
	if err != nil {
		return nil, fmt.Errorf("paka: eUDM resync: %w", err)
	}
	// The resynchronisation AMF is all-zero (TS 33.102 §6.3.3).
	wantMAC, err := c.F1Star(req.RAND, sqnMS, []byte{0x00, 0x00})
	if err != nil {
		return nil, fmt.Errorf("paka: eUDM f1*: %w", err)
	}
	if !hmac.Equal(macS, wantMAC) {
		return nil, ErrResyncMAC
	}
	return &UDMResyncResponse{SQNMS: sqnMS}, nil
}

// DeriveSE executes the eAUSF P-AKA function set: HXRES* hashing and
// K_SEAF derivation.
func DeriveSE(req *AUSFDeriveSERequest) (*AUSFDeriveSEResponse, error) {
	// Single backing for both derived outputs, the same pattern
	// GenerateAVCached uses for its response fields.
	buf := make([]byte, kdf.KeyLen128+kdf.KeyLen256)
	hxres, kseaf := buf[:kdf.KeyLen128:kdf.KeyLen128], buf[kdf.KeyLen128:]
	if err := kdf.HXResStarInto(hxres, req.RAND, req.XRESStar); err != nil {
		return nil, fmt.Errorf("paka: eAUSF HXRES*: %w", err)
	}
	if err := kdf.KSEAFInto(kseaf, req.KAUSF, req.SNN); err != nil {
		return nil, fmt.Errorf("paka: eAUSF K_SEAF: %w", err)
	}
	return &AUSFDeriveSEResponse{HXRESStar: hxres, KSEAF: kseaf}, nil
}

// DeriveKAMF executes the eAMF P-AKA function: K_AMF derivation from
// K_SEAF.
func DeriveKAMF(req *AMFDeriveKAMFRequest) (*AMFDeriveKAMFResponse, error) {
	kamf, err := kdf.KAMF(req.KSEAF, req.SUPI, req.ABBA)
	if err != nil {
		return nil, fmt.Errorf("paka: eAMF K_AMF: %w", err)
	}
	return &AMFDeriveKAMFResponse{KAMF: kamf}, nil
}
