package suci

// Binary SBI field codec for SUCI values nested inside the UDM and AUSF
// authentication messages (see internal/sbi/codec). The SUCI travels on
// the registration hot path once per UE, inside GenerateAuthData and
// Authenticate requests.

import "shield5g/internal/sbi/codec"

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (s *SUCI) AppendBinary(dst []byte) []byte {
	dst = codec.AppendString(dst, s.MCC)
	dst = codec.AppendString(dst, s.MNC)
	dst = codec.AppendString(dst, s.RoutingIndicator)
	dst = codec.AppendByte(dst, s.Scheme)
	dst = codec.AppendByte(dst, s.HomeKeyID)
	return codec.AppendBytes(dst, s.SchemeOutput)
}

// DecodeBinary implements codec.Unmarshaler. SchemeOutput is compacted
// into its own backing: a decoded SUCI outlives the transport body (the
// AUSF stores it in its session, the UDM hands it to deconcealment).
//
//shieldlint:hotpath
func (s *SUCI) DecodeBinary(r *codec.Reader) error {
	s.MCC = r.InternString()
	s.MNC = r.InternString()
	s.RoutingIndicator = r.InternString()
	s.Scheme = r.Byte()
	s.HomeKeyID = r.Byte()
	s.SchemeOutput = r.Bytes()
	if err := r.Err(); err != nil {
		return err
	}
	codec.Compact(&s.SchemeOutput)
	return nil
}
