package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"shield5g/internal/deploy"
	"shield5g/internal/gnb"
	"shield5g/internal/metrics"
	"shield5g/internal/paka"
	"shield5g/internal/ue"
)

// BatchingPoint is one configuration of the boundary-amortization sweep.
type BatchingPoint struct {
	Label string
	// BatchSize is the keep-alive pipelining depth (0 = a connection per
	// module request, the seed behaviour); PoolDepth is the UDM's AV
	// precomputation ring depth (0 = pool disabled).
	BatchSize int
	PoolDepth int

	Registered int
	Failed     int
	// MedianSetup/P99Setup summarize the per-registration setup time.
	MedianSetup time.Duration
	P99Setup    time.Duration
	// StableRS is the median stable response time of the eUDM module as
	// seen by the UDM VNF (the paper's R_S).
	StableRS time.Duration
	// TransPerReg is the enclave transition count (EENTER+EEXIT, all
	// three modules) per registration; Reduction is its drop vs the
	// unbatched baseline.
	TransPerReg float64
	Reduction   float64
	// Pool counters (zero when the pool is disabled).
	PoolHits    uint64
	PoolMisses  uint64
	PoolRefills uint64
}

// BatchingResult is the keep-alive batching × AV-pool sweep.
type BatchingResult struct {
	UEs    int
	Points []BatchingPoint

	// TransitionsPerReg publishes the best (deepest amortization) point's
	// census as a live gauge next to the baseline's.
	BaselineTransPerReg metrics.Gauge
	BestTransPerReg     metrics.Gauge
}

// Batching sweeps the two boundary-amortization mechanisms against a
// shielded slice: keep-alive request batching (one accept + TLS handshake
// per BatchSize module requests) and the UDM's AV precomputation pool
// (one batch ECALL mints PoolDepth vectors). Every point deploys a fresh
// same-seed slice and drives the same UE population sequentially, so the
// points differ only in amortization settings and the transition census
// is directly comparable.
func Batching(ctx context.Context, cfg Config) (*BatchingResult, error) {
	n := cfg.iterations()
	if n < 16 {
		n = 16
	}
	if n > 200 {
		n = 200
	}

	points := []struct {
		label string
		batch int
		depth int
	}{
		{"unbatched", 0, 0},
		{"keepalive-4", 4, 0},
		{"keepalive-8", 8, 0},
		{"keepalive-16", 16, 0},
		{"avpool-8", 0, 8},
		{"keepalive-8+avpool-8", 8, 8},
	}

	result := &BatchingResult{UEs: n}
	for _, pc := range points {
		s, err := deploy.NewSlice(ctx, deploy.SliceConfig{
			Isolation:   paka.SGX,
			Seed:        cfg.Seed + 47,
			AVPoolDepth: pc.depth,
		})
		if err != nil {
			return nil, err
		}
		point, err := batchingPoint(ctx, s, n, pc.batch)
		s.Stop()
		if err != nil {
			return nil, err
		}
		point.Label = pc.label
		point.PoolDepth = pc.depth
		result.Points = append(result.Points, point)
	}

	base := result.Points[0].TransPerReg
	best := base
	for i := range result.Points {
		p := &result.Points[i]
		if base > 0 {
			p.Reduction = 1 - p.TransPerReg/base
		}
		if p.TransPerReg < best {
			best = p.TransPerReg
		}
	}
	result.BaselineTransPerReg.Set(base)
	result.BestTransPerReg.Set(best)
	return result, nil
}

func batchingPoint(ctx context.Context, s *deploy.Slice, n, batch int) (BatchingPoint, error) {
	// One warm registration keeps the enclave warm-up and cold handshakes
	// out of the measured census (same protocol as the massreg sweep).
	warm, err := sliceSubscriber(ctx, s, "0000009999")
	if err != nil {
		return BatchingPoint{}, err
	}
	if _, err := s.GNB.RegisterUE(ctx, warm); err != nil {
		return BatchingPoint{}, err
	}
	s.RemoteUDM.Response().MarkWarm()
	transBefore := sliceTransitions(s)

	res, err := s.GNB.RegisterManyWith(ctx, gnb.MassOptions{
		N: n,
		NewUE: func(i int) (*ue.UE, error) {
			return sliceSubscriber(ctx, s, fmt.Sprintf("%010d", 6000+i))
		},
		BatchSize: batch,
	})
	if err != nil {
		return BatchingPoint{}, err
	}
	setups := res.SetupTimes.Summarize()
	point := BatchingPoint{
		BatchSize:   batch,
		Registered:  res.Registered,
		Failed:      res.Failed,
		MedianSetup: setups.Median,
		P99Setup:    setups.P99,
		StableRS:    s.RemoteUDM.Response().Stable.Summarize().Median,
	}
	if res.Registered > 0 {
		point.TransPerReg = float64(sliceTransitions(s)-transBefore) / float64(res.Registered)
	}
	pool := s.UDM.AVPoolStats()
	point.PoolHits = pool.Hits
	point.PoolMisses = pool.Misses
	point.PoolRefills = pool.Refills
	return point, nil
}

// Render prints the sweep table.
func (r *BatchingResult) Render(w io.Writer) {
	fprintf(w, "Enclave boundary amortization: keep-alive batching × AV precomputation pool (%d UEs, sequential)\n", r.UEs)
	fprintf(w, "%-22s %6s %5s %6s %6s %10s %10s %10s %8s %7s %12s\n",
		"configuration", "batch", "pool", "ok", "fail", "median", "p99", "R_S med", "trans/r", "drop", "hits/miss")
	for _, p := range r.Points {
		fprintf(w, "%-22s %6d %5d %6d %6d %10s %10s %10s %8.1f %6.1f%% %6d/%d\n",
			p.Label, p.BatchSize, p.PoolDepth, p.Registered, p.Failed,
			p.MedianSetup.Round(10*time.Microsecond), p.P99Setup.Round(10*time.Microsecond),
			p.StableRS.Round(time.Microsecond),
			p.TransPerReg, p.Reduction*100, p.PoolHits, p.PoolMisses)
	}
	fprintf(w, "transitions/registration gauges: baseline %.1f → best %.1f\n",
		r.BaselineTransPerReg.Value(), r.BestTransPerReg.Value())
	fprintf(w, "(keep-alive sessions pay the accept/TLS/teardown census once per batch;\n")
	fprintf(w, " the AV pool turns the eUDM's ~90-transition request into one batch ECALL pair.\n")
	fprintf(w, " R_S reads 0 under the pool: refills are maintenance crossings, excluded from\n")
	fprintf(w, " the per-request response-time distribution by design)\n")
}

// WriteCSV emits the sweep series.
func (r *BatchingResult) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Label,
			fmt.Sprintf("%d", p.BatchSize),
			fmt.Sprintf("%d", p.PoolDepth),
			fmt.Sprintf("%d", p.Registered),
			fmt.Sprintf("%d", p.Failed),
			f(float64(p.MedianSetup) / float64(time.Millisecond)),
			f(float64(p.P99Setup) / float64(time.Millisecond)),
			f(float64(p.StableRS) / float64(time.Millisecond)),
			f(p.TransPerReg),
			f(p.Reduction),
			fmt.Sprintf("%d", p.PoolHits),
			fmt.Sprintf("%d", p.PoolMisses),
			fmt.Sprintf("%d", p.PoolRefills),
		})
	}
	return writeCSV(w, []string{
		"configuration", "batch_size", "pool_depth", "registered", "failed",
		"median_setup_ms", "p99_setup_ms", "stable_rs_ms",
		"transitions_per_reg", "reduction", "pool_hits", "pool_misses", "pool_refills",
	}, rows)
}
