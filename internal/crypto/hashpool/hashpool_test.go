package hashpool

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"math/rand"
	"testing"
)

// TestHMACMatchesStdlib pins the manual HMAC-SHA-256 to crypto/hmac over
// keys spanning the short/exact/over-block-size cases and messages of
// assorted lengths, including multi-Write splits.
func TestHMACMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, keyLen := range []int{0, 1, 16, 32, 63, 64, 65, 128, 200} {
		key := make([]byte, keyLen)
		rng.Read(key)
		for _, msgLen := range []int{0, 1, 31, 32, 64, 100, 1000} {
			msg := make([]byte, msgLen)
			rng.Read(msg)

			want := func() []byte {
				m := hmac.New(sha256.New, key)
				m.Write(msg)
				return m.Sum(nil)
			}()

			m := GetHMAC(key)
			m.Write(msg)
			got := m.Sum(nil)
			PutHMAC(m)
			if !bytes.Equal(got, want) {
				t.Fatalf("keyLen=%d msgLen=%d: HMAC mismatch\n got %x\nwant %x", keyLen, msgLen, got, want)
			}

			// Split writes and a dst prefix must not change the tag.
			m = GetHMAC(key)
			half := msgLen / 2
			m.Write(msg[:half])
			m.Write(msg[half:])
			prefixed := m.Sum([]byte{0xAA})
			PutHMAC(m)
			if prefixed[0] != 0xAA || !bytes.Equal(prefixed[1:], want) {
				t.Fatalf("keyLen=%d msgLen=%d: split-write/dst-prefix mismatch", keyLen, msgLen)
			}
		}
	}
}

// TestHMACRekeyAndReset verifies that one state produces correct tags
// across SetKey and Reset cycles — the property pooling depends on.
func TestHMACRekeyAndReset(t *testing.T) {
	keyA := []byte("key-a")
	keyB := bytes.Repeat([]byte{0x7F}, 80) // forces the hashed-key path
	msg := []byte("registration request")

	ref := func(key []byte) []byte {
		m := hmac.New(sha256.New, key)
		m.Write(msg)
		return m.Sum(nil)
	}

	m := NewHMAC(keyA)
	m.Write(msg)
	if !bytes.Equal(m.Sum(nil), ref(keyA)) {
		t.Fatal("first key: mismatch")
	}
	m.Reset()
	m.Write(msg)
	if !bytes.Equal(m.Sum(nil), ref(keyA)) {
		t.Fatal("after Reset: mismatch")
	}
	m.SetKey(keyB)
	m.Write(msg)
	if !bytes.Equal(m.Sum(nil), ref(keyB)) {
		t.Fatal("after SetKey: mismatch")
	}
}

// TestPooledSHA256 verifies pooled digests match fresh ones across reuse.
func TestPooledSHA256(t *testing.T) {
	msg := []byte("suci ephemeral shared secret")
	want := sha256.Sum256(msg)
	for i := 0; i < 3; i++ {
		h := GetSHA256()
		h.Write(msg)
		if got := h.Sum(nil); !bytes.Equal(got, want[:]) {
			t.Fatalf("round %d: pooled sha256 mismatch", i)
		}
		PutSHA256(h)
	}
}

func TestConcurrentUseOfDistinctStates(t *testing.T) {
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			key := []byte{byte(g)}
			msg := bytes.Repeat([]byte{byte(g)}, 100)
			ref := hmac.New(sha256.New, key)
			ref.Write(msg)
			want := ref.Sum(nil)
			for i := 0; i < 200; i++ {
				m := GetHMAC(key)
				m.Write(msg)
				got := m.Sum(nil)
				PutHMAC(m)
				if !bytes.Equal(got, want) {
					done <- bytes.ErrTooLarge // any sentinel error
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal("concurrent pooled HMAC produced a wrong tag")
		}
	}
}
