package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism enforces the replay contract of DESIGN.md §5: simulated
// paths measure virtual time through simclock and draw noise from
// seeded Jitter streams, never from the wall clock or the global
// math/rand state. Wall-clock use is legal only where annotated
// (//shieldlint:wallclock <why>) — the realtime Realizer's calibrated
// spin-wait, real mTLS certificate lifetimes, and the wall-vs-virtual
// throughput split reported by the mass-registration driver.
//
// The analyzer also polices spin discipline in //shieldlint:hotpath
// functions: an unbounded `for { ... }` there must contain a
// scheduling point — a runtime.Gosched call, a select statement, or a
// channel receive. The switchless ring's producers and dispatcher live
// on such loops; a yield-free one can livelock GOMAXPROCS=1 replays
// (the deterministic test configuration) and burns a core for timing
// the virtual clock never observes, so the spin budget silently stops
// matching the costmodel's accounted one.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock time and global math/rand on simulated paths; hotpath spin loops must yield",
	Run:  runDeterminism,
}

// bannedTimeFuncs are the package-level time functions that read or
// wait on the wall clock. Conversions and Duration/Time methods are
// pure and stay allowed.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// allowedRandFuncs construct seeded generators; everything else at
// math/rand package level touches the shared global source.
var allowedRandFuncs = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

func runDeterminism(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods (e.g. *rand.Rand, time.Duration) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if bannedTimeFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock on a simulated path; use the simclock virtual clock (Env.Clock / Clock.Now) or annotate the site: //shieldlint:wallclock <why>",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !allowedRandFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"%s.%s draws from the global math/rand source, which breaks seeded replay; use a seeded generator (simclock.Jitter / Jitter.Stream) or annotate the site: //shieldlint:ignore determinism <why>",
						fn.Pkg().Path(), fn.Name())
				}
			}
			return true
		})
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpathMarked(fd.Doc) {
				continue
			}
			checkSpinLoops(pass, info, fd)
		}
	}
	return nil
}

// checkSpinLoops flags unbounded for-loops without a scheduling point
// inside one //shieldlint:hotpath function.
func checkSpinLoops(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if hasSchedulingPoint(info, loop.Body) {
			return true
		}
		pass.Reportf(loop.Pos(),
			"unbounded for-loop spins without a scheduling point but %s is marked //shieldlint:hotpath; every retry iteration must yield (runtime.Gosched), select, or block on a channel receive so single-proc replays cannot livelock — or annotate the loop: //shieldlint:ignore determinism <why>",
			fd.Name.Name)
		return true
	})
}

// hasSchedulingPoint reports whether body contains a runtime.Gosched
// call, a select statement, or a channel receive. The walk is syntactic
// and includes nested loops (an inner loop's yield covers the outer
// retry) but not nested function literals, whose bodies only run if
// something calls them.
func hasSchedulingPoint(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			found = true
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
				return false
			}
		case *ast.CallExpr:
			if fn := calleeOf(info, n); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "runtime" && fn.Name() == "Gosched" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
