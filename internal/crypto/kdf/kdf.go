// Package kdf implements the 3GPP key derivation functions used by 5G-AKA:
// the generic HMAC-SHA-256 KDF of TS 33.220 Annex B and the specific
// derivations of TS 33.501 Annex A that produce the 5G key hierarchy
// (K_AUSF, K_SEAF, K_AMF, NAS keys) and the authentication responses
// (RES*/XRES*, HXRES*).
//
// These are exactly the derivations the paper's P-AKA modules execute
// inside SGX enclaves: the eUDM module derives K_AUSF and XRES*, the eAUSF
// module derives HXRES* and K_SEAF, and the eAMF module derives K_AMF.
package kdf

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"

	"shield5g/internal/crypto/hashpool"
)

// Function code values from TS 33.501 Annex A.
const (
	fcKAUSF   = 0x6A
	fcResStar = 0x6B
	fcKSEAF   = 0x6C
	fcKAMF    = 0x6D
	fcAlgoKey = 0x69
	fcKGNB    = 0x6E
)

// Key sizes in bytes.
const (
	KeyLen256 = 32 // K_AUSF, K_SEAF, K_AMF, K_gNB
	KeyLen128 = 16 // RES*, HXRES*, NAS algorithm keys
)

// AlgorithmType distinguishes the protected-traffic type in NAS/AS
// algorithm key derivation (TS 33.501 Annex A.8).
type AlgorithmType byte

const (
	// AlgoNASEncryption selects NAS confidentiality keys.
	AlgoNASEncryption AlgorithmType = 0x01
	// AlgoNASIntegrity selects NAS integrity keys.
	AlgoNASIntegrity AlgorithmType = 0x02
)

// sBuilderPool recycles the FC||P0||L0||... input string built per KDF
// invocation; SNN-sized inputs fit the 128-byte seed capacity.
var sBuilderPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 128)
	return &b
}}

// Generic computes the TS 33.220 Annex B KDF:
//
//	HMAC-SHA-256(key, FC || P0 || L0 || P1 || L1 || ...)
//
// where each Li is the 16-bit big-endian length of Pi. The returned
// 32-byte slice is freshly allocated and owned by the caller. Generic is
// the one-shot convenience entry point; nothing on the registration hot
// path calls it — per-registration derivations go through AppendGeneric
// or GenericInto, which reuse caller-owned backings.
func Generic(key []byte, fc byte, params ...[]byte) []byte {
	return AppendGeneric(make([]byte, 0, sha256.Size), key, fc, params...)
}

// AppendGeneric appends the 32-byte KDF output to dst and returns the
// extended slice. The HMAC state and input scratch come from pools, so a
// derivation that reuses dst performs no heap allocation.
//
//shieldlint:hotpath
func AppendGeneric(dst, key []byte, fc byte, params ...[]byte) []byte {
	sp := sBuilderPool.Get().(*[]byte)
	s := append((*sp)[:0], fc)
	for _, p := range params {
		s = append(s, p...)
		s = binary.BigEndian.AppendUint16(s, uint16(len(p)))
	}
	mac := hashpool.GetHMAC(key)
	mac.Write(s)
	dst = mac.Sum(dst)
	hashpool.PutHMAC(mac)
	*sp = s[:0]
	sBuilderPool.Put(sp)
	return dst
}

// GenericInto computes the TS 33.220 KDF directly into dst, which must
// hold at least 32 bytes. Unlike AppendGeneric, dst never crosses a
// hash.Hash interface boundary, so a stack-allocated or caller-owned dst
// performs no heap allocation at all.
//
//shieldlint:hotpath
func GenericInto(dst, key []byte, fc byte, params ...[]byte) {
	sp := sBuilderPool.Get().(*[]byte)
	s := append((*sp)[:0], fc)
	for _, p := range params {
		s = append(s, p...)
		s = binary.BigEndian.AppendUint16(s, uint16(len(p)))
	}
	mac := hashpool.GetHMAC(key)
	mac.Write(s)
	mac.SumInto(dst)
	hashpool.PutHMAC(mac)
	*sp = s[:0]
	sBuilderPool.Put(sp)
}

// KAUSF derives K_AUSF from CK||IK (TS 33.501 A.2). sqnXorAK is the 6-byte
// SQN XOR AK value that also appears in AUTN.
func KAUSF(ck, ik []byte, snn string, sqnXorAK []byte) ([]byte, error) {
	if len(ck) != 16 || len(ik) != 16 {
		return nil, fmt.Errorf("kdf: CK/IK lengths %d/%d, want 16/16", len(ck), len(ik))
	}
	if len(sqnXorAK) != 6 {
		return nil, fmt.Errorf("kdf: SQN^AK length %d, want 6", len(sqnXorAK))
	}
	// CK||IK on the stack: the key is copied into the pooled HMAC's pad
	// blocks, never retained.
	var key [32]byte
	copy(key[:16], ck)
	copy(key[16:], ik)
	return Generic(key[:], fcKAUSF, []byte(snn), sqnXorAK), nil
}

// KAUSFInto is KAUSF writing the 32-byte key into dst, for callers that
// place the result in a buffer they already own (allocation-free).
func KAUSFInto(dst, ck, ik []byte, snn string, sqnXorAK []byte) error {
	if len(dst) != KeyLen256 {
		return fmt.Errorf("kdf: K_AUSF dst length %d, want %d", len(dst), KeyLen256)
	}
	if len(ck) != 16 || len(ik) != 16 {
		return fmt.Errorf("kdf: CK/IK lengths %d/%d, want 16/16", len(ck), len(ik))
	}
	if len(sqnXorAK) != 6 {
		return fmt.Errorf("kdf: SQN^AK length %d, want 6", len(sqnXorAK))
	}
	var key [32]byte
	copy(key[:16], ck)
	copy(key[16:], ik)
	GenericInto(dst, key[:], fcKAUSF, []byte(snn), sqnXorAK)
	return nil
}

// ResStar derives RES* (UE side) or XRES* (network side) from CK||IK
// (TS 33.501 A.4). The result is the 128 least-significant bits of the KDF
// output.
func ResStar(ck, ik []byte, snn string, rand, res []byte) ([]byte, error) {
	if len(ck) != 16 || len(ik) != 16 {
		return nil, fmt.Errorf("kdf: CK/IK lengths %d/%d, want 16/16", len(ck), len(ik))
	}
	if len(rand) != 16 {
		return nil, fmt.Errorf("kdf: RAND length %d, want 16", len(rand))
	}
	if len(res) != 8 {
		return nil, fmt.Errorf("kdf: RES length %d, want 8", len(res))
	}
	var key [32]byte
	copy(key[:16], ck)
	copy(key[16:], ik)
	out := Generic(key[:], fcResStar, []byte(snn), rand, res)
	return out[len(out)-KeyLen128:], nil
}

// ResStarInto is ResStar writing the 16-byte response into dst
// (allocation-free; the discarded upper half of the KDF output lives on
// the stack).
func ResStarInto(dst, ck, ik []byte, snn string, rand, res []byte) error {
	if len(dst) != KeyLen128 {
		return fmt.Errorf("kdf: RES* dst length %d, want %d", len(dst), KeyLen128)
	}
	if len(ck) != 16 || len(ik) != 16 {
		return fmt.Errorf("kdf: CK/IK lengths %d/%d, want 16/16", len(ck), len(ik))
	}
	if len(rand) != 16 {
		return fmt.Errorf("kdf: RAND length %d, want 16", len(rand))
	}
	if len(res) != 8 {
		return fmt.Errorf("kdf: RES length %d, want 8", len(res))
	}
	var key [32]byte
	copy(key[:16], ck)
	copy(key[16:], ik)
	var out [sha256.Size]byte
	GenericInto(out[:], key[:], fcResStar, []byte(snn), rand, res)
	copy(dst, out[sha256.Size-KeyLen128:])
	return nil
}

// HXResStar derives HXRES* = the 128 most-significant bits of
// SHA-256(RAND || XRES*) (TS 33.501 A.5). This is the value the paper's
// eAUSF P-AKA module computes inside the enclave.
//
// Note: the paper's Table I lists HXRES* as 8 bytes; TS 33.501 defines 16.
// We implement the specification value and report both in the Table I
// reproduction (see EXPERIMENTS.md).
func HXResStar(rand, xresStar []byte) ([]byte, error) {
	if len(rand) != 16 {
		return nil, fmt.Errorf("kdf: RAND length %d, want 16", len(rand))
	}
	if len(xresStar) != 16 {
		return nil, fmt.Errorf("kdf: XRES* length %d, want 16", len(xresStar))
	}
	h := hashpool.GetSHA256()
	h.Write(rand)
	h.Write(xresStar)
	out := h.Sum(make([]byte, 0, sha256.Size))
	hashpool.PutSHA256(h)
	return out[:KeyLen128], nil
}

// hxresScratchPool recycles the full-width digest buffer of HXResStarInto
// so the pooled hash's interface Sum call has a heap destination without a
// per-call allocation.
var hxresScratchPool = sync.Pool{New: func() any { return new([sha256.Size]byte) }}

// HXResStarInto is HXResStar writing the 16-byte value into dst, for
// callers that only compare it (allocation-free).
func HXResStarInto(dst, rand, xresStar []byte) error {
	if len(dst) != KeyLen128 {
		return fmt.Errorf("kdf: HXRES* dst length %d, want %d", len(dst), KeyLen128)
	}
	if len(rand) != 16 {
		return fmt.Errorf("kdf: RAND length %d, want 16", len(rand))
	}
	if len(xresStar) != 16 {
		return fmt.Errorf("kdf: XRES* length %d, want 16", len(xresStar))
	}
	h := hashpool.GetSHA256()
	h.Write(rand)
	h.Write(xresStar)
	buf := hxresScratchPool.Get().(*[sha256.Size]byte)
	copy(dst, h.Sum(buf[:0])[:KeyLen128])
	hxresScratchPool.Put(buf)
	hashpool.PutSHA256(h)
	return nil
}

// KSEAF derives the serving-network anchor key K_SEAF from K_AUSF
// (TS 33.501 A.6).
func KSEAF(kausf []byte, snn string) ([]byte, error) {
	if len(kausf) != KeyLen256 {
		return nil, fmt.Errorf("kdf: K_AUSF length %d, want %d", len(kausf), KeyLen256)
	}
	return Generic(kausf, fcKSEAF, []byte(snn)), nil
}

// KSEAFInto is KSEAF writing the 32-byte key into dst (allocation-free).
func KSEAFInto(dst, kausf []byte, snn string) error {
	if len(dst) != KeyLen256 {
		return fmt.Errorf("kdf: K_SEAF dst length %d, want %d", len(dst), KeyLen256)
	}
	if len(kausf) != KeyLen256 {
		return fmt.Errorf("kdf: K_AUSF length %d, want %d", len(kausf), KeyLen256)
	}
	GenericInto(dst, kausf, fcKSEAF, []byte(snn))
	return nil
}

// KAMF derives K_AMF from K_SEAF (TS 33.501 A.7). supi is the subscription
// permanent identifier in its IMSI string form; abba is the Anti-Bidding
// down Between Architectures parameter (0x0000 in this release).
func KAMF(kseaf []byte, supi string, abba []byte) ([]byte, error) {
	if len(kseaf) != KeyLen256 {
		return nil, fmt.Errorf("kdf: K_SEAF length %d, want %d", len(kseaf), KeyLen256)
	}
	if len(abba) == 0 {
		abba = []byte{0x00, 0x00}
	}
	return Generic(kseaf, fcKAMF, []byte(supi), abba), nil
}

// KAMFInto is KAMF writing the 32-byte key into dst (allocation-free),
// for callers that store K_AMF in an in-struct array.
func KAMFInto(dst, kseaf []byte, supi string, abba []byte) error {
	if len(dst) != KeyLen256 {
		return fmt.Errorf("kdf: K_AMF dst length %d, want %d", len(dst), KeyLen256)
	}
	if len(kseaf) != KeyLen256 {
		return fmt.Errorf("kdf: K_SEAF length %d, want %d", len(kseaf), KeyLen256)
	}
	if len(abba) == 0 {
		abba = []byte{0x00, 0x00}
	}
	GenericInto(dst, kseaf, fcKAMF, []byte(supi), abba)
	return nil
}

// AlgorithmKey derives a 128-bit NAS protection key from K_AMF
// (TS 33.501 A.8): the 128 least-significant bits of the KDF output.
func AlgorithmKey(kamf []byte, typ AlgorithmType, algoID byte) ([]byte, error) {
	if len(kamf) != KeyLen256 {
		return nil, fmt.Errorf("kdf: K_AMF length %d, want %d", len(kamf), KeyLen256)
	}
	out := Generic(kamf, fcAlgoKey, []byte{byte(typ)}, []byte{algoID})
	return out[len(out)-KeyLen128:], nil
}

// AlgorithmKeyInto is AlgorithmKey writing the 16-byte key into dst
// (allocation-free; the discarded upper half of the KDF output lives on
// the stack).
func AlgorithmKeyInto(dst, kamf []byte, typ AlgorithmType, algoID byte) error {
	if len(dst) != KeyLen128 {
		return fmt.Errorf("kdf: algorithm key dst length %d, want %d", len(dst), KeyLen128)
	}
	if len(kamf) != KeyLen256 {
		return fmt.Errorf("kdf: K_AMF length %d, want %d", len(kamf), KeyLen256)
	}
	var out [sha256.Size]byte
	GenericInto(out[:], kamf, fcAlgoKey, []byte{byte(typ)}, []byte{algoID})
	copy(dst, out[sha256.Size-KeyLen128:])
	return nil
}

// KGNB derives the gNB anchor key from K_AMF and the uplink NAS COUNT
// (TS 33.501 A.9).
func KGNB(kamf []byte, uplinkNASCount uint32) ([]byte, error) {
	if len(kamf) != KeyLen256 {
		return nil, fmt.Errorf("kdf: K_AMF length %d, want %d", len(kamf), KeyLen256)
	}
	var count [4]byte
	binary.BigEndian.PutUint32(count[:], uplinkNASCount)
	// Access type distinguisher: 0x01 = 3GPP access.
	return Generic(kamf, fcKGNB, count[:], []byte{0x01}), nil
}

// ServingNetworkName builds the SNN string of TS 24.501 §9.12.1, e.g.
// "5G:mnc001.mcc001.3gppnetwork.org" for PLMN 00101.
func ServingNetworkName(mcc, mnc string) string {
	if len(mnc) == 2 {
		mnc = "0" + mnc
	}
	return fmt.Sprintf("5G:mnc%s.mcc%s.3gppnetwork.org", mnc, mcc)
}

// XorSQNAK computes SQN XOR AK, the concealed sequence number carried in
// AUTN.
func XorSQNAK(sqn, ak []byte) ([]byte, error) {
	if len(sqn) != 6 || len(ak) != 6 {
		return nil, fmt.Errorf("kdf: SQN/AK lengths %d/%d, want 6/6", len(sqn), len(ak))
	}
	out := make([]byte, 6)
	for i := range out {
		out[i] = sqn[i] ^ ak[i]
	}
	return out, nil
}

// BuildAUTN assembles the 16-byte authentication token
// AUTN = (SQN XOR AK) || AMF || MAC-A.
func BuildAUTN(sqnXorAK, amf, macA []byte) ([]byte, error) {
	if len(sqnXorAK) != 6 {
		return nil, fmt.Errorf("kdf: SQN^AK length %d, want 6", len(sqnXorAK))
	}
	if len(amf) != 2 {
		return nil, fmt.Errorf("kdf: AMF length %d, want 2", len(amf))
	}
	if len(macA) != 8 {
		return nil, fmt.Errorf("kdf: MAC-A length %d, want 8", len(macA))
	}
	autn := make([]byte, 0, 16)
	autn = append(autn, sqnXorAK...)
	autn = append(autn, amf...)
	autn = append(autn, macA...)
	return autn, nil
}

// SplitAUTN splits a 16-byte AUTN into its components.
func SplitAUTN(autn []byte) (sqnXorAK, amf, macA []byte, err error) {
	if len(autn) != 16 {
		return nil, nil, nil, fmt.Errorf("kdf: AUTN length %d, want 16", len(autn))
	}
	return autn[0:6], autn[6:8], autn[8:16], nil
}
