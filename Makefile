GO ?= go

.PHONY: all build test race vet bench experiments examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Static checks plus a focused race pass over the fault-injection and
# mass-registration paths (parallel drivers, injector, resilience layer).
vet:
	$(GO) vet ./...
	$(GO) test -race ./internal/chaos/ ./internal/sbi/ ./internal/gnb/ ./internal/deploy/

bench:
	BENCH_JSON=$(CURDIR)/BENCH_parallel_registration.json \
	BENCH_CHAOS_JSON=$(CURDIR)/BENCH_chaos_registration.json \
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper (500 samples each).
experiments:
	$(GO) run ./cmd/experiments all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/slicebench
	$(GO) run ./examples/introspection
	$(GO) run ./examples/attestation
	$(GO) run ./examples/ota

clean:
	$(GO) clean ./...
