// Package codec implements the negotiated binary SBI framing: a
// length-prefixed wire format for the hot-path service messages that the
// in-process transport swaps in for JSON once both ends of a keep-alive
// connection have negotiated it (see sbi.Client). JSON stays the interop
// fallback and the first-contact format, so a binary-incapable peer — or
// a peer that lost its binary endpoints across a restart — degrades to
// the seed-identical JSON path instead of failing.
//
// A frame is
//
//	magic (1 byte, 0xB5) || payload length (4 bytes, big endian) || payload
//
// and the payload is a flat field sequence: uvarint-length-prefixed byte
// strings and strings, single bytes, and counts. The magic byte cannot
// begin a JSON body ('{', '[', '"', digits, ...), so a server can tell
// the two formats apart from the first byte of the request.
//
// Ownership rules mirror the sbi.MarshalBody/ReleaseBody contract and are
// what make the fast path zero-copy:
//
//   - Encoding appends into a caller-owned buffer (the pooled body buffer
//     on the transport paths) — no intermediate copies.
//   - Reader.Bytes returns views INTO the decoded buffer. A server
//     handler decoding a request holds those views only for the duration
//     of the call (the HandlerFunc loan contract); anything it retains it
//     must copy.
//   - A client decoding a response owns the result after Compact: the
//     retained fields are rewritten into one fresh backing array per
//     message, so releasing the response body back to the codec pool
//     cannot alias live data.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"

	"shield5g/internal/intern"
)

// Magic is the first byte of every binary SBI frame. JSON bodies start
// with '{', '[', '"', a digit, 't', 'f' or 'n', never 0xB5.
const Magic = 0xB5

// headerLen is the frame header size: magic plus 4-byte payload length.
const headerLen = 5

// MaxPayload bounds a frame's payload, matching the 1 MiB body limit the
// HTTP transport enforces (sbi.ServeHTTP's MaxBytesReader).
const MaxPayload = 1 << 20

// Frame parse errors.
var (
	ErrNotFrame  = errors.New("codec: not a binary SBI frame")
	ErrTruncated = errors.New("codec: truncated frame")
	ErrOversized = errors.New("codec: frame length exceeds MaxPayload")
	ErrTrailing  = errors.New("codec: trailing bytes after frame payload")
)

// Marshaler is a message that can append its binary encoding to a
// caller-owned buffer (the frame payload).
type Marshaler interface {
	AppendBinary(dst []byte) []byte
}

// Unmarshaler is a message that can decode itself from a frame payload.
// Implementations must leave the reader exactly at the end of their
// fields and must copy (Compact) anything they retain beyond the call.
type Unmarshaler interface {
	DecodeBinary(r *Reader) error
}

// IsFrame reports whether b begins with a plausible binary frame header.
func IsFrame(b []byte) bool {
	return len(b) >= headerLen && b[0] == Magic
}

// AppendHeader appends the frame magic and a length placeholder; encode
// the payload after it and call FinishFrame on the full slice.
//
//shieldlint:hotpath
func AppendHeader(dst []byte) []byte {
	return append(dst, Magic, 0, 0, 0, 0)
}

// FinishFrame patches the payload length into a frame started with
// AppendHeader. b must be the whole frame (header plus payload).
//
//shieldlint:hotpath
func FinishFrame(b []byte) ([]byte, error) {
	if len(b) < headerLen || b[0] != Magic {
		return nil, ErrNotFrame
	}
	n := len(b) - headerLen
	if n > MaxPayload {
		return nil, ErrOversized
	}
	binary.BigEndian.PutUint32(b[1:headerLen], uint32(n))
	return b, nil
}

// Payload validates b's frame header and returns the payload as a view
// into b (zero-copy). The declared length must match the bytes present
// exactly: a short body is ErrTruncated, extra bytes are ErrTrailing.
//
//shieldlint:hotpath
func Payload(b []byte) ([]byte, error) {
	if len(b) < headerLen || b[0] != Magic {
		return nil, ErrNotFrame
	}
	n := binary.BigEndian.Uint32(b[1:headerLen])
	if n > MaxPayload {
		return nil, ErrOversized
	}
	rest := b[headerLen:]
	switch {
	case uint32(len(rest)) < n:
		return nil, ErrTruncated
	case uint32(len(rest)) > n:
		return nil, ErrTrailing
	}
	return rest, nil
}

// AppendBytes appends a nil-distinguishing length-prefixed byte string:
// 0 encodes nil (JSON null), n+1 prefixes n payload bytes. Keeping the
// nil/empty distinction is what lets the golden tests demand bit-identical
// structs from the JSON and binary decode paths.
//
//shieldlint:hotpath
func AppendBytes(dst, b []byte) []byte {
	if b == nil {
		return append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(b))+1)
	return append(dst, b...)
}

// AppendString appends a length-prefixed string.
//
//shieldlint:hotpath
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendByte appends one raw byte.
//
//shieldlint:hotpath
func AppendByte(dst []byte, b byte) []byte { return append(dst, b) }

// AppendCount appends a uvarint element count.
//
//shieldlint:hotpath
func AppendCount(dst []byte, n int) []byte {
	return binary.AppendUvarint(dst, uint64(n))
}

// AppendUint appends a bare uvarint scalar, read back with Reader.Uint.
// Use it for numeric values (statuses, durations, sequence numbers) —
// unlike counts they are not bounded by the payload size on decode.
//
//shieldlint:hotpath
func AppendUint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// Reader decodes a frame payload field by field. Errors are sticky: the
// first malformed field poisons the reader and every later accessor
// returns zero values, so decoders can read all fields and check Done
// once at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over one frame payload.
func NewReader(payload []byte) *Reader { return &Reader{buf: payload} }

// Reset repoints the reader at a new payload, clearing any error.
func (r *Reader) Reset(payload []byte) { r.buf, r.off, r.err = payload, 0, nil }

// Err returns the sticky decode error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail(ErrTruncated)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Count reads a uvarint element count, bounding it by the bytes that
// remain so a hostile count cannot drive a huge allocation.
func (r *Reader) Count() int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail(ErrTruncated)
		return 0
	}
	return int(n)
}

// Uint reads a bare uvarint scalar. Unlike Count it is not bounded by the
// remaining payload — use it for numeric values that do not size a
// decode-side allocation.
func (r *Reader) Uint() uint64 { return r.uvarint() }

func (r *Reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.off += n
	return v
}

// take returns the next n bytes as a view into the payload.
func (r *Reader) take(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return b
}

// Bytes reads a byte string written by AppendBytes. The returned slice is
// a zero-copy view into the payload: valid under the HandlerFunc loan for
// request decodes, and rewritten by Compact for retained response fields.
func (r *Reader) Bytes() []byte {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	return r.take(n - 1)
}

// String reads a string written by AppendString. Strings are always
// copied: Go string headers cannot express the loan and would otherwise
// retain the transport buffer.
func (r *Reader) String() string {
	b := r.take(r.uvarint())
	if r.err != nil {
		return ""
	}
	return string(b)
}

// InternString reads a string like String but canonicalises it through
// the bounded process-wide table of internal/intern, so decoding the
// same protocol constant (an MCC, a routing indicator, a serving
// network name) costs zero allocations after first sight. Never use it
// for per-subscriber values such as SUPIs or auth-context IDs: those
// are unique, would churn the table to its cap, and then allocate
// anyway.
//
//shieldlint:hotpath
func (r *Reader) InternString() string {
	b := r.take(r.uvarint())
	if r.err != nil {
		return ""
	}
	return intern.Bytes(b)
}

// Done verifies the payload was consumed exactly.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d byte(s) left", ErrTrailing, len(r.buf)-r.off)
	}
	return nil
}

// emptyBytes backs zero-length decoded fields so even they stop aliasing
// the transport buffer after Compact.
var emptyBytes = []byte{}

// Compact rewrites the given decoded fields into one freshly allocated
// backing array, giving the caller exclusive ownership of every byte it
// retains — the step that makes releasing the response body safe. One
// allocation covers the whole message, the same single-backing pattern
// paka.GenerateAVCached uses for its response struct.
//
//shieldlint:hotpath
func Compact(fields ...*[]byte) {
	var total int
	for _, f := range fields {
		total += len(*f)
	}
	if total == 0 {
		for _, f := range fields {
			if *f != nil {
				*f = emptyBytes
			}
		}
		return
	}
	//shieldlint:ignore hotalloc single caller-owned backing for the whole message — the pooling pattern this analyzer enforces
	buf := make([]byte, 0, total)
	for _, f := range fields {
		if *f == nil {
			continue
		}
		if len(*f) == 0 {
			*f = emptyBytes
			continue
		}
		off := len(buf)
		buf = append(buf, *f...)
		*f = buf[off:len(buf):len(buf)]
	}
}
