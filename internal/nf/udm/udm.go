// Package udm implements the Unified Data Management function: SUCI
// de-concealment with the home-network private key, authentication-vector
// orchestration against the UDR, and offload of the sensitive AKA
// cryptography to its P-AKA execution environment (the eUDM module when
// extracted, the in-process functions in the monolithic baseline), exactly
// as in the paper's modified message flow (Fig. 5 steps 2-3).
package udm

import (
	"context"
	"crypto/rand"
	"fmt"
	"io"
	"sync/atomic"

	"shield5g/internal/costmodel"
	"shield5g/internal/crypto/suci"
	"shield5g/internal/nf/nrf"
	"shield5g/internal/nf/udr"
	"shield5g/internal/paka"
	"shield5g/internal/sbi"
)

// Service identity.
const (
	ServiceName = "udm"
	NFType      = "UDM"
)

// SBI endpoint paths.
const (
	PathGenerateAuthData = "/nudm-ueau/v1/generate-auth-data"
	PathResync           = "/nudm-ueau/v1/resync"
)

// suciDeconcealCycles is the X25519 + AES-CTR + HMAC cost of Profile A
// de-concealment on the testbed CPU.
const suciDeconcealCycles = 240_000

// GenerateAuthDataRequest asks the UDM (home network) for a fresh HE AV.
type GenerateAuthDataRequest struct {
	SUCI               *suci.SUCI `json:"suci,omitempty"`
	SUPI               string     `json:"supi,omitempty"` // re-auth with known identity
	ServingNetworkName string     `json:"serving_network_name"`
}

// GenerateAuthDataResponse is the HE AV plus the de-concealed SUPI.
type GenerateAuthDataResponse struct {
	SUPI     string `json:"supi"`
	RAND     []byte `json:"rand"`
	AUTN     []byte `json:"autn"`
	XRESStar []byte `json:"xres_star"`
	KAUSF    []byte `json:"kausf"`
}

// ResyncRequest reports a UE synchronisation failure (AUTS) for SQN
// recovery.
type ResyncRequest struct {
	SUPI string `json:"supi"`
	RAND []byte `json:"rand"`
	AUTS []byte `json:"auts"`
}

// Empty is an empty response body.
type Empty struct{}

// Config wires a UDM instance.
type Config struct {
	Env *costmodel.Env
	// Registry hosts the UDM's SBI server.
	Registry *sbi.Registry
	// Invoker reaches the UDR, NRF and (when extracted) the eUDM module.
	Invoker sbi.Invoker
	// Functions is the AKA execution environment.
	Functions paka.UDMFunctions
	// HomeNetworkKey de-conceals SUCIs.
	HomeNetworkKey *suci.HomeNetworkKey
	// HMEE marks this instance as running in a higher trust domain for
	// NRF discovery.
	HMEE bool
	// Entropy overrides RAND generation (tests); nil selects crypto/rand.
	Entropy io.Reader
	// Reprovision, when set, restores a subscriber's long-term key into
	// the AKA execution environment (deploy points it at the eUDM
	// module). It is the degradation path for an execution environment
	// that lost its key store to a crash-restart.
	Reprovision func(ctx context.Context, supi string, k []byte) error
}

// UDM is the data-management VNF.
type UDM struct {
	env         *costmodel.Env
	server      *sbi.Server
	udr         *udr.Client
	nrfc        *nrf.Client
	fns         paka.UDMFunctions
	hnKey       *suci.HomeNetworkKey
	entropy     io.Reader
	reprovision func(ctx context.Context, supi string, k []byte) error

	reprovisions atomic.Uint64
}

// New creates a UDM, registers its SBI server and announces it to the NRF.
func New(ctx context.Context, cfg Config) (*UDM, error) {
	if cfg.Env == nil || cfg.Registry == nil || cfg.Invoker == nil {
		return nil, fmt.Errorf("udm: Env, Registry and Invoker are required")
	}
	if cfg.Functions == nil {
		return nil, fmt.Errorf("udm: Functions (AKA execution environment) is required")
	}
	if cfg.HomeNetworkKey == nil {
		return nil, fmt.Errorf("udm: HomeNetworkKey is required")
	}
	entropy := cfg.Entropy
	if entropy == nil {
		entropy = rand.Reader
	}
	u := &UDM{
		env:         cfg.Env,
		server:      sbi.NewServer(ServiceName, cfg.Env),
		udr:         udr.NewClient(cfg.Invoker),
		nrfc:        nrf.NewClient(cfg.Invoker),
		fns:         cfg.Functions,
		hnKey:       cfg.HomeNetworkKey,
		entropy:     entropy,
		reprovision: cfg.Reprovision,
	}
	u.server.Handle(PathGenerateAuthData, sbi.JSONHandler(u.handleGenerateAuthData))
	u.server.Handle(PathResync, sbi.JSONHandler(u.handleResync))
	if err := cfg.Registry.Register(u.server); err != nil {
		return nil, err
	}
	if err := u.nrfc.Register(ctx, nrf.NFProfile{
		InstanceID: "udm-1", NFType: NFType, Service: ServiceName, HMEE: cfg.HMEE,
	}); err != nil {
		return nil, fmt.Errorf("udm: NRF registration: %w", err)
	}
	return u, nil
}

func (u *UDM) handleGenerateAuthData(ctx context.Context, req *GenerateAuthDataRequest) (*GenerateAuthDataResponse, error) {
	supi := req.SUPI
	if supi == "" {
		switch {
		case req.SUCI == nil:
			return nil, sbi.Problem(400, "Bad Request", "MANDATORY_IE_MISSING", "SUCI or SUPI required")
		case req.SUCI.Scheme == suci.SchemeNull:
			// Null protection scheme (test networks): no deconcealment.
			id, err := req.SUCI.NullSUPI()
			if err != nil {
				return nil, sbi.Problem(403, "Forbidden", "DECONCEALMENT_FAILURE", "%v", err)
			}
			supi = id.String()
		default:
			u.env.Charge(ctx, suciDeconcealCycles)
			id, err := u.hnKey.Deconceal(req.SUCI)
			if err != nil {
				return nil, sbi.Problem(403, "Forbidden", "DECONCEALMENT_FAILURE", "%v", err)
			}
			supi = id.String()
		}
	}
	if req.ServingNetworkName == "" {
		return nil, sbi.Problem(400, "Bad Request", "MANDATORY_IE_MISSING", "serving network name required")
	}

	auth, err := u.udr.NextAuth(ctx, supi)
	if err != nil {
		return nil, err
	}

	randBytes := make([]byte, 16)
	if _, err := io.ReadFull(u.entropy, randBytes); err != nil {
		return nil, sbi.Problem(500, "Internal Server Error", "SYSTEM_FAILURE", "RAND generation: %v", err)
	}

	avReq := &paka.UDMGenerateAVRequest{
		SUPI:  supi,
		OPc:   auth.OPc,
		RAND:  randBytes,
		SQN:   auth.SQN,
		AMFID: auth.AMFField,
		SNN:   req.ServingNetworkName,
	}
	av, err := u.fns.GenerateAV(ctx, avReq)
	if err != nil && u.reprovision != nil && sbi.HasCause(err, "USER_NOT_FOUND") {
		// Graceful degradation: the execution environment lost its key
		// store (container crash-restart has no sealed backup). Re-fetch
		// the long-term key from the UDR, push it back in, and retry once.
		if sub, gerr := u.udr.Get(ctx, supi); gerr == nil {
			if perr := u.reprovision(ctx, supi, sub.K); perr == nil {
				u.reprovisions.Add(1)
				av, err = u.fns.GenerateAV(ctx, avReq)
			}
		}
	}
	if err != nil {
		return nil, err
	}
	return &GenerateAuthDataResponse{
		SUPI:     supi,
		RAND:     av.RAND,
		AUTN:     av.AUTN,
		XRESStar: av.XRESStar,
		KAUSF:    av.KAUSF,
	}, nil
}

func (u *UDM) handleResync(ctx context.Context, req *ResyncRequest) (*Empty, error) {
	sub, err := u.udr.Get(ctx, req.SUPI)
	if err != nil {
		return nil, err
	}
	resp, err := u.fns.Resync(ctx, &paka.UDMResyncRequest{
		SUPI: req.SUPI,
		OPc:  sub.OPc,
		RAND: req.RAND,
		AUTS: req.AUTS,
	})
	if err != nil {
		return nil, sbi.Problem(403, "Forbidden", "SYNC_FAILURE", "%v", err)
	}
	if err := u.udr.Resync(ctx, req.SUPI, resp.SQNMS); err != nil {
		return nil, err
	}
	return &Empty{}, nil
}

// Reprovisions reports how many subscriber keys were restored into the
// execution environment after it lost them.
func (u *UDM) Reprovisions() uint64 { return u.reprovisions.Load() }

// Client is the AUSF-side helper for UDM calls.
type Client struct {
	invoker sbi.Invoker
	service string
}

// NewClient wraps an SBI transport for UDM calls against the default
// service name.
func NewClient(invoker sbi.Invoker) *Client {
	return &Client{invoker: invoker, service: ServiceName}
}

// DiscoverClient resolves a UDM instance through the NRF (restricted to
// HMEE-enabled hosts when requireHMEE is set) and returns a client bound
// to the discovered service.
func DiscoverClient(ctx context.Context, invoker sbi.Invoker, requireHMEE bool) (*Client, error) {
	p, err := nrf.NewClient(invoker).Discover(ctx, NFType, requireHMEE)
	if err != nil {
		return nil, fmt.Errorf("udm: discovery: %w", err)
	}
	return &Client{invoker: invoker, service: p.Service}, nil
}

// GenerateAuthData requests a fresh HE AV.
func (c *Client) GenerateAuthData(ctx context.Context, req *GenerateAuthDataRequest) (*GenerateAuthDataResponse, error) {
	var resp GenerateAuthDataResponse
	if err := c.invoker.Post(ctx, c.service, PathGenerateAuthData, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Resync reports an AUTS for sequence-number recovery.
func (c *Client) Resync(ctx context.Context, req *ResyncRequest) error {
	return c.invoker.Post(ctx, c.service, PathResync, req, nil)
}
