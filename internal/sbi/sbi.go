// Package sbi implements the 5G service-based interface plumbing: JSON
// REST endpoints between network functions, 3GPP ProblemDetails error
// reporting, and two interchangeable transports — an in-process transport
// that charges modelled TLS/HTTP/loopback costs to virtual time (used by
// the experiments), and a real net/http transport (used by the runnable
// binaries).
//
// In the paper every VNF and P-AKA module is an HTTPS REST server on the
// OAI Docker bridge; the cost structure of those hops (TLS records, HTTP
// framing, kernel loopback) is what this package models.
package sbi

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"shield5g/internal/costmodel"
	"shield5g/internal/sbi/codec"
)

// ProblemDetails is the 3GPP TS 29.500 error body carried on SBI failures.
type ProblemDetails struct {
	Title  string `json:"title"`
	Status int    `json:"status"`
	Detail string `json:"detail,omitempty"`
	Cause  string `json:"cause,omitempty"`
	// RetryAfter mirrors the HTTP Retry-After header a congested NF
	// attaches to 429/503 responses (TS 29.500 §6.4): the minimum
	// virtual time the client should wait before retrying.
	RetryAfter time.Duration `json:"retryAfter,omitempty"`
	// OCI carries the server's overload-control information on shed
	// responses (the `3gpp-Sbi-Oci` header of TS 29.500 §6.4).
	OCI *OCI `json:"oci,omitempty"`
}

// Error implements error.
func (p *ProblemDetails) Error() string {
	return fmt.Sprintf("sbi: %d %s: %s (%s)", p.Status, p.Title, p.Detail, p.Cause)
}

// Problem builds a ProblemDetails error.
func Problem(status int, title, cause, format string, args ...any) *ProblemDetails {
	return &ProblemDetails{
		Title:  title,
		Status: status,
		Cause:  cause,
		Detail: fmt.Sprintf(format, args...),
	}
}

// ProblemDetails causes shared across packages (TS 29.500 Table 5.2.7.2-1
// plus the local additions used by the resilience layer).
const (
	CauseTimeout     = "TIMEOUT"
	CauseCircuitOpen = "CIRCUIT_OPEN"
	CauseCongestion  = "NF_CONGESTION"
	CauseUnreachable = "TARGET_NF_NOT_REACHABLE"
	CauseSystem      = "SYSTEM_FAILURE"
	// CauseUnsupportedMedia is returned when a binary SBI frame reaches a
	// path that only speaks JSON (stale codec negotiation, see binary.go).
	CauseUnsupportedMedia = "UNSUPPORTED_MEDIA_TYPE"
)

// AsProblem extracts the ProblemDetails from an error chain.
func AsProblem(err error) (*ProblemDetails, bool) {
	var pd *ProblemDetails
	ok := errors.As(err, &pd)
	return pd, ok
}

// HasCause reports whether err carries a ProblemDetails with the cause.
func HasCause(err error, cause string) bool {
	if pd, ok := AsProblem(err); ok {
		return pd.Cause == cause
	}
	return false
}

// HandlerFunc serves one SBI endpoint: JSON request bytes in, JSON
// response bytes out. Returning a *ProblemDetails preserves status and
// cause across the transport; any other error becomes a 500.
//
// Ownership: the request body is on loan for the duration of the call —
// handlers must not retain it. Ownership of a returned body transfers to
// the transport, which releases it into the codec pool after delivery
// (see MarshalBody/ReleaseBody); handlers must therefore return bodies
// they own exclusively, e.g. from MarshalBody, never shared or static
// slices they will read again.
type HandlerFunc func(ctx context.Context, body []byte) ([]byte, error)

// Server is one NF service instance exposing SBI endpoints.
type Server struct {
	name string
	env  *costmodel.Env

	mu       sync.RWMutex
	handlers map[string]HandlerFunc
	// binPaths marks endpoints registered via HandleDual as accepting the
	// negotiated binary frame format alongside JSON (see binary.go).
	binPaths map[string]bool
	// meter is the overload-control load meter (see overload.go); nil
	// until EnableOverload and inert until armed.
	meter *loadMeter
}

// NewServer creates a named SBI server charging costs through env.
func NewServer(name string, env *costmodel.Env) *Server {
	return &Server{
		name:     name,
		env:      env,
		handlers: make(map[string]HandlerFunc),
		binPaths: make(map[string]bool),
	}
}

// Name returns the service name used for discovery and routing.
func (s *Server) Name() string { return s.name }

// Handle registers an endpoint handler for path. The path speaks JSON
// only; use HandleDual for handlers that also accept binary frames.
func (s *Server) Handle(path string, h HandlerFunc) {
	s.mu.Lock()
	s.handlers[path] = h
	delete(s.binPaths, path)
	s.mu.Unlock()
}

// Paths lists the registered endpoint paths.
func (s *Server) Paths() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.handlers))
	for p := range s.handlers {
		out = append(out, p)
	}
	return out
}

func (s *Server) lookup(path string) (HandlerFunc, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.handlers[path]
	return h, ok
}

// serve dispatches one request, charging server-side record processing.
func (s *Server) serve(ctx context.Context, path string, body []byte) ([]byte, error) {
	if s.env != nil {
		m := s.env.Model
		s.env.Charge(ctx, m.TLSRecordCost(len(body))+m.HTTPCost(len(body)))
	}
	h, ok := s.lookup(path)
	if !ok {
		return nil, Problem(404, "Not Found", "RESOURCE_NOT_FOUND", "%s has no endpoint %s", s.name, path)
	}
	if codec.IsFrame(body) && !s.binaryPath(path) {
		// A frame reached a JSON-only path: the client's negotiation is
		// stale (e.g. this server restarted without its binary endpoints).
		// 415 tells it to downgrade the path to JSON and retry.
		return nil, Problem(415, "Unsupported Media Type", CauseUnsupportedMedia,
			"%s%s does not accept binary SBI frames", s.name, path)
	}
	if m := s.loadMeter(); m != nil {
		// Overload control: run the request through the virtual queue —
		// it may pay a FIFO wait or be shed with 503 OVERLOAD + OCI.
		if pd := m.admit(ctx, s.name, path); pd != nil {
			return nil, pd
		}
	}
	resp, err := h(ctx, body)
	if s.env != nil && err == nil {
		m := s.env.Model
		s.env.Charge(ctx, m.TLSRecordCost(len(resp))+m.HTTPCost(len(resp)))
	}
	return resp, err
}

// Registry resolves service names to in-process servers. It stands in for
// the Docker bridge DNS of the paper's deployment.
type Registry struct {
	mu      sync.RWMutex
	servers map[string]*Server
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{servers: make(map[string]*Server)}
}

// Register adds a server; duplicate names are an error.
func (r *Registry) Register(s *Server) error {
	if s == nil {
		return errors.New("sbi: nil server")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.servers[s.Name()]; dup {
		return fmt.Errorf("sbi: service %q already registered", s.Name())
	}
	r.servers[s.Name()] = s
	return nil
}

// Deregister removes a server by name.
func (r *Registry) Deregister(name string) {
	r.mu.Lock()
	delete(r.servers, name)
	r.mu.Unlock()
}

// Lookup resolves a service name.
func (r *Registry) Lookup(name string) (*Server, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.servers[name]
	return s, ok
}

// Names lists registered service names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.servers))
	for n := range r.servers {
		out = append(out, n)
	}
	return out
}

// Client issues SBI requests from one NF to others over the in-process
// modelled transport. It charges the client-side TLS/HTTP processing, the
// loopback round trip, and a mutual-TLS handshake on the first contact
// with each peer (3GPP TS 33.210 inter-NF security).
type Client struct {
	from     string
	env      *costmodel.Env
	registry *Registry

	mu        sync.Mutex
	connected map[string]bool
	// binary opts this client into frame negotiation (EnableBinary);
	// negotiated holds, per peer, the binary-capable path snapshot taken
	// at first contact — the modelled keep-alive session open.
	binary     bool
	negotiated map[string]map[string]bool

	// oci records the freshest overload advert seen per peer; the
	// resilience layer reads it through the OCISource interface.
	oci ociTable
}

// NewClient creates a client identified as from.
func NewClient(from string, env *costmodel.Env, registry *Registry) *Client {
	return &Client{
		from:       from,
		env:        env,
		registry:   registry,
		connected:  make(map[string]bool),
		negotiated: make(map[string]map[string]bool),
	}
}

// Post marshals req, invokes service's path endpoint, and unmarshals the
// response into resp (which may be nil to discard). With the binary codec
// enabled (EnableBinary), paths the peer advertised at first contact are
// exchanged as binary frames; everything else — including the first
// request itself, which opens the session — stays on JSON.
func (c *Client) Post(ctx context.Context, service, path string, req, resp any) error {
	// A cancelled or expired context is a client-side timeout, not a
	// server failure: surface it as 504/TIMEOUT so callers and the retry
	// layer can tell it apart from a 500 SYSTEM_FAILURE.
	if cerr := ctx.Err(); cerr != nil {
		return Problem(504, "Gateway Timeout", CauseTimeout, "%s -> %s%s: %v", c.from, service, path, cerr)
	}

	srv, ok := c.registry.Lookup(service)
	if !ok {
		return Problem(503, "Service Unavailable", "TARGET_NF_NOT_REACHABLE", "%s cannot reach %s", c.from, service)
	}

	m := c.env.Model
	// First contact pays the mutual TLS handshake on both sides and, with
	// the binary codec enabled, snapshots the peer's binary-capable paths
	// — the codec negotiation rides the session open, so the opening
	// request itself still travels as JSON.
	c.mu.Lock()
	fresh := !c.connected[service]
	c.connected[service] = true
	var caps map[string]bool
	if c.binary {
		if fresh {
			c.negotiated[service] = srv.binaryPaths()
		} else {
			caps = c.negotiated[service]
		}
	}
	c.mu.Unlock()
	if fresh {
		c.env.Charge(ctx, m.TLSHandshakeClient+m.TLSHandshakeServer)
	}

	binReq := false
	var body []byte
	var err error
	if caps[path] {
		if bm, ok := req.(codec.Marshaler); ok && binaryDecodable(resp) {
			body, err = MarshalBinary(bm)
			binReq = err == nil
		}
	}
	if !binReq {
		body, err = MarshalBody(req)
		if err != nil {
			return fmt.Errorf("sbi: marshal request to %s%s: %w", service, path, err)
		}
	}

	out, err := c.exchange(ctx, srv, path, body)
	if err != nil && binReq && HasCause(err, CauseUnsupportedMedia) {
		// Stale negotiation: the peer no longer accepts frames on this
		// path (e.g. it restarted binary-incapable mid-fleet). Downgrade
		// the path to JSON and retry this request once.
		c.mu.Lock()
		if caps := c.negotiated[service]; caps != nil {
			delete(caps, path)
		}
		c.mu.Unlock()
		body, err = MarshalBody(req)
		if err != nil {
			return fmt.Errorf("sbi: marshal request to %s%s: %w", service, path, err)
		}
		out, err = c.exchange(ctx, srv, path, body)
	}
	if err != nil {
		var pd *ProblemDetails
		if errors.As(err, &pd) {
			return pd
		}
		return Problem(500, "Internal Server Error", "SYSTEM_FAILURE", "%s%s: %v", service, path, err)
	}

	// Client-side response processing.
	c.env.Charge(ctx, m.HTTPCost(len(out))+m.TLSRecordCost(len(out)))

	if resp == nil {
		ReleaseBody(out)
		return nil
	}
	uerr := decodeResponse(out, resp)
	ReleaseBody(out)
	if uerr != nil {
		return fmt.Errorf("sbi: unmarshal response from %s%s: %w", service, path, uerr)
	}
	return nil
}

// exchange sends one already-encoded body: client-side request processing,
// the bridge round trip, server dispatch, and the request body release.
func (c *Client) exchange(ctx context.Context, srv *Server, path string, body []byte) ([]byte, error) {
	m := c.env.Model
	c.env.Charge(ctx, m.HTTPCost(len(body))+m.TLSRecordCost(len(body)))
	c.env.Charge(ctx, c.env.JitterFor(ctx).Scale(m.LoopbackRTT, 0.15))
	out, err := srv.serve(ctx, path, body)
	// The handler has returned: the request body is spent either way.
	ReleaseBody(body)
	// Every response from a metered peer carries its OCI (the modelled
	// `3gpp-Sbi-Oci` header); record the freshest snapshot for the
	// resilience layer's proportional throttling.
	if oci, ok := srv.CurrentOCI(); ok {
		c.oci.record(srv.Name(), oci)
	}
	return out, err
}

// PeerOCI implements OCISource: the freshest overload advert observed
// from the named peer service.
func (c *Client) PeerOCI(service string) (OCI, bool) { return c.oci.PeerOCI(service) }

// JSONHandler adapts a typed request/response function into a HandlerFunc.
// Both directions run through the pooled codecs; the returned body follows
// the HandlerFunc ownership contract (the transport releases it).
func JSONHandler[Req, Resp any](fn func(ctx context.Context, req *Req) (*Resp, error)) HandlerFunc {
	return func(ctx context.Context, body []byte) ([]byte, error) {
		var req Req
		if len(body) > 0 {
			if err := UnmarshalBody(body, &req); err != nil {
				return nil, Problem(400, "Bad Request", "MANDATORY_IE_INCORRECT", "decode: %v", err)
			}
		}
		resp, err := fn(ctx, &req)
		if err != nil {
			return nil, err
		}
		out, err := MarshalBody(resp)
		if err != nil {
			return nil, Problem(500, "Internal Server Error", "SYSTEM_FAILURE", "encode: %v", err)
		}
		return out, nil
	}
}
