// Package topology holds the data-plane side of the sharded-core control
// protocol: versioned routing snapshots, the SUPI-affinity consistent-hash
// ring, per-tenant shuffle-shard assignment, and the Router that data
// planes consult on every routing decision.
//
// The package is deliberately free of any control-plane machinery — the
// snapshot *builder* lives in internal/nf/nrf/topo and pushes snapshots
// into Routers here. Data-plane packages (gnb, amf, ausf, udm, paka, sbi)
// may import this package but never the builder; the shieldlint
// `planeboundary` analyzer enforces that import direction, which is what
// keeps the NRF out of the request path: a Router answers every route from
// its last-known-good snapshot with no upcall, so registration traffic
// survives NRF unavailability indefinitely.
package topology

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Replica names one routable replica of the vertical NF slice
// (AMF+AUSF+UDM+P-AKA modules sharing one shard index).
type Replica struct {
	// Index is the replica's position in the deploy-time replica array;
	// routing decisions return it so data planes can address per-replica
	// resources (AMF pointers, service names) without string lookups.
	Index int `json:"index"`
	// Name is the replica's stable identity. Ring placement hashes the
	// name, never the index, so adding or removing a replica moves only
	// the keys the consistent-hash contract says may move.
	Name string `json:"name"`
}

// Snapshot is one full, versioned routing view. Snapshots are immutable
// once published: the builder constructs a fresh one per epoch and every
// Router either applies it whole or rejects it whole (ack/nack).
type Snapshot struct {
	// Epoch is strictly monotonic per builder. Routers nack any snapshot
	// whose epoch does not advance their current one, so a delayed or
	// replayed push can never roll a data plane back.
	Epoch uint64 `json:"epoch"`
	// Replicas is the routable replica set, in index order.
	Replicas []Replica `json:"replicas"`
	// ShardSize caps how many replicas one tenant's shuffle shard spans;
	// 0 (or >= len(Replicas)) gives every tenant the full replica set.
	ShardSize int `json:"shard_size"`

	ring ring
}

// vnodesPerReplica is the virtual-node fan-out per replica on the ring.
// 64 keeps the expected per-replica key imbalance in the few-percent
// range while the ring stays small enough to rebuild on every publish.
const vnodesPerReplica = 64

// ring is the precomputed consistent-hash ring of a snapshot: virtual
// node hash points sorted ascending, each owning replica recorded by
// index into Snapshot.Replicas.
type ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	index int
}

// fnv1a is the 64-bit FNV-1a hash — deterministic across processes and
// architectures, which seeded map iteration or hash/maphash are not.
func fnv1a(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// mix is splitmix64's finalizer; it decorrelates sequential vnode
// ordinals so a replica's virtual nodes scatter over the whole ring.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Seal precomputes the snapshot's ring. The builder calls it before
// publishing; Routers treat an unsealed snapshot as a protocol error.
func (s *Snapshot) Seal() {
	s.ring.points = make([]ringPoint, 0, len(s.Replicas)*vnodesPerReplica)
	for i, r := range s.Replicas {
		base := fnv1a(r.Name)
		for v := 0; v < vnodesPerReplica; v++ {
			s.ring.points = append(s.ring.points, ringPoint{
				hash:  mix(base + uint64(v)),
				index: i,
			})
		}
	}
	sort.Slice(s.ring.points, func(a, b int) bool {
		p, q := s.ring.points[a], s.ring.points[b]
		if p.hash != q.hash {
			return p.hash < q.hash
		}
		return p.index < q.index
	})
}

// sealed reports whether Seal ran.
func (s *Snapshot) sealed() bool { return len(s.Replicas) == 0 || len(s.ring.points) > 0 }

// owner walks the ring clockwise from key's hash point to the first
// virtual node whose replica is allowed. It returns -1 when no allowed
// replica exists.
func (s *Snapshot) owner(key string, allowed func(int) bool) int {
	pts := s.ring.points
	if len(pts) == 0 {
		return -1
	}
	// FNV-1a alone has weak high-bit avalanche for keys that differ only
	// in trailing characters — sequential SUPIs would cluster into one
	// ring gap. The splitmix64 finalizer decorrelates them.
	h := mix(fnv1a(key))
	start := sort.Search(len(pts), func(i int) bool { return pts[i].hash >= h })
	for off := 0; off < len(pts); off++ {
		p := pts[(start+off)%len(pts)]
		if allowed == nil || allowed(p.index) {
			return p.index
		}
	}
	return -1
}

// Owner returns the replica index owning key over the full replica set.
func (s *Snapshot) Owner(key string) int { return s.owner(key, nil) }

// ShardFor returns the tenant's shuffle shard: a deterministic
// ShardSize-element subset of the replica indices, drawn by a
// tenant-seeded Fisher–Yates pass. Distinct tenants get (with high
// probability) distinct subsets, so a tenant saturating its shard leaves
// most other tenants' shards untouched — the shuffle-sharding blast-radius
// argument. A zero or over-wide ShardSize yields every replica.
func (s *Snapshot) ShardFor(tenant string) []int {
	n := len(s.Replicas)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	size := s.ShardSize
	if size <= 0 || size >= n {
		return all
	}
	seed := fnv1a(tenant)
	for i := 0; i < size; i++ {
		seed = mix(seed)
		j := i + int(seed%uint64(n-i))
		all[i], all[j] = all[j], all[i]
	}
	shard := all[:size]
	sort.Ints(shard)
	return shard
}

// RouteIn picks the replica owning supi within the tenant's shuffle
// shard: the ring walk simply skips virtual nodes outside the shard, so
// shard membership changes never disturb the affinity of SUPIs whose
// owner stays in the shard.
func (s *Snapshot) RouteIn(tenant, supi string) int {
	n := len(s.Replicas)
	if n == 0 {
		return -1
	}
	if s.ShardSize <= 0 || s.ShardSize >= n {
		return s.owner(supi, nil)
	}
	shard := s.ShardFor(tenant)
	member := make(map[int]bool, len(shard))
	for _, i := range shard {
		member[i] = true
	}
	return s.owner(supi, func(i int) bool { return member[i] })
}

// Router is a data plane's view of the routing topology. It holds exactly
// one snapshot — the last one it acked — in an atomic pointer, so Route
// is a lock-free read and never blocks on, or upcalls into, the control
// plane. Apply is the push target the builder drives.
type Router struct {
	snap atomic.Pointer[Snapshot]

	applied atomic.Uint64
	nacked  atomic.Uint64
}

// NewRouter returns an empty Router; it routes nothing until the first
// snapshot is applied.
func NewRouter() *Router { return &Router{} }

// Apply installs a pushed snapshot. It acks (nil) only when the snapshot
// is sealed and its epoch strictly advances the current one; otherwise it
// nacks with an error and keeps the last-known-good snapshot untouched.
func (r *Router) Apply(s *Snapshot) error {
	if s == nil || !s.sealed() {
		r.nacked.Add(1)
		return fmt.Errorf("topology: nack: unsealed snapshot")
	}
	for {
		cur := r.snap.Load()
		if cur != nil && s.Epoch <= cur.Epoch {
			r.nacked.Add(1)
			return fmt.Errorf("topology: nack: epoch %d does not advance %d", s.Epoch, cur.Epoch)
		}
		if r.snap.CompareAndSwap(cur, s) {
			r.applied.Add(1)
			return nil
		}
	}
}

// Snapshot returns the last-known-good snapshot (nil before any apply).
func (r *Router) Snapshot() *Snapshot { return r.snap.Load() }

// Epoch reports the applied epoch (0 before any apply).
func (r *Router) Epoch() uint64 {
	if s := r.snap.Load(); s != nil {
		return s.Epoch
	}
	return 0
}

// Stats reports how many pushes this router acked and nacked.
func (r *Router) Stats() (applied, nacked uint64) {
	return r.applied.Load(), r.nacked.Load()
}

// Route resolves (tenant, supi) to a replica index on the last-known-good
// snapshot. ok is false only when no snapshot was ever applied — the one
// state in which a data plane must fall back to its static wiring.
func (r *Router) Route(tenant, supi string) (int, bool) {
	s := r.snap.Load()
	if s == nil || len(s.Replicas) == 0 {
		return 0, false
	}
	idx := s.RouteIn(tenant, supi)
	if idx < 0 {
		return 0, false
	}
	return idx, true
}
