package experiments

import (
	"context"
	"io"
	"time"

	"shield5g/internal/metrics"
	"shield5g/internal/paka"
)

// IsolationPair holds container-vs-SGX summaries for one metric.
type IsolationPair struct {
	Container metrics.Summary
	SGX       metrics.Summary
}

// Ratio is the SGX/container median overhead.
func (p IsolationPair) Ratio() float64 { return metrics.Ratio(p.SGX, p.Container) }

// Fig9Result holds the functional (a) and total (b) latency of every
// module under both isolation modes, plus the response-time data that
// feeds Fig. 10 and Table II.
type Fig9Result struct {
	Functional map[paka.ModuleKind]IsolationPair
	Total      map[paka.ModuleKind]IsolationPair
	Response   map[paka.ModuleKind]IsolationPair
	// InitialSGX is the cold first-request response time per module
	// (Fig. 10b).
	InitialSGX map[paka.ModuleKind]time.Duration
}

// Fig9 measures L_F and L_T for each P-AKA module in container and SGX
// deployments (500 registrations each by default). The same runs yield
// the stable and initial response times for Fig. 10 and the ratios of
// Table II.
func Fig9(ctx context.Context, cfg Config) (*Fig9Result, error) {
	n := cfg.iterations()
	result := &Fig9Result{
		Functional: make(map[paka.ModuleKind]IsolationPair),
		Total:      make(map[paka.ModuleKind]IsolationPair),
		Response:   make(map[paka.ModuleKind]IsolationPair),
		InitialSGX: make(map[paka.ModuleKind]time.Duration),
	}
	for _, kind := range paka.Kinds() {
		var pairFn, pairTot, pairResp IsolationPair
		for _, iso := range []paka.Isolation{paka.Container, paka.SGX} {
			r, err := newRig(ctx, kind, cfg.Seed+uint64(kind)*31+uint64(iso)*131, rigOptions{isolation: iso})
			if err != nil {
				return nil, err
			}
			run, err := r.run(ctx, n)
			r.stop()
			if err != nil {
				return nil, err
			}
			resp := run.responses.Summarize()
			switch iso {
			case paka.Container:
				pairFn.Container = run.functional
				pairTot.Container = run.total
				pairResp.Container = resp
			case paka.SGX:
				pairFn.SGX = run.functional
				pairTot.SGX = run.total
				pairResp.SGX = resp
				result.InitialSGX[kind] = run.initial
			}
		}
		result.Functional[kind] = pairFn
		result.Total[kind] = pairTot
		result.Response[kind] = pairResp
	}
	return result, nil
}

// Render prints the paper-style rows for Fig. 9a and 9b.
func (r *Fig9Result) Render(w io.Writer) {
	fprintf(w, "Figure 9a: Functional latency LF (us)\n")
	fprintf(w, "%-8s %14s %14s %8s\n", "module", "container med", "sgx med", "ratio")
	for _, kind := range paka.Kinds() {
		p := r.Functional[kind]
		fprintf(w, "%-8s %14.1f %14.1f %7.2fx\n", kind, micro(p.Container.Median), micro(p.SGX.Median), p.Ratio())
	}
	fprintf(w, "\nFigure 9b: Total latency LT (us)\n")
	fprintf(w, "%-8s %14s %14s %8s\n", "module", "container med", "sgx med", "ratio")
	for _, kind := range paka.Kinds() {
		p := r.Total[kind]
		fprintf(w, "%-8s %14.1f %14.1f %7.2fx\n", kind, micro(p.Container.Median), micro(p.SGX.Median), p.Ratio())
	}
}

func micro(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
