// Package topo is the control-plane half of the sharded-core topology
// protocol: it owns the authoritative replica set and *pushes* versioned
// routing snapshots into data-plane topology.Routers. This is the NRF
// promoted from a passive registry to an authoritative control plane —
// but strictly off the request path: data planes never call into this
// package to route (the shieldlint `planeboundary` analyzer rejects the
// import), they only receive pushes, ack or nack them, and keep serving
// on their last-known-good snapshot when the NRF is unavailable.
package topo

import (
	"fmt"
	"sync"

	"shield5g/internal/topology"
)

// Subscriber is one data plane receiving topology pushes. topology.Router
// implements it; anything else (tests, future NFs) may too.
type Subscriber interface {
	Apply(*topology.Snapshot) error
}

// PushResult tallies one publish round.
type PushResult struct {
	Epoch  uint64
	Acked  int
	Nacked int
}

// Builder assembles and distributes routing snapshots. All methods are
// safe for concurrent use; publishes are single-filed so epochs observed
// by subscribers are strictly increasing.
type Builder struct {
	mu        sync.Mutex
	epoch     uint64
	replicas  []topology.Replica
	shardSize int
	subs      []Subscriber
	// last retains the most recently published snapshot so late
	// subscribers can be caught up without minting a new epoch.
	last *topology.Snapshot
}

// NewBuilder creates a builder with an empty replica set.
func NewBuilder() *Builder { return &Builder{} }

// SetReplicas replaces the authoritative replica set (index order). The
// change is staged; nothing reaches a data plane until Publish.
func (b *Builder) SetReplicas(replicas []topology.Replica) {
	b.mu.Lock()
	b.replicas = append([]topology.Replica(nil), replicas...)
	b.mu.Unlock()
}

// SetShardSize stages the per-tenant shuffle-shard width (0 = no cap).
func (b *Builder) SetShardSize(n int) {
	b.mu.Lock()
	b.shardSize = n
	b.mu.Unlock()
}

// Subscribe registers a data plane for pushes and, when a snapshot has
// already been published, immediately catches it up with the current one.
// Subscription order is the deterministic push order of every subsequent
// Publish.
func (b *Builder) Subscribe(s Subscriber) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.subs = append(b.subs, s)
	if b.last != nil {
		if err := s.Apply(b.last); err != nil {
			return fmt.Errorf("topo: catch-up push: %w", err)
		}
	}
	return nil
}

// Publish seals the staged replica set into a fresh snapshot under the
// next epoch and pushes it to every subscriber in subscription order,
// collecting acks and nacks. A nack never aborts the round: the nacking
// data plane keeps its last-known-good snapshot and the remaining
// subscribers still receive the push — exactly the asynchronous,
// individually-acked distribution of the milestone-3 pattern, collapsed
// to synchronous calls by the in-process simulation.
func (b *Builder) Publish() PushResult {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.epoch++
	snap := &topology.Snapshot{
		Epoch:     b.epoch,
		Replicas:  append([]topology.Replica(nil), b.replicas...),
		ShardSize: b.shardSize,
	}
	snap.Seal()
	b.last = snap
	res := PushResult{Epoch: snap.Epoch}
	for _, s := range b.subs {
		if err := s.Apply(snap); err != nil {
			res.Nacked++
			continue
		}
		res.Acked++
	}
	return res
}

// Epoch reports the last published epoch (0 before the first Publish).
func (b *Builder) Epoch() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.epoch
}

// Current returns the last published snapshot (nil before the first
// Publish).
func (b *Builder) Current() *topology.Snapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.last
}
