package sbi

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

type codecFixture struct {
	SUPI string        `json:"supi"`
	RAND []byte        `json:"rand,omitempty"`
	N    int           `json:"n"`
	D    time.Duration `json:"d,omitempty"`
	Nest *codecFixture `json:"nest,omitempty"`
}

// TestMarshalBodyMatchesJSONMarshal pins the pooled encoder byte-for-byte
// to json.Marshal — the SBI cost model charges by body length, so even a
// trailing newline would skew every modelled latency.
func TestMarshalBodyMatchesJSONMarshal(t *testing.T) {
	cases := []any{
		&codecFixture{SUPI: "imsi-001010000000001", RAND: bytes.Repeat([]byte{0xAB}, 16), N: 7},
		&codecFixture{SUPI: "<&>", D: 5 * time.Second, Nest: &codecFixture{N: -1}},
		&ProblemDetails{Title: "Forbidden", Status: 403, Cause: "X", RetryAfter: time.Millisecond},
		map[string]any{"a": 1.5, "b": []string{"x", "y"}},
		nil,
		42,
		"plain \"string\" with <html>",
	}
	for i, v := range cases {
		for round := 0; round < 3; round++ { // exercise pool reuse
			got, gerr := MarshalBody(v)
			want, werr := json.Marshal(v)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("case %d: err mismatch: %v vs %v", i, gerr, werr)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("case %d round %d:\n got %q\nwant %q", i, round, got, want)
			}
			ReleaseBody(got)
		}
	}
}

func TestMarshalBodyError(t *testing.T) {
	if _, err := MarshalBody(func() {}); err == nil {
		t.Fatal("marshal of a func: want error")
	}
	// The pool must still work after the error path.
	out, err := MarshalBody(1)
	if err != nil || string(out) != "1" {
		t.Fatalf("after error: %q, %v", out, err)
	}
	ReleaseBody(out)
}

func TestUnmarshalBodyMatchesJSONUnmarshal(t *testing.T) {
	body, _ := json.Marshal(&codecFixture{SUPI: "imsi-9", RAND: []byte{1, 2, 3}, N: 3,
		Nest: &codecFixture{SUPI: "inner"}})
	for round := 0; round < 3; round++ {
		var a, b codecFixture
		if err := UnmarshalBody(body, &a); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := json.Unmarshal(body, &b); err != nil {
			t.Fatal(err)
		}
		if a.SUPI != b.SUPI || !bytes.Equal(a.RAND, b.RAND) || a.N != b.N ||
			(a.Nest == nil) != (b.Nest == nil) || a.Nest.SUPI != b.Nest.SUPI {
			t.Fatalf("round %d: decoded %+v, want %+v", round, a, b)
		}
	}
}

// TestUnmarshalBodyDecodedSlicesDoNotAlias: decoded []byte fields must
// survive the body's release back into the pool.
func TestUnmarshalBodyDecodedSlicesDoNotAlias(t *testing.T) {
	body, _ := MarshalBody(&codecFixture{RAND: bytes.Repeat([]byte{0x5A}, 16)})
	var v codecFixture
	if err := UnmarshalBody(body, &v); err != nil {
		t.Fatal(err)
	}
	ReleaseBody(body)
	// Recycle the buffer through another marshal, overwriting its bytes.
	other, _ := MarshalBody(map[string]string{"x": "yyyyyyyyyyyyyyyyyyyyyyyyyyyyyy"})
	if !bytes.Equal(v.RAND, bytes.Repeat([]byte{0x5A}, 16)) {
		t.Fatal("decoded field aliased the released body")
	}
	ReleaseBody(other)
}

func TestUnmarshalBodyErrors(t *testing.T) {
	var v codecFixture
	if err := UnmarshalBody(nil, &v); err == nil {
		t.Fatal("empty body: want error")
	}
	if err := UnmarshalBody([]byte("{bad"), &v); err == nil {
		t.Fatal("malformed body: want error")
	}
	// Pool still sane after the discard path.
	if err := UnmarshalBody([]byte(`{"n":9}`), &v); err != nil || v.N != 9 {
		t.Fatalf("after error: %+v, %v", v, err)
	}
}

func TestReleaseBodyNilSafe(t *testing.T) {
	ReleaseBody(nil)
	ReleaseBody([]byte{})
}

// TestCodecConcurrent hammers the pools from many goroutines; run with
// -race this proves codec states are never shared.
func TestCodecConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	fail := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			in := &codecFixture{SUPI: "imsi-00101", N: g}
			for i := 0; i < 300; i++ {
				body, err := MarshalBody(in)
				if err != nil {
					fail <- err.Error()
					return
				}
				var out codecFixture
				if err := UnmarshalBody(body, &out); err != nil || out.N != g {
					fail <- "decode mismatch under concurrency"
					return
				}
				ReleaseBody(body)
			}
		}(g)
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}
