// Introspection: the paper's Key Issue 7/15 threat scenario. An attacker
// with hypervisor/container-engine privileges dumps the memory of the eUDM
// AKA service. Against the plain container the dump yields the subscriber's
// long-term key in plaintext; against the SGX-shielded module it yields
// only memory-encryption-engine ciphertext.
package main

import (
	"bytes"
	"context"
	"fmt"
	"os"

	"shield5g"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "introspection: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	// The "stolen" credential: a subscriber key K.
	k := []byte("k-subscriber-001")

	for _, iso := range []shield5g.Isolation{shield5g.Container, shield5g.SGX, shield5g.SEV} {
		tb, err := shield5g.NewTestbed(ctx, shield5g.SliceConfig{Isolation: iso, Seed: 7})
		if err != nil {
			return err
		}
		sub, err := tb.AddSubscriber(ctx, k, nil)
		if err != nil {
			tb.Close()
			return err
		}
		if _, err := tb.Register(ctx, sub); err != nil {
			tb.Close()
			return err
		}

		fmt.Printf("\n--- attacker dumps eUDM memory (%s deployment) ---\n", iso)
		dump := tb.Slice.Modules[shield5g.EUDM].MemoryDump()
		leaked := false
		for region, data := range dump {
			fmt.Printf("region %-40s = %x\n", region, data)
			if bytes.Contains(data, k) {
				leaked = true
			}
		}
		switch {
		case leaked && iso == shield5g.Container:
			fmt.Println("=> plaintext subscriber key recovered: container isolation is NOT enough (KI 25/26)")
		case !leaked && iso == shield5g.SGX:
			fmt.Println("=> only MEE ciphertext visible: the enclave defeats memory introspection (KI 7/15)")
		case !leaked && iso == shield5g.SEV:
			fmt.Println("=> SEV memory encryption also hides the key (but note the ciphertext side channels the paper cites)")
		default:
			tb.Close()
			return fmt.Errorf("unexpected outcome: leaked=%v under %s", leaked, iso)
		}
		tb.Close()
	}
	return nil
}
