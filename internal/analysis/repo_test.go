package analysis

import (
	"encoding/json"
	"go/ast"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestShieldlintCleanOnRepo is the smoke half of the acceptance
// contract: the full suite runs over every package of the module with
// zero unsuppressed findings. A new wall-clock read, secret log line or
// unlocked map access anywhere in the tree turns this red.
func TestShieldlintCleanOnRepo(t *testing.T) {
	sharedLoader(t)
	if len(repoPkgs) == 0 {
		t.Fatal("module load returned no packages")
	}
	diags, err := Run(repoPkgs, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Active(diags) {
		t.Errorf("unsuppressed finding: %s", d)
	}
}

// TestAnnotationsAreLoadBearing is the other half: every
// //shieldlint:wallclock and //shieldlint:ignore annotation in the tree
// must still suppress a real finding. If the code under an annotation
// is refactored away, the stale annotation fails here; if the
// annotation is removed instead, the finding goes active and
// TestShieldlintCleanOnRepo fails. Either way the set of escape
// hatches cannot drift silently.
func TestAnnotationsAreLoadBearing(t *testing.T) {
	sharedLoader(t)
	diags, err := Run(repoPkgs, Analyzers())
	if err != nil {
		t.Fatal(err)
	}

	annotated := map[string]string{
		"cmd/gnbsim/main.go":             "determinism",
		"internal/costmodel/realtime.go": "determinism",
		"internal/gnb/gnb.go":            "determinism",
		"internal/hmee/sgx/enclave.go":   "determinism",
		"internal/sbi/tls.go":            "determinism",
		"internal/nf/udr/udr.go":         "secretflow",
		"internal/sbi/codec.go":          "hotalloc",
	}
	found := make(map[string]bool)
	suppressed := make(map[[2]string]bool) // {filename, analyzer}
	anySuppressed := make(map[string]bool) // filename, for "all" directives
	for _, d := range diags {
		if !d.Suppressed {
			continue
		}
		suppressed[[2]string{d.Pos.Filename, d.Analyzer}] = true
		anySuppressed[d.Pos.Filename] = true
		for suffix, analyzer := range annotated {
			if d.Analyzer == analyzer && strings.HasSuffix(d.Pos.Filename, suffix) {
				found[suffix] = true
			}
		}
	}
	for suffix, analyzer := range annotated {
		if !found[suffix] {
			t.Errorf("%s: no suppressed %s finding — its shieldlint annotation is stale or the analyzer regressed", suffix, analyzer)
		}
	}

	// Self-discovering sweep over every suppression directive in the
	// tree: each named analyzer must still have a suppressed finding in
	// the directive's file (per-file granularity — good enough to catch
	// a stale escape hatch, loose enough to survive line moves). Unlike
	// the anchor map above this needs no updating: the first
	// //shieldlint:ignore poolowner or lockorder site to land in the
	// tree is covered the moment it appears. The one exception is a
	// stripemap directive on a map-field declaration — that is
	// configuration the analyzer consumes (the field is excluded from
	// guarding), so no finding ever exists to suppress.
	for _, pkg := range repoPkgs {
		if pkg.Standard {
			continue
		}
		for _, f := range pkg.Files {
			mapFieldLines := make(map[int]bool)
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					if _, isMap := field.Type.(*ast.MapType); isMap {
						mapFieldLines[pkg.Fset.Position(field.Pos()).Line] = true
					}
				}
				return true
			})
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					names, ok := parseDirective(c.Text)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, name := range names {
						if name == "stripemap" && (mapFieldLines[pos.Line] || mapFieldLines[pos.Line+1]) {
							continue
						}
						stale := false
						if name == "all" {
							stale = !anySuppressed[pos.Filename]
						} else {
							stale = !suppressed[[2]string{pos.Filename, name}]
						}
						if stale {
							t.Errorf("%s:%d: shieldlint directive for %q suppresses no finding in this file — stale annotation", pos.Filename, pos.Line, name)
						}
					}
				}
			}
		}
	}
}

// TestShieldlintBinary runs the real CLI entry point end to end.
func TestShieldlintBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go run in -short mode")
	}
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./tools/shieldlint", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("shieldlint exited non-zero: %v\n%s", err, out)
	}
}

// TestShieldlintOutputModes checks the machine-readable formats on a
// package with known suppressed findings: -json emits one parseable
// object per finding with the documented fields, and -format=github
// emits workflow-command annotations. Both must keep exit code 0 when
// every finding is suppressed.
func TestShieldlintOutputModes(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go run in -short mode")
	}
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}

	jsonCmd := exec.Command("go", "run", "./tools/shieldlint",
		"-json", "-show-suppressed", "./internal/costmodel")
	jsonCmd.Dir = root
	out, err := jsonCmd.Output()
	if err != nil {
		t.Fatalf("shieldlint -json exited non-zero: %v\n%s", err, out)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("shieldlint -json printed no findings for internal/costmodel (known suppressed wallclock sites)")
	}
	for _, line := range lines {
		var f struct {
			Analyzer   string `json:"analyzer"`
			File       string `json:"file"`
			Line       int    `json:"line"`
			Message    string `json:"message"`
			Suppressed bool   `json:"suppressed"`
		}
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("non-JSON output line %q: %v", line, err)
		}
		if f.Analyzer == "" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("JSON finding missing fields: %s", line)
		}
		if filepath.IsAbs(f.File) {
			t.Errorf("JSON finding file %q not module-relative", f.File)
		}
	}

	ghCmd := exec.Command("go", "run", "./tools/shieldlint",
		"-format=github", "-show-suppressed", "./internal/costmodel")
	ghCmd.Dir = root
	out, err = ghCmd.Output()
	if err != nil {
		t.Fatalf("shieldlint -format=github exited non-zero: %v\n%s", err, out)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if !strings.HasPrefix(line, "::notice ") && !strings.HasPrefix(line, "::error ") {
			t.Errorf("github-format line is not a workflow command: %q", line)
		}
		if !strings.Contains(line, "file=") || !strings.Contains(line, "title=shieldlint/") {
			t.Errorf("github-format line missing file/title properties: %q", line)
		}
	}
}
