package analysis

import (
	"os/exec"
	"strings"
	"testing"
)

// TestShieldlintCleanOnRepo is the smoke half of the acceptance
// contract: the full suite runs over every package of the module with
// zero unsuppressed findings. A new wall-clock read, secret log line or
// unlocked map access anywhere in the tree turns this red.
func TestShieldlintCleanOnRepo(t *testing.T) {
	sharedLoader(t)
	if len(repoPkgs) == 0 {
		t.Fatal("module load returned no packages")
	}
	diags, err := Run(repoPkgs, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Active(diags) {
		t.Errorf("unsuppressed finding: %s", d)
	}
}

// TestAnnotationsAreLoadBearing is the other half: every
// //shieldlint:wallclock and //shieldlint:ignore annotation in the tree
// must still suppress a real finding. If the code under an annotation
// is refactored away, the stale annotation fails here; if the
// annotation is removed instead, the finding goes active and
// TestShieldlintCleanOnRepo fails. Either way the set of escape
// hatches cannot drift silently.
func TestAnnotationsAreLoadBearing(t *testing.T) {
	sharedLoader(t)
	diags, err := Run(repoPkgs, Analyzers())
	if err != nil {
		t.Fatal(err)
	}

	annotated := map[string]string{
		"cmd/gnbsim/main.go":             "determinism",
		"internal/costmodel/realtime.go": "determinism",
		"internal/gnb/gnb.go":            "determinism",
		"internal/hmee/sgx/enclave.go":   "determinism",
		"internal/sbi/tls.go":            "determinism",
		"internal/nf/udr/udr.go":         "secretflow",
		"internal/sbi/codec.go":          "hotalloc",
	}
	found := make(map[string]bool)
	for _, d := range diags {
		if !d.Suppressed {
			continue
		}
		for suffix, analyzer := range annotated {
			if d.Analyzer == analyzer && strings.HasSuffix(d.Pos.Filename, suffix) {
				found[suffix] = true
			}
		}
	}
	for suffix, analyzer := range annotated {
		if !found[suffix] {
			t.Errorf("%s: no suppressed %s finding — its shieldlint annotation is stale or the analyzer regressed", suffix, analyzer)
		}
	}
}

// TestShieldlintBinary runs the real CLI entry point end to end.
func TestShieldlintBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go run in -short mode")
	}
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./tools/shieldlint", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("shieldlint exited non-zero: %v\n%s", err, out)
	}
}
