// Package core is the high-level entry point of the shield5g library: it
// ties the paper's primary contribution — HMEE-shielded 5G-AKA network
// slices — into a single API. A Testbed owns one deployed slice plus the
// subscriber provisioning and measurement plumbing, and the experiment
// registry maps every table and figure of the paper onto a runnable
// reproduction.
package core

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"shield5g/internal/crypto/milenage"
	"shield5g/internal/crypto/suci"
	"shield5g/internal/deploy"
	"shield5g/internal/experiments"
	"shield5g/internal/gnb"
	"shield5g/internal/ue"
)

// Testbed is a deployed network slice with provisioning helpers.
type Testbed struct {
	// Slice is the running deployment.
	Slice *deploy.Slice

	// nextMSIN is atomic so AddSubscriber can be called from parallel
	// mass-registration provisioning callbacks.
	nextMSIN atomic.Int64
}

// NewTestbed deploys a slice. For SGX isolation this includes the full
// enclave build (the paper's Fig. 7 cost, charged to virtual time).
func NewTestbed(ctx context.Context, cfg deploy.SliceConfig) (*Testbed, error) {
	s, err := deploy.NewSlice(ctx, cfg)
	if err != nil {
		return nil, err
	}
	t := &Testbed{Slice: s}
	t.nextMSIN.Store(1)
	return t, nil
}

// Close tears the slice down.
func (t *Testbed) Close() { t.Slice.Stop() }

// Subscriber is a provisioned subscriber with its matching device.
type Subscriber struct {
	SUPI suci.SUPI
	K    []byte
	OPc  []byte
	UE   *ue.UE
}

// AddSubscriber provisions a fresh subscriber in the UDR and the AKA
// execution environment, and returns a UE device holding the matching
// USIM credentials. A nil profile provisions a simulator UE; pass
// ue.OnePlus8() for the paper's COTS device behaviour.
func (t *Testbed) AddSubscriber(ctx context.Context, k []byte, profile *ue.COTSProfile) (*Subscriber, error) {
	supi := suci.SUPI{
		MCC:  t.Slice.Config.MCC,
		MNC:  t.Slice.Config.MNC,
		MSIN: fmt.Sprintf("%010d", t.nextMSIN.Add(1)),
	}
	if len(k) != 16 {
		return nil, fmt.Errorf("core: subscriber key length %d, want 16", len(k))
	}
	opc, err := milenage.ComputeOPc(k, make([]byte, 16))
	if err != nil {
		return nil, err
	}
	if err := t.Slice.ProvisionSubscriber(ctx, supi, k, opc); err != nil {
		return nil, err
	}
	device, err := ue.New(ue.Config{
		SUPI:                 supi,
		K:                    k,
		OPc:                  opc,
		HomeNetworkPublicKey: t.Slice.HomeNetworkKey.PublicKey(),
		HomeNetworkKeyID:     t.Slice.HomeNetworkKey.ID,
		Env:                  t.Slice.Env,
		Profile:              profile,
	})
	if err != nil {
		return nil, err
	}
	return &Subscriber{SUPI: supi, K: k, OPc: opc, UE: device}, nil
}

// Register runs the subscriber's UE through the full registration flow
// and returns the RAN session.
func (t *Testbed) Register(ctx context.Context, sub *Subscriber) (*gnb.Session, error) {
	return t.Slice.GNB.RegisterUE(ctx, sub.UE)
}

// Experiment is one runnable reproduction of a paper table or figure.
type Experiment struct {
	Name        string
	Description string
	Run         func(ctx context.Context, cfg experiments.Config, w io.Writer) error
}

// ExperimentRegistry maps experiment names to runners.
func ExperimentRegistry() map[string]Experiment {
	render := func(name, desc string, run func(ctx context.Context, cfg experiments.Config) (interface{ Render(io.Writer) }, error)) Experiment {
		return Experiment{
			Name:        name,
			Description: desc,
			Run: func(ctx context.Context, cfg experiments.Config, w io.Writer) error {
				r, err := run(ctx, cfg)
				if err != nil {
					return err
				}
				r.Render(w)
				return nil
			},
		}
	}
	reg := map[string]Experiment{
		"fig7": render("fig7", "Enclave load time for the P-AKA modules",
			func(ctx context.Context, cfg experiments.Config) (interface{ Render(io.Writer) }, error) {
				return experiments.Fig7(ctx, cfg)
			}),
		"fig8": render("fig8", "Threads and EPC size sweep on the eUDM module",
			func(ctx context.Context, cfg experiments.Config) (interface{ Render(io.Writer) }, error) {
				return experiments.Fig8(ctx, cfg)
			}),
		"fig9": render("fig9", "Functional and total latency, container vs SGX",
			func(ctx context.Context, cfg experiments.Config) (interface{ Render(io.Writer) }, error) {
				return experiments.Fig9(ctx, cfg)
			}),
		"fig10": render("fig10", "Stable and initial response time of the modules",
			func(ctx context.Context, cfg experiments.Config) (interface{ Render(io.Writer) }, error) {
				return experiments.Fig10(ctx, cfg)
			}),
		"table2": render("table2", "SGX overhead ratios across the isolated modules",
			func(ctx context.Context, cfg experiments.Config) (interface{ Render(io.Writer) }, error) {
				return experiments.Table2(ctx, cfg)
			}),
		"table3": render("table3", "SGX specific operational statistics",
			func(ctx context.Context, cfg experiments.Config) (interface{ Render(io.Writer) }, error) {
				return experiments.Table3(ctx, cfg)
			}),
		"ablation": render("ablation", "Optimization ablation: exitless, user-level TCP, preheat (§V-B7)",
			func(ctx context.Context, cfg experiments.Config) (interface{ Render(io.Writer) }, error) {
				return experiments.Ablation(ctx, cfg)
			}),
		"teecompare": render("teecompare", "HMEE backends compared: SGX vs SEV vs container (§IV-C)",
			func(ctx context.Context, cfg experiments.Config) (interface{ Render(io.Writer) }, error) {
				return experiments.TEECompare(ctx, cfg)
			}),
		"scale": render("scale", "Horizontal scaling of enclave worker pools (§V-B7)",
			func(ctx context.Context, cfg experiments.Config) (interface{ Render(io.Writer) }, error) {
				return experiments.Scale(ctx, cfg)
			}),
		"massreg": render("massreg", "Concurrent mass-registration sweep of the parallel gNBSIM driver",
			func(ctx context.Context, cfg experiments.Config) (interface{ Render(io.Writer) }, error) {
				return experiments.MassReg(ctx, cfg)
			}),
		"chaos": render("chaos", "Fault-injection sweep: SBI resilience and enclave crash-recovery under seeded faults",
			func(ctx context.Context, cfg experiments.Config) (interface{ Render(io.Writer) }, error) {
				return experiments.Chaos(ctx, cfg)
			}),
		"batching": render("batching", "Boundary amortization sweep: keep-alive batching and the AV precomputation pool",
			func(ctx context.Context, cfg experiments.Config) (interface{ Render(io.Writer) }, error) {
				return experiments.Batching(ctx, cfg)
			}),
		"profiles": render("profiles", "Hot-path allocation profile of a deterministic mass-registration run",
			func(ctx context.Context, cfg experiments.Config) (interface{ Render(io.Writer) }, error) {
				return experiments.Profiles(ctx, cfg)
			}),
		"storm": render("storm", "Signaling-storm survival: overload control and priority admission at 10x overload",
			func(ctx context.Context, cfg experiments.Config) (interface{ Render(io.Writer) }, error) {
				return experiments.Storm(ctx, cfg)
			}),
		"shardscale": render("shardscale", "Horizontally sharded core: fleet throughput across replica counts 1-8",
			func(ctx context.Context, cfg experiments.Config) (interface{ Render(io.Writer) }, error) {
				return experiments.ShardScale(ctx, cfg)
			}),
		"e2e": render("e2e", "End-to-end session setup and the SGX share",
			func(ctx context.Context, cfg experiments.Config) (interface{ Render(io.Writer) }, error) {
				return experiments.E2E(ctx, cfg)
			}),
		"ota": render("ota", "OTA feasibility test with the COTS UE profile",
			func(ctx context.Context, cfg experiments.Config) (interface{ Render(io.Writer) }, error) {
				return experiments.OTA(ctx, cfg)
			}),
		"table1": {
			Name: "table1", Description: "Enclave boundary parameters (paper vs implementation)",
			Run: func(_ context.Context, _ experiments.Config, w io.Writer) error {
				experiments.Table1(w)
				return nil
			},
		},
		"table4": {
			Name: "table4", Description: "Simulated testbed configuration",
			Run: func(_ context.Context, _ experiments.Config, w io.Writer) error {
				experiments.Table4(w)
				return nil
			},
		},
		"table5": {
			Name: "table5", Description: "Key issues vs HMEE coverage",
			Run: func(_ context.Context, _ experiments.Config, w io.Writer) error {
				experiments.Table5(w)
				return nil
			},
		},
	}
	return reg
}

// ExperimentNames lists the registry in stable order.
func ExperimentNames() []string {
	reg := ExperimentRegistry()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// csvWriters maps experiments with a plot-friendly series export.
func csvWriters() map[string]func(ctx context.Context, cfg experiments.Config, w io.Writer) error {
	return map[string]func(ctx context.Context, cfg experiments.Config, w io.Writer) error{
		"fig7": func(ctx context.Context, cfg experiments.Config, w io.Writer) error {
			r, err := experiments.Fig7(ctx, cfg)
			if err != nil {
				return err
			}
			return r.WriteCSV(w)
		},
		"fig8": func(ctx context.Context, cfg experiments.Config, w io.Writer) error {
			r, err := experiments.Fig8(ctx, cfg)
			if err != nil {
				return err
			}
			return r.WriteCSV(w)
		},
		"fig9": func(ctx context.Context, cfg experiments.Config, w io.Writer) error {
			r, err := experiments.Fig9(ctx, cfg)
			if err != nil {
				return err
			}
			return r.WriteCSV(w)
		},
		"fig10": func(ctx context.Context, cfg experiments.Config, w io.Writer) error {
			r, err := experiments.Fig10(ctx, cfg)
			if err != nil {
				return err
			}
			return r.WriteCSV(w)
		},
		"scale": func(ctx context.Context, cfg experiments.Config, w io.Writer) error {
			r, err := experiments.Scale(ctx, cfg)
			if err != nil {
				return err
			}
			return r.WriteCSV(w)
		},
		"massreg": func(ctx context.Context, cfg experiments.Config, w io.Writer) error {
			r, err := experiments.MassReg(ctx, cfg)
			if err != nil {
				return err
			}
			return r.WriteCSV(w)
		},
		"chaos": func(ctx context.Context, cfg experiments.Config, w io.Writer) error {
			r, err := experiments.Chaos(ctx, cfg)
			if err != nil {
				return err
			}
			return r.WriteCSV(w)
		},
		"batching": func(ctx context.Context, cfg experiments.Config, w io.Writer) error {
			r, err := experiments.Batching(ctx, cfg)
			if err != nil {
				return err
			}
			return r.WriteCSV(w)
		},
		"profiles": func(ctx context.Context, cfg experiments.Config, w io.Writer) error {
			r, err := experiments.Profiles(ctx, cfg)
			if err != nil {
				return err
			}
			return r.WriteCSV(w)
		},
		"shardscale": func(ctx context.Context, cfg experiments.Config, w io.Writer) error {
			r, err := experiments.ShardScale(ctx, cfg)
			if err != nil {
				return err
			}
			return r.WriteCSV(w)
		},
		"storm": func(ctx context.Context, cfg experiments.Config, w io.Writer) error {
			r, err := experiments.Storm(ctx, cfg)
			if err != nil {
				return err
			}
			return r.WriteCSV(w)
		},
	}
}

// CSVExperiments lists the experiments that support CSV export.
func CSVExperiments() []string {
	m := csvWriters()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteExperimentCSV runs one experiment and writes its raw series as CSV.
func WriteExperimentCSV(ctx context.Context, name string, cfg experiments.Config, w io.Writer) error {
	fn, ok := csvWriters()[name]
	if !ok {
		return fmt.Errorf("core: experiment %q has no CSV export (have %v)", name, CSVExperiments())
	}
	return fn(ctx, cfg, w)
}

// RunExperiment executes one named experiment, writing its rendered
// output to w.
func RunExperiment(ctx context.Context, name string, cfg experiments.Config, w io.Writer) error {
	exp, ok := ExperimentRegistry()[name]
	if !ok {
		return fmt.Errorf("core: unknown experiment %q (have %v)", name, ExperimentNames())
	}
	return exp.Run(ctx, cfg, w)
}

// RunAll executes every experiment in stable order.
func RunAll(ctx context.Context, cfg experiments.Config, w io.Writer) error {
	for _, name := range ExperimentNames() {
		if _, err := fmt.Fprintf(w, "\n=== %s ===\n", name); err != nil {
			return err
		}
		if err := RunExperiment(ctx, name, cfg, w); err != nil {
			return fmt.Errorf("core: experiment %s: %w", name, err)
		}
	}
	return nil
}
