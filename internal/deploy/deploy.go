// Package deploy composes complete 5G network slices: the service-chained
// VNFs (NRF, UDR, UDM, AUSF, AMF, SMF, UPF), the P-AKA execution
// environments under the chosen isolation mode, the gNB, and subscriber
// provisioning — the testbed of the paper's Fig. 4.
//
// Per the paper's co-location requirement (§IV-B), the P-AKA modules are
// deployed on the same simulated host as their parent VNFs: every module
// enclave is built on the slice's single SGX platform, and the
// cryptographic parameters never leave that host.
package deploy

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"io"
	"sync"

	"shield5g/internal/admission"
	"shield5g/internal/chaos"
	"shield5g/internal/costmodel"
	"shield5g/internal/crypto/kdf"
	"shield5g/internal/crypto/suci"
	"shield5g/internal/gnb"
	"shield5g/internal/hmee/sev"
	"shield5g/internal/hmee/sgx"
	"shield5g/internal/nf/amf"
	"shield5g/internal/nf/ausf"
	"shield5g/internal/nf/nrf"
	"shield5g/internal/nf/nrf/topo"
	"shield5g/internal/nf/smf"
	"shield5g/internal/nf/udm"
	"shield5g/internal/nf/udr"
	"shield5g/internal/nf/upf"
	"shield5g/internal/paka"
	"shield5g/internal/sbi"
	"shield5g/internal/simclock"
	"shield5g/internal/topology"
)

// SliceConfig describes one network slice deployment.
type SliceConfig struct {
	// Isolation selects how the AKA functions run: Monolithic (inside
	// the VNFs), Container (extracted, unprotected), or SGX (extracted
	// and enclave-shielded).
	Isolation paka.Isolation
	// MCC/MNC is the serving PLMN (the paper's OTA test uses 001/01).
	MCC, MNC string
	// Seed makes the slice's virtual-time jitter reproducible.
	Seed uint64
	// Env overrides the cost environment (built from Seed when nil).
	Env *costmodel.Env
	// Platform overrides the SGX host (built from Seed when nil; only
	// used for SGX isolation).
	Platform *sgx.Platform
	// Radio selects the access profile (gNBSIM default).
	Radio gnb.RadioProfile
	// EnclaveSizeBytes/MaxThreads/DisablePreheat tune the module
	// enclaves for the Fig. 8 sweeps (defaults: 512 MiB, 4, preheat on).
	EnclaveSizeBytes uint64
	MaxThreads       int
	DisablePreheat   bool
	// Entropy overrides randomness (tests); nil selects crypto/rand.
	Entropy io.Reader
	// Chaos enables the deterministic fault injector on every SBI client
	// of the slice (nil disables injection). The injector is armed as the
	// slice finishes deploying; use Slice.Chaos to disarm around
	// provisioning or to read injection counts.
	Chaos *chaos.Config
	// Resilience tunes the SBI deadline/retry/circuit-breaker layer. nil
	// leaves the transport bare — unless Chaos is set, in which case the
	// default policy applies (injected faults would otherwise turn every
	// hit into a hard failure).
	Resilience *sbi.ResilienceConfig
	// AVPoolDepth enables the UDM's authentication-vector precomputation
	// pool (vectors banked per SUPI, minted in batch crossings); 0
	// disables it, keeping the seed's one-crossing-per-AV path.
	AVPoolDepth int
	// AVBatchSize is the number of vectors minted per pool refill; ≤0
	// defaults to AVPoolDepth.
	AVBatchSize int
	// BinarySBI opts every SBI client of the slice into the negotiated
	// binary frame codec (sbi.Client.EnableBinary): hot-path bodies switch
	// from JSON to zero-copy length-prefixed frames once each client has
	// seen its peer's capability snapshot. Off keeps the seed-identical
	// JSON wire format everywhere.
	BinarySBI bool
	// Overload enables the TS 29.500-style overload-control layer: load
	// meters on the authentication-chain servers, optional bounded-queue
	// shedding, the AMF's priority admission controller, and client-side
	// proportional throttling. nil leaves the slice seed-identical. The
	// machinery starts disarmed — SetOverloadArmed opens the storm window.
	Overload *OverloadProfile
	// Replicas shards the core horizontally: N vertical replica slices
	// (AMF -> AUSF -> UDM -> P-AKA modules each) behind SUPI-affinity
	// consistent-hash routing at the gNB, with the NRF pushing versioned
	// topology snapshots to the data plane. Values <= 1 build the
	// singleton core, bit-identical to the seed. NRF, UDR, SMF and UPF
	// stay shared across replicas.
	Replicas int
	// ShardSize caps each tenant's (gNB, PLMN) shuffle shard to this many
	// replicas, so a noisy tenant only degrades its own subset; 0 lets
	// every tenant route across all replicas. Only meaningful with
	// Replicas > 1.
	ShardSize int
	// Switchless deploys every SGX module with the switchless ECALL
	// submission ring (paka.Config.Switchless): a dedicated in-enclave
	// dispatcher thread serves shared-memory call submissions, so
	// steady-state requests cross with zero EENTER/EEXIT. Requests still
	// opt in per call (paka.WithSwitchless); off keeps the slice
	// bit-identical to the classic-ECALL deployment. SGX only.
	Switchless bool
}

// OverloadProfile selects which overload-control mechanisms a slice runs.
// The zero-value profile is the "limiter off" comparison point: servers
// sense and queue (so a storm's FIFO delay is modelled) but never shed,
// nothing gates admission, and clients never throttle.
type OverloadProfile struct {
	// Shed bounds each metered server's virtual queue; arrivals beyond the
	// bound are rejected 503 OVERLOAD (emergency exempt).
	Shed bool
	// Admission configures the AMF's per-(gNB, PLMN) priority token
	// buckets; nil disables admission control. The Clock field may be left
	// nil — the slice's clock is filled in.
	Admission *admission.Config
	// Throttle makes SBI clients defer work proportionally to
	// peer-advertised load (emergency traffic exempt).
	Throttle bool
}

// Modelled per-request service costs of the metered servers, in cycles —
// the drain rates of their virtual queues. The UDM is the chain's
// bottleneck (SUCI de-concealment plus AV generation behind the enclave
// boundary); the module servers are cheaper per call.
const (
	udmServiceCycles   = 3_600_000
	ausfServiceCycles  = 800_000
	eudmServiceCycles  = 1_600_000
	eausfServiceCycles = 400_000
	eamfServiceCycles  = 400_000
)

// poolBiasWeight scales the UDM's windowed AV-pool miss fraction before it
// is added to the advertised load (see SetOverloadArmed).
const poolBiasWeight = 0.25

// Slice is a running network slice.
type Slice struct {
	Config   SliceConfig
	Env      *costmodel.Env
	Platform *sgx.Platform
	Registry *sbi.Registry

	NRF  *nrf.NRF
	UDR  *udr.UDR
	UDM  *udm.UDM
	AUSF *ausf.AUSF
	AMF  *amf.AMF
	SMF  *smf.SMF
	UPF  *upf.UPF
	GNB  *gnb.GNB

	// Modules holds the extracted P-AKA modules (empty for Monolithic).
	// Populated once inside NewSlice before the Slice is published and
	// read-only afterwards; attestMu guards attested, not this map.
	//shieldlint:ignore stripemap immutable after construction
	Modules map[paka.ModuleKind]*paka.Module

	// Remote clients expose the VNF-side response-time recorders
	// (nil for Monolithic).
	RemoteUDM  *paka.RemoteUDM
	RemoteAUSF *paka.RemoteAUSF
	RemoteAMF  *paka.RemoteAMF

	// MonoUDM is the in-process key store for Monolithic isolation.
	MonoUDM *paka.MonolithicUDM

	// HomeNetworkKey conceals/de-conceals SUPIs for this home network.
	HomeNetworkKey *suci.HomeNetworkKey

	// Chaos is the slice's fault injector (nil when SliceConfig.Chaos was
	// nil). Crash faults on the P-AKA module services restart the module
	// through RestartModule.
	Chaos *chaos.Injector

	// Admission is the AMF's priority admission controller (nil unless
	// SliceConfig.Overload.Admission was set). In a sharded slice it is
	// shard 0's controller; see Shards for the rest. Disarmed until
	// SetOverloadArmed(true).
	Admission *admission.Controller

	// Shards lists the vertical core replicas in shard-index order.
	// Always populated: a singleton slice is one shard whose members
	// alias the top-level UDM/AUSF/AMF/Modules fields.
	Shards []*CoreShard

	// Topology is the NRF's snapshot builder — the control plane that
	// pushes routing snapshots into Router. nil for singleton slices.
	Topology *topo.Builder
	// Router is the gNB's data-plane routing view (last-known-good
	// snapshot). nil for singleton slices.
	Router *topology.Router

	resil   *sbi.ResilienceConfig
	entropy io.Reader

	// resilMu guards resilients: every resilient invoker the slice built,
	// for ResilienceStats aggregation.
	resilMu    sync.Mutex
	resilients []*sbi.ResilientClient

	// metered tracks the servers carrying load meters, for arming;
	// udmBias pairs each UDM replica's meter with its UDM (the meter
	// additionally carries the windowed AV-pool bias).
	metered []*sbi.Server
	udmBias []udmBiasTarget

	attestMu sync.Mutex
	attested map[*paka.Module]bool
}

// udmBiasTarget pairs a UDM front server's load meter with the UDM whose
// pool counters feed its advertised-load bias.
type udmBiasTarget struct {
	srv *sbi.Server
	udm *udm.UDM
}

// CoreShard is one vertical replica of the sharded core: the UDM, AUSF
// and AMF replica plus their private P-AKA module set, statically bound
// to each other at construction (no NRF lookup in any request path).
type CoreShard struct {
	Index int
	// Name is the replica's stable ring identity ("shard-<i>").
	Name string

	UDM  *udm.UDM
	AUSF *ausf.AUSF
	AMF  *amf.AMF

	// Modules holds the shard's P-AKA modules (empty for Monolithic).
	//shieldlint:ignore stripemap immutable after construction
	Modules map[paka.ModuleKind]*paka.Module
	// MonoUDM is the shard's in-process key store under Monolithic
	// isolation.
	MonoUDM *paka.MonolithicUDM

	// Remote clients expose the VNF-side response-time recorders (nil
	// for Monolithic).
	RemoteUDM  *paka.RemoteUDM
	RemoteAUSF *paka.RemoteAUSF
	RemoteAMF  *paka.RemoteAMF

	// Admission is the shard AMF's priority admission controller (nil
	// unless overload admission is configured). Per-shard buckets keep
	// tenant isolation composable with shuffle-sharding: a tenant's
	// storm drains only its own shard's buckets.
	Admission *admission.Controller

	// UDMService/AUSFService are the shard's SBI service names, for
	// overload metering and diagnostics.
	UDMService  string
	AUSFService string
}

// NewSlice builds and starts a slice. For SGX isolation the enclave build
// cost (Fig. 7) is charged to ctx's account. Replicas > 1 selects the
// sharded construction path (see replicas.go); the singleton path below
// stays bit-identical to the seed.
func NewSlice(ctx context.Context, cfg SliceConfig) (*Slice, error) {
	if cfg.Replicas > 1 {
		return newShardedSlice(ctx, cfg)
	}
	if cfg.MCC == "" {
		cfg.MCC = "001"
	}
	if cfg.MNC == "" {
		cfg.MNC = "01"
	}
	if cfg.Isolation == 0 {
		cfg.Isolation = paka.SGX
	}
	entropy := cfg.Entropy
	if entropy == nil {
		entropy = rand.Reader
	}

	env := cfg.Env
	if env == nil {
		env = costmodel.NewEnv(nil, cfg.Seed, nil)
	}
	platform := cfg.Platform
	if platform == nil && cfg.Isolation == paka.SGX {
		var err error
		platform, err = sgx.NewPlatform(sgx.PlatformConfig{Seed: cfg.Seed, Entropy: entropy})
		if err != nil {
			return nil, fmt.Errorf("deploy: SGX platform: %w", err)
		}
	}

	s := &Slice{
		Config:   cfg,
		Env:      env,
		Platform: platform,
		Registry: sbi.NewRegistry(),
		Modules:  make(map[paka.ModuleKind]*paka.Module),
		entropy:  entropy,
		attested: make(map[*paka.Module]bool),
	}
	if cfg.Chaos != nil {
		s.Chaos = chaos.NewInjector(env, *cfg.Chaos)
		// Deployment itself (NRF registration, discovery, module build)
		// runs fault-free; the injector is armed once the slice is up.
		s.Chaos.SetArmed(false)
	}
	switch {
	case cfg.Resilience != nil:
		r := *cfg.Resilience
		s.resil = &r
	case cfg.Chaos != nil:
		r := sbi.DefaultResilienceConfig()
		s.resil = &r
	case cfg.Overload != nil && cfg.Overload.Throttle:
		// Client-side throttling lives in the resilience layer.
		r := sbi.DefaultResilienceConfig()
		s.resil = &r
	}
	if cfg.Overload != nil && cfg.Overload.Admission != nil {
		acfg := *cfg.Overload.Admission
		if acfg.Clock == nil {
			acfg.Clock = env.Clock
		}
		s.Admission = admission.NewController(acfg)
	}

	hnKey, err := suci.GenerateHomeNetworkKey(entropy, 1)
	if err != nil {
		return nil, fmt.Errorf("deploy: home network key: %w", err)
	}
	s.HomeNetworkKey = hnKey

	if s.NRF, err = nrf.New(env, s.Registry); err != nil {
		return nil, fmt.Errorf("deploy: NRF: %w", err)
	}
	if s.UDR, err = udr.New(env, s.Registry); err != nil {
		return nil, fmt.Errorf("deploy: UDR: %w", err)
	}

	udmFns, ausfFns, amfFns, err := s.buildFunctions(ctx, cfg)
	if err != nil {
		return nil, err
	}

	hmee := cfg.Isolation == paka.SGX || cfg.Isolation == paka.SEV
	// Reprovision lets the UDM push a long-term key back into an
	// execution environment that lost its key store to a crash-restart
	// (the container runtime keeps no sealed backup).
	var reprovision func(ctx context.Context, supi string, k []byte) error
	var coalesce func() int
	if m, ok := s.Modules[paka.EUDM]; ok {
		reprovision = func(ctx context.Context, supi string, k []byte) error {
			return m.ProvisionSubscriber(ctx, supi, k)
		}
		if cfg.Switchless {
			// Refill batches widen opportunistically with the demand queued
			// on the eUDM's submission ring — cross-worker call coalescing.
			coalesce = m.RingOccupancy
		}
	}
	udmInvoker := s.buildInvoker(udm.ServiceName)
	if s.UDM, err = udm.New(ctx, udm.Config{
		Env: env, Registry: s.Registry, Invoker: udmInvoker,
		Functions: udmFns, HomeNetworkKey: hnKey, HMEE: hmee, Entropy: entropy,
		Reprovision: reprovision, CoalesceHint: coalesce,
		AVPoolDepth: cfg.AVPoolDepth, AVBatchSize: cfg.AVBatchSize,
	}); err != nil {
		return nil, fmt.Errorf("deploy: UDM: %w", err)
	}

	ausfInvoker := s.buildInvoker(ausf.ServiceName)
	if s.AUSF, err = ausf.New(ctx, ausf.Config{
		Env: env, Registry: s.Registry, Invoker: ausfInvoker,
		Functions: ausfFns, HMEE: hmee,
	}); err != nil {
		return nil, fmt.Errorf("deploy: AUSF: %w", err)
	}

	if s.UPF, err = upf.New(env, s.Registry); err != nil {
		return nil, fmt.Errorf("deploy: UPF: %w", err)
	}
	smfInvoker := s.buildInvoker(smf.ServiceName)
	if s.SMF, err = smf.New(ctx, smf.Config{Env: env, Registry: s.Registry, Invoker: smfInvoker}); err != nil {
		return nil, fmt.Errorf("deploy: SMF: %w", err)
	}

	amfInvoker := s.buildInvoker(amf.ServiceName)
	if s.AMF, err = amf.New(ctx, amf.Config{
		Env: env, Registry: s.Registry, Invoker: amfInvoker,
		Functions: amfFns, MCC: cfg.MCC, MNC: cfg.MNC, HMEE: hmee,
		Admission: s.Admission,
	}); err != nil {
		return nil, fmt.Errorf("deploy: AMF: %w", err)
	}

	if s.GNB, err = gnb.New(gnb.Config{
		Env: env, AMF: s.AMF, UPF: s.UPF, MCC: cfg.MCC, MNC: cfg.MNC, Radio: cfg.Radio,
	}); err != nil {
		return nil, fmt.Errorf("deploy: gNB: %w", err)
	}

	if s.Chaos != nil {
		for kind, m := range s.Modules {
			if e := m.Enclave(); e != nil {
				s.Chaos.RegisterEnclave(m.ServiceName(), e)
			}
			// Only runtimes that can rebuild themselves get a crash hook;
			// for the rest a crash draw degrades to a clean call.
			if cfg.Isolation == paka.SGX || cfg.Isolation == paka.Container {
				kind := kind
				s.Chaos.RegisterCrash(m.ServiceName(), func(ctx context.Context) error {
					return s.RestartModule(ctx, kind)
				})
			}
		}
		s.Chaos.SetArmed(true)
	}
	// The singleton core is one shard whose members alias the top-level
	// fields, so shard-generic consumers (overload wiring, provisioning,
	// counter aggregation) have a single code path.
	s.Shards = []*CoreShard{{
		Index:       0,
		Name:        "shard-0",
		UDM:         s.UDM,
		AUSF:        s.AUSF,
		AMF:         s.AMF,
		Modules:     s.Modules,
		MonoUDM:     s.MonoUDM,
		RemoteUDM:   s.RemoteUDM,
		RemoteAUSF:  s.RemoteAUSF,
		RemoteAMF:   s.RemoteAMF,
		Admission:   s.Admission,
		UDMService:  udm.ServiceName,
		AUSFService: ausf.ServiceName,
	}}
	s.wireOverload()
	return s, nil
}

// wireOverload attaches load meters to the authentication-chain servers
// according to the slice's overload profile. Meters start disarmed, so the
// slice stays seed-identical until SetOverloadArmed opens a storm window.
func (s *Slice) wireOverload() {
	p := s.Config.Overload
	if p == nil {
		return
	}
	maxQueue := func(n int) int {
		if !p.Shed {
			return 0 // sense and queue only: the "limiter off" baseline
		}
		return n
	}
	attach := func(service string, cost simclock.Cycles, queue int) *sbi.Server {
		srv, ok := s.Registry.Lookup(service)
		if !ok {
			return nil
		}
		srv.EnableOverload(s.Env, sbi.OverloadConfig{
			ServiceCycles: cost,
			MaxQueue:      maxQueue(queue),
		})
		s.metered = append(s.metered, srv)
		return srv
	}
	moduleCost := map[paka.ModuleKind]simclock.Cycles{
		paka.EUDM:  eudmServiceCycles,
		paka.EAUSF: eausfServiceCycles,
		paka.EAMF:  eamfServiceCycles,
	}
	// Every replica's servers meter independently — per-replica OCI state
	// is what lets one hot shard advertise overload while its siblings
	// keep accepting. The UDM bias (windowed AV-pool miss pressure) is
	// installed when the window is armed — see SetOverloadArmed.
	for _, shard := range s.Shards {
		if srv := attach(shard.UDMService, udmServiceCycles, 12); srv != nil {
			s.udmBias = append(s.udmBias, udmBiasTarget{srv: srv, udm: shard.UDM})
		}
		attach(shard.AUSFService, ausfServiceCycles, 16)
		for kind, m := range shard.Modules {
			attach(m.ServiceName(), moduleCost[kind], 16)
		}
	}
}

// SetOverloadArmed opens (true) or closes (false) the overload-control
// window: every load meter starts/stops sensing and the admission
// controller starts/stops gating. Closing resets meter and bucket state so
// consecutive storm windows start identically.
func (s *Slice) SetOverloadArmed(v bool) {
	if v {
		// AV-pool miss pressure rides each UDM replica's advert so pool
		// thrash shows up in the OCI before the virtual queue saturates.
		// The fraction is windowed from the arming instant — cumulative
		// counters are dominated by cold-start misses (every subscriber's
		// first authentication is one) and would advertise phantom
		// overload — and weighted down because a storm's fresh-attach
		// share misses by construction, which is demand, not thrash.
		for _, t := range s.udmBias {
			t := t
			h0, m0 := t.udm.PoolCounters()
			t.srv.SetLoadBias(func() float64 {
				h, m := t.udm.PoolCounters()
				dh, dm := h-h0, m-m0
				if total := dh + dm; total > 0 {
					return poolBiasWeight * float64(dm) / float64(total)
				}
				return 0
			})
		}
	}
	for _, srv := range s.metered {
		srv.SetOverloadArmed(v)
	}
	for _, shard := range s.Shards {
		if shard.Admission != nil {
			shard.Admission.SetArmed(v)
		}
	}
}

// OverloadStats snapshots the per-service meter counters of every metered
// server, keyed by service name.
func (s *Slice) OverloadStats() map[string]sbi.OverloadStats {
	out := make(map[string]sbi.OverloadStats, len(s.metered))
	for _, srv := range s.metered {
		out[srv.Name()] = srv.OverloadStats()
	}
	return out
}

// ResilienceStats merges the retry/breaker counters of every resilient
// invoker the slice built (zero when resilience is disabled).
func (s *Slice) ResilienceStats() sbi.ResilienceStats {
	var stats sbi.ResilienceStats
	s.resilMu.Lock()
	for _, r := range s.resilients {
		stats.Merge(r.Stats())
	}
	s.resilMu.Unlock()
	return stats
}

// buildInvoker assembles the slice's SBI client stack for one caller
// identity: the in-process transport, wrapped by the fault injector (so
// injected faults land below the retry layer and are actually retried)
// and then by the resilience layer.
func (s *Slice) buildInvoker(from string) sbi.Invoker {
	client := sbi.NewClient(from, s.Env, s.Registry)
	if s.Config.BinarySBI {
		client.EnableBinary()
	}
	var inv sbi.Invoker = client
	if s.Chaos != nil {
		inv = s.Chaos.Wrap(inv)
	}
	if s.resil != nil {
		cfg := *s.resil
		if p := s.Config.Overload; p != nil && p.Throttle {
			// The base client records each peer's freshest OCI advert; the
			// resilience layer reads it back to throttle proportionally.
			cfg.Peers = client
			cfg.Throttle = true
		}
		r := sbi.NewResilient(inv, s.Env, cfg)
		s.resilMu.Lock()
		s.resilients = append(s.resilients, r)
		s.resilMu.Unlock()
		inv = r
	}
	return inv
}

// buildFunctions creates the three AKA execution environments under the
// configured isolation mode.
func (s *Slice) buildFunctions(ctx context.Context, cfg SliceConfig) (paka.UDMFunctions, paka.AUSFFunctions, paka.AMFFunctions, error) {
	if cfg.Isolation == paka.Monolithic {
		s.MonoUDM = paka.NewMonolithicUDM(s.Env)
		return s.MonoUDM, paka.NewMonolithicAUSF(s.Env), paka.NewMonolithicAMF(s.Env), nil
	}

	// One GSC signing key for all module images of this operator.
	_, signKey, err := ed25519.GenerateKey(s.entropy)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("deploy: GSC sign key: %w", err)
	}
	for _, kind := range paka.Kinds() {
		m, err := paka.New(ctx, paka.Config{
			Kind:             kind,
			Isolation:        cfg.Isolation,
			Env:              s.Env,
			Platform:         s.Platform,
			Registry:         s.Registry,
			EnclaveSizeBytes: cfg.EnclaveSizeBytes,
			MaxThreads:       cfg.MaxThreads,
			DisablePreheat:   cfg.DisablePreheat,
			SignKey:          signKey,
			// Pool refills enter the enclave via batch ECALLs, which need
			// a TCS slot the resident threads do not hold.
			ReserveBatchTCS: kind == paka.EUDM && cfg.AVPoolDepth > 0,
			Switchless:      cfg.Switchless,
		})
		if err != nil {
			return nil, nil, nil, fmt.Errorf("deploy: %s module: %w", kind, err)
		}
		s.Modules[kind] = m
	}

	s.RemoteUDM = paka.NewRemoteUDM(s.buildInvoker("udm"), s.Env)
	s.RemoteAUSF = paka.NewRemoteAUSF(s.buildInvoker("ausf"), s.Env)
	s.RemoteAMF = paka.NewRemoteAMF(s.buildInvoker("amf"), s.Env)
	return s.RemoteUDM, s.RemoteAUSF, s.RemoteAMF, nil
}

// attestEUDM verifies the eUDM execution environment's hardware-rooted
// attestation evidence before any subscriber key is released to it — the
// Key Issue 12/13 deployment-validation step of the paper's discussion.
// It runs once per eUDM replica and is a no-op for non-TEE isolation.
func (s *Slice) attestEUDM(m *paka.Module) error {
	s.attestMu.Lock()
	defer s.attestMu.Unlock()
	if s.attested[m] {
		return nil
	}
	if err := s.verifyAttestation(m); err != nil {
		return err
	}
	s.attested[m] = true
	return nil
}

// verifyAttestation checks a module's hardware-rooted evidence (SGX quote
// or SNP report); non-TEE modules pass trivially.
func (s *Slice) verifyAttestation(m *paka.Module) error {
	var nonce [64]byte
	copy(nonce[:], []byte("subscriber-provisioning-channel"))
	switch {
	case m.Enclave() != nil:
		quote, err := m.Enclave().GenerateQuote(nonce)
		if err != nil {
			return fmt.Errorf("deploy: %s quote: %w", m.Kind(), err)
		}
		expected := m.Enclave().Measurement()
		if err := sgx.VerifyQuote(s.Platform.QuotingPublicKey(), quote, &expected); err != nil {
			return fmt.Errorf("deploy: %s attestation: %w", m.Kind(), err)
		}
	case m.Machine() != nil:
		report, err := m.Machine().GenerateReport(nonce)
		if err != nil {
			return fmt.Errorf("deploy: %s SNP report: %w", m.Kind(), err)
		}
		if err := sev.VerifyReport(m.Machine().SigningKey(), report); err != nil {
			return fmt.Errorf("deploy: %s attestation: %w", m.Kind(), err)
		}
	}
	return nil
}

// RestartModule models a whole-module crash: the runtime (and enclave,
// under SGX) is destroyed, rebuilt from the retained configuration — which
// re-charges the paper's Fig. 7 load cost to ctx's account — re-attested,
// and, under SGX, its key store restored from sealed backups. The fault
// injector, when present, is repointed at the fresh enclave.
func (s *Slice) RestartModule(ctx context.Context, kind paka.ModuleKind) error {
	m, ok := s.Modules[kind]
	if !ok {
		return fmt.Errorf("deploy: no %s module to restart", kind)
	}
	if err := m.Restart(ctx); err != nil {
		return fmt.Errorf("deploy: restart %s: %w", kind, err)
	}
	if s.Chaos != nil {
		s.Chaos.RegisterEnclave(m.ServiceName(), m.Enclave())
	}
	// The redeployed environment must re-prove itself before it is
	// trusted again (the paper's deployment-validation step).
	if err := s.verifyAttestation(m); err != nil {
		return err
	}
	if kind == paka.EUDM {
		s.attestMu.Lock()
		s.attested[m] = true
		s.attestMu.Unlock()
		if s.UDM != nil {
			// Vectors minted before the crash must never be served after
			// it: the fresh key store may have rebased sequence numbers.
			s.UDM.InvalidateAVPool()
		}
	}
	return nil
}

// RestartShardModule is RestartModule addressed at one replica of a
// sharded slice.
func (s *Slice) RestartShardModule(ctx context.Context, shard int, kind paka.ModuleKind) error {
	if shard < 0 || shard >= len(s.Shards) {
		return fmt.Errorf("deploy: no shard %d", shard)
	}
	c := s.Shards[shard]
	m, ok := c.Modules[kind]
	if !ok {
		return fmt.Errorf("deploy: no %s module in shard %d", kind, shard)
	}
	if err := m.Restart(ctx); err != nil {
		return fmt.Errorf("deploy: restart %s shard %d: %w", kind, shard, err)
	}
	if s.Chaos != nil {
		s.Chaos.RegisterEnclave(m.ServiceName(), m.Enclave())
	}
	if err := s.verifyAttestation(m); err != nil {
		return err
	}
	if kind == paka.EUDM {
		s.attestMu.Lock()
		s.attested[m] = true
		s.attestMu.Unlock()
		if c.UDM != nil {
			c.UDM.InvalidateAVPool()
		}
	}
	return nil
}

// ProvisionSubscriber installs a subscriber in the UDR and delivers the
// long-term key to the AKA execution environment (the eUDM enclave under
// SGX isolation, where it is shielded from introspection). For TEE-backed
// slices the environment's attestation evidence is verified before the
// first key is released.
func (s *Slice) ProvisionSubscriber(ctx context.Context, supi suci.SUPI, k, opc []byte) error {
	if err := supi.Validate(); err != nil {
		return err
	}
	imsi := supi.String()
	udrClient := udr.NewClient(s.buildInvoker("provisioning"))
	if err := udrClient.Provision(ctx, udr.Subscriber{
		SUPI:     imsi,
		K:        k,
		OPc:      opc,
		SQN:      []byte{0, 0, 0, 0, 0, 0},
		AMFField: []byte{0x80, 0x00}, // separation bit set for 5G AKA
	}); err != nil {
		return fmt.Errorf("deploy: UDR provisioning: %w", err)
	}
	// The long-term key is fanned out to EVERY replica's execution
	// environment (each attested once). Full key replication is what
	// makes topology rebalances loss-free: when a snapshot moves a SUPI
	// to a different shard, the new owner's eUDM already holds the key,
	// so no registration fails during ring movement.
	for _, shard := range s.Shards {
		if shard.MonoUDM != nil {
			shard.MonoUDM.ProvisionSubscriber(imsi, k)
			continue
		}
		if m, ok := shard.Modules[paka.EUDM]; ok {
			if err := s.attestEUDM(m); err != nil {
				return err
			}
			if err := m.ProvisionSubscriber(ctx, imsi, k); err != nil {
				return fmt.Errorf("deploy: eUDM provisioning (shard %d): %w", shard.Index, err)
			}
		}
	}
	return nil
}

// PrewarmAVPool fills the UDM's AV precomputation pool for the given
// SUPIs ahead of traffic, derived for this slice's serving network name.
// Call it after provisioning; each SUPI costs one UDR batch round trip
// and one enclave crossing, and its first AVPoolDepth authentications
// then hit the pool instead of paying a synchronous cold-start refill.
func (s *Slice) PrewarmAVPool(ctx context.Context, supis []string) error {
	if s.UDM == nil {
		return fmt.Errorf("deploy: slice has no UDM")
	}
	snn := kdf.ServingNetworkName(s.Config.MCC, s.Config.MNC)
	if len(s.Shards) <= 1 {
		return s.UDM.PrewarmAVPool(ctx, supis, snn)
	}
	// Sharded slices prewarm each SUPI only on its owning replica: the
	// other replicas would bank vectors nothing ever drains.
	perShard := make([][]string, len(s.Shards))
	for _, supi := range supis {
		idx := s.GNB.ShardOf(supi)
		perShard[idx] = append(perShard[idx], supi)
	}
	for i, shard := range s.Shards {
		if len(perShard[i]) == 0 {
			continue
		}
		if err := shard.UDM.PrewarmAVPool(ctx, perShard[i], snn); err != nil {
			return err
		}
	}
	return nil
}

// Stop tears the slice down, destroying any enclaves.
func (s *Slice) Stop() {
	for _, shard := range s.Shards {
		for _, m := range shard.Modules {
			m.Stop()
		}
	}
}

// StopNRF takes the NRF off the service bus mid-run. Because the NRF is
// a pure control-plane function — shard bindings are static and the gNB
// routes on its last-known-good snapshot — registrations must keep
// succeeding afterwards. Topology *changes* (SetRoutableReplicas) still
// work too: the builder pushes in-process, not over SBI. This models the
// paper's availability claim: shielding and routing survive discovery
// outages.
func (s *Slice) StopNRF() {
	s.Registry.Deregister(nrf.ServiceName)
}

// SetRoutableReplicas publishes a new topology snapshot that routes over
// only the first n shards. It is a pure prefix truncation — replica i in
// the snapshot is always Shards[i] — so the gNB's static AMF bindings
// stay index-aligned; shards outside the prefix keep running and their
// keys stay provisioned, so restoring n later is loss-free. Returns the
// push result (epoch plus ack/nack counts). Only valid on sharded
// slices.
func (s *Slice) SetRoutableReplicas(n int) (topo.PushResult, error) {
	if s.Topology == nil {
		return topo.PushResult{}, fmt.Errorf("deploy: singleton slice has no topology builder")
	}
	if n < 1 || n > len(s.Shards) {
		return topo.PushResult{}, fmt.Errorf("deploy: routable replicas %d out of range [1,%d]", n, len(s.Shards))
	}
	replicas := make([]topology.Replica, n)
	for i := 0; i < n; i++ {
		replicas[i] = topology.Replica{Index: i, Name: s.Shards[i].Name}
	}
	s.Topology.SetReplicas(replicas)
	return s.Topology.Publish(), nil
}

// AVPoolStats sums the AV-pool counters across every shard's UDM —
// the fleet-wide view. Per-replica counters are additive, so the sum
// never double counts.
func (s *Slice) AVPoolStats() udm.AVPoolStats {
	var out udm.AVPoolStats
	for _, st := range s.ShardAVPoolStats() {
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Refills += st.Refills
		out.Invalidated += st.Invalidated
		out.Prewarmed += st.Prewarmed
		out.Pooled += st.Pooled
	}
	return out
}

// ShardAVPoolStats snapshots each shard UDM's AV-pool counters in
// shard-index order.
func (s *Slice) ShardAVPoolStats() []udm.AVPoolStats {
	out := make([]udm.AVPoolStats, len(s.Shards))
	for i, shard := range s.Shards {
		out[i] = shard.UDM.AVPoolStats()
	}
	return out
}

// AdmissionStats sums the admission counters across every shard's
// controller — the fleet-wide view. Sources is summed, not deduplicated:
// shuffle-sharding gives each (gNB, PLMN) tenant buckets on only its own
// shards, so per-shard source sets are disjoint views of load.
func (s *Slice) AdmissionStats() admission.Stats {
	var out admission.Stats
	for _, st := range s.ShardAdmissionStats() {
		for i := range st.Admitted {
			out.Admitted[i] += st.Admitted[i]
			out.Dropped[i] += st.Dropped[i]
		}
		out.Sources += st.Sources
	}
	return out
}

// ShardAdmissionStats snapshots each shard's admission counters in
// shard-index order (zero value where admission is disabled).
func (s *Slice) ShardAdmissionStats() []admission.Stats {
	out := make([]admission.Stats, len(s.Shards))
	for i, shard := range s.Shards {
		if shard.Admission != nil {
			out[i] = shard.Admission.Stats()
		}
	}
	return out
}
