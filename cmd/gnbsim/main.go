// Command gnbsim drives mass UE registrations against a freshly deployed
// slice, the way the paper uses the gNBSIM RAN entity for its large-scale
// measurements.
//
// Usage:
//
//	gnbsim [-n 100] [-parallel 1] [-isolation sgx|container|monolithic] [-seed N]
//	       [-chaos RATE] [-retries N] [-batch N] [-avpool N]
//	       [-cpuprofile FILE] [-memprofile FILE]
//
// -chaos enables the deterministic fault injector at the given total
// per-request fault rate (e.g. 0.1 injects a fault on 10% of SBI
// requests), and -retries bounds the full-registration attempts per UE
// (default 5 when chaos is on). -batch runs each worker's module
// requests over keep-alive sessions of the given depth, and -avpool
// enables the UDM's authentication-vector precomputation pool with the
// given per-SUPI ring depth — the two boundary-amortization mechanisms.
// -cpuprofile and -memprofile write pprof profiles of the run for
// `go tool pprof`; the memory profile is an allocs profile taken after a
// final GC, covering every allocation of the run.
package main

import (
	"context"
	"crypto/rand"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"shield5g"
)

func main() {
	os.Exit(run())
}

func run() int {
	n := flag.Int("n", 100, "number of UEs to register")
	parallel := flag.Int("parallel", 1, "concurrent registration workers (1 = sequential, deterministic)")
	isolation := flag.String("isolation", "sgx", "AKA isolation: monolithic, container or sgx")
	seed := flag.Uint64("seed", 1, "jitter seed")
	chaosRate := flag.Float64("chaos", 0, "total per-request fault-injection rate (0 disables)")
	retries := flag.Int("retries", 0, "max registration attempts per UE (0 = 1, or 5 when -chaos is set)")
	batch := flag.Int("batch", 0, "keep-alive session depth: module requests per connection (0 = one connection per request)")
	avpool := flag.Int("avpool", 0, "UDM AV precomputation pool depth per SUPI (0 disables)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write an allocs profile of the run to this file")
	flag.Parse()

	iso, err := parseIsolation(*isolation)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gnbsim: %v\n", err)
		return 2
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gnbsim: -cpuprofile: %v\n", err)
			return 2
		}
		defer func() { _ = f.Close() }()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "gnbsim: start CPU profile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gnbsim: -memprofile: %v\n", err)
				return
			}
			defer func() { _ = f.Close() }()
			// Flush pending profile records so the written profile covers
			// the whole run.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "gnbsim: write allocs profile: %v\n", err)
			}
		}()
	}
	if *chaosRate < 0 || *chaosRate > 1 {
		fmt.Fprintf(os.Stderr, "gnbsim: -chaos rate %v outside [0, 1]\n", *chaosRate)
		return 2
	}
	maxAttempts := *retries
	if maxAttempts <= 0 {
		maxAttempts = 1
		if *chaosRate > 0 {
			maxAttempts = 5
		}
	}

	if *batch < 0 || *avpool < 0 {
		fmt.Fprintf(os.Stderr, "gnbsim: -batch and -avpool must be >= 0\n")
		return 2
	}

	sliceCfg := shield5g.SliceConfig{Isolation: iso, Seed: *seed, AVPoolDepth: *avpool}
	if *chaosRate > 0 {
		// The decision seed is derived from -seed so one flag reproduces
		// both the cost draws and the fault schedule.
		mix := shield5g.DefaultChaosMix(*seed+101, *chaosRate)
		sliceCfg.Chaos = &mix
	}

	ctx := context.Background()
	//shieldlint:wallclock CLI reports real deploy latency to the operator
	start := time.Now()
	tb, err := shield5g.NewTestbed(ctx, sliceCfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gnbsim: deploy: %v\n", err)
		return 1
	}
	defer tb.Close()
	//shieldlint:wallclock CLI reports real deploy latency to the operator
	fmt.Printf("slice deployed (%s isolation) in %v wall time\n", iso, time.Since(start).Round(time.Millisecond))
	if iso == shield5g.SGX {
		for _, kind := range []shield5g.ModuleKind{shield5g.EUDM, shield5g.EAUSF, shield5g.EAMF} {
			m := tb.Slice.Modules[kind]
			fmt.Printf("  %s enclave load: %v (virtual)\n", kind, m.LoadDuration().Round(time.Millisecond))
		}
	}

	result, err := tb.Slice.GNB.RegisterManyWith(ctx, shield5g.MassOptions{
		N: *n,
		NewUE: func(i int) (*shield5g.UE, error) {
			k := make([]byte, 16)
			if _, err := rand.Read(k); err != nil {
				return nil, fmt.Errorf("entropy: %w", err)
			}
			sub, err := tb.AddSubscriber(ctx, k, nil)
			if err != nil {
				return nil, err
			}
			return sub.UE, nil
		},
		Parallelism: *parallel,
		MaxAttempts: maxAttempts,
		Chaos:       tb.Slice.Chaos,
		BatchSize:   *batch,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gnbsim: %v\n", err)
		return 1
	}

	fmt.Printf("registered %d/%d UEs (%d failed) with %d worker(s)\n",
		result.Registered, *n, result.Failed, result.Parallelism)
	if *chaosRate > 0 {
		fmt.Printf("chaos: rate %.2f, %d attempts total, injected %v\n",
			*chaosRate, result.Attempts, tb.Slice.Chaos.Counts())
		if len(result.Recovered) > 0 {
			classes := make([]string, 0, len(result.Recovered))
			for class := range result.Recovered {
				classes = append(classes, class)
			}
			sort.Strings(classes)
			for _, class := range classes {
				fmt.Printf("chaos: recovered %d failed attempt(s) [%s] via retry\n",
					result.Recovered[class], class)
			}
		}
		var restarts uint64
		for _, m := range tb.Slice.Modules {
			restarts += m.Restarts()
		}
		if restarts > 0 {
			fmt.Printf("chaos: %d module crash/redeploy cycle(s) survived (re-load + re-attest)\n", restarts)
		}
	}
	if *avpool > 0 {
		pool := tb.Slice.UDM.AVPoolStats()
		fmt.Printf("av pool: %d hits, %d misses, %d refills, %d banked vectors\n",
			pool.Hits, pool.Misses, pool.Refills, pool.Pooled)
	}
	if result.Registered > 0 {
		sum := result.SetupTimes.Summarize()
		fmt.Printf("session setup: median %v mean %v (virtual)\n",
			sum.Median.Round(time.Microsecond), sum.Mean.Round(time.Microsecond))
		fmt.Printf("throughput: %.0f regs/s wall, %.1f regs/s virtual (wall %v, virtual %v)\n",
			result.WallRegsPerSec, result.VirtualRegsPerSec,
			result.Wall.Round(time.Millisecond), result.Virtual.Round(time.Millisecond))
	}
	if result.Failed > 0 {
		classes := make([]string, 0, len(result.FailureCounts))
		for class := range result.FailureCounts {
			classes = append(classes, class)
		}
		sort.Strings(classes)
		for _, class := range classes {
			fmt.Fprintf(os.Stderr, "gnbsim: %d failure(s) [%s], first: %v\n",
				result.FailureCounts[class], class, result.FirstErrors[class])
		}
		return 1
	}
	return 0
}

func parseIsolation(s string) (shield5g.Isolation, error) {
	switch s {
	case "monolithic":
		return shield5g.Monolithic, nil
	case "container":
		return shield5g.Container, nil
	case "sgx":
		return shield5g.SGX, nil
	default:
		return 0, fmt.Errorf("unknown isolation %q", s)
	}
}
