package ausf

import (
	"bytes"
	"context"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"testing"

	"shield5g/internal/costmodel"
	"shield5g/internal/crypto/kdf"
	"shield5g/internal/crypto/milenage"
	"shield5g/internal/crypto/suci"
	"shield5g/internal/nf/nrf"
	"shield5g/internal/nf/udm"
	"shield5g/internal/nf/udr"
	"shield5g/internal/paka"
	"shield5g/internal/sbi"
)

var (
	testK   = bytes.Repeat([]byte{0x46}, 16)
	testSNN = "5G:mnc001.mcc001.3gppnetwork.org"
)

type harness struct {
	ausf   *AUSF
	client *Client
	hnKey  *suci.HomeNetworkKey
	mil    *milenage.Cipher
	supi   suci.SUPI
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	env := costmodel.NewEnv(nil, 3, nil)
	reg := sbi.NewRegistry()
	if _, err := nrf.New(env, reg); err != nil {
		t.Fatalf("nrf.New: %v", err)
	}
	if _, err := udr.New(env, reg); err != nil {
		t.Fatalf("udr.New: %v", err)
	}
	hnKey, err := suci.GenerateHomeNetworkKey(rand.Reader, 1)
	if err != nil {
		t.Fatalf("GenerateHomeNetworkKey: %v", err)
	}
	monoUDM := paka.NewMonolithicUDM(env)
	if _, err := udm.New(context.Background(), udm.Config{
		Env: env, Registry: reg, Invoker: sbi.NewClient("udm", env, reg),
		Functions: monoUDM, HomeNetworkKey: hnKey,
	}); err != nil {
		t.Fatalf("udm.New: %v", err)
	}
	a, err := New(context.Background(), Config{
		Env: env, Registry: reg, Invoker: sbi.NewClient("ausf", env, reg),
		Functions: paka.NewMonolithicAUSF(env),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	supi := suci.SUPI{MCC: "001", MNC: "01", MSIN: "0000000001"}
	opc, err := milenage.ComputeOPc(testK, make([]byte, 16))
	if err != nil {
		t.Fatalf("ComputeOPc: %v", err)
	}
	if err := udr.NewClient(sbi.NewClient("prov", env, reg)).Provision(context.Background(), udr.Subscriber{
		SUPI: supi.String(), K: testK, OPc: opc,
		SQN: make([]byte, 6), AMFField: []byte{0x80, 0x00},
	}); err != nil {
		t.Fatalf("provision: %v", err)
	}
	monoUDM.ProvisionSubscriber(supi.String(), testK)
	mil, err := milenage.New(testK, opc)
	if err != nil {
		t.Fatalf("milenage.New: %v", err)
	}
	return &harness{
		ausf:   a,
		client: NewClient(sbi.NewClient("amf", env, reg)),
		hnKey:  hnKey,
		mil:    mil,
		supi:   supi,
	}
}

// ueResStar computes the correct RES* the way the USIM would.
func (h *harness) ueResStar(t *testing.T, randBytes []byte) []byte {
	t.Helper()
	res, ck, ik, _, err := h.mil.F2345(randBytes)
	if err != nil {
		t.Fatalf("F2345: %v", err)
	}
	resStar, err := kdf.ResStar(ck, ik, testSNN, randBytes, res)
	if err != nil {
		t.Fatalf("derive RES*: %v", err)
	}
	return resStar
}

func TestAuthenticateAndConfirm(t *testing.T) {
	h := newHarness(t)
	ctx := context.Background()

	concealed, err := suci.Conceal(rand.Reader, h.supi, "0000", h.hnKey.PublicKey(), h.hnKey.ID)
	if err != nil {
		t.Fatalf("Conceal: %v", err)
	}
	auth, err := h.client.Authenticate(ctx, &AuthenticateRequest{SUCI: concealed, ServingNetworkName: testSNN})
	if err != nil {
		t.Fatalf("Authenticate: %v", err)
	}
	if len(auth.RAND) != 16 || len(auth.AUTN) != 16 || len(auth.HXRESStar) != 16 {
		t.Fatal("SE AV sizes wrong")
	}
	if h.ausf.PendingSessions() != 1 {
		t.Fatalf("PendingSessions = %d", h.ausf.PendingSessions())
	}

	// The SEAF can verify HXRES* = SHA-256(RAND||RES*) high bits.
	resStar := h.ueResStar(t, auth.RAND)
	sum := sha256.Sum256(append(append([]byte{}, auth.RAND...), resStar...))
	if !bytes.Equal(sum[:16], auth.HXRESStar) {
		t.Fatal("HXRES* does not match RES* hash")
	}

	conf, err := h.client.Confirm(ctx, &ConfirmRequest{AuthCtxID: auth.AuthCtxID, ResStar: resStar})
	if err != nil {
		t.Fatalf("Confirm: %v", err)
	}
	if conf.SUPI != h.supi.String() || len(conf.KSEAF) != 32 {
		t.Fatalf("Confirm = %+v", conf)
	}
	if h.ausf.PendingSessions() != 0 {
		t.Fatal("session not consumed")
	}
}

func TestConfirmRejectsWrongResStar(t *testing.T) {
	h := newHarness(t)
	ctx := context.Background()
	auth, err := h.client.Authenticate(ctx, &AuthenticateRequest{SUPI: h.supi.String(), ServingNetworkName: testSNN})
	if err != nil {
		t.Fatalf("Authenticate: %v", err)
	}
	_, err = h.client.Confirm(ctx, &ConfirmRequest{AuthCtxID: auth.AuthCtxID, ResStar: make([]byte, 16)})
	var pd *sbi.ProblemDetails
	if !errors.As(err, &pd) || pd.Status != 403 {
		t.Fatalf("wrong RES* err = %v, want 403", err)
	}
	// The context is consumed even on failure (no oracle).
	if _, err := h.client.Confirm(ctx, &ConfirmRequest{AuthCtxID: auth.AuthCtxID, ResStar: make([]byte, 16)}); !errors.As(err, &pd) || pd.Status != 404 {
		t.Fatalf("replayed confirm err = %v, want 404", err)
	}
}

func TestConfirmUnknownContext(t *testing.T) {
	h := newHarness(t)
	_, err := h.client.Confirm(context.Background(), &ConfirmRequest{AuthCtxID: "authctx-999"})
	var pd *sbi.ProblemDetails
	if !errors.As(err, &pd) || pd.Status != 404 {
		t.Fatalf("err = %v, want 404", err)
	}
}

func TestAuthenticateValidation(t *testing.T) {
	h := newHarness(t)
	_, err := h.client.Authenticate(context.Background(), &AuthenticateRequest{SUPI: h.supi.String()})
	var pd *sbi.ProblemDetails
	if !errors.As(err, &pd) || pd.Status != 400 {
		t.Fatalf("missing SNN err = %v, want 400", err)
	}
}

func TestResyncIssuesFreshChallenge(t *testing.T) {
	h := newHarness(t)
	ctx := context.Background()
	auth, err := h.client.Authenticate(ctx, &AuthenticateRequest{SUPI: h.supi.String(), ServingNetworkName: testSNN})
	if err != nil {
		t.Fatalf("Authenticate: %v", err)
	}

	// Build a valid AUTS reporting SQN_MS = 0x300.
	sqnMS := []byte{0, 0, 0, 0, 3, 0}
	akStar, err := h.mil.F5Star(auth.RAND)
	if err != nil {
		t.Fatalf("F5Star: %v", err)
	}
	concealed := make([]byte, 6)
	for i := range concealed {
		concealed[i] = sqnMS[i] ^ akStar[i]
	}
	macS, err := h.mil.F1Star(auth.RAND, sqnMS, []byte{0, 0})
	if err != nil {
		t.Fatalf("F1Star: %v", err)
	}

	fresh, err := h.client.Resync(ctx, &ResyncRequest{AuthCtxID: auth.AuthCtxID, AUTS: append(concealed, macS...)})
	if err != nil {
		t.Fatalf("Resync: %v", err)
	}
	if bytes.Equal(fresh.RAND, auth.RAND) {
		t.Fatal("resync challenge reuses RAND")
	}
	if fresh.AuthCtxID == auth.AuthCtxID {
		t.Fatal("resync challenge reuses context ID")
	}

	// The fresh challenge completes.
	resStar := h.ueResStar(t, fresh.RAND)
	if _, err := h.client.Confirm(ctx, &ConfirmRequest{AuthCtxID: fresh.AuthCtxID, ResStar: resStar}); err != nil {
		t.Fatalf("Confirm after resync: %v", err)
	}
}

func TestResyncUnknownContext(t *testing.T) {
	h := newHarness(t)
	_, err := h.client.Resync(context.Background(), &ResyncRequest{AuthCtxID: "authctx-404", AUTS: make([]byte, 14)})
	var pd *sbi.ProblemDetails
	if !errors.As(err, &pd) || pd.Status != 404 {
		t.Fatalf("err = %v, want 404", err)
	}
}

func TestNewValidation(t *testing.T) {
	env := costmodel.NewEnv(nil, 1, nil)
	reg := sbi.NewRegistry()
	if _, err := New(context.Background(), Config{Registry: reg}); err == nil {
		t.Fatal("missing env accepted")
	}
	if _, err := New(context.Background(), Config{Env: env, Registry: reg, Invoker: sbi.NewClient("a", env, reg)}); err == nil {
		t.Fatal("missing functions accepted")
	}
}

func TestNewFailsWithoutUDMRegistered(t *testing.T) {
	env := costmodel.NewEnv(nil, 1, nil)
	reg := sbi.NewRegistry()
	if _, err := nrf.New(env, reg); err != nil {
		t.Fatalf("nrf.New: %v", err)
	}
	// No UDM registered: NRF discovery must fail AUSF construction.
	_, err := New(context.Background(), Config{
		Env: env, Registry: reg, Invoker: sbi.NewClient("ausf", env, reg),
		Functions: paka.NewMonolithicAUSF(env),
	})
	if err == nil {
		t.Fatal("AUSF constructed without a discoverable UDM")
	}
}

func TestHMEEAUSFRequiresHMEEUDM(t *testing.T) {
	env := costmodel.NewEnv(nil, 1, nil)
	reg := sbi.NewRegistry()
	if _, err := nrf.New(env, reg); err != nil {
		t.Fatalf("nrf.New: %v", err)
	}
	if _, err := udr.New(env, reg); err != nil {
		t.Fatalf("udr.New: %v", err)
	}
	hnKey, err := suci.GenerateHomeNetworkKey(rand.Reader, 1)
	if err != nil {
		t.Fatalf("GenerateHomeNetworkKey: %v", err)
	}
	// A non-HMEE UDM is registered...
	if _, err := udm.New(context.Background(), udm.Config{
		Env: env, Registry: reg, Invoker: sbi.NewClient("udm", env, reg),
		Functions: paka.NewMonolithicUDM(env), HomeNetworkKey: hnKey, HMEE: false,
	}); err != nil {
		t.Fatalf("udm.New: %v", err)
	}
	// ...so an HMEE AUSF must refuse to chain to it (trust domains).
	_, err = New(context.Background(), Config{
		Env: env, Registry: reg, Invoker: sbi.NewClient("ausf", env, reg),
		Functions: paka.NewMonolithicAUSF(env), HMEE: true,
	})
	if err == nil {
		t.Fatal("HMEE AUSF accepted a lower-trust UDM")
	}
}
