package udr

// Binary SBI codecs for the UDR messages (see internal/sbi/codec).
// Request decodes are zero-copy views into the loaned body — every UDR
// handler copies what it stores, so nothing outlives the loan. Response
// decodes Compact retained fields into one backing per message.

import "shield5g/internal/sbi/codec"

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (s *Subscriber) AppendBinary(dst []byte) []byte {
	dst = codec.AppendString(dst, s.SUPI)
	dst = codec.AppendBytes(dst, s.K)
	dst = codec.AppendBytes(dst, s.OPc)
	dst = codec.AppendBytes(dst, s.SQN)
	return codec.AppendBytes(dst, s.AMFField)
}

// DecodeBinary implements codec.Unmarshaler (zero-copy views).
//
//shieldlint:hotpath
func (s *Subscriber) DecodeBinary(r *codec.Reader) error {
	s.SUPI = r.String()
	s.K = r.Bytes()
	s.OPc = r.Bytes()
	s.SQN = r.Bytes()
	s.AMFField = r.Bytes()
	return r.Err()
}

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *ProvisionRequest) AppendBinary(dst []byte) []byte {
	return m.Subscriber.AppendBinary(dst)
}

// DecodeBinary implements codec.Unmarshaler; handleProvision copies every
// field before storing, so the views never outlive the loan.
//
//shieldlint:hotpath
func (m *ProvisionRequest) DecodeBinary(r *codec.Reader) error {
	return m.Subscriber.DecodeBinary(r)
}

// AppendBinary implements codec.Marshaler: an empty body is an empty
// frame payload.
//
//shieldlint:hotpath
func (m *Empty) AppendBinary(dst []byte) []byte { return dst }

// DecodeBinary implements codec.Unmarshaler.
//
//shieldlint:hotpath
func (m *Empty) DecodeBinary(*codec.Reader) error { return nil }

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *NextAuthRequest) AppendBinary(dst []byte) []byte {
	return codec.AppendString(dst, m.SUPI)
}

// DecodeBinary implements codec.Unmarshaler.
//
//shieldlint:hotpath
func (m *NextAuthRequest) DecodeBinary(r *codec.Reader) error {
	m.SUPI = r.String()
	return r.Err()
}

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *NextAuthResponse) AppendBinary(dst []byte) []byte {
	dst = codec.AppendBytes(dst, m.OPc)
	dst = codec.AppendBytes(dst, m.SQN)
	return codec.AppendBytes(dst, m.AMFField)
}

// DecodeBinary implements codec.Unmarshaler (one compacted backing —
// the same layout handleNextAuth builds).
//
//shieldlint:hotpath
func (m *NextAuthResponse) DecodeBinary(r *codec.Reader) error {
	m.OPc = r.Bytes()
	m.SQN = r.Bytes()
	m.AMFField = r.Bytes()
	if err := r.Err(); err != nil {
		return err
	}
	codec.Compact(&m.OPc, &m.SQN, &m.AMFField)
	return nil
}

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *NextAuthBatchRequest) AppendBinary(dst []byte) []byte {
	dst = codec.AppendString(dst, m.SUPI)
	return codec.AppendCount(dst, m.Count)
}

// DecodeBinary implements codec.Unmarshaler. Count is a scalar (no
// payload bytes back it), so it reads as a bare uvarint; the handler
// enforces the [1, maxNextAuthBatch] bound.
//
//shieldlint:hotpath
func (m *NextAuthBatchRequest) DecodeBinary(r *codec.Reader) error {
	m.SUPI = r.String()
	m.Count = int(r.Uint())
	return r.Err()
}

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *NextAuthBatchResponse) AppendBinary(dst []byte) []byte {
	dst = codec.AppendBytes(dst, m.OPc)
	dst = codec.AppendBytes(dst, m.AMFField)
	return codec.AppendBytes(dst, m.SQNs)
}

// DecodeBinary implements codec.Unmarshaler (one compacted backing for
// the whole refill).
//
//shieldlint:hotpath
func (m *NextAuthBatchResponse) DecodeBinary(r *codec.Reader) error {
	m.OPc = r.Bytes()
	m.AMFField = r.Bytes()
	m.SQNs = r.Bytes()
	if err := r.Err(); err != nil {
		return err
	}
	codec.Compact(&m.OPc, &m.AMFField, &m.SQNs)
	return nil
}

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *ResyncRequest) AppendBinary(dst []byte) []byte {
	dst = codec.AppendString(dst, m.SUPI)
	return codec.AppendBytes(dst, m.SQNMS)
}

// DecodeBinary implements codec.Unmarshaler (zero-copy views).
//
//shieldlint:hotpath
func (m *ResyncRequest) DecodeBinary(r *codec.Reader) error {
	m.SUPI = r.String()
	m.SQNMS = r.Bytes()
	return r.Err()
}

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *GetRequest) AppendBinary(dst []byte) []byte {
	return codec.AppendString(dst, m.SUPI)
}

// DecodeBinary implements codec.Unmarshaler.
//
//shieldlint:hotpath
func (m *GetRequest) DecodeBinary(r *codec.Reader) error {
	m.SUPI = r.String()
	return r.Err()
}

// AppendBinary implements codec.Marshaler.
//
//shieldlint:hotpath
func (m *GetResponse) AppendBinary(dst []byte) []byte {
	return m.Subscriber.AppendBinary(dst)
}

// DecodeBinary implements codec.Unmarshaler: the record is retained by
// the caller, so its fields compact into one owned backing.
//
//shieldlint:hotpath
func (m *GetResponse) DecodeBinary(r *codec.Reader) error {
	if err := m.Subscriber.DecodeBinary(r); err != nil {
		return err
	}
	s := &m.Subscriber
	codec.Compact(&s.K, &s.OPc, &s.SQN, &s.AMFField)
	return nil
}
