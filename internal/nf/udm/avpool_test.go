package udm

import (
	"bytes"
	"context"
	"crypto/rand"
	mrand "math/rand"
	"testing"

	"shield5g/internal/costmodel"
	"shield5g/internal/crypto/milenage"
	"shield5g/internal/crypto/suci"
	"shield5g/internal/nf/nrf"
	"shield5g/internal/nf/udr"
	"shield5g/internal/paka"
	"shield5g/internal/sbi"
)

// countingFns wraps the monolithic functions to observe which route the
// pool refill takes.
type countingFns struct {
	*paka.MonolithicUDM
	single int
	batch  int
}

func (c *countingFns) GenerateAV(ctx context.Context, req *paka.UDMGenerateAVRequest) (*paka.UDMGenerateAVResponse, error) {
	c.single++
	return c.MonolithicUDM.GenerateAV(ctx, req)
}

func (c *countingFns) GenerateAVBatch(ctx context.Context, req *paka.UDMGenerateAVBatchRequest) (*paka.UDMGenerateAVBatchResponse, error) {
	c.batch++
	return c.MonolithicUDM.GenerateAVBatch(ctx, req)
}

// sequentialFns hides the batch method so the pool must fall back to the
// per-item path.
type sequentialFns struct {
	inner  *countingFns
	single *int
}

func (s *sequentialFns) GenerateAV(ctx context.Context, req *paka.UDMGenerateAVRequest) (*paka.UDMGenerateAVResponse, error) {
	*s.single++
	return s.inner.MonolithicUDM.GenerateAV(ctx, req)
}

func (s *sequentialFns) Resync(ctx context.Context, req *paka.UDMResyncRequest) (*paka.UDMResyncResponse, error) {
	return s.inner.MonolithicUDM.Resync(ctx, req)
}

type poolHarness struct {
	*harness
	fns *countingFns
}

// newPoolHarness builds a UDM with the AV pool enabled, deterministic
// entropy, and instrumented AKA functions. When batchCapable is false the
// execution environment only exposes the single-vector call.
func newPoolHarness(t *testing.T, depth, batch int, batchCapable bool) *poolHarness {
	t.Helper()
	env := costmodel.NewEnv(nil, 1, nil)
	reg := sbi.NewRegistry()
	if _, err := nrf.New(env, reg); err != nil {
		t.Fatalf("nrf.New: %v", err)
	}
	if _, err := udr.New(env, reg); err != nil {
		t.Fatalf("udr.New: %v", err)
	}
	hnKey, err := suci.GenerateHomeNetworkKey(rand.Reader, 1)
	if err != nil {
		t.Fatalf("GenerateHomeNetworkKey: %v", err)
	}
	fns := &countingFns{MonolithicUDM: paka.NewMonolithicUDM(env)}
	var udmFns paka.UDMFunctions = fns
	if !batchCapable {
		udmFns = &sequentialFns{inner: fns, single: &fns.single}
	}
	u, err := New(context.Background(), Config{
		Env: env, Registry: reg, Invoker: sbi.NewClient("udm", env, reg),
		Functions: udmFns, HomeNetworkKey: hnKey,
		Entropy:     mrand.New(mrand.NewSource(42)),
		AVPoolDepth: depth, AVBatchSize: batch,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return &poolHarness{
		harness: &harness{
			env: env, udm: u, hnKey: hnKey, mono: fns.MonolithicUDM,
			client: NewClient(sbi.NewClient("ausf", env, reg)),
			udrc:   udr.NewClient(sbi.NewClient("test", env, reg)),
		},
		fns: fns,
	}
}

func (h *poolHarness) auth(t *testing.T, supi suci.SUPI) *GenerateAuthDataResponse {
	t.Helper()
	resp, err := h.client.GenerateAuthData(context.Background(), &GenerateAuthDataRequest{
		SUPI: supi.String(), ServingNetworkName: testSNN,
	})
	if err != nil {
		t.Fatalf("GenerateAuthData: %v", err)
	}
	return resp
}

// sqnOf recovers the clear SQN from a response (AUTN = SQN^AK || AMF ||
// MAC-A).
func sqnOf(t *testing.T, resp *GenerateAuthDataResponse) []byte {
	t.Helper()
	opc, err := milenage.ComputeOPc(testK, make([]byte, 16))
	if err != nil {
		t.Fatalf("ComputeOPc: %v", err)
	}
	mil, err := milenage.New(testK, opc)
	if err != nil {
		t.Fatalf("milenage.New: %v", err)
	}
	_, _, _, ak, err := mil.F2345(resp.RAND)
	if err != nil {
		t.Fatalf("F2345: %v", err)
	}
	sqn := make([]byte, 6)
	for i := range sqn {
		sqn[i] = resp.AUTN[i] ^ ak[i]
	}
	return sqn
}

func TestAVPoolHitMissRefillCounters(t *testing.T) {
	h := newPoolHarness(t, 4, 4, true)
	supi := suci.SUPI{MCC: "001", MNC: "01", MSIN: "0000000001"}
	h.provision(t, supi)

	h.auth(t, supi) // miss: mints 4, serves 1, banks 3
	if s := h.udm.AVPoolStats(); s.Misses != 1 || s.Hits != 0 || s.Refills != 1 || s.Pooled != 3 {
		t.Fatalf("after miss: %+v", s)
	}
	for i := 0; i < 3; i++ {
		h.auth(t, supi)
	}
	if s := h.udm.AVPoolStats(); s.Misses != 1 || s.Hits != 3 || s.Refills != 1 || s.Pooled != 0 {
		t.Fatalf("after draining: %+v", s)
	}
	if h.fns.batch != 1 || h.fns.single != 0 {
		t.Fatalf("refill used %d batch / %d single calls, want 1/0", h.fns.batch, h.fns.single)
	}

	h.auth(t, supi) // pool drained: second refill
	if s := h.udm.AVPoolStats(); s.Misses != 2 || s.Refills != 2 || s.Pooled != 3 {
		t.Fatalf("after second refill: %+v", s)
	}
}

func TestAVPoolPreservesSQNOrder(t *testing.T) {
	h := newPoolHarness(t, 4, 4, true)
	supi := suci.SUPI{MCC: "001", MNC: "01", MSIN: "0000000001"}
	h.provision(t, supi)

	var prev []byte
	for i := 0; i < 8; i++ { // two full refill cycles
		sqn := sqnOf(t, h.auth(t, supi))
		if prev != nil && bytes.Compare(sqn, prev) <= 0 {
			t.Fatalf("auth %d: SQN %x not above previous %x", i, sqn, prev)
		}
		prev = sqn
	}
}

func TestAVPoolSequentialFallback(t *testing.T) {
	h := newPoolHarness(t, 4, 4, false)
	supi := suci.SUPI{MCC: "001", MNC: "01", MSIN: "0000000001"}
	h.provision(t, supi)

	h.auth(t, supi)
	if h.fns.batch != 0 || h.fns.single != 4 {
		t.Fatalf("fallback used %d batch / %d single calls, want 0/4", h.fns.batch, h.fns.single)
	}
	if s := h.udm.AVPoolStats(); s.Pooled != 3 {
		t.Fatalf("fallback banked %d vectors, want 3", s.Pooled)
	}
}

func TestAVPoolResyncInvalidates(t *testing.T) {
	h := newPoolHarness(t, 4, 4, true)
	supi := suci.SUPI{MCC: "001", MNC: "01", MSIN: "0000000001"}
	h.provision(t, supi)
	h.auth(t, supi)

	// Build a valid AUTS rebasing the UE's SQN ahead of the network's.
	opc, err := milenage.ComputeOPc(testK, make([]byte, 16))
	if err != nil {
		t.Fatalf("ComputeOPc: %v", err)
	}
	mil, err := milenage.New(testK, opc)
	if err != nil {
		t.Fatalf("milenage.New: %v", err)
	}
	randBytes := bytes.Repeat([]byte{0x5c}, 16)
	sqnMS := []byte{0, 0, 0, 9, 0, 0}
	akStar, err := mil.F5Star(randBytes)
	if err != nil {
		t.Fatalf("F5Star: %v", err)
	}
	concealed := make([]byte, 6)
	for i := range concealed {
		concealed[i] = sqnMS[i] ^ akStar[i]
	}
	macS, err := mil.F1Star(randBytes, sqnMS, []byte{0, 0})
	if err != nil {
		t.Fatalf("F1Star: %v", err)
	}
	if err := h.client.Resync(context.Background(), &ResyncRequest{
		SUPI: supi.String(), RAND: randBytes, AUTS: append(concealed, macS...),
	}); err != nil {
		t.Fatalf("Resync: %v", err)
	}

	s := h.udm.AVPoolStats()
	if s.Invalidated != 3 || s.Pooled != 0 {
		t.Fatalf("after resync: %+v, want 3 invalidated, 0 pooled", s)
	}
	// The next authentication refills from the rebased counter: its SQN
	// must sit above the UE's reported SQN_MS.
	if sqn := sqnOf(t, h.auth(t, supi)); bytes.Compare(sqn, sqnMS) <= 0 {
		t.Fatalf("post-resync SQN %x not above SQN_MS %x", sqn, sqnMS)
	}
}

func TestInvalidateAVPoolDropsEverything(t *testing.T) {
	h := newPoolHarness(t, 4, 4, true)
	a := suci.SUPI{MCC: "001", MNC: "01", MSIN: "0000000001"}
	b := suci.SUPI{MCC: "001", MNC: "01", MSIN: "0000000002"}
	h.provision(t, a)
	h.provision(t, b)
	h.auth(t, a)
	h.auth(t, b)

	h.udm.InvalidateAVPool()
	s := h.udm.AVPoolStats()
	if s.Pooled != 0 || s.Invalidated != 6 {
		t.Fatalf("after invalidate-all: %+v, want 0 pooled, 6 invalidated", s)
	}
	// Authentication still works: the pool refills from scratch.
	h.auth(t, a)
	if s := h.udm.AVPoolStats(); s.Pooled != 3 || s.Refills != 3 {
		t.Fatalf("after re-refill: %+v", s)
	}
}

func TestAVPoolDeterministicUnderFixedSeed(t *testing.T) {
	run := func() ([]*GenerateAuthDataResponse, AVPoolStats) {
		h := newPoolHarness(t, 4, 4, true)
		supi := suci.SUPI{MCC: "001", MNC: "01", MSIN: "0000000001"}
		h.provision(t, supi)
		var out []*GenerateAuthDataResponse
		for i := 0; i < 6; i++ {
			out = append(out, h.auth(t, supi))
		}
		return out, h.udm.AVPoolStats()
	}
	a, sa := run()
	b, sb := run()
	if sa != sb {
		t.Fatalf("pool stats diverged: %+v vs %+v", sa, sb)
	}
	for i := range a {
		if !bytes.Equal(a[i].RAND, b[i].RAND) || !bytes.Equal(a[i].AUTN, b[i].AUTN) {
			t.Fatalf("auth %d diverged between same-seed runs", i)
		}
	}
}

func TestAVPoolDisabledMatchesSeedPath(t *testing.T) {
	// Depth 0 must leave the pool nil — the unpooled path, bit-identical
	// to the seed, with zeroed stats.
	h := newHarness(t)
	if h.udm.pool != nil {
		t.Fatal("pool allocated with AVPoolDepth 0")
	}
	if s := h.udm.AVPoolStats(); s != (AVPoolStats{}) {
		t.Fatalf("disabled pool stats = %+v, want zero", s)
	}
	h.udm.InvalidateAVPool() // must not panic
}

// TestPrewarmEliminatesColdStartMisses covers the PR-6 cold-start fix:
// without prewarm every SUPI's first authentication is one synchronous
// refill (201 misses for 200 UEs in the PR-5 bench); after PrewarmAVPool
// the same traffic is all hits.
func TestPrewarmEliminatesColdStartMisses(t *testing.T) {
	const depth = 4
	h := newPoolHarness(t, depth, depth, true)
	supis := []suci.SUPI{
		{MCC: "001", MNC: "01", MSIN: "0000000001"},
		{MCC: "001", MNC: "01", MSIN: "0000000002"},
		{MCC: "001", MNC: "01", MSIN: "0000000003"},
	}
	names := make([]string, len(supis))
	for i, s := range supis {
		h.provision(t, s)
		names[i] = s.String()
	}

	if err := h.udm.PrewarmAVPool(context.Background(), names, testSNN); err != nil {
		t.Fatalf("PrewarmAVPool: %v", err)
	}
	s := h.udm.AVPoolStats()
	if s.Prewarmed != uint64(depth*len(supis)) || s.Pooled != depth*len(supis) {
		t.Fatalf("after prewarm: %+v, want %d prewarmed and pooled", s, depth*len(supis))
	}
	if s.Misses != 0 || s.Hits != 0 {
		t.Fatalf("prewarm counted as traffic: %+v", s)
	}

	// Every first-contact authentication is now a pool hit.
	for _, supi := range supis {
		h.auth(t, supi)
	}
	s = h.udm.AVPoolStats()
	if s.Misses != 0 {
		t.Fatalf("cold-start misses survived prewarm: %+v", s)
	}
	if s.Hits != uint64(len(supis)) {
		t.Fatalf("hits = %d, want %d: %+v", s.Hits, len(supis), s)
	}
	if s.Pooled != (depth-1)*len(supis) {
		t.Fatalf("pooled = %d, want %d: %+v", s.Pooled, (depth-1)*len(supis), s)
	}
}

// TestPrewarmDisabledPool verifies the explicit error when the pool is
// off — a silent no-op would make a misconfigured bench look warmed.
func TestPrewarmDisabledPool(t *testing.T) {
	h := newHarness(t) // no AVPoolDepth: pool disabled
	if err := h.udm.PrewarmAVPool(context.Background(), []string{"imsi-001010000000001"}, testSNN); err == nil {
		t.Fatalf("PrewarmAVPool on disabled pool succeeded")
	}
}
