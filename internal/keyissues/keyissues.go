// Package keyissues encodes the paper's Table V: the 3GPP TR 33.848 key
// issues relevant to virtualised 5G cores, which of them 3GPP marks as
// HMEE-applicable, and the paper's extended assessment of full or partial
// HMEE mitigation — including the SGX mechanism in this repository that
// demonstrates each mitigation.
package keyissues

import (
	"fmt"
	"io"
	"sort"
)

// Coverage grades HMEE mitigation of a key issue.
type Coverage int

// Coverage levels (Table V legend).
const (
	// Full marks key issues HMEE resolves outright (✦ in the paper).
	Full Coverage = iota + 1
	// Partial marks key issues HMEE mitigates alongside additional
	// requirements (◻ in the paper).
	Partial
)

// String renders the paper's symbols as text.
func (c Coverage) String() string {
	switch c {
	case Full:
		return "full"
	case Partial:
		return "partial"
	default:
		return "none"
	}
}

// KeyIssue is one TR 33.848 key issue row.
type KeyIssue struct {
	// Number is the TR 33.848 KI identifier.
	Number int
	// Description is the KI title as listed in the paper's Table V.
	Description string
	// HMEERecommended reports whether 3GPP itself lists HMEE as a
	// solution (● rows: KIs 6, 7, 15, 25).
	HMEERecommended bool
	// Coverage is the paper's assessment.
	Coverage Coverage
	// Mechanism names the SGX property (and this repository's
	// demonstration of it) that provides the mitigation.
	Mechanism string
}

// Table returns the paper's Table V rows.
func Table() []KeyIssue {
	return []KeyIssue{
		{Number: 2, Description: "Confidentiality of sensitive data", Coverage: Full,
			Mechanism: "EPC memory encryption; sgx.Enclave secrets are ciphertext under Introspect"},
		{Number: 5, Description: "Data location and lifecycle", Coverage: Partial,
			Mechanism: "secrets flushed at teardown: Enclave.Destroy wipes in-enclave state"},
		{Number: 6, Description: "Function isolation", HMEERecommended: true, Coverage: Full,
			Mechanism: "enclave-resident P-AKA modules; memory encrypted between locations"},
		{Number: 7, Description: "Memory introspection", HMEERecommended: true, Coverage: Full,
			Mechanism: "hypervisor-view Introspect yields MEE ciphertext (examples/introspection)"},
		{Number: 11, Description: "Where are my keys and confidential data", Coverage: Partial,
			Mechanism: "sealed key storage bound to measurement (Enclave.Seal)"},
		{Number: 12, Description: "Where is my function", Coverage: Partial,
			Mechanism: "attestation-gated deployment: VerifyQuote before provisioning"},
		{Number: 13, Description: "Attestation at 3GPP function level", Coverage: Full,
			Mechanism: "hardware-rooted quotes over enclave measurement (GenerateQuote/VerifyQuote)"},
		{Number: 15, Description: "Encrypted data processing", HMEERecommended: true, Coverage: Full,
			Mechanism: "AKA executes on plaintext only inside the enclave boundary"},
		{Number: 20, Description: "3rd party hosting environments", Coverage: Partial,
			Mechanism: "confidentiality on untrusted hosts + attestation evidence for tenants"},
		{Number: 21, Description: "VM and hypervisor breakout", Coverage: Partial,
			Mechanism: "breach blast-radius limited: enclave contents stay protected"},
		{Number: 25, Description: "Container security", HMEERecommended: true, Coverage: Full,
			Mechanism: "GSC runs the unmodified container inside the enclave (gramine package)"},
		{Number: 26, Description: "Container breakout", Coverage: Partial,
			Mechanism: "escaped co-tenant cannot read or alter enclave memory"},
		{Number: 27, Description: "Secrets in NF container images", Coverage: Full,
			Mechanism: "seal secrets to measurement; unseal after attestation (examples/attestation)"},
	}
}

// ByNumber returns the KI with the given number.
func ByNumber(n int) (KeyIssue, bool) {
	for _, ki := range Table() {
		if ki.Number == n {
			return ki, true
		}
	}
	return KeyIssue{}, false
}

// Render prints the paper-style Table V.
func Render(w io.Writer) {
	rows := Table()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Number < rows[j].Number })
	fmt.Fprintf(w, "Table V: Key Issues Summary (TR 33.848)\n")
	fmt.Fprintf(w, "%-4s %-42s %-6s %-8s %s\n", "KI", "description", "3GPP", "coverage", "mechanism")
	for _, ki := range rows {
		mark := " "
		if ki.HMEERecommended {
			mark = "*"
		}
		fmt.Fprintf(w, "%-4d %-42s %-6s %-8s %s\n", ki.Number, ki.Description, mark, ki.Coverage, ki.Mechanism)
	}
	fmt.Fprintf(w, "(* = HMEE-applicable KI identified by 3GPP; coverage per the paper's assessment)\n")
}
