package sbi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// Invoker abstracts the transport so network functions work identically
// over the in-process modelled transport and real HTTP.
type Invoker interface {
	// Post invokes service's path endpoint with req, decoding into resp.
	Post(ctx context.Context, service, path string, req, resp any) error
}

// Compile-time transport conformance.
var (
	_ Invoker = (*Client)(nil)
	_ Invoker = (*HTTPClient)(nil)
)

// ServeHTTP exposes the server's endpoints over real HTTP (POST <path>),
// for the runnable binaries. ProblemDetails errors map onto their HTTP
// status with an application/problem+json body.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeProblem(w, Problem(405, "Method Not Allowed", "INVALID_METHOD", "use POST"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeProblem(w, Problem(400, "Bad Request", "PAYLOAD_TOO_LARGE", "read body: %v", err))
		return
	}
	out, err := s.serve(r.Context(), r.URL.Path, body)
	if err != nil {
		var pd *ProblemDetails
		if !errors.As(err, &pd) {
			pd = Problem(500, "Internal Server Error", "SYSTEM_FAILURE", "%v", err)
		}
		s.setOCIHeader(w.Header())
		writeProblem(w, pd)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.setOCIHeader(w.Header())
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out)
	// Handler-returned bodies are transport-owned (HandlerFunc contract).
	ReleaseBody(out)
}

// OCIHeader is the TS 29.500 §6.4 overload-control header name carrying the
// server's current OverloadControlInformation on every HTTP response.
const OCIHeader = "3gpp-Sbi-Oci"

// setOCIHeader attaches the server's current overload advert, when the load
// meter is armed, as a JSON-encoded 3gpp-Sbi-Oci header.
func (s *Server) setOCIHeader(h http.Header) {
	oci, ok := s.CurrentOCI()
	if !ok {
		return
	}
	if b, err := json.Marshal(oci); err == nil {
		h.Set(OCIHeader, string(b))
	}
}

func writeProblem(w http.ResponseWriter, pd *ProblemDetails) {
	w.Header().Set("Content-Type", "application/problem+json")
	w.WriteHeader(pd.Status)
	_ = json.NewEncoder(w).Encode(pd)
}

// HTTPClient is the real-network counterpart of Client: it resolves
// service names to base URLs and posts JSON over net/http.
type HTTPClient struct {
	client *http.Client

	mu    sync.RWMutex
	bases map[string]string

	oci ociTable
}

// PeerOCI reports the freshest overload advert received from service, parsed
// from 3gpp-Sbi-Oci response headers. It implements OCISource so HTTP-backed
// deployments feed the same client-side throttle as the in-process transport.
func (c *HTTPClient) PeerOCI(service string) (OCI, bool) {
	return c.oci.PeerOCI(service)
}

// recordOCIHeader parses a 3gpp-Sbi-Oci response header, if present, into the
// client's per-peer table.
func (c *HTTPClient) recordOCIHeader(service string, h http.Header) {
	raw := h.Get(OCIHeader)
	if raw == "" {
		return
	}
	var oci OCI
	if json.Unmarshal([]byte(raw), &oci) == nil {
		c.oci.record(service, oci)
	}
}

// NewHTTPClient creates an HTTP transport. A nil client selects
// http.DefaultClient.
func NewHTTPClient(client *http.Client) *HTTPClient {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPClient{client: client, bases: make(map[string]string)}
}

// SetBase maps a service name to its base URL (e.g. "http://udm:8080").
func (c *HTTPClient) SetBase(service, baseURL string) {
	c.mu.Lock()
	c.bases[service] = baseURL
	c.mu.Unlock()
}

// Post implements Invoker over HTTP.
func (c *HTTPClient) Post(ctx context.Context, service, path string, req, resp any) error {
	c.mu.RLock()
	base, ok := c.bases[service]
	c.mu.RUnlock()
	if !ok {
		return Problem(503, "Service Unavailable", "TARGET_NF_NOT_REACHABLE", "no base URL for %s", service)
	}
	body, err := MarshalBody(req)
	if err != nil {
		return fmt.Errorf("sbi: marshal request to %s%s: %w", service, path, err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		ReleaseBody(body)
		return fmt.Errorf("sbi: build request: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")

	httpResp, err := c.client.Do(httpReq)
	if err != nil {
		return fmt.Errorf("sbi: %s%s: %w", service, path, err)
	}
	// The request body is never released back to the pool: net/http can
	// deliver a response while its write goroutine is still draining the
	// reader (a server may answer before reading the full body), so the
	// bytes stay transport-owned until the GC reclaims them.
	defer func() { _ = httpResp.Body.Close() }()
	c.recordOCIHeader(service, httpResp.Header)

	out, err := io.ReadAll(io.LimitReader(httpResp.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("sbi: read response from %s%s: %w", service, path, err)
	}
	if httpResp.StatusCode != http.StatusOK {
		var pd ProblemDetails
		if json.Unmarshal(out, &pd) == nil && pd.Status != 0 {
			return &pd
		}
		return Problem(httpResp.StatusCode, httpResp.Status, "SYSTEM_FAILURE", "%s", out)
	}
	if resp == nil {
		ReleaseBody(out)
		return nil
	}
	uerr := UnmarshalBody(out, resp)
	ReleaseBody(out)
	if uerr != nil {
		return fmt.Errorf("sbi: unmarshal response from %s%s: %w", service, path, uerr)
	}
	return nil
}
