package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"time"

	"shield5g/internal/crypto/milenage"
	"shield5g/internal/crypto/suci"
	"shield5g/internal/deploy"
	"shield5g/internal/gnb"
	"shield5g/internal/paka"
	"shield5g/internal/simclock"
	"shield5g/internal/ue"
)

// OTAResult records the over-the-air feasibility test of §V-B6: a COTS
// device profile registering with the 5G core through the SGX-isolated
// P-AKA modules via an SDR gNB.
type OTAResult struct {
	Device     string
	PLMN       string
	Radio      string
	Registered bool
	GUTI       string
	UEAddress  string
	DataEcho   bool
	SetupTime  time.Duration
	Steps      []string
}

// OTA runs the feasibility test: OnePlus 8 profile, OpenCells test PLMN
// 00101, USRP x310 radio profile, SGX-isolated slice.
func OTA(ctx context.Context, cfg Config) (*OTAResult, error) {
	result := &OTAResult{
		Device: "OnePlus 8 (Oxygen 11.0.11.11.IN21DA)",
		PLMN:   "00101",
		Radio:  gnb.USRPX310().Name,
	}
	step := func(format string, args ...any) {
		result.Steps = append(result.Steps, fmt.Sprintf(format, args...))
	}

	s, err := deploy.NewSlice(ctx, deploy.SliceConfig{
		Isolation: paka.SGX,
		MCC:       "001", MNC: "01",
		Seed:  cfg.Seed,
		Radio: gnb.USRPX310(),
	})
	if err != nil {
		return nil, err
	}
	defer s.Stop()
	step("SGX slice deployed: P-AKA modules loaded in %v (eUDM), %v (eAUSF), %v (eAMF)",
		s.Modules[paka.EUDM].LoadDuration().Round(time.Millisecond),
		s.Modules[paka.EAUSF].LoadDuration().Round(time.Millisecond),
		s.Modules[paka.EAMF].LoadDuration().Round(time.Millisecond))

	// Program the OpenCells SIM with the test PLMN.
	supi := suci.SUPI{MCC: "001", MNC: "01", MSIN: "0000000101"}
	k := bytes.Repeat([]byte{0x8b}, 16)
	opc, err := milenage.ComputeOPc(k, make([]byte, 16))
	if err != nil {
		return nil, err
	}
	if err := s.ProvisionSubscriber(ctx, supi, k, opc); err != nil {
		return nil, err
	}
	step("OpenCells SIM programmed: %s on test PLMN %s", supi.String(), result.PLMN)

	profile := ue.OnePlus8()
	device, err := ue.New(ue.Config{
		SUPI: supi, K: k, OPc: opc,
		HomeNetworkPublicKey: s.HomeNetworkKey.PublicKey(),
		HomeNetworkKeyID:     s.HomeNetworkKey.ID,
		Env:                  s.Env,
		Profile:              &profile,
	})
	if err != nil {
		return nil, err
	}

	// The paper observed custom PLMNs are not detected by the device.
	if err := device.DetectNetwork("99999"); err == nil {
		return nil, fmt.Errorf("ota: COTS device detected a custom PLMN; profile gate broken")
	}
	step("custom PLMN 99999 not detected by %s (matches paper observation)", profile.Model)
	if err := device.DetectNetwork(s.GNB.BroadcastPLMN()); err != nil {
		return nil, fmt.Errorf("ota: device did not detect test PLMN: %w", err)
	}
	step("UE detected gNB broadcast PLMN %s via %s", s.GNB.BroadcastPLMN(), result.Radio)

	var acct simclock.Account
	sctx := simclock.WithAccount(ctx, &acct)
	sess, err := s.GNB.RegisterUE(sctx, device)
	if err != nil {
		return nil, fmt.Errorf("ota: registration failed: %w", err)
	}
	result.Registered = true
	if g, ok := device.GUTI(); ok {
		result.GUTI = g.String()
	}
	step("UE registered through SGX-isolated AKA: GUTI %s", result.GUTI)

	if err := sess.EstablishPDUSession(sctx, 1, "internet"); err != nil {
		return nil, fmt.Errorf("ota: PDU session failed: %w", err)
	}
	result.UEAddress = device.UEAddress()
	step("PDU session established: UE address %s", result.UEAddress)

	echo, err := sess.SendData(sctx, []byte("Test/-1 - OpenAirInterface"))
	if err != nil {
		return nil, fmt.Errorf("ota: data path failed: %w", err)
	}
	result.DataEcho = bytes.Contains(echo, []byte("OpenAirInterface"))
	result.SetupTime = s.Env.Model.Duration(acct.Total())
	step("data session carries traffic: %q", echo)
	return result, nil
}

// Render prints the OTA transcript.
func (r *OTAResult) Render(w io.Writer) {
	fprintf(w, "OTA feasibility test (paper §V-B6)\n")
	fprintf(w, "device: %s  PLMN: %s  radio: %s\n", r.Device, r.PLMN, r.Radio)
	for i, s := range r.Steps {
		fprintf(w, "  %d. %s\n", i+1, s)
	}
	fprintf(w, "registered=%v dataEcho=%v setup=%v\n", r.Registered, r.DataEcho, r.SetupTime.Round(time.Millisecond))
}
