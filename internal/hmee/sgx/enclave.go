package sgx

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"shield5g/internal/costmodel"
	"shield5g/internal/simclock"
)

// Enclave lifecycle errors.
var (
	// ErrNotInitialized reports use of an enclave before EINIT.
	ErrNotInitialized = errors.New("sgx: enclave not initialized")
	// ErrDestroyed reports use of a torn-down enclave.
	ErrDestroyed = errors.New("sgx: enclave destroyed")
	// ErrEPCExhausted reports that committing the enclave would exceed
	// the platform's physical EPC.
	ErrEPCExhausted = errors.New("sgx: physical EPC exhausted")
	// ErrTooManyThreads reports that all TCS slots are busy.
	ErrTooManyThreads = errors.New("sgx: no free thread control structure")
)

// EnclaveConfig describes one enclave to build. It mirrors the knobs the
// paper sets through the Gramine manifest.
type EnclaveConfig struct {
	// Name identifies the enclave in reports.
	Name string
	// SizeBytes is the committed EPC size (sgx.enclave_size). The paper
	// uses 512 MiB for the P-AKA modules and sweeps up to 8 GiB.
	SizeBytes uint64
	// MaxThreads is the TCS count (sgx.max_threads). Gramine needs 3
	// helper threads, so the paper's minimum stable value is 4.
	MaxThreads int
	// Preheat pre-faults all heap pages at initialization
	// (sgx.preheat_enclave), trading load time for stable operation.
	Preheat bool
	// Switchless reserves one TCS for a resident ring dispatcher thread
	// serving shared-memory call submission (see Ring). It changes the
	// enclave's runtime surface — an always-resident thread polling
	// untrusted memory — so it is folded into the measurement.
	Switchless bool
	// TrustedFiles are measured into the enclave identity at build time.
	TrustedFiles []MeasuredFile
	// HeapPages is the number of heap pages the workload touches per
	// request on average; used to model demand paging when Preheat is
	// off and residual paging pressure for oversized enclaves.
	HeapPages uint64
}

func (c *EnclaveConfig) validate() error {
	if c.SizeBytes == 0 {
		return errors.New("sgx: enclave size must be positive")
	}
	if c.MaxThreads <= 0 {
		return errors.New("sgx: max threads must be positive")
	}
	return nil
}

// State is the enclave lifecycle state.
type State int

// Enclave lifecycle states.
const (
	StateBuilt State = iota + 1
	StateDestroyed
)

// Enclave is one simulated SGX enclave.
type Enclave struct {
	id       uint64
	platform *Platform
	cfg      EnclaveConfig

	measurement [32]byte // MRENCLAVE analogue
	loadCycles  simclock.Cycles

	tcs chan struct{} // TCS slots; acquired per in-enclave thread

	stats Stats

	// state and faulted are atomics so the request hot path (liveness
	// check, demand-paging claim) never serialises concurrent threads.
	state   atomic.Int32
	faulted atomic.Uint64 // heap pages already faulted in

	secretMu sync.RWMutex
	secrets  map[string][]byte // shielded in-enclave data (plaintext inside)
}

// Build constructs, measures and initializes an enclave, charging the full
// ECREATE/EADD/EEXTEND/EINIT (and optional preheat) cost. This is the
// operation behind the paper's Fig. 7 enclave load times.
func (p *Platform) Build(ctx context.Context, cfg EnclaveConfig) (*Enclave, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.epcUsed+cfg.SizeBytes > p.epcCapacity {
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: committed %d + requested %d > capacity %d",
			ErrEPCExhausted, p.epcUsed, cfg.SizeBytes, p.epcCapacity)
	}
	p.epcUsed += cfg.SizeBytes
	p.nextID++
	id := p.nextID
	p.mu.Unlock()

	e := &Enclave{
		id:       id,
		platform: p,
		cfg:      cfg,
		tcs:      make(chan struct{}, cfg.MaxThreads),
		secrets:  make(map[string][]byte),
	}
	e.state.Store(int32(StateBuilt))

	// Measurement: hash the configuration and every trusted file, in
	// order, the way EADD/EEXTEND folds page contents into MRENCLAVE.
	h := sha256.New()
	fmt.Fprintf(h, "enclave:%s:size=%d:threads=%d:preheat=%v",
		cfg.Name, cfg.SizeBytes, cfg.MaxThreads, cfg.Preheat)
	if cfg.Switchless {
		// Folded only when enabled so that switchless-off enclaves keep
		// the identities sealed data and goldens were produced under.
		fmt.Fprintf(h, ":switchless=true")
	}
	var fileBytes uint64
	for _, f := range cfg.TrustedFiles {
		d := f.digest()
		h.Write(d[:])
		fileBytes += f.Size
	}
	copy(e.measurement[:], h.Sum(nil))

	// Load cost: per-page EADD+EEXTEND over the committed size, trusted
	// file hashing, and preheat pre-faulting. Jitter reproduces the
	// quartile spread of Fig. 7.
	m := p.model
	pages := simclock.Cycles(costmodel.PagesFor(cfg.SizeBytes))
	cost := pages * m.EnclaveBuildPerPage
	cost += simclock.Cycles(fileBytes) * m.TrustedFileHashPerByte
	if cfg.Preheat {
		cost += pages * m.PreheatPerPage
		e.faulted.Store(costmodel.PagesFor(cfg.SizeBytes))
	}
	// Gramine + glibc bootstrap issues several hundred OCALLs while
	// reading the manifest and loading shared libraries, plus a
	// population of one-way entries (signal handling setup, thread stack
	// registration) that never see a matching EEXIT. The constants
	// reproduce the paper's empty-workload baseline of Table III
	// (762 EENTERs / 680 EEXITs for a GSC container with no server).
	const (
		bootstrapOCALLs  = 680
		bootstrapOneWays = 82
	)
	cost += simclock.Cycles(bootstrapOCALLs) * m.OCALLRoundTrip()
	cost += simclock.Cycles(bootstrapOneWays) * m.EENTER
	e.stats.EENTER.Add(bootstrapOCALLs + bootstrapOneWays)
	e.stats.EEXIT.Add(bootstrapOCALLs)
	e.stats.OCALLs.Add(bootstrapOCALLs)
	e.stats.ECALLs.Add(bootstrapOneWays)

	cost = p.jitter.Scale(cost, 0.012)
	e.loadCycles = cost
	p.charge(simclock.AccountFrom(ctx), cost)

	p.mu.Lock()
	p.enclaves[id] = e
	p.mu.Unlock()
	return e, nil
}

// Name returns the configured enclave name.
func (e *Enclave) Name() string { return e.cfg.Name }

// Config returns a copy of the enclave configuration.
func (e *Enclave) Config() EnclaveConfig {
	cfg := e.cfg
	cfg.TrustedFiles = append([]MeasuredFile(nil), e.cfg.TrustedFiles...)
	return cfg
}

// Measurement returns the MRENCLAVE-style identity hash.
func (e *Enclave) Measurement() [32]byte { return e.measurement }

// LoadCycles reports the cycles charged to build and initialize the
// enclave.
func (e *Enclave) LoadCycles() simclock.Cycles { return e.loadCycles }

// LoadDuration reports the modelled enclave load time (Fig. 7).
func (e *Enclave) LoadDuration() time.Duration {
	return e.platform.model.Duration(e.loadCycles)
}

// Destroy tears the enclave down, releasing its committed EPC and flushing
// in-enclave secrets (the cache-flush requirement of Key Issue 5).
func (e *Enclave) Destroy() {
	if !e.state.CompareAndSwap(int32(StateBuilt), int32(StateDestroyed)) {
		return
	}
	e.secretMu.Lock()
	for k := range e.secrets {
		delete(e.secrets, k)
	}
	e.secretMu.Unlock()

	p := e.platform
	p.mu.Lock()
	if _, ok := p.enclaves[e.id]; ok {
		delete(p.enclaves, e.id)
		p.epcUsed -= e.cfg.SizeBytes
	}
	p.mu.Unlock()
}

func (e *Enclave) live() error {
	switch State(e.state.Load()) {
	case StateBuilt:
		return nil
	case StateDestroyed:
		return ErrDestroyed
	default:
		return ErrNotInitialized
	}
}

// Thread models one thread executing inside the enclave. All in-enclave
// work — compute, memory touches, OCALLs — is expressed through it so the
// simulator can charge transition, shielding and paging costs and count
// the same events real hardware would.
type Thread struct {
	enclave *Enclave
	acct    *simclock.Account
	// jitter, when non-nil, overrides the platform jitter for this
	// thread's stochastic draws (AEX arrivals, paging pressure) — the
	// per-worker stream of a parallel request.
	jitter *simclock.Jitter
}

// rng returns the jitter source for this thread's stochastic draws.
func (t *Thread) rng() *simclock.Jitter {
	if t.jitter != nil {
		return t.jitter
	}
	return t.enclave.platform.jitter
}

// tcsAcquireTimeout bounds how long an entry waits for a TCS slot. The
// wait is wall-clock, not virtual: slot contention is real goroutine
// concurrency between callers, the way threads queue on a busy enclave.
const tcsAcquireTimeout = 30 * time.Second

// acquireTCS claims a TCS slot, blocking until one frees, ctx is
// cancelled, or the bounded wait expires — so high-parallelism callers
// queue instead of failing immediately. Exhaustion and cancellation both
// wrap ErrTooManyThreads.
func (e *Enclave) acquireTCS(ctx context.Context) error {
	select {
	case e.tcs <- struct{}{}:
	default:
		//shieldlint:wallclock goroutines really block here, so the liveness bound must be real time
		timer := time.NewTimer(tcsAcquireTimeout)
		defer timer.Stop()
		select {
		case e.tcs <- struct{}{}:
		case <-ctx.Done():
			return fmt.Errorf("%w: %d busy: %v", ErrTooManyThreads, cap(e.tcs), ctx.Err())
		case <-timer.C:
			return fmt.Errorf("%w: %d busy after %v", ErrTooManyThreads, cap(e.tcs), tcsAcquireTimeout)
		}
	}
	// The enclave may have been torn down while we waited for the slot.
	if err := e.live(); err != nil {
		<-e.tcs
		return err
	}
	return nil
}

// ECall enters the enclave on a free TCS slot, runs fn as the in-enclave
// thread body, and exits. Entry and exit each charge one transition and
// the boundary-crossing costs for the declared argument sizes. When all
// slots are busy the entry queues (bounded, honouring ctx cancellation)
// rather than failing outright.
func (e *Enclave) ECall(ctx context.Context, argBytes, retBytes int, fn func(*Thread) error) error {
	if err := e.live(); err != nil {
		return err
	}
	if err := e.acquireTCS(ctx); err != nil {
		return err
	}
	defer func() { <-e.tcs }()

	p := e.platform
	acct := simclock.AccountFrom(ctx)
	m := p.model

	e.stats.EENTER.Add(1)
	e.stats.ECALLs.Add(1)
	p.charge(acct, m.EENTER+m.ShieldCost(argBytes))

	t := &Thread{enclave: e, acct: acct}
	err := fn(t)

	e.stats.EEXIT.Add(1)
	p.charge(acct, m.EEXIT+m.ShieldCost(retBytes))
	return err
}

// EnterResident models Gramine's long-lived entries: one ECALL for the
// process and one per LibOS thread that never return while the enclave
// lives. Only EENTER is counted, reproducing the EENTER>EEXIT skew in the
// paper's Table III.
func (e *Enclave) EnterResident(ctx context.Context) (*Thread, error) {
	if err := e.live(); err != nil {
		return nil, err
	}
	if err := e.acquireTCS(ctx); err != nil {
		return nil, err
	}
	p := e.platform
	acct := simclock.AccountFrom(ctx)
	e.stats.EENTER.Add(1)
	e.stats.ECALLs.Add(1)
	p.charge(acct, p.model.EENTER)
	return &Thread{enclave: e, acct: acct}, nil
}

// LeaveResident releases a resident thread's TCS slot, counting the final
// EEXIT (process teardown).
func (e *Enclave) LeaveResident(t *Thread) {
	e.stats.EEXIT.Add(1)
	e.platform.charge(t.acct, e.platform.model.EEXIT)
	<-e.tcs
}

// WithAccount rebinds the thread's cost account; used when one resident
// LibOS thread serves many independent requests.
func (t *Thread) WithAccount(acct *simclock.Account) *Thread {
	return &Thread{enclave: t.enclave, acct: acct, jitter: t.jitter}
}

// WithRequest rebinds the thread to the request carried by ctx: its cost
// account and, when the parallel driver attached one, its per-worker
// jitter stream. With neither attached the thread behaves exactly like
// the sequential seed implementation (throwaway account, platform
// jitter).
func (t *Thread) WithRequest(ctx context.Context) *Thread {
	return &Thread{
		enclave: t.enclave,
		acct:    simclock.AccountFrom(ctx),
		jitter:  simclock.JitterFrom(ctx, nil),
	}
}

// BindRequest is the allocation-free counterpart of WithRequest for pooled
// request threads: it rebinds dst to t's enclave, charging acct and drawing
// from ctx's per-worker jitter stream (platform jitter when none is
// attached). The account is passed explicitly because AccountFrom mints a
// fresh throwaway when ctx carries none — the caller has already derived
// the account it reports against and both must be the same object. dst is
// caller-owned and must not be retained past the request it was bound for.
//
//shieldlint:hotpath
func (t *Thread) BindRequest(ctx context.Context, acct *simclock.Account, dst *Thread) {
	dst.enclave = t.enclave
	dst.acct = acct
	dst.jitter = simclock.JitterFrom(ctx, nil)
}

// OCall models the thread leaving the enclave to have the untrusted
// runtime perform work on its behalf (a proxied syscall): EEXIT, the
// untrusted work expressed in cycles, then EENTER. Argument and result
// bytes are shielded as they cross the boundary.
func (t *Thread) OCall(untrustedCycles simclock.Cycles, outBytes, inBytes int) {
	e := t.enclave
	m := e.platform.model
	e.stats.EEXIT.Add(1)
	e.stats.EENTER.Add(1)
	e.stats.OCALLs.Add(1)
	cost := m.EEXIT + m.ShieldCost(outBytes) + untrustedCycles + m.EENTER + m.ShieldCost(inBytes)
	e.platform.charge(t.acct, cost)
}

// OCallExitless models Gramine's exitless (switchless) call feature: the
// enclave thread hands the syscall to an untrusted helper thread through a
// shared-memory ring and spins until the result lands, avoiding the
// EEXIT/EENTER pair entirely. The OCALL is still counted (it is still a
// proxied syscall) but no transitions occur; the price is the cross-core
// handoff and the helper thread burning a core. The paper notes this
// feature is not production-ready; it is modelled here for the §V-B7
// ablation.
func (t *Thread) OCallExitless(untrustedCycles simclock.Cycles, outBytes, inBytes int) {
	e := t.enclave
	m := e.platform.model
	e.stats.OCALLs.Add(1)
	// Two cache-line handoffs plus the spin while the helper serves the
	// call; far below the ~17k-cycle transition pair.
	const handoffCycles = 3_000
	cost := handoffCycles + untrustedCycles + m.ShieldCost(outBytes) + m.ShieldCost(inBytes)
	e.platform.charge(t.acct, cost)
}

// ShieldTransfer charges the boundary cost of moving outBytes out of and
// inBytes into the enclave through shared memory without any transition:
// the copy-and-shield price a switchless submission pays for its argument
// and result buffers. No counters move — there is no event hardware would
// count, only bytes crossing the boundary.
func (t *Thread) ShieldTransfer(outBytes, inBytes int) {
	m := t.enclave.platform.model
	t.enclave.platform.charge(t.acct, m.ShieldCost(outBytes)+m.ShieldCost(inBytes))
}

// Compute charges n cycles of in-enclave execution. Execution inside the
// EPC pays the memory-encryption overhead, and long computations are
// interrupted by timer-driven asynchronous exits (AEX + ERESUME), which the
// simulator draws at the platform tick rate.
func (t *Thread) Compute(n simclock.Cycles) {
	e := t.enclave
	p := e.platform
	m := p.model

	// MEE overhead: a few percent on compute-bound in-enclave code.
	const meeOverheadPct = 6
	cost := n + n*meeOverheadPct/100

	seconds := float64(n) / float64(m.FrequencyHz)
	aex := t.rng().Poisson(seconds * m.AEXRatePerThreadHz)
	if aex > 0 {
		e.stats.AEX.Add(uint64(aex))
		e.stats.ERESUME.Add(uint64(aex))
		cost += simclock.Cycles(aex) * m.AEXRoundTrip()
	}
	p.charge(t.acct, cost)
}

// Touch models the thread accessing n bytes of enclave heap. Pages not yet
// faulted in (preheat disabled, or first touch after load) pay the EPC
// fault cost; oversized enclaves pay residual paging pressure, reproducing
// the Fig. 8 degradation at 8 GiB EPC.
func (t *Thread) Touch(nBytes uint64) {
	e := t.enclave
	p := e.platform
	m := p.model
	pages := costmodel.PagesFor(nBytes)

	// Claim not-yet-faulted pages with a CAS loop so concurrent first
	// touches never double-charge a page and never serialise on a lock.
	var faults uint64
	total := costmodel.PagesFor(e.cfg.SizeBytes)
	for {
		done := e.faulted.Load()
		if done >= total {
			break
		}
		claim := total - done
		if pages < claim {
			claim = pages
		}
		if e.faulted.CompareAndSwap(done, done+claim) {
			faults = claim
			break
		}
	}

	// Residual paging pressure grows with committed enclave size: the
	// kernel balances a larger resident set, so reclaim touches big
	// enclaves more often. 512 MiB pays ~0; 8 GiB pays the paper's
	// "slight decrease in performance and wider interquartile range".
	const pressurePages = float64(1 << 30 / costmodel.PageSize) // per GiB beyond the first
	excess := float64(total) - pressurePages
	var lambda float64
	if excess > 0 {
		lambda = 0.04 * (excess / pressurePages) * float64(pages)
	}
	faults += uint64(t.rng().Poisson(lambda))

	if faults > 0 {
		e.stats.PageFaults.Add(faults)
		e.stats.AEX.Add(faults)
		e.stats.ERESUME.Add(faults)
		p.charge(t.acct, simclock.Cycles(faults)*(m.EPCPageFault+m.AEXRoundTrip()))
	}
	p.charge(t.acct, simclock.Cycles(nBytes)*m.CopyPerByte)
}

// StoreSecret places sensitive material in enclave memory. From inside the
// enclave it is plaintext; Introspect (the attacker's view) sees only
// ciphertext, reproducing the memory-introspection protection of Key
// Issues 7 and 15.
func (t *Thread) StoreSecret(name string, data []byte) {
	e := t.enclave
	e.secretMu.Lock()
	defer e.secretMu.Unlock()
	e.secrets[name] = append([]byte(nil), data...)
}

// LoadSecret reads sensitive material back from enclave memory. Reads
// share the lock so concurrent AV generations for different subscribers
// do not serialise on the key store.
func (t *Thread) LoadSecret(name string) ([]byte, bool) {
	e := t.enclave
	e.secretMu.RLock()
	defer e.secretMu.RUnlock()
	d, ok := e.secrets[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), d...), true
}

// Introspect is the view a privileged attacker (hypervisor, container
// engine, co-resident root) gets of the enclave's memory for the named
// region: the Memory Encryption Engine ciphertext, never the plaintext.
func (e *Enclave) Introspect(name string) ([]byte, bool) {
	e.secretMu.RLock()
	plain, ok := e.secrets[name]
	if !ok {
		e.secretMu.RUnlock()
		return nil, false
	}
	plain = append([]byte(nil), plain...)
	e.secretMu.RUnlock()

	// Deterministic keystream derived from the platform sealing root and
	// enclave id stands in for the MEE's AES-XTS: same plaintext, same
	// ciphertext, nothing recoverable without the CPU package key.
	out := make([]byte, len(plain))
	var counter uint64
	var block [32]byte
	for i := range plain {
		if i%32 == 0 {
			h := sha256.New()
			h.Write(e.platform.sealRoot[:])
			var idb [8]byte
			binary.BigEndian.PutUint64(idb[:], e.id)
			h.Write(idb[:])
			binary.BigEndian.PutUint64(idb[:], counter)
			h.Write(idb[:])
			copy(block[:], h.Sum(nil))
			counter++
		}
		out[i] = plain[i] ^ block[i%32]
	}
	return out, true
}

// AccrueUptime models the enclave staying resident for d of virtual time:
// timer interrupts hit every enclave-resident thread, generating the large
// registration-independent AEX populations of Table III.
func (e *Enclave) AccrueUptime(d time.Duration) {
	p := e.platform
	resident := float64(e.cfg.MaxThreads)
	mean := d.Seconds() * p.model.AEXRatePerThreadHz * resident
	n := p.jitter.Poisson(mean)
	e.stats.AEX.Add(uint64(n))
	e.stats.ERESUME.Add(uint64(n))
	p.clock.AdvanceDuration(d)
}

// InjectAEX models an externally induced burst of asynchronous exits — a
// noisy neighbour hammering the core with interrupts, or a malicious host
// scheduler preempting the enclave (the single-stepping vector of Key
// Issue 11). Each exit pays the AEX+ERESUME round trip, charged to the
// request in ctx so the victim's latency figures absorb the storm.
func (e *Enclave) InjectAEX(ctx context.Context, n uint64) {
	if n == 0 || e.live() != nil {
		return
	}
	e.stats.AEX.Add(n)
	e.stats.ERESUME.Add(n)
	e.platform.charge(simclock.AccountFrom(ctx),
		simclock.Cycles(n)*e.platform.model.AEXRoundTrip())
}

// EvictPages models EPC page-pressure reclaim: the kernel swaps up to n of
// the enclave's resident heap pages out of the EPC (EWB). The eviction
// itself is the host's cost; the enclave pays later, when Touch re-faults
// the evicted pages back in. Returns the number of pages actually evicted.
func (e *Enclave) EvictPages(n uint64) uint64 {
	if n == 0 || e.live() != nil {
		return 0
	}
	for {
		done := e.faulted.Load()
		if done == 0 {
			return 0
		}
		evict := n
		if evict > done {
			evict = done
		}
		if e.faulted.CompareAndSwap(done, done-evict) {
			return evict
		}
	}
}

// Stats contains the SGX-specific operation counters the paper collects
// through Gramine's stats interface (Table III).
type Stats struct {
	EENTER     atomic.Uint64
	EEXIT      atomic.Uint64
	AEX        atomic.Uint64
	ERESUME    atomic.Uint64
	ECALLs     atomic.Uint64
	OCALLs     atomic.Uint64
	PageFaults atomic.Uint64
}

// StatsSnapshot is a point-in-time copy of the counters.
type StatsSnapshot struct {
	EENTER     uint64
	EEXIT      uint64
	AEX        uint64
	ERESUME    uint64
	ECALLs     uint64
	OCALLs     uint64
	PageFaults uint64
}

// Stats returns a snapshot of the enclave's counters.
func (e *Enclave) Stats() StatsSnapshot {
	return StatsSnapshot{
		EENTER:     e.stats.EENTER.Load(),
		EEXIT:      e.stats.EEXIT.Load(),
		AEX:        e.stats.AEX.Load(),
		ERESUME:    e.stats.ERESUME.Load(),
		ECALLs:     e.stats.ECALLs.Load(),
		OCALLs:     e.stats.OCALLs.Load(),
		PageFaults: e.stats.PageFaults.Load(),
	}
}

// Sub returns the counter deltas s - prev; the paper differences
// consecutive snapshots to obtain per-registration costs.
func (s StatsSnapshot) Sub(prev StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		EENTER:     s.EENTER - prev.EENTER,
		EEXIT:      s.EEXIT - prev.EEXIT,
		AEX:        s.AEX - prev.AEX,
		ERESUME:    s.ERESUME - prev.ERESUME,
		ECALLs:     s.ECALLs - prev.ECALLs,
		OCALLs:     s.OCALLs - prev.OCALLs,
		PageFaults: s.PageFaults - prev.PageFaults,
	}
}
