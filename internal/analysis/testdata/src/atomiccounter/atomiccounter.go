// Package atomiccounter is a shieldlint fixture: fields touched through
// sync/atomic anywhere in the package must be touched that way
// everywhere, and typed-atomic-bearing structs must not be copied.
package atomiccounter

import "sync/atomic"

type stats struct {
	success uint64
	failure uint64
	plain   uint64 // never accessed atomically: plain loads stay legal
	// shieldlint:atomic
	typed atomic.Uint64
	// shieldlint:atomic
	bogus uint64 // want "marked //shieldlint:atomic but has type uint64"
}

func (s *stats) inc() {
	atomic.AddUint64(&s.success, 1)
	atomic.AddUint64(&s.failure, 1)
	s.typed.Add(1)
	s.plain++
}

func (s *stats) read() uint64 {
	return s.success // want "success is accessed with sync/atomic elsewhere"
}

func (s *stats) mix() uint64 {
	return atomic.LoadUint64(&s.failure) + s.failure // want "failure is accessed with sync/atomic elsewhere"
}

func fresh() *stats {
	return &stats{success: 0} // composite-literal keys name the field, they do not read it
}

var counter int64

func bump() {
	atomic.AddInt64(&counter, 1)
}

func get() int64 {
	return counter // want "counter is accessed with sync/atomic elsewhere"
}

type census struct {
	calls atomic.Int64
}

func (c census) snapshot() int64 { // want "value receiver of type .*census"
	return c.calls.Load()
}

func (c *census) bump() {
	c.calls.Add(1)
}

func sum(all []census) int64 {
	var total int64
	for _, c := range all { // want "range copies values of type .*census"
		total += c.calls.Load()
	}
	return total
}

func sumByIndex(all []census) int64 {
	var total int64
	for i := range all {
		total += all[i].calls.Load()
	}
	return total
}
