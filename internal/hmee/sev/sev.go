// Package sev simulates an AMD SEV-SNP–style confidential virtual
// machine, the alternative HMEE the paper discusses in §IV-C: the whole
// guest (kernel, container runtime, module) runs inside one encrypted VM,
// so applications need no refactoring and no per-syscall enclave
// transitions occur — but the trusted computing base grows to include the
// entire guest software stack, which the paper argues can make such VMs
// unsuitable for the most sensitive functions.
//
// The simulation mirrors the sgx package's surface (launch with
// measurement, request serving with cost accounting, sealing-grade secret
// storage, attestation reports) so the P-AKA modules can be deployed on
// either backend and compared head to head.
package sev

import (
	"context"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"shield5g/internal/costmodel"
	"shield5g/internal/hmee/gramine"
	"shield5g/internal/simclock"
)

// Cost constants of the virtualization path.
const (
	// vmExitCycles is one VM exit + resume (virtio doorbell, interrupt
	// injection): far cheaper than an SGX transition pair.
	vmExitCycles = 4_200
	// vmExitsPerRequest covers the virtio notifications of one
	// request/response on a paravirtual NIC.
	vmExitsPerRequest = 4
	// sevComputePenaltyPct is the SEV-SNP memory-encryption and nested
	// paging overhead on guest execution.
	sevComputePenaltyPct = 4
	// launchDigestBytesPerSec matches the PSP's LAUNCH_UPDATE
	// measurement throughput over the initial guest memory.
	launchDigestPerByte = 6 // cycles
	// guestBootCycles models kernel + userland boot inside the VM.
	guestBootCycles = 4_800_000_000 // 2 s at 2.4 GHz
	// guestKernelBytes and guestSystemBytes are the guest software that
	// joins the TCB beyond the application image.
	guestKernelBytes = 360_000_000
	guestSystemBytes = 740_000_000
)

// Machine lifecycle errors.
var (
	// ErrStopped reports use of a torn-down machine.
	ErrStopped = errors.New("sev: machine stopped")
)

// Config describes one confidential VM.
type Config struct {
	// Name identifies the machine in reports.
	Name string
	// AppImageBytes is the application container image shipped into the
	// guest.
	AppImageBytes uint64
	// InitialRAMBytes is the memory measured at launch (zero selects
	// 1 GiB).
	InitialRAMBytes uint64
}

// Machine is one running confidential VM.
type Machine struct {
	env *costmodel.Env
	cfg Config

	measurement  [32]byte
	launchCycles simclock.Cycles
	signPriv     ed25519.PrivateKey
	signPub      ed25519.PublicKey
	syscalls     gramine.SyscallProfile

	vmExits atomic.Uint64

	mu      sync.Mutex
	running bool
	warm    bool
	secrets map[string][]byte
	sealKey [32]byte
}

// Launch measures and boots a confidential VM, charging the launch cost
// to ctx's account.
func Launch(ctx context.Context, env *costmodel.Env, cfg Config) (*Machine, error) {
	if env == nil {
		return nil, errors.New("sev: nil env")
	}
	if cfg.Name == "" {
		return nil, errors.New("sev: machine name required")
	}
	if cfg.InitialRAMBytes == 0 {
		cfg.InitialRAMBytes = 1 << 30
	}
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		return nil, fmt.Errorf("sev: generate PSP signing key: %w", err)
	}
	m := &Machine{
		env:      env,
		cfg:      cfg,
		signPriv: priv,
		signPub:  pub,
		syscalls: gramine.DefaultSyscallProfile(),
		running:  true,
		secrets:  make(map[string][]byte),
	}

	h := sha256.New()
	fmt.Fprintf(h, "sev-snp:%s:ram=%d:app=%d", cfg.Name, cfg.InitialRAMBytes, cfg.AppImageBytes)
	copy(m.measurement[:], h.Sum(nil))
	copy(m.sealKey[:], h.Sum([]byte("seal")))

	cost := simclock.Cycles(cfg.InitialRAMBytes)*launchDigestPerByte + guestBootCycles
	cost = env.Jitter.Scale(cost, 0.02)
	m.launchCycles = cost
	env.Charge(ctx, cost)
	return m, nil
}

// Name returns the configured machine name.
func (m *Machine) Name() string { return m.cfg.Name }

// Measurement returns the SNP launch digest analogue.
func (m *Machine) Measurement() [32]byte { return m.measurement }

// LoadDuration reports the modelled launch time.
func (m *Machine) LoadDuration() time.Duration { return m.env.Model.Duration(m.launchCycles) }

// TCBBytes reports the VM's trusted computing base: the application image
// plus the guest kernel and system userland that share the encrypted
// domain — the "large TCB" trade-off the paper highlights for secure VMs.
func (m *Machine) TCBBytes() uint64 {
	return m.cfg.AppImageBytes + guestKernelBytes + guestSystemBytes
}

// VMExits reports the accumulated VM exit count.
func (m *Machine) VMExits() uint64 { return m.vmExits.Load() }

func (m *Machine) live() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.running {
		return ErrStopped
	}
	return nil
}

// Exec is the in-guest execution surface (compatible with the P-AKA
// runtime contract).
type Exec struct {
	ctx context.Context
	m   *Machine
}

// Compute charges n cycles of guest execution under the SEV memory
// encryption penalty.
func (e Exec) Compute(n simclock.Cycles) {
	e.m.env.Charge(e.ctx, n+n*sevComputePenaltyPct/100)
}

// Touch charges access to n bytes of guest memory.
func (e Exec) Touch(nBytes uint64) {
	e.m.env.Charge(e.ctx, simclock.Cycles(nBytes)*e.m.env.Model.CopyPerByte)
}

// StoreSecret places sensitive material in guest memory (plaintext inside
// the VM, ciphertext to the host).
func (e Exec) StoreSecret(name string, data []byte) {
	e.m.mu.Lock()
	e.m.secrets[name] = append([]byte(nil), data...)
	e.m.mu.Unlock()
}

// LoadSecret reads sensitive material back.
func (e Exec) LoadSecret(name string) ([]byte, bool) {
	e.m.mu.Lock()
	defer e.m.mu.Unlock()
	d, ok := e.m.secrets[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), d...), true
}

// Breakdown mirrors the Gramine runtime's latency windows.
type Breakdown = gramine.Breakdown

// ServeRequest runs one HTTPS request through the in-guest server: the
// same syscall census as the container, served by the guest kernel at
// native cost, plus the virtio VM exits at the device boundary.
func (m *Machine) ServeRequest(ctx context.Context, inBytes, outBytes int, handler func(Exec) error) (Breakdown, error) {
	if err := m.live(); err != nil {
		return Breakdown{}, err
	}
	m.mu.Lock()
	first := !m.warm
	m.warm = true
	m.mu.Unlock()

	env := m.env
	model := env.Model
	// Pin the request account so callers without one still get coherent
	// latency windows.
	acct := simclock.AccountFrom(ctx)
	ctx = simclock.WithAccount(ctx, acct)
	charge := func(n simclock.Cycles) { env.Charge(ctx, n) }
	syscall := func(bytes int) {
		charge(model.SyscallNative + simclock.Cycles(bytes)*model.CopyPerByte)
	}
	vmexit := func() {
		m.vmExits.Add(1)
		charge(vmExitCycles)
	}
	start := acct.Total()

	if first {
		charge(2_000_000) // lazy library loading inside the guest
		charge(model.TLSHandshakeServer)
	}

	// Request arrival: virtio doorbell + interrupt injection.
	vmexit()
	vmexit()

	jig := int(env.JitterFor(ctx).Uint64n(3))
	for k := 0; k < m.syscalls.Pre+jig; k++ {
		syscall(32)
	}

	totalStart := acct.Total()
	for k := 0; k < m.syscalls.Read; k++ {
		syscall(inBytes/m.syscalls.Read + 1)
	}
	charge(model.TLSRecordCost(inBytes) + model.HTTPCost(inBytes))

	fnStart := acct.Total()
	ex := Exec{ctx: ctx, m: m}
	err := handler(ex)
	fnEnd := acct.Total()

	charge(model.HTTPCost(outBytes) + model.TLSRecordCost(outBytes))
	for k := 0; k < m.syscalls.Write; k++ {
		syscall(outBytes/m.syscalls.Write + 1)
	}
	totalEnd := acct.Total()

	for k := 0; k < m.syscalls.Post; k++ {
		syscall(32)
	}
	// Response departure.
	vmexit()
	vmexit()

	return Breakdown{
		Functional: fnEnd - fnStart,
		Total:      totalEnd - totalStart,
		ServerSide: acct.Total() - start,
	}, err
}

// Do runs fn in the guest outside the request path.
func (m *Machine) Do(ctx context.Context, fn func(Exec) error) error {
	if err := m.live(); err != nil {
		return err
	}
	ctx = simclock.WithAccount(ctx, simclock.AccountFrom(ctx))
	return fn(Exec{ctx: ctx, m: m})
}

// Warm reports whether the first request has been served.
func (m *Machine) Warm() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.warm
}

// Introspect is the host's view of guest memory for the named secret:
// SEV ciphertext. (Note the paper's caveat: deterministic memory
// encryption has known ciphertext side channels — CIPHERLEAKS — which is
// one reason it models only partial mitigation for some key issues.)
func (m *Machine) Introspect(name string) ([]byte, bool) {
	m.mu.Lock()
	plain, ok := m.secrets[name]
	if !ok {
		m.mu.Unlock()
		return nil, false
	}
	plain = append([]byte(nil), plain...)
	m.mu.Unlock()

	out := make([]byte, len(plain))
	var block [32]byte
	var counter uint64
	for i := range plain {
		if i%32 == 0 {
			h := sha256.New()
			h.Write(m.sealKey[:])
			var cb [8]byte
			binary.BigEndian.PutUint64(cb[:], counter)
			h.Write(cb[:])
			copy(block[:], h.Sum(nil))
			counter++
		}
		out[i] = plain[i] ^ block[i%32]
	}
	return out, true
}

// AttestationReport is the SNP report analogue: launch digest plus caller
// data, signed by the platform security processor.
type AttestationReport struct {
	MachineName string   `json:"machine_name"`
	Measurement [32]byte `json:"measurement"`
	ReportData  [64]byte `json:"report_data"`
	Signature   []byte   `json:"signature"`
}

// GenerateReport produces a signed attestation report.
func (m *Machine) GenerateReport(reportData [64]byte) (*AttestationReport, error) {
	if err := m.live(); err != nil {
		return nil, err
	}
	r := &AttestationReport{MachineName: m.cfg.Name, Measurement: m.measurement, ReportData: reportData}
	r.Signature = ed25519.Sign(m.signPriv, r.signedBytes())
	return r, nil
}

func (r *AttestationReport) signedBytes() []byte {
	out := make([]byte, 0, len(r.MachineName)+32+64)
	out = append(out, r.MachineName...)
	out = append(out, r.Measurement[:]...)
	out = append(out, r.ReportData[:]...)
	return out
}

// SigningKey returns the PSP verification key a relying party pins.
func (m *Machine) SigningKey() ed25519.PublicKey { return m.signPub }

// VerifyReport checks a report against the PSP key.
func VerifyReport(pspKey ed25519.PublicKey, r *AttestationReport) error {
	if r == nil {
		return errors.New("sev: nil report")
	}
	if !ed25519.Verify(pspKey, r.signedBytes(), r.Signature) {
		return errors.New("sev: report signature invalid")
	}
	return nil
}

// Stop tears the machine down, flushing guest secrets.
func (m *Machine) Stop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.running = false
	for k := range m.secrets {
		delete(m.secrets, k)
	}
}
