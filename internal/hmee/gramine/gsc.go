package gramine

import (
	"crypto/ed25519"
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"strings"

	"shield5g/internal/hmee/sgx"
)

// GSCVersion is the Gramine Shielded Containers release the paper builds
// with.
const GSCVersion = "v1.4-1-ga60a499"

// ContainerImage describes a Docker image to be transformed by GSC: its
// name and the files in its root filesystem.
type ContainerImage struct {
	Name  string
	Files []ImageFile
}

// ImageFile is one file in a container image.
type ImageFile struct {
	Path string
	Size uint64
}

// TotalBytes sums the image file sizes.
func (img *ContainerImage) TotalBytes() uint64 {
	var n uint64
	for _, f := range img.Files {
		n += f.Size
	}
	return n
}

// excludedPrefixes are the platform-specific directories GSC leaves out of
// the trusted-files list (per the paper's §V-B1: /boot, /dev, /etc/mtab,
// /proc, /sys).
var excludedPrefixes = []string{"/boot/", "/dev/", "/etc/mtab", "/proc/", "/sys/"}

func excluded(path string) bool {
	for _, p := range excludedPrefixes {
		if strings.HasPrefix(path, p) || path == strings.TrimSuffix(p, "/") {
			return true
		}
	}
	return false
}

// ShieldedImage is the output of the GSC build: the original image, the
// completed manifest with the image's files appended to the trusted list,
// and the signer's SIGSTRUCT-style signature over the enclave identity.
type ShieldedImage struct {
	Image     ContainerImage
	Manifest  Manifest
	Signer    ed25519.PublicKey
	Signature []byte
}

// BuildShielded transforms a container image into a shielded image the way
// `gsc build` plus `gsc sign-image` do: append the image's measurable files
// to the manifest's trusted list, then sign the resulting identity with the
// user-provided key.
func BuildShielded(img ContainerImage, manifest *Manifest, signKey ed25519.PrivateKey) (*ShieldedImage, error) {
	if manifest == nil {
		return nil, errors.New("gramine: nil manifest")
	}
	if err := manifest.Validate(); err != nil {
		return nil, err
	}
	if len(signKey) != ed25519.PrivateKeySize {
		return nil, fmt.Errorf("gramine: sign key length %d, want %d", len(signKey), ed25519.PrivateKeySize)
	}
	if img.Name == "" {
		return nil, errors.New("gramine: image name missing")
	}

	out := *manifest
	out.TrustedFiles = append([]TrustedFile(nil), manifest.TrustedFiles...)
	// GSC appends the majority of the root directory to the trusted list
	// (a Gramine-team generality decision the paper calls out as a driver
	// of enclave load time).
	for _, f := range img.Files {
		if excluded(f.Path) {
			continue
		}
		out.TrustedFiles = append(out.TrustedFiles, TrustedFile{URI: "file:" + f.Path, Size: f.Size})
	}
	sort.Slice(out.TrustedFiles, func(i, j int) bool { return out.TrustedFiles[i].URI < out.TrustedFiles[j].URI })

	si := &ShieldedImage{
		Image:    img,
		Manifest: out,
		Signer:   signKey.Public().(ed25519.PublicKey),
	}
	si.Signature = ed25519.Sign(signKey, si.identityDigest())
	return si, nil
}

// identityDigest hashes everything that defines the enclave identity.
func (si *ShieldedImage) identityDigest() []byte {
	h := sha256.New()
	fmt.Fprintf(h, "gsc:%s:image=%s:size=%d:threads=%d:preheat=%v",
		GSCVersion, si.Image.Name, si.Manifest.EnclaveSizeBytes,
		si.Manifest.MaxThreads, si.Manifest.PreheatEnclave)
	if si.Manifest.SwitchlessECalls {
		// Folded only when enabled: a switchless-off image keeps the
		// identity (and sealed data bound to it) it had before the ring
		// existed.
		fmt.Fprintf(h, ":switchless=true")
	}
	for _, f := range si.Manifest.TrustedFiles {
		fmt.Fprintf(h, "%s:%d;", f.URI, f.Size)
	}
	return h.Sum(nil)
}

// Verify checks the image signature against its embedded signer key.
func (si *ShieldedImage) Verify() error {
	if len(si.Signer) != ed25519.PublicKeySize {
		return errors.New("gramine: shielded image has no signer")
	}
	if !ed25519.Verify(si.Signer, si.identityDigest(), si.Signature) {
		return errors.New("gramine: shielded image signature invalid")
	}
	return nil
}

// EnclaveConfig translates the shielded image into the simulator's enclave
// build parameters.
func (si *ShieldedImage) EnclaveConfig() sgx.EnclaveConfig {
	files := make([]sgx.MeasuredFile, 0, len(si.Manifest.TrustedFiles))
	for _, f := range si.Manifest.TrustedFiles {
		files = append(files, sgx.MeasuredFile{Path: f.URI, Size: f.Size})
	}
	return sgx.EnclaveConfig{
		Name:         si.Image.Name,
		SizeBytes:    si.Manifest.EnclaveSizeBytes,
		MaxThreads:   si.Manifest.MaxThreads,
		Preheat:      si.Manifest.PreheatEnclave,
		Switchless:   si.Manifest.SwitchlessECalls,
		TrustedFiles: files,
	}
}
