package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"shield5g/internal/paka"
)

// The WriteCSV methods emit the raw series behind each figure in a
// plot-friendly form (one row per box/point), so the paper's plots can be
// regenerated with any charting tool.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: write CSV header: %w", err)
	}
	if err := cw.WriteAll(rows); err != nil {
		return fmt.Errorf("experiments: write CSV rows: %w", err)
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// WriteCSV emits the Fig. 7 load-time boxes (minutes).
func (r *Fig7Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Load))
	for _, kind := range paka.Kinds() {
		s := r.Load[kind]
		rows = append(rows, []string{
			kind.String(), f(minutes(s.Min)), f(minutes(s.Q1)), f(minutes(s.Median)),
			f(minutes(s.Q3)), f(minutes(s.Max)),
		})
	}
	return writeCSV(w, []string{"module", "min_min", "q1_min", "median_min", "q3_min", "max_min"}, rows)
}

// WriteCSV emits the Fig. 8 sweep (µs).
func (r *Fig8Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Config.Label,
			f(micro(p.Functional.Q1)), f(micro(p.Functional.Median)), f(micro(p.Functional.Q3)),
			f(micro(p.Total.Q1)), f(micro(p.Total.Median)), f(micro(p.Total.Q3)),
		})
	}
	return writeCSV(w, []string{"config", "lf_q1_us", "lf_median_us", "lf_q3_us", "lt_q1_us", "lt_median_us", "lt_q3_us"}, rows)
}

// WriteCSV emits the Fig. 9 latency boxes (µs) for both isolation modes.
func (r *Fig9Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, kind := range paka.Kinds() {
		fn := r.Functional[kind]
		tot := r.Total[kind]
		rows = append(rows,
			[]string{kind.String(), "container", f(micro(fn.Container.Median)), f(micro(tot.Container.Median))},
			[]string{kind.String(), "sgx", f(micro(fn.SGX.Median)), f(micro(tot.SGX.Median))},
		)
	}
	return writeCSV(w, []string{"module", "isolation", "lf_median_us", "lt_median_us"}, rows)
}

// WriteCSV emits the Fig. 10 response series (µs stable, ms initial).
func (r *Fig10Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, kind := range paka.Kinds() {
		p := r.fig9.Response[kind]
		rows = append(rows, []string{
			kind.String(),
			f(micro(p.Container.Median)),
			f(micro(p.SGX.Median)),
			f(float64(r.fig9.InitialSGX[kind]) / float64(time.Millisecond)),
		})
	}
	return writeCSV(w, []string{"module", "rc_median_us", "rs_sgx_median_us", "ri_sgx_ms"}, rows)
}

// WriteCSV emits the scaling sweep.
func (r *ScaleResult) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			strconv.Itoa(p.Replicas), f(p.OfferedLoad), f(p.Utilization),
			f(float64(p.MeanSojourn) / float64(time.Millisecond)),
			f(float64(p.P95Sojourn) / float64(time.Millisecond)),
			f(p.Throughput),
		})
	}
	return writeCSV(w, []string{"replicas", "offered_load", "utilization", "mean_sojourn_ms", "p95_sojourn_ms", "throughput_rps"}, rows)
}
