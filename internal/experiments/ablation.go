package experiments

import (
	"context"
	"io"
	"time"

	"shield5g/internal/metrics"
	"shield5g/internal/paka"
)

// AblationRow is one optimization configuration of the §V-B7 discussion,
// measured on the eUDM module.
type AblationRow struct {
	Name string
	// Load is the modelled deployment time.
	Load time.Duration
	// Initial is the cold first-request response time.
	Initial time.Duration
	// Stable summarises warm response times.
	Stable metrics.Summary
	// EnterPerRequest is the steady-state EENTER count per request.
	EnterPerRequest uint64
	// TCBBytes is the trusted computing base the configuration carries.
	TCBBytes uint64
}

// AblationResult holds the optimization sweep.
type AblationResult struct {
	Rows []AblationRow
}

// Ablation measures the optimizations the paper proposes in §V-B7 against
// the baselines: Gramine's exitless (switchless) calls, an mTCP-style
// user-level network stack inside the enclave, disabling enclave
// preheating, and the plain-container reference. Each row reports the
// latency effect alongside the costs the paper warns about (load time,
// TCB growth, transition counts).
func Ablation(ctx context.Context, cfg Config) (*AblationResult, error) {
	n := cfg.iterations()
	configs := []struct {
		name string
		opts rigOptions
	}{
		{"container", rigOptions{isolation: paka.Container}},
		{"sgx (paper baseline)", rigOptions{isolation: paka.SGX}},
		{"sgx no-preheat", rigOptions{isolation: paka.SGX, disablePreheat: true}},
		{"sgx exitless", rigOptions{isolation: paka.SGX, exitless: true}},
		{"sgx user-level TCP", rigOptions{isolation: paka.SGX, userLevelTCP: true}},
		{"sgx exitless+userTCP", rigOptions{isolation: paka.SGX, exitless: true, userLevelTCP: true}},
	}

	result := &AblationResult{}
	for i, c := range configs {
		r, err := newRig(ctx, paka.EUDM, cfg.Seed+uint64(i)*977, c.opts)
		if err != nil {
			return nil, err
		}
		enterBefore := r.module.Stats().EENTER
		run, err := r.run(ctx, n)
		if err != nil {
			r.stop()
			return nil, err
		}
		enterAfter := r.module.Stats().EENTER
		var perReq uint64
		if n > 0 {
			// Exclude the initial (warm-up) request from the delta.
			perReq = (enterAfter - enterBefore) / uint64(n+1)
		}
		result.Rows = append(result.Rows, AblationRow{
			Name:            c.name,
			Load:            r.module.LoadDuration(),
			Initial:         run.initial,
			Stable:          run.responses.Summarize(),
			EnterPerRequest: perReq,
			TCBBytes:        r.module.TCBBytes(),
		})
		r.stop()
	}
	return result, nil
}

// Render prints the ablation table.
func (r *AblationResult) Render(w io.Writer) {
	fprintf(w, "Optimization ablation on the eUDM P-AKA module (paper §V-B7)\n")
	fprintf(w, "%-22s %10s %12s %14s %10s %10s\n",
		"config", "load", "initial", "stable med(us)", "EENTER/req", "TCB(GB)")
	for _, row := range r.Rows {
		fprintf(w, "%-22s %10s %12s %14.1f %10d %10.2f\n",
			row.Name,
			row.Load.Round(time.Millisecond),
			row.Initial.Round(10*time.Microsecond),
			micro(row.Stable.Median),
			row.EnterPerRequest,
			float64(row.TCBBytes)/float64(1<<30))
	}
	fprintf(w, "(exitless and user-level TCP cut transitions and latency; the costs are\n")
	fprintf(w, " occupied helper cores, a bigger measured TCB, and — for no-preheat — a\n")
	fprintf(w, " cheaper load traded for demand-paging during operation)\n")
}
