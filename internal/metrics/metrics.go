// Package metrics collects latency samples and produces the box-plot style
// summaries (median, quartiles, whiskers, outlier fraction) the paper's
// figures report.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Recorder accumulates duration samples. It is safe for concurrent use.
// The zero value is ready to use; NewRecorder preallocates capacity for
// hot paths that know their sample count up front.
type Recorder struct {
	mu      sync.Mutex
	samples []time.Duration
	// sorted caches an ordered copy of samples for Summarize; nil means
	// stale. Kept separate from samples so callers that consume the raw
	// series (empirical resampling) still see insertion order.
	sorted []time.Duration
}

// NewRecorder returns a Recorder with capacity preallocated for n samples.
func NewRecorder(n int) *Recorder {
	if n < 0 {
		n = 0
	}
	return &Recorder{samples: make([]time.Duration, 0, n)}
}

// Add records one sample.
func (r *Recorder) Add(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.sorted = nil
	r.mu.Unlock()
}

// Merge appends all of other's samples, so per-worker recorders can be
// combined after a parallel run without sharing a lock during it.
func (r *Recorder) Merge(other *Recorder) {
	if other == nil || other == r {
		return
	}
	theirs := other.Samples()
	r.mu.Lock()
	r.samples = append(r.samples, theirs...)
	r.sorted = nil
	r.mu.Unlock()
}

// N reports the number of samples recorded.
func (r *Recorder) N() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Samples returns a copy of the recorded samples in insertion order.
func (r *Recorder) Samples() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Duration(nil), r.samples...)
}

// Reset discards all samples.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.samples = r.samples[:0]
	r.sorted = nil
	r.mu.Unlock()
}

// Summary is a box-plot style description of a sample distribution.
type Summary struct {
	N      int
	Min    time.Duration
	Q1     time.Duration
	Median time.Duration
	Q3     time.Duration
	Max    time.Duration
	Mean   time.Duration
	P95    time.Duration
	P99    time.Duration
	StdDev time.Duration
	// OutlierFrac is the fraction of samples beyond the 1.5×IQR whiskers
	// (the paper reports <5% outliers across its measurements).
	OutlierFrac float64
}

// Summarize computes the summary of the recorded samples. The sorted
// order is cached, so repeated summaries of an unchanged recorder sort
// only once.
func (r *Recorder) Summarize() Summary {
	r.mu.Lock()
	if r.sorted == nil {
		r.sorted = append([]time.Duration(nil), r.samples...)
		sort.Slice(r.sorted, func(i, j int) bool { return r.sorted[i] < r.sorted[j] })
	}
	s := r.sorted
	r.mu.Unlock()
	// s is never mutated after caching; summarizeSorted only reads it.
	return summarizeSorted(s)
}

// Summarize computes a box-plot summary of the given samples.
func Summarize(samples []time.Duration) Summary {
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return summarizeSorted(s)
}

// summarizeSorted computes the summary of an already-sorted sample slice.
func summarizeSorted(s []time.Duration) Summary {
	if len(s) == 0 {
		return Summary{}
	}

	sum := Summary{
		N:      len(s),
		Min:    s[0],
		Q1:     Quantile(s, 0.25),
		Median: Quantile(s, 0.50),
		Q3:     Quantile(s, 0.75),
		Max:    s[len(s)-1],
		P95:    Quantile(s, 0.95),
		P99:    Quantile(s, 0.99),
	}

	var total float64
	for _, v := range s {
		total += float64(v)
	}
	mean := total / float64(len(s))
	sum.Mean = time.Duration(mean)

	var sq float64
	for _, v := range s {
		d := float64(v) - mean
		sq += d * d
	}
	sum.StdDev = time.Duration(math.Sqrt(sq / float64(len(s))))

	iqr := sum.Q3 - sum.Q1
	lo := sum.Q1 - time.Duration(1.5*float64(iqr))
	hi := sum.Q3 + time.Duration(1.5*float64(iqr))
	outliers := 0
	for _, v := range s {
		if v < lo || v > hi {
			outliers++
		}
	}
	sum.OutlierFrac = float64(outliers) / float64(len(s))
	return sum
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of sorted samples using
// linear interpolation between order statistics.
func Quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[hi]-sorted[lo]))
}

// Ratio reports how many times larger a is than b by median, the figure of
// merit the paper's Table II uses for SGX-vs-container overhead.
func Ratio(a, b Summary) float64 {
	if b.Median == 0 {
		return math.Inf(1)
	}
	return float64(a.Median) / float64(b.Median)
}

// String renders the summary compactly for experiment output.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%v q1=%v med=%v q3=%v max=%v mean=%v p95=%v p99=%v outliers=%.1f%%",
		s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean, s.P95, s.P99, s.OutlierFrac*100)
}

// Gauge is a concurrently settable float64 value — a single figure (like
// transitions per request) published alongside a run's latency summaries.
// The zero value reads 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reads the stored figure.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }
