package experiments

import (
	"context"
	"io"
	"time"

	"shield5g/internal/metrics"
	"shield5g/internal/paka"
)

// TEERow is one isolation backend's measurement in the HMEE comparison.
type TEERow struct {
	Isolation paka.Isolation
	// Load is the deployment time (enclave build / VM launch /
	// container start).
	Load time.Duration
	// Stable summarises warm VNF-side response times.
	Stable metrics.Summary
	// Initial is the cold first-request response.
	Initial time.Duration
	// EnterPerRequest counts SGX transitions per request (zero for
	// non-SGX backends).
	EnterPerRequest uint64
	// TCBBytes is the trusted computing base.
	TCBBytes uint64
	// Notes records the qualitative trade-off.
	Notes string
}

// TEECompareResult compares the HMEE implementations the paper discusses:
// process-level SGX enclaves versus VM-level SEV confidential computing
// versus the unprotected container baseline (§IV-C).
type TEECompareResult struct {
	Rows []TEERow
}

// TEECompare measures the eUDM P-AKA module on each backend.
func TEECompare(ctx context.Context, cfg Config) (*TEECompareResult, error) {
	n := cfg.iterations()
	notes := map[paka.Isolation]string{
		paka.Container: "no HW isolation; host admin reads keys",
		paka.SGX:       "smallest TCB; syscall transitions cost latency",
		paka.SEV:       "no refactoring, fast; guest OS joins TCB; ciphertext side channels",
	}
	result := &TEECompareResult{}
	for i, iso := range []paka.Isolation{paka.Container, paka.SGX, paka.SEV} {
		r, err := newRig(ctx, paka.EUDM, cfg.Seed+uint64(i)*389, rigOptions{isolation: iso})
		if err != nil {
			return nil, err
		}
		enterBefore := r.module.Stats().EENTER
		run, err := r.run(ctx, n)
		if err != nil {
			r.stop()
			return nil, err
		}
		var perReq uint64
		if n > 0 {
			perReq = (r.module.Stats().EENTER - enterBefore) / uint64(n+1)
		}
		result.Rows = append(result.Rows, TEERow{
			Isolation:       iso,
			Load:            r.module.LoadDuration(),
			Stable:          run.responses.Summarize(),
			Initial:         run.initial,
			EnterPerRequest: perReq,
			TCBBytes:        r.module.TCBBytes(),
			Notes:           notes[iso],
		})
		r.stop()
	}
	return result, nil
}

// Render prints the comparison table.
func (r *TEECompareResult) Render(w io.Writer) {
	fprintf(w, "HMEE implementation comparison on the eUDM P-AKA module (paper §IV-C)\n")
	fprintf(w, "%-10s %10s %14s %12s %10s %9s  %s\n",
		"backend", "load", "stable med(us)", "initial", "EENTER/req", "TCB(GB)", "trade-off")
	for _, row := range r.Rows {
		fprintf(w, "%-10s %10s %14.1f %12s %10d %9.2f  %s\n",
			row.Isolation,
			row.Load.Round(time.Millisecond),
			micro(row.Stable.Median),
			row.Initial.Round(10*time.Microsecond),
			row.EnterPerRequest,
			float64(row.TCBBytes)/float64(1<<30),
			row.Notes)
	}
	fprintf(w, "(the paper's position: secure VMs avoid SGX's refactoring and latency costs\n")
	fprintf(w, " but their large TCB can make them unsuitable for the most critical functions)\n")
}
