package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"shield5g/internal/sbi"
)

// TestStormLimiterProtectsEmergencyClass is the acceptance check of the
// signaling-storm sweep: at 10x overload the limiter must at least double
// emergency-class goodput and lower its p99 versus the limiter-off
// baseline, at factor 1 it must cost under 5% median setup, and the
// limiter-on overload point must replay deterministically.
func TestStormLimiterProtectsEmergencyClass(t *testing.T) {
	cfg := Config{Seed: 7, Iterations: 240}
	r, err := Storm(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Storm: %v", err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(r.Points))
	}

	// Limiter off at overload: nothing sheds, nothing drops, nothing
	// throttles — the machinery is deployed but disarmed.
	off := r.Points[0]
	if off.AdmissionDrops != 0 || off.MeterSheds != 0 || off.Throttled != 0 {
		t.Errorf("limiter-off point not inert: drops=%d sheds=%d throttled=%d",
			off.AdmissionDrops, off.MeterSheds, off.Throttled)
	}

	// Limiter on at overload: every mechanism engages.
	on := r.Points[1]
	if on.AdmissionDrops == 0 {
		t.Error("limiter-on point saw no admission drops (buckets never engaged)")
	}
	if on.Throttled == 0 {
		t.Error("limiter-on point saw no client throttling (OCI never honoured)")
	}
	em := sbi.PriorityEmergency
	if on.Class[em].Shed != 0 {
		t.Errorf("emergency class shed %d registrations; it must never shed", on.Class[em].Shed)
	}

	if r.EmergencyGoodputRatio < 2 {
		t.Errorf("emergency goodput ratio = %.2f, want >= 2", r.EmergencyGoodputRatio)
	}
	if !r.EmergencyP99Improved {
		t.Error("limiter did not improve emergency p99 at overload")
	}
	if r.OverheadPct >= 5 {
		t.Errorf("limiter overhead at factor 1 = %.2f%%, want < 5%%", r.OverheadPct)
	}
	if !r.Deterministic {
		t.Error("same-seed replay diverged: determinism contract broken")
	}

	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Signaling-storm survival") {
		t.Fatal("render missing header")
	}
	buf.Reset()
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if !strings.Contains(buf.String(), "goodput_per_sec") {
		t.Fatal("CSV missing header")
	}
}
