// Package ue simulates User Equipment: a USIM holding the subscriber
// credentials (K, OPc, SQN_MS), the UE-side 5G-AKA computations (AUTN
// verification, RES*, the key hierarchy down to the NAS keys), SUPI
// concealment, and the NAS registration state machine. A COTS profile
// reproduces the behaviours the paper observed with the OnePlus 8 during
// the over-the-air test.
package ue

import (
	"context"
	"crypto/hmac"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"shield5g/internal/costmodel"
	"shield5g/internal/crypto/kdf"
	"shield5g/internal/crypto/milenage"
	"shield5g/internal/crypto/suci"
	"shield5g/internal/nas"
)

// UE-side AKA errors.
var (
	// ErrMACFailure reports an AUTN whose MAC-A does not verify: the
	// network failed to authenticate itself.
	ErrMACFailure = errors.New("ue: AUTN MAC failure")
	// ErrNoNetwork reports that no supported PLMN was detected.
	ErrNoNetwork = errors.New("ue: no supported network detected")
	// ErrRejected reports an AuthenticationReject from the network.
	ErrRejected = errors.New("ue: authentication rejected by network")
)

// usimCycles is the modelled USIM computation cost per AKA run.
const usimCycles = 60_000

// COTSProfile reproduces commercial-device quirks the paper reports from
// its OTA test (§V-B6): the OnePlus 8 only detects the test PLMN 00101,
// and needs a specific OxygenOS build for an end-to-end 5G SA connection.
type COTSProfile struct {
	Model             string
	OSVersion         string
	RequiredOSVersion string
	// DetectablePLMNs lists PLMNs the device will attach to; empty means
	// any PLMN is acceptable (simulator behaviour).
	DetectablePLMNs []string
}

// OnePlus8 returns the paper's OTA test device profile (Table IV).
func OnePlus8() COTSProfile {
	return COTSProfile{
		Model:             "OnePlus 8",
		OSVersion:         "Oxygen 11.0.11.11.IN21DA",
		RequiredOSVersion: "Oxygen 11.0.11.11.IN21DA",
		DetectablePLMNs:   []string{"00101"},
	}
}

// Config provisions a UE.
type Config struct {
	SUPI suci.SUPI
	// K and OPc are the USIM credentials.
	K, OPc []byte
	// HomeNetworkPublicKey and HomeNetworkKeyID drive SUCI concealment.
	HomeNetworkPublicKey []byte
	HomeNetworkKeyID     byte
	// RoutingIndicator for the SUCI (default "0000").
	RoutingIndicator string
	// Env charges UE-side compute; required.
	Env *costmodel.Env
	// Profile optionally applies COTS-device behaviour.
	Profile *COTSProfile
	// Entropy overrides randomness (tests); nil selects crypto/rand.
	Entropy io.Reader
	// SQN is the initial USIM sequence number (6 bytes; zero default).
	SQN []byte
	// UseNullScheme sends the SUPI with the null protection scheme (no
	// concealment) — permitted for test networks, and useful to
	// demonstrate the privacy difference.
	UseNullScheme bool
}

// UE is one simulated device.
type UE struct {
	supi suci.SUPI
	// supiStr caches supi.String(): K_AMF derivation needs the IMSI form
	// on every AKA run.
	supiStr    string
	mil        *milenage.Cipher
	opc        []byte
	hnPub      []byte
	hnKeyID    byte
	ri         string
	env        *costmodel.Env
	profile    *COTSProfile
	entropy    io.Reader
	nullScheme bool

	sqnMS [6]byte

	// Per-registration state. The key material lives in in-struct arrays
	// so a registration retains it without per-run heap allocations.
	snn      string
	rand     [16]byte
	resStar  [kdf.KeyLen128]byte
	kamf     [kdf.KeyLen256]byte
	sec      *nas.SecurityContext
	guti     *nas.GUTI
	lastAddr string

	// emergency marks the device as performing emergency registrations
	// (TS 24.501 registration type 0x04); the AMF's admission controller
	// never sheds this class.
	emergency bool
}

// SetEmergency marks or clears the device's emergency-registration mode.
func (u *UE) SetEmergency(v bool) { u.emergency = v }

// New provisions a UE.
func New(cfg Config) (*UE, error) {
	if err := cfg.SUPI.Validate(); err != nil {
		return nil, err
	}
	if cfg.Env == nil {
		return nil, errors.New("ue: Config.Env is required")
	}
	mil, err := milenage.New(cfg.K, cfg.OPc)
	if err != nil {
		return nil, fmt.Errorf("ue: USIM credentials: %w", err)
	}
	entropy := cfg.Entropy
	if entropy == nil {
		entropy = rand.Reader
	}
	ri := cfg.RoutingIndicator
	if ri == "" {
		ri = "0000"
	}
	u := &UE{
		supi:       cfg.SUPI,
		supiStr:    cfg.SUPI.String(),
		mil:        mil,
		opc:        append([]byte(nil), cfg.OPc...),
		hnPub:      append([]byte(nil), cfg.HomeNetworkPublicKey...),
		hnKeyID:    cfg.HomeNetworkKeyID,
		ri:         ri,
		env:        cfg.Env,
		profile:    cfg.Profile,
		entropy:    entropy,
		nullScheme: cfg.UseNullScheme,
	}
	if len(cfg.SQN) == 6 {
		copy(u.sqnMS[:], cfg.SQN)
	}
	return u, nil
}

// SUPI returns the device's permanent identity.
func (u *UE) SUPI() suci.SUPI { return u.supi }

// SUPIString returns the cached IMSI form of the permanent identity —
// the shard-routing key of a replicated core. Reusing the cached string
// keeps SUPI-affinity routing off the allocation budget.
func (u *UE) SUPIString() string { return u.supiStr }

// GUTI returns the temporary identity assigned at registration, if any.
func (u *UE) GUTI() (nas.GUTI, bool) {
	if u.guti == nil {
		return nas.GUTI{}, false
	}
	return *u.guti, true
}

// UEAddress returns the PDU session address assigned by the core, if any.
func (u *UE) UEAddress() string { return u.lastAddr }

// DetectNetwork applies the COTS profile's PLMN scan: the paper observed
// that the OnePlus 8 would not detect the OAI gNB under custom mobile
// country or network codes, only the test PLMN 00101.
func (u *UE) DetectNetwork(broadcastPLMN string) error {
	if u.profile == nil || len(u.profile.DetectablePLMNs) == 0 {
		return nil
	}
	for _, p := range u.profile.DetectablePLMNs {
		if p == broadcastPLMN {
			if u.profile.RequiredOSVersion != "" && u.profile.OSVersion != u.profile.RequiredOSVersion {
				return fmt.Errorf("%w: %s on %q requires OS %q for 5G SA",
					ErrNoNetwork, u.profile.Model, u.profile.OSVersion, u.profile.RequiredOSVersion)
			}
			return nil
		}
	}
	return fmt.Errorf("%w: %s does not detect PLMN %s (supported: %v)",
		ErrNoNetwork, u.profile.Model, broadcastPLMN, u.profile.DetectablePLMNs)
}

// BuildRegistrationRequest conceals the SUPI and produces the initial NAS
// registration request for the given serving network.
func (u *UE) BuildRegistrationRequest(ctx context.Context, snn string) ([]byte, error) {
	u.env.Charge(ctx, usimCycles) // ECIES concealment + NAS encoding
	sc, err := u.concealIdentity()
	if err != nil {
		return nil, err
	}
	u.snn = snn
	u.sec = nil
	u.guti = nil
	regType := nas.RegistrationInitial
	if u.emergency {
		regType = nas.RegistrationEmergency
	}
	return nas.Encode(&nas.RegistrationRequest{
		RegistrationType: regType,
		NgKSI:            0,
		Identity:         nas.MobileIdentity{SUCI: sc},
		Capabilities:     []byte{nas.AlgNEA2, nas.AlgNIA2},
	})
}

// concealIdentity produces the SUCI under the provisioned protection
// scheme.
func (u *UE) concealIdentity() (*suci.SUCI, error) {
	if u.nullScheme {
		sc, err := suci.ConcealNull(u.supi, u.ri)
		if err != nil {
			return nil, fmt.Errorf("ue: null-scheme SUCI: %w", err)
		}
		return sc, nil
	}
	sc, err := suci.Conceal(u.entropy, u.supi, u.ri, u.hnPub, u.hnKeyID)
	if err != nil {
		return nil, fmt.Errorf("ue: conceal SUPI: %w", err)
	}
	return sc, nil
}

// BuildReRegistrationRequest produces a mobility registration request
// using the 5G-GUTI assigned at the previous registration: the permanent
// identity is never re-exposed over the air.
func (u *UE) BuildReRegistrationRequest(ctx context.Context, snn string) ([]byte, error) {
	if u.guti == nil {
		return nil, errors.New("ue: no stored GUTI; perform an initial registration first")
	}
	u.env.Charge(ctx, usimCycles/4)
	g := *u.guti
	u.snn = snn
	u.sec = nil
	return nas.Encode(&nas.RegistrationRequest{
		RegistrationType: nas.RegistrationMobility,
		NgKSI:            0,
		Identity:         nas.MobileIdentity{GUTI: &g},
		Capabilities:     []byte{nas.AlgNEA2, nas.AlgNIA2},
	})
}

// HandleDownlinkNAS advances the UE state machine with one downlink NAS
// PDU. It returns the uplink response (nil when none) and done=true once
// registration has completed.
func (u *UE) HandleDownlinkNAS(ctx context.Context, pdu []byte) (uplink []byte, done bool, err error) {
	// Post-AKA messages are security protected; branch on the header
	// instead of decoding speculatively so the protected path does not
	// pay Decode's error construction.
	var msg nas.Message
	var derr error
	if nas.IsProtected(pdu) {
		if u.sec == nil {
			return nil, false, fmt.Errorf("ue: protected downlink NAS before security activation")
		}
		msg, derr = u.sec.Unprotect(pdu, false)
		if derr != nil {
			return nil, false, fmt.Errorf("ue: unprotect downlink NAS: %w", derr)
		}
	} else {
		msg, derr = nas.Decode(pdu)
		if derr != nil {
			return nil, false, fmt.Errorf("ue: undecodable downlink NAS: %w", derr)
		}
	}

	switch m := msg.(type) {
	case *nas.IdentityRequest:
		return u.handleIdentityRequest(ctx, m)
	case *nas.AuthenticationRequest:
		return u.handleAuthRequest(ctx, m)
	case *nas.AuthenticationReject:
		return nil, false, ErrRejected
	case *nas.SecurityModeCommand:
		u.env.Charge(ctx, usimCycles/4)
		up, err := u.sec.Protect(&nas.SecurityModeComplete{}, true)
		return up, false, err
	case *nas.RegistrationAccept:
		g := m.GUTI
		u.guti = &g
		up, err := u.sec.Protect(&nas.RegistrationComplete{}, true)
		return up, true, err
	case *nas.PDUSessionEstablishmentAccept:
		u.lastAddr = m.UEAddress
		return nil, true, nil
	default:
		return nil, false, fmt.Errorf("ue: unexpected downlink %s", msg.Type())
	}
}

// handleIdentityRequest answers the network's identity procedure with a
// freshly concealed SUCI (the permanent identity still never travels in
// clear text).
func (u *UE) handleIdentityRequest(ctx context.Context, m *nas.IdentityRequest) ([]byte, bool, error) {
	if m.IdentityType != nas.IdentityTypeSUCI {
		return nil, false, fmt.Errorf("ue: unsupported identity type %d requested", m.IdentityType)
	}
	u.env.Charge(ctx, usimCycles)
	sc, err := u.concealIdentity()
	if err != nil {
		return nil, false, err
	}
	up, err := nas.Encode(&nas.IdentityResponse{Identity: nas.MobileIdentity{SUCI: sc}})
	return up, false, err
}

// handleAuthRequest runs the USIM's AUTN verification and RES*/key
// derivation (TS 33.501 §6.1.3.2), including the resynchronisation path.
func (u *UE) handleAuthRequest(ctx context.Context, m *nas.AuthenticationRequest) ([]byte, bool, error) {
	u.env.Charge(ctx, usimCycles)

	res, ck, ik, ak, err := u.mil.F2345(m.RAND[:])
	if err != nil {
		return nil, false, fmt.Errorf("ue: f2345: %w", err)
	}
	sqnAK, amfField, macA, err := kdf.SplitAUTN(m.AUTN[:])
	if err != nil {
		return nil, false, fmt.Errorf("ue: AUTN: %w", err)
	}
	if len(ak) != 6 {
		return nil, false, fmt.Errorf("ue: SQN recovery: AK length %d, want 6", len(ak))
	}
	// SQN_HE = (SQN XOR AK) XOR AK, on the stack: it only feeds the local
	// MAC check and SQN_MS update.
	var sqnHE [6]byte
	for i := range sqnHE {
		sqnHE[i] = sqnAK[i] ^ ak[i]
	}
	wantMAC, err := u.mil.F1(m.RAND[:], sqnHE[:], amfField)
	if err != nil {
		return nil, false, fmt.Errorf("ue: f1: %w", err)
	}
	if !hmac.Equal(macA, wantMAC) {
		up, err := nas.Encode(&nas.AuthenticationFailure{Cause: nas.CauseMACFailure})
		return up, false, errors.Join(ErrMACFailure, err)
	}

	// Freshness: the network SQN must be strictly ahead of the USIM's.
	if !sqnAhead(sqnHE[:], u.sqnMS[:]) {
		auts, err := u.buildAUTS(m.RAND[:])
		if err != nil {
			return nil, false, err
		}
		up, err := nas.Encode(&nas.AuthenticationFailure{Cause: nas.CauseSyncFailure, AUTS: auts})
		return up, false, err
	}
	copy(u.sqnMS[:], sqnHE[:])

	// Derive the full hierarchy on the UE side. K_AUSF and K_SEAF are
	// transient links in the chain here — they live on the stack; only
	// RES* and K_AMF are retained.
	if err := kdf.ResStarInto(u.resStar[:], ck, ik, u.snn, m.RAND[:], res); err != nil {
		return nil, false, fmt.Errorf("ue: RES*: %w", err)
	}
	var kausf, kseaf [kdf.KeyLen256]byte
	if err := kdf.KAUSFInto(kausf[:], ck, ik, u.snn, sqnAK); err != nil {
		return nil, false, fmt.Errorf("ue: K_AUSF: %w", err)
	}
	if err := kdf.KSEAFInto(kseaf[:], kausf[:], u.snn); err != nil {
		return nil, false, fmt.Errorf("ue: K_SEAF: %w", err)
	}
	if err := kdf.KAMFInto(u.kamf[:], kseaf[:], u.supiStr, m.ABBA); err != nil {
		return nil, false, fmt.Errorf("ue: K_AMF: %w", err)
	}
	sec, err := nas.NewSecurityContext(u.kamf[:])
	if err != nil {
		return nil, false, fmt.Errorf("ue: NAS security: %w", err)
	}
	u.rand = m.RAND
	u.sec = sec

	resp := &nas.AuthenticationResponse{}
	resp.ResStar = u.resStar
	up, err := nas.Encode(resp)
	return up, false, err
}

// buildAUTS assembles the resynchronisation token (TS 33.102 §6.3.3).
func (u *UE) buildAUTS(randBytes []byte) ([]byte, error) {
	akStar, err := u.mil.F5Star(randBytes)
	if err != nil {
		return nil, fmt.Errorf("ue: f5*: %w", err)
	}
	concealed, err := kdf.XorSQNAK(u.sqnMS[:], akStar)
	if err != nil {
		return nil, fmt.Errorf("ue: AUTS: %w", err)
	}
	macS, err := u.mil.F1Star(randBytes, u.sqnMS[:], []byte{0x00, 0x00})
	if err != nil {
		return nil, fmt.Errorf("ue: f1*: %w", err)
	}
	return append(append([]byte{}, concealed...), macS...), nil
}

// BuildPDUSessionRequest produces a protected PDU session establishment
// request after registration.
func (u *UE) BuildPDUSessionRequest(ctx context.Context, sessionID byte, dnn string) ([]byte, error) {
	if u.sec == nil {
		return nil, errors.New("ue: not registered")
	}
	u.env.Charge(ctx, usimCycles/4)
	return u.sec.Protect(&nas.PDUSessionEstablishmentRequest{SessionID: sessionID, DNN: dnn}, true)
}

// BuildDeregistrationRequest produces a protected detach request.
func (u *UE) BuildDeregistrationRequest(ctx context.Context) ([]byte, error) {
	if u.sec == nil {
		return nil, errors.New("ue: not registered")
	}
	u.env.Charge(ctx, usimCycles/4)
	return u.sec.Protect(&nas.DeregistrationRequest{NgKSI: 0}, true)
}

// SetSQN overrides the USIM sequence number (tests and resync scenarios).
func (u *UE) SetSQN(sqn []byte) error {
	if len(sqn) != 6 {
		return fmt.Errorf("ue: SQN length %d, want 6", len(sqn))
	}
	copy(u.sqnMS[:], sqn)
	return nil
}

// SQN reports the USIM sequence number.
func (u *UE) SQN() []byte { return append([]byte(nil), u.sqnMS[:]...) }

// sqnAhead reports whether a > b as 48-bit big-endian counters.
func sqnAhead(a, b []byte) bool {
	return sqnValue(a) > sqnValue(b)
}

func sqnValue(sqn []byte) uint64 {
	var buf [8]byte
	copy(buf[2:], sqn)
	return binary.BigEndian.Uint64(buf[:])
}
