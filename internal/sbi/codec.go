package sbi

import (
	"bytes"
	"encoding/json"
	"sync"
)

// Pooled JSON codecs for SBI bodies. Every registration crosses the SBI
// layer many times; json.Marshal allocates a fresh output copy per call
// and json.Unmarshal a fresh decode state, so the body plumbing dominated
// the hot path's allocation profile. MarshalBody encodes through a pooled
// json.Encoder into a pooled buffer, UnmarshalBody decodes through a
// pooled json.Decoder over a resettable reader, and ReleaseBody donates a
// spent body's backing array back to the encode pool — so a keep-alive
// session reuses the same few buffers for its whole lifetime.
//
// Ownership contract: a []byte returned by MarshalBody (and, by the
// HandlerFunc contract, any handler-returned body) is owned by exactly
// one party at a time. Whoever consumes it last calls ReleaseBody; after
// that the bytes must not be touched. The encoded bytes are identical to
// json.Marshal's output (the Encoder's trailing newline is trimmed), so
// the modelled per-byte TLS/HTTP costs are unchanged.

// sliceWriter is an io.Writer appending to a reusable byte slice.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

type encCodec struct {
	w   sliceWriter
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	c := &encCodec{}
	c.enc = json.NewEncoder(&c.w)
	return c
}}

// bufPool recycles body backing arrays. Bodies here are small (an AV
// response is ~300 bytes of JSON); one size class is enough.
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

func getBuf() []byte {
	bp := bufPool.Get().(*[]byte)
	b := (*bp)[:0]
	*bp = nil
	boxPool.Put(bp)
	return b
}

// boxPool recycles the *[]byte boxes themselves so getBuf/ReleaseBody
// don't allocate a fresh box per donation.
var boxPool = sync.Pool{New: func() any { return new([]byte) }}

// MarshalBody encodes v exactly as json.Marshal does, into a pooled
// buffer. The returned slice is owned by the caller; pass it to
// ReleaseBody when done to recycle the backing array.
//
//shieldlint:hotpath
func MarshalBody(v any) ([]byte, error) {
	c := encPool.Get().(*encCodec)
	c.w.b = getBuf()
	if err := c.enc.Encode(v); err != nil {
		ReleaseBody(c.w.b)
		c.w.b = nil
		encPool.Put(c)
		return nil, err
	}
	out := c.w.b
	c.w.b = nil
	encPool.Put(c)
	// json.Encoder terminates every value with '\n'; trim it so the body
	// bytes (and the per-byte transport costs) match json.Marshal.
	if n := len(out); n > 0 && out[n-1] == '\n' {
		out = out[:n-1]
	}
	return out, nil
}

// maxPooledBodyCap bounds the backing arrays ReleaseBody donates back to
// bufPool. Response reads can hand in buffers up to the 1 MiB transport
// limit; pooling those would pin megabytes to serve ~300-byte encodes, so
// oversized arrays are left to the GC instead.
const maxPooledBodyCap = 4096

// ReleaseBody donates b's backing array to the encode pool. The caller
// must own b exclusively and must not touch it afterwards. nil,
// zero-capacity and oversized slices are ignored.
func ReleaseBody(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBodyCap {
		return
	}
	bp := boxPool.Get().(*[]byte)
	*bp = b[:0]
	bufPool.Put(bp)
}

type decCodec struct {
	rd  bytes.Reader
	dec *json.Decoder
}

var decPool = sync.Pool{New: func() any {
	c := &decCodec{}
	c.dec = json.NewDecoder(&c.rd)
	return c
}}

// UnmarshalBody decodes data into v like json.Unmarshal, through a pooled
// json.Decoder. Decoder.Decode reads one value and, unlike json.Unmarshal,
// tolerates trailing input, leaving it in the decoder's buffer — where it
// would be served to the NEXT body decoded through the pooled codec. So a
// codec is re-pooled only when the decode consumed data exactly; a decode
// error or leftover input discards the codec, and trailing bytes are
// re-judged by json.Unmarshal so callers see its canonical semantics
// (trailing whitespace accepted, anything else a SyntaxError).
//
//shieldlint:hotpath
func UnmarshalBody(data []byte, v any) error {
	if len(data) == 0 {
		// Match json.Unmarshal's canonical empty-input error; an empty
		// body never occurs on the steady-state registration path.
		//shieldlint:ignore hotalloc cold error-canonicalization fallback
		return json.Unmarshal(data, v)
	}
	c := decPool.Get().(*decCodec)
	c.rd.Reset(data)
	// The codec enters the pool only with its buffer fully scanned, so the
	// InputOffset delta across Decode is exactly the bytes of data this
	// decode consumed.
	start := c.dec.InputOffset()
	if err := c.dec.Decode(v); err != nil {
		return err
	}
	if consumed := c.dec.InputOffset() - start; consumed != int64(len(data)) {
		// Trailing input: the tail is sitting in the pooled decoder's
		// buffer, so the codec is poisoned — drop it. json.Unmarshal
		// validates before decoding, so it returns the canonical
		// trailing-data SyntaxError without touching v, or re-decodes the
		// identical value if the tail was only whitespace.
		//shieldlint:ignore hotalloc cold trailing-data fallback
		return json.Unmarshal(data, v)
	}
	// Drop the data reference so the pooled codec does not pin the body.
	c.rd.Reset(nil)
	decPool.Put(c)
	return nil
}
