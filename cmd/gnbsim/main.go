// Command gnbsim drives mass UE registrations against a freshly deployed
// slice, the way the paper uses the gNBSIM RAN entity for its large-scale
// measurements.
//
// Usage:
//
//	gnbsim [-n 100] [-isolation sgx|container|monolithic] [-seed N]
package main

import (
	"context"
	"crypto/rand"
	"flag"
	"fmt"
	"os"
	"time"

	"shield5g"
)

func main() {
	os.Exit(run())
}

func run() int {
	n := flag.Int("n", 100, "number of UEs to register")
	isolation := flag.String("isolation", "sgx", "AKA isolation: monolithic, container or sgx")
	seed := flag.Uint64("seed", 1, "jitter seed")
	flag.Parse()

	iso, err := parseIsolation(*isolation)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gnbsim: %v\n", err)
		return 2
	}

	ctx := context.Background()
	start := time.Now()
	tb, err := shield5g.NewTestbed(ctx, shield5g.SliceConfig{Isolation: iso, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gnbsim: deploy: %v\n", err)
		return 1
	}
	defer tb.Close()
	fmt.Printf("slice deployed (%s isolation) in %v wall time\n", iso, time.Since(start).Round(time.Millisecond))
	if iso == shield5g.SGX {
		for kind, m := range tb.Slice.Modules {
			fmt.Printf("  %s enclave load: %v (virtual)\n", kind, m.LoadDuration().Round(time.Millisecond))
		}
	}

	ok, failed := 0, 0
	setups := make([]time.Duration, 0, *n)
	for i := 0; i < *n; i++ {
		k := make([]byte, 16)
		if _, err := rand.Read(k); err != nil {
			fmt.Fprintf(os.Stderr, "gnbsim: entropy: %v\n", err)
			return 1
		}
		sub, err := tb.AddSubscriber(ctx, k, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gnbsim: provision UE %d: %v\n", i, err)
			return 1
		}
		sess, err := tb.Register(ctx, sub)
		if err != nil {
			failed++
			continue
		}
		ok++
		setups = append(setups, sess.SetupTime)
	}

	var sum time.Duration
	for _, d := range setups {
		sum += d
	}
	fmt.Printf("registered %d/%d UEs (%d failed)\n", ok, *n, failed)
	if len(setups) > 0 {
		fmt.Printf("mean session setup: %v (virtual)\n", (sum / time.Duration(len(setups))).Round(time.Microsecond))
	}
	if failed > 0 {
		return 1
	}
	return 0
}

func parseIsolation(s string) (shield5g.Isolation, error) {
	switch s {
	case "monolithic":
		return shield5g.Monolithic, nil
	case "container":
		return shield5g.Container, nil
	case "sgx":
		return shield5g.SGX, nil
	default:
		return 0, fmt.Errorf("unknown isolation %q", s)
	}
}
