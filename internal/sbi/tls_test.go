package sbi

import (
	"context"
	"crypto/tls"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func testPKI(t *testing.T) *PKI {
	t.Helper()
	pki, err := NewPKI("test-operator", time.Hour)
	if err != nil {
		t.Fatalf("NewPKI: %v", err)
	}
	return pki
}

// startMTLSServer exposes an echo SBI server over mutual TLS.
func startMTLSServer(t *testing.T, pki *PKI) *httptest.Server {
	t.Helper()
	srv := NewServer("udm", nil)
	srv.Handle("/echo", JSONHandler(func(_ context.Context, req *struct {
		V string `json:"v"`
	}) (*struct {
		V string `json:"v"`
	}, error) {
		return &struct {
			V string `json:"v"`
		}{V: req.V}, nil
	}))

	ts := httptest.NewUnstartedServer(srv)
	cfg, err := pki.ServerTLS("udm", []string{"127.0.0.1"})
	if err != nil {
		t.Fatalf("ServerTLS: %v", err)
	}
	ts.TLS = cfg
	ts.StartTLS()
	t.Cleanup(ts.Close)
	return ts
}

func TestMutualTLSRoundTrip(t *testing.T) {
	pki := testPKI(t)
	ts := startMTLSServer(t, pki)

	clientCfg, err := pki.ClientTLS("ausf")
	if err != nil {
		t.Fatalf("ClientTLS: %v", err)
	}
	hc := &http.Client{Transport: &http.Transport{TLSClientConfig: clientCfg}}
	c := NewHTTPClient(hc)
	c.SetBase("udm", ts.URL)

	var resp struct {
		V string `json:"v"`
	}
	if err := c.Post(context.Background(), "udm", "/echo", &struct {
		V string `json:"v"`
	}{V: "mtls"}, &resp); err != nil {
		t.Fatalf("Post over mTLS: %v", err)
	}
	if resp.V != "mtls" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestMutualTLSRejectsAnonymousClient(t *testing.T) {
	pki := testPKI(t)
	ts := startMTLSServer(t, pki)

	// A client that trusts the CA but presents no certificate must be
	// refused by the mutual-auth requirement (TS 33.210).
	anon := &http.Client{Transport: &http.Transport{TLSClientConfig: &tls.Config{
		MinVersion: tls.VersionTLS13,
		RootCAs:    pki.pool,
	}}}
	c := NewHTTPClient(anon)
	c.SetBase("udm", ts.URL)
	if err := c.Post(context.Background(), "udm", "/echo", &struct{}{}, nil); err == nil {
		t.Fatal("anonymous client accepted")
	}
}

func TestMutualTLSRejectsForeignCA(t *testing.T) {
	pki := testPKI(t)
	other := testPKI(t)
	ts := startMTLSServer(t, pki)

	// A certificate from a different operator's CA must not verify.
	foreignCfg, err := other.ClientTLS("evil")
	if err != nil {
		t.Fatalf("ClientTLS: %v", err)
	}
	foreignCfg.RootCAs = pki.pool // trusts the right server, wrong identity
	hc := &http.Client{Transport: &http.Transport{TLSClientConfig: foreignCfg}}
	c := NewHTTPClient(hc)
	c.SetBase("udm", ts.URL)
	if err := c.Post(context.Background(), "udm", "/echo", &struct{}{}, nil); err == nil {
		t.Fatal("foreign-CA client accepted")
	}
}

func TestNewPKIDefaults(t *testing.T) {
	pki, err := NewPKI("op", 0)
	if err != nil {
		t.Fatalf("NewPKI: %v", err)
	}
	if pki.caCert.NotAfter.Before(time.Now().Add(12 * time.Hour)) {
		t.Fatal("default lifetime too short")
	}
	if !pki.caCert.IsCA {
		t.Fatal("CA cert not marked CA")
	}
}
