package gramine

import (
	"context"
	"testing"

	"shield5g/internal/hmee/sgx"
	"shield5g/internal/simclock"
)

func TestManifestExitlessNeedsExtraThread(t *testing.T) {
	m := DefaultManifest("/app/bin")
	m.Exitless = true
	if err := m.Validate(); err == nil {
		t.Fatal("exitless with 4 threads accepted")
	}
	m.MaxThreads = 5
	if err := m.Validate(); err != nil {
		t.Fatalf("exitless with 5 threads rejected: %v", err)
	}
}

func TestUserTCPSyscallProfileSmaller(t *testing.T) {
	if UserTCPSyscallProfile().Total() >= DefaultSyscallProfile().Total()/3 {
		t.Fatal("user TCP profile not substantially smaller")
	}
}

func launchWith(t *testing.T, manifest *Manifest, opts ...LaunchOption) *Instance {
	t.Helper()
	p, err := sgx.NewPlatform(sgx.PlatformConfig{Seed: 9})
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	si, err := BuildShielded(testImage(), manifest, testSignKey(t))
	if err != nil {
		t.Fatalf("BuildShielded: %v", err)
	}
	inst, err := Launch(context.Background(), p, si, opts...)
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	t.Cleanup(inst.Shutdown)
	return inst
}

func TestExitlessInstanceServesWithoutTransitions(t *testing.T) {
	m := DefaultManifest("/app/eudm-aka")
	m.Exitless = true
	m.MaxThreads = 5
	inst := launchWith(t, m)
	if !inst.Exitless() {
		t.Fatal("instance not exitless")
	}

	// Warm up, then measure one request's transition delta.
	if _, err := inst.ServeRequest(context.Background(), 40, 80, func(*sgx.Thread) error { return nil }); err != nil {
		t.Fatalf("warm ServeRequest: %v", err)
	}
	before := inst.Stats()
	if _, err := inst.ServeRequest(context.Background(), 40, 80, func(*sgx.Thread) error { return nil }); err != nil {
		t.Fatalf("ServeRequest: %v", err)
	}
	d := inst.Stats().Sub(before)
	if d.EENTER != 0 || d.EEXIT != 0 {
		t.Fatalf("exitless request transitions = %d/%d", d.EENTER, d.EEXIT)
	}
	if d.OCALLs < 80 {
		t.Fatalf("exitless OCALLs = %d, want ~90", d.OCALLs)
	}
}

func TestWithSyscallProfileOverride(t *testing.T) {
	inst := launchWith(t, DefaultManifest("/app/eudm-aka"), WithSyscallProfile(UserTCPSyscallProfile()))
	if _, err := inst.ServeRequest(context.Background(), 40, 80, func(*sgx.Thread) error { return nil }); err != nil {
		t.Fatalf("warm ServeRequest: %v", err)
	}
	before := inst.Stats()
	var acct simclock.Account
	if _, err := inst.ServeRequest(simclock.WithAccount(context.Background(), &acct), 40, 80,
		func(*sgx.Thread) error { return nil }); err != nil {
		t.Fatalf("ServeRequest: %v", err)
	}
	d := inst.Stats().Sub(before)
	if d.OCALLs > uint64(UserTCPSyscallProfile().Total()+4) {
		t.Fatalf("OCALLs = %d, want <= %d", d.OCALLs, UserTCPSyscallProfile().Total()+4)
	}
}

func TestTCBBytesCountsTrustedFiles(t *testing.T) {
	inst := launchWith(t, DefaultManifest("/app/eudm-aka"))
	tcb := inst.TCBBytes()
	// The test image has 2.5 GB of measurable files.
	if tcb < 2_000_000_000 || tcb > 3_000_000_000 {
		t.Fatalf("TCBBytes = %d", tcb)
	}
}

func BenchmarkServeRequest(b *testing.B) {
	p, err := sgx.NewPlatform(sgx.PlatformConfig{Seed: 9})
	if err != nil {
		b.Fatalf("NewPlatform: %v", err)
	}
	priv := testSignKey(b)
	si, err := BuildShielded(ContainerImage{
		Name:  "bench:latest",
		Files: []ImageFile{{Path: "/app/bin", Size: 1_000_000}},
	}, DefaultManifest("/app/bin"), priv)
	if err != nil {
		b.Fatalf("BuildShielded: %v", err)
	}
	inst, err := Launch(context.Background(), p, si)
	if err != nil {
		b.Fatalf("Launch: %v", err)
	}
	defer inst.Shutdown()
	if _, err := inst.ServeRequest(context.Background(), 40, 80, func(*sgx.Thread) error { return nil }); err != nil {
		b.Fatalf("warm: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.ServeRequest(context.Background(), 40, 80, func(th *sgx.Thread) error {
			th.Compute(100_000)
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}
