// Package shard provides a lock-striped hash map for the NF state stores.
//
// The paper's testbed serves one registration at a time, so the seed
// implementation guarded every store with a single mutex. Under the
// concurrent mass-registration driver those coarse locks serialise the
// whole core; striping the key space across independently locked buckets
// lets unrelated UEs proceed in parallel while keeping per-key operations
// atomic.
package shard

import (
	"sync"
)

// stripeCount is the number of independent lock stripes. A modest power of
// two keeps the footprint small while making collisions between the
// handful of in-flight workers unlikely.
const stripeCount = 32

// Map is a hash map striped across stripeCount independently locked
// buckets. K is hashed by the function supplied at construction; all
// operations on keys in different stripes proceed without contention.
type Map[K comparable, V any] struct {
	hash    func(K) uint64
	stripes [stripeCount]stripe[K, V]
}

type stripe[K comparable, V any] struct {
	mu sync.RWMutex
	m  map[K]V
}

// New creates a striped map using hash to place keys. The size hint makes
// every stripe allocate its bucket array here, at construction, instead of
// on its first insert — NF state stores are built at deploy time, so this
// keeps first-contact bucket allocation off the registration hot path.
func New[K comparable, V any](hash func(K) uint64) *Map[K, V] {
	sm := &Map[K, V]{hash: hash}
	for i := range sm.stripes {
		sm.stripes[i].m = make(map[K]V, 9)
	}
	return sm
}

// NewUint64 creates a striped map keyed by uint64.
func NewUint64[V any]() *Map[uint64, V] { return New[uint64, V](HashUint64) }

// NewUint32 creates a striped map keyed by uint32.
func NewUint32[V any]() *Map[uint32, V] {
	return New[uint32, V](func(k uint32) uint64 { return HashUint64(uint64(k)) })
}

// NewString creates a striped map keyed by string.
func NewString[V any]() *Map[string, V] { return New[string, V](HashString) }

func (m *Map[K, V]) stripeFor(k K) *stripe[K, V] {
	return &m.stripes[m.hash(k)%stripeCount]
}

// Load returns the value stored for k.
func (m *Map[K, V]) Load(k K) (V, bool) {
	s := m.stripeFor(k)
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	return v, ok
}

// Store sets the value for k.
func (m *Map[K, V]) Store(k K, v V) {
	s := m.stripeFor(k)
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// Delete removes k.
func (m *Map[K, V]) Delete(k K) {
	s := m.stripeFor(k)
	s.mu.Lock()
	delete(s.m, k)
	s.mu.Unlock()
}

// LoadAndDelete removes k and returns the value that was stored, making a
// lookup-then-consume (such as redeeming a one-shot auth context) a single
// atomic step.
func (m *Map[K, V]) LoadAndDelete(k K) (V, bool) {
	s := m.stripeFor(k)
	s.mu.Lock()
	v, ok := s.m[k]
	if ok {
		delete(s.m, k)
	}
	s.mu.Unlock()
	return v, ok
}

// Update runs fn with the value stored for k (and whether it exists) while
// holding the stripe's write lock, so fn may mutate the value in place —
// the per-record critical section the UDR's SQN advance needs.
func (m *Map[K, V]) Update(k K, fn func(v V, ok bool)) {
	s := m.stripeFor(k)
	s.mu.Lock()
	v, ok := s.m[k]
	fn(v, ok)
	s.mu.Unlock()
}

// Len reports the total number of stored keys.
func (m *Map[K, V]) Len() int {
	n := 0
	for i := range m.stripes {
		s := &m.stripes[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Range calls fn for every entry until fn returns false. Each stripe is
// read-locked only while it is being walked; entries stored or deleted
// concurrently in other stripes may or may not be visited.
func (m *Map[K, V]) Range(fn func(k K, v V) bool) {
	for i := range m.stripes {
		s := &m.stripes[i]
		s.mu.RLock()
		for k, v := range s.m {
			if !fn(k, v) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

// HashUint64 mixes an integer key with the SplitMix64 finaliser so
// sequential IDs spread across stripes.
func HashUint64(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

// HashString is the 64-bit FNV-1a hash.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
