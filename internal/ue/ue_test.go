package ue

import (
	"bytes"
	"context"
	"crypto/rand"
	"errors"
	"testing"

	"shield5g/internal/costmodel"
	"shield5g/internal/crypto/milenage"
	"shield5g/internal/crypto/suci"
	"shield5g/internal/nas"
	"shield5g/internal/paka"
	"shield5g/internal/simclock"
)

var (
	testK    = []byte{0x46, 0x5b, 0x5c, 0xe8, 0xb1, 0x99, 0xb4, 0x9f, 0xaa, 0x5f, 0x0a, 0x2e, 0xe2, 0x38, 0xa6, 0xbc}
	testSUPI = suci.SUPI{MCC: "001", MNC: "01", MSIN: "0000000001"}
	testSNN  = "5G:mnc001.mcc001.3gppnetwork.org"
)

type fixture struct {
	ue    *UE
	opc   []byte
	mil   *milenage.Cipher
	hnKey *suci.HomeNetworkKey
	env   *costmodel.Env
}

func newFixture(t *testing.T, profile *COTSProfile) *fixture {
	t.Helper()
	env := costmodel.NewEnv(nil, 2, nil)
	opc, err := milenage.ComputeOPc(testK, make([]byte, 16))
	if err != nil {
		t.Fatalf("ComputeOPc: %v", err)
	}
	hnKey, err := suci.GenerateHomeNetworkKey(rand.Reader, 1)
	if err != nil {
		t.Fatalf("GenerateHomeNetworkKey: %v", err)
	}
	device, err := New(Config{
		SUPI: testSUPI, K: testK, OPc: opc,
		HomeNetworkPublicKey: hnKey.PublicKey(),
		HomeNetworkKeyID:     hnKey.ID,
		Env:                  env,
		Profile:              profile,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mil, err := milenage.New(testK, opc)
	if err != nil {
		t.Fatalf("milenage.New: %v", err)
	}
	return &fixture{ue: device, opc: opc, mil: mil, hnKey: hnKey, env: env}
}

// networkChallenge builds a valid AuthenticationRequest for the fixture's
// USIM at network SQN sqn, using the same P-AKA derivations the core runs.
func (f *fixture) networkChallenge(t *testing.T, sqn []byte) (*nas.AuthenticationRequest, *paka.UDMGenerateAVResponse) {
	t.Helper()
	randBytes := make([]byte, 16)
	if _, err := rand.Read(randBytes); err != nil {
		t.Fatalf("rand: %v", err)
	}
	av, err := paka.GenerateAV(testK, &paka.UDMGenerateAVRequest{
		SUPI: testSUPI.String(), OPc: f.opc, RAND: randBytes,
		SQN: sqn, AMFID: []byte{0x80, 0x00}, SNN: testSNN,
	})
	if err != nil {
		t.Fatalf("GenerateAV: %v", err)
	}
	req := &nas.AuthenticationRequest{NgKSI: 0, ABBA: []byte{0, 0}}
	copy(req.RAND[:], av.RAND)
	copy(req.AUTN[:], av.AUTN)
	return req, av
}

func TestNewValidation(t *testing.T) {
	env := costmodel.NewEnv(nil, 1, nil)
	if _, err := New(Config{SUPI: suci.SUPI{MCC: "1"}, K: testK, OPc: testK, Env: env}); err == nil {
		t.Fatal("invalid SUPI accepted")
	}
	if _, err := New(Config{SUPI: testSUPI, K: testK, OPc: testK}); err == nil {
		t.Fatal("missing env accepted")
	}
	if _, err := New(Config{SUPI: testSUPI, K: testK[:4], OPc: testK, Env: env}); err == nil {
		t.Fatal("short key accepted")
	}
}

func TestBuildRegistrationRequestConcealsSUPI(t *testing.T) {
	f := newFixture(t, nil)
	pdu, err := f.ue.BuildRegistrationRequest(context.Background(), testSNN)
	if err != nil {
		t.Fatalf("BuildRegistrationRequest: %v", err)
	}
	if bytes.Contains(pdu, []byte(testSUPI.MSIN)) {
		t.Fatal("registration request leaks MSIN")
	}
	msg, err := nas.Decode(pdu)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	rr, ok := msg.(*nas.RegistrationRequest)
	if !ok || rr.Identity.SUCI == nil {
		t.Fatalf("decoded = %#v", msg)
	}
	// The home network can recover the SUPI.
	got, err := f.hnKey.Deconceal(rr.Identity.SUCI)
	if err != nil {
		t.Fatalf("Deconceal: %v", err)
	}
	if got != testSUPI {
		t.Fatalf("deconcealed = %+v", got)
	}
}

func TestAuthChallengeAcceptedAndResStarCorrect(t *testing.T) {
	f := newFixture(t, nil)
	if _, err := f.ue.BuildRegistrationRequest(context.Background(), testSNN); err != nil {
		t.Fatalf("BuildRegistrationRequest: %v", err)
	}
	req, av := f.networkChallenge(t, []byte{0, 0, 0, 0, 0, 0x20})
	pdu, err := nas.Encode(req)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	up, done, err := f.ue.HandleDownlinkNAS(context.Background(), pdu)
	if err != nil {
		t.Fatalf("HandleDownlinkNAS: %v", err)
	}
	if done {
		t.Fatal("done too early")
	}
	msg, err := nas.Decode(up)
	if err != nil {
		t.Fatalf("Decode uplink: %v", err)
	}
	resp, ok := msg.(*nas.AuthenticationResponse)
	if !ok {
		t.Fatalf("uplink = %s", msg.Type())
	}
	if !bytes.Equal(resp.ResStar[:], av.XRESStar) {
		t.Fatal("UE RES* does not match network XRES*")
	}
	// The USIM advanced its sequence number.
	if !bytes.Equal(f.ue.SQN(), []byte{0, 0, 0, 0, 0, 0x20}) {
		t.Fatalf("USIM SQN = %x", f.ue.SQN())
	}
}

func TestAuthChallengeTamperedAUTN(t *testing.T) {
	f := newFixture(t, nil)
	if _, err := f.ue.BuildRegistrationRequest(context.Background(), testSNN); err != nil {
		t.Fatalf("BuildRegistrationRequest: %v", err)
	}
	req, _ := f.networkChallenge(t, []byte{0, 0, 0, 0, 0, 0x20})
	req.AUTN[15] ^= 1 // corrupt MAC-A
	pdu, err := nas.Encode(req)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	up, _, err := f.ue.HandleDownlinkNAS(context.Background(), pdu)
	if !errors.Is(err, ErrMACFailure) {
		t.Fatalf("err = %v, want ErrMACFailure", err)
	}
	msg, derr := nas.Decode(up)
	if derr != nil {
		t.Fatalf("Decode: %v", derr)
	}
	fail, ok := msg.(*nas.AuthenticationFailure)
	if !ok || fail.Cause != nas.CauseMACFailure {
		t.Fatalf("uplink = %#v", msg)
	}
}

func TestAuthChallengeStaleSQNTriggersResync(t *testing.T) {
	f := newFixture(t, nil)
	if err := f.ue.SetSQN([]byte{0, 0, 0, 0, 1, 0}); err != nil {
		t.Fatalf("SetSQN: %v", err)
	}
	if _, err := f.ue.BuildRegistrationRequest(context.Background(), testSNN); err != nil {
		t.Fatalf("BuildRegistrationRequest: %v", err)
	}
	// Network SQN behind the USIM's.
	req, _ := f.networkChallenge(t, []byte{0, 0, 0, 0, 0, 0x20})
	pdu, err := nas.Encode(req)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	up, _, err := f.ue.HandleDownlinkNAS(context.Background(), pdu)
	if err != nil {
		t.Fatalf("HandleDownlinkNAS: %v", err)
	}
	msg, err := nas.Decode(up)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	fail, ok := msg.(*nas.AuthenticationFailure)
	if !ok || fail.Cause != nas.CauseSyncFailure || len(fail.AUTS) != 14 {
		t.Fatalf("uplink = %#v", msg)
	}
	// The AUTS verifies under the eUDM resync function and reveals the
	// USIM's sequence number.
	resp, err := paka.Resync(testK, &paka.UDMResyncRequest{
		SUPI: testSUPI.String(), OPc: f.opc, RAND: req.RAND[:], AUTS: fail.AUTS,
	})
	if err != nil {
		t.Fatalf("Resync: %v", err)
	}
	if !bytes.Equal(resp.SQNMS, []byte{0, 0, 0, 0, 1, 0}) {
		t.Fatalf("SQN_MS = %x", resp.SQNMS)
	}
}

func TestAuthenticationRejectSurfaces(t *testing.T) {
	f := newFixture(t, nil)
	pdu, err := nas.Encode(&nas.AuthenticationReject{})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, _, err := f.ue.HandleDownlinkNAS(context.Background(), pdu); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
}

func TestKeyHierarchyMatchesNetworkSide(t *testing.T) {
	f := newFixture(t, nil)
	if _, err := f.ue.BuildRegistrationRequest(context.Background(), testSNN); err != nil {
		t.Fatalf("BuildRegistrationRequest: %v", err)
	}
	req, av := f.networkChallenge(t, []byte{0, 0, 0, 0, 0, 0x20})
	pdu, err := nas.Encode(req)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, _, err := f.ue.HandleDownlinkNAS(context.Background(), pdu); err != nil {
		t.Fatalf("HandleDownlinkNAS: %v", err)
	}

	// Network side derivations.
	se, err := paka.DeriveSE(&paka.AUSFDeriveSERequest{RAND: av.RAND, XRESStar: av.XRESStar, KAUSF: av.KAUSF, SNN: testSNN})
	if err != nil {
		t.Fatalf("DeriveSE: %v", err)
	}
	kamfResp, err := paka.DeriveKAMF(&paka.AMFDeriveKAMFRequest{KSEAF: se.KSEAF, SUPI: testSUPI.String(), ABBA: []byte{0, 0}})
	if err != nil {
		t.Fatalf("DeriveKAMF: %v", err)
	}

	// If both sides agree on K_AMF, a SecurityModeCommand protected by
	// the network verifies at the UE.
	sec, err := nas.NewSecurityContext(kamfResp.KAMF)
	if err != nil {
		t.Fatalf("NewSecurityContext: %v", err)
	}
	smc, err := sec.Protect(&nas.SecurityModeCommand{IntegrityAlg: nas.AlgNIA2, CipheringAlg: nas.AlgNEA2}, false)
	if err != nil {
		t.Fatalf("Protect: %v", err)
	}
	up, _, err := f.ue.HandleDownlinkNAS(context.Background(), smc)
	if err != nil {
		t.Fatalf("UE rejected protected SMC (key mismatch?): %v", err)
	}
	if _, err := sec.Unprotect(up, true); err != nil {
		t.Fatalf("network rejected SecurityModeComplete: %v", err)
	}
}

func TestGUTIAndAddressAccessors(t *testing.T) {
	f := newFixture(t, nil)
	if _, ok := f.ue.GUTI(); ok {
		t.Fatal("GUTI before registration")
	}
	if f.ue.UEAddress() != "" {
		t.Fatal("address before PDU session")
	}
	if f.ue.SUPI() != testSUPI {
		t.Fatal("SUPI accessor wrong")
	}
	if err := f.ue.SetSQN([]byte{1}); err == nil {
		t.Fatal("short SQN accepted")
	}
}

func TestPDUSessionRequestRequiresRegistration(t *testing.T) {
	f := newFixture(t, nil)
	if _, err := f.ue.BuildPDUSessionRequest(context.Background(), 1, "internet"); err == nil {
		t.Fatal("PDU request before registration accepted")
	}
}

func TestCOTSProfiles(t *testing.T) {
	p := OnePlus8()
	f := newFixture(t, &p)
	if err := f.ue.DetectNetwork("00101"); err != nil {
		t.Fatalf("test PLMN not detected: %v", err)
	}
	if err := f.ue.DetectNetwork("31041"); !errors.Is(err, ErrNoNetwork) {
		t.Fatalf("custom PLMN err = %v, want ErrNoNetwork", err)
	}

	bad := OnePlus8()
	bad.OSVersion = "Oxygen 12"
	f2 := newFixture(t, &bad)
	if err := f2.ue.DetectNetwork("00101"); !errors.Is(err, ErrNoNetwork) {
		t.Fatalf("wrong OS err = %v, want ErrNoNetwork", err)
	}

	// A profile-less simulator UE attaches to anything.
	f3 := newFixture(t, nil)
	if err := f3.ue.DetectNetwork("99999"); err != nil {
		t.Fatalf("simulator UE refused PLMN: %v", err)
	}
}

func TestChargesUSIMCompute(t *testing.T) {
	f := newFixture(t, nil)
	var acct simclock.Account
	ctx := simclock.WithAccount(context.Background(), &acct)
	if _, err := f.ue.BuildRegistrationRequest(ctx, testSNN); err != nil {
		t.Fatalf("BuildRegistrationRequest: %v", err)
	}
	if acct.Total() == 0 {
		t.Fatal("registration build charged nothing")
	}
}

func TestSQNAhead(t *testing.T) {
	if !sqnAhead([]byte{0, 0, 0, 0, 0, 2}, []byte{0, 0, 0, 0, 0, 1}) {
		t.Fatal("2 not ahead of 1")
	}
	if sqnAhead([]byte{0, 0, 0, 0, 0, 1}, []byte{0, 0, 0, 0, 0, 1}) {
		t.Fatal("equal counted as ahead")
	}
	if sqnAhead([]byte{0, 0, 0, 0, 0, 0}, []byte{0xff, 0, 0, 0, 0, 0}) {
		t.Fatal("0 ahead of big value")
	}
}
