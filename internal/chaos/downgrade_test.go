package chaos

import (
	"context"
	"fmt"
	"testing"
	"time"

	"shield5g/internal/costmodel"
	"shield5g/internal/sbi"
	"shield5g/internal/sbi/codec"
)

// This file covers the interaction between the binary-SBI 415 downgrade
// retry and chaos faults (satellite of the overload-control PR): a stale
// binary negotiation healed mid-request must compose with injected
// transient failures without skipping breaker accounting and without
// double-releasing the pooled request body — the downgrade path marshals a
// fresh JSON body after the binary one is spent, so every buffer crosses
// the ownership boundary exactly once.

type dcMsg struct {
	Value string `json:"value"`
}

func (m *dcMsg) AppendBinary(dst []byte) []byte { return codec.AppendString(dst, m.Value) }
func (m *dcMsg) DecodeBinary(r *codec.Reader) error {
	m.Value = r.String()
	return r.Err()
}

// armSchedule arms the injector for exactly the scheduled call numbers, so
// a rate-1.0 fault hits deterministic attempts and nothing else.
type armSchedule struct {
	inj    *Injector
	inner  sbi.Invoker
	calls  int
	faulty map[int]bool
}

func (a *armSchedule) Post(ctx context.Context, service, path string, req, resp any) error {
	a.calls++
	a.inj.SetArmed(a.faulty[a.calls])
	return a.inner.Post(ctx, service, path, req, resp)
}

// downgradeFixture wires a dual-format server, negotiates a binary
// session, then "restarts" the server binary-incapable so the client's
// negotiation is stale.
func downgradeFixture(t *testing.T) (*costmodel.Env, *sbi.Registry, *sbi.Client, *int) {
	t.Helper()
	env := costmodel.NewEnv(nil, 1, nil)
	reg := sbi.NewRegistry()
	srv := sbi.NewServer("udm", env)
	srv.HandleDual("/auth", sbi.BinHandler(func(_ context.Context, req *dcMsg) (*dcMsg, error) {
		return &dcMsg{Value: req.Value}, nil
	}))
	if err := reg.Register(srv); err != nil {
		t.Fatalf("Register: %v", err)
	}
	c := sbi.NewClient("ausf", env, reg)
	c.EnableBinary()

	// Open the session (JSON) and confirm the switch to frames.
	var resp dcMsg
	if err := c.Post(context.Background(), "udm", "/auth", &dcMsg{Value: "open"}, &resp); err != nil {
		t.Fatalf("session open: %v", err)
	}
	if err := c.Post(context.Background(), "udm", "/auth", &dcMsg{Value: "bin"}, &resp); err != nil {
		t.Fatalf("negotiated post: %v", err)
	}

	// Restart binary-incapable: same name, JSON-only endpoint. The client
	// keeps its stale binary caps for the path.
	reg.Deregister("udm")
	srv2 := sbi.NewServer("udm", env)
	handlerCalls := 0
	srv2.Handle("/auth", func(_ context.Context, body []byte) ([]byte, error) {
		handlerCalls++
		if codec.IsFrame(body) {
			t.Fatal("JSON-only handler reached with a binary frame")
		}
		var req dcMsg
		if err := sbi.DecodeBody(body, &req); err != nil {
			return nil, err
		}
		return sbi.MarshalBody(&dcMsg{Value: req.Value})
	})
	if err := reg.Register(srv2); err != nil {
		t.Fatalf("re-register: %v", err)
	}
	return env, reg, c, &handlerCalls
}

func TestDowngradeRetryAfterChaosFault(t *testing.T) {
	env, _, c, handlerCalls := downgradeFixture(t)

	// Chaos: a certain transient error on scheduled attempts only.
	inj := NewInjector(env, Config{Seed: 9, ErrorRate: 1.0})
	sched := &armSchedule{inj: inj, inner: inj.Wrap(c), faulty: map[int]bool{1: true}}
	r := sbi.NewResilient(sched, env, sbi.ResilienceConfig{
		Retry:   sbi.RetryPolicy{MaxAttempts: 3, InitialBackoff: time.Millisecond},
		Breaker: sbi.BreakerConfig{FailureThreshold: 3, OpenTimeout: time.Second, HalfOpenProbes: 1},
	})

	// Attempt 1 draws the injected transient fault (breaker must count
	// it); attempt 2 reaches the restarted server with a stale binary
	// frame, eats the 415, downgrades to JSON in-flight and succeeds —
	// one attempt, one success, no extra breaker transition.
	var resp dcMsg
	if err := r.Post(context.Background(), "udm", "/auth", &dcMsg{Value: "storm"}, &resp); err != nil {
		t.Fatalf("Post: %v", err)
	}
	if resp.Value != "storm" {
		t.Fatalf("resp = %+v", resp)
	}
	if *handlerCalls != 1 {
		t.Fatalf("handler calls = %d, want 1 (the downgraded JSON retry)", *handlerCalls)
	}

	st := r.Stats()
	if st.Attempts != 2 || st.Retries != 1 {
		t.Fatalf("attempts/retries = %d/%d, want 2/1", st.Attempts, st.Retries)
	}
	bst := r.BreakerFor("udm").Stats()
	if bst.State != sbi.BreakerClosed || bst.Opens != 0 {
		t.Fatalf("breaker = %+v, want closed with no opens", bst)
	}
	if got := inj.Counts()["error"]; got != 1 {
		t.Fatalf("injected faults = %d, want exactly 1", got)
	}
}

func TestDowngradeFaultBurstOpensBreakerExactlyOnce(t *testing.T) {
	env, _, c, handlerCalls := downgradeFixture(t)

	inj := NewInjector(env, Config{Seed: 9, ErrorRate: 1.0})
	// Every attempt of the first Post faults; the downgrade never gets to
	// run, and each failed attempt must hit the breaker exactly once —
	// threshold 3 over 3 attempts means exactly one open. Call 4 is the
	// second Post's half-open probe (the retry loop waits out the
	// cooldown): it faults too, re-opening the circuit.
	sched := &armSchedule{inj: inj, inner: inj.Wrap(c), faulty: map[int]bool{1: true, 2: true, 3: true, 4: true}}
	r := sbi.NewResilient(sched, env, sbi.ResilienceConfig{
		Retry:   sbi.RetryPolicy{MaxAttempts: 3, InitialBackoff: time.Millisecond},
		Breaker: sbi.BreakerConfig{FailureThreshold: 3, OpenTimeout: time.Minute, HalfOpenProbes: 1},
	})

	err := r.Post(context.Background(), "udm", "/auth", &dcMsg{Value: "x"}, nil)
	if err == nil || !sbi.Retryable(err) {
		t.Fatalf("err = %v, want transient failure", err)
	}
	bst := r.BreakerFor("udm").Stats()
	if bst.State != sbi.BreakerOpen || bst.Opens != 1 {
		t.Fatalf("breaker = %+v, want exactly one open", bst)
	}
	if *handlerCalls != 0 {
		t.Fatalf("handler calls = %d, want 0 (all attempts faulted client-side)", *handlerCalls)
	}

	// The second Post: its first attempt is rejected by the open circuit,
	// the retry loop waits out the cooldown, and the half-open probe draws
	// the scheduled fault — re-opening the circuit and exhausting retries
	// on a rejection. The downgrade never skips this accounting.
	err = r.Post(context.Background(), "udm", "/auth", &dcMsg{Value: "y"}, nil)
	if !sbi.HasCause(err, sbi.CauseCircuitOpen) {
		t.Fatalf("err = %v, want CIRCUIT_OPEN", err)
	}
	bst = r.BreakerFor("udm").Stats()
	if bst.State != sbi.BreakerOpen || bst.Opens != 2 || bst.Rejected == 0 || bst.Probes != 1 {
		t.Fatalf("breaker = %+v, want re-opened with rejections and one probe", bst)
	}
	if *handlerCalls != 0 {
		t.Fatalf("handler calls = %d, want 0 (probe faulted client-side)", *handlerCalls)
	}
}

func TestDowngradeBodyPoolIntegrity(t *testing.T) {
	env, _, c, handlerCalls := downgradeFixture(t)

	// No chaos: the downgrade itself must not double-release the pooled
	// binary body. The first post heals the path (frame -> 415 -> JSON);
	// a burst of distinct payloads then round-trips through the shared
	// codec pool — a double-released (and so doubly-handed-out) buffer
	// would scramble payloads under the distinct-value check.
	inj := NewInjector(env, Config{Seed: 9, ErrorRate: 1.0})
	inj.SetArmed(false)
	r := sbi.NewResilient(inj.Wrap(c), env, sbi.ResilienceConfig{
		Retry: sbi.RetryPolicy{MaxAttempts: 2, InitialBackoff: time.Millisecond},
	})
	for i := 0; i < 32; i++ {
		want := fmt.Sprintf("payload-%03d-%s", i, string(make([]byte, i%7+1)))
		var resp dcMsg
		if err := r.Post(context.Background(), "udm", "/auth", &dcMsg{Value: want}, &resp); err != nil {
			t.Fatalf("Post %d: %v", i, err)
		}
		if resp.Value != want {
			t.Fatalf("Post %d echoed %q, want %q", i, resp.Value, want)
		}
	}
	// One 415'd frame plus 32 JSON calls: the downgrade retried exactly
	// once and never re-upgraded the stale path.
	if *handlerCalls != 32 {
		t.Fatalf("handler calls = %d, want 32", *handlerCalls)
	}
	if st := r.Stats(); st.Retries != 0 {
		t.Fatalf("retries = %d, want 0 (downgrade is in-attempt, not a retry)", st.Retries)
	}
}
