//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in. The
// instrumented runtime allocates shadow state that MemStats counts, so
// allocation-budget assertions only hold on uninstrumented builds; the
// budget itself is gated by `make bench-compare` against the committed
// baseline.
const raceEnabled = true
