package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestClassify(t *testing.T) {
	cases := map[string]metricDir{
		"allocs_per_reg":       dirLower,
		"bytes_per_reg":        dirLower,
		"transitions_per_reg":  dirLower,
		"wall_ms":              dirLower,
		"pool_misses":          dirLower,
		"virtual_regs_per_sec": dirHigher,
		"wall_regs_per_sec":    dirHigher,
		"pool_hits":            dirHigher,
		"reduction_vs_seed":    dirHigher,
		"batch_size":           dirUnknown,
		"ues":                  dirUnknown,
		"registered":           dirUnknown,
		"attempts":             dirUnknown,
	}
	for field, want := range cases {
		if got := classify(field); got != want {
			t.Errorf("classify(%q) = %d, want %d", field, got, want)
		}
	}
}

func writeReport(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadLastPointPerModeWins(t *testing.T) {
	path := writeReport(t, "r.json", `{"points": [
		{"mode": "unbatched", "allocs_per_reg": 300},
		{"mode": "unbatched", "allocs_per_reg": 280},
		{"mode": "batched8", "allocs_per_reg": 290}
	]}`)
	got, err := load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got["unbatched"]["allocs_per_reg"] != 280 {
		t.Fatalf("unbatched allocs = %v, want the last point (280)", got["unbatched"]["allocs_per_reg"])
	}
	if got["batched8"]["allocs_per_reg"] != 290 {
		t.Fatalf("batched8 allocs = %v", got["batched8"]["allocs_per_reg"])
	}
}

func TestLoadRejectsEmptyAndModeless(t *testing.T) {
	if _, err := load(writeReport(t, "empty.json", `{"points": []}`)); err == nil {
		t.Fatal("empty points accepted")
	}
	if _, err := load(writeReport(t, "modeless.json", `{"points": [{"allocs_per_reg": 1}]}`)); err == nil {
		t.Fatal("modeless points accepted")
	}
	if _, err := load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
