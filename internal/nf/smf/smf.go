// Package smf implements a minimal Session Management Function: PDU
// session establishment on behalf of the AMF, UE address allocation, and
// N4 programming of the UPF. Together with the UPF it forms the data
// session anchor the paper's end-to-end session setup measurement covers.
package smf

import (
	"context"
	"fmt"
	"sync"

	"shield5g/internal/costmodel"
	"shield5g/internal/nf/nrf"
	"shield5g/internal/nf/upf"
	"shield5g/internal/sbi"
)

// Service identity.
const (
	ServiceName = "smf"
	NFType      = "SMF"
)

// SBI endpoint paths.
const (
	PathCreateSession  = "/nsmf-pdusession/v1/sm-contexts/create"
	PathReleaseSession = "/nsmf-pdusession/v1/sm-contexts/release"
)

// CreateSessionRequest asks for a PDU session for a registered UE.
type CreateSessionRequest struct {
	SUPI      string `json:"supi"`
	SessionID byte   `json:"session_id"`
	DNN       string `json:"dnn"`
}

// CreateSessionResponse returns the allocated UE address and uplink TEID.
type CreateSessionResponse struct {
	UEAddress string `json:"ue_address"`
	TEID      uint32 `json:"teid"`
}

// ReleaseSessionRequest tears a PDU session down.
type ReleaseSessionRequest struct {
	SUPI      string `json:"supi"`
	SessionID byte   `json:"session_id"`
}

// Empty is an empty response body.
type Empty struct{}

// Config wires an SMF instance.
type Config struct {
	Env      *costmodel.Env
	Registry *sbi.Registry
	Invoker  sbi.Invoker
}

// SMF is the session-management VNF.
type SMF struct {
	env     *costmodel.Env
	server  *sbi.Server
	invoker sbi.Invoker
	nrfc    *nrf.Client

	mu       sync.Mutex
	nextIP   uint32
	nextSEID uint64
	sessions map[string]uint64 // supi/sessionID -> SEID
}

// New creates an SMF, registers its SBI server and announces it to the
// NRF.
func New(ctx context.Context, cfg Config) (*SMF, error) {
	if cfg.Env == nil || cfg.Registry == nil || cfg.Invoker == nil {
		return nil, fmt.Errorf("smf: Env, Registry and Invoker are required")
	}
	s := &SMF{
		env:      cfg.Env,
		server:   sbi.NewServer(ServiceName, cfg.Env),
		invoker:  cfg.Invoker,
		nrfc:     nrf.NewClient(cfg.Invoker),
		nextIP:   0x0A3C0001, // 10.60.0.1
		sessions: make(map[string]uint64),
	}
	s.server.Handle(PathCreateSession, sbi.JSONHandler(s.handleCreate))
	s.server.Handle(PathReleaseSession, sbi.JSONHandler(s.handleRelease))
	if err := cfg.Registry.Register(s.server); err != nil {
		return nil, err
	}
	if err := s.nrfc.Register(ctx, nrf.NFProfile{
		InstanceID: "smf-1", NFType: NFType, Service: ServiceName,
	}); err != nil {
		return nil, fmt.Errorf("smf: NRF registration: %w", err)
	}
	return s, nil
}

func sessionKey(supi string, id byte) string { return fmt.Sprintf("%s/%d", supi, id) }

func (s *SMF) handleCreate(ctx context.Context, req *CreateSessionRequest) (*CreateSessionResponse, error) {
	if req.SUPI == "" || req.DNN == "" {
		return nil, sbi.Problem(400, "Bad Request", "MANDATORY_IE_MISSING", "SUPI and DNN required")
	}
	key := sessionKey(req.SUPI, req.SessionID)

	s.mu.Lock()
	if _, dup := s.sessions[key]; dup {
		s.mu.Unlock()
		return nil, sbi.Problem(409, "Conflict", "SESSION_EXISTS", "%s", key)
	}
	s.nextIP++
	s.nextSEID++
	ip := s.nextIP
	seid := s.nextSEID
	s.sessions[key] = seid
	s.mu.Unlock()

	ueAddr := fmt.Sprintf("%d.%d.%d.%d", ip>>24, (ip>>16)&0xff, (ip>>8)&0xff, ip&0xff)
	var est upf.EstablishResponse
	if err := s.invoker.Post(ctx, upf.ServiceName, upf.PathEstablish,
		&upf.EstablishRequest{SEID: seid, UEAddress: ueAddr}, &est); err != nil {
		s.mu.Lock()
		delete(s.sessions, key)
		s.mu.Unlock()
		return nil, err
	}
	return &CreateSessionResponse{UEAddress: ueAddr, TEID: est.TEID}, nil
}

func (s *SMF) handleRelease(ctx context.Context, req *ReleaseSessionRequest) (*Empty, error) {
	key := sessionKey(req.SUPI, req.SessionID)
	s.mu.Lock()
	seid, ok := s.sessions[key]
	if ok {
		delete(s.sessions, key)
	}
	s.mu.Unlock()
	if !ok {
		return nil, sbi.Problem(404, "Not Found", "SESSION_NOT_FOUND", "%s", key)
	}
	if err := s.invoker.Post(ctx, upf.ServiceName, upf.PathRelease, &upf.ReleaseRequest{SEID: seid}, nil); err != nil {
		return nil, err
	}
	return &Empty{}, nil
}

// SessionCount reports active sessions.
func (s *SMF) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Client is the AMF-side helper for SMF calls.
type Client struct {
	invoker sbi.Invoker
	service string
}

// NewClient wraps an SBI transport for SMF calls against the default
// service name.
func NewClient(invoker sbi.Invoker) *Client {
	return &Client{invoker: invoker, service: ServiceName}
}

// DiscoverClient resolves an SMF instance through the NRF.
func DiscoverClient(ctx context.Context, invoker sbi.Invoker) (*Client, error) {
	p, err := nrf.NewClient(invoker).Discover(ctx, NFType, false)
	if err != nil {
		return nil, fmt.Errorf("smf: discovery: %w", err)
	}
	return &Client{invoker: invoker, service: p.Service}, nil
}

// CreateSession establishes a PDU session.
func (c *Client) CreateSession(ctx context.Context, req *CreateSessionRequest) (*CreateSessionResponse, error) {
	var resp CreateSessionResponse
	if err := c.invoker.Post(ctx, c.service, PathCreateSession, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ReleaseSession tears a PDU session down.
func (c *Client) ReleaseSession(ctx context.Context, req *ReleaseSessionRequest) error {
	return c.invoker.Post(ctx, c.service, PathReleaseSession, req, nil)
}
