// Package stripemap is a shieldlint fixture for the stripe-lock
// analyzer: maps paired with a mutex in the same struct may only be
// accessed under that lock, except in constructors and on fields that
// opt out at their declaration.
package stripemap

import "sync"

type stripe struct {
	mu sync.Mutex
	m  map[string]int
}

func newStripe() *stripe {
	s := &stripe{m: make(map[string]int)}
	s.m["seed"] = 1 // constructor: the value is not published yet
	return s
}

func (s *stripe) get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[k]
}

func (s *stripe) fastPath(k string) int {
	return s.m[k] // want "indexed in fastPath without the lock held"
}

func (s *stripe) size() int {
	return len(s.m) // want "len.. called in size without the lock held"
}

func (s *stripe) drop(k string) {
	delete(s.m, k) // want "delete.. called in drop without the lock held"
}

func (s *stripe) sum() int {
	t := 0
	for _, v := range s.m { // want "ranged over in sum without the lock held"
		t += v
	}
	return t
}

func (s *stripe) reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = make(map[string]int) // writing the field itself is always legal
}

type cache struct {
	mu sync.RWMutex
	//shieldlint:ignore stripemap immutable after construction in this fixture
	frozen map[string]int
	live   map[string]int
}

func (c *cache) readFrozen(k string) int {
	return c.frozen[k] // opted out at the field declaration
}

func (c *cache) readLive(k string) int {
	return c.live[k] // want "indexed in readLive without the lock held"
}

func (c *cache) readLiveLocked(k string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.live[k]
}
