package planeboundary

import (
	// A load-bearing annotation keeps the escape hatch honest: the
	// suppressed finding is still produced, and the harness checks it.
	//shieldlint:ignore planeboundary fixture demonstrates the annotation
	_ "shield5g/internal/nf/nrf/topo" // want:suppressed "imports the NRF snapshot builder"
)
