//go:build ignore

package buildtag

// This file must be excluded by the loader's build-constraint filter:
// it references an undefined symbol, so accidental inclusion breaks
// the type check rather than silently widening the fixture.
var X = definitelyUndefined
