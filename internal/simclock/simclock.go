// Package simclock provides the deterministic virtual-time substrate used by
// the testbed's accounting mode.
//
// The reproduction measures latency in simulated CPU cycles rather than wall
// clock so that every figure and table is reproducible on any machine. A
// Clock converts cycles to durations at a fixed frequency (the paper's Xeon
// Silver 4314 runs at 2.40 GHz), an Account accumulates the cycles charged
// along one request path, and a Jitter source adds seeded, reproducible
// measurement noise so that distributions have realistic quartile spreads.
package simclock

import (
	"context"
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Cycles counts virtual CPU cycles.
type Cycles uint64

// DefaultFrequencyHz is the clock rate of the paper's testbed CPU
// (Intel Xeon Silver 4314, 2.40 GHz).
const DefaultFrequencyHz = 2_400_000_000

// Duration converts a cycle count to a duration at the given CPU frequency.
func Duration(n Cycles, freqHz uint64) time.Duration {
	if freqHz == 0 {
		freqHz = DefaultFrequencyHz
	}
	// Split to avoid overflow for large cycle counts.
	sec := uint64(n) / freqHz
	rem := uint64(n) % freqHz
	return time.Duration(sec)*time.Second +
		time.Duration(float64(rem)/float64(freqHz)*float64(time.Second))
}

// FromDuration converts a duration to cycles at the given CPU frequency.
func FromDuration(d time.Duration, freqHz uint64) Cycles {
	if freqHz == 0 {
		freqHz = DefaultFrequencyHz
	}
	return Cycles(d.Seconds() * float64(freqHz))
}

// Clock is a virtual CPU clock. It tracks globally elapsed cycles for
// uptime-dependent effects (such as asynchronous enclave exits caused by
// timer interrupts). The zero value is not usable; construct with New.
type Clock struct {
	freqHz uint64

	elapsed atomic.Uint64
}

// New returns a Clock ticking at freqHz. A freqHz of zero selects
// DefaultFrequencyHz.
func New(freqHz uint64) *Clock {
	if freqHz == 0 {
		freqHz = DefaultFrequencyHz
	}
	return &Clock{freqHz: freqHz}
}

// FrequencyHz reports the clock frequency.
func (c *Clock) FrequencyHz() uint64 { return c.freqHz }

// Advance moves the clock forward by n cycles.
func (c *Clock) Advance(n Cycles) { c.elapsed.Add(uint64(n)) }

// AdvanceDuration moves the clock forward by the cycle-equivalent of d.
func (c *Clock) AdvanceDuration(d time.Duration) {
	c.Advance(FromDuration(d, c.freqHz))
}

// Elapsed reports the total cycles elapsed on the clock.
func (c *Clock) Elapsed() Cycles { return Cycles(c.elapsed.Load()) }

// Now reports the elapsed virtual time.
func (c *Clock) Now() time.Duration {
	return Duration(c.Elapsed(), c.freqHz)
}

// Account accumulates the cycles charged along a single request path. It is
// safe for concurrent use; a request that fans out across goroutines may
// share one Account. The zero value is ready to use.
type Account struct {
	cycles atomic.Uint64
}

// Charge adds n cycles to the account.
func (a *Account) Charge(n Cycles) { a.cycles.Add(uint64(n)) }

// Total reports the cycles charged so far.
func (a *Account) Total() Cycles { return Cycles(a.cycles.Load()) }

// Reset zeroes the account and returns the previous total.
func (a *Account) Reset() Cycles { return Cycles(a.cycles.Swap(0)) }

// DurationAt converts the account's total to a duration at freqHz.
func (a *Account) DurationAt(freqHz uint64) time.Duration {
	return Duration(a.Total(), freqHz)
}

type accountKey struct{}

// WithAccount returns a context carrying the account. Costs charged by the
// simulated substrate flow to the account of the request being served.
// Re-attaching the account a context already carries (the
// WithAccount(ctx, AccountFrom(ctx)) propagation idiom) returns ctx
// unchanged instead of allocating a redundant wrapper.
func WithAccount(ctx context.Context, a *Account) context.Context {
	if existing, ok := ctx.Value(accountKey{}).(*Account); ok && existing == a {
		return ctx
	}
	return context.WithValue(ctx, accountKey{}, a)
}

// AccountFrom extracts the account from ctx. It returns a throwaway account
// when none is attached, so callers may charge unconditionally.
func AccountFrom(ctx context.Context) *Account {
	if a, ok := ctx.Value(accountKey{}).(*Account); ok && a != nil {
		return a
	}
	return &Account{}
}

// Jitter is a seeded source of reproducible measurement noise. It is safe
// for concurrent use, but concurrent callers interleave on one PCG
// sequence; use Stream to give each worker an independent, reproducible
// sequence instead.
type Jitter struct {
	seed uint64
	mu   sync.Mutex
	rng  *rand.Rand
}

// NewJitter returns a Jitter seeded deterministically from seed.
func NewJitter(seed uint64) *Jitter {
	return &Jitter{seed: seed, rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Stream derives an independent jitter source for worker i, keyed only by
// the root seed and i. Every (seed, i) pair always yields the same
// sequence regardless of how many draws other workers make, which is what
// keeps parallel mass-registration runs seed-reproducible: worker i's
// costs depend on its own stream, never on scheduling order. Stream 0 is
// distinct from the root sequence.
func (j *Jitter) Stream(i uint64) *Jitter {
	return NewJitter(splitmix64(j.seed ^ (i+1)*0x9e3779b97f4a7c15))
}

// splitmix64 is the SplitMix64 finaliser, used to decorrelate derived
// stream seeds from arithmetic structure in (seed, i).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

type arrivalKey struct{}

// WithArrival stamps ctx with the request's virtual arrival time (cycles on
// the shared clock's axis). Open-loop drivers — the signaling-storm driver
// in particular — assign arrival timestamps from a seeded plan instead of
// the closed-loop clock, which is what lets a 10x-overload arrival process
// outrun the simulated service rate deterministically: server-side load
// meters and admission-control token buckets read this timestamp, so
// backlog growth and bucket refill depend only on the plan, never on
// scheduling or wall time.
func WithArrival(ctx context.Context, at Cycles) context.Context {
	return context.WithValue(ctx, arrivalKey{}, at)
}

// ArrivalFrom extracts the virtual arrival timestamp from ctx. ok is false
// when the request carries none (closed-loop callers), in which case load
// meters fall back to the shared clock.
func ArrivalFrom(ctx context.Context) (Cycles, bool) {
	at, ok := ctx.Value(arrivalKey{}).(Cycles)
	return at, ok
}

type jitterKey struct{}

// WithJitter returns a context carrying a request-scoped jitter source.
// The parallel registration driver attaches one per-worker Stream so that
// all noise drawn along the request path is contention-free and
// reproducible per worker.
func WithJitter(ctx context.Context, j *Jitter) context.Context {
	return context.WithValue(ctx, jitterKey{}, j)
}

// JitterFrom extracts the request-scoped jitter from ctx, falling back to
// fallback when none is attached. The fallback path is the sequential
// mode: every component keeps drawing from the shared root source in the
// exact order the seed implementation did, so sequential figures stay
// bit-for-bit identical.
func JitterFrom(ctx context.Context, fallback *Jitter) *Jitter {
	if j, ok := ctx.Value(jitterKey{}).(*Jitter); ok && j != nil {
		return j
	}
	return fallback
}

// Scale multiplies n by a uniform factor in [1-frac, 1+frac].
func (j *Jitter) Scale(n Cycles, frac float64) Cycles {
	if frac <= 0 {
		return n
	}
	j.mu.Lock()
	f := 1 + frac*(2*j.rng.Float64()-1)
	j.mu.Unlock()
	if f < 0 {
		f = 0
	}
	return Cycles(float64(n) * f)
}

// LogNormal draws a log-normally distributed cycle count with the given
// median and shape parameter sigma. Latency distributions in the paper's
// box plots are right-skewed; a log-normal body reproduces that.
func (j *Jitter) LogNormal(median Cycles, sigma float64) Cycles {
	if sigma <= 0 {
		return median
	}
	j.mu.Lock()
	z := j.rng.NormFloat64()
	j.mu.Unlock()
	return Cycles(float64(median) * math.Exp(sigma*z))
}

// Poisson draws a Poisson-distributed count with the given mean. It is used
// for rare-event counts such as EPC page faults per request.
func (j *Jitter) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	// Knuth's method is fine for the small lambdas used here; fall back to
	// a normal approximation for large means.
	if lambda > 64 {
		j.mu.Lock()
		z := j.rng.NormFloat64()
		j.mu.Unlock()
		n := int(lambda + math.Sqrt(lambda)*z + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	}
	limit := math.Exp(-lambda)
	j.mu.Lock()
	defer j.mu.Unlock()
	p, n := 1.0, 0
	for {
		p *= j.rng.Float64()
		if p <= limit {
			return n
		}
		n++
	}
}

// Uint64n draws a uniform integer in [0, n).
func (j *Jitter) Uint64n(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rng.Uint64N(n)
}

// Float64 draws a uniform float in [0, 1).
func (j *Jitter) Float64() float64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rng.Float64()
}
