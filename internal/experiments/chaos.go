package experiments

import (
	"context"
	"fmt"
	"io"
	"reflect"
	"time"

	"shield5g/internal/chaos"
	"shield5g/internal/deploy"
	"shield5g/internal/gnb"
	"shield5g/internal/paka"
	"shield5g/internal/sbi"
	"shield5g/internal/ue"
)

// chaosMaxAttempts is the driver-level registration retry budget under
// injected faults.
const chaosMaxAttempts = 5

// ChaosPoint is one fault-rate level of the resilience sweep.
type ChaosPoint struct {
	// Rate is the per-SBI-request probability of any injected fault.
	Rate float64
	// Registered/Failed are final per-UE outcomes after driver retries;
	// Attempts counts every full registration attempt.
	Registered int
	Failed     int
	Attempts   int
	// Recovered is the number of failed attempts whose UE later
	// registered on a retry, summed over failure classes.
	Recovered int
	// RecoveredByClass breaks Recovered down by ProblemDetails cause.
	RecoveredByClass map[string]int
	// Injected counts the faults actually drawn, by kind.
	Injected map[string]uint64
	// Restarts is the number of whole-module crash/redeploy cycles the
	// point survived (each re-pays the Fig. 7 enclave load in virtual
	// time and re-attests before serving again).
	Restarts uint64
	// Reauths counts AMF-side re-authentications after an auth context
	// was consumed by a dropped reply; Reprovisions counts UDM-side key
	// restores into a crashed execution environment; Expired counts AUSF
	// auth contexts reaped by the pending-auth TTL.
	Reauths      uint64
	Reprovisions uint64
	Expired      uint64
	// MedianSetup is the virtual setup-time median of successful
	// registrations.
	MedianSetup time.Duration
	// SuccessPct is Registered over the UE population.
	SuccessPct float64
	// Resilience snapshots the retry layer's queryable counters across
	// every resilient invoker the slice built: SBI-level attempts and
	// retries, Retry-After floors honoured, deadline hits, and the merged
	// circuit-breaker transition counters (opens, half-open probes,
	// rejections). These used to be invisible in experiment output.
	Resilience sbi.ResilienceStats
}

// ChaosResult is the fault-injection resilience sweep.
type ChaosResult struct {
	UEs         int
	MaxAttempts int
	Points      []ChaosPoint
	// Deterministic reports whether re-running the highest fault rate
	// with the same seeds reproduced bit-identical outcome counts
	// (registered/failed/attempts and the per-class failure and recovery
	// tallies).
	Deterministic bool
}

// Chaos sweeps seeded fault-injection rates against a shielded (SGX) slice
// and measures how far the SBI resilience layer (deadlines, retry/backoff,
// circuit breakers) plus the NF degradation hooks carry mass registration:
// the sweep demonstrates convergence to near-total success at fault rates
// up to 10%, including whole-module crash/re-attest cycles, and verifies
// the determinism contract by replaying the harshest point.
func Chaos(ctx context.Context, cfg Config) (*ChaosResult, error) {
	n := cfg.iterations()
	if n < 30 {
		n = 30
	}
	if n > 120 {
		n = 120
	}

	result := &ChaosResult{UEs: n, MaxAttempts: chaosMaxAttempts}
	rates := []float64{0, 0.02, 0.05, 0.10}
	var last *gnb.MassResult
	for _, rate := range rates {
		point, res, err := chaosPoint(ctx, cfg, n, rate)
		if err != nil {
			return nil, err
		}
		result.Points = append(result.Points, point)
		last = res
	}

	// Determinism: replay the harshest point on a fresh same-seed slice
	// and compare every outcome count.
	_, replay, err := chaosPoint(ctx, cfg, n, rates[len(rates)-1])
	if err != nil {
		return nil, err
	}
	result.Deterministic = sameOutcome(last, replay)
	return result, nil
}

// sameOutcome compares the deterministic outcome of two mass runs.
func sameOutcome(a, b *gnb.MassResult) bool {
	return a.Registered == b.Registered &&
		a.Failed == b.Failed &&
		a.Attempts == b.Attempts &&
		reflect.DeepEqual(a.FailureCounts, b.FailureCounts) &&
		reflect.DeepEqual(a.Recovered, b.Recovered)
}

// chaosPoint deploys a fresh slice with the injector at the given total
// rate, provisions the UE population fault-free, then drives a sequential
// mass registration with driver-level retries while faults are armed.
func chaosPoint(ctx context.Context, cfg Config, n int, rate float64) (ChaosPoint, *gnb.MassResult, error) {
	mix := chaos.DefaultMix(cfg.Seed+101, rate)
	s, err := deploy.NewSlice(ctx, deploy.SliceConfig{
		Isolation: paka.SGX,
		Seed:      cfg.Seed + 41,
		Chaos:     &mix,
	})
	if err != nil {
		return ChaosPoint{}, nil, err
	}
	defer s.Stop()

	// Provisioning and warm-up run fault-free so every point starts from
	// the same deployed state; a disarmed injector draws nothing, keeping
	// the decision streams aligned across points and replays.
	s.Chaos.SetArmed(false)
	warm, err := sliceSubscriber(ctx, s, "0000009998")
	if err != nil {
		return ChaosPoint{}, nil, err
	}
	if _, err := s.GNB.RegisterUE(ctx, warm); err != nil {
		return ChaosPoint{}, nil, err
	}
	devices := make([]*ue.UE, n)
	for i := range devices {
		if devices[i], err = sliceSubscriber(ctx, s, fmt.Sprintf("%010d", 5000+i)); err != nil {
			return ChaosPoint{}, nil, err
		}
	}
	s.Chaos.SetArmed(true)

	res, err := s.GNB.RegisterManyWith(ctx, gnb.MassOptions{
		N:           n,
		NewUE:       func(i int) (*ue.UE, error) { return devices[i], nil },
		MaxAttempts: chaosMaxAttempts,
		Chaos:       s.Chaos,
	})
	if err != nil {
		return ChaosPoint{}, nil, err
	}
	s.Chaos.SetArmed(false)

	point := ChaosPoint{
		Rate:             rate,
		Registered:       res.Registered,
		Failed:           res.Failed,
		Attempts:         res.Attempts,
		RecoveredByClass: res.Recovered,
		Injected:         s.Chaos.Counts(),
		Reauths:          s.AMF.Reauths(),
		Reprovisions:     s.UDM.Reprovisions(),
		Expired:          s.AUSF.ExpiredSessions(),
		MedianSetup:      res.SetupTimes.Summarize().Median,
		SuccessPct:       100 * float64(res.Registered) / float64(n),
		Resilience:       s.ResilienceStats(),
	}
	for _, c := range res.Recovered {
		point.Recovered += c
	}
	for _, m := range s.Modules {
		point.Restarts += m.Restarts()
	}
	return point, res, nil
}

// Render prints the sweep table.
func (r *ChaosResult) Render(w io.Writer) {
	fprintf(w, "Fault injection vs SBI resilience (%d UEs, <=%d attempts per UE, sequential driver)\n",
		r.UEs, r.MaxAttempts)
	fprintf(w, "%-6s %5s %5s %8s %9s %8s %7s %6s %7s %10s %9s\n",
		"rate", "ok", "fail", "attempts", "recovered", "crashes", "reauth", "represt", "expired", "median", "success")
	for _, p := range r.Points {
		fprintf(w, "%-6.2f %5d %5d %8d %9d %8d %7d %6d %7d %10s %8.1f%%\n",
			p.Rate, p.Registered, p.Failed, p.Attempts, p.Recovered,
			p.Restarts, p.Reauths, p.Reprovisions, p.Expired,
			p.MedianSetup.Round(10*time.Microsecond), p.SuccessPct)
	}
	last := r.Points[len(r.Points)-1]
	fprintf(w, "injected at rate %.2f:", last.Rate)
	for _, kind := range []string{"latency", "error", "drop", "aex-storm", "evict", "crash"} {
		if n, ok := last.Injected[kind]; ok {
			fprintf(w, " %s=%d", kind, n)
		}
	}
	fprintf(w, "\n")
	rs := last.Resilience
	fprintf(w, "resilience at rate %.2f: sbi_attempts=%d sbi_retries=%d retry_after_honored=%d deadline_hits=%d breaker_opens=%d probes=%d rejected=%d\n",
		last.Rate, rs.Attempts, rs.Retries, rs.RetryAfterHonored, rs.DeadlineHits,
		rs.Breaker.Opens, rs.Breaker.Probes, rs.Breaker.Rejected)
	if r.Deterministic {
		fprintf(w, "(same-seed replay of the %.0f%% point reproduced identical outcome counts —\n", 100*last.Rate)
		fprintf(w, " the fault schedule and every recovery are deterministic in virtual time)\n")
	} else {
		fprintf(w, "WARNING: same-seed replay diverged; the determinism contract is broken\n")
	}
}

// WriteCSV emits the sweep series.
func (r *ChaosResult) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			f(p.Rate),
			fmt.Sprintf("%d", p.Registered),
			fmt.Sprintf("%d", p.Failed),
			fmt.Sprintf("%d", p.Attempts),
			fmt.Sprintf("%d", p.Recovered),
			fmt.Sprintf("%d", p.Restarts),
			fmt.Sprintf("%d", p.Reauths),
			fmt.Sprintf("%d", p.Reprovisions),
			fmt.Sprintf("%d", p.Expired),
			f(float64(p.MedianSetup) / float64(time.Millisecond)),
			f(p.SuccessPct),
			fmt.Sprintf("%d", p.Resilience.Retries),
			fmt.Sprintf("%d", p.Resilience.Breaker.Opens),
			fmt.Sprintf("%d", p.Resilience.Breaker.Rejected),
		})
	}
	return writeCSV(w, []string{
		"rate", "registered", "failed", "attempts", "recovered", "restarts",
		"reauths", "reprovisions", "expired", "median_setup_ms", "success_pct",
		"sbi_retries", "breaker_opens", "breaker_rejected",
	}, rows)
}
