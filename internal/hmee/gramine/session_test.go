package gramine

import (
	"context"
	"errors"
	"testing"

	"shield5g/internal/hmee/sgx"
	"shield5g/internal/simclock"
)

func launchTest(t *testing.T) *Instance {
	t.Helper()
	inst, err := Launch(context.Background(), testPlatform(t), testShielded(t))
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	t.Cleanup(inst.Shutdown)
	return inst
}

// measuredCtx returns a ctx carrying a dedicated account and a fresh
// jitter stream from the given seed, so two requests on different
// instances make bit-identical stochastic draws.
func measuredCtx(seed uint64) (context.Context, *simclock.Account) {
	acct := &simclock.Account{}
	ctx := simclock.WithAccount(context.Background(), acct)
	ctx = simclock.WithJitter(ctx, simclock.NewJitter(seed))
	return ctx, acct
}

// TestServeOnSessionGoldenBatchOfOne pins the amortization contract: a
// warm request served on a keep-alive session is bit-identical to a warm
// ServeRequest in its L_F and L_T windows, and its ServerSide omits
// exactly the Pre+Post machinery (81 proxied syscalls at 16 bytes each
// way under the default profile), nothing more.
func TestServeOnSessionGoldenBatchOfOne(t *testing.T) {
	instA := launchTest(t)
	instB := launchTest(t)

	handler := func(th *sgx.Thread) error {
		th.Compute(150_000)
		th.Touch(4096)
		return nil
	}

	// Warm both instances so neither measured request pays the lazy
	// warm-up; B's session also absorbs the per-connection handshake.
	if _, err := instA.ServeRequest(context.Background(), 40, 80, handler); err != nil {
		t.Fatalf("warm ServeRequest: %v", err)
	}
	sess, err := instB.OpenSession(context.Background())
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}

	ctxA, acctA := measuredCtx(99)
	bdA, err := instA.ServeRequest(ctxA, 40, 80, handler)
	if err != nil {
		t.Fatalf("measured ServeRequest: %v", err)
	}
	ctxB, acctB := measuredCtx(99)
	bdB, err := sess.Serve(ctxB, 40, 80, handler)
	if err != nil {
		t.Fatalf("measured ServeOnSession: %v", err)
	}

	if bdA.Functional != bdB.Functional {
		t.Errorf("Functional: ServeRequest %d != session %d", bdA.Functional, bdB.Functional)
	}
	if bdA.Total != bdB.Total {
		t.Errorf("Total: ServeRequest %d != session %d", bdA.Total, bdB.Total)
	}

	m := instA.platform.Model()
	sp := instA.syscalls
	perOCall := m.OCALLRoundTrip() + m.SyscallNative + 2*m.ShieldCost(16)
	wantDelta := simclock.Cycles(sp.Pre+sp.Post) * perOCall
	if got := bdA.ServerSide - bdB.ServerSide; got != wantDelta {
		t.Errorf("ServerSide delta = %d, want exactly Pre+Post machinery %d", got, wantDelta)
	}
	if acctA.Total() != bdA.ServerSide || acctB.Total() != bdB.ServerSide {
		t.Errorf("accounts (%d, %d) disagree with ServerSide (%d, %d)",
			acctA.Total(), acctB.Total(), bdA.ServerSide, bdB.ServerSide)
	}
}

// TestSessionAmortizesTransitions checks the headline effect: a batch of
// pipelined requests makes far fewer enclave transitions than the same
// batch served cold, and each pipelined request stays within the
// non-amortized census (Read+InHandler+Write plus 0–2 readiness
// wake-ups).
func TestSessionAmortizesTransitions(t *testing.T) {
	inst := launchTest(t)
	ctx := context.Background()
	handler := func(th *sgx.Thread) error { th.Compute(100_000); return nil }
	if _, err := inst.ServeRequest(ctx, 40, 80, handler); err != nil {
		t.Fatalf("warm: %v", err)
	}

	const batch = 8
	before := inst.Stats()
	for k := 0; k < batch; k++ {
		if _, err := inst.ServeRequest(ctx, 40, 80, handler); err != nil {
			t.Fatalf("ServeRequest %d: %v", k, err)
		}
	}
	cold := inst.Stats().Sub(before).EENTER

	sess, err := inst.OpenSession(ctx)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	before = inst.Stats()
	for k := 0; k < batch; k++ {
		reqBefore := inst.Stats()
		if _, err := sess.Serve(ctx, 40, 80, handler); err != nil {
			t.Fatalf("Serve %d: %v", k, err)
		}
		sp := inst.syscalls
		perReq := inst.Stats().Sub(reqBefore).EENTER
		min := uint64(sp.Read + sp.InHandler + sp.Write)
		if perReq < min || perReq > min+2 {
			t.Fatalf("session request %d made %d EENTERs, want %d..%d", k, perReq, min, min+2)
		}
	}
	pipelined := inst.Stats().Sub(before).EENTER
	if err := sess.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	withTeardown := inst.Stats().Sub(before).EENTER

	if float64(withTeardown) > 0.6*float64(cold) {
		t.Errorf("batch of %d: %d transitions on session (+teardown) vs %d cold; want ≥40%% reduction",
			batch, withTeardown, cold)
	}
	t.Logf("batch=%d cold=%d session=%d (+close=%d)", batch, cold, pipelined, withTeardown)
}

func TestSessionClosedAndLifecycleErrors(t *testing.T) {
	inst := launchTest(t)
	ctx := context.Background()
	sess, err := inst.OpenSession(ctx)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if _, err := sess.Serve(ctx, 10, 10, func(*sgx.Thread) error { return nil }); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Serve on closed session = %v, want ErrSessionClosed", err)
	}
	inst.Shutdown()
	if _, err := inst.OpenSession(ctx); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("OpenSession after Shutdown = %v, want ErrNotRunning", err)
	}
}

// TestDoPinsCallerAccount pins the satellite fix: maintenance work run
// through Do must be charged to the caller's account, same as
// ServeRequest.
func TestDoPinsCallerAccount(t *testing.T) {
	inst := launchTest(t)
	acct := &simclock.Account{}
	ctx := simclock.WithAccount(context.Background(), acct)
	before := inst.Stats()
	err := inst.Do(ctx, func(th *sgx.Thread) error {
		th.Compute(250_000)
		th.OCall(1_000, 16, 16)
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if d := inst.Stats().Sub(before); d.OCALLs != 1 {
		t.Fatalf("Do OCALL delta = %d, want 1", d.OCALLs)
	}
	if acct.Total() < 250_000 {
		t.Fatalf("caller account charged %d cycles, want ≥ the 250k compute", acct.Total())
	}
}

// TestDoBatchOneTransitionPair pins the batch-ECALL contract: K units of
// work inside DoBatch cost K× the compute but exactly one EENTER/EEXIT
// pair (plus whatever OCALLs the body itself makes — none here).
func TestDoBatchOneTransitionPair(t *testing.T) {
	mf := DefaultManifest("/app/eudm-aka")
	mf.MaxThreads = HelperThreads + 2 // spare TCS slot for the batch entry
	si, err := BuildShielded(testImage(), mf, testSignKey(t))
	if err != nil {
		t.Fatalf("BuildShielded: %v", err)
	}
	inst, err := Launch(context.Background(), testPlatform(t), si)
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer inst.Shutdown()

	acct := &simclock.Account{}
	ctx := simclock.WithAccount(context.Background(), acct)
	before := inst.Stats()
	const k = 16
	err = inst.DoBatch(ctx, k*64, k*128, func(th *sgx.Thread) error {
		for j := 0; j < k; j++ {
			th.Compute(50_000)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("DoBatch: %v", err)
	}
	d := inst.Stats().Sub(before)
	if d.EENTER != 1 || d.EEXIT != 1 {
		t.Fatalf("DoBatch transitions = EENTER %d / EEXIT %d, want 1/1", d.EENTER, d.EEXIT)
	}
	if acct.Total() < k*50_000 {
		t.Fatalf("batch charged %d cycles to caller, want ≥ %d", acct.Total(), k*50_000)
	}

	inst.Shutdown()
	if err := inst.DoBatch(ctx, 1, 1, func(*sgx.Thread) error { return nil }); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("DoBatch after Shutdown = %v, want ErrNotRunning", err)
	}
}
