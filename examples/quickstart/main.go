// Quickstart: deploy an SGX-shielded 5G slice, register a UE through the
// P-AKA modules, establish a data session, and push a packet end to end —
// the minimal happy path of the library.
package main

import (
	"context"
	"crypto/rand"
	"fmt"
	"os"
	"time"

	"shield5g"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()

	// Deploy a slice with the AKA functions inside SGX enclaves. This
	// pays the full GSC build + enclave load cost in virtual time (the
	// paper's Fig. 7: just under a minute per module).
	tb, err := shield5g.NewTestbed(ctx, shield5g.SliceConfig{
		Isolation: shield5g.SGX,
		MCC:       "001", MNC: "01",
		Seed: 42,
	})
	if err != nil {
		return err
	}
	defer tb.Close()
	for _, kind := range []shield5g.ModuleKind{shield5g.EUDM, shield5g.EAUSF, shield5g.EAMF} {
		m := tb.Slice.Modules[kind]
		fmt.Printf("%s P-AKA module shielded: enclave load %v (virtual)\n",
			kind, m.LoadDuration().Round(time.Millisecond))
	}

	// Provision a subscriber: the long-term key K goes to the UDR and
	// into the eUDM enclave; it never appears in plaintext host memory
	// again.
	k := make([]byte, 16)
	if _, err := rand.Read(k); err != nil {
		return err
	}
	sub, err := tb.AddSubscriber(ctx, k, nil)
	if err != nil {
		return err
	}
	fmt.Printf("subscriber provisioned: %s\n", sub.SUPI.String())

	// Full 5G-AKA registration through the shielded modules.
	sess, err := tb.Register(ctx, sub)
	if err != nil {
		return err
	}
	guti, _ := sub.UE.GUTI()
	fmt.Printf("registered in %v (virtual): GUTI %s\n", sess.SetupTime.Round(time.Microsecond), guti)

	// Data session through SMF/UPF.
	if err := sess.EstablishPDUSession(ctx, 1, "internet"); err != nil {
		return err
	}
	echo, err := sess.SendData(ctx, []byte("hello through the shielded core"))
	if err != nil {
		return err
	}
	fmt.Printf("PDU session up: UE address %s, echo %q\n", sub.UE.UEAddress(), echo)
	return nil
}
