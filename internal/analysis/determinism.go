package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism enforces the replay contract of DESIGN.md §5: simulated
// paths measure virtual time through simclock and draw noise from
// seeded Jitter streams, never from the wall clock or the global
// math/rand state. Wall-clock use is legal only where annotated
// (//shieldlint:wallclock <why>) — the realtime Realizer's calibrated
// spin-wait, real mTLS certificate lifetimes, and the wall-vs-virtual
// throughput split reported by the mass-registration driver.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock time and global math/rand on simulated paths",
	Run:  runDeterminism,
}

// bannedTimeFuncs are the package-level time functions that read or
// wait on the wall clock. Conversions and Duration/Time methods are
// pure and stay allowed.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// allowedRandFuncs construct seeded generators; everything else at
// math/rand package level touches the shared global source.
var allowedRandFuncs = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

func runDeterminism(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods (e.g. *rand.Rand, time.Duration) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if bannedTimeFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock on a simulated path; use the simclock virtual clock (Env.Clock / Clock.Now) or annotate the site: //shieldlint:wallclock <why>",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !allowedRandFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"%s.%s draws from the global math/rand source, which breaks seeded replay; use a seeded generator (simclock.Jitter / Jitter.Stream) or annotate the site: //shieldlint:ignore determinism <why>",
						fn.Pkg().Path(), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
