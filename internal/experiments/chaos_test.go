package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestChaosConvergesAndIsDeterministic is the acceptance check of the
// fault-injection sweep: at seeded fault rates up to 10% the mass
// registration converges to >=99% success through retries, the rate-0
// point sees no faults at all, and replaying the harshest point with the
// same seeds reproduces bit-identical outcome counts.
func TestChaosConvergesAndIsDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Iterations: 40}
	r, err := Chaos(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Chaos: %v", err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(r.Points))
	}

	zero := r.Points[0]
	if zero.Rate != 0 || len(zero.Injected) != 0 || zero.Attempts != r.UEs {
		t.Errorf("rate-0 point not clean: injected=%v attempts=%d (want %d)",
			zero.Injected, zero.Attempts, r.UEs)
	}
	if zero.Registered != r.UEs {
		t.Errorf("rate-0 registered = %d, want %d", zero.Registered, r.UEs)
	}

	for _, p := range r.Points {
		if p.SuccessPct < 99 {
			t.Errorf("rate %.2f success = %.1f%%, want >= 99%%", p.Rate, p.SuccessPct)
		}
	}

	last := r.Points[len(r.Points)-1]
	if len(last.Injected) == 0 {
		t.Error("10%% point injected no faults")
	}
	if last.Recovered == 0 {
		t.Error("10%% point recovered no failed attempts (retries never engaged)")
	}
	// The fault schedule is deterministic for this seed: it includes
	// whole-module crashes, so the crash/redeploy/re-attest path must
	// have run — and every affected UE still registered (checked above).
	if last.Restarts == 0 {
		t.Error("10%% point saw no module restarts (crash faults never engaged)")
	}
	if !r.Deterministic {
		t.Error("same-seed replay diverged: determinism contract broken")
	}

	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Fault injection") {
		t.Fatal("render missing header")
	}
	buf.Reset()
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if !strings.Contains(buf.String(), "success_pct") {
		t.Fatal("CSV missing header")
	}
}
