GO ?= go

.PHONY: all build test race vet bench ci experiments examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Static checks plus a focused race pass over the fault-injection,
# mass-registration, and enclave-runtime paths (parallel drivers,
# injector, resilience layer, keep-alive sessions, TCS pool).
vet:
	$(GO) vet ./...
	$(GO) test -race ./internal/chaos/ ./internal/sbi/ ./internal/gnb/ ./internal/deploy/ ./internal/paka/

bench:
	BENCH_JSON=$(CURDIR)/BENCH_parallel_registration.json \
	BENCH_CHAOS_JSON=$(CURDIR)/BENCH_chaos_registration.json \
	BENCH_BATCHED_JSON=$(CURDIR)/BENCH_batched_transitions.json \
	$(GO) test -bench=. -benchmem ./...

# What CI runs: build, the race-enabled test suite, static checks, and a
# single-iteration smoke of the boundary-amortization benchmark (its
# >=40% transition-reduction assertion runs on deterministic virtual
# counts, so one iteration is a stable gate).
ci: build
	$(GO) test -race ./...
	$(MAKE) vet
	$(GO) test -run '^$$' -bench RegisterManyBatched -benchtime=1x .

# Regenerate every table and figure of the paper (500 samples each).
experiments:
	$(GO) run ./cmd/experiments all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/slicebench
	$(GO) run ./examples/introspection
	$(GO) run ./examples/attestation
	$(GO) run ./examples/ota

clean:
	$(GO) clean ./...
