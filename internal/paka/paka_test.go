package paka

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"shield5g/internal/costmodel"
	"shield5g/internal/crypto/kdf"
	"shield5g/internal/crypto/milenage"
	"shield5g/internal/hmee/sgx"
	"shield5g/internal/sbi"
	"shield5g/internal/simclock"
)

var (
	testK    = []byte{0x46, 0x5b, 0x5c, 0xe8, 0xb1, 0x99, 0xb4, 0x9f, 0xaa, 0x5f, 0x0a, 0x2e, 0xe2, 0x38, 0xa6, 0xbc}
	testOPc  = []byte{0xcd, 0x63, 0xcb, 0x71, 0x95, 0x4a, 0x9f, 0x4e, 0x48, 0xa5, 0x99, 0x4e, 0x37, 0xa0, 0x2b, 0xaf}
	testRAND = []byte{0x23, 0x55, 0x3c, 0xbe, 0x96, 0x37, 0xa8, 0x9d, 0x21, 0x8a, 0xe6, 0x4d, 0xae, 0x47, 0xbf, 0x35}
	testSQN  = []byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x21}
	testAMF  = []byte{0x80, 0x00}
	testSNN  = "5G:mnc001.mcc001.3gppnetwork.org"
	testSUPI = "imsi-001010000000001"
)

func avRequest() *UDMGenerateAVRequest {
	return &UDMGenerateAVRequest{
		SUPI:  testSUPI,
		OPc:   testOPc,
		RAND:  testRAND,
		SQN:   testSQN,
		AMFID: testAMF,
		SNN:   testSNN,
	}
}

func TestGenerateAVMatchesDirectDerivation(t *testing.T) {
	resp, err := GenerateAV(testK, avRequest())
	if err != nil {
		t.Fatalf("GenerateAV: %v", err)
	}
	if len(resp.RAND) != 16 || len(resp.AUTN) != 16 || len(resp.XRESStar) != 16 || len(resp.KAUSF) != 32 {
		t.Fatalf("output sizes wrong: %d %d %d %d", len(resp.RAND), len(resp.AUTN), len(resp.XRESStar), len(resp.KAUSF))
	}

	// Re-derive with the primitives and compare.
	c, err := milenage.New(testK, testOPc)
	if err != nil {
		t.Fatalf("milenage.New: %v", err)
	}
	res, ck, ik, ak, err := c.F2345(testRAND)
	if err != nil {
		t.Fatalf("F2345: %v", err)
	}
	sqnAK, err := kdf.XorSQNAK(testSQN, ak)
	if err != nil {
		t.Fatalf("XorSQNAK: %v", err)
	}
	wantXRES, err := kdf.ResStar(ck, ik, testSNN, testRAND, res)
	if err != nil {
		t.Fatalf("ResStar: %v", err)
	}
	if !bytes.Equal(resp.XRESStar, wantXRES) {
		t.Fatal("XRES* mismatch")
	}
	wantKAUSF, err := kdf.KAUSF(ck, ik, testSNN, sqnAK)
	if err != nil {
		t.Fatalf("KAUSF: %v", err)
	}
	if !bytes.Equal(resp.KAUSF, wantKAUSF) {
		t.Fatal("K_AUSF mismatch")
	}
	// AUTN structure: SQN^AK || AMF || MAC-A.
	gotSQNAK, gotAMF, _, err := kdf.SplitAUTN(resp.AUTN)
	if err != nil {
		t.Fatalf("SplitAUTN: %v", err)
	}
	if !bytes.Equal(gotSQNAK, sqnAK) || !bytes.Equal(gotAMF, testAMF) {
		t.Fatal("AUTN structure wrong")
	}
}

func TestGenerateAVBadInputs(t *testing.T) {
	req := avRequest()
	req.OPc = req.OPc[:8]
	if _, err := GenerateAV(testK, req); err == nil {
		t.Fatal("short OPc accepted")
	}
	req = avRequest()
	req.SQN = nil
	if _, err := GenerateAV(testK, req); err == nil {
		t.Fatal("nil SQN accepted")
	}
	if _, err := GenerateAV(testK[:4], avRequest()); err == nil {
		t.Fatal("short K accepted")
	}
}

func TestResyncRoundTrip(t *testing.T) {
	// Build an AUTS the way a UE would (TS 33.102 §6.3.3).
	c, err := milenage.New(testK, testOPc)
	if err != nil {
		t.Fatalf("milenage.New: %v", err)
	}
	sqnMS := []byte{0x00, 0x00, 0x00, 0x00, 0x01, 0x42}
	akStar, err := c.F5Star(testRAND)
	if err != nil {
		t.Fatalf("F5Star: %v", err)
	}
	concealed, err := kdf.XorSQNAK(sqnMS, akStar)
	if err != nil {
		t.Fatalf("XorSQNAK: %v", err)
	}
	macS, err := c.F1Star(testRAND, sqnMS, []byte{0, 0})
	if err != nil {
		t.Fatalf("F1Star: %v", err)
	}
	auts := append(append([]byte{}, concealed...), macS...)

	resp, err := Resync(testK, &UDMResyncRequest{SUPI: testSUPI, OPc: testOPc, RAND: testRAND, AUTS: auts})
	if err != nil {
		t.Fatalf("Resync: %v", err)
	}
	if !bytes.Equal(resp.SQNMS, sqnMS) {
		t.Fatalf("SQN_MS = %x, want %x", resp.SQNMS, sqnMS)
	}

	// Tampered AUTS must fail.
	auts[13] ^= 1
	if _, err := Resync(testK, &UDMResyncRequest{SUPI: testSUPI, OPc: testOPc, RAND: testRAND, AUTS: auts}); !errors.Is(err, ErrResyncMAC) {
		t.Fatalf("tampered AUTS err = %v, want ErrResyncMAC", err)
	}
	if _, err := Resync(testK, &UDMResyncRequest{OPc: testOPc, RAND: testRAND, AUTS: auts[:10]}); err == nil {
		t.Fatal("short AUTS accepted")
	}
}

func TestDeriveSEAndKAMFChain(t *testing.T) {
	av, err := GenerateAV(testK, avRequest())
	if err != nil {
		t.Fatalf("GenerateAV: %v", err)
	}
	se, err := DeriveSE(&AUSFDeriveSERequest{RAND: av.RAND, XRESStar: av.XRESStar, KAUSF: av.KAUSF, SNN: testSNN})
	if err != nil {
		t.Fatalf("DeriveSE: %v", err)
	}
	if len(se.HXRESStar) != 16 || len(se.KSEAF) != 32 {
		t.Fatalf("SE sizes: %d %d", len(se.HXRESStar), len(se.KSEAF))
	}
	wantHX, err := kdf.HXResStar(av.RAND, av.XRESStar)
	if err != nil {
		t.Fatalf("HXResStar: %v", err)
	}
	if !bytes.Equal(se.HXRESStar, wantHX) {
		t.Fatal("HXRES* mismatch")
	}

	amf, err := DeriveKAMF(&AMFDeriveKAMFRequest{KSEAF: se.KSEAF, SUPI: testSUPI, ABBA: []byte{0, 0}})
	if err != nil {
		t.Fatalf("DeriveKAMF: %v", err)
	}
	wantKAMF, err := kdf.KAMF(se.KSEAF, testSUPI, []byte{0, 0})
	if err != nil {
		t.Fatalf("KAMF: %v", err)
	}
	if !bytes.Equal(amf.KAMF, wantKAMF) {
		t.Fatal("K_AMF mismatch")
	}

	if _, err := DeriveSE(&AUSFDeriveSERequest{RAND: av.RAND[:3], XRESStar: av.XRESStar, KAUSF: av.KAUSF}); err == nil {
		t.Fatal("short RAND accepted")
	}
	if _, err := DeriveKAMF(&AMFDeriveKAMFRequest{KSEAF: se.KSEAF[:3]}); err == nil {
		t.Fatal("short K_SEAF accepted")
	}
}

// --- module deployment tests ---

type harness struct {
	env      *costmodel.Env
	platform *sgx.Platform
	registry *sbi.Registry
	client   *sbi.Client
}

func newHarness(t *testing.T, seed uint64) *harness {
	t.Helper()
	env := costmodel.NewEnv(nil, seed, nil)
	p, err := sgx.NewPlatform(sgx.PlatformConfig{Seed: seed})
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	reg := sbi.NewRegistry()
	return &harness{
		env:      env,
		platform: p,
		registry: reg,
		client:   sbi.NewClient("udm", env, reg),
	}
}

func (h *harness) module(t *testing.T, kind ModuleKind, iso Isolation) *Module {
	t.Helper()
	m, err := New(context.Background(), Config{
		Kind:      kind,
		Isolation: iso,
		Env:       h.env,
		Platform:  h.platform,
		Registry:  h.registry,
	})
	if err != nil {
		t.Fatalf("New(%s, %s): %v", kind, iso, err)
	}
	t.Cleanup(m.Stop)
	return m
}

func TestModuleConfigValidation(t *testing.T) {
	h := newHarness(t, 1)
	if _, err := New(context.Background(), Config{Kind: ModuleKind(99), Isolation: Container, Env: h.env, Registry: h.registry}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := New(context.Background(), Config{Kind: EUDM, Isolation: Container, Registry: h.registry}); err == nil {
		t.Fatal("nil env accepted")
	}
	if _, err := New(context.Background(), Config{Kind: EUDM, Isolation: Container, Env: h.env}); err == nil {
		t.Fatal("nil registry accepted")
	}
	if _, err := New(context.Background(), Config{Kind: EUDM, Isolation: SGX, Env: h.env, Registry: h.registry}); err == nil {
		t.Fatal("SGX without platform accepted")
	}
	if _, err := New(context.Background(), Config{Kind: EUDM, Isolation: Monolithic, Env: h.env, Registry: h.registry}); err == nil {
		t.Fatal("monolithic module accepted")
	}
	// Thread counts below Gramine's minimum must be rejected.
	if _, err := New(context.Background(), Config{Kind: EUDM, Isolation: SGX, Env: h.env, Platform: h.platform, Registry: h.registry, MaxThreads: 2}); err == nil {
		t.Fatal("2-thread SGX module accepted")
	}
}

func TestEUDMModuleEndToEnd(t *testing.T) {
	for _, iso := range []Isolation{Container, SGX} {
		t.Run(iso.String(), func(t *testing.T) {
			h := newHarness(t, 2)
			m := h.module(t, EUDM, iso)
			if err := m.ProvisionSubscriber(context.Background(), testSUPI, testK); err != nil {
				t.Fatalf("ProvisionSubscriber: %v", err)
			}
			udm := NewRemoteUDM(h.client, h.env)
			resp, err := udm.GenerateAV(context.Background(), avRequest())
			if err != nil {
				t.Fatalf("GenerateAV: %v", err)
			}
			want, err := GenerateAV(testK, avRequest())
			if err != nil {
				t.Fatalf("direct GenerateAV: %v", err)
			}
			if !bytes.Equal(resp.XRESStar, want.XRESStar) || !bytes.Equal(resp.KAUSF, want.KAUSF) {
				t.Fatal("module output differs from direct derivation")
			}
			if m.FunctionalLatency().N() != 1 || m.TotalLatency().N() != 1 {
				t.Fatal("latency recorders not fed")
			}
			if udm.Response().Initial.N() != 1 {
				t.Fatal("initial response not recorded")
			}
		})
	}
}

func TestEUDMUnknownSubscriber(t *testing.T) {
	h := newHarness(t, 3)
	h.module(t, EUDM, Container)
	udm := NewRemoteUDM(h.client, h.env)
	_, err := udm.GenerateAV(context.Background(), avRequest())
	var pd *sbi.ProblemDetails
	if !errors.As(err, &pd) || pd.Status != 404 {
		t.Fatalf("err = %v, want 404", err)
	}
}

func TestModuleMemoryDumpContainerLeaksSGXDoesNot(t *testing.T) {
	h := newHarness(t, 4)

	plain := h.module(t, EUDM, Container)
	if err := plain.ProvisionSubscriber(context.Background(), testSUPI, testK); err != nil {
		t.Fatalf("provision: %v", err)
	}
	dump := plain.MemoryDump()
	if len(dump) != 1 {
		t.Fatalf("container dump regions = %d", len(dump))
	}
	for _, data := range dump {
		if !bytes.Equal(data, testK) {
			t.Fatal("container dump should reveal the plaintext key")
		}
	}
	plain.Stop()

	h2 := newHarness(t, 5)
	shielded := h2.module(t, EUDM, SGX)
	if err := shielded.ProvisionSubscriber(context.Background(), testSUPI, testK); err != nil {
		t.Fatalf("provision: %v", err)
	}
	for _, data := range shielded.MemoryDump() {
		if bytes.Equal(data, testK) || bytes.Contains(data, testK[:8]) {
			t.Fatal("SGX dump leaked the plaintext key")
		}
	}
	if shielded.Enclave() == nil {
		t.Fatal("SGX module has no enclave handle")
	}
	if plainEnclave := plain.Enclave(); plainEnclave != nil {
		t.Fatal("container module has an enclave handle")
	}
}

func TestProvisionOnNonUDMModuleFails(t *testing.T) {
	h := newHarness(t, 6)
	m := h.module(t, EAUSF, Container)
	if err := m.ProvisionSubscriber(context.Background(), testSUPI, testK); err == nil {
		t.Fatal("provisioning into eAUSF accepted")
	}
}

func TestAUSFAndAMFModulesServe(t *testing.T) {
	h := newHarness(t, 7)
	h.module(t, EAUSF, SGX)
	h.module(t, EAMF, SGX)

	av, err := GenerateAV(testK, avRequest())
	if err != nil {
		t.Fatalf("GenerateAV: %v", err)
	}
	ausf := NewRemoteAUSF(h.client, h.env)
	se, err := ausf.DeriveSE(context.Background(), &AUSFDeriveSERequest{RAND: av.RAND, XRESStar: av.XRESStar, KAUSF: av.KAUSF, SNN: testSNN})
	if err != nil {
		t.Fatalf("DeriveSE: %v", err)
	}
	amf := NewRemoteAMF(h.client, h.env)
	kamf, err := amf.DeriveKAMF(context.Background(), &AMFDeriveKAMFRequest{KSEAF: se.KSEAF, SUPI: testSUPI, ABBA: []byte{0, 0}})
	if err != nil {
		t.Fatalf("DeriveKAMF: %v", err)
	}
	if len(kamf.KAMF) != 32 {
		t.Fatalf("K_AMF length = %d", len(kamf.KAMF))
	}
}

func TestMonolithicMatchesModule(t *testing.T) {
	env := costmodel.NewEnv(nil, 8, nil)
	mono := NewMonolithicUDM(env)
	mono.ProvisionSubscriber(testSUPI, testK)
	got, err := mono.GenerateAV(context.Background(), avRequest())
	if err != nil {
		t.Fatalf("monolithic GenerateAV: %v", err)
	}
	want, err := GenerateAV(testK, avRequest())
	if err != nil {
		t.Fatalf("direct: %v", err)
	}
	if !bytes.Equal(got.KAUSF, want.KAUSF) {
		t.Fatal("monolithic derivation differs")
	}
	if _, err := mono.GenerateAV(context.Background(), &UDMGenerateAVRequest{SUPI: "imsi-unknown"}); !errors.Is(err, ErrUnknownSubscriber) {
		t.Fatalf("unknown subscriber err = %v", err)
	}

	ausf := NewMonolithicAUSF(env)
	if _, err := ausf.DeriveSE(context.Background(), &AUSFDeriveSERequest{RAND: want.RAND, XRESStar: want.XRESStar, KAUSF: want.KAUSF, SNN: testSNN}); err != nil {
		t.Fatalf("monolithic DeriveSE: %v", err)
	}
	amf := NewMonolithicAMF(env)
	if _, err := amf.DeriveKAMF(context.Background(), &AMFDeriveKAMFRequest{KSEAF: make([]byte, 32), SUPI: testSUPI}); err != nil {
		t.Fatalf("monolithic DeriveKAMF: %v", err)
	}

	// Monolithic calls charge functional compute to the account.
	var acct simclock.Account
	ctx := simclock.WithAccount(context.Background(), &acct)
	if _, err := mono.GenerateAV(ctx, avRequest()); err != nil {
		t.Fatalf("GenerateAV: %v", err)
	}
	if acct.Total() == 0 {
		t.Fatal("monolithic call charged nothing")
	}
}

func TestKindAndIsolationStrings(t *testing.T) {
	if EUDM.String() != "eUDM" || EAUSF.String() != "eAUSF" || EAMF.String() != "eAMF" {
		t.Fatal("kind names wrong")
	}
	if ModuleKind(0).String() != "unknown" || ModuleKind(0).ServiceName() != "unknown-paka" {
		t.Fatal("unknown kind names wrong")
	}
	if Monolithic.String() != "monolithic" || Container.String() != "container" || SGX.String() != "sgx" {
		t.Fatal("isolation names wrong")
	}
	if Isolation(9).String() != "unknown" {
		t.Fatal("unknown isolation name wrong")
	}
	if len(Kinds()) != 3 {
		t.Fatal("Kinds() wrong")
	}
}

func TestModuleAccessors(t *testing.T) {
	h := newHarness(t, 9)
	m := h.module(t, EUDM, SGX)
	if m.Kind() != EUDM || m.Isolation() != SGX || m.ServiceName() != "eudm-paka" {
		t.Fatal("accessors wrong")
	}
	if m.Profile().InBytes != 40 {
		t.Fatal("profile not exposed")
	}
	if m.Warm() {
		t.Fatal("module warm before first request")
	}
	if m.LoadDuration() <= 0 {
		t.Fatal("no load duration")
	}
	m.AccrueUptime(0)
	m.ResetRecorders()
}
