package nas

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Property: Decode never panics on arbitrary byte strings — it either
// parses a message or returns an error. NAS parsers face attacker-chosen
// input at the network edge.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %x: %v", data, r)
			}
		}()
		msg, err := Decode(data)
		return (msg != nil) != (err != nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Decode on well-formed prefixes with flipped bytes still never
// panics (more likely to reach deep field parsing than pure noise).
func TestDecodeMutatedMessagesNeverPanic(t *testing.T) {
	seed, err := Encode(&RegistrationRequest{
		RegistrationType: RegistrationInitial,
		Identity:         MobileIdentity{GUTI: &GUTI{MCC: "001", MNC: "01", TMSI: 7}},
		Capabilities:     []byte{1, 2, 3},
	})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	f := func(pos uint16, val byte, trunc uint8) bool {
		data := append([]byte(nil), seed...)
		data[int(pos)%len(data)] ^= val
		if int(trunc) < len(data) {
			data = data[:len(data)-int(trunc)%len(data)]
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %x: %v", data, r)
			}
		}()
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Unprotect never panics on arbitrary input and never yields a
// message for forged bytes.
func TestUnprotectNeverPanicsOrForges(t *testing.T) {
	sc, err := NewSecurityContext(bytes.Repeat([]byte{0x42}, 32))
	if err != nil {
		t.Fatalf("NewSecurityContext: %v", err)
	}
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Unprotect panicked on %x: %v", data, r)
			}
		}()
		msg, err := sc.Unprotect(data, true)
		// Forging a valid 32-bit MAC by chance is ~2^-32; quick's 2000
		// samples cannot hit it.
		return msg == nil && err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
