package sgx

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
)

// ErrUnseal reports sealed data that cannot be opened by this enclave —
// wrong platform, wrong enclave identity, or tampered ciphertext.
var ErrUnseal = errors.New("sgx: unseal failed")

// sealKey derives the enclave's sealing key: bound to both the platform
// root (CPU fuse key analogue) and the enclave measurement (MRENCLAVE
// policy), so only the same code on the same machine can unseal.
func (e *Enclave) sealKey() []byte {
	mac := hmac.New(sha256.New, e.platform.sealRoot[:])
	mac.Write([]byte("seal"))
	mac.Write(e.measurement[:])
	return mac.Sum(nil)
}

// Seal encrypts data so that only an enclave with the same measurement on
// the same platform can recover it. This is the mechanism the paper points
// to for Key Issue 27: shipping NF container images without plaintext
// credentials.
func (e *Enclave) Seal(plaintext, additionalData []byte) ([]byte, error) {
	if err := e.live(); err != nil {
		return nil, err
	}
	aead, err := newSealAEAD(e.sealKey())
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("sgx: seal nonce: %w", err)
	}
	out := aead.Seal(nonce, nonce, plaintext, additionalData)
	return out, nil
}

// Unseal reverses Seal. It returns ErrUnseal when the blob was sealed by a
// different enclave identity or platform, or was modified.
func (e *Enclave) Unseal(blob, additionalData []byte) ([]byte, error) {
	if err := e.live(); err != nil {
		return nil, err
	}
	aead, err := newSealAEAD(e.sealKey())
	if err != nil {
		return nil, err
	}
	if len(blob) < aead.NonceSize() {
		return nil, fmt.Errorf("%w: blob too short", ErrUnseal)
	}
	nonce, ct := blob[:aead.NonceSize()], blob[aead.NonceSize():]
	plain, err := aead.Open(nil, nonce, ct, additionalData)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnseal, err)
	}
	return plain, nil
}

func newSealAEAD(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key[:16])
	if err != nil {
		return nil, fmt.Errorf("sgx: seal cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("sgx: seal AEAD: %w", err)
	}
	return aead, nil
}
