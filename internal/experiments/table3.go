package experiments

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"io"
	"time"

	"shield5g/internal/deploy"
	"shield5g/internal/hmee/gramine"
	"shield5g/internal/hmee/sgx"
	"shield5g/internal/paka"
)

// moduleUptime and emptyUptime are the modelled residency windows of the
// stats-collection runs; together with the 250 Hz per-thread timer rate
// they reproduce Table III's AEX populations (~140k for the served
// modules, ~50k for the empty workload).
const (
	moduleUptime = 140 * time.Second
	emptyUptime  = 50 * time.Second
)

// Table3Row is one (module, #UEs) statistics row.
type Table3Row struct {
	Module  string
	UEs     int
	EENTERs uint64
	EEXITs  uint64
	AEXs    uint64
}

// Table3Result is the SGX operation statistics table.
type Table3Result struct {
	Rows []Table3Row
	// Empty is the GSC empty-workload baseline row.
	Empty Table3Row
	// PerUE is the derived EENTER/EEXIT delta per registration.
	PerUE map[paka.ModuleKind]uint64
}

// Table3 registers 1..N UEs back to back through SGX-isolated slices and
// collects the enclave operation counters, plus an empty-workload GSC
// baseline — the paper's §V-B5 methodology.
func Table3(ctx context.Context, cfg Config) (*Table3Result, error) {
	maxUEs := cfg.MaxUEs
	if maxUEs <= 0 {
		maxUEs = 3
	}
	result := &Table3Result{PerUE: make(map[paka.ModuleKind]uint64)}

	perUEcounts := make(map[paka.ModuleKind][]uint64)
	for ues := 1; ues <= maxUEs; ues++ {
		s, err := deploy.NewSlice(ctx, deploy.SliceConfig{Isolation: paka.SGX, Seed: cfg.Seed + uint64(ues)})
		if err != nil {
			return nil, err
		}
		before := make(map[paka.ModuleKind]uint64)
		for kind, m := range s.Modules {
			before[kind] = m.Stats().EENTER
		}
		for i := 0; i < ues; i++ {
			device, err := sliceSubscriber(ctx, s, fmt.Sprintf("%010d", 3000+i))
			if err != nil {
				s.Stop()
				return nil, err
			}
			after := make(map[paka.ModuleKind]uint64)
			if _, err := s.GNB.RegisterUE(ctx, device); err != nil {
				s.Stop()
				return nil, err
			}
			for kind, m := range s.Modules {
				after[kind] = m.Stats().EENTER
				if i > 0 { // steady-state delta (skip the warm-up request)
					perUEcounts[kind] = append(perUEcounts[kind], after[kind]-before[kind])
				}
				before[kind] = after[kind]
			}
		}
		for _, kind := range paka.Kinds() {
			m := s.Modules[kind]
			m.AccrueUptime(moduleUptime)
			st := m.Stats()
			result.Rows = append(result.Rows, Table3Row{
				Module:  kind.String(),
				UEs:     ues,
				EENTERs: st.EENTER,
				EEXITs:  st.EEXIT,
				AEXs:    st.AEX,
			})
		}
		s.Stop()
	}

	for kind, deltas := range perUEcounts {
		var sum uint64
		for _, d := range deltas {
			sum += d
		}
		if len(deltas) > 0 {
			result.PerUE[kind] = sum / uint64(len(deltas))
		}
	}

	empty, err := emptyWorkload(ctx, cfg)
	if err != nil {
		return nil, err
	}
	result.Empty = *empty
	return result, nil
}

// emptyWorkload launches a GSC container with no server traffic — the
// paper's baseline for the cost of GSC itself.
func emptyWorkload(ctx context.Context, cfg Config) (*Table3Row, error) {
	platform, err := sgx.NewPlatform(sgx.PlatformConfig{Seed: cfg.Seed + 999})
	if err != nil {
		return nil, err
	}
	_, key, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	si, err := gramine.BuildShielded(gramine.ContainerImage{
		Name:  "empty-workload:latest",
		Files: []gramine.ImageFile{{Path: "/bin/sleep", Size: 1_000_000}},
	}, gramine.DefaultManifest("/bin/sleep"), key)
	if err != nil {
		return nil, err
	}
	inst, err := gramine.Launch(ctx, platform, si, gramine.WithoutServer())
	if err != nil {
		return nil, err
	}
	defer inst.Shutdown()
	inst.AccrueUptime(emptyUptime)
	st := inst.Stats()
	return &Table3Row{Module: "Empty workload", EENTERs: st.EENTER, EEXITs: st.EEXIT, AEXs: st.AEX}, nil
}

// Render prints the paper-style Table III.
func (r *Table3Result) Render(w io.Writer) {
	fprintf(w, "Table III: SGX specific operational statistics\n")
	fprintf(w, "%-16s %6s %10s %10s %10s\n", "module", "#UEs", "EENTERs", "EEXITs", "AEXs")
	for _, kind := range paka.Kinds() {
		for i := len(r.Rows) - 1; i >= 0; i-- {
			row := r.Rows[i]
			if row.Module == kind.String() {
				fprintf(w, "%-16s %6d %10d %10d %10d\n", row.Module, row.UEs, row.EENTERs, row.EEXITs, row.AEXs)
			}
		}
	}
	fprintf(w, "%-16s %6s %10d %10d %10d\n", r.Empty.Module, "-", r.Empty.EENTERs, r.Empty.EEXITs, r.Empty.AEXs)
	for _, kind := range paka.Kinds() {
		fprintf(w, "per-UE EENTER delta (%s): ~%d (paper: ~90)\n", kind, r.PerUE[kind])
	}
}
