GO ?= go

.PHONY: all build test race lint vet bench bench-compare storm-bench shard-bench ci experiments examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The repository's own static-analysis suite (see internal/analysis):
# determinism, secretflow, atomiccounter, ctxcarry, stripemap, hotalloc,
# planeboundary, poolowner, lockorder. Exits non-zero on any
# unsuppressed finding. govulncheck runs when the host has it installed
# (CI does); locally it is skipped rather than fetched, keeping the
# target usable in network-free build environments.
lint:
	$(GO) run ./tools/shieldlint ./...
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI runs it)"; \
	fi

race:
	$(GO) test -race ./...

# Static checks plus a focused race pass over the fault-injection,
# mass-registration, and enclave-runtime paths (parallel drivers,
# injector, resilience layer, overload limiter + admission buckets,
# keep-alive sessions, TCS pool, switchless ring + dispatcher).
vet:
	$(GO) vet ./...
	$(GO) test -race ./internal/chaos/ ./internal/sbi/ ./internal/gnb/ ./internal/deploy/ ./internal/paka/ ./internal/admission/ ./internal/topology/ ./internal/nf/nrf/topo/ ./internal/hmee/sgx/ ./internal/hmee/gramine/

bench:
	BENCH_JSON=$(CURDIR)/BENCH_parallel_registration.json \
	BENCH_CHAOS_JSON=$(CURDIR)/BENCH_chaos_registration.json \
	BENCH_BATCHED_JSON=$(CURDIR)/BENCH_batched_transitions.json \
	BENCH_HOTPATH_JSON=$(CURDIR)/BENCH_hotpath_allocs.json \
	$(GO) test -bench=. -benchmem ./...

# Allocation-regression gate: one deterministic iteration of the hot-path
# benchmark, diffed against the committed baseline. Only virtual-time and
# allocation metrics are in the report, so the comparison is stable
# across machines; benchdiff fails on a >10% regression in any
# lower-is-better metric (allocs/reg, bytes/reg, transitions/reg) or
# >10% drop in any higher-is-better one (virtual regs/s).
bench-compare:
	BENCH_HOTPATH_JSON=$(CURDIR)/BENCH_hotpath_allocs.candidate.json \
	$(GO) test -run '^$$' -bench BenchmarkRegisterManyBatched -benchtime 1x .
	$(GO) run ./tools/benchdiff testdata/bench/BENCH_hotpath_allocs.baseline.json \
	    $(CURDIR)/BENCH_hotpath_allocs.candidate.json
	rm -f $(CURDIR)/BENCH_hotpath_allocs.candidate.json

# Regenerate the committed storm-survival artifact: the signaling-storm
# sweep's per-class goodput/p99 comparison with the limiter on vs off at
# 10x overload (acceptance: >=2x emergency goodput, <5% overhead at 1x).
storm-bench:
	BENCH_STORM_JSON=$(CURDIR)/BENCH_storm_goodput.json \
	$(GO) run ./cmd/experiments -seed 7 -iterations 240 storm

# Regenerate the committed shard-scaling artifact: the replica sweep's
# fleet throughput, speedup, and allocs/reg at 1/2/4/8 replicas on the
# full fast path (acceptance: >=3x fleet speedup at 8 replicas, <100
# allocs/reg at every point, deterministic same-seed replay).
shard-bench:
	BENCH_SHARD_JSON=$(CURDIR)/BENCH_shard_scaling.json \
	$(GO) run ./cmd/experiments -seed 7 -iterations 160 shardscale

# What CI runs: lint first (cheapest signal, fails fastest), then build,
# the race-enabled test suite, static checks, a single-iteration smoke of
# the boundary-amortization benchmark (its >=40% transition-reduction
# assertion runs on deterministic virtual counts, so one iteration is a
# stable gate), a short-horizon signaling-storm smoke through the gnbsim
# CLI (open-loop replay, limiter armed — exercises the overload stack end
# to end in under a second), a short fuzz pass over the binary SBI frame
# parser, a sharded-core smoke through the gnbsim CLI (4 replicas behind
# SUPI-affinity routing with the full fast path on), a switchless-ring
# smoke through the gnbsim CLI (ring-served ECALLs on the same fast
# path), and the batched and shard-scaling allocation/throughput-
# regression gates — blocking, so a repeat of the PR-5-era batched
# inversion fails the pipeline instead of landing silently.
ci: build
	$(MAKE) lint
	$(GO) test -race ./...
	$(MAKE) vet
	$(GO) test -run '^$$' -bench RegisterManyBatched -benchtime=1x .
	$(GO) run ./cmd/gnbsim -n 40 -storm 10 -limiter -seed 7
	$(GO) run ./cmd/gnbsim -n 32 -shards 4 -batch 8 -avpool 8 -seed 9
	$(GO) run ./cmd/gnbsim -n 32 -switchless -batch 8 -avpool 8 -seed 11
	$(GO) test -run '^$$' -fuzz '^FuzzFramePayload$$' -fuzztime 5s ./internal/sbi/codec
	$(MAKE) bench-compare
	BENCH_SHARD_JSON=$(CURDIR)/BENCH_shard_scaling.candidate.json \
	$(GO) run ./cmd/experiments -seed 7 -iterations 160 shardscale
	$(GO) run ./tools/benchdiff testdata/bench/BENCH_shard_scaling.baseline.json \
	    $(CURDIR)/BENCH_shard_scaling.candidate.json
	rm -f $(CURDIR)/BENCH_shard_scaling.candidate.json

# Regenerate every table and figure of the paper (500 samples each).
experiments:
	$(GO) run ./cmd/experiments all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/slicebench
	$(GO) run ./examples/introspection
	$(GO) run ./examples/attestation
	$(GO) run ./examples/ota

clean:
	$(GO) clean ./...
