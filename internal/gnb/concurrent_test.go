package gnb_test

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"shield5g/internal/crypto/milenage"
	"shield5g/internal/crypto/suci"
	"shield5g/internal/deploy"
	"shield5g/internal/gnb"
	"shield5g/internal/paka"
	"shield5g/internal/ue"
)

// newDeterministicUE provisions subscriber 5000+i with an index-derived key
// and returns the device. Unlike the provision helper it returns errors
// instead of failing the test, so it is safe to call from worker
// goroutines.
func newDeterministicUE(s *deploy.Slice, i int) (*ue.UE, error) {
	supi := suci.SUPI{MCC: "001", MNC: "01", MSIN: fmt.Sprintf("%010d", 5000+i)}
	k := make([]byte, 16)
	k[0] = byte(i)
	k[1] = byte(i >> 8)
	k[15] = 0x5a
	opc, err := milenage.ComputeOPc(k, make([]byte, 16))
	if err != nil {
		return nil, err
	}
	if err := s.ProvisionSubscriber(context.Background(), supi, k, opc); err != nil {
		return nil, err
	}
	return ue.New(ue.Config{
		SUPI: supi, K: k, OPc: opc,
		HomeNetworkPublicKey: s.HomeNetworkKey.PublicKey(),
		HomeNetworkKeyID:     s.HomeNetworkKey.ID,
		Env:                  s.Env,
	})
}

// TestRegisterManyParallelSGX drives 200 concurrent registrations through
// a shielded (SGX) slice at parallelism 8 — the race-detector workout for
// the lock-striped core — and checks the per-registration enclave
// transition census stays at the paper's ~90 EENTER/EEXIT (Table III)
// under concurrency.
func TestRegisterManyParallelSGX(t *testing.T) {
	s, err := deploy.NewSlice(context.Background(), deploy.SliceConfig{
		Isolation: paka.SGX, Seed: 11,
	})
	if err != nil {
		t.Fatalf("NewSlice: %v", err)
	}
	defer s.Stop()

	// Warm the path first so the one-off costs (TLS handshakes, module
	// warm-up OCALLs) do not pollute the per-registration census.
	warm, err := newDeterministicUE(s, 9999)
	if err != nil {
		t.Fatalf("provision warm UE: %v", err)
	}
	if _, err := s.GNB.RegisterUE(context.Background(), warm); err != nil {
		t.Fatalf("warm RegisterUE: %v", err)
	}

	type snap struct{ eenter, eexit uint64 }
	before := make(map[paka.ModuleKind]snap)
	for k, m := range s.Modules {
		st := m.Stats()
		before[k] = snap{st.EENTER, st.EEXIT}
	}

	const n = 200
	result, err := s.GNB.RegisterManyWith(context.Background(), gnb.MassOptions{
		N:           n,
		NewUE:       func(i int) (*ue.UE, error) { return newDeterministicUE(s, i) },
		Parallelism: 8,
	})
	if err != nil {
		t.Fatalf("RegisterManyWith: %v", err)
	}
	if result.Registered != n || result.Failed != 0 {
		t.Fatalf("registered %d, failed %d (failures: %v)", result.Registered, result.Failed, result.FirstErrors)
	}
	if result.SetupTimes.N() != n {
		t.Fatalf("setup samples = %d, want %d", result.SetupTimes.N(), n)
	}
	if result.Parallelism != 8 {
		t.Fatalf("Parallelism = %d", result.Parallelism)
	}
	if result.Wall <= 0 || result.Virtual <= 0 {
		t.Fatalf("throughput window missing: wall=%v virtual=%v", result.Wall, result.Virtual)
	}
	if result.WallRegsPerSec <= 0 || result.VirtualRegsPerSec <= 0 {
		t.Fatalf("throughput rates missing: %+v", result)
	}

	// Each module serves one request per registration; the census is
	// Pre+Read+InHandler+Write+Post = 89 plus a 0–2 jig, so the mean
	// per-registration EENTER/EEXIT delta must sit tight around ~90.
	for k, m := range s.Modules {
		st := m.Stats()
		dEnter := float64(st.EENTER-before[k].eenter) / n
		dExit := float64(st.EEXIT-before[k].eexit) / n
		if dEnter < 84 || dEnter > 96 {
			t.Errorf("module %v: EENTER/registration = %.1f, want ~90", k, dEnter)
		}
		if dExit < 84 || dExit > 96 {
			t.Errorf("module %v: EEXIT/registration = %.1f, want ~90", k, dExit)
		}
	}
}

// TestRegisterManySequentialGolden pins the sequential driver's virtual
// time bit-for-bit: the quartiles below were captured from the
// pre-refactor back-to-back loop, and the refactored driver must reproduce
// them exactly for the same seeds. Any drift means the shared-jitter draw
// order changed and every calibrated figure in the paper reproduction
// shifts with it.
func TestRegisterManySequentialGolden(t *testing.T) {
	for _, tc := range []struct {
		iso         paka.Isolation
		seed        uint64
		n           int
		q1, med, q3 time.Duration
	}{
		{paka.Container, 7, 40, 46925103, 47846031, 48653998},
		{paka.SGX, 3, 20, 49182550, 49842486, 50722240},
	} {
		s, err := deploy.NewSlice(context.Background(), deploy.SliceConfig{
			Isolation: tc.iso, Seed: tc.seed,
		})
		if err != nil {
			t.Fatalf("NewSlice(%s): %v", tc.iso, err)
		}
		result, err := s.GNB.RegisterMany(context.Background(), tc.n, func(i int) (*ue.UE, error) {
			return newDeterministicUE(s, i)
		})
		if err != nil {
			t.Fatalf("RegisterMany(%s): %v", tc.iso, err)
		}
		if result.Registered != tc.n {
			t.Fatalf("%s: registered %d/%d (failures: %v)", tc.iso, result.Registered, tc.n, result.FirstErrors)
		}
		sum := result.SetupTimes.Summarize()
		if sum.Q1 != tc.q1 || sum.Median != tc.med || sum.Q3 != tc.q3 {
			t.Errorf("%s seed=%d: quartiles (%d, %d, %d), want golden (%d, %d, %d)",
				tc.iso, tc.seed, int64(sum.Q1), int64(sum.Median), int64(sum.Q3),
				int64(tc.q1), int64(tc.med), int64(tc.q3))
		}
		s.Stop()
	}
}

// TestRegisterManyParallelDeterministic checks the parallel driver's
// seed-reproducibility contract: worker w owns index stripe i%P==w and
// draws from the independent stream Jitter.Stream(w+1), so two runs with
// the same seed must produce (nearly) the same multiset of setup times no
// matter how the goroutines interleave. The tolerance below covers the
// one residual interleaving effect — shared NF identifier allocation
// (e.g. "authctx-9" vs "authctx-12") shifts message bodies by a byte or
// two, costing tens of nanoseconds of modelled TLS/HTTP processing — and
// is three orders of magnitude below what a leaked shared-jitter draw
// would produce (a radio RTT jig alone moves a sample by ~100 µs).
func TestRegisterManyParallelDeterministic(t *testing.T) {
	const (
		n    = 64
		par  = 8
		seed = 5
	)
	run := func() []time.Duration {
		s, err := deploy.NewSlice(context.Background(), deploy.SliceConfig{
			Isolation: paka.Container, Seed: seed,
		})
		if err != nil {
			t.Fatalf("NewSlice: %v", err)
		}
		defer s.Stop()
		// Provision and warm sequentially so the one-off first-contact
		// costs are paid deterministically before the workers start.
		devices := make([]*ue.UE, n)
		for i := range devices {
			if devices[i], err = newDeterministicUE(s, i); err != nil {
				t.Fatalf("provision UE %d: %v", i, err)
			}
		}
		warm, err := newDeterministicUE(s, 9999)
		if err != nil {
			t.Fatalf("provision warm UE: %v", err)
		}
		if _, err := s.GNB.RegisterUE(context.Background(), warm); err != nil {
			t.Fatalf("warm RegisterUE: %v", err)
		}
		result, err := s.GNB.RegisterManyWith(context.Background(), gnb.MassOptions{
			N:           n,
			NewUE:       func(i int) (*ue.UE, error) { return devices[i], nil },
			Parallelism: par,
		})
		if err != nil {
			t.Fatalf("RegisterManyWith: %v", err)
		}
		if result.Registered != n {
			t.Fatalf("registered %d/%d (failures: %v)", result.Registered, n, result.FirstErrors)
		}
		samples := result.SetupTimes.Samples()
		sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
		return samples
	}

	const tolerance = 2 * time.Microsecond
	first := run()
	second := run()
	for i := range first {
		delta := first[i] - second[i]
		if delta < 0 {
			delta = -delta
		}
		if delta > tolerance {
			t.Fatalf("sample %d differs between same-seed parallel runs by %v: %v vs %v",
				i, delta, first[i], second[i])
		}
	}
}

// TestRegisterManyFailureAccounting checks that failed registrations are
// classified instead of being swallowed into a bare counter: the failure
// class tally matches Failed and the first error of each class is kept.
func TestRegisterManyFailureAccounting(t *testing.T) {
	s, err := deploy.NewSlice(context.Background(), deploy.SliceConfig{
		Isolation: paka.Container, Seed: 21,
	})
	if err != nil {
		t.Fatalf("NewSlice: %v", err)
	}
	defer s.Stop()

	const n = 6
	result, err := s.GNB.RegisterMany(context.Background(), n, func(i int) (*ue.UE, error) {
		if i%3 == 1 {
			// An unprovisioned device fails authentication.
			supi := suci.SUPI{MCC: "001", MNC: "01", MSIN: fmt.Sprintf("%010d", 7000+i)}
			k := make([]byte, 16)
			return ue.New(ue.Config{
				SUPI: supi, K: k, OPc: k,
				HomeNetworkPublicKey: s.HomeNetworkKey.PublicKey(),
				HomeNetworkKeyID:     s.HomeNetworkKey.ID,
				Env:                  s.Env,
			})
		}
		return newDeterministicUE(s, i)
	})
	if err != nil {
		t.Fatalf("RegisterMany: %v", err)
	}
	if result.Failed != 2 || result.Registered != 4 {
		t.Fatalf("registered %d, failed %d", result.Registered, result.Failed)
	}
	total := 0
	for class, count := range result.FailureCounts {
		total += count
		if result.FirstErrors[class] == nil {
			t.Errorf("class %q has no recorded first error", class)
		}
	}
	if total != result.Failed {
		t.Fatalf("failure classes sum to %d, Failed = %d", total, result.Failed)
	}
}
