package shield5g_test

import (
	"bytes"
	"context"
	"fmt"

	"shield5g"
)

// ExampleNewTestbed walks the library's primary flow: deploy an
// SGX-shielded slice, provision a subscriber, run the full 5G-AKA
// registration through the P-AKA modules, and move data.
func ExampleNewTestbed() {
	ctx := context.Background()
	tb, err := shield5g.NewTestbed(ctx, shield5g.SliceConfig{
		Isolation: shield5g.SGX,
		MCC:       "001", MNC: "01",
		Seed: 1,
	})
	if err != nil {
		fmt.Println("deploy:", err)
		return
	}
	defer tb.Close()

	sub, err := tb.AddSubscriber(ctx, bytes.Repeat([]byte{0x2a}, 16), nil)
	if err != nil {
		fmt.Println("provision:", err)
		return
	}
	sess, err := tb.Register(ctx, sub)
	if err != nil {
		fmt.Println("register:", err)
		return
	}
	if err := sess.EstablishPDUSession(ctx, 1, "internet"); err != nil {
		fmt.Println("session:", err)
		return
	}
	echo, err := sess.SendData(ctx, []byte("hello"))
	if err != nil {
		fmt.Println("data:", err)
		return
	}
	fmt.Printf("registered %s, echo %q\n", sub.SUPI.String(), echo)
	// Output: registered imsi-001010000000002, echo "dn-echo:hello"
}

// ExampleRunExperiment regenerates one of the paper's tables.
func ExampleRunExperiment() {
	var buf bytes.Buffer
	cfg := shield5g.ExperimentConfig{Seed: 1, Iterations: 1}
	if err := shield5g.RunExperiment(context.Background(), "table1", cfg, &buf); err != nil {
		fmt.Println("experiment:", err)
		return
	}
	fmt.Println(len(buf.String()) > 0)
	// Output: true
}

// ExampleKeyIssues inspects the paper's Table V assessment.
func ExampleKeyIssues() {
	for _, ki := range shield5g.KeyIssues() {
		if ki.Number == 7 {
			fmt.Printf("KI %d (%s): %s coverage\n", ki.Number, ki.Description, ki.Coverage)
		}
	}
	// Output: KI 7 (Memory introspection): full coverage
}
