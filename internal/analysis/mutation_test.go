package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// Mutation tests: each case is a faithful copy of a real call site from
// the tree, paired with a broken variant seeded with the exact bug class
// the analyzer exists to catch. The clean copy must produce zero active
// findings (no false positive on the real pattern) and the mutant must
// be caught (no false negative on its breakage). If an analyzer is ever
// weakened to the point of missing the seeded bug, the pair goes red.

type mutationCase struct {
	name     string
	analyzer *Analyzer
	want     *regexp.Regexp // matched against the mutant's findings
	clean    string
	mutant   string
}

func runMutationSrc(t *testing.T, a *Analyzer, importPath, src string) []Diagnostic {
	t.Helper()
	l := sharedLoader(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "mut.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := l.CheckDir(importPath, dir)
	if err != nil {
		t.Fatalf("type-checking mutation source: %v", err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	return diags
}

func TestMutations(t *testing.T) {
	for _, tc := range mutationCases {
		t.Run(tc.name, func(t *testing.T) {
			clean := runMutationSrc(t, tc.analyzer, "shield5g/mutation/"+tc.name+"/clean", tc.clean)
			for _, d := range Active(clean) {
				t.Errorf("clean copy of the real call site was flagged: %s", d)
			}
			mutant := runMutationSrc(t, tc.analyzer, "shield5g/mutation/"+tc.name+"/mutant", tc.mutant)
			hit := false
			for _, d := range Active(mutant) {
				if tc.want.MatchString(d.Message) {
					hit = true
				}
			}
			if !hit {
				t.Errorf("seeded bug not caught: no active %s finding matching %q (got %d findings)",
					tc.analyzer.Name, tc.want, len(Active(mutant)))
				for _, d := range Active(mutant) {
					t.Logf("  finding: %s", d)
				}
			}
		})
	}
}

var mutationCases = []mutationCase{
	{
		// sbi.Client.Post's response tail (sbi.go): the body is released
		// after decode on every path. Mutant: the decode-error return
		// skips the release — the exact leak the pool contract forbids.
		name:     "post-response-tail-leak",
		analyzer: PoolOwner,
		want:     regexp.MustCompile("missing release"),
		clean: `package mut

import (
	"fmt"

	"shield5g/internal/sbi"
)

func decode(b []byte, resp any) error {
	if len(b) == 0 {
		return fmt.Errorf("empty body")
	}
	return nil
}

func post(v, resp any) error {
	body, err := sbi.MarshalBody(v)
	if err != nil {
		return fmt.Errorf("marshal: %w", err)
	}
	uerr := decode(body, resp)
	sbi.ReleaseBody(body)
	if uerr != nil {
		return fmt.Errorf("unmarshal: %w", uerr)
	}
	return nil
}
`,
		mutant: `package mut

import (
	"fmt"

	"shield5g/internal/sbi"
)

func decode(b []byte, resp any) error {
	if len(b) == 0 {
		return fmt.Errorf("empty body")
	}
	return nil
}

func post(v, resp any) error {
	body, err := sbi.MarshalBody(v)
	if err != nil {
		return fmt.Errorf("marshal: %w", err)
	}
	uerr := decode(body, resp)
	if uerr != nil {
		return fmt.Errorf("unmarshal: %w", uerr)
	}
	sbi.ReleaseBody(body)
	return nil
}
`,
	},
	{
		// sbi.Client.Post's stale-negotiation retry: the first body is
		// released, then a fresh one is marshalled and released in turn.
		// Mutant: the re-marshal is dropped but both releases stay.
		name:     "post-downgrade-retry-double-release",
		analyzer: PoolOwner,
		want:     regexp.MustCompile("double release"),
		clean: `package mut

import "shield5g/internal/sbi"

func send(b []byte) int { return len(b) }

func retry(v any) error {
	body, err := sbi.MarshalBody(v)
	if err != nil {
		return err
	}
	if send(body) == 0 {
		sbi.ReleaseBody(body)
		body, err = sbi.MarshalBody(v)
		if err != nil {
			return err
		}
		send(body)
	}
	sbi.ReleaseBody(body)
	return nil
}
`,
		mutant: `package mut

import "shield5g/internal/sbi"

func send(b []byte) int { return len(b) }

func retry(v any) error {
	body, err := sbi.MarshalBody(v)
	if err != nil {
		return err
	}
	if send(body) == 0 {
		sbi.ReleaseBody(body)
	}
	sbi.ReleaseBody(body)
	return nil
}
`,
	},
	{
		// The pooled-digest shape used by the crypto hot path: write,
		// sum, then return the state to the pool. Mutant: the state goes
		// back to the pool before the final Sum reads it.
		name:     "hashpool-sum-after-put",
		analyzer: PoolOwner,
		want:     regexp.MustCompile("use after release"),
		clean: `package mut

import "shield5g/internal/crypto/hashpool"

func digest(data []byte) []byte {
	h := hashpool.GetSHA256()
	h.Write(data)
	out := h.Sum(nil)
	hashpool.PutSHA256(h)
	return out
}
`,
		mutant: `package mut

import "shield5g/internal/crypto/hashpool"

func digest(data []byte) []byte {
	h := hashpool.GetSHA256()
	h.Write(data)
	hashpool.PutSHA256(h)
	return h.Sum(nil)
}
`,
	},
	{
		// deploy.Slice keeps resilMu and attestMu strictly disjoint: the
		// stats reader takes them one at a time while the snapshot path
		// nests attestMu over resilMu. Mutant: stats starts holding
		// resilMu across its attestMu acquisition — opposite nesting.
		name:     "slice-stats-lock-swap",
		analyzer: LockOrder,
		want:     regexp.MustCompile("inconsistent lock nesting"),
		clean: `package mut

import "sync"

type slice struct {
	resilMu  sync.Mutex
	attestMu sync.Mutex
	resil    []int
	attest   []int
}

func (s *slice) stats() int {
	s.resilMu.Lock()
	n := len(s.resil)
	s.resilMu.Unlock()
	s.attestMu.Lock()
	n += len(s.attest)
	s.attestMu.Unlock()
	return n
}

func (s *slice) snapshot() int {
	s.attestMu.Lock()
	defer s.attestMu.Unlock()
	s.resilMu.Lock()
	defer s.resilMu.Unlock()
	return len(s.resil) + len(s.attest)
}
`,
		mutant: `package mut

import "sync"

type slice struct {
	resilMu  sync.Mutex
	attestMu sync.Mutex
	resil    []int
	attest   []int
}

func (s *slice) stats() int {
	s.resilMu.Lock()
	defer s.resilMu.Unlock()
	s.attestMu.Lock()
	n := len(s.resil) + len(s.attest)
	s.attestMu.Unlock()
	return n
}

func (s *slice) snapshot() int {
	s.attestMu.Lock()
	defer s.attestMu.Unlock()
	s.resilMu.Lock()
	defer s.resilMu.Unlock()
	return len(s.resil) + len(s.attest)
}
`,
	},
	{
		// sbi.Client's negotiation map is guarded by c.mu in two separate
		// critical sections. Mutant: the Unlock between them is dropped,
		// so the second Lock re-acquires a mutex the goroutine already
		// holds — a guaranteed self-deadlock.
		name:     "client-negotiation-recursive-lock",
		analyzer: LockOrder,
		want:     regexp.MustCompile("recursive lock"),
		clean: `package mut

import "sync"

type client struct {
	mu         sync.Mutex
	negotiated map[string]bool
}

func (c *client) downgrade(path string) {
	c.mu.Lock()
	delete(c.negotiated, path)
	c.mu.Unlock()
	c.mu.Lock()
	c.negotiated[path] = false
	c.mu.Unlock()
}
`,
		mutant: `package mut

import "sync"

type client struct {
	mu         sync.Mutex
	negotiated map[string]bool
}

func (c *client) downgrade(path string) {
	c.mu.Lock()
	delete(c.negotiated, path)
	c.mu.Lock()
	c.negotiated[path] = false
	c.mu.Unlock()
	c.mu.Unlock()
}
`,
	},
}
