package suci

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func testKey(t testing.TB) *HomeNetworkKey {
	t.Helper()
	k, err := GenerateHomeNetworkKey(rand.Reader, 1)
	if err != nil {
		t.Fatalf("GenerateHomeNetworkKey: %v", err)
	}
	return k
}

var testSUPI = SUPI{MCC: "001", MNC: "01", MSIN: "0000000001"}

func TestConcealDeconcealRoundTrip(t *testing.T) {
	k := testKey(t)
	suci, err := Conceal(rand.Reader, testSUPI, "0000", k.PublicKey(), k.ID)
	if err != nil {
		t.Fatalf("Conceal: %v", err)
	}
	got, err := k.Deconceal(suci)
	if err != nil {
		t.Fatalf("Deconceal: %v", err)
	}
	if got != testSUPI {
		t.Fatalf("round trip = %+v, want %+v", got, testSUPI)
	}
}

func TestConcealHidesMSIN(t *testing.T) {
	k := testKey(t)
	suci, err := Conceal(rand.Reader, testSUPI, "0000", k.PublicKey(), k.ID)
	if err != nil {
		t.Fatalf("Conceal: %v", err)
	}
	if bytes.Contains(suci.SchemeOutput, []byte(testSUPI.MSIN)) {
		t.Fatal("scheme output contains plaintext MSIN")
	}
	if suci.MCC != testSUPI.MCC || suci.MNC != testSUPI.MNC {
		t.Fatal("home network identity must stay in clear text for routing")
	}
}

func TestConcealIsRandomized(t *testing.T) {
	k := testKey(t)
	a, err := Conceal(rand.Reader, testSUPI, "0000", k.PublicKey(), k.ID)
	if err != nil {
		t.Fatalf("Conceal: %v", err)
	}
	b, err := Conceal(rand.Reader, testSUPI, "0000", k.PublicKey(), k.ID)
	if err != nil {
		t.Fatalf("Conceal: %v", err)
	}
	if bytes.Equal(a.SchemeOutput, b.SchemeOutput) {
		t.Fatal("two concealments of the same SUPI are identical (linkable)")
	}
}

func TestDeconcealTamperDetected(t *testing.T) {
	k := testKey(t)
	suci, err := Conceal(rand.Reader, testSUPI, "0000", k.PublicKey(), k.ID)
	if err != nil {
		t.Fatalf("Conceal: %v", err)
	}
	// Flip one ciphertext bit.
	suci.SchemeOutput[ephemeralKeyLen] ^= 0x01
	if _, err := k.Deconceal(suci); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered SUCI: err = %v, want ErrIntegrity", err)
	}
}

func TestDeconcealTamperedTag(t *testing.T) {
	k := testKey(t)
	suci, err := Conceal(rand.Reader, testSUPI, "0000", k.PublicKey(), k.ID)
	if err != nil {
		t.Fatalf("Conceal: %v", err)
	}
	suci.SchemeOutput[len(suci.SchemeOutput)-1] ^= 0xff
	if _, err := k.Deconceal(suci); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered tag: err = %v, want ErrIntegrity", err)
	}
}

func TestDeconcealWrongKey(t *testing.T) {
	k1, k2 := testKey(t), testKey(t)
	k2.ID = k1.ID // same ID, different key material
	suci, err := Conceal(rand.Reader, testSUPI, "0000", k1.PublicKey(), k1.ID)
	if err != nil {
		t.Fatalf("Conceal: %v", err)
	}
	if _, err := k2.Deconceal(suci); err == nil {
		t.Fatal("wrong home network key accepted")
	}
}

func TestDeconcealKeyIDMismatch(t *testing.T) {
	k := testKey(t)
	suci, err := Conceal(rand.Reader, testSUPI, "0000", k.PublicKey(), 9)
	if err != nil {
		t.Fatalf("Conceal: %v", err)
	}
	if _, err := k.Deconceal(suci); err == nil {
		t.Fatal("key ID mismatch accepted")
	}
}

func TestDeconcealRejectsBadInputs(t *testing.T) {
	k := testKey(t)
	if _, err := k.Deconceal(nil); err == nil {
		t.Fatal("nil SUCI accepted")
	}
	if _, err := k.Deconceal(&SUCI{Scheme: SchemeNull, HomeKeyID: k.ID}); err == nil {
		t.Fatal("null scheme accepted by Profile A deconcealment")
	}
	if _, err := k.Deconceal(&SUCI{Scheme: SchemeProfileA, HomeKeyID: k.ID, SchemeOutput: make([]byte, 10)}); err == nil {
		t.Fatal("truncated scheme output accepted")
	}
}

func TestSUPIValidate(t *testing.T) {
	tests := []struct {
		name string
		supi SUPI
		ok   bool
	}{
		{"valid 2-digit MNC", SUPI{"001", "01", "0000000001"}, true},
		{"valid 3-digit MNC", SUPI{"310", "410", "123456789"}, true},
		{"short MCC", SUPI{"01", "01", "0000000001"}, false},
		{"alpha MCC", SUPI{"0a1", "01", "0000000001"}, false},
		{"long MNC", SUPI{"001", "0123", "0000000001"}, false},
		{"short MSIN", SUPI{"001", "01", "1234"}, false},
		{"long MSIN", SUPI{"001", "01", "12345678901"}, false},
		{"empty MNC", SUPI{"001", "", "123456789"}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.supi.Validate()
			if (err == nil) != tt.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestSUPIString(t *testing.T) {
	if got := testSUPI.String(); got != "imsi-001010000000001" {
		t.Fatalf("String = %q", got)
	}
}

func TestSUCIString(t *testing.T) {
	s := &SUCI{MCC: "001", MNC: "01", RoutingIndicator: "0000", Scheme: SchemeProfileA, HomeKeyID: 1, SchemeOutput: []byte{0xab}}
	got := s.String()
	if !strings.HasPrefix(got, "suci-0-001-01-0000-1-1-ab") {
		t.Fatalf("String = %q", got)
	}
}

func TestConcealValidation(t *testing.T) {
	k := testKey(t)
	if _, err := Conceal(rand.Reader, SUPI{"1", "01", "123456789"}, "0000", k.PublicKey(), 1); err == nil {
		t.Fatal("invalid SUPI accepted")
	}
	if _, err := Conceal(rand.Reader, testSUPI, "0000", make([]byte, 31), 1); err == nil {
		t.Fatal("short public key accepted")
	}
}

func TestHomeNetworkKeySerialization(t *testing.T) {
	k := testKey(t)
	k2, err := HomeNetworkKeyFromBytes(k.Bytes(), k.ID)
	if err != nil {
		t.Fatalf("HomeNetworkKeyFromBytes: %v", err)
	}
	if !bytes.Equal(k.PublicKey(), k2.PublicKey()) {
		t.Fatal("restored key has different public key")
	}
	suci, err := Conceal(rand.Reader, testSUPI, "0000", k.PublicKey(), k.ID)
	if err != nil {
		t.Fatalf("Conceal: %v", err)
	}
	if _, err := k2.Deconceal(suci); err != nil {
		t.Fatalf("restored key failed to deconceal: %v", err)
	}
	if _, err := HomeNetworkKeyFromBytes(make([]byte, 16), 1); err == nil {
		t.Fatal("short private scalar accepted")
	}
}

// Property: round trip holds for arbitrary valid MSINs.
func TestRoundTripProperty(t *testing.T) {
	k := testKey(t)
	f := func(n uint64, riSeed uint8) bool {
		msin := padDigits(n, 10)
		supi := SUPI{MCC: "001", MNC: "01", MSIN: msin}
		ri := padDigits(uint64(riSeed), 4)
		suci, err := Conceal(rand.Reader, supi, ri, k.PublicKey(), k.ID)
		if err != nil {
			return false
		}
		got, err := k.Deconceal(suci)
		if err != nil {
			return false
		}
		return got == supi && suci.RoutingIndicator == ri
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func padDigits(n uint64, width int) string {
	s := make([]byte, width)
	for i := width - 1; i >= 0; i-- {
		s[i] = byte('0' + n%10)
		n /= 10
	}
	return string(s)
}

func TestDeriveKeysDeterministicAndDistinct(t *testing.T) {
	shared := bytes.Repeat([]byte{0x42}, 32)
	pub := bytes.Repeat([]byte{0x24}, 32)
	var s1, s2 kdfScratch
	e1, i1, m1 := deriveKeys(shared, pub, &s1)
	e2, i2, m2 := deriveKeys(shared, pub, &s2)
	if !bytes.Equal(e1, e2) || !bytes.Equal(i1, i2) || !bytes.Equal(m1, m2) {
		t.Fatal("deriveKeys not deterministic")
	}
	if len(e1) != encKeyLen || len(i1) != icbLen || len(m1) != macKeyLen {
		t.Fatal("derived key lengths wrong")
	}
	if bytes.Equal(e1, i1[:encKeyLen]) {
		t.Fatal("enc key equals ICB prefix")
	}
}

func BenchmarkConceal(b *testing.B) {
	k := testKey(b)
	pub := k.PublicKey()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Conceal(rand.Reader, testSUPI, "0000", pub, k.ID); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeconceal(b *testing.B) {
	k := testKey(b)
	suci, err := Conceal(rand.Reader, testSUPI, "0000", k.PublicKey(), k.ID)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := k.Deconceal(suci); err != nil {
			b.Fatal(err)
		}
	}
}

func TestNullScheme(t *testing.T) {
	sc, err := ConcealNull(testSUPI, "0000")
	if err != nil {
		t.Fatalf("ConcealNull: %v", err)
	}
	if sc.Scheme != SchemeNull {
		t.Fatalf("scheme = %d", sc.Scheme)
	}
	// The null scheme exposes the MSIN on the wire — the privacy gap it
	// is documented to have.
	if !bytes.Contains(sc.SchemeOutput, []byte(testSUPI.MSIN)) {
		t.Fatal("null scheme did not carry plaintext MSIN")
	}
	got, err := sc.NullSUPI()
	if err != nil {
		t.Fatalf("NullSUPI: %v", err)
	}
	if got != testSUPI {
		t.Fatalf("NullSUPI = %+v", got)
	}
	if _, err := ConcealNull(SUPI{MCC: "1"}, "0000"); err == nil {
		t.Fatal("invalid SUPI accepted")
	}
	profileA := &SUCI{Scheme: SchemeProfileA}
	if _, err := profileA.NullSUPI(); err == nil {
		t.Fatal("NullSUPI on profile A accepted")
	}
	bad := &SUCI{MCC: "001", MNC: "01", Scheme: SchemeNull, SchemeOutput: []byte("xx")}
	if _, err := bad.NullSUPI(); err == nil {
		t.Fatal("malformed null MSIN accepted")
	}
}

// TestPooledPrimitivesMatchReference pins the pooled KDF/MAC/CTR paths to
// plain-stdlib reference implementations mirroring the seed code.
func TestPooledPrimitivesMatchReference(t *testing.T) {
	shared := bytes.Repeat([]byte{0x42}, 32)
	pub := bytes.Repeat([]byte{0x24}, 32)

	refDerive := func() []byte {
		const total = encKeyLen + icbLen + macKeyLen
		out := make([]byte, 0, total)
		var counter uint32 = 1
		for len(out) < total {
			h := sha256.New()
			h.Write(shared)
			var c [4]byte
			binary.BigEndian.PutUint32(c[:], counter)
			h.Write(c[:])
			h.Write(pub)
			out = h.Sum(out)
			counter++
		}
		return out
	}()

	var ks kdfScratch
	encKey, icb, macKey := deriveKeys(shared, pub, &ks)
	got := append(append(append([]byte(nil), encKey...), icb...), macKey...)
	if !bytes.Equal(got, refDerive) {
		t.Fatalf("pooled deriveKeys diverges from reference\n got %x\nwant %x", got, refDerive)
	}

	msg := []byte("0000000001")
	var tag [sha256.Size]byte
	computeTagInto(macKey, msg, &tag)
	ref := hmac.New(sha256.New, macKey)
	ref.Write(msg)
	if want := ref.Sum(nil); !bytes.Equal(tag[:], want) {
		t.Fatalf("computeTagInto diverges from crypto/hmac")
	}

	// The manual CTR loop must match a stdlib cipher.NewCTR stream, on a
	// first pass and again through the recycled (scrubbed) scratch.
	for round := 0; round < 2; round++ {
		dst := make([]byte, len(msg))
		ctr(encKey, icb, dst, msg)
		block, err := aes.NewCipher(encKey)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, len(msg))
		cipher.NewCTR(block, icb).XORKeyStream(want, msg)
		if !bytes.Equal(dst, want) {
			t.Fatalf("round %d: manual CTR diverges from cipher.NewCTR", round)
		}
	}
}
