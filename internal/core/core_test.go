package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"shield5g/internal/deploy"
	"shield5g/internal/experiments"
	"shield5g/internal/paka"
	"shield5g/internal/ue"
)

func TestTestbedLifecycle(t *testing.T) {
	ctx := context.Background()
	tb, err := NewTestbed(ctx, deploy.SliceConfig{Isolation: paka.SGX, Seed: 21})
	if err != nil {
		t.Fatalf("NewTestbed: %v", err)
	}
	defer tb.Close()

	k := bytes.Repeat([]byte{0x33}, 16)
	sub, err := tb.AddSubscriber(ctx, k, nil)
	if err != nil {
		t.Fatalf("AddSubscriber: %v", err)
	}
	if sub.SUPI.MCC != "001" || sub.SUPI.MNC != "01" {
		t.Fatalf("SUPI = %+v", sub.SUPI)
	}
	sess, err := tb.Register(ctx, sub)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if sess.SetupTime <= 0 {
		t.Fatal("no setup time")
	}

	// Distinct subscribers get distinct identities.
	sub2, err := tb.AddSubscriber(ctx, k, nil)
	if err != nil {
		t.Fatalf("AddSubscriber: %v", err)
	}
	if sub2.SUPI == sub.SUPI {
		t.Fatal("duplicate SUPI")
	}
}

func TestAddSubscriberValidation(t *testing.T) {
	ctx := context.Background()
	tb, err := NewTestbed(ctx, deploy.SliceConfig{Isolation: paka.Container, Seed: 21})
	if err != nil {
		t.Fatalf("NewTestbed: %v", err)
	}
	defer tb.Close()
	if _, err := tb.AddSubscriber(ctx, []byte("short"), nil); err == nil {
		t.Fatal("short key accepted")
	}
}

func TestAddSubscriberWithProfile(t *testing.T) {
	ctx := context.Background()
	tb, err := NewTestbed(ctx, deploy.SliceConfig{Isolation: paka.Container, Seed: 21})
	if err != nil {
		t.Fatalf("NewTestbed: %v", err)
	}
	defer tb.Close()
	profile := ue.OnePlus8()
	sub, err := tb.AddSubscriber(ctx, bytes.Repeat([]byte{0x44}, 16), &profile)
	if err != nil {
		t.Fatalf("AddSubscriber: %v", err)
	}
	if err := sub.UE.DetectNetwork("99999"); err == nil {
		t.Fatal("COTS profile not applied")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	names := ExperimentNames()
	want := []string{"ablation", "batching", "chaos", "e2e", "fig10", "fig7", "fig8", "fig9", "massreg", "ota", "profiles", "scale", "shardscale", "storm", "table1", "table2", "table3", "table4", "table5", "teecompare"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("names[%d] = %s, want %s", i, names[i], n)
		}
	}
	for _, exp := range ExperimentRegistry() {
		if exp.Name == "" || exp.Description == "" || exp.Run == nil {
			t.Fatalf("incomplete experiment %+v", exp)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	err := RunExperiment(context.Background(), "fig99", experiments.Config{}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunExperimentStaticTable(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment(context.Background(), "table5", experiments.Config{}, &buf); err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}
	if !strings.Contains(buf.String(), "Table V") {
		t.Fatal("table5 output missing")
	}
}

func TestRunExperimentDynamic(t *testing.T) {
	var buf bytes.Buffer
	cfg := experiments.Config{Seed: 3, Iterations: 20}
	if err := RunExperiment(context.Background(), "fig9", cfg, &buf); err != nil {
		t.Fatalf("RunExperiment fig9: %v", err)
	}
	if !strings.Contains(buf.String(), "Figure 9a") {
		t.Fatal("fig9 output missing")
	}
}

func TestWriteExperimentCSV(t *testing.T) {
	cfg := experiments.Config{Seed: 3, Iterations: 20}
	var buf bytes.Buffer
	if err := WriteExperimentCSV(context.Background(), "fig9", cfg, &buf); err != nil {
		t.Fatalf("WriteExperimentCSV: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "module,isolation,lf_median_us") {
		t.Fatalf("CSV header missing: %q", out)
	}
	if !strings.Contains(out, "eUDM,sgx,") {
		t.Fatal("CSV rows missing")
	}
	if err := WriteExperimentCSV(context.Background(), "table5", cfg, &buf); err == nil {
		t.Fatal("CSV export for non-figure experiment accepted")
	}
	if len(CSVExperiments()) != 11 {
		t.Fatalf("CSVExperiments = %v", CSVExperiments())
	}
}
