package topo

import (
	"testing"

	"shield5g/internal/topology"
)

func replicas(names ...string) []topology.Replica {
	out := make([]topology.Replica, len(names))
	for i, n := range names {
		out[i] = topology.Replica{Index: i, Name: n}
	}
	return out
}

func TestPublishPushesMonotonicEpochs(t *testing.T) {
	b := NewBuilder()
	b.SetReplicas(replicas("shard-0", "shard-1"))
	r1, r2 := topology.NewRouter(), topology.NewRouter()
	if err := b.Subscribe(r1); err != nil {
		t.Fatal(err)
	}
	if err := b.Subscribe(r2); err != nil {
		t.Fatal(err)
	}
	res := b.Publish()
	if res.Epoch != 1 || res.Acked != 2 || res.Nacked != 0 {
		t.Fatalf("first publish = %+v, want epoch 1, 2 acks", res)
	}
	b.SetReplicas(replicas("shard-0", "shard-1", "shard-2"))
	res = b.Publish()
	if res.Epoch != 2 || res.Acked != 2 {
		t.Fatalf("second publish = %+v, want epoch 2, 2 acks", res)
	}
	if r1.Epoch() != 2 || r2.Epoch() != 2 {
		t.Fatalf("router epochs = %d, %d, want 2, 2", r1.Epoch(), r2.Epoch())
	}
	if got := len(r1.Snapshot().Replicas); got != 3 {
		t.Fatalf("router sees %d replicas, want 3", got)
	}
}

// A subscriber that already advanced past the push nacks, and the round
// still delivers to everyone else.
func TestNackDoesNotAbortRound(t *testing.T) {
	b := NewBuilder()
	b.SetReplicas(replicas("shard-0"))
	b.Publish()
	ahead, behind := topology.NewRouter(), topology.NewRouter()
	fast := &topology.Snapshot{Epoch: 99, Replicas: replicas("other")}
	fast.Seal()
	if err := ahead.Apply(fast); err != nil {
		t.Fatal(err)
	}
	if err := b.Subscribe(ahead); err == nil {
		t.Fatal("catch-up to an already-ahead router should surface the nack")
	}
	if err := b.Subscribe(behind); err != nil {
		t.Fatal(err)
	}
	res := b.Publish()
	if res.Acked != 1 || res.Nacked != 1 {
		t.Fatalf("publish = %+v, want 1 ack + 1 nack", res)
	}
	if behind.Epoch() != 2 {
		t.Fatalf("healthy subscriber missed the push: epoch %d", behind.Epoch())
	}
	if ahead.Epoch() != 99 {
		t.Fatalf("nacking subscriber lost its LKG: epoch %d", ahead.Epoch())
	}
}

func TestLateSubscriberCatchesUp(t *testing.T) {
	b := NewBuilder()
	b.SetReplicas(replicas("shard-0", "shard-1"))
	b.Publish()
	late := topology.NewRouter()
	if err := b.Subscribe(late); err != nil {
		t.Fatal(err)
	}
	if late.Epoch() != 1 {
		t.Fatalf("late subscriber epoch = %d, want 1 (caught up)", late.Epoch())
	}
}
