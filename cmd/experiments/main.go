// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments [-seed N] [-iterations N] all
//	experiments fig7 fig9 table2 ...
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"shield5g"
)

func main() {
	os.Exit(run())
}

func run() int {
	seed := flag.Uint64("seed", 1, "jitter seed for reproducible virtual-time measurements")
	iterations := flag.Int("iterations", 500, "samples per configuration (paper: 500)")
	maxUEs := flag.Int("maxues", 3, "UE sweep depth for table3 (paper registers up to 10)")
	csvDir := flag.String("csvdir", "", "also write plot-friendly CSV series for figure experiments into this directory")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	if *list {
		for _, name := range shield5g.Experiments() {
			fmt.Println(name)
		}
		return 0
	}

	cfg := shield5g.ExperimentConfig{Seed: *seed, Iterations: *iterations, MaxUEs: *maxUEs}
	ctx := context.Background()

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: experiments [-seed N] [-iterations N] all | <name>...")
		fmt.Fprintf(os.Stderr, "experiments: %v\n", shield5g.Experiments())
		return 2
	}
	if len(args) == 1 && args[0] == "all" {
		if err := shield5g.RunAllExperiments(ctx, cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		return 0
	}
	for _, name := range args {
		fmt.Printf("\n=== %s ===\n", name)
		if err := shield5g.RunExperiment(ctx, name, cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			return 1
		}
		if *csvDir != "" && hasCSV(name) {
			if err := writeCSV(ctx, *csvDir, name, cfg); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s CSV: %v\n", name, err)
				return 1
			}
		}
	}
	return 0
}

func hasCSV(name string) bool {
	for _, n := range shield5g.CSVExperiments() {
		if n == name {
			return true
		}
	}
	return false
}

func writeCSV(ctx context.Context, dir, name string, cfg shield5g.ExperimentConfig) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	if err := shield5g.WriteExperimentCSV(ctx, name, cfg, f); err != nil {
		return err
	}
	fmt.Printf("(series written to %s)\n", path)
	return f.Close()
}
