package simclock

import (
	"context"
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestDurationConversion(t *testing.T) {
	tests := []struct {
		name   string
		cycles Cycles
		freq   uint64
		want   time.Duration
	}{
		{name: "one second at 2.4GHz", cycles: 2_400_000_000, freq: 2_400_000_000, want: time.Second},
		{name: "one microsecond", cycles: 2_400, freq: 2_400_000_000, want: time.Microsecond},
		{name: "zero cycles", cycles: 0, freq: 2_400_000_000, want: 0},
		{name: "default frequency", cycles: 2_400, freq: 0, want: time.Microsecond},
		{name: "one cycle at 1Hz", cycles: 1, freq: 1, want: time.Second},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Duration(tt.cycles, tt.freq); got != tt.want {
				t.Errorf("Duration(%d, %d) = %v, want %v", tt.cycles, tt.freq, got, tt.want)
			}
		})
	}
}

func TestDurationLargeNoOverflow(t *testing.T) {
	// 1000 simulated seconds must not overflow the int64 nanosecond range.
	n := Cycles(2_400_000_000) * 1000
	if got := Duration(n, 2_400_000_000); got != 1000*time.Second {
		t.Fatalf("Duration = %v, want %v", got, 1000*time.Second)
	}
}

func TestFromDurationRoundTrip(t *testing.T) {
	f := func(micros uint32) bool {
		d := time.Duration(micros) * time.Microsecond
		n := FromDuration(d, DefaultFrequencyHz)
		back := Duration(n, DefaultFrequencyHz)
		diff := back - d
		if diff < 0 {
			diff = -diff
		}
		return diff <= time.Microsecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockAdvance(t *testing.T) {
	c := New(2_400_000_000)
	c.Advance(2_400)
	c.Advance(2_400)
	if got := c.Elapsed(); got != 4_800 {
		t.Fatalf("Elapsed = %d, want 4800", got)
	}
	if got := c.Now(); got != 2*time.Microsecond {
		t.Fatalf("Now = %v, want 2µs", got)
	}
}

func TestClockDefaultFrequency(t *testing.T) {
	c := New(0)
	if got := c.FrequencyHz(); got != DefaultFrequencyHz {
		t.Fatalf("FrequencyHz = %d, want %d", got, DefaultFrequencyHz)
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	c := New(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Elapsed(); got != 8000 {
		t.Fatalf("Elapsed = %d, want 8000", got)
	}
}

func TestAccountChargeAndReset(t *testing.T) {
	var a Account
	a.Charge(100)
	a.Charge(50)
	if got := a.Total(); got != 150 {
		t.Fatalf("Total = %d, want 150", got)
	}
	if got := a.Reset(); got != 150 {
		t.Fatalf("Reset = %d, want 150", got)
	}
	if got := a.Total(); got != 0 {
		t.Fatalf("Total after reset = %d, want 0", got)
	}
}

func TestAccountContext(t *testing.T) {
	var a Account
	ctx := WithAccount(context.Background(), &a)
	AccountFrom(ctx).Charge(42)
	if got := a.Total(); got != 42 {
		t.Fatalf("Total = %d, want 42", got)
	}
}

func TestAccountFromMissing(t *testing.T) {
	// Charging a missing account must be safe and not panic.
	AccountFrom(context.Background()).Charge(1)
}

func TestJitterDeterminism(t *testing.T) {
	a, b := NewJitter(7), NewJitter(7)
	for i := 0; i < 100; i++ {
		if x, y := a.Scale(1000, 0.2), b.Scale(1000, 0.2); x != y {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, x, y)
		}
	}
}

func TestJitterScaleBounds(t *testing.T) {
	j := NewJitter(1)
	for i := 0; i < 1000; i++ {
		got := j.Scale(1000, 0.1)
		if got < 900 || got > 1100 {
			t.Fatalf("Scale out of bounds: %d", got)
		}
	}
}

func TestJitterScaleZeroFrac(t *testing.T) {
	j := NewJitter(1)
	if got := j.Scale(1234, 0); got != 1234 {
		t.Fatalf("Scale(_, 0) = %d, want 1234", got)
	}
}

func TestJitterLogNormalMedian(t *testing.T) {
	j := NewJitter(3)
	const n = 20000
	below := 0
	for i := 0; i < n; i++ {
		if j.LogNormal(1000, 0.3) < 1000 {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("median fraction below = %.3f, want ~0.5", frac)
	}
}

func TestJitterLogNormalZeroSigma(t *testing.T) {
	j := NewJitter(3)
	if got := j.LogNormal(555, 0); got != 555 {
		t.Fatalf("LogNormal(_, 0) = %d, want 555", got)
	}
}

func TestJitterPoissonMean(t *testing.T) {
	j := NewJitter(9)
	for _, lambda := range []float64{0.5, 4, 200} {
		const n = 5000
		sum := 0
		for i := 0; i < n; i++ {
			sum += j.Poisson(lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda) > 0.15*lambda+0.1 {
			t.Fatalf("Poisson(%v) mean = %.3f", lambda, mean)
		}
	}
}

func TestJitterPoissonZero(t *testing.T) {
	j := NewJitter(9)
	if got := j.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := j.Poisson(-1); got != 0 {
		t.Fatalf("Poisson(-1) = %d, want 0", got)
	}
}

func TestJitterConcurrent(t *testing.T) {
	j := NewJitter(11)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				j.Scale(100, 0.5)
				j.Poisson(2)
				j.LogNormal(100, 0.2)
				j.Uint64n(10)
				j.Float64()
			}
		}()
	}
	wg.Wait()
}

func TestJitterStreamDeterministic(t *testing.T) {
	// Same root seed, same stream index: identical draw sequences.
	a := NewJitter(42).Stream(3)
	b := NewJitter(42).Stream(3)
	for i := 0; i < 64; i++ {
		if x, y := a.Uint64n(1<<40), b.Uint64n(1<<40); x != y {
			t.Fatalf("draw %d: %d != %d", i, x, y)
		}
	}
}

func TestJitterStreamIndependent(t *testing.T) {
	// Different stream indices diverge, and none collides with the root
	// source's own sequence.
	root := NewJitter(42)
	s1 := NewJitter(42).Stream(1)
	s2 := NewJitter(42).Stream(2)
	same12, sameRoot := 0, 0
	for i := 0; i < 64; i++ {
		r, x, y := root.Uint64n(1<<40), s1.Uint64n(1<<40), s2.Uint64n(1<<40)
		if x == y {
			same12++
		}
		if r == x {
			sameRoot++
		}
	}
	if same12 > 2 || sameRoot > 2 {
		t.Fatalf("streams not independent: same12=%d sameRoot=%d", same12, sameRoot)
	}
}

func TestJitterFromFallback(t *testing.T) {
	fallback := NewJitter(7)
	ctx := context.Background()
	if got := JitterFrom(ctx, fallback); got != fallback {
		t.Fatal("bare context did not fall back")
	}
	stream := fallback.Stream(1)
	ctx = WithJitter(ctx, stream)
	if got := JitterFrom(ctx, fallback); got != stream {
		t.Fatal("context jitter not returned")
	}
	if got := JitterFrom(context.Background(), nil); got != nil {
		t.Fatal("nil fallback not honoured")
	}
}
