module shield5g

go 1.22
