package milenage

import (
	"crypto/subtle"
	"sync"
)

// Cache memoizes per-subscriber Cipher values so the registration hot
// path does not re-expand the AES key schedule (aes.NewCipher) on every
// authentication-vector request. Entries are keyed by subscriber
// identifier (SUPI) and validated against the (K, OPc) pair they were
// built from: a lookup whose credentials no longer match rebuilds the
// entry in place, so a UDR re-provision can never serve a stale schedule
// even if the owner forgets to call Invalidate.
//
// Invalidation triggers (see DESIGN.md §9): ProvisionSubscriber calls
// Invalidate(supi); an enclave crash-restart calls Reset(), matching the
// loss of all in-enclave state.
type Cache struct {
	mu sync.RWMutex
	m  map[string]*cacheEntry
}

type cacheEntry struct {
	k   [KeyLen]byte
	opc [OPLen]byte
	c   *Cipher
}

// NewCache returns an empty cache, safe for concurrent use.
func NewCache() *Cache {
	return &Cache{m: make(map[string]*cacheEntry)}
}

// Get returns the Cipher for subscriber id with credentials (k, opc),
// reusing the cached key schedule when the credentials still match and
// building (and caching) a fresh one otherwise. A nil receiver always
// builds fresh, so callers can treat the cache as optional.
//
//shieldlint:hotpath
func (cc *Cache) Get(id string, k, opc []byte) (*Cipher, error) {
	if cc == nil {
		return New(k, opc)
	}
	cc.mu.RLock()
	e := cc.m[id]
	cc.mu.RUnlock()
	if e != nil && len(k) == KeyLen && len(opc) == OPLen &&
		subtle.ConstantTimeCompare(e.k[:], k) == 1 &&
		subtle.ConstantTimeCompare(e.opc[:], opc) == 1 {
		return e.c, nil
	}
	c, err := New(k, opc)
	if err != nil {
		return nil, err
	}
	e = &cacheEntry{c: c}
	copy(e.k[:], k)
	copy(e.opc[:], opc)
	cc.mu.Lock()
	cc.m[id] = e
	cc.mu.Unlock()
	return c, nil
}

// Invalidate drops the entry for id; the next Get rebuilds it.
func (cc *Cache) Invalidate(id string) {
	if cc == nil {
		return
	}
	cc.mu.Lock()
	delete(cc.m, id)
	cc.mu.Unlock()
}

// Reset drops every entry, modelling the loss of in-enclave state on a
// crash-restart.
func (cc *Cache) Reset() {
	if cc == nil {
		return
	}
	cc.mu.Lock()
	cc.m = make(map[string]*cacheEntry)
	cc.mu.Unlock()
}

// Len reports the number of cached schedules.
func (cc *Cache) Len() int {
	if cc == nil {
		return 0
	}
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	return len(cc.m)
}
