// Package callgraph is the call-graph engine fixture: direct and
// mutual recursion, a method value, interface dispatch over two
// implementers, and a three-deep static chain for post-order checks.
package callgraph

type greeter interface{ greet() string }

type english struct{}

func (english) greet() string { return "hello" }

type french struct{}

func (french) greet() string { return "bonjour" }

// dispatch calls through the interface: the edge set must
// over-approximate to every in-program implementer.
func dispatch(g greeter) string { return g.greet() }

func fact(n int) int {
	if n <= 1 {
		return 1
	}
	return n * fact(n-1)
}

func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

type counter struct{ n int }

func (c *counter) inc() { c.n++ }

// methodValue returns c.inc as a value: a dynamic function-value
// reference edge, not a call site.
func methodValue(c *counter) func() {
	return c.inc
}

func chainLeaf() int { return 1 }
func chainMid() int  { return chainLeaf() + 1 }
func chainTop() int  { return chainMid() + 1 }
