package experiments

import (
	"context"
	"io"

	"shield5g/internal/metrics"
	"shield5g/internal/paka"
)

// Fig8Config is one point of the thread/EPC sweep.
type Fig8Config struct {
	Label       string
	Isolation   paka.Isolation
	MaxThreads  int
	EnclaveSize uint64
}

// Fig8Point is the measured functional and total latency at one sweep
// point.
type Fig8Point struct {
	Config     Fig8Config
	Functional metrics.Summary
	Total      metrics.Summary
}

// Fig8Result holds the full sweep.
type Fig8Result struct {
	Points []Fig8Point
}

// fig8Sweep reproduces the paper's configurations: 4 and 10 threads at
// 512 MiB, 50 threads at 8 GiB, and the non-SGX container baseline.
func fig8Sweep() []Fig8Config {
	return []Fig8Config{
		{Label: "Thread=4 EPC=512M", Isolation: paka.SGX, MaxThreads: 4, EnclaveSize: 512 << 20},
		{Label: "Thread=10 EPC=512M", Isolation: paka.SGX, MaxThreads: 10, EnclaveSize: 512 << 20},
		{Label: "Thread=50 EPC=8G", Isolation: paka.SGX, MaxThreads: 50, EnclaveSize: 8 << 30},
		{Label: "Non-SGX", Isolation: paka.Container},
	}
}

// Fig8 sweeps thread count and EPC size on the eUDM P-AKA module,
// registering one UE at a time as in the paper: more threads change
// nothing for a single client; an oversized EPC costs paging pressure and
// a wider interquartile range.
func Fig8(ctx context.Context, cfg Config) (*Fig8Result, error) {
	n := cfg.iterations()
	result := &Fig8Result{}
	for i, point := range fig8Sweep() {
		r, err := newRig(ctx, paka.EUDM, cfg.Seed+uint64(i)*97, rigOptions{
			isolation:   point.Isolation,
			maxThreads:  point.MaxThreads,
			enclaveSize: point.EnclaveSize,
		})
		if err != nil {
			return nil, err
		}
		run, err := r.run(ctx, n)
		r.stop()
		if err != nil {
			return nil, err
		}
		result.Points = append(result.Points, Fig8Point{
			Config:     point,
			Functional: run.functional,
			Total:      run.total,
		})
	}
	return result, nil
}

// Render prints the paper-style rows.
func (r *Fig8Result) Render(w io.Writer) {
	fprintf(w, "Figure 8: Threads and EPC size vs eUDM P-AKA latency\n")
	fprintf(w, "%-20s %12s %12s %12s | %12s %12s %12s\n",
		"config", "LF q1(us)", "LF med(us)", "LF q3(us)", "LT q1(us)", "LT med(us)", "LT q3(us)")
	for _, p := range r.Points {
		fprintf(w, "%-20s %12.1f %12.1f %12.1f | %12.1f %12.1f %12.1f\n",
			p.Config.Label,
			micro(p.Functional.Q1), micro(p.Functional.Median), micro(p.Functional.Q3),
			micro(p.Total.Q1), micro(p.Total.Median), micro(p.Total.Q3))
	}
}
