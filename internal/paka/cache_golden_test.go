package paka

import (
	"bytes"
	"context"
	"testing"

	"shield5g/internal/crypto/milenage"
)

// testK2 is a second long-term key for re-provisioning scenarios.
var testK2 = []byte{0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff, 0x00}

func avEqual(a, b *UDMGenerateAVResponse) bool {
	return bytes.Equal(a.RAND, b.RAND) && bytes.Equal(a.AUTN, b.AUTN) &&
		bytes.Equal(a.XRESStar, b.XRESStar) && bytes.Equal(a.KAUSF, b.KAUSF)
}

// TestGenerateAVCachedMatchesUncached pins the cached derivation to the
// uncached (nil-cache, fresh key schedule) path byte-for-byte, across
// repeated hits, a key change, and explicit invalidation.
func TestGenerateAVCachedMatchesUncached(t *testing.T) {
	cache := milenage.NewCache()
	req := avRequest()
	for round := 0; round < 3; round++ {
		got, err := GenerateAVCached(cache, testK, req)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want, err := GenerateAVCached(nil, testK, req)
		if err != nil {
			t.Fatalf("round %d uncached: %v", round, err)
		}
		if !avEqual(got, want) {
			t.Fatalf("round %d: cached AV diverges from uncached", round)
		}
	}
	if cache.Len() != 1 {
		t.Fatalf("cache has %d entries, want 1", cache.Len())
	}

	// Same SUPI, new key: the credential check must rebuild, not serve the
	// stale schedule.
	got, err := GenerateAVCached(cache, testK2, req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := GenerateAV(testK2, req)
	if err != nil {
		t.Fatal(err)
	}
	if !avEqual(got, want) {
		t.Fatal("AV after key change diverges from uncached")
	}

	// Explicit invalidation: next hit rebuilds and still matches.
	cache.Invalidate(testSUPI)
	got, err = GenerateAVCached(cache, testK, req)
	if err != nil {
		t.Fatal(err)
	}
	want, err = GenerateAV(testK, req)
	if err != nil {
		t.Fatal(err)
	}
	if !avEqual(got, want) {
		t.Fatal("AV after invalidation diverges from uncached")
	}
}

// TestResyncCachedMatchesUncached covers the AUTS verification path with a
// shared cache: the verification outcome and recovered SQN_MS must match
// the uncached path, including MAC failure behaviour.
func TestResyncCachedMatchesUncached(t *testing.T) {
	c, err := milenage.New(testK, testOPc)
	if err != nil {
		t.Fatal(err)
	}
	sqnMS := []byte{0x00, 0x00, 0x00, 0x00, 0x02, 0x17}
	akStar, _ := c.F5Star(testRAND)
	macS, _ := c.F1Star(testRAND, sqnMS, []byte{0, 0})
	auts := make([]byte, 0, 14)
	for i := 0; i < 6; i++ {
		auts = append(auts, sqnMS[i]^akStar[i])
	}
	auts = append(auts, macS...)

	cache := milenage.NewCache()
	req := &UDMResyncRequest{SUPI: testSUPI, OPc: testOPc, RAND: testRAND, AUTS: auts}
	for round := 0; round < 3; round++ {
		got, err := ResyncCached(cache, testK, req)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !bytes.Equal(got.SQNMS, sqnMS) {
			t.Fatalf("round %d: SQN_MS = %x, want %x", round, got.SQNMS, sqnMS)
		}
	}
	// A cached schedule must not weaken MAC-S verification.
	bad := append([]byte(nil), auts...)
	bad[13] ^= 1
	if _, err := ResyncCached(cache, testK, &UDMResyncRequest{SUPI: testSUPI, OPc: testOPc, RAND: testRAND, AUTS: bad}); err == nil {
		t.Fatal("tampered AUTS accepted through cache")
	}
}

// TestModuleCacheInvalidationGolden drives the served SGX module through
// the two cache-invalidation triggers — a UDR re-provision with a new key
// and an enclave crash-restart — and checks every served AV against the
// uncached derivation.
func TestModuleCacheInvalidationGolden(t *testing.T) {
	h := newHarness(t, 77)
	m := h.module(t, EUDM, SGX)
	ctx := context.Background()
	if err := m.ProvisionSubscriber(ctx, testSUPI, testK); err != nil {
		t.Fatalf("provision: %v", err)
	}

	post := func() *UDMGenerateAVResponse {
		t.Helper()
		var resp UDMGenerateAVResponse
		if err := h.client.Post(ctx, EUDM.ServiceName(), PathUDMGenerateAV, avRequest(), &resp); err != nil {
			t.Fatalf("Post: %v", err)
		}
		return &resp
	}
	check := func(k []byte, phase string) {
		t.Helper()
		got := post()
		want, err := GenerateAV(k, avRequest())
		if err != nil {
			t.Fatal(err)
		}
		if !avEqual(got, want) {
			t.Fatalf("%s: served AV diverges from uncached derivation", phase)
		}
	}

	check(testK, "initial")
	check(testK, "cache warm") // second request serves from the cached schedule

	// UDR re-provision with a new key: the module must invalidate the
	// cached schedule and derive with the fresh key.
	if err := m.ProvisionSubscriber(ctx, testSUPI, testK2); err != nil {
		t.Fatalf("re-provision: %v", err)
	}
	check(testK2, "after re-provision")

	// Enclave crash-restart: the cache is reset with the rest of the
	// in-enclave state; the SGX module recovers the key from its sealed
	// backup and the first post-restart AV must still be correct.
	if err := m.Restart(ctx); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	check(testK2, "after restart")
}
