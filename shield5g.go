// Package shield5g is a from-scratch Go reproduction of "Towards
// Shielding 5G Control Plane Functions" (DSN 2024): a 5G core network
// whose security-critical 5G-AKA functions are extracted into P-AKA
// microservices and shielded inside simulated SGX enclaves via a
// Gramine-style LibOS, together with the complete measurement harness
// that regenerates every table and figure of the paper's evaluation.
//
// The top-level package re-exports the supported public API; the
// implementation lives under internal/.
//
// Quick start:
//
//	tb, err := shield5g.NewTestbed(ctx, shield5g.SliceConfig{Isolation: shield5g.SGX})
//	sub, err := tb.AddSubscriber(ctx, key, nil)
//	sess, err := tb.Register(ctx, sub)
package shield5g

import (
	"context"
	"crypto/ed25519"
	"io"

	"shield5g/internal/admission"
	"shield5g/internal/chaos"
	"shield5g/internal/core"
	"shield5g/internal/crypto/suci"
	"shield5g/internal/deploy"
	"shield5g/internal/experiments"
	"shield5g/internal/gnb"
	"shield5g/internal/hmee/sgx"
	"shield5g/internal/keyissues"
	"shield5g/internal/paka"
	"shield5g/internal/sbi"
	"shield5g/internal/simclock"
	"shield5g/internal/ue"
)

// Isolation selects how the AKA functions are deployed.
type Isolation = paka.Isolation

// Isolation modes: the unmodified baseline, the extracted container, and
// the enclave-shielded deployment.
const (
	Monolithic = paka.Monolithic
	Container  = paka.Container
	SGX        = paka.SGX
	// SEV deploys the modules in AMD SEV-SNP-style confidential VMs —
	// the alternative HMEE backend of the paper's §IV-C discussion.
	SEV = paka.SEV
)

// SliceConfig configures a network slice deployment.
type SliceConfig = deploy.SliceConfig

// Slice is a running network slice.
type Slice = deploy.Slice

// Testbed is a deployed slice with provisioning and registration helpers.
type Testbed = core.Testbed

// Subscriber is a provisioned subscriber and its UE device.
type Subscriber = core.Subscriber

// SUPI is a subscription permanent identifier (IMSI form).
type SUPI = suci.SUPI

// UE is a simulated device.
type UE = ue.UE

// COTSProfile reproduces commercial-device behaviour (see OnePlus8).
type COTSProfile = ue.COTSProfile

// RadioProfile models the access-side latency of the RAN.
type RadioProfile = gnb.RadioProfile

// Session is an attached UE's RAN context.
type Session = gnb.Session

// MassOptions configures a mass-registration run (see MassResult).
type MassOptions = gnb.MassOptions

// MassResult aggregates a gNBSIM mass-registration run, including
// throughput figures and per-class failure accounting.
type MassResult = gnb.MassResult

// ExperimentConfig controls experiment scale and reproducibility.
type ExperimentConfig = experiments.Config

// ChaosConfig sets the seeded fault-injection rates and shapes for a
// slice (SliceConfig.Chaos).
type ChaosConfig = chaos.Config

// ChaosInjector is a slice's running fault injector (Slice.Chaos): arm or
// disarm it around workload phases and read per-kind injection counts.
type ChaosInjector = chaos.Injector

// DefaultChaosMix spreads a total per-request fault rate across the fault
// taxonomy (latency spikes, transient errors, dropped replies, AEX storms,
// EPC evictions, module crashes).
func DefaultChaosMix(seed uint64, totalRate float64) ChaosConfig {
	return chaos.DefaultMix(seed, totalRate)
}

// ResilienceConfig tunes the SBI deadline/retry/circuit-breaker layer
// (SliceConfig.Resilience).
type ResilienceConfig = sbi.ResilienceConfig

// RetryPolicy shapes the resilience layer's exponential backoff.
type RetryPolicy = sbi.RetryPolicy

// BreakerConfig shapes the per-service circuit breaker.
type BreakerConfig = sbi.BreakerConfig

// DefaultResilienceConfig returns the policy a chaos-enabled slice uses
// when none is given.
func DefaultResilienceConfig() ResilienceConfig { return sbi.DefaultResilienceConfig() }

// OverloadProfile selects the TS 29.500-style overload-control mechanisms
// of a slice (SliceConfig.Overload): bounded-queue shedding at the metered
// servers, the AMF's priority admission buckets, and client-side
// proportional throttling. The zero value is the "limiter off" baseline —
// servers sense and queue but never reject.
type OverloadProfile = deploy.OverloadProfile

// AdmissionConfig tunes the AMF's per-(gNB, PLMN) priority token buckets.
type AdmissionConfig = admission.Config

// DefaultAdmissionConfig returns the storm-survival admission profile:
// emergency unlimited, re-attach generous, fresh attach tight. The slice
// fills in the virtual clock.
func DefaultAdmissionConfig() AdmissionConfig { return admission.DefaultConfig(nil) }

// Priority is a registration's admission priority class.
type Priority = sbi.Priority

// The three storm priority classes, least- to most-privileged.
const (
	PriorityFresh     = sbi.PriorityFresh
	PriorityReattach  = sbi.PriorityReattach
	PriorityEmergency = sbi.PriorityEmergency
)

// Cycles is a span of virtual CPU cycles on the deterministic clock
// (e.g. StormSpec.Spacing).
type Cycles = simclock.Cycles

// StormSpec shapes a seeded signaling-storm arrival plan.
type StormSpec = chaos.StormSpec

// StormEvent is one planned storm arrival (class + virtual arrival time).
type StormEvent = chaos.StormEvent

// StormPlan is a seeded storm arrival sequence for GNB.RunStorm.
type StormPlan = chaos.StormPlan

// NewStormPlan draws the deterministic arrival plan for a signaling storm.
func NewStormPlan(seed uint64, spec StormSpec) (*StormPlan, error) {
	return chaos.NewStormPlan(seed, spec)
}

// StormOptions configures a storm replay; StormResult reports the
// per-class outcome.
type (
	StormOptions = gnb.StormOptions
	StormResult  = gnb.StormResult
)

// KeyIssue is one TR 33.848 key-issue row of the paper's Table V.
type KeyIssue = keyissues.KeyIssue

// NewTestbed deploys a network slice under the configured isolation mode.
func NewTestbed(ctx context.Context, cfg SliceConfig) (*Testbed, error) {
	return core.NewTestbed(ctx, cfg)
}

// GNBSIM returns the simulated-RAN radio profile used for mass
// experiments.
func GNBSIM() RadioProfile { return gnb.GNBSIM() }

// USRPX310 returns the paper's OTA software-defined-radio profile.
func USRPX310() RadioProfile { return gnb.USRPX310() }

// OnePlus8 returns the paper's OTA test device profile.
func OnePlus8() COTSProfile { return ue.OnePlus8() }

// Experiments lists the reproducible tables and figures.
func Experiments() []string { return core.ExperimentNames() }

// RunExperiment regenerates one named table or figure, writing the
// paper-style rows to w.
func RunExperiment(ctx context.Context, name string, cfg ExperimentConfig, w io.Writer) error {
	return core.RunExperiment(ctx, name, cfg, w)
}

// RunAllExperiments regenerates every table and figure in order.
func RunAllExperiments(ctx context.Context, cfg ExperimentConfig, w io.Writer) error {
	return core.RunAll(ctx, cfg, w)
}

// CSVExperiments lists the experiments that support raw-series CSV export.
func CSVExperiments() []string { return core.CSVExperiments() }

// WriteExperimentCSV runs one experiment and writes its raw series as CSV
// (for regenerating the paper's plots with external tooling).
func WriteExperimentCSV(ctx context.Context, name string, cfg ExperimentConfig, w io.Writer) error {
	return core.WriteExperimentCSV(ctx, name, cfg, w)
}

// KeyIssues returns the paper's Table V assessment.
func KeyIssues() []KeyIssue { return keyissues.Table() }

// ModuleKind identifies one of the three P-AKA modules.
type ModuleKind = paka.ModuleKind

// The P-AKA modules of the paper's Table I.
const (
	EUDM  = paka.EUDM
	EAUSF = paka.EAUSF
	EAMF  = paka.EAMF
)

// Module is one deployed P-AKA microservice.
type Module = paka.Module

// WithSwitchless marks ctx's requests as willing to ride a module's
// switchless ECALL ring when the slice negotiated one
// (SliceConfig.Switchless). The mass drivers set it from
// MassOptions.Switchless; single-call paths opt in per request.
func WithSwitchless(ctx context.Context) context.Context {
	return paka.WithSwitchless(ctx)
}

// Enclave is a simulated SGX enclave (sealing, attestation,
// introspection).
type Enclave = sgx.Enclave

// Quote is an attestation quote signed by the platform quoting key.
type Quote = sgx.Quote

// VerifyQuote checks an attestation quote against the platform's quoting
// public key and, optionally, an expected enclave measurement.
func VerifyQuote(qePub ed25519.PublicKey, q *Quote, expectedMeasurement *[32]byte) error {
	return sgx.VerifyQuote(qePub, q, expectedMeasurement)
}

// ErrUnseal reports sealed data that the unsealing enclave cannot open.
var ErrUnseal = sgx.ErrUnseal
