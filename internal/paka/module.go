package paka

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"shield5g/internal/costmodel"
	"shield5g/internal/crypto/milenage"
	"shield5g/internal/hmee/gramine"
	"shield5g/internal/hmee/sev"
	"shield5g/internal/hmee/sgx"
	"shield5g/internal/metrics"
	"shield5g/internal/sbi"
)

// Config describes one P-AKA module deployment.
type Config struct {
	// Kind selects eUDM, eAUSF or eAMF.
	Kind ModuleKind
	// Isolation is Container or SGX. Monolithic mode has no module
	// process; use NewMonolithic* in client.go instead.
	Isolation Isolation
	// Env supplies the shared cost environment.
	Env *costmodel.Env
	// Platform is the SGX host; required when Isolation is SGX.
	Platform *sgx.Platform
	// Registry is where the module's SBI server registers.
	Registry *sbi.Registry

	// EnclaveSizeBytes overrides the 512 MiB default (Fig. 8 sweeps).
	EnclaveSizeBytes uint64
	// MaxThreads overrides the 4-thread default (Fig. 8 sweeps).
	MaxThreads int
	// DisablePreheat turns off sgx.preheat_enclave.
	DisablePreheat bool
	// Exitless enables Gramine's switchless OCALLs (§V-B7 ablation;
	// the paper flags the feature as not production-ready). SGX only.
	Exitless bool
	// Switchless enables the switchless ECALL submission ring: a
	// dedicated in-enclave dispatcher thread pins one TCS and serves
	// shared-memory submissions, so steady-state requests cross with
	// zero EENTER/EEXIT. Changes the enclave measurement (DESIGN.md
	// §15) and bumps the manifest thread count for the dispatcher TCS.
	// Requests opt in per call with WithSwitchless. SGX only.
	Switchless bool
	// UserLevelTCP links an mTCP-style user-level network stack into
	// the module, collapsing the per-request syscall census at the cost
	// of a larger TCB (§V-B7 ablation).
	UserLevelTCP bool
	// ReserveBatchTCS keeps one TCS slot free beyond the resident
	// threads so batch ECALLs (DoBatch, the eUDM AV pool refill) can
	// enter the enclave while the server threads stay resident. SGX
	// only; bumps the manifest thread count to HelperThreads+2.
	ReserveBatchTCS bool
	// SignKey signs the GSC image; generated when nil.
	SignKey ed25519.PrivateKey
	// Service overrides the module's SBI service name (default
	// Kind.ServiceName()). Replicated deployments give every replica of a
	// kind its own name ("eudm", "eudm-r1", ...) so each registers its own
	// server, carries its own overload meter, and is addressed by its own
	// shard's VNFs. The manifest/image identity stays kind-based: replicas
	// run the same operator-signed image.
	Service string
}

// serviceName resolves the module's SBI service name from its config.
func (c *Config) serviceName() string {
	if c.Service != "" {
		return c.Service
	}
	return c.Kind.ServiceName()
}

// Module is one deployed P-AKA microservice.
type Module struct {
	kind      ModuleKind
	isolation Isolation
	profile   Profile
	env       *costmodel.Env
	server    *sbi.Server
	registry  *sbi.Registry

	// cfg is retained so Restart can redeploy an identical runtime (same
	// manifest, same sign key, same enclave measurement).
	cfg Config

	// rtMu guards the runtime pointer, which Restart swaps while requests
	// may be in flight; restartMu single-files restarts themselves.
	rtMu      sync.RWMutex
	runtime   Runtime
	restartMu sync.Mutex
	restarts  atomic.Uint64

	// Latency recorders feeding the experiments: the module-side
	// functional (L_F) and total (L_T) windows of every served request,
	// plus the full server-side residence (the service time used by the
	// horizontal-scaling experiment).
	functional *metrics.Recorder
	total      *metrics.Recorder
	serverSide *metrics.Recorder

	// sessMu guards the per-connection keep-alive sessions (session.go).
	sessMu   sync.Mutex
	sessions map[uint64]*moduleSession

	// milCache memoizes per-subscriber MILENAGE key schedules (eUDM only).
	// It is invalidated per SUPI on re-provision and wholesale on Restart,
	// mirroring the loss of in-enclave state.
	milCache *milenage.Cache

	secretMu    sync.Mutex
	secretNames []string
	// sealed holds host-side sealed backups of provisioned subscriber
	// keys (SGX only): opaque to the host, recoverable by a restarted
	// enclave with the same measurement.
	sealed map[string][]byte
}

// New deploys a P-AKA module under the configured isolation mode. For SGX
// the full GSC build + enclave load cost is charged to ctx's account.
func New(ctx context.Context, cfg Config) (*Module, error) {
	profile, ok := Profiles()[cfg.Kind]
	if !ok {
		return nil, fmt.Errorf("paka: unknown module kind %d", cfg.Kind)
	}
	if cfg.Env == nil {
		return nil, errors.New("paka: Config.Env is required")
	}
	if cfg.Registry == nil {
		return nil, errors.New("paka: Config.Registry is required")
	}

	// Resolve the sign key up front so a crash-restart rebuilds the
	// byte-identical shielded image instead of re-keying.
	if cfg.Isolation == SGX && cfg.SignKey == nil {
		var err error
		_, cfg.SignKey, err = ed25519.GenerateKey(rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("paka: generate GSC sign key: %w", err)
		}
	}

	m := &Module{
		kind:       cfg.Kind,
		isolation:  cfg.Isolation,
		profile:    profile,
		env:        cfg.Env,
		registry:   cfg.Registry,
		cfg:        cfg,
		functional: &metrics.Recorder{},
		total:      &metrics.Recorder{},
		serverSide: &metrics.Recorder{},
		milCache:   milenage.NewCache(),
		sealed:     make(map[string][]byte),
	}

	switch cfg.Isolation {
	case Container:
		m.runtime = newNativeRuntime(cfg.Env)
	case SGX:
		if cfg.Platform == nil {
			return nil, errors.New("paka: SGX isolation requires Config.Platform")
		}
		rt, err := buildSGXRuntime(ctx, cfg, profile)
		if err != nil {
			return nil, err
		}
		m.runtime = rt
	case SEV:
		rt, err := newSEVRuntime(ctx, cfg.Env, cfg.Kind.ServiceName()+"-vm", profile.ImageBytes)
		if err != nil {
			return nil, err
		}
		m.runtime = rt
	default:
		return nil, fmt.Errorf("paka: isolation %s not deployable as a module", cfg.Isolation)
	}

	// The module's own sbi.Server carries no env: all server-side costs
	// are modelled by the runtime's request path, which would otherwise
	// be double-charged.
	m.server = sbi.NewServer(cfg.serviceName(), nil)
	m.registerEndpoints()
	if err := cfg.Registry.Register(m.server); err != nil {
		m.runtime.Shutdown()
		return nil, err
	}
	return m, nil
}

func buildSGXRuntime(ctx context.Context, cfg Config, profile Profile) (Runtime, error) {
	manifest := gramine.DefaultManifest("/app/" + cfg.Kind.ServiceName())
	if cfg.EnclaveSizeBytes != 0 {
		manifest.EnclaveSizeBytes = cfg.EnclaveSizeBytes
	}
	if cfg.MaxThreads != 0 {
		manifest.MaxThreads = cfg.MaxThreads
	}
	manifest.PreheatEnclave = !cfg.DisablePreheat
	if cfg.Exitless {
		manifest.Exitless = true
		// Switchless calls need a dedicated untrusted helper thread.
		if manifest.MaxThreads < gramine.HelperThreads+2 {
			manifest.MaxThreads = gramine.HelperThreads + 2
		}
	}
	if cfg.ReserveBatchTCS {
		// The resident process and helper threads hold every default TCS
		// slot permanently; batch ECALLs need a spare one to enter.
		if manifest.MaxThreads < gramine.HelperThreads+2 {
			manifest.MaxThreads = gramine.HelperThreads + 2
		}
	}
	if cfg.Switchless {
		manifest.SwitchlessECalls = true
		// The ring dispatcher pins a TCS of its own on top of the resident
		// server thread.
		need := gramine.HelperThreads + 2
		if cfg.ReserveBatchTCS {
			// The AV-pool prewarm still enters through a classic batch
			// ECALL (it runs before any connection negotiates the ring),
			// so the spare batch slot must survive the dispatcher pin.
			need = gramine.HelperThreads + 3
		}
		if manifest.MaxThreads < need {
			manifest.MaxThreads = need
		}
	}

	signKey := cfg.SignKey
	if signKey == nil {
		var err error
		_, signKey, err = ed25519.GenerateKey(rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("paka: generate GSC sign key: %w", err)
		}
	}
	si, err := gramine.BuildShielded(moduleImage(cfg.Kind, profile, cfg.UserLevelTCP), manifest, signKey)
	if err != nil {
		return nil, fmt.Errorf("paka: GSC build: %w", err)
	}
	var opts []gramine.LaunchOption
	if cfg.UserLevelTCP {
		opts = append(opts, gramine.WithSyscallProfile(gramine.UserTCPSyscallProfile()))
	}
	return newSGXRuntime(ctx, cfg.Platform, si, opts...)
}

// moduleImage synthesises the module's container image: the paper's images
// are OAI-derived Ubuntu images of a couple of gigabytes whose contents
// GSC measures as trusted files. Linking the user-level TCP stack adds its
// libraries to the image — and therefore to the measured TCB.
func moduleImage(kind ModuleKind, profile Profile, userTCP bool) gramine.ContainerImage {
	total := profile.ImageBytes
	img := gramine.ContainerImage{
		Name: kind.ServiceName() + ":v1.5.0",
		Files: []gramine.ImageFile{
			{Path: "/usr/lib/x86_64-linux-gnu/libc.so.6", Size: total * 40 / 100},
			{Path: "/usr/lib/x86_64-linux-gnu/libssl.so.3", Size: total * 25 / 100},
			{Path: "/usr/lib/x86_64-linux-gnu/libpistache.so", Size: total * 15 / 100},
			{Path: "/app/" + kind.ServiceName(), Size: total * 10 / 100},
			{Path: "/usr/share/ca-certificates/operator.pem", Size: total * 10 / 100},
			{Path: "/proc/self/status", Size: 1}, // excluded by GSC
		},
	}
	if userTCP {
		img.Files = append(img.Files,
			gramine.ImageFile{Path: "/usr/lib/x86_64-linux-gnu/libmtcp.so", Size: 24_000_000},
			gramine.ImageFile{Path: "/usr/lib/x86_64-linux-gnu/libdpdk.so", Size: 36_000_000},
		)
	}
	return img
}

// rt returns the current runtime; requests that grabbed an older runtime
// across a Restart fail with a transient error and are retried.
func (m *Module) rt() Runtime {
	m.rtMu.RLock()
	defer m.rtMu.RUnlock()
	return m.runtime
}

// registerEndpoints wires the kind-specific handlers.
func (m *Module) registerEndpoints() {
	switch m.kind {
	case EUDM:
		m.server.HandleDual(PathUDMGenerateAV, m.endpoint(m.handleGenerateAV))
		m.server.HandleDual(PathUDMResync, m.endpoint(m.handleResync))
		// The batch endpoint is a maintenance path (the AV pool refill),
		// not a served request: it bypasses the endpoint wrapper so the
		// L_F/L_T recorders keep measuring only the paper's request path.
		m.server.HandleDual(PathUDMGenerateAVBatch,
			sbi.BinHandler(func(ctx context.Context, req *UDMGenerateAVBatchRequest) (*UDMGenerateAVBatchResponse, error) {
				return m.GenerateAVBatch(ctx, req)
			}))
	case EAUSF:
		m.server.HandleDual(PathAUSFDeriveSE, m.endpoint(m.handleDeriveSE))
	case EAMF:
		m.server.HandleDual(PathAMFDeriveKAMF, m.endpoint(m.handleDeriveKAMF))
	}
}

// endpointCall binds one served request's state for serve's
// func(Exec) error callback. A per-call closure would capture ctx, body
// and the out variable on the heap every request; pooling the binding
// leaves only the method-value header as per-request overhead.
type endpointCall struct {
	m       *Module
	ctx     context.Context
	body    []byte
	handler func(ctx context.Context, ex Exec, body []byte) ([]byte, error)
	out     []byte
}

var endpointCallPool = sync.Pool{New: func() any { return new(endpointCall) }}

//shieldlint:hotpath
func (c *endpointCall) run(ex Exec) error {
	m := c.m
	fn := m.env.JitterFor(c.ctx).LogNormal(m.profile.FnCycles, m.profile.FnSigma)
	if m.isolation == SGX {
		fn += m.profile.SGXExtraCycles
	}
	ex.Compute(fn)
	ex.Touch(m.profile.HeapBytes)
	var err error
	c.out, err = c.handler(c.ctx, ex, c.body)
	return err
}

// endpoint wraps a handler with the runtime's modelled request path and
// the module's calibrated functional cost, recording the L_F/L_T windows.
func (m *Module) endpoint(handler func(ctx context.Context, ex Exec, body []byte) ([]byte, error)) sbi.HandlerFunc {
	//shieldlint:hotpath
	return func(ctx context.Context, body []byte) ([]byte, error) {
		c := endpointCallPool.Get().(*endpointCall)
		c.m, c.ctx, c.body, c.handler = m, ctx, body, handler
		bd, err := m.serve(ctx, m.profile.InBytes, m.profile.OutBytes, c.run)
		out := c.out
		*c = endpointCall{}
		endpointCallPool.Put(c)
		if err != nil {
			return nil, err
		}
		model := m.env.Model
		m.functional.Add(model.Duration(bd.Functional))
		m.total.Add(model.Duration(bd.Total))
		m.serverSide.Add(model.Duration(bd.ServerSide))
		return out, nil
	}
}

// Handler request structs are pooled: the decoded fields are either
// copied strings or zero-copy views into the loaned body, nothing below
// the handler retains the struct, and every response carries its own
// backing (GenerateAVCachedInto, DeriveSE's single buffer, kdf outputs).
// Each struct is zeroed before going back so a partial decode cannot
// leak into the next request.
var (
	genAVReqPool      = sync.Pool{New: func() any { return new(UDMGenerateAVRequest) }}
	resyncReqPool     = sync.Pool{New: func() any { return new(UDMResyncRequest) }}
	deriveSEReqPool   = sync.Pool{New: func() any { return new(AUSFDeriveSERequest) }}
	deriveKAMFReqPool = sync.Pool{New: func() any { return new(AMFDeriveKAMFRequest) }}
)

//shieldlint:hotpath
func (m *Module) handleGenerateAV(_ context.Context, ex Exec, body []byte) ([]byte, error) {
	req := genAVReqPool.Get().(*UDMGenerateAVRequest)
	resp, perr := m.generateAV(ex, body, req)
	*req = UDMGenerateAVRequest{}
	genAVReqPool.Put(req)
	if perr != nil {
		return nil, perr
	}
	return sbi.MarshalBodyLike(body, resp)
}

func (m *Module) generateAV(ex Exec, body []byte, req *UDMGenerateAVRequest) (*UDMGenerateAVResponse, error) {
	if err := sbi.DecodeBody(body, req); err != nil {
		return nil, sbi.Problem(400, "Bad Request", "MANDATORY_IE_INCORRECT", "decode: %v", err)
	}
	k, ok := ex.LoadSecret(subscriberSecret(req.SUPI))
	if !ok {
		return nil, sbi.Problem(404, "Not Found", "USER_NOT_FOUND", "%v: %s", ErrUnknownSubscriber, req.SUPI)
	}
	resp, err := GenerateAVCached(m.milCache, k, req)
	if err != nil {
		return nil, sbi.Problem(400, "Bad Request", "AV_GENERATION_PROBLEM", "%v", err)
	}
	return resp, nil
}

//shieldlint:hotpath
func (m *Module) handleResync(_ context.Context, ex Exec, body []byte) ([]byte, error) {
	req := resyncReqPool.Get().(*UDMResyncRequest)
	resp, perr := m.resync(ex, body, req)
	*req = UDMResyncRequest{}
	resyncReqPool.Put(req)
	if perr != nil {
		return nil, perr
	}
	return sbi.MarshalBodyLike(body, resp)
}

func (m *Module) resync(ex Exec, body []byte, req *UDMResyncRequest) (*UDMResyncResponse, error) {
	if err := sbi.DecodeBody(body, req); err != nil {
		return nil, sbi.Problem(400, "Bad Request", "MANDATORY_IE_INCORRECT", "decode: %v", err)
	}
	k, ok := ex.LoadSecret(subscriberSecret(req.SUPI))
	if !ok {
		return nil, sbi.Problem(404, "Not Found", "USER_NOT_FOUND", "%v: %s", ErrUnknownSubscriber, req.SUPI)
	}
	resp, err := ResyncCached(m.milCache, k, req)
	if err != nil {
		return nil, sbi.Problem(403, "Forbidden", "SYNC_FAILURE", "%v", err)
	}
	return resp, nil
}

//shieldlint:hotpath
func (m *Module) handleDeriveSE(_ context.Context, _ Exec, body []byte) ([]byte, error) {
	req := deriveSEReqPool.Get().(*AUSFDeriveSERequest)
	var resp *AUSFDeriveSEResponse
	perr := sbi.DecodeBody(body, req)
	if perr != nil {
		perr = sbi.Problem(400, "Bad Request", "MANDATORY_IE_INCORRECT", "decode: %v", perr)
	} else if resp, perr = DeriveSE(req); perr != nil {
		perr = sbi.Problem(400, "Bad Request", "AV_GENERATION_PROBLEM", "%v", perr)
	}
	*req = AUSFDeriveSERequest{}
	deriveSEReqPool.Put(req)
	if perr != nil {
		return nil, perr
	}
	return sbi.MarshalBodyLike(body, resp)
}

//shieldlint:hotpath
func (m *Module) handleDeriveKAMF(_ context.Context, _ Exec, body []byte) ([]byte, error) {
	req := deriveKAMFReqPool.Get().(*AMFDeriveKAMFRequest)
	var resp *AMFDeriveKAMFResponse
	perr := sbi.DecodeBody(body, req)
	if perr != nil {
		perr = sbi.Problem(400, "Bad Request", "MANDATORY_IE_INCORRECT", "decode: %v", perr)
	} else if resp, perr = DeriveKAMF(req); perr != nil {
		perr = sbi.Problem(400, "Bad Request", "AV_GENERATION_PROBLEM", "%v", perr)
	}
	*req = AMFDeriveKAMFRequest{}
	deriveKAMFReqPool.Put(req)
	if perr != nil {
		return nil, perr
	}
	return sbi.MarshalBodyLike(body, resp)
}

func subscriberSecret(supi string) string { return "subscriber-k:" + supi }

// GenerateAVBatch generates one HE AV per item inside a single boundary
// crossing: K× the AKA crypto, memory touches and shield bytes, but —
// under SGX — exactly one EENTER/EEXIT transition pair instead of the
// ~90 a cold served request costs. This is the enclave half of the eUDM
// AV precomputation pool; the module needs Config.ReserveBatchTCS so the
// batch entry finds a free TCS slot. Only meaningful for eUDM.
func (m *Module) GenerateAVBatch(ctx context.Context, req *UDMGenerateAVBatchRequest) (*UDMGenerateAVBatchResponse, error) {
	if m.kind != EUDM {
		return nil, fmt.Errorf("paka: %s does not generate authentication vectors", m.kind)
	}
	k := len(req.Items)
	resp := &UDMGenerateAVBatchResponse{}
	if k == 0 {
		return resp, nil
	}
	// The whole refill derives into one backing array and one vector
	// slice: two allocations per batch instead of one 80-byte backing,
	// one response struct and one secret-name string per vector.
	backing := make([]byte, k*AVBackingBytes)
	resp.Vectors = make([]UDMGenerateAVResponse, k)
	err := m.rt().DoBatch(ctx, k*m.profile.InBytes, k*m.profile.OutBytes, func(ex Exec) error {
		// A refill is per-SUPI: reuse the key lookup (and its secret-name
		// string) across consecutive items for the same subscriber.
		var key []byte
		lastSUPI := ""
		for i := range req.Items {
			item := &req.Items[i]
			fn := m.env.JitterFor(ctx).LogNormal(m.profile.FnCycles, m.profile.FnSigma)
			if m.isolation == SGX {
				fn += m.profile.SGXExtraCycles
			}
			ex.Compute(fn)
			ex.Touch(m.profile.HeapBytes)
			if i == 0 || item.SUPI != lastSUPI {
				var ok bool
				key, ok = ex.LoadSecret(subscriberSecret(item.SUPI))
				if !ok {
					return sbi.Problem(404, "Not Found", "USER_NOT_FOUND", "%v: %s", ErrUnknownSubscriber, item.SUPI)
				}
				lastSUPI = item.SUPI
			}
			av := &resp.Vectors[i]
			AVInto(backing[i*AVBackingBytes:(i+1)*AVBackingBytes], av)
			if err := GenerateAVCachedInto(m.milCache, key, item, av); err != nil {
				return sbi.Problem(400, "Bad Request", "AV_GENERATION_PROBLEM", "%v", err)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// ProvisionSubscriber installs a subscriber's long-term key into the
// module's memory — inside the enclave when SGX-isolated, so the key
// never appears in attacker-visible memory afterwards. Only meaningful
// for the eUDM module.
func (m *Module) ProvisionSubscriber(ctx context.Context, supi string, k []byte) error {
	if m.kind != EUDM {
		return fmt.Errorf("paka: %s does not hold subscriber keys", m.kind)
	}
	name := subscriberSecret(supi)
	err := m.rt().Do(ctx, func(ex Exec) error {
		ex.StoreSecret(name, k)
		return nil
	})
	if err != nil {
		return fmt.Errorf("paka: provision %s: %w", supi, err)
	}
	// The key may have changed (UDR re-provision): any cached MILENAGE
	// schedule for this subscriber is now stale.
	m.milCache.Invalidate(supi)
	m.secretMu.Lock()
	m.secretNames = append(m.secretNames, name)
	m.secretMu.Unlock()

	// Keep a host-side sealed backup so a crash-restarted enclave (same
	// measurement, same platform) can recover the key without the UDR
	// round trip. Plain containers get no backup: their keys die with the
	// process and come back through the UDM re-provisioning path.
	if enc := m.Enclave(); enc != nil {
		blob, serr := enc.Seal(k, []byte(name))
		if serr != nil {
			return fmt.Errorf("paka: seal backup for %s: %w", supi, serr)
		}
		m.secretMu.Lock()
		m.sealed[name] = blob
		m.secretMu.Unlock()
	}
	return nil
}

// MemoryDump is the privileged attacker's view of the module's secret
// regions (the Key Issue 7 memory-introspection scenario): for a plain
// container it yields the plaintext keys; for an SGX module it yields MEE
// ciphertext.
func (m *Module) MemoryDump() map[string][]byte {
	m.secretMu.Lock()
	names := append([]string(nil), m.secretNames...)
	m.secretMu.Unlock()
	out := make(map[string][]byte, len(names))
	for _, name := range names {
		switch rt := m.rt().(type) {
		case *sgxRuntime:
			if d, ok := rt.enclave().Introspect(name); ok {
				out[name] = d
			}
		case *sevRuntime:
			if d, ok := rt.machine.Introspect(name); ok {
				out[name] = d
			}
		case *nativeRuntime:
			if d, ok := rt.dump(name); ok {
				out[name] = d
			}
		}
	}
	return out
}

// Kind reports the module kind.
func (m *Module) Kind() ModuleKind { return m.kind }

// Isolation reports the module's deployment mode.
func (m *Module) Isolation() Isolation { return m.isolation }

// Profile returns the module's calibrated profile.
func (m *Module) Profile() Profile { return m.profile }

// ServiceName is the module's SBI service name (the replica-specific
// override when one was configured).
func (m *Module) ServiceName() string { return m.cfg.serviceName() }

// LoadDuration is the modelled deployment time (Fig. 7 when SGX).
func (m *Module) LoadDuration() time.Duration { return m.rt().LoadDuration() }

// Stats snapshots the module's SGX counters (zero for containers).
func (m *Module) Stats() sgx.StatsSnapshot { return m.rt().Stats() }

// AccrueUptime models the module staying deployed for d of virtual time.
func (m *Module) AccrueUptime(d time.Duration) { m.rt().AccrueUptime(d) }

// Warm reports whether the module has served its first request.
func (m *Module) Warm() bool { return m.rt().Warm() }

// HostTCBBytes approximates the host software a non-enclave deployment
// must additionally trust: kernel, container engine and system services.
// Used for the TCB comparison in the optimization ablation.
const HostTCBBytes = 4 << 30

// TCBBytes reports the module's trusted computing base: for SGX, the bytes
// measured into the enclave; for a plain container, the image plus the
// entire host software stack that can read its memory.
func (m *Module) TCBBytes() uint64 {
	switch rt := m.rt().(type) {
	case *sgxRuntime:
		return rt.inst.TCBBytes()
	case *sevRuntime:
		return rt.machine.TCBBytes()
	default:
		return m.profile.ImageBytes + HostTCBBytes
	}
}

// Machine exposes the module's confidential VM; nil when not
// SEV-isolated.
func (m *Module) Machine() *sev.Machine {
	if rt, ok := m.rt().(*sevRuntime); ok {
		return rt.machine
	}
	return nil
}

// Enclave exposes the module's enclave for sealing/attestation; nil when
// not SGX-isolated.
func (m *Module) Enclave() *sgx.Enclave {
	if rt, ok := m.rt().(*sgxRuntime); ok {
		return rt.enclave()
	}
	return nil
}

// WithSwitchless marks ctx's requests as willing to use the module's
// switchless ECALL ring when the module was deployed with
// Config.Switchless. Calls without the mark (and all calls to modules
// without a ring) take the classic ECALL path unchanged.
func WithSwitchless(ctx context.Context) context.Context {
	return sgx.WithSwitchless(ctx)
}

// RingOccupancy reports the instantaneous depth of the module's
// switchless submission ring: how many submitted calls the in-enclave
// dispatcher has not yet consumed. Zero when the module is not
// SGX-isolated or was deployed without Config.Switchless. The eUDM AV
// pool uses it as a coalescing hint to widen refill batches while
// demand is queued.
func (m *Module) RingOccupancy() int {
	if rt, ok := m.rt().(*sgxRuntime); ok {
		return rt.inst.RingOccupancy()
	}
	return 0
}

// RingStats snapshots the switchless ring counters (zero-valued when no
// ring is attached).
func (m *Module) RingStats() sgx.RingStats {
	if rt, ok := m.rt().(*sgxRuntime); ok {
		return rt.inst.RingStats()
	}
	return sgx.RingStats{}
}

// FunctionalLatency returns the recorder of module-side L_F samples.
func (m *Module) FunctionalLatency() *metrics.Recorder { return m.functional }

// TotalLatency returns the recorder of module-side L_T samples.
func (m *Module) TotalLatency() *metrics.Recorder { return m.total }

// ServerSideLatency returns the recorder of full server-side residence
// times (the per-request service time of the module).
func (m *Module) ServerSideLatency() *metrics.Recorder { return m.serverSide }

// ResetRecorders clears the latency recorders between experiment phases.
func (m *Module) ResetRecorders() {
	m.functional.Reset()
	m.total.Reset()
	m.serverSide.Reset()
}

// Stop deregisters and shuts the module down.
func (m *Module) Stop() {
	m.registry.Deregister(m.server.Name())
	m.dropSessions()
	m.rt().Shutdown()
}

// Restarts reports how many crash-restarts the module has survived.
func (m *Module) Restarts() uint64 { return m.restarts.Load() }

// Restart models a whole-NF crash and recovery: the current runtime is
// torn down (for SGX the enclave is destroyed, flushing every in-enclave
// secret) and an identical one is redeployed from the retained Config,
// re-paying the full load cost — the paper's Fig. 7 0.96–0.99 min enclave
// load penalty — against ctx's account in virtual time. SGX modules then
// recover their subscriber keys from the host-side sealed backups (same
// measurement on the same platform ⇒ same sealing key); plain containers
// come back empty and rely on the UDM's re-provisioning degradation path.
// Requests in flight on the old runtime fail transiently and are retried
// by the SBI resilience layer.
func (m *Module) Restart(ctx context.Context) error {
	m.restartMu.Lock()
	defer m.restartMu.Unlock()

	m.rt().Shutdown()

	var fresh Runtime
	switch m.isolation {
	case Container:
		fresh = newNativeRuntime(m.cfg.Env)
	case SGX:
		rt, err := buildSGXRuntime(ctx, m.cfg, m.profile)
		if err != nil {
			return fmt.Errorf("paka: restart %s: %w", m.kind, err)
		}
		fresh = rt
	default:
		return fmt.Errorf("paka: %s runtime does not support restart", m.isolation)
	}

	if srt, ok := fresh.(*sgxRuntime); ok {
		enc := srt.enclave()
		m.secretMu.Lock()
		backups := make(map[string][]byte, len(m.sealed))
		for name, blob := range m.sealed {
			backups[name] = blob
		}
		m.secretMu.Unlock()
		for name, blob := range backups {
			k, err := enc.Unseal(blob, []byte(name))
			if err != nil {
				fresh.Shutdown()
				return fmt.Errorf("paka: restart %s: recover %s: %w", m.kind, name, err)
			}
			if err := fresh.Do(ctx, func(ex Exec) error {
				ex.StoreSecret(name, k)
				return nil
			}); err != nil {
				fresh.Shutdown()
				return fmt.Errorf("paka: restart %s: restore %s: %w", m.kind, name, err)
			}
		}
	}

	m.rtMu.Lock()
	m.runtime = fresh
	m.rtMu.Unlock()
	// Cached key schedules model in-enclave state and died with the old
	// runtime; the first AV per subscriber after recovery rebuilds them.
	m.milCache.Reset()
	// Keep-alive sessions died with the old runtime; serve() also drops
	// them lazily on runtime mismatch, this just frees the map eagerly.
	m.dropSessions()
	m.restarts.Add(1)
	return nil
}
