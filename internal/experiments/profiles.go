package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"

	"shield5g/internal/deploy"
	"shield5g/internal/gnb"
	"shield5g/internal/paka"
	"shield5g/internal/ue"
)

// ProfileRow is one function's share of the hot-path allocation profile.
type ProfileRow struct {
	Function string
	Bytes    int64
	Objects  int64
}

// ProfilesResult is the allocation profile of a deterministic
// mass-registration run: the top-N functions by flat (allocated directly
// in the function) and cumulative (allocated anywhere below it) bytes.
type ProfilesResult struct {
	UEs        int
	Registered int
	// TotalBytes/TotalObjects are the whole run's profiled allocations.
	TotalBytes   int64
	TotalObjects int64
	Flat         []ProfileRow
	Cum          []ProfileRow
	TopN         int
}

// profileTopN bounds the rendered rows per table.
const profileTopN = 15

// Profiles runs a small deterministic mass-registration at full memory
// profiling fidelity (MemProfileRate=1) and reports which functions the
// registration hot path allocates in. This is the repo-native counterpart
// of `gnbsim -memprofile` + `go tool pprof -top`: it needs no external
// tooling and its tables land in the experiment log, so an allocation
// regression shows up as a diff.
func Profiles(ctx context.Context, cfg Config) (*ProfilesResult, error) {
	n := cfg.iterations()
	// Full-fidelity profiling makes every allocation take the slow path;
	// a few dozen registrations already yield a stable profile.
	if n > 60 {
		n = 60
	}
	if n < 10 {
		n = 10
	}

	s, err := deploy.NewSlice(ctx, deploy.SliceConfig{Isolation: paka.SGX, Seed: cfg.Seed + 47})
	if err != nil {
		return nil, err
	}
	defer s.Stop()

	// Warm the slice (TLS handshakes, enclave warm-up, pool priming) so
	// the profile captures the steady state the benchmarks assert on.
	warm, err := sliceSubscriber(ctx, s, "0000008888")
	if err != nil {
		return nil, err
	}
	if _, err := s.GNB.RegisterUE(ctx, warm); err != nil {
		return nil, err
	}

	oldRate := runtime.MemProfileRate
	runtime.MemProfileRate = 1
	defer func() { runtime.MemProfileRate = oldRate }()
	// Two GCs flush pending mem-profile records so the baseline snapshot
	// is complete (records are published at sweep time).
	runtime.GC()
	runtime.GC()
	before := snapshotMemProfile()

	res, err := s.GNB.RegisterManyWith(ctx, gnb.MassOptions{
		N: n,
		NewUE: func(i int) (*ue.UE, error) {
			return sliceSubscriber(ctx, s, fmt.Sprintf("%010d", 7000+i))
		},
		Parallelism: 1,
	})
	if err != nil {
		return nil, err
	}

	runtime.GC()
	runtime.GC()
	after := snapshotMemProfile()

	result := &ProfilesResult{UEs: n, Registered: res.Registered, TopN: profileTopN}
	flat := make(map[string]*ProfileRow)
	cum := make(map[string]*ProfileRow)
	for key, rec := range after {
		b, o := rec.AllocBytes, rec.AllocObjects
		if prev, ok := before[key]; ok {
			b -= prev.AllocBytes
			o -= prev.AllocObjects
		}
		if b <= 0 && o <= 0 {
			continue
		}
		result.TotalBytes += b
		result.TotalObjects += o
		frames := symbolize(rec.Stack())
		if len(frames) == 0 {
			continue
		}
		addRow(flat, frames[0], b, o)
		seen := make(map[string]bool, len(frames))
		for _, fn := range frames {
			if !seen[fn] {
				seen[fn] = true
				addRow(cum, fn, b, o)
			}
		}
	}
	result.Flat = topRows(flat, profileTopN)
	result.Cum = topRows(cum, profileTopN)
	return result, nil
}

// snapshotMemProfile reads every allocation record published so far,
// keyed by call stack.
func snapshotMemProfile() map[[32]uintptr]runtime.MemProfileRecord {
	n, _ := runtime.MemProfile(nil, true)
	var recs []runtime.MemProfileRecord
	for {
		recs = make([]runtime.MemProfileRecord, n+64)
		m, ok := runtime.MemProfile(recs, true)
		if ok {
			recs = recs[:m]
			break
		}
		n = m
	}
	out := make(map[[32]uintptr]runtime.MemProfileRecord, len(recs))
	for _, r := range recs {
		out[r.Stack0] = r
	}
	return out
}

// symbolize resolves a profile stack to function names, innermost first,
// dropping the runtime's own allocator frames so the first entry is the
// function that performed the allocation.
func symbolize(stk []uintptr) []string {
	if len(stk) == 0 {
		return nil
	}
	out := make([]string, 0, len(stk))
	frames := runtime.CallersFrames(stk)
	for {
		f, more := frames.Next()
		if f.Function != "" && !strings.HasPrefix(f.Function, "runtime.") {
			out = append(out, f.Function)
		}
		if !more {
			break
		}
	}
	return out
}

func addRow(m map[string]*ProfileRow, fn string, bytes, objects int64) {
	r := m[fn]
	if r == nil {
		r = &ProfileRow{Function: fn}
		m[fn] = r
	}
	r.Bytes += bytes
	r.Objects += objects
}

// topRows sorts by bytes descending (function name as the deterministic
// tiebreak) and keeps the first n.
func topRows(m map[string]*ProfileRow, n int) []ProfileRow {
	rows := make([]ProfileRow, 0, len(m))
	for _, r := range m {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Bytes != rows[j].Bytes {
			return rows[i].Bytes > rows[j].Bytes
		}
		return rows[i].Function < rows[j].Function
	})
	if len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// Render prints the flat and cumulative top-N tables.
func (r *ProfilesResult) Render(w io.Writer) {
	fprintf(w, "Hot-path allocation profile (%d/%d registrations, MemProfileRate=1)\n", r.Registered, r.UEs)
	perReg := func(v int64) float64 {
		if r.Registered == 0 {
			return 0
		}
		return float64(v) / float64(r.Registered)
	}
	fprintf(w, "total: %d B, %d objects (%.0f B/reg, %.1f allocs/reg)\n\n",
		r.TotalBytes, r.TotalObjects, perReg(r.TotalBytes), perReg(r.TotalObjects))
	renderProfileTable(w, fmt.Sprintf("top %d by flat bytes", r.TopN), r.Flat, r.TotalBytes)
	fprintf(w, "\n")
	renderProfileTable(w, fmt.Sprintf("top %d by cumulative bytes", r.TopN), r.Cum, r.TotalBytes)
}

func renderProfileTable(w io.Writer, title string, rows []ProfileRow, total int64) {
	fprintf(w, "%s\n", title)
	fprintf(w, "%12s %8s %10s  %s\n", "bytes", "pct", "objects", "function")
	for _, row := range rows {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(row.Bytes) / float64(total)
		}
		fprintf(w, "%12d %7.1f%% %10d  %s\n", row.Bytes, pct, row.Objects, row.Function)
	}
}

// WriteCSV emits the flat table as a series.
func (r *ProfilesResult) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Flat))
	for _, row := range r.Flat {
		rows = append(rows, []string{row.Function, fmt.Sprintf("%d", row.Bytes), fmt.Sprintf("%d", row.Objects)})
	}
	return writeCSV(w, []string{"function", "flat_bytes", "flat_objects"}, rows)
}
