package sgx

import (
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"fmt"
)

// Attestation errors.
var (
	// ErrQuoteSignature reports a quote whose platform signature does
	// not verify.
	ErrQuoteSignature = errors.New("sgx: quote signature invalid")
	// ErrMeasurementMismatch reports a verified quote for an unexpected
	// enclave identity.
	ErrMeasurementMismatch = errors.New("sgx: enclave measurement mismatch")
)

// Report is the enclave-produced attestation evidence: its identity and
// 64 bytes of caller data (typically a key-exchange transcript hash).
type Report struct {
	EnclaveName string   `json:"enclave_name"`
	Measurement [32]byte `json:"measurement"`
	ReportData  [64]byte `json:"report_data"`
}

// Quote is a Report signed by the platform quoting key — the analogue of
// an SGX quote signed by the Quoting Enclave's attestation key.
type Quote struct {
	Report    Report `json:"report"`
	Signature []byte `json:"signature"`
}

// GenerateQuote produces a signed quote binding reportData to the
// enclave's measurement. A remote party verifying the quote learns that
// exactly this code, on a genuine (simulated) platform, produced the data.
func (e *Enclave) GenerateQuote(reportData [64]byte) (*Quote, error) {
	if err := e.live(); err != nil {
		return nil, err
	}
	r := Report{
		EnclaveName: e.cfg.Name,
		Measurement: e.measurement,
		ReportData:  reportData,
	}
	msg, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("sgx: marshal report: %w", err)
	}
	return &Quote{Report: r, Signature: ed25519.Sign(e.platform.qePriv, msg)}, nil
}

// VerifyQuote checks the quote against the platform's quoting public key
// (pinned out of band, standing in for the Intel attestation service) and,
// when expectedMeasurement is non-nil, against the expected enclave
// identity.
func VerifyQuote(qePub ed25519.PublicKey, q *Quote, expectedMeasurement *[32]byte) error {
	if q == nil {
		return errors.New("sgx: nil quote")
	}
	msg, err := json.Marshal(q.Report)
	if err != nil {
		return fmt.Errorf("sgx: marshal report: %w", err)
	}
	if !ed25519.Verify(qePub, msg, q.Signature) {
		return ErrQuoteSignature
	}
	if expectedMeasurement != nil && q.Report.Measurement != *expectedMeasurement {
		return fmt.Errorf("%w: got %x, want %x",
			ErrMeasurementMismatch, q.Report.Measurement[:8], expectedMeasurement[:8])
	}
	return nil
}
