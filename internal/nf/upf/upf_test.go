package upf

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"shield5g/internal/costmodel"
	"shield5g/internal/sbi"
	"shield5g/internal/simclock"
)

func harness(t *testing.T) (*UPF, *sbi.Client) {
	t.Helper()
	env := costmodel.NewEnv(nil, 1, nil)
	reg := sbi.NewRegistry()
	u, err := New(env, reg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return u, sbi.NewClient("smf", env, reg)
}

func establish(t *testing.T, c *sbi.Client, seid uint64, addr string) uint32 {
	t.Helper()
	var resp EstablishResponse
	if err := c.Post(context.Background(), ServiceName, PathEstablish,
		&EstablishRequest{SEID: seid, UEAddress: addr}, &resp); err != nil {
		t.Fatalf("Establish: %v", err)
	}
	return resp.TEID
}

func TestEstablishAndForward(t *testing.T) {
	u, c := harness(t)
	teid := establish(t, c, 1, "10.60.0.2")
	if teid == 0 {
		t.Fatal("zero TEID")
	}
	if u.SessionCount() != 1 {
		t.Fatalf("SessionCount = %d", u.SessionCount())
	}
	echo, err := u.ForwardUplink(context.Background(), teid, []byte("ping"))
	if err != nil {
		t.Fatalf("ForwardUplink: %v", err)
	}
	if !bytes.Contains(echo, []byte("ping")) {
		t.Fatalf("echo = %q", echo)
	}
}

func TestForwardChargesDataPath(t *testing.T) {
	u, c := harness(t)
	teid := establish(t, c, 1, "10.60.0.2")
	var acct simclock.Account
	ctx := simclock.WithAccount(context.Background(), &acct)
	if _, err := u.ForwardUplink(ctx, teid, bytes.Repeat([]byte{1}, 1000)); err != nil {
		t.Fatalf("ForwardUplink: %v", err)
	}
	if acct.Total() == 0 {
		t.Fatal("data path charged nothing")
	}
}

func TestForwardUnknownTEID(t *testing.T) {
	u, _ := harness(t)
	if _, err := u.ForwardUplink(context.Background(), 77, []byte("x")); err == nil {
		t.Fatal("unknown TEID forwarded")
	}
}

func TestEstablishValidation(t *testing.T) {
	_, c := harness(t)
	var pd *sbi.ProblemDetails
	err := c.Post(context.Background(), ServiceName, PathEstablish, &EstablishRequest{SEID: 1}, nil)
	if !errors.As(err, &pd) || pd.Status != 400 {
		t.Fatalf("missing address err = %v", err)
	}
}

func TestEstablishDuplicateSEID(t *testing.T) {
	_, c := harness(t)
	establish(t, c, 1, "10.60.0.2")
	var pd *sbi.ProblemDetails
	err := c.Post(context.Background(), ServiceName, PathEstablish,
		&EstablishRequest{SEID: 1, UEAddress: "10.60.0.3"}, nil)
	if !errors.As(err, &pd) || pd.Status != 409 {
		t.Fatalf("dup SEID err = %v, want 409", err)
	}
}

func TestRelease(t *testing.T) {
	u, c := harness(t)
	teid := establish(t, c, 1, "10.60.0.2")
	if err := c.Post(context.Background(), ServiceName, PathRelease, &ReleaseRequest{SEID: 1}, nil); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if u.SessionCount() != 0 {
		t.Fatalf("SessionCount = %d", u.SessionCount())
	}
	if _, err := u.ForwardUplink(context.Background(), teid, []byte("x")); err == nil {
		t.Fatal("released session forwarded")
	}
	var pd *sbi.ProblemDetails
	err := c.Post(context.Background(), ServiceName, PathRelease, &ReleaseRequest{SEID: 1}, nil)
	if !errors.As(err, &pd) || pd.Status != 404 {
		t.Fatalf("double release err = %v, want 404", err)
	}
}
