// Package ausf implements the Authentication Server Function: it anchors
// 5G-AKA in the home network, fetching HE AVs from the UDM, deriving the
// Security Edge AV (HXRES*, K_SEAF) through its P-AKA execution
// environment, verifying the UE's RES*, and releasing K_SEAF to the
// serving network on success (paper Fig. 5 step 4).
package ausf

import (
	"context"
	"crypto/hmac"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"shield5g/internal/costmodel"
	"shield5g/internal/crypto/suci"
	"shield5g/internal/nf/nrf"
	"shield5g/internal/nf/udm"
	"shield5g/internal/paka"
	"shield5g/internal/sbi"
	"shield5g/internal/shard"
)

// Service identity.
const (
	ServiceName = "ausf"
	NFType      = "AUSF"
)

// SBI endpoint paths.
const (
	PathAuthenticate = "/nausf-auth/v1/ue-authentications"
	PathConfirm      = "/nausf-auth/v1/ue-authentications/confirm"
	PathResync       = "/nausf-auth/v1/ue-authentications/resync"
)

// AuthenticateRequest starts a 5G-AKA run for a UE.
type AuthenticateRequest struct {
	SUCI               *suci.SUCI `json:"suci,omitempty"`
	SUPI               string     `json:"supi,omitempty"`
	ServingNetworkName string     `json:"serving_network_name"`
}

// AuthenticateResponse carries the SE AV material for the serving network:
// RAND, AUTN and HXRES* (never XRES* itself).
type AuthenticateResponse struct {
	AuthCtxID string `json:"auth_ctx_id"`
	RAND      []byte `json:"rand"`
	AUTN      []byte `json:"autn"`
	HXRESStar []byte `json:"hxres_star"`
}

// ConfirmRequest delivers the UE's RES* for home-network verification.
type ConfirmRequest struct {
	AuthCtxID string `json:"auth_ctx_id"`
	ResStar   []byte `json:"res_star"`
}

// ConfirmResponse releases the anchor key on success.
type ConfirmResponse struct {
	SUPI  string `json:"supi"`
	KSEAF []byte `json:"kseaf"`
}

// ResyncRequest forwards a UE synchronisation failure to the home network
// and returns a fresh SE AV.
type ResyncRequest struct {
	AuthCtxID string `json:"auth_ctx_id"`
	AUTS      []byte `json:"auts"`
}

// session is one in-flight authentication.
type session struct {
	supi     string
	snn      string
	rand     []byte
	xresStar []byte
	kseaf    []byte
	// created stamps the session on the virtual clock for TTL expiry.
	created time.Duration
}

// DefaultPendingAuthTTL is the virtual-time lifetime of an unredeemed auth
// context. It is orders of magnitude above any registration's span (even
// one absorbing an enclave reload), so in-flight AKA runs never expire;
// only abandoned ones — a UE that failed mid-registration and never
// confirmed — are reaped, keeping the session map bounded under faults.
const DefaultPendingAuthTTL = 30 * time.Minute

// sweepEvery triggers an opportunistic expiry sweep every N new
// authentications, so cleanup needs no background goroutine (which would
// break virtual-time determinism).
const sweepEvery = 64

// Config wires an AUSF instance.
type Config struct {
	Env      *costmodel.Env
	Registry *sbi.Registry
	Invoker  sbi.Invoker
	// Functions derives HXRES*/K_SEAF (eAUSF module or monolithic).
	Functions paka.AUSFFunctions
	// HMEE marks the instance's trust domain for NRF discovery.
	HMEE bool
	// PendingAuthTTL overrides DefaultPendingAuthTTL (virtual time).
	PendingAuthTTL time.Duration
	// ServiceName overrides the SBI service name (default "ausf") so a
	// sharded deployment can run several AUSF replicas side by side.
	ServiceName string
	// InstanceID overrides the NRF instance identity (default "ausf-1").
	InstanceID string
	// UDMService, when set, binds this AUSF to a specific UDM replica's
	// service name instead of discovering one through the NRF — the
	// static intra-shard binding of a sharded deployment, which keeps the
	// NRF out of both construction and the request path.
	UDMService string
}

// AUSF is the authentication server VNF.
type AUSF struct {
	env    *costmodel.Env
	server *sbi.Server
	udm    *udm.Client
	nrfc   *nrf.Client
	fns    paka.AUSFFunctions

	// sessions is lock-striped: concurrent AKA runs for different UEs
	// insert and redeem auth contexts without a shared mutex.
	sessions *shard.Map[string, *session]
	nextID   atomic.Uint64

	ttl        time.Duration
	sinceSweep atomic.Uint64
	expired    atomic.Uint64
}

// New creates an AUSF, registers its SBI server and announces it to the
// NRF.
func New(ctx context.Context, cfg Config) (*AUSF, error) {
	if cfg.Env == nil || cfg.Registry == nil || cfg.Invoker == nil {
		return nil, fmt.Errorf("ausf: Env, Registry and Invoker are required")
	}
	if cfg.Functions == nil {
		return nil, fmt.Errorf("ausf: Functions (AKA execution environment) is required")
	}
	// Discover the UDM through the NRF — for an HMEE-enabled AUSF the
	// home network function must also live in the higher trust domain
	// (the 3GPP trust-domain placement of the paper's discussion). A
	// configured UDMService skips discovery: the shard's binding is
	// static and the trust-domain check happened at composition time.
	var udmClient *udm.Client
	if cfg.UDMService != "" {
		udmClient = udm.NewClientFor(cfg.Invoker, cfg.UDMService)
	} else {
		var err error
		udmClient, err = udm.DiscoverClient(ctx, cfg.Invoker, cfg.HMEE)
		if err != nil {
			return nil, err
		}
	}
	ttl := cfg.PendingAuthTTL
	if ttl <= 0 {
		ttl = DefaultPendingAuthTTL
	}
	service := cfg.ServiceName
	if service == "" {
		service = ServiceName
	}
	instance := cfg.InstanceID
	if instance == "" {
		instance = "ausf-1"
	}
	a := &AUSF{
		env:      cfg.Env,
		server:   sbi.NewServer(service, cfg.Env),
		udm:      udmClient,
		nrfc:     nrf.NewClient(cfg.Invoker),
		fns:      cfg.Functions,
		sessions: shard.NewString[*session](),
		ttl:      ttl,
	}
	a.server.HandleDual(PathAuthenticate, sbi.BinHandler(a.handleAuthenticate))
	a.server.HandleDual(PathConfirm, sbi.BinHandler(a.handleConfirm))
	a.server.HandleDual(PathResync, sbi.BinHandler(a.handleResync))
	if err := cfg.Registry.Register(a.server); err != nil {
		return nil, err
	}
	if err := a.nrfc.Register(ctx, nrf.NFProfile{
		InstanceID: instance, NFType: NFType, Service: service, HMEE: cfg.HMEE,
	}); err != nil {
		return nil, fmt.Errorf("ausf: NRF registration: %w", err)
	}
	return a, nil
}

func (a *AUSF) handleAuthenticate(ctx context.Context, req *AuthenticateRequest) (*AuthenticateResponse, error) {
	if req.ServingNetworkName == "" {
		return nil, sbi.Problem(400, "Bad Request", "MANDATORY_IE_MISSING", "serving network name required")
	}
	return a.newChallenge(ctx, req.SUCI, req.SUPI, req.ServingNetworkName)
}

var (
	genAuthReqPool  = sync.Pool{New: func() any { return new(udm.GenerateAuthDataRequest) }}
	deriveSEReqPool = sync.Pool{New: func() any { return new(paka.AUSFDeriveSERequest) }}
)

// newChallenge fetches an HE AV and turns it into an SE AV session.
//
//shieldlint:hotpath
func (a *AUSF) newChallenge(ctx context.Context, id *suci.SUCI, supi, snn string) (*AuthenticateResponse, error) {
	// The outbound request structs are pooled: the client stubs marshal
	// them synchronously and nothing downstream retains them.
	greq := genAuthReqPool.Get().(*udm.GenerateAuthDataRequest)
	greq.SUCI, greq.SUPI, greq.ServingNetworkName = id, supi, snn
	he, err := a.udm.GenerateAuthData(ctx, greq)
	*greq = udm.GenerateAuthDataRequest{}
	genAuthReqPool.Put(greq)
	if err != nil {
		return nil, err
	}
	sreq := deriveSEReqPool.Get().(*paka.AUSFDeriveSERequest)
	sreq.RAND, sreq.XRESStar, sreq.KAUSF, sreq.SNN = he.RAND, he.XRESStar, he.KAUSF, snn
	se, err := a.fns.DeriveSE(ctx, sreq)
	*sreq = paka.AUSFDeriveSERequest{}
	deriveSEReqPool.Put(sreq)
	if err != nil {
		return nil, err
	}

	// Assembled in stack scratch so the ID costs exactly one string
	// allocation (Sprintf boxed the counter and built two strings).
	var idBuf [24]byte
	ctxID := string(strconv.AppendUint(append(idBuf[:0], "authctx-"...), a.nextID.Add(1), 10))
	a.sessions.Store(ctxID, &session{
		supi:     he.SUPI,
		snn:      snn,
		rand:     he.RAND,
		xresStar: he.XRESStar,
		kseaf:    se.KSEAF,
		created:  a.env.Clock.Now(),
	})
	if a.sinceSweep.Add(1)%sweepEvery == 0 {
		a.SweepExpired()
	}

	return &AuthenticateResponse{
		AuthCtxID: ctxID,
		RAND:      he.RAND,
		AUTN:      he.AUTN,
		HXRESStar: se.HXRESStar,
	}, nil
}

func (a *AUSF) handleConfirm(_ context.Context, req *ConfirmRequest) (*ConfirmResponse, error) {
	// One-shot redemption: lookup and consume must be a single atomic
	// step so a replayed confirm can never race a successful one.
	s, ok := a.sessions.LoadAndDelete(req.AuthCtxID)
	if !ok {
		return nil, sbi.Problem(404, "Not Found", "CONTEXT_NOT_FOUND", "auth context %s", req.AuthCtxID)
	}
	// Home-network control of authentication: compare RES* with the
	// stored XRES* (TS 33.501 §6.1.3.2).
	if !hmac.Equal(req.ResStar, s.xresStar) {
		return nil, sbi.Problem(403, "Forbidden", "AUTHENTICATION_REJECTED", "RES* mismatch for %s", s.supi)
	}
	return &ConfirmResponse{SUPI: s.supi, KSEAF: s.kseaf}, nil
}

func (a *AUSF) handleResync(ctx context.Context, req *ResyncRequest) (*AuthenticateResponse, error) {
	s, ok := a.sessions.LoadAndDelete(req.AuthCtxID)
	if !ok {
		return nil, sbi.Problem(404, "Not Found", "CONTEXT_NOT_FOUND", "auth context %s", req.AuthCtxID)
	}
	if err := a.udm.Resync(ctx, &udm.ResyncRequest{SUPI: s.supi, RAND: s.rand, AUTS: req.AUTS}); err != nil {
		return nil, err
	}
	// Fresh vector after the home network rebased the SQN.
	return a.newChallenge(ctx, nil, s.supi, s.snn)
}

// PendingSessions reports in-flight authentications (tests/status).
func (a *AUSF) PendingSessions() int {
	return a.sessions.Len()
}

// SweepExpired reaps auth contexts older than the pending-auth TTL on the
// virtual clock and reports how many it removed. Abandoned registrations
// (the UE failed and never confirmed) otherwise accumulate forever under
// injected faults.
func (a *AUSF) SweepExpired() int {
	now := a.env.Clock.Now()
	var stale []string
	a.sessions.Range(func(id string, s *session) bool {
		if now-s.created > a.ttl {
			stale = append(stale, id)
		}
		return true
	})
	// Delete outside Range: the stripe locks are not reentrant. A session
	// confirmed between the scan and the delete was consumed by
	// LoadAndDelete already, making the extra Delete a no-op.
	for _, id := range stale {
		a.sessions.Delete(id)
	}
	a.expired.Add(uint64(len(stale)))
	return len(stale)
}

// ExpiredSessions reports the total auth contexts reaped by TTL expiry.
func (a *AUSF) ExpiredSessions() uint64 { return a.expired.Load() }

// Client is the AMF/SEAF-side helper for AUSF calls.
type Client struct {
	invoker sbi.Invoker
	service string
}

// NewClient wraps an SBI transport for AUSF calls against the default
// service name.
func NewClient(invoker sbi.Invoker) *Client {
	return &Client{invoker: invoker, service: ServiceName}
}

// NewClientFor wraps an SBI transport for AUSF calls against a specific
// replica's service name (static intra-shard binding).
func NewClientFor(invoker sbi.Invoker, service string) *Client {
	return &Client{invoker: invoker, service: service}
}

// DiscoverClient resolves an AUSF instance through the NRF.
func DiscoverClient(ctx context.Context, invoker sbi.Invoker, requireHMEE bool) (*Client, error) {
	p, err := nrf.NewClient(invoker).Discover(ctx, NFType, requireHMEE)
	if err != nil {
		return nil, fmt.Errorf("ausf: discovery: %w", err)
	}
	return &Client{invoker: invoker, service: p.Service}, nil
}

// Authenticate starts an AKA run.
func (c *Client) Authenticate(ctx context.Context, req *AuthenticateRequest) (*AuthenticateResponse, error) {
	var resp AuthenticateResponse
	if err := c.invoker.Post(ctx, c.service, PathAuthenticate, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Confirm delivers RES* and collects K_SEAF.
func (c *Client) Confirm(ctx context.Context, req *ConfirmRequest) (*ConfirmResponse, error) {
	var resp ConfirmResponse
	if err := c.invoker.Post(ctx, c.service, PathConfirm, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Resync reports an AUTS and collects a fresh challenge.
func (c *Client) Resync(ctx context.Context, req *ResyncRequest) (*AuthenticateResponse, error) {
	var resp AuthenticateResponse
	if err := c.invoker.Post(ctx, c.service, PathResync, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
