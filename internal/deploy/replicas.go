// Sharded-core construction: N vertical replica slices (AMF -> AUSF ->
// UDM -> P-AKA modules each) behind SUPI-affinity consistent-hash routing
// at the gNB. The NRF, UDR, SMF and UPF stay shared — only the
// authentication chain is replicated, because it is the chain the paper
// shields and the chain a signaling storm saturates.
//
// Shard bindings are static: shard r's AMF calls shard r's AUSF calls
// shard r's UDM calls shard r's eUDM, all by configured service name.
// The NRF (via the topo.Builder) only ever influences WHICH shard a SUPI
// routes to, never how a shard reaches its own members — so a dead NRF
// cannot take registration down.
package deploy

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"fmt"

	"shield5g/internal/admission"
	"shield5g/internal/chaos"
	"shield5g/internal/costmodel"
	"shield5g/internal/crypto/suci"
	"shield5g/internal/gnb"
	"shield5g/internal/hmee/sgx"
	"shield5g/internal/nf/amf"
	"shield5g/internal/nf/ausf"
	"shield5g/internal/nf/nrf"
	"shield5g/internal/nf/nrf/topo"
	"shield5g/internal/nf/smf"
	"shield5g/internal/nf/udm"
	"shield5g/internal/nf/udr"
	"shield5g/internal/nf/upf"
	"shield5g/internal/paka"
	"shield5g/internal/sbi"
	"shield5g/internal/topology"
)

// shardSuffix names shard r's services: shard 0 keeps the base names
// ("udm", "ausf", "eudm-paka", ...) so tooling built for the singleton
// keeps working; replicas r >= 1 append "-r<N>".
func shardSuffix(r int) string {
	if r == 0 {
		return ""
	}
	return fmt.Sprintf("-r%d", r)
}

// newShardedSlice is the Replicas > 1 construction path of NewSlice. It
// mirrors the singleton path's order — shared infrastructure first, then
// each replica's module set and VNF chain, then the gNB — and finishes by
// standing up the topology control plane and publishing epoch 1.
func newShardedSlice(ctx context.Context, cfg SliceConfig) (*Slice, error) {
	if cfg.MCC == "" {
		cfg.MCC = "001"
	}
	if cfg.MNC == "" {
		cfg.MNC = "01"
	}
	if cfg.Isolation == 0 {
		cfg.Isolation = paka.SGX
	}
	entropy := cfg.Entropy
	if entropy == nil {
		entropy = rand.Reader
	}
	env := cfg.Env
	if env == nil {
		env = costmodel.NewEnv(nil, cfg.Seed, nil)
	}
	platform := cfg.Platform
	if platform == nil && cfg.Isolation == paka.SGX {
		var err error
		platform, err = sgx.NewPlatform(sgx.PlatformConfig{Seed: cfg.Seed, Entropy: entropy})
		if err != nil {
			return nil, fmt.Errorf("deploy: SGX platform: %w", err)
		}
	}

	s := &Slice{
		Config:   cfg,
		Env:      env,
		Platform: platform,
		Registry: sbi.NewRegistry(),
		entropy:  entropy,
		attested: make(map[*paka.Module]bool),
	}
	if cfg.Chaos != nil {
		s.Chaos = chaos.NewInjector(env, *cfg.Chaos)
		s.Chaos.SetArmed(false)
	}
	switch {
	case cfg.Resilience != nil:
		r := *cfg.Resilience
		s.resil = &r
	case cfg.Chaos != nil:
		r := sbi.DefaultResilienceConfig()
		s.resil = &r
	case cfg.Overload != nil && cfg.Overload.Throttle:
		r := sbi.DefaultResilienceConfig()
		s.resil = &r
	}

	hnKey, err := suci.GenerateHomeNetworkKey(entropy, 1)
	if err != nil {
		return nil, fmt.Errorf("deploy: home network key: %w", err)
	}
	s.HomeNetworkKey = hnKey

	// Shared control plane and user plane — one of each across all shards.
	if s.NRF, err = nrf.New(env, s.Registry); err != nil {
		return nil, fmt.Errorf("deploy: NRF: %w", err)
	}
	if s.UDR, err = udr.New(env, s.Registry); err != nil {
		return nil, fmt.Errorf("deploy: UDR: %w", err)
	}
	if s.UPF, err = upf.New(env, s.Registry); err != nil {
		return nil, fmt.Errorf("deploy: UPF: %w", err)
	}
	smfInvoker := s.buildInvoker(smf.ServiceName)
	if s.SMF, err = smf.New(ctx, smf.Config{Env: env, Registry: s.Registry, Invoker: smfInvoker}); err != nil {
		return nil, fmt.Errorf("deploy: SMF: %w", err)
	}

	// One GSC signing key for all module images of this operator, as in
	// the singleton path (only drawn when modules are actually extracted).
	var signKey ed25519.PrivateKey
	if cfg.Isolation != paka.Monolithic {
		if _, signKey, err = ed25519.GenerateKey(entropy); err != nil {
			return nil, fmt.Errorf("deploy: GSC sign key: %w", err)
		}
	}
	hmee := cfg.Isolation == paka.SGX || cfg.Isolation == paka.SEV

	amfs := make([]*amf.AMF, cfg.Replicas)
	for r := 0; r < cfg.Replicas; r++ {
		shard, err := s.buildShard(ctx, cfg, r, signKey, hmee)
		if err != nil {
			return nil, err
		}
		s.Shards = append(s.Shards, shard)
		amfs[r] = shard.AMF
	}

	// The top-level singleton fields alias shard 0, so code written
	// against the singleton slice (experiments, tests, tooling) observes
	// the first replica.
	first := s.Shards[0]
	s.UDM, s.AUSF, s.AMF = first.UDM, first.AUSF, first.AMF
	s.Modules = first.Modules
	s.MonoUDM = first.MonoUDM
	s.RemoteUDM, s.RemoteAUSF, s.RemoteAMF = first.RemoteUDM, first.RemoteAUSF, first.RemoteAMF
	s.Admission = first.Admission

	// Topology control plane: the NRF's builder owns the authoritative
	// replica set and pushes sealed snapshots into the gNB's router. The
	// router is subscribed before the first publish, so epoch 1 is its
	// catch-up-free baseline.
	s.Topology = topo.NewBuilder()
	s.Router = topology.NewRouter()
	replicas := make([]topology.Replica, len(s.Shards))
	for i, shard := range s.Shards {
		replicas[i] = topology.Replica{Index: i, Name: shard.Name}
	}
	s.Topology.SetReplicas(replicas)
	s.Topology.SetShardSize(cfg.ShardSize)
	if err := s.Topology.Subscribe(s.Router); err != nil {
		return nil, fmt.Errorf("deploy: router subscription: %w", err)
	}
	if res := s.Topology.Publish(); res.Nacked > 0 {
		return nil, fmt.Errorf("deploy: initial topology push nacked (epoch %d)", res.Epoch)
	}

	if s.GNB, err = gnb.New(gnb.Config{
		Env: env, AMFs: amfs, Router: s.Router, UPF: s.UPF,
		MCC: cfg.MCC, MNC: cfg.MNC, Radio: cfg.Radio,
	}); err != nil {
		return nil, fmt.Errorf("deploy: gNB: %w", err)
	}

	if s.Chaos != nil {
		for _, shard := range s.Shards {
			for kind, m := range shard.Modules {
				if e := m.Enclave(); e != nil {
					s.Chaos.RegisterEnclave(m.ServiceName(), e)
				}
				if cfg.Isolation == paka.SGX || cfg.Isolation == paka.Container {
					kind, idx := kind, shard.Index
					s.Chaos.RegisterCrash(m.ServiceName(), func(ctx context.Context) error {
						return s.RestartShardModule(ctx, idx, kind)
					})
				}
			}
		}
		s.Chaos.SetArmed(true)
	}
	s.wireOverload()
	return s, nil
}

// buildShard constructs vertical replica r: its P-AKA module set (or
// monolithic environments), its UDM, AUSF and AMF, all statically bound
// to each other by service name. No NRF discovery happens anywhere in the
// shard's call chain.
func (s *Slice) buildShard(ctx context.Context, cfg SliceConfig, r int, signKey ed25519.PrivateKey, hmee bool) (*CoreShard, error) {
	suffix := shardSuffix(r)
	shard := &CoreShard{
		Index:       r,
		Name:        fmt.Sprintf("shard-%d", r),
		UDMService:  udm.ServiceName + suffix,
		AUSFService: ausf.ServiceName + suffix,
	}

	var udmFns paka.UDMFunctions
	var ausfFns paka.AUSFFunctions
	var amfFns paka.AMFFunctions
	if cfg.Isolation == paka.Monolithic {
		shard.MonoUDM = paka.NewMonolithicUDM(s.Env)
		udmFns = shard.MonoUDM
		ausfFns = paka.NewMonolithicAUSF(s.Env)
		amfFns = paka.NewMonolithicAMF(s.Env)
	} else {
		shard.Modules = make(map[paka.ModuleKind]*paka.Module)
		for _, kind := range paka.Kinds() {
			m, err := paka.New(ctx, paka.Config{
				Kind:             kind,
				Service:          kind.ServiceName() + suffix,
				Isolation:        cfg.Isolation,
				Env:              s.Env,
				Platform:         s.Platform,
				Registry:         s.Registry,
				EnclaveSizeBytes: cfg.EnclaveSizeBytes,
				MaxThreads:       cfg.MaxThreads,
				DisablePreheat:   cfg.DisablePreheat,
				SignKey:          signKey,
				ReserveBatchTCS:  kind == paka.EUDM && cfg.AVPoolDepth > 0,
				Switchless:       cfg.Switchless,
			})
			if err != nil {
				return nil, fmt.Errorf("deploy: %s module (shard %d): %w", kind, r, err)
			}
			shard.Modules[kind] = m
		}
		shard.RemoteUDM = paka.NewRemoteUDMService(s.buildInvoker(shard.UDMService), s.Env, shard.Modules[paka.EUDM].ServiceName())
		shard.RemoteAUSF = paka.NewRemoteAUSFService(s.buildInvoker(shard.AUSFService), s.Env, shard.Modules[paka.EAUSF].ServiceName())
		shard.RemoteAMF = paka.NewRemoteAMFService(s.buildInvoker(amf.ServiceName), s.Env, shard.Modules[paka.EAMF].ServiceName())
		udmFns, ausfFns, amfFns = shard.RemoteUDM, shard.RemoteAUSF, shard.RemoteAMF
	}

	var reprovision func(ctx context.Context, supi string, k []byte) error
	var coalesce func() int
	if m, ok := shard.Modules[paka.EUDM]; ok {
		reprovision = func(ctx context.Context, supi string, k []byte) error {
			return m.ProvisionSubscriber(ctx, supi, k)
		}
		if cfg.Switchless {
			// Each shard's refills coalesce with the demand queued on its
			// own eUDM ring — shards never share a dispatcher.
			coalesce = m.RingOccupancy
		}
	}
	var err error
	if shard.UDM, err = udm.New(ctx, udm.Config{
		Env: s.Env, Registry: s.Registry, Invoker: s.buildInvoker(shard.UDMService),
		Functions: udmFns, HomeNetworkKey: s.HomeNetworkKey, HMEE: hmee, Entropy: s.entropy,
		Reprovision: reprovision, CoalesceHint: coalesce,
		AVPoolDepth: cfg.AVPoolDepth, AVBatchSize: cfg.AVBatchSize,
		ServiceName: shard.UDMService, InstanceID: shard.UDMService + "-1",
	}); err != nil {
		return nil, fmt.Errorf("deploy: UDM (shard %d): %w", r, err)
	}

	if shard.AUSF, err = ausf.New(ctx, ausf.Config{
		Env: s.Env, Registry: s.Registry, Invoker: s.buildInvoker(shard.AUSFService),
		Functions: ausfFns, HMEE: hmee,
		ServiceName: shard.AUSFService, InstanceID: shard.AUSFService + "-1",
		UDMService: shard.UDMService,
	}); err != nil {
		return nil, fmt.Errorf("deploy: AUSF (shard %d): %w", r, err)
	}

	if p := cfg.Overload; p != nil && p.Admission != nil {
		// Each shard gets its OWN token buckets: a tenant's storm drains
		// only the buckets of the shards its shuffle shard routes to.
		acfg := *p.Admission
		if acfg.Clock == nil {
			acfg.Clock = s.Env.Clock
		}
		shard.Admission = admission.NewController(acfg)
	}

	if shard.AMF, err = amf.New(ctx, amf.Config{
		Env: s.Env, Registry: s.Registry, Invoker: s.buildInvoker(amf.ServiceName + suffix),
		Functions: amfFns, MCC: cfg.MCC, MNC: cfg.MNC, HMEE: hmee,
		Admission:   shard.Admission,
		InstanceID:  amf.ServiceName + suffix + "-1",
		AUSFService: shard.AUSFService,
	}); err != nil {
		return nil, fmt.Errorf("deploy: AMF (shard %d): %w", r, err)
	}
	return shard, nil
}
