// OTA: the paper's §V-B6 feasibility walk-through driven through the
// public API: a OnePlus 8 COTS profile scanning for the OpenCells test
// PLMN, registering over a USRP x310 SDR profile through the SGX-shielded
// AKA path, and moving data — including the negative observations the
// paper reports (custom PLMNs invisible, wrong OS build refused).
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"shield5g"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ota: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	tb, err := shield5g.NewTestbed(ctx, shield5g.SliceConfig{
		Isolation: shield5g.SGX,
		MCC:       "001", MNC: "01",
		Seed:  5,
		Radio: shield5g.USRPX310(),
	})
	if err != nil {
		return err
	}
	defer tb.Close()
	fmt.Printf("SGX slice on test PLMN %s, radio %s\n", tb.Slice.GNB.BroadcastPLMN(), tb.Slice.GNB.Radio().Name)

	// A phone with the wrong OxygenOS build cannot complete the 5G SA
	// connection (Table IV's note).
	wrongOS := shield5g.OnePlus8()
	wrongOS.OSVersion = "Oxygen 10.5.9"
	blocked, err := tb.AddSubscriber(ctx, []byte("0123456789abcdef"), &wrongOS)
	if err != nil {
		return err
	}
	if _, err := tb.Register(ctx, blocked); err == nil {
		return errors.New("wrong OS build registered; COTS gate broken")
	}
	fmt.Println("OnePlus 8 on Oxygen 10.5.9: no end-to-end connection (as the paper observed)")

	// The properly flashed device registers through the shielded AKA.
	profile := shield5g.OnePlus8()
	phone, err := tb.AddSubscriber(ctx, []byte("fedcba9876543210"), &profile)
	if err != nil {
		return err
	}
	sess, err := tb.Register(ctx, phone)
	if err != nil {
		return err
	}
	guti, _ := phone.UE.GUTI()
	fmt.Printf("OnePlus 8 registered via SGX-isolated AKA in %v: GUTI %s\n",
		sess.SetupTime.Round(time.Millisecond), guti)

	if err := sess.EstablishPDUSession(ctx, 1, "internet"); err != nil {
		return err
	}
	echo, err := sess.SendData(ctx, []byte("Test/-1 - OpenAirInterface"))
	if err != nil {
		return err
	}
	fmt.Printf("data session: UE address %s, echo %q\n", phone.UE.UEAddress(), echo)
	return nil
}
