// Package kdf implements the 3GPP key derivation functions used by 5G-AKA:
// the generic HMAC-SHA-256 KDF of TS 33.220 Annex B and the specific
// derivations of TS 33.501 Annex A that produce the 5G key hierarchy
// (K_AUSF, K_SEAF, K_AMF, NAS keys) and the authentication responses
// (RES*/XRES*, HXRES*).
//
// These are exactly the derivations the paper's P-AKA modules execute
// inside SGX enclaves: the eUDM module derives K_AUSF and XRES*, the eAUSF
// module derives HXRES* and K_SEAF, and the eAMF module derives K_AMF.
package kdf

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Function code values from TS 33.501 Annex A.
const (
	fcKAUSF   = 0x6A
	fcResStar = 0x6B
	fcKSEAF   = 0x6C
	fcKAMF    = 0x6D
	fcAlgoKey = 0x69
	fcKGNB    = 0x6E
)

// Key sizes in bytes.
const (
	KeyLen256 = 32 // K_AUSF, K_SEAF, K_AMF, K_gNB
	KeyLen128 = 16 // RES*, HXRES*, NAS algorithm keys
)

// AlgorithmType distinguishes the protected-traffic type in NAS/AS
// algorithm key derivation (TS 33.501 Annex A.8).
type AlgorithmType byte

const (
	// AlgoNASEncryption selects NAS confidentiality keys.
	AlgoNASEncryption AlgorithmType = 0x01
	// AlgoNASIntegrity selects NAS integrity keys.
	AlgoNASIntegrity AlgorithmType = 0x02
)

// Generic computes the TS 33.220 Annex B KDF:
//
//	HMAC-SHA-256(key, FC || P0 || L0 || P1 || L1 || ...)
//
// where each Li is the 16-bit big-endian length of Pi.
func Generic(key []byte, fc byte, params ...[]byte) []byte {
	s := make([]byte, 0, 1+len(params)*3+totalLen(params))
	s = append(s, fc)
	for _, p := range params {
		s = append(s, p...)
		s = binary.BigEndian.AppendUint16(s, uint16(len(p)))
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(s)
	return mac.Sum(nil)
}

func totalLen(params [][]byte) int {
	n := 0
	for _, p := range params {
		n += len(p)
	}
	return n
}

// KAUSF derives K_AUSF from CK||IK (TS 33.501 A.2). sqnXorAK is the 6-byte
// SQN XOR AK value that also appears in AUTN.
func KAUSF(ck, ik []byte, snn string, sqnXorAK []byte) ([]byte, error) {
	if len(ck) != 16 || len(ik) != 16 {
		return nil, fmt.Errorf("kdf: CK/IK lengths %d/%d, want 16/16", len(ck), len(ik))
	}
	if len(sqnXorAK) != 6 {
		return nil, fmt.Errorf("kdf: SQN^AK length %d, want 6", len(sqnXorAK))
	}
	key := append(append(make([]byte, 0, 32), ck...), ik...)
	return Generic(key, fcKAUSF, []byte(snn), sqnXorAK), nil
}

// ResStar derives RES* (UE side) or XRES* (network side) from CK||IK
// (TS 33.501 A.4). The result is the 128 least-significant bits of the KDF
// output.
func ResStar(ck, ik []byte, snn string, rand, res []byte) ([]byte, error) {
	if len(ck) != 16 || len(ik) != 16 {
		return nil, fmt.Errorf("kdf: CK/IK lengths %d/%d, want 16/16", len(ck), len(ik))
	}
	if len(rand) != 16 {
		return nil, fmt.Errorf("kdf: RAND length %d, want 16", len(rand))
	}
	if len(res) != 8 {
		return nil, fmt.Errorf("kdf: RES length %d, want 8", len(res))
	}
	key := append(append(make([]byte, 0, 32), ck...), ik...)
	out := Generic(key, fcResStar, []byte(snn), rand, res)
	return out[len(out)-KeyLen128:], nil
}

// HXResStar derives HXRES* = the 128 most-significant bits of
// SHA-256(RAND || XRES*) (TS 33.501 A.5). This is the value the paper's
// eAUSF P-AKA module computes inside the enclave.
//
// Note: the paper's Table I lists HXRES* as 8 bytes; TS 33.501 defines 16.
// We implement the specification value and report both in the Table I
// reproduction (see EXPERIMENTS.md).
func HXResStar(rand, xresStar []byte) ([]byte, error) {
	if len(rand) != 16 {
		return nil, fmt.Errorf("kdf: RAND length %d, want 16", len(rand))
	}
	if len(xresStar) != 16 {
		return nil, fmt.Errorf("kdf: XRES* length %d, want 16", len(xresStar))
	}
	h := sha256.New()
	h.Write(rand)
	h.Write(xresStar)
	return h.Sum(nil)[:KeyLen128], nil
}

// KSEAF derives the serving-network anchor key K_SEAF from K_AUSF
// (TS 33.501 A.6).
func KSEAF(kausf []byte, snn string) ([]byte, error) {
	if len(kausf) != KeyLen256 {
		return nil, fmt.Errorf("kdf: K_AUSF length %d, want %d", len(kausf), KeyLen256)
	}
	return Generic(kausf, fcKSEAF, []byte(snn)), nil
}

// KAMF derives K_AMF from K_SEAF (TS 33.501 A.7). supi is the subscription
// permanent identifier in its IMSI string form; abba is the Anti-Bidding
// down Between Architectures parameter (0x0000 in this release).
func KAMF(kseaf []byte, supi string, abba []byte) ([]byte, error) {
	if len(kseaf) != KeyLen256 {
		return nil, fmt.Errorf("kdf: K_SEAF length %d, want %d", len(kseaf), KeyLen256)
	}
	if len(abba) == 0 {
		abba = []byte{0x00, 0x00}
	}
	return Generic(kseaf, fcKAMF, []byte(supi), abba), nil
}

// AlgorithmKey derives a 128-bit NAS protection key from K_AMF
// (TS 33.501 A.8): the 128 least-significant bits of the KDF output.
func AlgorithmKey(kamf []byte, typ AlgorithmType, algoID byte) ([]byte, error) {
	if len(kamf) != KeyLen256 {
		return nil, fmt.Errorf("kdf: K_AMF length %d, want %d", len(kamf), KeyLen256)
	}
	out := Generic(kamf, fcAlgoKey, []byte{byte(typ)}, []byte{algoID})
	return out[len(out)-KeyLen128:], nil
}

// KGNB derives the gNB anchor key from K_AMF and the uplink NAS COUNT
// (TS 33.501 A.9).
func KGNB(kamf []byte, uplinkNASCount uint32) ([]byte, error) {
	if len(kamf) != KeyLen256 {
		return nil, fmt.Errorf("kdf: K_AMF length %d, want %d", len(kamf), KeyLen256)
	}
	var count [4]byte
	binary.BigEndian.PutUint32(count[:], uplinkNASCount)
	// Access type distinguisher: 0x01 = 3GPP access.
	return Generic(kamf, fcKGNB, count[:], []byte{0x01}), nil
}

// ServingNetworkName builds the SNN string of TS 24.501 §9.12.1, e.g.
// "5G:mnc001.mcc001.3gppnetwork.org" for PLMN 00101.
func ServingNetworkName(mcc, mnc string) string {
	if len(mnc) == 2 {
		mnc = "0" + mnc
	}
	return fmt.Sprintf("5G:mnc%s.mcc%s.3gppnetwork.org", mnc, mcc)
}

// XorSQNAK computes SQN XOR AK, the concealed sequence number carried in
// AUTN.
func XorSQNAK(sqn, ak []byte) ([]byte, error) {
	if len(sqn) != 6 || len(ak) != 6 {
		return nil, fmt.Errorf("kdf: SQN/AK lengths %d/%d, want 6/6", len(sqn), len(ak))
	}
	out := make([]byte, 6)
	for i := range out {
		out[i] = sqn[i] ^ ak[i]
	}
	return out, nil
}

// BuildAUTN assembles the 16-byte authentication token
// AUTN = (SQN XOR AK) || AMF || MAC-A.
func BuildAUTN(sqnXorAK, amf, macA []byte) ([]byte, error) {
	if len(sqnXorAK) != 6 {
		return nil, fmt.Errorf("kdf: SQN^AK length %d, want 6", len(sqnXorAK))
	}
	if len(amf) != 2 {
		return nil, fmt.Errorf("kdf: AMF length %d, want 2", len(amf))
	}
	if len(macA) != 8 {
		return nil, fmt.Errorf("kdf: MAC-A length %d, want 8", len(macA))
	}
	autn := make([]byte, 0, 16)
	autn = append(autn, sqnXorAK...)
	autn = append(autn, amf...)
	autn = append(autn, macA...)
	return autn, nil
}

// SplitAUTN splits a 16-byte AUTN into its components.
func SplitAUTN(autn []byte) (sqnXorAK, amf, macA []byte, err error) {
	if len(autn) != 16 {
		return nil, nil, nil, fmt.Errorf("kdf: AUTN length %d, want 16", len(autn))
	}
	return autn[0:6], autn[6:8], autn[8:16], nil
}
