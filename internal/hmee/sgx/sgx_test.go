package sgx

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"shield5g/internal/simclock"
)

func testPlatform(t testing.TB) *Platform {
	t.Helper()
	p, err := NewPlatform(PlatformConfig{Seed: 42})
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	return p
}

func testConfig() EnclaveConfig {
	return EnclaveConfig{
		Name:       "eudm-p-aka",
		SizeBytes:  512 << 20,
		MaxThreads: 4,
		Preheat:    true,
		TrustedFiles: []MeasuredFile{
			{Path: "/gramine/libos.so", Size: 2_500_000_000},
		},
	}
}

func build(t testing.TB, p *Platform, cfg EnclaveConfig) *Enclave {
	t.Helper()
	e, err := p.Build(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	t.Cleanup(e.Destroy)
	return e
}

func TestBuildLoadTimeNearOneMinute(t *testing.T) {
	p := testPlatform(t)
	e := build(t, p, testConfig())
	d := e.LoadDuration()
	if d < 45*time.Second || d > 75*time.Second {
		t.Fatalf("load duration = %v, want ~1 minute (Fig. 7)", d)
	}
}

func TestBuildChargesAccount(t *testing.T) {
	p := testPlatform(t)
	var acct simclock.Account
	ctx := simclock.WithAccount(context.Background(), &acct)
	e, err := p.Build(ctx, testConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer e.Destroy()
	if acct.Total() != e.LoadCycles() {
		t.Fatalf("account = %d, load = %d", acct.Total(), e.LoadCycles())
	}
}

func TestBuildValidation(t *testing.T) {
	p := testPlatform(t)
	if _, err := p.Build(context.Background(), EnclaveConfig{SizeBytes: 0, MaxThreads: 4}); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := p.Build(context.Background(), EnclaveConfig{SizeBytes: 1 << 20, MaxThreads: 0}); err == nil {
		t.Fatal("zero threads accepted")
	}
}

func TestEPCExhaustion(t *testing.T) {
	p, err := NewPlatform(PlatformConfig{Seed: 1, EPCCapacityBytes: 1 << 30})
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	cfg := testConfig()
	cfg.TrustedFiles = nil
	e1, err := p.Build(context.Background(), cfg)
	if err != nil {
		t.Fatalf("first build: %v", err)
	}
	cfg2 := cfg
	cfg2.SizeBytes = 768 << 20
	if _, err := p.Build(context.Background(), cfg2); !errors.Is(err, ErrEPCExhausted) {
		t.Fatalf("second build err = %v, want ErrEPCExhausted", err)
	}
	// Destroying the first enclave releases EPC for the second.
	e1.Destroy()
	if p.EPCInUse() != 0 {
		t.Fatalf("EPCInUse after destroy = %d", p.EPCInUse())
	}
	e2, err := p.Build(context.Background(), cfg2)
	if err != nil {
		t.Fatalf("build after destroy: %v", err)
	}
	e2.Destroy()
}

func TestMeasurementDependsOnIdentity(t *testing.T) {
	p := testPlatform(t)
	a := build(t, p, testConfig())
	b := build(t, p, testConfig())
	if a.Measurement() != b.Measurement() {
		t.Fatal("identical configs produced different measurements")
	}
	cfg := testConfig()
	cfg.TrustedFiles = append(cfg.TrustedFiles, MeasuredFile{Path: "/evil.so", Size: 10})
	c := build(t, p, cfg)
	if a.Measurement() == c.Measurement() {
		t.Fatal("different trusted files produced identical measurements")
	}
}

func TestECallCountsTransitions(t *testing.T) {
	p := testPlatform(t)
	e := build(t, p, testConfig())
	before := e.Stats()
	err := e.ECall(context.Background(), 40, 80, func(th *Thread) error {
		th.Compute(100_000)
		th.OCall(p.Model().SyscallNative, 64, 64)
		th.OCall(p.Model().SyscallNative, 64, 64)
		return nil
	})
	if err != nil {
		t.Fatalf("ECall: %v", err)
	}
	d := e.Stats().Sub(before)
	if d.ECALLs != 1 || d.OCALLs != 2 {
		t.Fatalf("delta = %+v, want 1 ECALL / 2 OCALLs", d)
	}
	// Each OCALL is one EEXIT+EENTER pair; the ECALL adds one of each.
	if d.EENTER != 3 || d.EEXIT != 3 {
		t.Fatalf("delta = %+v, want 3 EENTER / 3 EEXIT", d)
	}
}

func TestECallChargesLatency(t *testing.T) {
	p := testPlatform(t)
	e := build(t, p, testConfig())
	var acct simclock.Account
	ctx := simclock.WithAccount(context.Background(), &acct)
	if err := e.ECall(ctx, 0, 0, func(th *Thread) error { return nil }); err != nil {
		t.Fatalf("ECall: %v", err)
	}
	min := p.Model().EENTER + p.Model().EEXIT
	if acct.Total() < min {
		t.Fatalf("charged %d cycles, want >= %d", acct.Total(), min)
	}
}

func TestECallErrorPropagates(t *testing.T) {
	p := testPlatform(t)
	e := build(t, p, testConfig())
	sentinel := errors.New("boom")
	if err := e.ECall(context.Background(), 0, 0, func(*Thread) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestTCSExhaustion(t *testing.T) {
	p := testPlatform(t)
	cfg := testConfig()
	cfg.MaxThreads = 1
	e := build(t, p, cfg)
	// A nested entry now queues instead of failing outright, so bound the
	// wait with a ctx deadline to observe the exhaustion error.
	err := e.ECall(context.Background(), 0, 0, func(*Thread) error {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer cancel()
		return e.ECall(ctx, 0, 0, func(*Thread) error { return nil })
	})
	if !errors.Is(err, ErrTooManyThreads) {
		t.Fatalf("nested ECall err = %v, want ErrTooManyThreads", err)
	}
}

func TestResidentEntries(t *testing.T) {
	p := testPlatform(t)
	e := build(t, p, testConfig())
	before := e.Stats()
	th, err := e.EnterResident(context.Background())
	if err != nil {
		t.Fatalf("EnterResident: %v", err)
	}
	d := e.Stats().Sub(before)
	if d.EENTER != 1 || d.EEXIT != 0 {
		t.Fatalf("resident entry delta = %+v, want EENTER=1 EEXIT=0", d)
	}
	e.LeaveResident(th)
	d = e.Stats().Sub(before)
	if d.EEXIT != 1 {
		t.Fatalf("after leave delta = %+v, want EEXIT=1", d)
	}
}

func TestDestroyedEnclaveRejectsUse(t *testing.T) {
	p := testPlatform(t)
	e := build(t, p, testConfig())
	e.Destroy()
	e.Destroy() // idempotent
	if err := e.ECall(context.Background(), 0, 0, func(*Thread) error { return nil }); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("ECall after destroy = %v, want ErrDestroyed", err)
	}
	if _, err := e.EnterResident(context.Background()); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("EnterResident after destroy = %v", err)
	}
	if _, err := e.Seal([]byte("x"), nil); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("Seal after destroy = %v", err)
	}
	if _, err := e.GenerateQuote([64]byte{}); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("GenerateQuote after destroy = %v", err)
	}
}

func TestTouchPreheatAvoidsFaults(t *testing.T) {
	p := testPlatform(t)
	e := build(t, p, testConfig()) // preheat on, 512 MiB
	var acct simclock.Account
	ctx := simclock.WithAccount(context.Background(), &acct)
	if err := e.ECall(ctx, 0, 0, func(th *Thread) error {
		th.Touch(64 << 10)
		return nil
	}); err != nil {
		t.Fatalf("ECall: %v", err)
	}
	if faults := e.Stats().PageFaults; faults != 0 {
		t.Fatalf("preheated 512MiB enclave faulted %d pages", faults)
	}
}

func TestTouchDemandPagingWithoutPreheat(t *testing.T) {
	p := testPlatform(t)
	cfg := testConfig()
	cfg.Preheat = false
	e := build(t, p, cfg)
	if err := e.ECall(context.Background(), 0, 0, func(th *Thread) error {
		th.Touch(64 << 10) // 16 pages, none resident yet
		return nil
	}); err != nil {
		t.Fatalf("ECall: %v", err)
	}
	if faults := e.Stats().PageFaults; faults < 16 {
		t.Fatalf("cold enclave faulted %d pages, want >= 16", faults)
	}
}

func TestTouchOversizedEnclavePaysPressure(t *testing.T) {
	p := testPlatform(t)
	small := build(t, p, testConfig())
	cfgBig := testConfig()
	cfgBig.Name = "big"
	cfgBig.SizeBytes = 8 << 30
	big := build(t, p, cfgBig)

	touchMany := func(e *Enclave) uint64 {
		for i := 0; i < 200; i++ {
			if err := e.ECall(context.Background(), 0, 0, func(th *Thread) error {
				th.Touch(256 << 10)
				return nil
			}); err != nil {
				t.Fatalf("ECall: %v", err)
			}
		}
		return e.Stats().PageFaults
	}
	smallFaults := touchMany(small)
	bigFaults := touchMany(big)
	if bigFaults <= smallFaults {
		t.Fatalf("8GiB enclave faults (%d) not above 512MiB enclave faults (%d)", bigFaults, smallFaults)
	}
}

func TestAccrueUptimeGeneratesAEX(t *testing.T) {
	p := testPlatform(t)
	e := build(t, p, testConfig())
	before := e.Stats().AEX
	e.AccrueUptime(10 * time.Second)
	got := e.Stats().AEX - before
	// 250 Hz × 4 threads × 10 s = 10000 expected.
	if got < 9000 || got > 11000 {
		t.Fatalf("AEX after 10s uptime = %d, want ~10000", got)
	}
	if p.Clock().Now() < 10*time.Second {
		t.Fatal("uptime did not advance the platform clock")
	}
}

func TestSecretsAndIntrospection(t *testing.T) {
	p := testPlatform(t)
	e := build(t, p, testConfig())
	secret := []byte("subscriber-key-465b5ce8")
	if err := e.ECall(context.Background(), 0, 0, func(th *Thread) error {
		th.StoreSecret("k", secret)
		got, ok := th.LoadSecret("k")
		if !ok || !bytes.Equal(got, secret) {
			t.Error("in-enclave secret read failed")
		}
		return nil
	}); err != nil {
		t.Fatalf("ECall: %v", err)
	}

	// The attacker's view must be ciphertext, not the secret.
	view, ok := e.Introspect("k")
	if !ok {
		t.Fatal("Introspect found nothing")
	}
	if bytes.Equal(view, secret) || bytes.Contains(view, []byte("subscriber")) {
		t.Fatal("introspection leaked plaintext")
	}
	if _, ok := e.Introspect("missing"); ok {
		t.Fatal("Introspect invented a region")
	}

	// Destroy flushes secrets (Key Issue 5).
	e.Destroy()
	if _, ok := e.Introspect("k"); ok {
		t.Fatal("secret survived enclave teardown")
	}
}

func TestLoadSecretCopies(t *testing.T) {
	p := testPlatform(t)
	e := build(t, p, testConfig())
	if err := e.ECall(context.Background(), 0, 0, func(th *Thread) error {
		th.StoreSecret("k", []byte{1, 2, 3})
		got, _ := th.LoadSecret("k")
		got[0] = 9
		again, _ := th.LoadSecret("k")
		if again[0] != 1 {
			t.Error("LoadSecret returned aliased storage")
		}
		return nil
	}); err != nil {
		t.Fatalf("ECall: %v", err)
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	p := testPlatform(t)
	e := build(t, p, testConfig())
	blob, err := e.Seal([]byte("operator-opc"), []byte("aad"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	plain, err := e.Unseal(blob, []byte("aad"))
	if err != nil {
		t.Fatalf("Unseal: %v", err)
	}
	if string(plain) != "operator-opc" {
		t.Fatalf("Unseal = %q", plain)
	}
}

func TestUnsealRejectsTamperAndWrongIdentity(t *testing.T) {
	p := testPlatform(t)
	e := build(t, p, testConfig())
	blob, err := e.Seal([]byte("secret"), nil)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}

	tampered := append([]byte(nil), blob...)
	tampered[len(tampered)-1] ^= 1
	if _, err := e.Unseal(tampered, nil); !errors.Is(err, ErrUnseal) {
		t.Fatalf("tampered unseal = %v, want ErrUnseal", err)
	}
	if _, err := e.Unseal(blob[:4], nil); !errors.Is(err, ErrUnseal) {
		t.Fatalf("short unseal = %v, want ErrUnseal", err)
	}
	if _, err := e.Unseal(blob, []byte("wrong-aad")); !errors.Is(err, ErrUnseal) {
		t.Fatalf("wrong AAD unseal = %v, want ErrUnseal", err)
	}

	// A different enclave identity must not unseal.
	cfg := testConfig()
	cfg.Name = "other"
	other := build(t, p, cfg)
	if _, err := other.Unseal(blob, nil); !errors.Is(err, ErrUnseal) {
		t.Fatalf("cross-enclave unseal = %v, want ErrUnseal", err)
	}

	// Same code on a different platform must not unseal either.
	p2 := testPlatform(t)
	twin := build(t, p2, testConfig())
	if _, err := twin.Unseal(blob, nil); !errors.Is(err, ErrUnseal) {
		t.Fatalf("cross-platform unseal = %v, want ErrUnseal", err)
	}
}

func TestQuoteVerify(t *testing.T) {
	p := testPlatform(t)
	e := build(t, p, testConfig())
	var data [64]byte
	copy(data[:], "tls-transcript-hash")
	q, err := e.GenerateQuote(data)
	if err != nil {
		t.Fatalf("GenerateQuote: %v", err)
	}
	m := e.Measurement()
	if err := VerifyQuote(p.QuotingPublicKey(), q, &m); err != nil {
		t.Fatalf("VerifyQuote: %v", err)
	}
	if err := VerifyQuote(p.QuotingPublicKey(), q, nil); err != nil {
		t.Fatalf("VerifyQuote without expectation: %v", err)
	}
}

func TestQuoteVerifyFailures(t *testing.T) {
	p := testPlatform(t)
	e := build(t, p, testConfig())
	q, err := e.GenerateQuote([64]byte{})
	if err != nil {
		t.Fatalf("GenerateQuote: %v", err)
	}

	// Wrong platform key.
	p2 := testPlatform(t)
	if err := VerifyQuote(p2.QuotingPublicKey(), q, nil); !errors.Is(err, ErrQuoteSignature) {
		t.Fatalf("wrong key verify = %v, want ErrQuoteSignature", err)
	}

	// Tampered report.
	bad := *q
	bad.Report.EnclaveName = "impostor"
	if err := VerifyQuote(p.QuotingPublicKey(), &bad, nil); !errors.Is(err, ErrQuoteSignature) {
		t.Fatalf("tampered verify = %v, want ErrQuoteSignature", err)
	}

	// Unexpected measurement.
	var wrong [32]byte
	if err := VerifyQuote(p.QuotingPublicKey(), q, &wrong); !errors.Is(err, ErrMeasurementMismatch) {
		t.Fatalf("mismatch verify = %v, want ErrMeasurementMismatch", err)
	}

	if err := VerifyQuote(p.QuotingPublicKey(), nil, nil); err == nil {
		t.Fatal("nil quote accepted")
	}
}

func TestStatsSub(t *testing.T) {
	a := StatsSnapshot{EENTER: 10, EEXIT: 8, AEX: 100, ERESUME: 100, ECALLs: 2, OCALLs: 6, PageFaults: 1}
	b := StatsSnapshot{EENTER: 25, EEXIT: 20, AEX: 150, ERESUME: 150, ECALLs: 3, OCALLs: 18, PageFaults: 4}
	d := b.Sub(a)
	if d.EENTER != 15 || d.EEXIT != 12 || d.AEX != 50 || d.OCALLs != 12 || d.PageFaults != 3 {
		t.Fatalf("Sub = %+v", d)
	}
}

func TestConfigReturnsCopy(t *testing.T) {
	p := testPlatform(t)
	e := build(t, p, testConfig())
	cfg := e.Config()
	cfg.TrustedFiles[0].Path = "mutated"
	if e.Config().TrustedFiles[0].Path == "mutated" {
		t.Fatal("Config returned aliased trusted files")
	}
}

func TestBuildDeterministicLoadAcrossSeeds(t *testing.T) {
	// Same seed, same config: identical modelled load time.
	mk := func() simclock.Cycles {
		p, err := NewPlatform(PlatformConfig{Seed: 7})
		if err != nil {
			t.Fatalf("NewPlatform: %v", err)
		}
		e, err := p.Build(context.Background(), testConfig())
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		defer e.Destroy()
		return e.LoadCycles()
	}
	if a, b := mk(), mk(); a != b {
		t.Fatalf("same-seed load cycles differ: %d vs %d", a, b)
	}
}
