package sgx

import (
	"context"
	"testing"
)

func benchEnclave(b *testing.B) *Enclave {
	b.Helper()
	p, err := NewPlatform(PlatformConfig{Seed: 1})
	if err != nil {
		b.Fatalf("NewPlatform: %v", err)
	}
	e, err := p.Build(context.Background(), EnclaveConfig{
		Name: "bench", SizeBytes: 512 << 20, MaxThreads: 8, Preheat: true,
	})
	if err != nil {
		b.Fatalf("Build: %v", err)
	}
	b.Cleanup(e.Destroy)
	return e
}

func BenchmarkECallRoundTrip(b *testing.B) {
	e := benchEnclave(b)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.ECall(ctx, 64, 64, func(th *Thread) error {
			th.Compute(10_000)
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOCallAccounting(b *testing.B) {
	e := benchEnclave(b)
	th, err := e.EnterResident(context.Background())
	if err != nil {
		b.Fatalf("EnterResident: %v", err)
	}
	defer e.LeaveResident(th)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.OCall(1400, 64, 64)
	}
}

func BenchmarkSealUnseal(b *testing.B) {
	e := benchEnclave(b)
	secret := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blob, err := e.Seal(secret, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Unseal(blob, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateVerifyQuote(b *testing.B) {
	p, err := NewPlatform(PlatformConfig{Seed: 1})
	if err != nil {
		b.Fatalf("NewPlatform: %v", err)
	}
	e, err := p.Build(context.Background(), EnclaveConfig{Name: "q", SizeBytes: 1 << 20, MaxThreads: 4})
	if err != nil {
		b.Fatalf("Build: %v", err)
	}
	defer e.Destroy()
	var data [64]byte
	m := e.Measurement()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q, err := e.GenerateQuote(data)
		if err != nil {
			b.Fatal(err)
		}
		if err := VerifyQuote(p.QuotingPublicKey(), q, &m); err != nil {
			b.Fatal(err)
		}
	}
}
