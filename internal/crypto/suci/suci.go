// Package suci implements SUPI concealment and de-concealment using ECIES
// Protection Scheme Profile A from TS 33.501 Annex C: Curve25519 key
// agreement, ANSI X9.63 key derivation with SHA-256, AES-128-CTR
// encryption, and a 64-bit HMAC-SHA-256 tag.
//
// In the paper's flow the UE conceals its SUPI into a SUCI before the
// initial registration request; the UDM holds the home-network private key
// and de-conceals the SUCI before authentication-vector generation. The
// home-network private key is exactly the kind of long-term secret the
// paper argues must live inside an HMEE.
package suci

import (
	"crypto/aes"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"

	"shield5g/internal/crypto/hashpool"
)

// Protection scheme identifiers from TS 23.003 §2.2B.
const (
	SchemeNull     byte = 0x0
	SchemeProfileA byte = 0x1
	SchemeProfileB byte = 0x2
)

// Profile A parameter sizes in bytes.
const (
	ephemeralKeyLen = 32 // Curve25519 public key
	encKeyLen       = 16 // AES-128 key
	icbLen          = 16 // initial counter block
	macKeyLen       = 32 // HMAC-SHA-256 key
	tagLen          = 8  // truncated MAC tag
)

// ErrIntegrity reports a SUCI whose MAC tag failed verification.
var ErrIntegrity = errors.New("suci: integrity check failed")

// SUPI is a subscription permanent identifier in IMSI form.
type SUPI struct {
	MCC  string // 3-digit mobile country code
	MNC  string // 2- or 3-digit mobile network code
	MSIN string // 9- or 10-digit subscriber number
}

// String renders the SUPI in the canonical "imsi-<digits>" form used as the
// KDF input for K_AMF derivation.
func (s SUPI) String() string { return "imsi-" + s.MCC + s.MNC + s.MSIN }

// Validate checks digit-string well-formedness.
func (s SUPI) Validate() error {
	if len(s.MCC) != 3 || !digits(s.MCC) {
		return fmt.Errorf("suci: bad MCC %q", s.MCC)
	}
	if (len(s.MNC) != 2 && len(s.MNC) != 3) || !digits(s.MNC) {
		return fmt.Errorf("suci: bad MNC %q", s.MNC)
	}
	if len(s.MSIN) < 5 || len(s.MSIN) > 10 || !digits(s.MSIN) {
		return fmt.Errorf("suci: bad MSIN %q", s.MSIN)
	}
	return nil
}

func digits(s string) bool {
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return len(s) > 0
}

// SUCI is a subscription concealed identifier. The home-network identity
// (MCC/MNC) and routing information stay in clear text so the serving
// network can route the request; only the MSIN is concealed.
type SUCI struct {
	MCC              string
	MNC              string
	RoutingIndicator string
	Scheme           byte
	HomeKeyID        byte
	// SchemeOutput is, for Profile A: ephemeral public key || ciphertext
	// || 8-byte MAC tag. For the null scheme it is the plaintext MSIN.
	SchemeOutput []byte
}

// HomeNetworkKey is the home network's ECIES key pair, identified by the
// key ID provisioned to subscribers.
type HomeNetworkKey struct {
	ID   byte
	priv *ecdh.PrivateKey
}

// GenerateHomeNetworkKey creates a Curve25519 home-network key pair using
// entropy from rand.
func GenerateHomeNetworkKey(rand io.Reader, id byte) (*HomeNetworkKey, error) {
	priv, err := ecdh.X25519().GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("suci: generate home network key: %w", err)
	}
	return &HomeNetworkKey{ID: id, priv: priv}, nil
}

// HomeNetworkKeyFromBytes reconstructs a key pair from a 32-byte private
// scalar (for example, one unsealed inside an enclave).
func HomeNetworkKeyFromBytes(raw []byte, id byte) (*HomeNetworkKey, error) {
	priv, err := ecdh.X25519().NewPrivateKey(raw)
	if err != nil {
		return nil, fmt.Errorf("suci: load home network key: %w", err)
	}
	return &HomeNetworkKey{ID: id, priv: priv}, nil
}

// PublicKey returns the 32-byte public key provisioned to subscribers.
func (k *HomeNetworkKey) PublicKey() []byte { return k.priv.PublicKey().Bytes() }

// Bytes returns the 32-byte private scalar (for sealing).
func (k *HomeNetworkKey) Bytes() []byte { return k.priv.Bytes() }

// ConcealNull builds a null-scheme SUCI (TS 33.501 Annex C.2): the MSIN
// travels in plain text. 3GPP permits it for unauthenticated emergency
// sessions and test networks; it offers no identity privacy and exists
// here so the privacy difference is demonstrable.
func ConcealNull(supi SUPI, routingIndicator string) (*SUCI, error) {
	if err := supi.Validate(); err != nil {
		return nil, err
	}
	return &SUCI{
		MCC:              supi.MCC,
		MNC:              supi.MNC,
		RoutingIndicator: routingIndicator,
		Scheme:           SchemeNull,
		SchemeOutput:     []byte(supi.MSIN),
	}, nil
}

// NullSUPI recovers the SUPI from a null-scheme SUCI.
func (s *SUCI) NullSUPI() (SUPI, error) {
	if s.Scheme != SchemeNull {
		return SUPI{}, fmt.Errorf("suci: scheme %d is not the null scheme", s.Scheme)
	}
	supi := SUPI{MCC: s.MCC, MNC: s.MNC, MSIN: string(s.SchemeOutput)}
	if err := supi.Validate(); err != nil {
		return SUPI{}, fmt.Errorf("suci: null-scheme SUPI invalid: %w", err)
	}
	return supi, nil
}

// Conceal encrypts the MSIN of supi to the home-network public key hnPub
// using ECIES Profile A, producing a SUCI. rand supplies the ephemeral key
// entropy.
func Conceal(rand io.Reader, supi SUPI, routingIndicator string, hnPub []byte, keyID byte) (*SUCI, error) {
	if err := supi.Validate(); err != nil {
		return nil, err
	}
	if len(hnPub) != ephemeralKeyLen {
		return nil, fmt.Errorf("suci: home network public key length %d, want %d", len(hnPub), ephemeralKeyLen)
	}
	ephPriv, err := ecdh.X25519().GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("suci: generate ephemeral key: %w", err)
	}
	peer, err := ecdh.X25519().NewPublicKey(hnPub)
	if err != nil {
		return nil, fmt.Errorf("suci: parse home network public key: %w", err)
	}
	shared, err := ephPriv.ECDH(peer)
	if err != nil {
		return nil, fmt.Errorf("suci: ECDH: %w", err)
	}
	ephPub := ephPriv.PublicKey().Bytes()
	ks := kdfScratchPool.Get().(*kdfScratch)
	encKey, icb, macKey := deriveKeys(shared, ephPub, ks)

	// Assemble ephPub || ciphertext || tag directly in the output buffer.
	out := make([]byte, len(ephPub)+len(supi.MSIN)+tagLen)
	copy(out, ephPub)
	ciphertext := out[len(ephPub) : len(ephPub)+len(supi.MSIN)]
	ctr(encKey, icb, ciphertext, []byte(supi.MSIN))
	computeTagInto(macKey, ciphertext, &ks.tag)
	copy(out[len(ephPub)+len(supi.MSIN):], ks.tag[:tagLen])
	putKDFScratch(ks)
	return &SUCI{
		MCC:              supi.MCC,
		MNC:              supi.MNC,
		RoutingIndicator: routingIndicator,
		Scheme:           SchemeProfileA,
		HomeKeyID:        keyID,
		SchemeOutput:     out,
	}, nil
}

// Deconceal recovers the SUPI from a Profile A SUCI using the home-network
// private key. It returns ErrIntegrity if the MAC tag does not verify.
func (k *HomeNetworkKey) Deconceal(s *SUCI) (SUPI, error) {
	if s == nil {
		return SUPI{}, errors.New("suci: nil SUCI")
	}
	if s.Scheme != SchemeProfileA {
		return SUPI{}, fmt.Errorf("suci: unsupported protection scheme %d", s.Scheme)
	}
	if s.HomeKeyID != k.ID {
		return SUPI{}, fmt.Errorf("suci: key ID %d does not match home network key %d", s.HomeKeyID, k.ID)
	}
	if len(s.SchemeOutput) < ephemeralKeyLen+1+tagLen {
		return SUPI{}, fmt.Errorf("suci: scheme output too short (%d bytes)", len(s.SchemeOutput))
	}
	ephPub := s.SchemeOutput[:ephemeralKeyLen]
	ciphertext := s.SchemeOutput[ephemeralKeyLen : len(s.SchemeOutput)-tagLen]
	tag := s.SchemeOutput[len(s.SchemeOutput)-tagLen:]

	peer, err := ecdh.X25519().NewPublicKey(ephPub)
	if err != nil {
		return SUPI{}, fmt.Errorf("suci: parse ephemeral public key: %w", err)
	}
	shared, err := k.priv.ECDH(peer)
	if err != nil {
		return SUPI{}, fmt.Errorf("suci: ECDH: %w", err)
	}
	ks := kdfScratchPool.Get().(*kdfScratch)
	encKey, icb, macKey := deriveKeys(shared, ephPub, ks)
	computeTagInto(macKey, ciphertext, &ks.tag)
	if !hmac.Equal(tag, ks.tag[:tagLen]) {
		putKDFScratch(ks)
		return SUPI{}, ErrIntegrity
	}
	// MSIN-sized plaintexts fit on the stack; the string conversion below
	// makes the only retained copy.
	var ptBuf [32]byte
	plaintext := ptBuf[:0]
	if len(ciphertext) > len(ptBuf) {
		plaintext = make([]byte, len(ciphertext))
	} else {
		plaintext = ptBuf[:len(ciphertext)]
	}
	ctr(encKey, icb, plaintext, ciphertext)
	putKDFScratch(ks)

	supi := SUPI{MCC: s.MCC, MNC: s.MNC, MSIN: string(plaintext)}
	if err := supi.Validate(); err != nil {
		return SUPI{}, fmt.Errorf("suci: deconcealed SUPI invalid: %w", err)
	}
	return supi, nil
}

// kdfScratch holds one concealment's derived key block, counter word and
// MAC tag. Pooled because the slices handed to hash interfaces would
// otherwise escape to the heap on every Conceal/Deconceal.
type kdfScratch struct {
	out [encKeyLen + icbLen + macKeyLen]byte
	ctr [4]byte
	tag [sha256.Size]byte
}

var kdfScratchPool = sync.Pool{New: func() any { return new(kdfScratch) }}

// putKDFScratch scrubs the derived enc/MAC keys (and tag) before
// recycling, matching the discipline hashpool.PutHMAC establishes: pooled
// memory never retains key material between operations.
func putKDFScratch(ks *kdfScratch) {
	*ks = kdfScratch{}
	kdfScratchPool.Put(ks)
}

// deriveKeys runs the ANSI X9.63 KDF with SHA-256 over the shared secret,
// with the ephemeral public key as SharedInfo, and splits the output into
// the AES key, initial counter block and MAC key (TS 33.501 C.3.2). The
// returned slices alias ks.out and are valid until ks is re-pooled.
//
//shieldlint:hotpath
func deriveKeys(shared, ephPub []byte, ks *kdfScratch) (encKey, icb, macKey []byte) {
	const total = encKeyLen + icbLen + macKeyLen
	out := ks.out[:0]
	var counter uint32 = 1
	h := hashpool.GetSHA256()
	for len(out) < total {
		h.Reset()
		h.Write(shared)
		binary.BigEndian.PutUint32(ks.ctr[:], counter)
		h.Write(ks.ctr[:])
		h.Write(ephPub)
		out = h.Sum(out)
		counter++
	}
	hashpool.PutSHA256(h)
	return out[:encKeyLen], out[encKeyLen : encKeyLen+icbLen], out[encKeyLen+icbLen : total]
}

// ctrScratch holds one CTR pass's counter block and keystream block;
// pooled so the interface call block.Encrypt has heap destinations
// without a per-call allocation.
type ctrScratch struct {
	iv, ks [aes.BlockSize]byte
}

var ctrScratchPool = sync.Pool{New: func() any { return new(ctrScratch) }}

// putCTRScratch scrubs the counter and keystream blocks before recycling:
// the keystream XORs directly against the MSIN plaintext and must not
// outlive the pass in pooled memory.
func putCTRScratch(st *ctrScratch) {
	*st = ctrScratch{}
	ctrScratchPool.Put(st)
}

// ctr encrypts src into dst with AES-CTR under key. The key schedule is
// scoped to this one pass — every ECIES exchange derives a fresh
// ephemeral encryption key, so caching schedules across calls would only
// pin key material in process-lifetime memory for a cache that almost
// never hits.
//
//shieldlint:hotpath
func ctr(key, icb, dst, src []byte) {
	block, err := aes.NewCipher(key)
	if err != nil {
		// Key length is fixed by deriveKeys; this cannot happen.
		panic(fmt.Sprintf("suci: AES key setup: %v", err))
	}
	// Manual CTR, bit-identical to cipher.NewCTR(block, icb) (the counter
	// increments big-endian across the whole block) but without the
	// per-call stream-state allocation; MSIN-sized payloads are one block.
	st := ctrScratchPool.Get().(*ctrScratch)
	iv, ks := st.iv[:], st.ks[:]
	copy(iv, icb)
	for len(src) > 0 {
		block.Encrypt(ks, iv)
		n := subtle.XORBytes(dst, src, ks)
		dst, src = dst[n:], src[n:]
		for j := aes.BlockSize - 1; j >= 0; j-- {
			iv[j]++
			if iv[j] != 0 {
				break
			}
		}
	}
	putCTRScratch(st)
}

// computeTagInto writes the full HMAC-SHA-256 of ciphertext into tag; the
// wire format carries only the first tagLen bytes.
//
//shieldlint:hotpath
func computeTagInto(macKey, ciphertext []byte, tag *[sha256.Size]byte) {
	mac := hashpool.GetHMAC(macKey)
	mac.Write(ciphertext)
	mac.Sum(tag[:0])
	hashpool.PutHMAC(mac)
}

// String renders the SUCI in the 3GPP presentation format
// suci-0-<mcc>-<mnc>-<ri>-<scheme>-<keyid>-<hex output>.
func (s *SUCI) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "suci-0-%s-%s-%s-%d-%d-%x", s.MCC, s.MNC, s.RoutingIndicator, s.Scheme, s.HomeKeyID, s.SchemeOutput)
	return b.String()
}
