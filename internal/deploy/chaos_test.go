package deploy

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"shield5g/internal/chaos"
	"shield5g/internal/gnb"
	"shield5g/internal/nf/ausf"
	"shield5g/internal/paka"
	"shield5g/internal/sbi"
	"shield5g/internal/simclock"
	"shield5g/internal/ue"
)

// TestSGXCrashRecoverySealedRestore models a whole-module crash under SGX:
// the rebuilt enclave (same config, same measurement, same seal key)
// restores its subscriber keys from sealed backups, so a UE provisioned
// before the crash re-registers without the UDM ever re-pushing its key.
func TestSGXCrashRecoverySealedRestore(t *testing.T) {
	ctx := context.Background()
	s := newTestSlice(t, paka.SGX)
	device := provisionUE(t, s, "0000031001")
	if _, err := s.GNB.RegisterUE(ctx, device); err != nil {
		t.Fatalf("register before crash: %v", err)
	}

	m := s.Modules[paka.EUDM]
	if err := s.RestartModule(ctx, paka.EUDM); err != nil {
		t.Fatalf("RestartModule: %v", err)
	}
	if m.Restarts() != 1 {
		t.Fatalf("Restarts = %d, want 1", m.Restarts())
	}

	if _, err := s.GNB.RegisterUE(ctx, device); err != nil {
		t.Fatalf("register after crash: %v", err)
	}
	if n := s.UDM.Reprovisions(); n != 0 {
		t.Fatalf("Reprovisions = %d, want 0 (sealed restore should have kept the key)", n)
	}
}

// TestSGXRestartChargesReload pins the recovery cost: the rebuilt enclave
// re-pays the paper's Fig. 7 ~1-minute load in virtual time, charged to
// the restarting request's account.
func TestSGXRestartChargesReload(t *testing.T) {
	s := newTestSlice(t, paka.SGX)
	var acct simclock.Account
	ctx := simclock.WithAccount(context.Background(), &acct)
	if err := s.RestartModule(ctx, paka.EUDM); err != nil {
		t.Fatalf("RestartModule: %v", err)
	}
	reload := s.Env.Model.Duration(acct.Total())
	if reload < 45*time.Second || reload > 75*time.Second {
		t.Fatalf("restart charged %v, want ~1 minute of virtual enclave load", reload)
	}
}

// TestContainerCrashRecoveryReprovisions models the unshielded path: the
// restarted container runtime has no sealed backup, so the first AV
// request hits USER_NOT_FOUND and the UDM restores the key from the UDR.
func TestContainerCrashRecoveryReprovisions(t *testing.T) {
	ctx := context.Background()
	s := newTestSlice(t, paka.Container)
	device := provisionUE(t, s, "0000031002")
	if _, err := s.GNB.RegisterUE(ctx, device); err != nil {
		t.Fatalf("register before crash: %v", err)
	}

	if err := s.RestartModule(ctx, paka.EUDM); err != nil {
		t.Fatalf("RestartModule: %v", err)
	}
	if _, err := s.GNB.RegisterUE(ctx, device); err != nil {
		t.Fatalf("register after crash: %v", err)
	}
	if n := s.UDM.Reprovisions(); n != 1 {
		t.Fatalf("Reprovisions = %d, want 1 (container restart loses the key store)", n)
	}
}

// TestAUSFPendingAuthTTL covers the pending-auth expiry sweep: an auth
// context abandoned mid-registration is reaped once the virtual clock
// passes the TTL, while fresh contexts survive.
func TestAUSFPendingAuthTTL(t *testing.T) {
	ctx := context.Background()
	s := newTestSlice(t, paka.Container)
	provisionUE(t, s, "0000031003")

	client := sbi.NewClient("test", s.Env, s.Registry)
	authenticate := func() {
		var resp ausf.AuthenticateResponse
		if err := client.Post(ctx, "ausf", ausf.PathAuthenticate, &ausf.AuthenticateRequest{
			SUPI:               "imsi-00101" + "0000031003",
			ServingNetworkName: s.AMF.ServingNetworkName(),
		}, &resp); err != nil {
			t.Fatalf("Authenticate: %v", err)
		}
	}

	authenticate() // abandoned: never confirmed
	if n := s.AUSF.PendingSessions(); n != 1 {
		t.Fatalf("pending = %d, want 1", n)
	}

	// Advance virtual time past the TTL, then create a fresh context.
	s.Env.Charge(ctx, simclock.FromDuration(ausf.DefaultPendingAuthTTL+time.Minute, s.Env.Clock.FrequencyHz()))
	authenticate()

	if reaped := s.AUSF.SweepExpired(); reaped != 1 {
		t.Fatalf("SweepExpired = %d, want 1 (only the abandoned context)", reaped)
	}
	if n := s.AUSF.PendingSessions(); n != 1 {
		t.Fatalf("pending after sweep = %d, want the fresh context only", n)
	}
	if n := s.AUSF.ExpiredSessions(); n != 1 {
		t.Fatalf("ExpiredSessions = %d, want 1", n)
	}
}

// chaosMassRun deploys a chaos-enabled slice, provisions the population
// fault-free, then drives a parallel mass registration under faults.
func chaosMassRun(t *testing.T, n, parallelism int) *gnb.MassResult {
	t.Helper()
	ctx := context.Background()
	// Per-request faults only: cross-worker faults (crash, evict) couple
	// workers through shared module state, which is exactly what the
	// sequential driver is for. This mix keeps parallel runs comparable.
	mix := chaos.Config{Seed: 11, LatencyRate: 0.03, ErrorRate: 0.04, DropRate: 0.03}
	s, err := NewSlice(ctx, SliceConfig{Isolation: paka.Container, Seed: 42, Chaos: &mix})
	if err != nil {
		t.Fatalf("NewSlice: %v", err)
	}
	t.Cleanup(s.Stop)

	s.Chaos.SetArmed(false)
	devices := make([]*ue.UE, n)
	for i := range devices {
		devices[i] = provisionUE(t, s, fmt.Sprintf("%010d", 32000+i))
	}
	s.Chaos.SetArmed(true)

	res, err := s.GNB.RegisterManyWith(ctx, gnb.MassOptions{
		N:           n,
		NewUE:       func(i int) (*ue.UE, error) { return devices[i], nil },
		Parallelism: parallelism,
		MaxAttempts: 4,
		Chaos:       s.Chaos,
	})
	if err != nil {
		t.Fatalf("RegisterManyWith: %v", err)
	}
	return res
}

// TestParallelChaosDeterministicOutcome runs the parallel driver under
// per-request faults twice with the same seeds: worker-owned decision and
// cost streams make the outcome counts identical regardless of goroutine
// interleaving. Run under -race via `make vet`, this also exercises the
// injector, resilience layer and retry re-queue for data races.
func TestParallelChaosDeterministicOutcome(t *testing.T) {
	const n, par = 24, 4
	a := chaosMassRun(t, n, par)
	b := chaosMassRun(t, n, par)

	if a.Registered != n {
		t.Errorf("registered = %d/%d under 10%% per-request faults with retries", a.Registered, n)
	}
	if a.Registered != b.Registered || a.Failed != b.Failed || a.Attempts != b.Attempts {
		t.Errorf("outcome diverged: (%d,%d,%d) vs (%d,%d,%d)",
			a.Registered, a.Failed, a.Attempts, b.Registered, b.Failed, b.Attempts)
	}
	if !reflect.DeepEqual(a.FailureCounts, b.FailureCounts) {
		t.Errorf("failure classes diverged: %v vs %v", a.FailureCounts, b.FailureCounts)
	}
	if !reflect.DeepEqual(a.Recovered, b.Recovered) {
		t.Errorf("recovery classes diverged: %v vs %v", a.Recovered, b.Recovered)
	}
}

// TestSequentialChaosBitIdentical is the stacked acceptance check at the
// driver level: two same-seed sequential runs under the full fault mix
// (crashes included) produce bit-identical outcome counts.
func TestSequentialChaosBitIdentical(t *testing.T) {
	run := func() *gnb.MassResult {
		ctx := context.Background()
		mix := chaos.DefaultMix(13, 0.10)
		s, err := NewSlice(ctx, SliceConfig{Isolation: paka.SGX, Seed: 42, Chaos: &mix})
		if err != nil {
			t.Fatalf("NewSlice: %v", err)
		}
		defer s.Stop()
		s.Chaos.SetArmed(false)
		devices := make([]*ue.UE, 30)
		for i := range devices {
			devices[i] = provisionUE(t, s, fmt.Sprintf("%010d", 33000+i))
		}
		s.Chaos.SetArmed(true)
		res, err := s.GNB.RegisterManyWith(ctx, gnb.MassOptions{
			N:           30,
			NewUE:       func(i int) (*ue.UE, error) { return devices[i], nil },
			MaxAttempts: 5,
			Chaos:       s.Chaos,
		})
		if err != nil {
			t.Fatalf("RegisterManyWith: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.Registered != b.Registered || a.Failed != b.Failed || a.Attempts != b.Attempts ||
		!reflect.DeepEqual(a.FailureCounts, b.FailureCounts) ||
		!reflect.DeepEqual(a.Recovered, b.Recovered) {
		t.Fatalf("same-seed sequential runs diverged:\n(%d,%d,%d) %v %v\n(%d,%d,%d) %v %v",
			a.Registered, a.Failed, a.Attempts, a.FailureCounts, a.Recovered,
			b.Registered, b.Failed, b.Attempts, b.FailureCounts, b.Recovered)
	}
	if a.Registered < 30*99/100 {
		t.Errorf("registered %d/30, want >= 99%%", a.Registered)
	}
}
