package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"shield5g/internal/admission"
	"shield5g/internal/chaos"
	"shield5g/internal/deploy"
	"shield5g/internal/gnb"
	"shield5g/internal/paka"
	"shield5g/internal/sbi"
	"shield5g/internal/simclock"
	"shield5g/internal/ue"
)

// The storm experiment replays a mass-disconnect/re-attach signaling storm
// against a shielded slice at 10x the core's modelled service rate, with
// the overload-control limiter off (servers sense and queue but never
// shed) and on (bounded queues + priority admission + client throttling),
// and compares per-class goodput and tail latency. A factor-1 pair checks
// that the limiter is free when there is no overload. Set BENCH_STORM_JSON
// to a path to dump the comparison (the BENCH_storm_goodput.json
// artifact).

const (
	// stormBottleneckCycles mirrors the UDM's modelled per-request service
	// cost — the drain rate of the chain's slowest virtual queue. The
	// overload factor is expressed against it: arrival spacing =
	// bottleneck / factor.
	stormBottleneckCycles = 3_600_000
	stormEmergencyFrac    = 0.05
	stormReattachFrac     = 0.60
	stormJitterFrac       = 0.2
)

// StormClass is one priority class's outcome at one sweep point.
type StormClass struct {
	Offered    int           `json:"offered"`
	Registered int           `json:"registered"`
	Shed       int           `json:"shed"`
	Failed     int           `json:"failed"`
	Goodput    float64       `json:"goodput_per_sec"`
	P99        time.Duration `json:"-"`
	P99MS      float64       `json:"p99_ms"`
	// Makespan is the class's own first-arrival-to-last-completion span;
	// goodput is registered/makespan over this span, so one long-retrying
	// straggler in another class doesn't dilute the ratio.
	Makespan   time.Duration `json:"-"`
	MakespanMS float64       `json:"makespan_ms"`
}

// StormPoint is one (factor, limiter) cell of the sweep.
type StormPoint struct {
	Factor  float64 `json:"factor"`
	Limiter bool    `json:"limiter"`
	// Class is indexed by sbi.Priority (fresh, reattach, emergency).
	Class    [3]StormClass `json:"class"`
	Makespan time.Duration `json:"-"`
	// MakespanMS is the virtual span from first arrival to last
	// completion; queue backlog stretches it.
	MakespanMS float64 `json:"makespan_ms"`
	// MedianSetup is the all-classes setup median.
	MedianSetup time.Duration `json:"-"`
	MedianMS    float64       `json:"median_setup_ms"`
	// AdmissionDrops counts registrations cut at the AMF's buckets before
	// any enclave-bound work; MeterSheds counts server-side bounded-queue
	// rejections across metered services.
	AdmissionDrops uint64 `json:"admission_drops"`
	MeterSheds     uint64 `json:"meter_sheds"`
	// Throttled/Retries/BreakerOpens surface the resilience layer's view.
	Throttled    uint64 `json:"throttled"`
	Retries      uint64 `json:"retries"`
	BreakerOpens uint64 `json:"breaker_opens"`
}

// StormResult is the full sweep.
type StormResult struct {
	UEs    int          `json:"ues"`
	Factor float64      `json:"factor"`
	Points []StormPoint `json:"points"`
	// EmergencyGoodputRatio is limiter-on over limiter-off emergency
	// goodput at the overload factor (acceptance: >= 2).
	EmergencyGoodputRatio float64 `json:"emergency_goodput_ratio"`
	// EmergencyP99Improved reports whether the limiter lowered the
	// emergency-class p99 at the overload factor.
	EmergencyP99Improved bool `json:"emergency_p99_improved"`
	// OverheadPct is the limiter's median-setup overhead at factor 1
	// (acceptance: < 5%).
	OverheadPct float64 `json:"overhead_factor1_pct"`
	// Deterministic reports whether replaying the limiter-on overload
	// point reproduced identical per-class outcome counts.
	Deterministic bool `json:"deterministic"`
}

// Storm runs the signaling-storm survival comparison.
func Storm(ctx context.Context, cfg Config) (*StormResult, error) {
	n := cfg.iterations()
	if n < 120 {
		n = 120
	}
	if n > 360 {
		n = 360
	}
	const factor = 10.0

	result := &StormResult{UEs: n, Factor: factor}
	type cell struct {
		factor  float64
		limiter bool
	}
	cells := []cell{
		{factor, false},
		{factor, true},
		{1, false},
		{1, true},
	}
	for _, c := range cells {
		point, _, err := stormPoint(ctx, cfg, n, c.factor, c.limiter)
		if err != nil {
			return nil, err
		}
		result.Points = append(result.Points, point)
	}

	off, on := result.Points[0], result.Points[1]
	em := sbi.PriorityEmergency
	if off.Class[em].Goodput > 0 {
		result.EmergencyGoodputRatio = on.Class[em].Goodput / off.Class[em].Goodput
	}
	result.EmergencyP99Improved = on.Class[em].P99 < off.Class[em].P99
	base, lim := result.Points[2], result.Points[3]
	if base.MedianSetup > 0 {
		result.OverheadPct = 100 * (float64(lim.MedianSetup)/float64(base.MedianSetup) - 1)
	}

	// Determinism: replay the limiter-on overload point on a fresh
	// same-seed slice and compare every per-class outcome count.
	_, first, err := stormPoint(ctx, cfg, n, factor, true)
	if err != nil {
		return nil, err
	}
	result.Deterministic = sameStormOutcome(&on, first)

	if path := os.Getenv("BENCH_STORM_JSON"); path != "" {
		data, err := json.MarshalIndent(result, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("storm: marshal report: %w", err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("storm: write %s: %w", path, err)
		}
	}
	return result, nil
}

// sameStormOutcome compares a point against a replayed run's per-class
// counts.
func sameStormOutcome(p *StormPoint, r *gnb.StormResult) bool {
	for c := range p.Class {
		if p.Class[c].Offered != r.Class[c].Offered ||
			p.Class[c].Registered != r.Class[c].Registered ||
			p.Class[c].Shed != r.Class[c].Shed ||
			p.Class[c].Failed != r.Class[c].Failed {
			return false
		}
	}
	return true
}

// stormPoint deploys a fresh slice, pre-registers the re-attach population
// (the storm's mass disconnect is abrupt — no deregistration signaling, so
// AMF contexts and GUTIs persist), then arms the overload machinery and
// replays the seeded storm plan.
func stormPoint(ctx context.Context, cfg Config, n int, factor float64, limiter bool) (StormPoint, *gnb.StormResult, error) {
	point := StormPoint{Factor: factor, Limiter: limiter}

	profile := &deploy.OverloadProfile{}
	if limiter {
		acfg := admission.DefaultConfig(nil)
		profile = &deploy.OverloadProfile{Shed: true, Admission: &acfg, Throttle: true}
	}
	s, err := deploy.NewSlice(ctx, deploy.SliceConfig{
		Isolation:   paka.SGX,
		Seed:        cfg.Seed + 43,
		AVPoolDepth: 8,
		Overload:    profile,
	})
	if err != nil {
		return point, nil, err
	}
	defer s.Stop()

	plan, err := chaos.NewStormPlan(cfg.Seed+43, chaos.StormSpec{
		N:             n,
		EmergencyFrac: stormEmergencyFrac,
		ReattachFrac:  stormReattachFrac,
		Spacing:       simclock.Cycles(float64(stormBottleneckCycles) / factor),
		JitterFrac:    stormJitterFrac,
	})
	if err != nil {
		return point, nil, err
	}

	// Provision one device pool per class; the re-attach population
	// registers once before the storm so it holds GUTIs.
	devices := make(map[sbi.Priority][]*ue.UE)
	for _, ev := range plan.Events {
		i := len(devices[ev.Class])
		device, err := sliceSubscriber(ctx, s, fmt.Sprintf("%01d%09d", int(ev.Class)+1, 7000+i))
		if err != nil {
			return point, nil, err
		}
		switch ev.Class {
		case sbi.PriorityEmergency:
			device.SetEmergency(true)
		case sbi.PriorityReattach:
			if _, err := s.GNB.RegisterUE(ctx, device); err != nil {
				return point, nil, fmt.Errorf("storm: pre-register re-attach device %d: %w", i, err)
			}
		}
		devices[ev.Class] = append(devices[ev.Class], device)
	}

	next := map[sbi.Priority]int{}
	mapper := func(ev chaos.StormEvent) (*ue.UE, error) {
		i := next[ev.Class]
		next[ev.Class]++
		return devices[ev.Class][i], nil
	}

	s.SetOverloadArmed(true)
	res, err := s.GNB.RunStorm(ctx, gnb.StormOptions{
		Plan:   plan,
		Device: mapper,
		Source: "gnb-1",
	})
	s.SetOverloadArmed(false)
	if err != nil {
		return point, nil, err
	}

	all := res.Class[0].SetupTimes
	for c := range res.Class {
		cr := res.Class[c]
		summary := cr.SetupTimes.Summarize()
		point.Class[c] = StormClass{
			Offered:    cr.Offered,
			Registered: cr.Registered,
			Shed:       cr.Shed,
			Failed:     cr.Failed,
			Goodput:    cr.GoodputPerSec,
			P99:        summary.P99,
			P99MS:      float64(summary.P99) / float64(time.Millisecond),
			Makespan:   cr.Makespan,
			MakespanMS: float64(cr.Makespan) / float64(time.Millisecond),
		}
		if c > 0 {
			all.Merge(cr.SetupTimes)
		}
	}
	point.Makespan = res.Makespan
	point.MakespanMS = float64(res.Makespan) / float64(time.Millisecond)
	point.MedianSetup = all.Summarize().Median
	point.MedianMS = float64(point.MedianSetup) / float64(time.Millisecond)
	if s.Admission != nil {
		point.AdmissionDrops = s.Admission.Stats().TotalDropped()
	}
	for _, st := range s.OverloadStats() {
		point.MeterSheds += st.TotalShed()
	}
	rs := s.ResilienceStats()
	point.Throttled = rs.Throttled
	point.Retries = rs.Retries
	point.BreakerOpens = rs.Breaker.Opens
	return point, res, nil
}

// Render prints the storm comparison.
func (r *StormResult) Render(w io.Writer) {
	fprintf(w, "Signaling-storm survival (%d arrivals, %.0fx overload, mix %.0f%% emergency / %.0f%% re-attach / %.0f%% fresh)\n",
		r.UEs, r.Factor, 100*stormEmergencyFrac, 100*stormReattachFrac,
		100*(1-stormEmergencyFrac-stormReattachFrac))
	fprintf(w, "%-8s %-7s %-9s %5s %5s %5s %9s %9s %9s %8s %8s\n",
		"factor", "limiter", "class", "offer", "ok", "shed", "goodput/s", "p99", "makespan", "admdrop", "throttle")
	for _, p := range r.Points {
		for c := len(p.Class) - 1; c >= 0; c-- {
			cl := p.Class[c]
			name := sbi.Priority(c).String()
			fprintf(w, "%-8.0f %-7v %-9s %5d %5d %5d %9.1f %9s %9s %8d %8d\n",
				p.Factor, p.Limiter, name, cl.Offered, cl.Registered, cl.Shed,
				cl.Goodput, cl.P99.Round(10*time.Microsecond),
				cl.Makespan.Round(100*time.Microsecond), p.AdmissionDrops, p.Throttled)
		}
	}
	fprintf(w, "emergency goodput ratio (limiter on/off at %.0fx): %.2fx; emergency p99 improved: %v\n",
		r.Factor, r.EmergencyGoodputRatio, r.EmergencyP99Improved)
	fprintf(w, "limiter overhead at 1x: %.2f%% (median setup)\n", r.OverheadPct)
	if r.Deterministic {
		fprintf(w, "(same-seed replay of the limiter-on point reproduced identical per-class counts)\n")
	} else {
		fprintf(w, "WARNING: same-seed replay diverged; the determinism contract is broken\n")
	}
}

// WriteCSV emits the per-point, per-class series.
func (r *StormResult) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, p := range r.Points {
		for c, cl := range p.Class {
			rows = append(rows, []string{
				f(p.Factor),
				fmt.Sprintf("%v", p.Limiter),
				sbi.Priority(c).String(),
				fmt.Sprintf("%d", cl.Offered),
				fmt.Sprintf("%d", cl.Registered),
				fmt.Sprintf("%d", cl.Shed),
				fmt.Sprintf("%d", cl.Failed),
				f(cl.Goodput),
				f(cl.P99MS),
				f(cl.MakespanMS),
				fmt.Sprintf("%d", p.AdmissionDrops),
				fmt.Sprintf("%d", p.MeterSheds),
				fmt.Sprintf("%d", p.Throttled),
			})
		}
	}
	return writeCSV(w, []string{
		"factor", "limiter", "class", "offered", "registered", "shed", "failed",
		"goodput_per_sec", "p99_ms", "makespan_ms", "admission_drops",
		"meter_sheds", "throttled",
	}, rows)
}
