package paka

import (
	"context"
	"sync"

	"shield5g/internal/costmodel"
	"shield5g/internal/crypto/milenage"
	"shield5g/internal/metrics"
	"shield5g/internal/sbi"
	"shield5g/internal/simclock"
)

// UDMFunctions is the UDM VNF's view of its AKA offload target: either the
// in-process functions (monolithic baseline) or the eUDM P-AKA module.
type UDMFunctions interface {
	GenerateAV(ctx context.Context, req *UDMGenerateAVRequest) (*UDMGenerateAVResponse, error)
	Resync(ctx context.Context, req *UDMResyncRequest) (*UDMResyncResponse, error)
}

// UDMBatchFunctions is the optional batched extension of UDMFunctions:
// implementations that can mint several AVs per boundary crossing (the
// eUDM module via one batch ECALL, the monolithic baseline trivially)
// expose it so the UDM's AV precomputation pool refills in one crossing.
type UDMBatchFunctions interface {
	GenerateAVBatch(ctx context.Context, req *UDMGenerateAVBatchRequest) (*UDMGenerateAVBatchResponse, error)
}

// AUSFFunctions is the AUSF VNF's AKA offload view.
type AUSFFunctions interface {
	DeriveSE(ctx context.Context, req *AUSFDeriveSERequest) (*AUSFDeriveSEResponse, error)
}

// AMFFunctions is the AMF VNF's AKA offload view.
type AMFFunctions interface {
	DeriveKAMF(ctx context.Context, req *AMFDeriveKAMFRequest) (*AMFDeriveKAMFResponse, error)
}

// ResponseRecorder separates initial (cold) from stable (warm) response
// times, the paper's R_I versus R_S.
type ResponseRecorder struct {
	Initial *metrics.Recorder
	Stable  *metrics.Recorder

	mu   sync.Mutex
	seen bool
}

// NewResponseRecorder allocates both recorders.
func NewResponseRecorder() *ResponseRecorder {
	return &ResponseRecorder{Initial: &metrics.Recorder{}, Stable: &metrics.Recorder{}}
}

func (r *ResponseRecorder) add(env *costmodel.Env, cycles simclock.Cycles) {
	d := env.Model.Duration(cycles)
	r.mu.Lock()
	first := !r.seen
	r.seen = true
	r.mu.Unlock()
	if first {
		r.Initial.Add(d)
	} else {
		r.Stable.Add(d)
	}
}

// MarkWarm forces subsequent samples into the stable recorder (used when a
// module was warmed outside the measured window).
func (r *ResponseRecorder) MarkWarm() {
	r.mu.Lock()
	r.seen = true
	r.mu.Unlock()
}

// remote measures the VNF-side response time R of every module invocation:
// the duration from sending the request to receiving the response.
type remote struct {
	invoker  sbi.Invoker
	env      *costmodel.Env
	service  string
	response *ResponseRecorder
}

func (r *remote) post(ctx context.Context, path string, req, resp any) error {
	acct := simclock.AccountFrom(ctx)
	start := acct.Total()
	if err := r.invoker.Post(ctx, r.service, path, req, resp); err != nil {
		return err
	}
	r.response.add(r.env, acct.Total()-start)
	return nil
}

// RemoteUDM invokes the eUDM P-AKA module over the SBI.
type RemoteUDM struct {
	remote
}

// NewRemoteUDM builds the UDM VNF's client to the eUDM module.
func NewRemoteUDM(invoker sbi.Invoker, env *costmodel.Env) *RemoteUDM {
	return NewRemoteUDMService(invoker, env, EUDM.ServiceName())
}

// NewRemoteUDMService builds the client against a specific eUDM replica's
// service name (sharded deployments bind each UDM replica to its own
// module replica).
func NewRemoteUDMService(invoker sbi.Invoker, env *costmodel.Env, service string) *RemoteUDM {
	return &RemoteUDM{remote{
		invoker:  invoker,
		env:      env,
		service:  service,
		response: NewResponseRecorder(),
	}}
}

// GenerateAV implements UDMFunctions.
func (r *RemoteUDM) GenerateAV(ctx context.Context, req *UDMGenerateAVRequest) (*UDMGenerateAVResponse, error) {
	var resp UDMGenerateAVResponse
	if err := r.post(ctx, PathUDMGenerateAV, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// GenerateAVBatch implements UDMBatchFunctions. It posts directly
// through the invoker, not the measuring post helper: a pool refill is
// maintenance, and must not contaminate the R_I/R_S response-time
// distributions of the paper's per-request path.
func (r *RemoteUDM) GenerateAVBatch(ctx context.Context, req *UDMGenerateAVBatchRequest) (*UDMGenerateAVBatchResponse, error) {
	var resp UDMGenerateAVBatchResponse
	if err := r.invoker.Post(ctx, r.service, PathUDMGenerateAVBatch, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Resync implements UDMFunctions.
func (r *RemoteUDM) Resync(ctx context.Context, req *UDMResyncRequest) (*UDMResyncResponse, error) {
	var resp UDMResyncResponse
	if err := r.post(ctx, PathUDMResync, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Response exposes the R_I/R_S recorders.
func (r *RemoteUDM) Response() *ResponseRecorder { return r.response }

// RemoteAUSF invokes the eAUSF P-AKA module over the SBI.
type RemoteAUSF struct {
	remote
}

// NewRemoteAUSF builds the AUSF VNF's client to the eAUSF module.
func NewRemoteAUSF(invoker sbi.Invoker, env *costmodel.Env) *RemoteAUSF {
	return NewRemoteAUSFService(invoker, env, EAUSF.ServiceName())
}

// NewRemoteAUSFService builds the client against a specific eAUSF
// replica's service name.
func NewRemoteAUSFService(invoker sbi.Invoker, env *costmodel.Env, service string) *RemoteAUSF {
	return &RemoteAUSF{remote{
		invoker:  invoker,
		env:      env,
		service:  service,
		response: NewResponseRecorder(),
	}}
}

// DeriveSE implements AUSFFunctions.
func (r *RemoteAUSF) DeriveSE(ctx context.Context, req *AUSFDeriveSERequest) (*AUSFDeriveSEResponse, error) {
	var resp AUSFDeriveSEResponse
	if err := r.post(ctx, PathAUSFDeriveSE, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Response exposes the R_I/R_S recorders.
func (r *RemoteAUSF) Response() *ResponseRecorder { return r.response }

// RemoteAMF invokes the eAMF P-AKA module over the SBI.
type RemoteAMF struct {
	remote
}

// NewRemoteAMF builds the AMF VNF's client to the eAMF module.
func NewRemoteAMF(invoker sbi.Invoker, env *costmodel.Env) *RemoteAMF {
	return NewRemoteAMFService(invoker, env, EAMF.ServiceName())
}

// NewRemoteAMFService builds the client against a specific eAMF replica's
// service name.
func NewRemoteAMFService(invoker sbi.Invoker, env *costmodel.Env, service string) *RemoteAMF {
	return &RemoteAMF{remote{
		invoker:  invoker,
		env:      env,
		service:  service,
		response: NewResponseRecorder(),
	}}
}

// DeriveKAMF implements AMFFunctions.
func (r *RemoteAMF) DeriveKAMF(ctx context.Context, req *AMFDeriveKAMFRequest) (*AMFDeriveKAMFResponse, error) {
	var resp AMFDeriveKAMFResponse
	if err := r.post(ctx, PathAMFDeriveKAMF, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Response exposes the R_I/R_S recorders.
func (r *RemoteAMF) Response() *ResponseRecorder { return r.response }

// --- monolithic baselines ---

// MonolithicUDM executes the UDM AKA functions in-process (the unmodified
// OAI baseline the paper compares against). Subscriber keys live in plain
// process memory.
type MonolithicUDM struct {
	env      *costmodel.Env
	profile  Profile
	milCache *milenage.Cache

	mu   sync.Mutex
	keys map[string][]byte
}

// NewMonolithicUDM builds the in-process UDM AKA functions.
func NewMonolithicUDM(env *costmodel.Env) *MonolithicUDM {
	return &MonolithicUDM{
		env:      env,
		profile:  Profiles()[EUDM],
		milCache: milenage.NewCache(),
		keys:     make(map[string][]byte),
	}
}

// ProvisionSubscriber stores a subscriber key in process memory.
func (u *MonolithicUDM) ProvisionSubscriber(supi string, k []byte) {
	u.mu.Lock()
	u.keys[supi] = append([]byte(nil), k...)
	u.mu.Unlock()
	// A re-provision may carry a new key; drop any cached schedule.
	u.milCache.Invalidate(supi)
}

func (u *MonolithicUDM) key(supi string) ([]byte, bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	k, ok := u.keys[supi]
	return k, ok
}

// GenerateAV implements UDMFunctions in-process.
func (u *MonolithicUDM) GenerateAV(ctx context.Context, req *UDMGenerateAVRequest) (*UDMGenerateAVResponse, error) {
	k, ok := u.key(req.SUPI)
	if !ok {
		return nil, ErrUnknownSubscriber
	}
	u.env.Charge(ctx, u.env.JitterFor(ctx).LogNormal(u.profile.FnCycles, u.profile.FnSigma))
	return GenerateAVCached(u.milCache, k, req)
}

// GenerateAVBatch implements UDMBatchFunctions in-process: there is no
// boundary to amortize, so it is a plain loop charging K× the crypto.
func (u *MonolithicUDM) GenerateAVBatch(ctx context.Context, req *UDMGenerateAVBatchRequest) (*UDMGenerateAVBatchResponse, error) {
	resp := &UDMGenerateAVBatchResponse{Vectors: make([]UDMGenerateAVResponse, 0, len(req.Items))}
	for i := range req.Items {
		av, err := u.GenerateAV(ctx, &req.Items[i])
		if err != nil {
			return nil, err
		}
		resp.Vectors = append(resp.Vectors, *av)
	}
	return resp, nil
}

// Resync implements UDMFunctions in-process.
func (u *MonolithicUDM) Resync(ctx context.Context, req *UDMResyncRequest) (*UDMResyncResponse, error) {
	k, ok := u.key(req.SUPI)
	if !ok {
		return nil, ErrUnknownSubscriber
	}
	u.env.Charge(ctx, u.env.JitterFor(ctx).LogNormal(u.profile.FnCycles/2, u.profile.FnSigma))
	return ResyncCached(u.milCache, k, req)
}

// MonolithicAUSF executes the AUSF AKA functions in-process.
type MonolithicAUSF struct {
	env     *costmodel.Env
	profile Profile
}

// NewMonolithicAUSF builds the in-process AUSF AKA functions.
func NewMonolithicAUSF(env *costmodel.Env) *MonolithicAUSF {
	return &MonolithicAUSF{env: env, profile: Profiles()[EAUSF]}
}

// DeriveSE implements AUSFFunctions in-process.
func (a *MonolithicAUSF) DeriveSE(ctx context.Context, req *AUSFDeriveSERequest) (*AUSFDeriveSEResponse, error) {
	a.env.Charge(ctx, a.env.JitterFor(ctx).LogNormal(a.profile.FnCycles, a.profile.FnSigma))
	return DeriveSE(req)
}

// MonolithicAMF executes the AMF AKA function in-process.
type MonolithicAMF struct {
	env     *costmodel.Env
	profile Profile
}

// NewMonolithicAMF builds the in-process AMF AKA function.
func NewMonolithicAMF(env *costmodel.Env) *MonolithicAMF {
	return &MonolithicAMF{env: env, profile: Profiles()[EAMF]}
}

// DeriveKAMF implements AMFFunctions in-process.
func (a *MonolithicAMF) DeriveKAMF(ctx context.Context, req *AMFDeriveKAMFRequest) (*AMFDeriveKAMFResponse, error) {
	a.env.Charge(ctx, a.env.JitterFor(ctx).LogNormal(a.profile.FnCycles, a.profile.FnSigma))
	return DeriveKAMF(req)
}

// Interface conformance.
var (
	_ UDMFunctions      = (*RemoteUDM)(nil)
	_ UDMFunctions      = (*MonolithicUDM)(nil)
	_ UDMBatchFunctions = (*RemoteUDM)(nil)
	_ UDMBatchFunctions = (*MonolithicUDM)(nil)
	_ AUSFFunctions     = (*RemoteAUSF)(nil)
	_ AUSFFunctions     = (*MonolithicAUSF)(nil)
	_ AMFFunctions      = (*RemoteAMF)(nil)
	_ AMFFunctions      = (*MonolithicAMF)(nil)
)
