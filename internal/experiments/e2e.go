package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"shield5g/internal/deploy"
	"shield5g/internal/metrics"
	"shield5g/internal/paka"
	"shield5g/internal/simclock"
)

// E2EResult is the end-to-end session setup analysis of §V-B4: the full
// UE registration + PDU session time under container and SGX isolation,
// and the share of the total attributable to SGX.
type E2EResult struct {
	Container metrics.Summary
	SGX       metrics.Summary
	// SGXDelta is the median extra latency from SGX isolation.
	SGXDelta time.Duration
	// SGXShare is SGXDelta / SGX median (paper: 3.48 ms of 62.38 ms,
	// 5.58%).
	SGXShare float64
}

// E2E measures end-to-end session setup time in both deployments.
func E2E(ctx context.Context, cfg Config) (*E2EResult, error) {
	n := cfg.iterations()
	if n > 100 {
		n = 100
	}
	measure := func(iso paka.Isolation) (metrics.Summary, error) {
		s, err := deploy.NewSlice(ctx, deploy.SliceConfig{Isolation: iso, Seed: cfg.Seed})
		if err != nil {
			return metrics.Summary{}, err
		}
		defer s.Stop()

		// Warm the slice: the first registration pays TLS handshakes
		// and enclave warm-up on every hop.
		warm, err := sliceSubscriber(ctx, s, "0000009999")
		if err != nil {
			return metrics.Summary{}, err
		}
		if _, err := s.GNB.RegisterUE(ctx, warm); err != nil {
			return metrics.Summary{}, err
		}

		rec := &metrics.Recorder{}
		for i := 0; i < n; i++ {
			device, err := sliceSubscriber(ctx, s, fmt.Sprintf("%010d", 4000+i))
			if err != nil {
				return metrics.Summary{}, err
			}
			var acct simclock.Account
			sctx := simclock.WithAccount(ctx, &acct)
			sess, err := s.GNB.RegisterUE(sctx, device)
			if err != nil {
				return metrics.Summary{}, err
			}
			if err := sess.EstablishPDUSession(sctx, 1, "internet"); err != nil {
				return metrics.Summary{}, err
			}
			rec.Add(s.Env.Model.Duration(acct.Total()))
		}
		return rec.Summarize(), nil
	}

	container, err := measure(paka.Container)
	if err != nil {
		return nil, err
	}
	sgxSummary, err := measure(paka.SGX)
	if err != nil {
		return nil, err
	}

	delta := sgxSummary.Median - container.Median
	share := 0.0
	if sgxSummary.Median > 0 {
		share = float64(delta) / float64(sgxSummary.Median)
	}
	return &E2EResult{
		Container: container,
		SGX:       sgxSummary,
		SGXDelta:  delta,
		SGXShare:  share,
	}, nil
}

// Render prints the §V-B4 analysis.
func (r *E2EResult) Render(w io.Writer) {
	fprintf(w, "End-to-end UE session setup (registration + PDU session)\n")
	fprintf(w, "container median: %8.2f ms\n", ms(r.Container.Median))
	fprintf(w, "SGX median:       %8.2f ms (paper: 62.38 ms)\n", ms(r.SGX.Median))
	fprintf(w, "SGX-added delay:  %8.2f ms (paper: 3.48 ms)\n", ms(r.SGXDelta))
	fprintf(w, "SGX share:        %8.2f %% (paper: 5.58 %%)\n", r.SGXShare*100)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
