package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeEmpty(t *testing.T) {
	var r Recorder
	s := r.Summarize()
	if s.N != 0 || s.Median != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]time.Duration{5 * time.Millisecond})
	if s.N != 1 || s.Min != 5*time.Millisecond || s.Max != 5*time.Millisecond ||
		s.Median != 5*time.Millisecond || s.Mean != 5*time.Millisecond {
		t.Fatalf("single summary = %+v", s)
	}
	if s.StdDev != 0 {
		t.Fatalf("StdDev = %v, want 0", s.StdDev)
	}
}

func TestSummarizeKnownDistribution(t *testing.T) {
	// 1..9 ms: median 5, q1 3, q3 7, mean 5.
	var samples []time.Duration
	for i := 1; i <= 9; i++ {
		samples = append(samples, time.Duration(i)*time.Millisecond)
	}
	s := Summarize(samples)
	if s.Median != 5*time.Millisecond {
		t.Errorf("median = %v", s.Median)
	}
	if s.Q1 != 3*time.Millisecond {
		t.Errorf("q1 = %v", s.Q1)
	}
	if s.Q3 != 7*time.Millisecond {
		t.Errorf("q3 = %v", s.Q3)
	}
	if s.Mean != 5*time.Millisecond {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.Min != time.Millisecond || s.Max != 9*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.OutlierFrac != 0 {
		t.Errorf("outliers = %v, want 0", s.OutlierFrac)
	}
}

func TestSummarizeDetectsOutliers(t *testing.T) {
	samples := make([]time.Duration, 0, 101)
	for i := 0; i < 100; i++ {
		samples = append(samples, time.Duration(100+i%3)*time.Microsecond)
	}
	samples = append(samples, 10*time.Millisecond)
	s := Summarize(samples)
	if s.OutlierFrac <= 0 || s.OutlierFrac > 0.05 {
		t.Fatalf("OutlierFrac = %v, want (0, 0.05]", s.OutlierFrac)
	}
}

func TestQuantileBounds(t *testing.T) {
	sorted := []time.Duration{1, 2, 3, 4}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile nonzero")
	}
	if Quantile(sorted, -1) != 1 {
		t.Fatal("q<0 not clamped to min")
	}
	if Quantile(sorted, 2) != 4 {
		t.Fatal("q>1 not clamped to max")
	}
	// pos = 0.5*(4-1) = 1.5 → interpolate between 2ns and 3ns → 2.5ns,
	// truncated to 2ns by integer duration arithmetic.
	if got := Quantile(sorted, 0.5); got != 2 {
		t.Fatalf("median = %v, want 2ns", got)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	var r Recorder
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Add(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if r.N() != 800 {
		t.Fatalf("N = %d, want 800", r.N())
	}
}

func TestRecorderReset(t *testing.T) {
	var r Recorder
	r.Add(time.Second)
	r.Reset()
	if r.N() != 0 {
		t.Fatalf("N after reset = %d", r.N())
	}
}

func TestSamplesCopy(t *testing.T) {
	var r Recorder
	r.Add(time.Second)
	s := r.Samples()
	s[0] = 0
	if r.Samples()[0] != time.Second {
		t.Fatal("Samples returned aliased storage")
	}
}

func TestRatio(t *testing.T) {
	a := Summarize([]time.Duration{10 * time.Microsecond})
	b := Summarize([]time.Duration{4 * time.Microsecond})
	if got := Ratio(a, b); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("Ratio = %v, want 2.5", got)
	}
	if !math.IsInf(Ratio(a, Summary{}), 1) {
		t.Fatal("Ratio with zero denominator not +Inf")
	}
}

// Property: summary invariants hold for arbitrary sample sets.
func TestSummaryInvariants(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, v := range raw {
			samples[i] = time.Duration(v)
		}
		s := Summarize(samples)
		return s.N == len(samples) &&
			s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.P95 <= s.P99 && s.P99 <= s.Max &&
			s.OutlierFrac >= 0 && s.OutlierFrac <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]time.Duration{time.Millisecond, 2 * time.Millisecond})
	if got := s.String(); got == "" {
		t.Fatal("empty String")
	}
}

func BenchmarkSummarize(b *testing.B) {
	samples := make([]time.Duration, 500)
	for i := range samples {
		samples[i] = time.Duration(i*i%977) * time.Microsecond
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Summarize(samples)
	}
}

func TestRecorderMerge(t *testing.T) {
	a := NewRecorder(4)
	b := NewRecorder(4)
	for i := 1; i <= 3; i++ {
		a.Add(time.Duration(i) * time.Millisecond)
		b.Add(time.Duration(10+i) * time.Millisecond)
	}
	a.Merge(b)
	if a.N() != 6 {
		t.Fatalf("N = %d, want 6", a.N())
	}
	if b.N() != 3 {
		t.Fatalf("merge mutated source: N = %d", b.N())
	}
	s := a.Summarize()
	if s.Min != time.Millisecond || s.Max != 13*time.Millisecond {
		t.Fatalf("merged summary = %+v", s)
	}
	// Merge must preserve insertion order (scale experiments resample
	// Samples() positionally).
	want := []time.Duration{1, 2, 3, 11, 12, 13}
	for i, d := range a.Samples() {
		if d != want[i]*time.Millisecond {
			t.Fatalf("sample %d = %v, want %v", i, d, want[i]*time.Millisecond)
		}
	}
}

func TestRecorderSummaryCacheInvalidation(t *testing.T) {
	r := NewRecorder(8)
	r.Add(2 * time.Millisecond)
	if s := r.Summarize(); s.Median != 2*time.Millisecond {
		t.Fatalf("median = %v", s.Median)
	}
	// Adding after a summary must invalidate the cached sort.
	r.Add(4 * time.Millisecond)
	if s := r.Summarize(); s.Max != 4*time.Millisecond || s.N != 2 {
		t.Fatalf("post-add summary = %+v", s)
	}
	r.Reset()
	if s := r.Summarize(); s.N != 0 {
		t.Fatalf("post-reset summary = %+v", s)
	}
}

func TestRecorderConcurrentAddMerge(t *testing.T) {
	r := NewRecorder(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := NewRecorder(32)
			for i := 0; i < 32; i++ {
				local.Add(time.Duration(w*32+i) * time.Microsecond)
			}
			r.Merge(local)
		}(w)
	}
	wg.Wait()
	if r.N() != 256 {
		t.Fatalf("N = %d, want 256", r.N())
	}
	if s := r.Summarize(); s.N != 256 || s.Max != 255*time.Microsecond {
		t.Fatalf("summary = %+v", s)
	}
}
