package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// PoolOwner enforces the single-owner contract every pooled object in
// the tree rides on: a value checked out of a pool (an sbi.MarshalBody
// body, a hashpool SHA-256/HMAC state) is owned by exactly one party at
// a time, must be released exactly once on every path, and must not be
// touched after release. Loaned values — the BinHandler request view
// and the HandlerFunc request body, which belong to the transport for
// the duration of the call — must not escape via return, store or
// goroutine. The PR 5 pooled-decoder cross-request corruption and the
// PR 7 pooled-body double-release interaction were both instances of
// exactly these bug classes, and both were only visible across function
// boundaries; the analyzer therefore runs interprocedurally, publishing
// a per-function ownership summary (does it release its parameter? does
// it return a pooled value? does its parameter escape?) through the
// call-graph summary store and consuming callee summaries at each call
// site.
//
// The abstract domain is deliberately conservative: a tracked value
// passed to a callee whose summary cannot prove "borrows only" or
// "releases" stops being tracked (escapes) rather than risking a false
// positive, and err-paired acquisitions (body, err := MarshalBody(v))
// are not considered owned on the err != nil branch.
var PoolOwner = &Analyzer{
	Name: "poolowner",
	Doc:  "pooled objects (sbi bodies, hashpool states) have a single owner: released exactly once, never used after release; loaned views must not escape",
	Run:  runPoolOwner,
}

// ownerAcquire describes a pool checkout entry point.
type ownerAcquire struct {
	kind string // human-readable resource kind
	// result is the index of the pooled result; errResult the index of
	// the paired error result (-1 when the acquisition cannot fail).
	result, errResult int
	release           string // the matching release call, for messages
}

// ownerRelease describes a pool return entry point.
type ownerRelease struct {
	kind string
	arg  int    // argument index holding the released object
	name string // qualified name, for messages
}

// ownerLoan marks a registration function whose function-typed argument
// receives a loaned parameter: the handler passed at argIdx has its
// paramIdx-th parameter on loan from the transport.
type ownerLoan struct {
	argIdx, paramIdx int
	what             string
}

var ownerAcquires = map[[2]string]ownerAcquire{
	{"shield5g/internal/sbi", "MarshalBody"}:           {kind: "SBI body", result: 0, errResult: 1, release: "sbi.ReleaseBody"},
	{"shield5g/internal/sbi", "MarshalBinary"}:         {kind: "SBI body", result: 0, errResult: 1, release: "sbi.ReleaseBody"},
	{"shield5g/internal/sbi", "MarshalBodyLike"}:       {kind: "SBI body", result: 0, errResult: 1, release: "sbi.ReleaseBody"},
	{"shield5g/internal/crypto/hashpool", "GetSHA256"}: {kind: "pooled SHA-256 state", result: 0, errResult: -1, release: "hashpool.PutSHA256"},
	{"shield5g/internal/crypto/hashpool", "GetHMAC"}:   {kind: "pooled HMAC state", result: 0, errResult: -1, release: "hashpool.PutHMAC"},
}

var ownerReleases = map[[2]string]ownerRelease{
	{"shield5g/internal/sbi", "ReleaseBody"}:           {kind: "SBI body", arg: 0, name: "sbi.ReleaseBody"},
	{"shield5g/internal/crypto/hashpool", "PutSHA256"}: {kind: "pooled SHA-256 state", arg: 0, name: "hashpool.PutSHA256"},
	{"shield5g/internal/crypto/hashpool", "PutHMAC"}:   {kind: "pooled HMAC state", arg: 0, name: "hashpool.PutHMAC"},
}

var ownerLoans = map[[2]string]ownerLoan{
	// sbi.BinHandler(fn): fn's req parameter is a pooled struct whose
	// byte-slice fields are zero-copy views into the transport buffer.
	{"shield5g/internal/sbi", "BinHandler"}: {argIdx: 0, paramIdx: 1, what: "BinHandler request view"},
	// Server.Handle/HandleDual(path, h): h's body parameter is loaned
	// for the duration of the call (HandlerFunc contract).
	{"shield5g/internal/sbi", "Handle"}:     {argIdx: 1, paramIdx: 1, what: "handler request body"},
	{"shield5g/internal/sbi", "HandleDual"}: {argIdx: 1, paramIdx: 1, what: "handler request body"},
}

// ownerSummary is the per-function fact poolowner publishes through the
// program's summary store: how the function treats each parameter and
// which results carry a freshly acquired pooled value.
type ownerSummary struct {
	params  []ownerParamFact
	results []string // pooled kind per result index, "" for none
}

// ownerParamFact classifies one parameter's treatment.
type ownerParamFact struct {
	// mustRelease names the pool kind the parameter is released to on
	// every path; "" when not. A caller passing an owned object to such
	// a parameter transfers ownership (the callee releases for it).
	mustRelease string
	// mayRelease names the kind released on at least one path.
	mayRelease string
	// escapes reports the parameter reaching a store, a return, or a
	// callee the analysis cannot prove borrows it.
	escapes bool
}

type ownerFinding struct {
	pkg *Package
	pos token.Pos
	msg string
}

type poolownerResult struct{ findings []ownerFinding }

func runPoolOwner(pass *Pass) error {
	res := pass.Prog.Memo("poolowner", func() any {
		return computePoolOwner(pass.Prog)
	}).(*poolownerResult)
	for _, f := range res.findings {
		if f.pkg == pass.Pkg {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
	return nil
}

func computePoolOwner(prog *Program) *poolownerResult {
	cg := prog.CallGraph()
	g := &poolOwnerGlobal{
		cg:     cg,
		facts:  prog.Facts("poolowner"),
		loaned: collectLoanedParams(cg),
		dedupe: make(map[string]bool),
	}
	// Summary pass, callee-first, so caller interpretation can consume
	// callee facts. Recursive cycles see no fact yet for the back edge
	// and default to the conservative "escapes" treatment.
	for _, n := range cg.PostOrder() {
		in := newOwnerInterp(g, n, false)
		g.facts.Set(n, in.run())
	}
	// Reporting pass over the same summaries.
	for _, n := range cg.Functions() {
		newOwnerInterp(g, n, true).run()
	}
	return &poolownerResult{findings: g.findings}
}

type poolOwnerGlobal struct {
	cg       *CallGraph
	facts    *FactStore
	loaned   map[*types.Var]string // loaned param -> description
	findings []ownerFinding
	dedupe   map[string]bool
}

// collectLoanedParams resolves every registration call site
// (BinHandler, Handle, HandleDual) to the handler function it installs
// and marks that handler's loaned parameter.
func collectLoanedParams(cg *CallGraph) map[*types.Var]string {
	out := make(map[*types.Var]string)
	for _, n := range cg.Functions() {
		info := n.Pkg.Info
		for _, site := range n.Sites {
			if site.Call == nil || site.StaticCallee == nil {
				continue
			}
			fn := site.StaticCallee
			if fn.Pkg() == nil {
				continue
			}
			loan, ok := ownerLoans[[2]string{fn.Pkg().Path(), fn.Name()}]
			if !ok || loan.argIdx >= len(site.Call.Args) {
				continue
			}
			handler := resolveFuncValue(cg, info, site.Call.Args[loan.argIdx])
			if handler == nil {
				continue
			}
			params := handler.ParamVars()
			if loan.paramIdx < len(params) {
				out[params[loan.paramIdx]] = loan.what
			}
		}
	}
	return out
}

// resolveFuncValue maps a function-valued argument expression to the
// node of its body: a function literal, a named function, or a method
// value.
func resolveFuncValue(cg *CallGraph, info *types.Info, e ast.Expr) *CallNode {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return cg.NodeAt(e)
	case *ast.Ident:
		if fn, ok := info.Uses[e].(*types.Func); ok {
			return cg.NodeOf(fn.Origin())
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
			return cg.NodeOf(fn.Origin())
		}
	case *ast.CallExpr:
		// Unwrap one conversion layer: HandlerFunc(f) passes f.
		if len(e.Args) == 1 {
			if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
				return resolveFuncValue(cg, info, e.Args[0])
			}
		}
	}
	return nil
}

// ownerMeta is the per-resource immutable metadata; the mutable flags
// live in the per-path environment so branches diverge correctly.
type ownerMeta struct {
	kind         string // pool kind, "" for parameters of unknown kind
	release      string // matching release call, for messages
	what         string // display name (the variable it was bound to)
	acquiredHere bool
	loanedWhat   string     // non-empty for loaned parameters
	param        *types.Var // non-nil for parameter resources
	acqPos       token.Pos
	errVar       *types.Var // paired error of the acquisition, if any
}

type ownerFlags struct {
	owned, released, escaped, deferRel bool
	relPos                             token.Pos
}

// definitelyFreed reports whether every path reaching this point has
// arranged the object's return to the pool.
func (f ownerFlags) definitelyFreed() bool {
	return f.deferRel || (f.released && !f.owned)
}

type ownerEnv struct {
	vars       map[*types.Var]int
	flags      map[int]ownerFlags
	terminated bool
}

func (e *ownerEnv) clone() *ownerEnv {
	c := &ownerEnv{
		vars:  make(map[*types.Var]int, len(e.vars)),
		flags: make(map[int]ownerFlags, len(e.flags)),
	}
	for k, v := range e.vars {
		c.vars[k] = v
	}
	for k, v := range e.flags {
		c.flags[k] = v
	}
	return c
}

// join folds o's may-state into e. Resources known to only one side are
// taken as-is; deferRel joins with AND (a release deferred on only some
// paths cannot be counted on at a common exit).
func (e *ownerEnv) join(o *ownerEnv) {
	if o == nil || o.terminated {
		return
	}
	if e.terminated {
		e.vars, e.flags, e.terminated = o.vars, o.flags, false
		return
	}
	for id, of := range o.flags {
		f, ok := e.flags[id]
		if !ok {
			e.flags[id] = of
			continue
		}
		f.owned = f.owned || of.owned
		f.escaped = f.escaped || of.escaped
		if of.released && !f.released {
			f.released = true
			f.relPos = of.relPos
		}
		f.deferRel = f.deferRel && of.deferRel
		e.flags[id] = f
	}
	for v, id := range o.vars {
		eid, ok := e.vars[v]
		if !ok {
			e.vars[v] = id
			continue
		}
		if eid == id {
			continue
		}
		// The two paths bound v to different resources (a branch
		// re-acquired into the variable, as the SBI client's downgrade
		// retry does). A later use of v is ambiguous between them, so
		// tracking of both stops here rather than misattribute a
		// release.
		for _, amb := range [2]int{eid, id} {
			f := e.flags[amb]
			f.escaped = true
			f.owned = false
			e.flags[amb] = f
		}
		delete(e.vars, v)
	}
}

type ownerInterp struct {
	g      *poolOwnerGlobal
	node   *CallNode
	info   *types.Info
	report bool
	mute   int // >0 while replaying loop bodies for the fixpoint pass

	metas []*ownerMeta
	// escapedParams collects parameters that escaped on any path.
	escapedParams map[*types.Var]bool
	// exits accumulates the per-exit parameter flags and returned
	// resources the summary is derived from.
	exits []ownerExit
}

type ownerExit struct {
	flags   map[int]ownerFlags
	results []int // resource id per result index, -1 for none
}

func newOwnerInterp(g *poolOwnerGlobal, n *CallNode, report bool) *ownerInterp {
	return &ownerInterp{
		g:             g,
		node:          n,
		info:          n.Pkg.Info,
		report:        report,
		escapedParams: make(map[*types.Var]bool),
	}
}

func (in *ownerInterp) run() *ownerSummary {
	env := &ownerEnv{vars: make(map[*types.Var]int), flags: make(map[int]ownerFlags)}
	params := in.node.ParamVars()
	for _, p := range params {
		id := len(in.metas)
		meta := &ownerMeta{param: p, what: p.Name(), acqPos: p.Pos()}
		if what, ok := in.g.loaned[p]; ok {
			meta.loanedWhat = what
		}
		in.metas = append(in.metas, meta)
		env.vars[p] = id
		env.flags[id] = ownerFlags{owned: true}
	}
	in.execBlock(env, in.node.Body)
	if !env.terminated {
		in.recordExit(env, nil, in.node.Body.Rbrace)
	}
	return in.summarize(params)
}

func (in *ownerInterp) summarize(params []*types.Var) *ownerSummary {
	sum := &ownerSummary{params: make([]ownerParamFact, len(params))}
	for i, p := range params {
		fact := &sum.params[i]
		if in.escapedParams[p] {
			fact.escapes = true
		}
		must := len(in.exits) > 0
		for _, ex := range in.exits {
			// Parameter resources hold ids 0..len(params)-1, assigned in
			// declaration order in run().
			f, ok := ex.flags[i]
			if !ok {
				must = false
				continue
			}
			if f.released || f.deferRel {
				fact.mayRelease = in.metas[i].kind
				if fact.mayRelease == "" {
					fact.mayRelease = "pooled object"
				}
			}
			if !f.definitelyFreed() {
				must = false
			}
		}
		if must && fact.mayRelease != "" && !fact.escapes {
			fact.mustRelease = fact.mayRelease
		}
	}
	// Results: a result index fed by an acquired-here resource on some
	// return path is reported as pooled.
	var nresults int
	for _, ex := range in.exits {
		if len(ex.results) > nresults {
			nresults = len(ex.results)
		}
	}
	sum.results = make([]string, nresults)
	for _, ex := range in.exits {
		for i, id := range ex.results {
			if id >= 0 && in.metas[id].acquiredHere && sum.results[i] == "" {
				sum.results[i] = in.metas[id].kind
			}
		}
	}
	return sum
}

// reportf records one deduplicated finding when reporting is enabled.
func (in *ownerInterp) reportf(pos token.Pos, format string, args ...any) {
	if !in.report || in.mute > 0 {
		return
	}
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d:%s", pos, msg)
	if in.g.dedupe[key] {
		return
	}
	in.g.dedupe[key] = true
	in.g.findings = append(in.g.findings, ownerFinding{pkg: in.node.Pkg, pos: pos, msg: msg})
}

// short renders a position as base.go:line for messages.
func (in *ownerInterp) short(pos token.Pos) string {
	p := in.node.Pkg.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// display names a resource in diagnostics.
func (in *ownerInterp) display(id int) string {
	m := in.metas[id]
	kind := m.kind
	if kind == "" {
		kind = "pooled object"
	}
	return fmt.Sprintf("%s %q", kind, m.what)
}

func (in *ownerInterp) releaseName(id int) string {
	if r := in.metas[id].release; r != "" {
		return r
	}
	return "its release function"
}

// localVar resolves e to a trackable function-local variable (not a
// field, not package-level state), or nil.
func (in *ownerInterp) localVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := in.info.Uses[id].(*types.Var)
	if !ok {
		if v, ok = in.info.Defs[id].(*types.Var); !ok {
			return nil
		}
	}
	if v.IsField() || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
		return nil
	}
	return v
}

// trackedRes resolves e to a tracked resource id, or -1.
func (in *ownerInterp) trackedRes(env *ownerEnv, e ast.Expr) int {
	v := in.localVar(e)
	if v == nil {
		return -1
	}
	if id, ok := env.vars[v]; ok {
		return id
	}
	return -1
}

// escape drops a resource from ownership tracking, recording parameter
// escapes for the summary.
func (in *ownerInterp) escape(env *ownerEnv, id int) {
	f := env.flags[id]
	f.escaped = true
	f.owned = false
	env.flags[id] = f
	if p := in.metas[id].param; p != nil {
		in.escapedParams[p] = true
	}
}

// use checks a read of a tracked resource for use-after-release.
func (in *ownerInterp) use(env *ownerEnv, id int, pos token.Pos) {
	f := env.flags[id]
	if f.released && !f.escaped {
		in.reportf(pos, "use after release: %s was released at %s and is no longer owned; the pool may already have handed its backing to another request",
			in.display(id), in.short(f.relPos))
	}
}

// scanUses walks an expression reporting use-after-release for every
// tracked variable read. Reads inside nested function literals,
// composite literals, and address-of expressions are escapes (the value
// outlives this expression's evaluation).
func (in *ownerInterp) scanUses(env *ownerEnv, e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			// Nested call: interpret it properly so tracked arguments
			// are judged by the callee's summary (escape when unknown)
			// instead of being treated as plain reads.
			in.execCall(env, x, nil, false)
			return false
		case *ast.FuncLit:
			in.escapeCaptured(env, x, false)
			return false
		case *ast.CompositeLit:
			in.escapeWithin(env, x)
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				in.escapeWithin(env, x)
				return false
			}
		case *ast.Ident:
			if res := in.trackedRes(env, x); res >= 0 {
				in.use(env, res, x.Pos())
			}
		}
		return true
	})
}

// escapeWithin escapes every tracked variable referenced under n.
func (in *ownerInterp) escapeWithin(env *ownerEnv, n ast.Node) {
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok {
			if res := in.trackedRes(env, id); res >= 0 {
				in.use(env, res, id.Pos())
				in.escape(env, res)
			}
		}
		return true
	})
}

// escapeCaptured escapes every tracked variable captured by a function
// literal. When onGoroutine is set the literal runs concurrently and
// capturing a loaned value is reported.
func (in *ownerInterp) escapeCaptured(env *ownerEnv, lit *ast.FuncLit, onGoroutine bool) {
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		res := in.trackedRes(env, id)
		if res < 0 {
			return true
		}
		if onGoroutine && in.metas[res].loanedWhat != "" {
			in.reportf(id.Pos(), "loaned %s %q escapes into a goroutine: the view is only valid until the handler returns, after which the pooled backing is reused",
				in.metas[res].loanedWhat, in.metas[res].what)
		}
		in.use(env, res, id.Pos())
		in.escape(env, res)
		return true
	})
}

func (in *ownerInterp) execBlock(env *ownerEnv, b *ast.BlockStmt) {
	for _, s := range b.List {
		if env.terminated {
			return
		}
		in.execStmt(env, s)
	}
}

func (in *ownerInterp) execStmt(env *ownerEnv, s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		in.execBlock(env, s)
	case *ast.AssignStmt:
		in.execAssign(env, s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, n := range vs.Names {
					lhs[i] = n
				}
				in.execAssign(env, &ast.AssignStmt{Lhs: lhs, Tok: token.DEFINE, Rhs: vs.Values})
			}
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			in.execCall(env, call, nil, true)
		} else {
			in.scanUses(env, s.X)
		}
	case *ast.DeferStmt:
		in.execDefer(env, s)
	case *ast.GoStmt:
		in.execGo(env, s)
	case *ast.SendStmt:
		in.scanUses(env, s.Chan)
		if res := in.trackedRes(env, s.Value); res >= 0 {
			in.use(env, res, s.Value.Pos())
			if in.metas[res].loanedWhat != "" {
				in.reportf(s.Value.Pos(), "loaned %s %q escapes via channel send: the view is only valid until the handler returns",
					in.metas[res].loanedWhat, in.metas[res].what)
			}
			in.escape(env, res)
		} else {
			in.scanUses(env, s.Value)
		}
	case *ast.ReturnStmt:
		in.execReturn(env, s)
	case *ast.IfStmt:
		in.execIf(env, s)
	case *ast.ForStmt:
		if s.Init != nil {
			in.execStmt(env, s.Init)
		}
		in.scanUses(env, s.Cond)
		in.execLoopBody(env, s.Body, s.Post)
	case *ast.RangeStmt:
		if res := in.trackedRes(env, s.X); res >= 0 {
			in.use(env, res, s.X.Pos())
		} else {
			in.scanUses(env, s.X)
		}
		in.unbind(env, s.Key)
		in.unbind(env, s.Value)
		in.execLoopBody(env, s.Body, nil)
	case *ast.SwitchStmt:
		if s.Init != nil {
			in.execStmt(env, s.Init)
		}
		in.scanUses(env, s.Tag)
		in.execClauses(env, s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			in.execStmt(env, s.Init)
		}
		if s.Assign != nil {
			in.execStmt(env, s.Assign)
		}
		in.execClauses(env, s.Body)
	case *ast.SelectStmt:
		in.execClauses(env, s.Body)
	case *ast.LabeledStmt:
		in.execStmt(env, s.Stmt)
	case *ast.BranchStmt:
		// break/continue/goto: treat the remainder of this path as
		// unreachable (the loop join is already approximate).
		env.terminated = true
	case *ast.IncDecStmt:
		in.scanUses(env, s.X)
	case *ast.EmptyStmt:
	default:
		// Unknown statement shapes: check uses conservatively.
		ast.Inspect(s, func(x ast.Node) bool {
			if e, ok := x.(ast.Expr); ok {
				in.scanUses(env, e)
				return false
			}
			return true
		})
	}
}

// execLoopBody runs a loop body to a two-pass fixpoint: a muted pass
// computes the state after one iteration, the joined state then replays
// with reporting on, so second-iteration bugs (release in iteration
// one, use in iteration two) are caught without duplicate findings.
func (in *ownerInterp) execLoopBody(env *ownerEnv, body *ast.BlockStmt, post ast.Stmt) {
	probe := env.clone()
	in.mute++
	in.execBlock(probe, body)
	if post != nil && !probe.terminated {
		in.execStmt(probe, post)
	}
	in.mute--
	env.join(probe)
	iter := env.clone()
	in.execBlock(iter, body)
	if post != nil && !iter.terminated {
		in.execStmt(iter, post)
	}
	env.join(iter)
}

// execClauses interprets each case/comm clause of a switch or select
// against a copy of the incoming state and joins the surviving paths
// (plus the fall-through no-match path, which is conservative when a
// default clause exists: extra joined paths only weaken may-state).
func (in *ownerInterp) execClauses(env *ownerEnv, body *ast.BlockStmt) {
	entry := env.clone()
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			for _, e := range cs.List {
				in.scanUses(entry, e)
			}
			stmts = cs.Body
		case *ast.CommClause:
			if cs.Comm != nil {
				in.execStmt(entry, cs.Comm)
			}
			stmts = cs.Body
		default:
			continue
		}
		clause := entry.clone()
		for _, s := range stmts {
			if clause.terminated {
				break
			}
			in.execStmt(clause, s)
		}
		env.join(clause)
	}
}

func (in *ownerInterp) execIf(env *ownerEnv, s *ast.IfStmt) {
	if s.Init != nil {
		in.execStmt(env, s.Init)
	}
	in.scanUses(env, s.Cond)
	thenEnv := env.clone()
	in.refine(thenEnv, s.Cond, true)
	in.execBlock(thenEnv, s.Body)

	elseEnv := env.clone()
	in.refine(elseEnv, s.Cond, false)
	if s.Else != nil {
		in.execStmt(elseEnv, s.Else)
	}
	*env = *elseEnv
	env.join(thenEnv)
}

// refine narrows err-paired acquisitions on error branches: inside
// "if err != nil", a resource acquired alongside err is nil and not
// owned, so early error returns do not demand a release.
func (in *ownerInterp) refine(env *ownerEnv, cond ast.Expr, truth bool) {
	switch c := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			in.refine(env, c.X, !truth)
		}
	case *ast.BinaryExpr:
		switch {
		case c.Op == token.LAND && truth:
			in.refine(env, c.X, true)
			in.refine(env, c.Y, true)
		case c.Op == token.LOR && !truth:
			in.refine(env, c.X, false)
			in.refine(env, c.Y, false)
		case c.Op == token.NEQ || c.Op == token.EQL:
			errSide := c.X
			if isNilIdent(in.info, c.X) {
				errSide = c.Y
			} else if !isNilIdent(in.info, c.Y) {
				return
			}
			v := in.localVar(errSide)
			if v == nil || !isErrorType(v.Type()) {
				return
			}
			// The error branch is taken when (err != nil) == truth.
			if (c.Op == token.NEQ) != truth {
				return
			}
			for id, meta := range in.metas {
				if meta.errVar == v {
					f := env.flags[id]
					f.owned = false
					f.escaped = true // the value is nil here; stop tracking
					env.flags[id] = f
				}
			}
		}
	}
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "error" && n.Obj().Pkg() == nil
}

func (in *ownerInterp) unbind(env *ownerEnv, e ast.Expr) {
	if e == nil {
		return
	}
	if v := in.localVar(e); v != nil {
		delete(env.vars, v)
	}
}

func (in *ownerInterp) execReturn(env *ownerEnv, s *ast.ReturnStmt) {
	// A forwarded acquisition — return sbi.MarshalBody(v) — transfers
	// the fresh resource straight to the caller; record it in the exit
	// so wrappers inherit the pooled-result summary.
	if len(s.Results) == 1 {
		if call, ok := ast.Unparen(s.Results[0]).(*ast.CallExpr); ok {
			fn := staticCallee(in.info, call)
			if acq, ok := in.acquireSpecFor(fn); ok {
				for _, a := range call.Args {
					in.handleArg(env, nil, -1, a)
				}
				id := len(in.metas)
				in.metas = append(in.metas, &ownerMeta{
					kind: acq.kind, release: acq.release, what: "result",
					acquiredHere: true, acqPos: call.Pos(),
				})
				results := make([]int, acq.result+1)
				for i := range results {
					results[i] = -1
				}
				results[acq.result] = id
				in.recordExit(env, results, s.Pos())
				env.terminated = true
				return
			}
		}
	}
	results := make([]int, len(s.Results))
	for i, r := range s.Results {
		results[i] = -1
		if res := in.trackedRes(env, r); res >= 0 {
			in.use(env, res, r.Pos())
			if in.metas[res].loanedWhat != "" {
				in.reportf(r.Pos(), "loaned %s %q must not be returned: the pooled backing is reclaimed and reused as soon as the handler returns",
					in.metas[res].loanedWhat, in.metas[res].what)
			}
			results[i] = res
			// Ownership transfers to the caller.
			in.escape(env, res)
		} else if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
			in.execCall(env, call, nil, false)
		} else {
			in.scanUses(env, r)
		}
	}
	in.recordExit(env, results, s.Pos())
	env.terminated = true
}

// recordExit checks for leaks at a function exit and stores the exit
// state for the summary.
func (in *ownerInterp) recordExit(env *ownerEnv, results []int, pos token.Pos) {
	for id, f := range env.flags {
		meta := in.metas[id]
		if !meta.acquiredHere || !f.owned || f.escaped || f.deferRel {
			continue
		}
		if f.released {
			in.reportf(pos, "missing release: %s acquired at %s is released on some paths but not on this one; call %s on every path (including early returns)",
				in.display(id), in.short(meta.acqPos), in.releaseName(id))
		} else {
			in.reportf(pos, "missing release: %s acquired at %s is not released on this return path; call %s before returning (early-return and error paths included)",
				in.display(id), in.short(meta.acqPos), in.releaseName(id))
		}
	}
	flags := make(map[int]ownerFlags, len(env.flags))
	for id, f := range env.flags {
		flags[id] = f
	}
	in.exits = append(in.exits, ownerExit{flags: flags, results: results})
}

func (in *ownerInterp) execDefer(env *ownerEnv, s *ast.DeferStmt) {
	call := s.Call
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// defer func() { ... }(): release calls inside the literal run
		// at function exit; credit them as deferred releases. Other
		// captured uses also run at exit and are not escapes.
		ast.Inspect(lit.Body, func(x ast.Node) bool {
			c, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if rel, arg := in.releaseSpec(c); rel != nil && arg < len(c.Args) {
				if res := in.trackedRes(env, c.Args[arg]); res >= 0 {
					in.deferRelease(env, res, c.Pos())
				}
			}
			return true
		})
		return
	}
	if rel, arg := in.releaseSpec(call); rel != nil && arg < len(call.Args) {
		if res := in.trackedRes(env, call.Args[arg]); res >= 0 {
			in.deferRelease(env, res, call.Pos())
			return
		}
	}
	// Any other deferred call: arguments are evaluated now but the call
	// runs at exit; treat tracked arguments conservatively as escapes.
	for _, a := range call.Args {
		if res := in.trackedRes(env, a); res >= 0 {
			in.escape(env, res)
		} else {
			in.scanUses(env, a)
		}
	}
}

func (in *ownerInterp) deferRelease(env *ownerEnv, id int, pos token.Pos) {
	f := env.flags[id]
	if in.metas[id].loanedWhat != "" {
		in.reportf(pos, "loaned %s %q must not be released by the handler: the transport owns the loan and reclaims it after delivery",
			in.metas[id].loanedWhat, in.metas[id].what)
		return
	}
	if f.deferRel || f.released {
		in.reportf(pos, "double release: %s is already released (at %s) and this deferred release would return it to the pool a second time",
			in.display(id), in.short(f.relPos))
		return
	}
	f.deferRel = true
	f.relPos = pos
	env.flags[id] = f
}

func (in *ownerInterp) execGo(env *ownerEnv, s *ast.GoStmt) {
	call := s.Call
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		in.escapeCaptured(env, lit, true)
	}
	for _, a := range call.Args {
		if res := in.trackedRes(env, a); res >= 0 {
			in.use(env, res, a.Pos())
			if in.metas[res].loanedWhat != "" {
				in.reportf(a.Pos(), "loaned %s %q escapes into a goroutine: the view is only valid until the handler returns, after which the pooled backing is reused",
					in.metas[res].loanedWhat, in.metas[res].what)
			}
			in.escape(env, res)
		} else {
			in.scanUses(env, a)
		}
	}
}

// releaseSpec matches a call against the release table, returning the
// spec and argument index, or nil.
func (in *ownerInterp) releaseSpec(call *ast.CallExpr) (*ownerRelease, int) {
	fn := staticCallee(in.info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil, -1
	}
	if rel, ok := ownerReleases[[2]string{fn.Pkg().Path(), fn.Name()}]; ok {
		return &rel, rel.arg
	}
	return nil, -1
}

// acquireSpecFor matches a function against the acquisition table or a
// callee summary with pooled results (a MarshalBody wrapper).
func (in *ownerInterp) acquireSpecFor(fn *types.Func) (ownerAcquire, bool) {
	if fn == nil || fn.Pkg() == nil {
		return ownerAcquire{}, false
	}
	if acq, ok := ownerAcquires[[2]string{fn.Pkg().Path(), fn.Name()}]; ok {
		return acq, true
	}
	node := in.g.cg.NodeOf(fn.Origin())
	if node == nil {
		return ownerAcquire{}, false
	}
	fact, ok := in.g.facts.Get(node)
	if !ok {
		return ownerAcquire{}, false
	}
	sum := fact.(*ownerSummary)
	for i, kind := range sum.results {
		if kind == "" {
			continue
		}
		acq := ownerAcquire{kind: kind, result: i, errResult: -1, release: releaseNameForKind(kind)}
		sig := fn.Type().(*types.Signature)
		for j := 0; j < sig.Results().Len(); j++ {
			if isErrorType(sig.Results().At(j).Type()) {
				acq.errResult = j
				break
			}
		}
		return acq, true
	}
	return ownerAcquire{}, false
}

func releaseNameForKind(kind string) string {
	for _, rel := range ownerReleases {
		if rel.kind == kind {
			return rel.name
		}
	}
	return "its release function"
}

// execCall interprets one call: a release, an acquisition, or a generic
// call whose tracked arguments are judged by the callee's summary.
// resultExprs, when non-nil, are the assignment targets the call's
// results bind to. discard marks statement context, where an
// unbound acquisition really is dropped on the floor (a nested call's
// result flows onward and must not be reported).
func (in *ownerInterp) execCall(env *ownerEnv, call *ast.CallExpr, resultExprs []ast.Expr, discard bool) {
	// Conversions and builtins first: neither retains its operand
	// beyond the expression (string(b) copies; len/cap/copy/append
	// read). Conversions to non-basic types may alias the backing, so
	// only string conversions stay borrow-only.
	if tv, ok := in.info.Types[call.Fun]; ok && tv.IsType() {
		borrow := false
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
			borrow = true
		}
		for _, a := range call.Args {
			if res := in.trackedRes(env, a); res >= 0 {
				in.use(env, res, a.Pos())
				if !borrow {
					in.escape(env, res)
				}
			} else {
				in.scanUses(env, a)
			}
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := in.info.Uses[id].(*types.Builtin); isBuiltin {
			for _, a := range call.Args {
				if res := in.trackedRes(env, a); res >= 0 {
					in.use(env, res, a.Pos())
				} else {
					in.scanUses(env, a)
				}
			}
			return
		}
	}

	fn := staticCallee(in.info, call)

	// Release call.
	if rel, argIdx := in.releaseSpec(call); rel != nil {
		for i, a := range call.Args {
			if i == argIdx {
				if res := in.trackedRes(env, a); res >= 0 {
					in.release(env, res, call.Pos(), rel)
					continue
				}
			}
			in.scanUses(env, a)
		}
		return
	}

	// Acquisition call.
	if acq, ok := in.acquireSpecFor(fn); ok {
		for _, a := range call.Args {
			in.handleArg(env, nil, -1, a)
		}
		var target ast.Expr
		if acq.result < len(resultExprs) {
			target = resultExprs[acq.result]
		}
		v := in.localVar(target)
		switch {
		case v != nil:
			var errVar *types.Var
			if acq.errResult >= 0 && acq.errResult < len(resultExprs) {
				errVar = in.localVar(resultExprs[acq.errResult])
			}
			id := len(in.metas)
			in.metas = append(in.metas, &ownerMeta{
				kind: acq.kind, release: acq.release, what: v.Name(),
				acquiredHere: true, acqPos: call.Pos(), errVar: errVar,
			})
			env.vars[v] = id
			env.flags[id] = ownerFlags{owned: true}
		case discard && (target == nil || isBlank(target)):
			in.reportf(call.Pos(), "leaked acquisition: the %s returned by %s is discarded; bind it and release it with %s when done",
				acq.kind, fn.Name(), acq.release)
		default:
			// Bound into a field/map/global, or flowing onward inside a
			// larger expression: out of scope for local tracking.
		}
		return
	}

	// Generic call. A tracked method receiver is a borrow.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if res := in.trackedRes(env, sel.X); res >= 0 {
			in.use(env, res, sel.X.Pos())
		} else {
			in.scanUses(env, sel.X)
		}
	}
	for i, a := range call.Args {
		in.handleArg(env, fn, i, a)
	}
}

// handleArg judges one call argument against the callee's summary.
// argIdx is -1 when the position cannot transfer ownership.
func (in *ownerInterp) handleArg(env *ownerEnv, fn *types.Func, argIdx int, a ast.Expr) {
	res := in.trackedRes(env, a)
	if res < 0 {
		in.scanUses(env, a)
		return
	}
	in.use(env, res, a.Pos())
	if argIdx >= 0 && fn != nil {
		if node := in.g.cg.NodeOf(fn.Origin()); node != nil {
			if fact, ok := in.g.facts.Get(node); ok {
				sum := fact.(*ownerSummary)
				pi := paramIndexFor(fn, argIdx)
				if pi >= 0 && pi < len(sum.params) {
					p := sum.params[pi]
					switch {
					case p.mustRelease != "":
						// Ownership transfers: the callee releases on
						// every path.
						rel := ownerRelease{kind: p.mustRelease, name: fn.Name()}
						in.release(env, res, a.Pos(), &rel)
					case p.escapes || p.mayRelease != "":
						in.escape(env, res)
					default:
						// Callee provably borrows: still owned here.
					}
					return
				}
			}
		}
	}
	// Unknown callee (stdlib, indirect call, recursion back edge):
	// conservative escape.
	in.escape(env, res)
}

// paramIndexFor maps a call argument index to the callee's declared
// parameter index (receivers are not in the argument list, so identity
// holds for methods too; variadic overflow maps to the last parameter).
func paramIndexFor(fn *types.Func, argIdx int) int {
	sig := fn.Type().(*types.Signature)
	if argIdx >= sig.Params().Len() {
		if sig.Variadic() {
			return sig.Params().Len() - 1
		}
		return -1
	}
	return argIdx
}

func (in *ownerInterp) release(env *ownerEnv, id int, pos token.Pos, rel *ownerRelease) {
	f := env.flags[id]
	meta := in.metas[id]
	if meta.loanedWhat != "" {
		in.reportf(pos, "loaned %s %q must not be released by the handler: the transport owns the loan and reclaims it after delivery",
			meta.loanedWhat, meta.what)
		return
	}
	if f.escaped {
		// Provenance unknown by now; record silently.
		f.released = true
		f.relPos = pos
		env.flags[id] = f
		return
	}
	if f.released || f.deferRel {
		in.reportf(pos, "double release: %s was already released at %s; releasing it again hands the same backing to two owners",
			in.display(id), in.short(f.relPos))
		return
	}
	f.released = true
	f.owned = false
	f.relPos = pos
	env.flags[id] = f
}

// execAssign interprets one assignment or short-declaration statement.
func (in *ownerInterp) execAssign(env *ownerEnv, s *ast.AssignStmt) {
	// Multi-value single-call RHS: results bind positionally.
	if len(s.Rhs) == 1 && len(s.Lhs) != len(s.Rhs) {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			in.bindCall(env, s.Lhs, call)
			return
		}
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i, l := range s.Lhs {
			in.assignOne(env, l, s.Rhs[i])
		}
		return
	}
	// Odd shapes (v, ok := m[k], x, y = ch-receives): scan and unbind.
	for _, r := range s.Rhs {
		in.scanUses(env, r)
	}
	for _, l := range s.Lhs {
		in.unbind(env, l)
	}
}

// bindCall routes a call's results to assignment targets and rebinds
// the target variables afterwards.
func (in *ownerInterp) bindCall(env *ownerEnv, lhs []ast.Expr, call *ast.CallExpr) {
	in.execCall(env, call, lhs, true)
	for _, l := range lhs {
		if v := in.localVar(l); v != nil {
			if !in.boundByCall(env, v, call) {
				// Overwritten with an untracked value.
				delete(env.vars, v)
			}
		} else if !isBlank(l) {
			in.scanUses(env, l)
		}
	}
}

// boundByCall reports whether v's current binding is the resource the
// given acquisition call created.
func (in *ownerInterp) boundByCall(env *ownerEnv, v *types.Var, call *ast.CallExpr) bool {
	id, ok := env.vars[v]
	return ok && in.metas[id].acqPos == call.Pos()
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

// assignOne handles one lhs = rhs pair.
func (in *ownerInterp) assignOne(env *ownerEnv, l, r ast.Expr) {
	lv := in.localVar(l)

	// Resource flow on the RHS: a plain alias, a reslice of the same
	// backing, or append-in-place.
	rRes := in.trackedRes(env, r)
	if rRes < 0 {
		if sl, ok := ast.Unparen(r).(*ast.SliceExpr); ok {
			rRes = in.trackedRes(env, sl.X)
		}
	}
	if rRes < 0 {
		if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
				if _, isBuiltin := in.info.Uses[id].(*types.Builtin); isBuiltin {
					if base := in.trackedRes(env, call.Args[0]); base >= 0 && lv != nil && env.vars[lv] == base {
						rRes = base
					}
				}
			}
		}
	}

	if rRes >= 0 {
		in.use(env, rRes, r.Pos())
		if lv != nil {
			// Alias: both names now denote the same resource.
			env.vars[lv] = rRes
			return
		}
		if isBlank(l) {
			return
		}
		// Store into a field, map entry, slice element or global: the
		// value leaves the function's ownership discipline.
		if in.metas[rRes].loanedWhat != "" {
			in.reportf(r.Pos(), "loaned %s %q escapes via store: it is only valid until the handler returns, after which the pooled backing is reused",
				in.metas[rRes].loanedWhat, in.metas[rRes].what)
		}
		in.escape(env, rRes)
		return
	}

	if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
		in.bindCall(env, []ast.Expr{l}, call)
		return
	}
	in.scanUses(env, r)
	if lv != nil {
		delete(env.vars, lv)
		return
	}
	in.scanUses(env, l)
}
