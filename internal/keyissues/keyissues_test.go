package keyissues

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableMatchesPaper(t *testing.T) {
	rows := Table()
	if len(rows) != 13 {
		t.Fatalf("rows = %d, want 13 (paper Table V)", len(rows))
	}

	// 3GPP marks exactly KIs 6, 7, 15 and 25 as HMEE-applicable.
	want3GPP := map[int]bool{6: true, 7: true, 15: true, 25: true}
	for _, ki := range rows {
		if ki.HMEERecommended != want3GPP[ki.Number] {
			t.Errorf("KI %d HMEERecommended = %v", ki.Number, ki.HMEERecommended)
		}
		if ki.Description == "" || ki.Mechanism == "" {
			t.Errorf("KI %d missing description or mechanism", ki.Number)
		}
		if ki.Coverage != Full && ki.Coverage != Partial {
			t.Errorf("KI %d coverage = %v", ki.Number, ki.Coverage)
		}
	}

	// Full coverage per the paper: KIs 2, 6, 7, 13, 15, 25, 27.
	wantFull := map[int]bool{2: true, 6: true, 7: true, 13: true, 15: true, 25: true, 27: true}
	for _, ki := range rows {
		wantCov := Partial
		if wantFull[ki.Number] {
			wantCov = Full
		}
		if ki.Coverage != wantCov {
			t.Errorf("KI %d coverage = %v, want %v", ki.Number, ki.Coverage, wantCov)
		}
	}
}

func TestByNumber(t *testing.T) {
	ki, ok := ByNumber(7)
	if !ok || ki.Number != 7 || !ki.HMEERecommended {
		t.Fatalf("ByNumber(7) = %+v %v", ki, ok)
	}
	if _, ok := ByNumber(99); ok {
		t.Fatal("ByNumber(99) found something")
	}
}

func TestCoverageString(t *testing.T) {
	if Full.String() != "full" || Partial.String() != "partial" || Coverage(0).String() != "none" {
		t.Fatal("coverage names wrong")
	}
}

func TestRender(t *testing.T) {
	var buf bytes.Buffer
	Render(&buf)
	out := buf.String()
	for _, want := range []string{"Table V", "Memory introspection", "Container breakout", "KI"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	// Rows are in KI order.
	if strings.Index(out, "Confidentiality of sensitive data") > strings.Index(out, "Container breakout") {
		t.Error("rows not sorted by KI number")
	}
}
