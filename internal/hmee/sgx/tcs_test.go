package sgx

import (
	"context"
	"errors"
	"testing"
	"time"
)

// singleSlot builds an enclave with exactly one TCS and parks a resident
// thread on it, returning the resident so the caller controls when the
// slot frees.
func singleSlot(t *testing.T) (*Enclave, *Thread) {
	t.Helper()
	p := testPlatform(t)
	cfg := testConfig()
	cfg.MaxThreads = 1
	e := build(t, p, cfg)
	th, err := e.EnterResident(context.Background())
	if err != nil {
		t.Fatalf("EnterResident: %v", err)
	}
	return e, th
}

func TestECallHonoursContextWhileWaitingForTCS(t *testing.T) {
	e, _ := singleSlot(t)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := e.ECall(ctx, 16, 16, func(*Thread) error { return nil })
	if !errors.Is(err, ErrTooManyThreads) {
		t.Fatalf("ECall with exhausted TCS = %v, want ErrTooManyThreads", err)
	}

	cancelled, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if err := e.ECall(cancelled, 16, 16, func(*Thread) error { return nil }); !errors.Is(err, ErrTooManyThreads) {
		t.Fatalf("ECall with cancelled ctx = %v, want ErrTooManyThreads", err)
	}
}

func TestECallBlocksUntilTCSFrees(t *testing.T) {
	e, resident := singleSlot(t)

	released := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		e.LeaveResident(resident)
		close(released)
	}()

	var ran bool
	if err := e.ECall(context.Background(), 16, 16, func(*Thread) error {
		ran = true
		return nil
	}); err != nil {
		t.Fatalf("ECall after slot release: %v", err)
	}
	if !ran {
		t.Fatal("ECall body did not run")
	}
	<-released
}

func TestEnterResidentHonoursContextWhileWaiting(t *testing.T) {
	e, _ := singleSlot(t)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := e.EnterResident(ctx); !errors.Is(err, ErrTooManyThreads) {
		t.Fatalf("EnterResident with exhausted TCS = %v, want ErrTooManyThreads", err)
	}
}

func TestECallFailsWhenEnclaveDestroyedWhileWaiting(t *testing.T) {
	e, resident := singleSlot(t)

	go func() {
		time.Sleep(10 * time.Millisecond)
		e.Destroy()
		e.LeaveResident(resident)
	}()
	err := e.ECall(context.Background(), 16, 16, func(*Thread) error { return nil })
	if !errors.Is(err, ErrDestroyed) {
		t.Fatalf("ECall on destroyed enclave = %v, want ErrDestroyed", err)
	}
}
