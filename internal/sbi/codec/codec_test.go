package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// buildFrame assembles a finished frame around the given payload-writing
// function.
func buildFrame(t *testing.T, fill func(dst []byte) []byte) []byte {
	t.Helper()
	buf := AppendHeader(nil)
	buf = fill(buf)
	frame, err := FinishFrame(buf)
	if err != nil {
		t.Fatalf("FinishFrame: %v", err)
	}
	return frame
}

func TestFrameRoundTrip(t *testing.T) {
	frame := buildFrame(t, func(dst []byte) []byte {
		dst = AppendString(dst, "imsi-00101-0000000001")
		dst = AppendBytes(dst, []byte{0xDE, 0xAD, 0xBE, 0xEF})
		dst = AppendBytes(dst, nil)
		dst = AppendBytes(dst, []byte{})
		dst = AppendByte(dst, 0x2A)
		dst = AppendCount(dst, 3)
		for i := byte(0); i < 3; i++ {
			dst = AppendByte(dst, i)
		}
		return dst
	})
	if !IsFrame(frame) {
		t.Fatalf("IsFrame(frame) = false")
	}
	payload, err := Payload(frame)
	if err != nil {
		t.Fatalf("Payload: %v", err)
	}
	r := NewReader(payload)
	if got := r.String(); got != "imsi-00101-0000000001" {
		t.Errorf("String = %q", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{0xDE, 0xAD, 0xBE, 0xEF}) {
		t.Errorf("Bytes = %x", got)
	}
	if got := r.Bytes(); got != nil {
		t.Errorf("nil Bytes decoded as %#v, want nil", got)
	}
	if got := r.Bytes(); got == nil || len(got) != 0 {
		t.Errorf("empty Bytes decoded as %#v, want non-nil empty", got)
	}
	if got := r.Byte(); got != 0x2A {
		t.Errorf("Byte = %#x", got)
	}
	n := r.Count()
	if n != 3 {
		t.Errorf("Count = %d", n)
	}
	for i := 0; i < n; i++ {
		if got := r.Byte(); got != byte(i) {
			t.Errorf("element %d = %#x", i, got)
		}
	}
	if err := r.Done(); err != nil {
		t.Errorf("Done: %v", err)
	}
}

func TestIsFrameRejectsJSONAndShort(t *testing.T) {
	for _, b := range [][]byte{nil, {}, []byte(`{"supi":"x"}`), []byte(`[1]`), []byte(`"s"`), {Magic}, {Magic, 0, 0, 0}} {
		if IsFrame(b) {
			t.Errorf("IsFrame(%q) = true", b)
		}
	}
}

func TestPayloadErrors(t *testing.T) {
	valid := buildFrame(t, func(dst []byte) []byte { return AppendString(dst, "x") })

	t.Run("not-frame", func(t *testing.T) {
		if _, err := Payload([]byte(`{"a":1}`)); !errors.Is(err, ErrNotFrame) {
			t.Fatalf("err = %v, want ErrNotFrame", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := Payload(valid[:len(valid)-1]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("trailing", func(t *testing.T) {
		if _, err := Payload(append(append([]byte{}, valid...), 0xFF)); !errors.Is(err, ErrTrailing) {
			t.Fatalf("err = %v, want ErrTrailing", err)
		}
	})
	t.Run("oversized-declared-length", func(t *testing.T) {
		b := []byte{Magic, 0, 0, 0, 0}
		binary.BigEndian.PutUint32(b[1:], MaxPayload+1)
		if _, err := Payload(b); !errors.Is(err, ErrOversized) {
			t.Fatalf("err = %v, want ErrOversized", err)
		}
	})
}

func TestFinishFrameOversized(t *testing.T) {
	buf := AppendHeader(make([]byte, 0, headerLen+MaxPayload+1))
	buf = append(buf, make([]byte, MaxPayload+1)...)
	if _, err := FinishFrame(buf); !errors.Is(err, ErrOversized) {
		t.Fatalf("err = %v, want ErrOversized", err)
	}
	if _, err := FinishFrame([]byte{'{', 0, 0, 0, 0}); !errors.Is(err, ErrNotFrame) {
		t.Fatalf("err = %v, want ErrNotFrame", err)
	}
}

func TestReaderStickyErrors(t *testing.T) {
	// A string claiming more bytes than remain poisons the reader; every
	// later accessor returns the zero value and Done reports the first
	// error.
	payload := binary.AppendUvarint(nil, 100)
	payload = append(payload, "short"...)
	r := NewReader(payload)
	if got := r.String(); got != "" {
		t.Errorf("String after truncation = %q", got)
	}
	if got := r.Byte(); got != 0 {
		t.Errorf("Byte after error = %#x", got)
	}
	if got := r.Bytes(); got != nil {
		t.Errorf("Bytes after error = %#v", got)
	}
	if got := r.Count(); got != 0 {
		t.Errorf("Count after error = %d", got)
	}
	if got := r.Uint(); got != 0 {
		t.Errorf("Uint after error = %d", got)
	}
	if err := r.Done(); !errors.Is(err, ErrTruncated) {
		t.Errorf("Done = %v, want ErrTruncated", err)
	}

	// Reset clears the sticky error.
	r.Reset([]byte{0x07})
	if got := r.Byte(); got != 0x07 {
		t.Errorf("Byte after Reset = %#x", got)
	}
	if err := r.Done(); err != nil {
		t.Errorf("Done after Reset: %v", err)
	}
}

func TestReaderDoneTrailing(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	r.Byte()
	if err := r.Done(); !errors.Is(err, ErrTrailing) {
		t.Fatalf("Done = %v, want ErrTrailing", err)
	}
}

func TestCountBoundsHostileValue(t *testing.T) {
	// A count far beyond the remaining payload must fail instead of
	// sizing a huge decode-side allocation.
	payload := binary.AppendUvarint(nil, 1<<40)
	r := NewReader(payload)
	if got := r.Count(); got != 0 {
		t.Fatalf("Count = %d, want 0", got)
	}
	if err := r.Err(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Err = %v, want ErrTruncated", err)
	}
	// Uint is a bare scalar and accepts the same value.
	r.Reset(payload)
	if got := r.Uint(); got != 1<<40 {
		t.Fatalf("Uint = %d", got)
	}
}

func TestCompactOwnership(t *testing.T) {
	backing := []byte("aaaabbbbcc")
	a := backing[0:4]
	b := backing[4:8]
	var nilField []byte
	empty := backing[8:8]

	Compact(&a, &b, &nilField, &empty)

	if nilField != nil {
		t.Errorf("nil field rewritten to %#v", nilField)
	}
	if empty == nil || len(empty) != 0 {
		t.Errorf("empty field = %#v, want non-nil empty", empty)
	}
	// The compacted fields no longer alias the transport buffer:
	// clobbering it must not change them.
	for i := range backing {
		backing[i] = 0xFF
	}
	if string(a) != "aaaa" || string(b) != "bbbb" {
		t.Errorf("compacted fields alias the old backing: a=%q b=%q", a, b)
	}
	// Full-capacity slices: a write past one field cannot reach the next
	// even though they share a backing array.
	if cap(a) != len(a) || cap(b) != len(b) {
		t.Errorf("compacted fields are not capacity-clamped: cap(a)=%d cap(b)=%d", cap(a), cap(b))
	}
}

func TestCompactAllEmpty(t *testing.T) {
	var nilField []byte
	empty := []byte{}
	Compact(&nilField, &empty)
	if nilField != nil {
		t.Errorf("nil field = %#v", nilField)
	}
	if empty == nil || len(empty) != 0 {
		t.Errorf("empty field = %#v", empty)
	}
}

func TestInternStringStable(t *testing.T) {
	encode := func(s string) []byte { return AppendString(nil, s) }
	payload := encode("5G:mnc001.mcc001.3gppnetwork.org")
	r := NewReader(payload)
	first := r.InternString()
	if first != "5G:mnc001.mcc001.3gppnetwork.org" {
		t.Fatalf("InternString = %q", first)
	}
	// Decoding the same constant again must not allocate: the bounded
	// intern table serves the canonical copy.
	allocs := testing.AllocsPerRun(100, func() {
		r.Reset(payload)
		if got := r.InternString(); got != first {
			t.Fatalf("InternString = %q", got)
		}
	})
	if allocs != 0 {
		t.Errorf("interned decode allocates %.1f per run, want 0", allocs)
	}
}

// FuzzFramePayload throws arbitrary bytes at the frame parser and reader:
// whatever the input, parsing must never panic, and a frame accepted by
// Payload must satisfy the header/length invariants.
func FuzzFramePayload(f *testing.F) {
	valid := AppendHeader(nil)
	valid = AppendString(valid, "imsi-00101-0000000001")
	valid = AppendBytes(valid, []byte{1, 2, 3, 4})
	valid = AppendBytes(valid, nil)
	valid = AppendByte(valid, 7)
	valid = AppendCount(valid, 2)
	valid, _ = FinishFrame(valid)
	f.Add(valid)

	empty, _ := FinishFrame(AppendHeader(nil))
	f.Add(empty)
	f.Add([]byte(`{"supi":"imsi-00101-0000000001"}`))
	f.Add([]byte{Magic})
	f.Add([]byte{Magic, 0xFF, 0xFF, 0xFF, 0xFF})
	truncated := append([]byte{}, valid...)
	f.Add(truncated[:len(truncated)-3])
	f.Add(append(append([]byte{}, valid...), 0xAA))

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := Payload(data)
		if err != nil {
			if payload != nil {
				t.Fatalf("Payload returned bytes alongside error %v", err)
			}
			return
		}
		if !IsFrame(data) {
			t.Fatalf("Payload accepted a non-frame")
		}
		if len(payload) > MaxPayload {
			t.Fatalf("payload length %d exceeds MaxPayload", len(payload))
		}
		// Walk the payload with a mix of accessors; sticky errors must
		// absorb any malformed field without panicking.
		r := NewReader(payload)
		for i := 0; r.Err() == nil && i < 1024; i++ {
			switch i % 5 {
			case 0:
				_ = r.Bytes()
			case 1:
				_ = r.String()
			case 2:
				_ = r.Byte()
			case 3:
				_ = r.Count()
			case 4:
				_ = r.InternString()
			}
			if r.Err() == nil && len(payload) == 0 {
				break
			}
		}
		_ = r.Done()
	})
}
