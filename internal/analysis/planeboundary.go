package analysis

import (
	"strconv"
	"strings"
)

// PlaneBoundary enforces the import direction of the sharded-core control
// protocol: the NRF's snapshot builder (shield5g/internal/nf/nrf/topo) is
// control-plane machinery, and only the NRF subtree itself and the deploy
// layer that wires subscriptions at slice construction may import it.
// Data-plane packages consult internal/topology Routers, which hold the
// last-known-good snapshot locally — the moment a data-plane package
// imports the builder it has a compile-time path back into the NRF, and
// the "registration survives NRF unavailability" claim stops being
// structural. The analyzer closes that door: everything outside the
// allowlist gets a finding on the import line.
var PlaneBoundary = &Analyzer{
	Name: "planeboundary",
	Doc:  "data-plane packages must not import the NRF snapshot builder",
	Run:  runPlaneBoundary,
}

// builderPath is the control-plane package being fenced off.
const builderPath = "shield5g/internal/nf/nrf/topo"

// builderImporters are the import-path prefixes allowed to depend on the
// builder: the NRF subtree (it is the builder's home) and the deploy
// layer (it constructs the builder and subscribes the routers).
var builderImporters = []string{
	"shield5g/internal/nf/nrf",
	"shield5g/internal/deploy",
}

func runPlaneBoundary(pass *Pass) error {
	for _, prefix := range builderImporters {
		p := pass.Pkg.ImportPath
		if p == prefix || strings.HasPrefix(p, prefix+"/") {
			return nil
		}
	}
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == builderPath || strings.HasPrefix(path, builderPath+"/") {
				pass.Reportf(imp.Pos(),
					"package %s imports the NRF snapshot builder %s; data planes must route via internal/topology's last-known-good snapshots (only %s may import the builder)",
					pass.Pkg.ImportPath, path, strings.Join(builderImporters, ", "))
			}
		}
	}
	return nil
}
