package analysis

import (
	"go/ast"
	"go/types"
)

// StripeMap enforces the lock discipline of the internal/shard stripe
// pattern and of every mutex-guarded NF store: in any struct that pairs
// a sync.Mutex/RWMutex with map fields, the maps may only be indexed,
// ranged over, measured or deleted from inside a function that takes
// that struct's lock. Two escapes keep the rule honest: a function that
// builds the owning struct with a composite literal is a constructor
// (the value is not shared yet), and a map field whose declaration
// carries //shieldlint:ignore stripemap <why> is excluded from
// guarding (for maps that are immutable after construction). The
// compiler already stops other packages from reaching shard.Map
// internals; this analyzer closes the remaining gap, the package's own
// functions growing an unlocked fast path.
var StripeMap = &Analyzer{
	Name: "stripemap",
	Doc:  "mutex-guarded map fields must only be accessed under their lock",
	Run:  runStripeMap,
}

// guardedMaps identifies, for the analyzed package, every map field
// that lives next to a mutex, keyed by the variable; values identify
// the owning struct so locks and accesses can be matched up.
type guardedStructs struct {
	mapOwner   map[*types.Var]*types.Struct // map field -> owning struct
	mutexOwner map[*types.Var]*types.Struct // mutex field -> owning struct
}

func runStripeMap(pass *Pass) error {
	info := pass.Pkg.Info
	guards := collectGuards(pass.Pkg)
	if len(guards.mapOwner) == 0 {
		return nil
	}

	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncLocks(pass, info, guards, fd)
		}
	}
	return nil
}

// collectGuards walks the package's type declarations for structs that
// pair a mutex with one or more maps. Map fields annotated
// //shieldlint:ignore stripemap on their declaration are excluded.
func collectGuards(pkg *Package) *guardedStructs {
	g := &guardedStructs{
		mapOwner:   make(map[*types.Var]*types.Struct),
		mutexOwner: make(map[*types.Var]*types.Struct),
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				return true
			}
			astStruct, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			var mutexes, maps []*types.Var
			for _, field := range astStruct.Fields.List {
				if fieldOptsOut(field) {
					continue
				}
				for _, name := range field.Names {
					v, ok := pkg.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if isMutexType(v.Type()) {
						mutexes = append(mutexes, v)
					} else if _, ok := v.Type().Underlying().(*types.Map); ok {
						maps = append(maps, v)
					}
				}
			}
			if len(mutexes) == 0 || len(maps) == 0 {
				return true
			}
			for _, m := range maps {
				g.mapOwner[m] = st
			}
			for _, m := range mutexes {
				g.mutexOwner[m] = st
			}
			return true
		})
	}
	return g
}

// fieldOptsOut reports whether a struct field's declaration carries a
// //shieldlint:ignore stripemap annotation.
func fieldOptsOut(field *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if names, ok := parseDirective(c.Text); ok {
				for _, name := range names {
					if name == "stripemap" || name == "all" {
						return true
					}
				}
			}
		}
	}
	return false
}

func isMutexType(t types.Type) bool {
	return isNamed(t, "sync", "Mutex") || isNamed(t, "sync", "RWMutex")
}

// checkFuncLocks verifies one function: every access to a guarded map
// must be matched by a Lock/RLock call on a mutex of the same struct
// somewhere in the function (including its closures — the lock is
// commonly taken in the enclosing scope). A function that builds the
// owning struct with a composite literal is a constructor: the value
// has not been published yet, so its maps may be filled lock-free.
func checkFuncLocks(pass *Pass, info *types.Info, guards *guardedStructs, fd *ast.FuncDecl) {
	locked := make(map[*types.Struct]bool)
	ast.Inspect(fd, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			if t := info.TypeOf(x); t != nil {
				if st, ok := t.Underlying().(*types.Struct); ok {
					for _, owner := range guards.mutexOwner {
						if owner == st {
							locked[owner] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
				return true
			}
			if v := baseVar(info, sel.X); v != nil {
				if owner, ok := guards.mutexOwner[v]; ok {
					locked[owner] = true
				}
			}
		}
		return true
	})

	report := func(e ast.Expr, verb string) {
		v := baseVar(info, e)
		if v == nil {
			return
		}
		owner, ok := guards.mapOwner[v]
		if !ok || locked[owner] {
			return
		}
		pass.Reportf(e.Pos(),
			"map field %s is guarded by a sibling mutex but %s in %s without the lock held; take the stripe's Lock/RLock first (or annotate: //shieldlint:ignore stripemap <why>)",
			v.Name(), verb, fd.Name.Name)
	}

	ast.Inspect(fd, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IndexExpr:
			if isGuardedSelector(info, guards, x.X) {
				report(x.X, "indexed")
			}
		case *ast.RangeStmt:
			if isGuardedSelector(info, guards, x.X) {
				report(x.X, "ranged over")
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "delete") && info.Uses[id] != nil && info.Uses[id].Parent() == types.Universe {
				for _, arg := range x.Args {
					if isGuardedSelector(info, guards, arg) {
						report(arg, id.Name+"() called")
					}
				}
			}
		}
		return true
	})
}

// isGuardedSelector reports whether e denotes a guarded map field
// (rather than a local copy of it).
func isGuardedSelector(info *types.Info, guards *guardedStructs, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok {
		return false
	}
	_, guarded := guards.mapOwner[v]
	return guarded
}
