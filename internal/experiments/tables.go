package experiments

import (
	"io"

	"shield5g/internal/costmodel"
	"shield5g/internal/keyissues"
	"shield5g/internal/paka"
)

// Table1 renders the enclave boundary interface of each P-AKA module —
// the paper's published byte counts next to this implementation's (our
// eAUSF output is 48 bytes because HXRES* follows the 16-byte TS 33.501
// definition; the paper lists 8).
func Table1(w io.Writer) {
	fprintf(w, "Table I: 5G-AKA functions and parameters loaded into SGX enclaves\n")
	fprintf(w, "%-8s %14s %14s | %12s %12s  %s\n",
		"module", "paper in(B)", "paper out(B)", "ours in(B)", "ours out(B)", "derive/execute")
	profiles := paka.Profiles()
	for i, row := range paka.PaperTable1() {
		kind := paka.Kinds()[i]
		p := profiles[kind]
		fprintf(w, "%-8s %14d %14d | %12d %12d  %s\n",
			row.Module, row.InBytes, row.OutBytes, p.InBytes, p.OutBytes, row.Derives)
	}
	fprintf(w, "(difference: HXRES* implemented per TS 33.501 as 16 bytes; paper lists 8)\n")
}

// Table4 renders the simulated testbed configuration (the paper's
// hardware/software table, mapped onto the cost model).
func Table4(w io.Writer) {
	m := costmodel.Default()
	fprintf(w, "Table IV: Simulated testbed configuration\n")
	fprintf(w, "%-34s %s\n", "CPU model", "2x Intel Xeon Silver 4314 (simulated)")
	fprintf(w, "%-34s %.2f GHz\n", "CPU frequency", float64(m.FrequencyHz)/1e9)
	fprintf(w, "%-34s %d GiB\n", "combined EPC", 16)
	fprintf(w, "%-34s %s\n", "OS / kernel", "Ubuntu 20.04 / 5.15 in-kernel SGX driver (modelled)")
	fprintf(w, "%-34s %s\n", "core", "shield5g 5G core (OAI v1.5.0 equivalent)")
	fprintf(w, "%-34s %s\n", "GSC", "v1.4-1-ga60a499 (simulated)")
	fprintf(w, "%-34s %s\n", "MCC / MNC", "001 / 01")
	fprintf(w, "%-34s %s\n", "UE", "OnePlus 8, Oxygen 11.0.11.11.IN21DA (profile)")
	fprintf(w, "%-34s %s\n", "gNB radio unit", "USRP x310 profile")
	fprintf(w, "%-34s %d / %d cycles\n", "EENTER / EEXIT cost", m.EENTER, m.EEXIT)
	fprintf(w, "%-34s %d cycles\n", "EPC page fault", m.EPCPageFault)
}

// Table5 renders the key-issue coverage table.
func Table5(w io.Writer) {
	keyissues.Render(w)
}
