package costmodel

import (
	"time"

	"shield5g/internal/simclock"
)

// Realizer converts modelled cycle charges into calibrated wall-clock delay
// so that testing.B benchmarks exhibit the modelled cost ordering in real
// time. A scale below 1 compresses modelled time (for example, 0.01 turns a
// modelled 58 s enclave load into 580 ms of bench time); the scale used is
// reported alongside every benchmark that relies on it.
type Realizer struct {
	model *Model
	scale float64
}

// NewRealizer returns a Realizer over the model. A non-positive scale
// disables realisation, making Realize a no-op.
func NewRealizer(m *Model, scale float64) *Realizer {
	return &Realizer{model: m, scale: scale}
}

// Scale reports the time-compression factor.
func (r *Realizer) Scale() float64 { return r.scale }

// Realize busy-waits for the scaled wall-clock equivalent of n cycles.
// Busy-wait rather than time.Sleep keeps sub-millisecond charges accurate:
// the scheduler's sleep granularity would otherwise dominate the modelled
// microsecond-scale transition costs.
func (r *Realizer) Realize(n simclock.Cycles) {
	if r == nil || r.scale <= 0 || n == 0 {
		return
	}
	d := time.Duration(float64(r.model.Duration(n)) * r.scale)
	if d <= 0 {
		return
	}
	if d > 2*time.Millisecond {
		// Long waits may yield the CPU; precision no longer matters.
		//shieldlint:wallclock the Realizer's whole job is stretching virtual cost into real time
		time.Sleep(d)
		return
	}
	//shieldlint:wallclock spin-wait deadline must be real time by definition
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) { //shieldlint:wallclock intentional sub-millisecond spin (nolint:revive)
	}
}
